module gsnp

go 1.22
