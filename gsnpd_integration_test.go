package gsnp_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// gsnpdStreamRecord mirrors service.StreamRecord for the black-box test
// (decoded from the wire, not imported, so the test pins the JSON shape).
type gsnpdStreamRecord struct {
	Job       string `json:"job"`
	Index     int    `json:"index"`
	Name      string `json:"name"`
	State     string `json:"state"`
	Sites     int    `json:"sites"`
	Error     string `json:"error"`
	OutputB64 []byte `json:"output_b64"`
	Final     bool   `json:"final"`
}

// startGsnpd launches the daemon on a kernel-assigned port and parses the
// bound address from its "listening on" line. The returned cleanup kills
// the process if it is still running.
func startGsnpd(t *testing.T, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	bin, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(bin, "gsnpd"),
		append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	lines := bufio.NewScanner(stdout)
	base := ""
	for lines.Scan() {
		if _, after, ok := strings.Cut(lines.Text(), "listening on "); ok {
			base = strings.TrimSpace(after)
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("gsnpd never printed its listening line\nstderr:\n%s", stderr.String())
	}
	//gsnplint:ignore goroutinejoin pipe drain: io.Copy returns when the child exits and cmd.Wait closes the pipe
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return cmd, base, &stderr
}

// gsnpdSubmit posts a genome-dir job and returns its id.
func gsnpdSubmit(t *testing.T, base, dir string) string {
	t.Helper()
	body := fmt.Sprintf(`{"genome_dir":%q,"engine":"gsnp-cpu","window":256}`, dir)
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		t.Fatalf("bad job status %s: %v", data, err)
	}
	return st.ID
}

// gsnpdStream reads a job's NDJSON stream to its final record.
func gsnpdStream(t *testing.T, base, id string) (map[string][]byte, string) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[string][]byte)
	dec := json.NewDecoder(resp.Body)
	for {
		var rec gsnpdStreamRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("stream %s truncated: %v", id, err)
		}
		if rec.Final {
			return out, rec.State
		}
		if rec.State != "ok" {
			t.Fatalf("chromosome %s: state %s (%s)", rec.Name, rec.State, rec.Error)
		}
		out[rec.Name] = rec.OutputB64
	}
}

// TestGsnpdServiceEndToEnd is the binary-level acceptance scenario: a real
// gsnpd process serves two concurrently submitted whole-genome jobs whose
// streamed per-chromosome bytes must be identical to serial gsnp CLI runs,
// then drains cleanly on SIGTERM and exits 0.
func TestGsnpdServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("service integration in -short mode")
	}
	// Two genome dirs; the serial gsnp CLI writes <chr>.result baselines
	// into each.
	dirA, dirB := t.TempDir(), t.TempDir()
	run(t, "gsnp-gen", "-out", dirA, "-genome", "-scale", "12", "-seed", "301")
	run(t, "gsnp-gen", "-out", dirB, "-genome", "-scale", "6", "-seed", "302")
	run(t, "gsnp", "-genome-dir", dirA, "-engine", "gsnp-cpu", "-window", "256", "-workers", "1")
	run(t, "gsnp", "-genome-dir", dirB, "-engine", "gsnp-cpu", "-window", "256", "-workers", "1")

	cmd, base, stderr := startGsnpd(t, "-workers", "4")

	// Health answers before any job exists.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	idA := gsnpdSubmit(t, base, dirA)
	idB := gsnpdSubmit(t, base, dirB)

	var wg sync.WaitGroup
	streams := make([]map[string][]byte, 2)
	states := make([]string, 2)
	for i, id := range []string{idA, idB} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			streams[i], states[i] = gsnpdStream(t, base, id)
		}(i, id)
	}
	wg.Wait()

	for i, dir := range []string{dirA, dirB} {
		if states[i] != "done" {
			t.Fatalf("job %d final state %q, want done", i, states[i])
		}
		baselines, err := filepath.Glob(filepath.Join(dir, "*.result"))
		if err != nil || len(baselines) == 0 {
			t.Fatalf("no serial baselines in %s: %v", dir, err)
		}
		if len(streams[i]) != len(baselines) {
			t.Fatalf("job %d streamed %d chromosomes, want %d", i, len(streams[i]), len(baselines))
		}
		for _, b := range baselines {
			// Stream records carry the scheduler's task name: the .fa
			// file's base name.
			name := strings.TrimSuffix(filepath.Base(b), ".result") + ".fa"
			want, err := os.ReadFile(b)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := streams[i][name]
			if !ok {
				t.Fatalf("job %d: chromosome %s missing from stream", i, name)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("job %d %s: streamed bytes differ from the serial gsnp run", i, name)
			}
		}
	}

	// Graceful shutdown: SIGTERM drains and the process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gsnpd exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(time.Minute):
		cmd.Process.Kill()
		t.Fatalf("gsnpd did not exit within a minute of SIGTERM\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("gsnpd stderr misses the drain confirmation:\n%s", stderr.String())
	}
}

// gsnpdStatz decodes GET /statz (wire shape pinned, not imported).
type gsnpdStatz struct {
	CacheEnabled bool `json:"cache_enabled"`
	Cache        struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Puts      uint64 `json:"puts"`
		Evictions uint64 `json:"evictions"`
		Bytes     int64  `json:"bytes"`
		MaxBytes  int64  `json:"max_bytes"`
	} `json:"cache"`
	SingleFlightJoins uint64 `json:"single_flight_joins"`
}

func gsnpdGetStatz(t *testing.T, base string) gsnpdStatz {
	t.Helper()
	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statz: %d", resp.StatusCode)
	}
	var st gsnpdStatz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGsnpdCachedResubmit is the binary-level acceptance scenario for the
// result cache: resubmitting an identical job to a real gsnpd process is
// served from the cache — final state "cached", per-chromosome bytes
// identical to the first run — and /statz accounts for the hit.
func TestGsnpdCachedResubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("service integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "gsnp-gen", "-out", dir, "-genome", "-scale", "6", "-seed", "304")

	_, base, _ := startGsnpd(t, "-workers", "2")

	id1 := gsnpdSubmit(t, base, dir)
	first, state1 := gsnpdStream(t, base, id1)
	if state1 != "done" {
		t.Fatalf("first run final state %q, want done", state1)
	}
	// The cache records the result just after the final stream record is
	// published; wait for the Put before resubmitting.
	deadline := time.Now().Add(10 * time.Second)
	for gsnpdGetStatz(t, base).Cache.Puts == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("result never cached: %+v", gsnpdGetStatz(t, base))
		}
		time.Sleep(10 * time.Millisecond)
	}

	id2 := gsnpdSubmit(t, base, dir)
	second, state2 := gsnpdStream(t, base, id2)
	if state2 != "cached" {
		t.Fatalf("resubmission final state %q, want cached", state2)
	}
	if len(second) != len(first) {
		t.Fatalf("replay streamed %d chromosomes, want %d", len(second), len(first))
	}
	for name, want := range first {
		if !bytes.Equal(second[name], want) {
			t.Errorf("%s: replayed bytes differ from the first run", name)
		}
	}

	st := gsnpdGetStatz(t, base)
	if !st.CacheEnabled || st.Cache.Hits != 1 || st.Cache.Puts != 1 {
		t.Errorf("statz after cached resubmit: %+v", st)
	}
	if st.Cache.Bytes <= 0 || st.Cache.Bytes > st.Cache.MaxBytes {
		t.Errorf("implausible cache occupancy: %+v", st)
	}
}

// TestGsnpdRejectsWhileDraining: a job submitted after SIGTERM gets 503
// while an in-flight job still completes.
func TestGsnpdRejectsWhileDraining(t *testing.T) {
	if testing.Short() {
		t.Skip("service integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "gsnp-gen", "-out", dir, "-genome", "-scale", "8", "-seed", "303")

	cmd, base, stderr := startGsnpd(t, "-workers", "1")
	id := gsnpdSubmit(t, base, dir)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Once draining is visible, new submissions are refused.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(base+"/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"genome_dir":%q}`, dir)))
		if err != nil {
			break // listener may already be down post-drain; the exit check decides
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission during drain returned %d, want 503", code)
		}
		time.Sleep(20 * time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gsnpd exit: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(time.Minute):
		cmd.Process.Kill()
		t.Fatalf("gsnpd did not drain job %s within a minute\nstderr:\n%s", id, stderr.String())
	}
}

// gsnpdJobDoc decodes GET /jobs/{id} (wire shape pinned, not imported).
type gsnpdJobDoc struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Recovered bool   `json:"recovered"`
}

func gsnpdGetJob(t *testing.T, base, id string) gsnpdJobDoc {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc gsnpdJobDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestGsnpdCrashRecovery is the crash-durability acceptance scenario: a
// real gsnpd process with -journal-dir accepts an uploaded-inputs job, is
// SIGKILLed mid-run, and a restarted process on the same journal
// directory resumes the job — chromosomes checkpointed before the kill
// are served without re-executing (marked recovered), the rest complete,
// and every streamed byte is identical to an uninterrupted serial run.
func TestGsnpdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("service integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "gsnp-gen", "-out", dir, "-genome", "-scale", "8", "-seed", "305")
	run(t, "gsnp", "-genome-dir", dir, "-engine", "gsnp-cpu", "-window", "256", "-workers", "1")

	// The job uploads its inputs inline, so the only copy the restarted
	// server can run from is the journal-owned spool.
	fas, err := filepath.Glob(filepath.Join(dir, "*.fa"))
	if err != nil || len(fas) == 0 {
		t.Fatalf("no generated chromosomes: %v", err)
	}
	type inputDoc struct {
		Name string `json:"name"`
		Ref  string `json:"ref"`
		Aln  string `json:"aln"`
		SNP  string `json:"snp,omitempty"`
	}
	var inputs []inputDoc
	for _, fa := range fas {
		base := strings.TrimSuffix(fa, ".fa")
		ref, err := os.ReadFile(fa)
		if err != nil {
			t.Fatal(err)
		}
		aln, err := os.ReadFile(base + ".soap")
		if err != nil {
			t.Fatal(err)
		}
		in := inputDoc{Name: filepath.Base(base), Ref: string(ref), Aln: string(aln)}
		if snp, err := os.ReadFile(base + ".snp"); err == nil {
			in.SNP = string(snp)
		}
		inputs = append(inputs, in)
	}
	specBody, err := json.Marshal(map[string]any{
		"inputs": inputs, "engine": "gsnp-cpu", "window": 256,
	})
	if err != nil {
		t.Fatal(err)
	}

	jdir := filepath.Join(t.TempDir(), "journal")
	cmdA, baseA, _ := startGsnpd(t, "-workers", "1", "-journal-dir", jdir)

	resp, err := http.Post(baseA+"/jobs", "application/json", bytes.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
	}
	var accepted gsnpdJobDoc
	if err := json.Unmarshal(data, &accepted); err != nil || accepted.ID == "" {
		t.Fatalf("bad accept document %s: %v", data, err)
	}
	id := accepted.ID

	// Kill -9 once at least one chromosome is durably checkpointed (the
	// service checkpoints before publishing a completion) but the job as a
	// whole is still running.
	deadline := time.Now().Add(time.Minute)
	for {
		doc := gsnpdGetJob(t, baseA, id)
		if doc.Completed >= 1 && doc.Completed < doc.Total {
			break
		}
		if doc.Completed == doc.Total {
			t.Fatalf("job finished before the kill could land; enlarge the dataset")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no chromosome completed within a minute: %+v", doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmdA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmdA.Wait() // exit status is the kill signal; only reaping matters

	// Restart on the same journal. Recovery runs before the listening
	// line, so the job is queryable as soon as the port is known.
	cmdB, baseB, stderrB := startGsnpd(t, "-workers", "2", "-journal-dir", jdir)
	doc := gsnpdGetJob(t, baseB, id)
	if !doc.Recovered {
		t.Fatalf("restarted job not marked recovered: %+v\nstderr:\n%s", doc, stderrB.String())
	}

	// The recovered stream must be byte-identical to the uninterrupted
	// serial run, with the pre-kill chromosomes served from checkpoints.
	resp, err = http.Get(baseB + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type rec struct {
		Name      string `json:"name"`
		State     string `json:"state"`
		Error     string `json:"error"`
		OutputB64 []byte `json:"output_b64"`
		Final     bool   `json:"final"`
		Recovered bool   `json:"recovered"`
	}
	got := make(map[string]rec)
	finalState := ""
	dec := json.NewDecoder(resp.Body)
	for finalState == "" {
		var r rec
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("recovered stream truncated: %v", err)
		}
		if r.Final {
			finalState = r.State
			continue
		}
		got[r.Name] = r
	}
	if finalState != "done" {
		t.Fatalf("recovered job final state %q, want done", finalState)
	}
	if len(got) != len(fas) {
		t.Fatalf("recovered stream carried %d chromosomes, want %d", len(got), len(fas))
	}
	fromCheckpoint := 0
	for _, fa := range fas {
		name := filepath.Base(fa)
		want, err := os.ReadFile(strings.TrimSuffix(fa, ".fa") + ".result")
		if err != nil {
			t.Fatal(err)
		}
		r, ok := got[name]
		if !ok {
			t.Fatalf("chromosome %s missing from recovered stream", name)
		}
		if r.State != "ok" {
			t.Fatalf("chromosome %s: state %s (%s)", name, r.State, r.Error)
		}
		if !bytes.Equal(r.OutputB64, want) {
			t.Errorf("%s: recovered bytes differ from the serial run", name)
		}
		if r.Recovered {
			fromCheckpoint++
		}
	}
	if fromCheckpoint == 0 {
		t.Error("no chromosome was served from a checkpoint; the pre-kill work was redone")
	}
	if fromCheckpoint == len(fas) {
		t.Error("every chromosome came from checkpoints; the kill landed after completion")
	}
	t.Logf("recovered %d/%d chromosomes from checkpoints", fromCheckpoint, len(fas))

	// The recovered server drains cleanly.
	if err := cmdB.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmdB.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gsnpd exit after recovery drain: %v\nstderr:\n%s", err, stderrB.String())
		}
	case <-time.After(time.Minute):
		cmdB.Process.Kill()
		t.Fatalf("recovered gsnpd did not drain\nstderr:\n%s", stderrB.String())
	}
}

// TestGsnpdCrashRecoveryFASTQ runs the crash-durability scenario over the
// raw-reads pipeline: an uploaded FASTQ job with VCF output is SIGKILLed
// mid-run, the restarted server resumes it from the journal, and every
// recovered chromosome's VCF bytes are identical to an uninterrupted gsnp
// CLI run. Resubmitting the same job afterwards must be a cache hit —
// recovery registers the completed result under the same content key a
// fresh submission would compute.
func TestGsnpdCrashRecoveryFASTQ(t *testing.T) {
	if testing.Short() {
		t.Skip("service integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "gsnp-gen", "-out", dir, "-genome", "-scale", "8", "-seed", "306", "-fastq")
	// The CLI baseline: the byte-identity reference for both the recovered
	// stream and the cached replay.
	run(t, "gsnp", "-genome-dir", dir, "-format", "fastq", "-output-format", "vcf",
		"-engine", "gsnp-cpu", "-window", "256", "-workers", "1")

	fas, err := filepath.Glob(filepath.Join(dir, "*.fa"))
	if err != nil || len(fas) == 0 {
		t.Fatalf("no generated chromosomes: %v", err)
	}
	type inputDoc struct {
		Name string `json:"name"`
		Ref  string `json:"ref"`
		Aln  string `json:"aln"`
		SNP  string `json:"snp,omitempty"`
	}
	var inputs []inputDoc
	for _, fa := range fas {
		base := strings.TrimSuffix(fa, ".fa")
		ref, err := os.ReadFile(fa)
		if err != nil {
			t.Fatal(err)
		}
		fq, err := os.ReadFile(base + ".fq")
		if err != nil {
			t.Fatal(err)
		}
		in := inputDoc{Name: filepath.Base(base), Ref: string(ref), Aln: string(fq)}
		if snp, err := os.ReadFile(base + ".snp"); err == nil {
			in.SNP = string(snp)
		}
		inputs = append(inputs, in)
	}
	specBody, err := json.Marshal(map[string]any{
		"inputs": inputs, "engine": "gsnp-cpu", "window": 256,
		"format": "fastq", "output_format": "vcf",
	})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(base string) string {
		t.Helper()
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(specBody))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
		}
		var accepted gsnpdJobDoc
		if err := json.Unmarshal(data, &accepted); err != nil || accepted.ID == "" {
			t.Fatalf("bad accept document %s: %v", data, err)
		}
		return accepted.ID
	}

	jdir := filepath.Join(t.TempDir(), "journal")
	cmdA, baseA, _ := startGsnpd(t, "-workers", "1", "-journal-dir", jdir)
	id := submit(baseA)

	// Kill -9 once at least one chromosome is durably checkpointed but the
	// job as a whole is still running.
	deadline := time.Now().Add(time.Minute)
	for {
		doc := gsnpdGetJob(t, baseA, id)
		if doc.Completed >= 1 && doc.Completed < doc.Total {
			break
		}
		if doc.Completed == doc.Total && doc.Total > 0 {
			t.Fatalf("job finished before the kill could land; enlarge the dataset")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no chromosome completed within a minute: %+v", doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmdA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmdA.Wait()

	cmdB, baseB, stderrB := startGsnpd(t, "-workers", "2", "-journal-dir", jdir)
	if doc := gsnpdGetJob(t, baseB, id); !doc.Recovered {
		t.Fatalf("restarted job not marked recovered: %+v\nstderr:\n%s", doc, stderrB.String())
	}

	// The recovered stream: VCF bytes identical to the CLI run, with the
	// pre-kill chromosomes served from checkpoints.
	streamed, finalState := gsnpdStream(t, baseB, id)
	if finalState != "done" {
		t.Fatalf("recovered job final state %q, want done", finalState)
	}
	if len(streamed) != len(fas) {
		t.Fatalf("recovered stream carried %d chromosomes, want %d", len(streamed), len(fas))
	}
	for _, fa := range fas {
		name := filepath.Base(fa)
		want, err := os.ReadFile(strings.TrimSuffix(fa, ".fa") + ".vcf")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed[name], want) {
			t.Errorf("%s: recovered VCF bytes differ from the CLI run", name)
		}
	}

	// The completed recovery caches its result; an identical resubmission
	// replays from the cache without recomputing anything.
	deadline = time.Now().Add(10 * time.Second)
	for gsnpdGetStatz(t, baseB).Cache.Puts == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("recovered result never cached: %+v", gsnpdGetStatz(t, baseB))
		}
		time.Sleep(10 * time.Millisecond)
	}
	id2 := submit(baseB)
	replayed, state2 := gsnpdStream(t, baseB, id2)
	if state2 != "cached" {
		t.Fatalf("resubmission after recovery: final state %q, want cached", state2)
	}
	for name, want := range streamed {
		if !bytes.Equal(replayed[name], want) {
			t.Errorf("%s: cached replay differs from the recovered stream", name)
		}
	}

	if err := cmdB.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmdB.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gsnpd exit after recovery drain: %v\nstderr:\n%s", err, stderrB.String())
		}
	case <-time.After(time.Minute):
		cmdB.Process.Kill()
		t.Fatalf("recovered gsnpd did not drain\nstderr:\n%s", stderrB.String())
	}
}
