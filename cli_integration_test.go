package gsnp_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTools compiles the command-line tools once per test binary run.
var buildTools = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "gsnp-bin-*")
	if err != nil {
		return "", err
	}
	for _, tool := range []string{"gsnp", "gsnp-gen", "gsnp-align", "gsnp-dump", "gsnp-experiments"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return "", &buildError{tool: tool, out: string(out), err: err}
		}
	}
	return dir, nil
})

type buildError struct {
	tool string
	out  string
	err  error
}

func (e *buildError) Error() string {
	return "building " + e.tool + ": " + e.err.Error() + "\n" + e.out
}

// run executes a built tool, failing the test on non-zero exit.
func run(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	dir, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(dir, bin), args...)
	var so, se bytes.Buffer
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", bin, args, err, so.String(), se.String())
	}
	return so.String(), se.String()
}

// TestCLIFullChain drives the complete production flow through the built
// binaries: generate -> align -> call (all three engines) -> dump.
func TestCLIFullChain(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()

	// Generate a workload with raw FASTQ reads.
	_, genErr := run(t, "gsnp-gen", "-out", dir, "-sites", "12000", "-depth", "9", "-seed", "33", "-fastq")
	if !strings.Contains(genErr+"", "") {
		t.Log(genErr)
	}
	for _, f := range []string{"chrSim.fa", "chrSim.soap", "chrSim.snp", "chrSim.fq", "chrSim.truth"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("generator did not write %s: %v", f, err)
		}
	}

	// Align the raw reads (independent of the generator's own alignments).
	run(t, "gsnp-align",
		"-ref", filepath.Join(dir, "chrSim.fa"),
		"-fastq", filepath.Join(dir, "chrSim.fq"),
		"-out", filepath.Join(dir, "aligned.soap"))

	// Call SNPs with all three engines over the generator's alignments;
	// outputs must be byte-identical.
	var outputs [][]byte
	for _, engine := range []string{"soapsnp", "gsnp-cpu", "gsnp-gpu"} {
		out := filepath.Join(dir, "result-"+engine+".txt")
		run(t, "gsnp",
			"-ref", filepath.Join(dir, "chrSim.fa"),
			"-aln", filepath.Join(dir, "chrSim.soap"),
			"-snp", filepath.Join(dir, "chrSim.snp"),
			"-engine", engine, "-out", out)
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, data)
	}
	if !bytes.Equal(outputs[0], outputs[1]) || !bytes.Equal(outputs[0], outputs[2]) {
		t.Fatal("engine outputs differ through the CLI")
	}

	// Compressed output and the dump tool.
	blob := filepath.Join(dir, "result.gsnp")
	run(t, "gsnp",
		"-ref", filepath.Join(dir, "chrSim.fa"),
		"-aln", filepath.Join(dir, "chrSim.soap"),
		"-snp", filepath.Join(dir, "chrSim.snp"),
		"-engine", "gsnp-gpu", "-compress", "-out", blob)
	dumped, _ := run(t, "gsnp-dump", blob)
	if !bytes.Equal([]byte(dumped), outputs[0]) {
		t.Fatal("gsnp-dump output differs from the text engines")
	}

	// VCF export is a valid non-empty VCF when SNPs exist.
	vcf, _ := run(t, "gsnp-dump", "-vcf", blob)
	if !strings.HasPrefix(vcf, "##fileformat=VCFv4.2") {
		t.Error("VCF export missing header")
	}

	// The SAM input path agrees with the SOAP path (conversion done via
	// the calling engine's own output equality, checked in unit tests;
	// here we just confirm the flag is accepted end to end).
	_, statsErr := run(t, "gsnp",
		"-ref", filepath.Join(dir, "chrSim.fa"),
		"-aln", filepath.Join(dir, "aligned.soap"),
		"-engine", "gsnp-cpu", "-stats", "-out", os.DevNull)
	if !strings.Contains(statsErr, "gsnp-cpu:") {
		t.Errorf("-stats output missing: %q", statsErr)
	}
}

// TestCLIExperimentsList checks the experiment runner's surface.
func TestCLIExperimentsList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out, _ := run(t, "gsnp-experiments", "-list")
	for _, id := range []string{"table1", "fig12", "ext-consistency"} {
		if !strings.Contains(out, id) {
			t.Errorf("experiment list missing %s", id)
		}
	}
}
