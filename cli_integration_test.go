package gsnp_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gsnp/internal/checkpoint"
)

// buildTools compiles the command-line tools once per test binary run.
var buildTools = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "gsnp-bin-*")
	if err != nil {
		return "", err
	}
	for _, tool := range []string{"gsnp", "gsnp-gen", "gsnp-align", "gsnp-dump", "gsnp-experiments", "gsnpd"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return "", &buildError{tool: tool, out: string(out), err: err}
		}
	}
	return dir, nil
})

type buildError struct {
	tool string
	out  string
	err  error
}

func (e *buildError) Error() string {
	return "building " + e.tool + ": " + e.err.Error() + "\n" + e.out
}

// run executes a built tool, failing the test on non-zero exit.
func run(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	dir, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(dir, bin), args...)
	var so, se bytes.Buffer
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", bin, args, err, so.String(), se.String())
	}
	return so.String(), se.String()
}

// runCode executes a built tool and returns its exit code alongside the
// captured output — for flows where a non-zero exit is the expectation
// (partial results exit 2, fatal errors exit 1).
func runCode(t *testing.T, bin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(dir, bin), args...)
	var so, se bytes.Buffer
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return code, so.String(), se.String()
}

// TestCLIFullChain drives the complete production flow through the built
// binaries: generate -> align -> call (all three engines) -> dump.
func TestCLIFullChain(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()

	// Generate a workload with raw FASTQ reads.
	_, genErr := run(t, "gsnp-gen", "-out", dir, "-sites", "12000", "-depth", "9", "-seed", "33", "-fastq")
	if !strings.Contains(genErr+"", "") {
		t.Log(genErr)
	}
	for _, f := range []string{"chrSim.fa", "chrSim.soap", "chrSim.snp", "chrSim.fq", "chrSim.truth"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("generator did not write %s: %v", f, err)
		}
	}

	// Align the raw reads (independent of the generator's own alignments).
	run(t, "gsnp-align",
		"-ref", filepath.Join(dir, "chrSim.fa"),
		"-fastq", filepath.Join(dir, "chrSim.fq"),
		"-out", filepath.Join(dir, "aligned.soap"))

	// Call SNPs with all three engines over the generator's alignments;
	// outputs must be byte-identical.
	var outputs [][]byte
	for _, engine := range []string{"soapsnp", "gsnp-cpu", "gsnp-gpu"} {
		out := filepath.Join(dir, "result-"+engine+".txt")
		run(t, "gsnp",
			"-ref", filepath.Join(dir, "chrSim.fa"),
			"-aln", filepath.Join(dir, "chrSim.soap"),
			"-snp", filepath.Join(dir, "chrSim.snp"),
			"-engine", engine, "-out", out)
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, data)
	}
	if !bytes.Equal(outputs[0], outputs[1]) || !bytes.Equal(outputs[0], outputs[2]) {
		t.Fatal("engine outputs differ through the CLI")
	}

	// Compressed output and the dump tool.
	blob := filepath.Join(dir, "result.gsnp")
	run(t, "gsnp",
		"-ref", filepath.Join(dir, "chrSim.fa"),
		"-aln", filepath.Join(dir, "chrSim.soap"),
		"-snp", filepath.Join(dir, "chrSim.snp"),
		"-engine", "gsnp-gpu", "-compress", "-out", blob)
	dumped, _ := run(t, "gsnp-dump", blob)
	if !bytes.Equal([]byte(dumped), outputs[0]) {
		t.Fatal("gsnp-dump output differs from the text engines")
	}

	// VCF export is a valid non-empty VCF when SNPs exist.
	vcf, _ := run(t, "gsnp-dump", "-vcf", blob)
	if !strings.HasPrefix(vcf, "##fileformat=VCFv4.2") {
		t.Error("VCF export missing header")
	}

	// The SAM input path agrees with the SOAP path (conversion done via
	// the calling engine's own output equality, checked in unit tests;
	// here we just confirm the flag is accepted end to end).
	_, statsErr := run(t, "gsnp",
		"-ref", filepath.Join(dir, "chrSim.fa"),
		"-aln", filepath.Join(dir, "aligned.soap"),
		"-engine", "gsnp-cpu", "-stats", "-out", os.DevNull)
	if !strings.Contains(statsErr, "gsnp-cpu:") {
		t.Errorf("-stats output missing: %q", statsErr)
	}
}

// countLines counts newline-terminated records in a file.
func countLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Count(data, []byte{'\n'})
}

// compareResults requires every *.result file of wantDir to exist in gotDir
// with identical bytes.
func compareResults(t *testing.T, wantDir, gotDir string) {
	t.Helper()
	wants, err := filepath.Glob(filepath.Join(wantDir, "*.result"))
	if err != nil || len(wants) == 0 {
		t.Fatalf("no baseline results in %s: %v", wantDir, err)
	}
	for _, w := range wants {
		name := filepath.Base(w)
		want, err := os.ReadFile(w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(gotDir, name))
		if err != nil {
			t.Errorf("%s missing after recovery: %v", name, err)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs from the clean serial baseline", name)
		}
	}
}

// TestCLISingleFileQuarantineExitCodes: in single-file mode, injected
// corruption with -quarantine completes degraded (exit 2, quarantine lines
// on stderr); without -quarantine the same input is fatal (exit 1).
func TestCLISingleFileQuarantineExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	run(t, "gsnp-gen", "-out", dir, "-sites", "4000", "-depth", "8", "-seed", "7")
	args := []string{
		"-ref", filepath.Join(dir, "chrSim.fa"),
		"-aln", filepath.Join(dir, "chrSim.soap"),
		"-engine", "gsnp-cpu", "-window", "1000",
		"-out", filepath.Join(dir, "out.txt"),
		"-faults", "corrupt-every=100",
	}
	code, _, stderr := runCode(t, "gsnp", append(args, "-quarantine")...)
	if code != 2 {
		t.Fatalf("quarantined run exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "quarantined") {
		t.Errorf("stderr misses the quarantine record:\n%s", stderr)
	}
	if code, _, _ := runCode(t, "gsnp", args...); code != 1 {
		t.Fatalf("strict run exit = %d, want 1", code)
	}
}

// TestCLIFaultToleranceGenome is the acceptance scenario of the
// fault-tolerance work: a whole-genome run with injected parse corruption,
// transient I/O errors and one worker panic completes with only the
// affected windows quarantined, exits 2 with a machine-readable failure
// report, and a -resume rerun on clean inputs converges to bytes identical
// to an uninjected serial run.
func TestCLIFaultToleranceGenome(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	baseDir, faultDir := t.TempDir(), t.TempDir()
	for _, d := range []string{baseDir, faultDir} {
		run(t, "gsnp-gen", "-out", d, "-genome", "-scale", "20", "-seed", "77")
	}
	// Clean serial baseline: the byte-identity reference.
	run(t, "gsnp", "-genome-dir", baseDir, "-engine", "gsnp-cpu", "-window", "256", "-workers", "1")

	// Aim the per-stream fault schedules at the largest chromosome only:
	// corruption and transient errors fire at record maxLines, which only
	// that chromosome's stream reaches. Smaller chromosomes stay clean and
	// must checkpoint.
	soaps, err := filepath.Glob(filepath.Join(faultDir, "*.soap"))
	if err != nil || len(soaps) != 24 {
		t.Fatalf("have %d .soap files, want 24 (%v)", len(soaps), err)
	}
	maxLines, minLines := 0, 1<<62
	for _, s := range soaps {
		n := countLines(t, s)
		if n > maxLines {
			maxLines = n
		}
		if n < minLines {
			minLines = n
		}
	}
	if maxLines <= minLines {
		t.Fatalf("degenerate genome: every chromosome has %d records", maxLines)
	}

	// Two transient failures burn two attempts (retries=3 leaves headroom);
	// the surviving attempt hits the corrupt record, which quarantine
	// contains. panic-window=1 panics the first window-1 computation of the
	// whole run; quarantine contains that too.
	spec := fmt.Sprintf("corrupt-every=%d,transient-every=%d,transient-fails=2,panic-window=1",
		maxLines, maxLines)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	code, _, stderr := runCode(t, "gsnp",
		"-genome-dir", faultDir, "-engine", "gsnp-cpu", "-window", "256",
		"-quarantine", "-retries", "3", "-failure-report", reportPath,
		"-faults", spec)
	if code != 2 {
		t.Fatalf("faulted run exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "PARTIAL") {
		t.Errorf("stderr misses the PARTIAL marker:\n%s", stderr)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var fr checkpoint.FailureReport
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatalf("failure report does not parse: %v", err)
	}
	if fr.ExitCode != 2 || len(fr.Tasks) != 24 {
		t.Fatalf("report: exit_code=%d tasks=%d, want 2 and 24", fr.ExitCode, len(fr.Tasks))
	}
	counts := map[string]int{}
	retried := false
	for _, task := range fr.Tasks {
		counts[task.Status]++
		if task.Attempts > 1 {
			retried = true
		}
	}
	if counts[checkpoint.StatusOK] == 0 || counts[checkpoint.StatusPartial] == 0 ||
		counts[checkpoint.StatusFailed] != 0 {
		t.Fatalf("task statuses %v: want ok and partial coexisting, nothing failed", counts)
	}
	if !retried {
		t.Error("no task recorded >1 attempt despite injected transient errors")
	}

	// Clean chromosomes (and only those) are checkpointed.
	m, err := checkpoint.Load(checkpoint.Path(faultDir))
	if err != nil || m == nil {
		t.Fatalf("checkpoint manifest: %v", err)
	}
	if len(m.Done) != counts[checkpoint.StatusOK] {
		t.Errorf("manifest has %d entries, %d tasks finished clean", len(m.Done), counts[checkpoint.StatusOK])
	}

	// Resume with the faults gone: checkpointed chromosomes are skipped,
	// degraded ones recomputed, and the directory converges to the clean
	// serial baseline byte for byte. Quarantine is part of the checkpoint
	// fingerprint (a quarantined run may omit windows), so the resume must
	// carry the same -quarantine flag; only clean chromosomes were
	// checkpointed, and with no faults injected nothing quarantines, so
	// the converged output is still byte-identical to the clean baseline.
	code, _, stderr = runCode(t, "gsnp",
		"-genome-dir", faultDir, "-engine", "gsnp-cpu", "-window", "256", "-resume", "-quarantine")
	if code != 0 {
		t.Fatalf("resume exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "skipped (checkpoint") {
		t.Errorf("resume did not skip checkpointed chromosomes:\n%s", stderr)
	}
	compareResults(t, baseDir, faultDir)
}

// TestCLIResumeAfterKill kills a genome run mid-flight (three chromosomes
// wedged on an injected stall, the rest completing and checkpointing) and
// requires a -resume rerun to finish with output byte-identical to a clean
// serial run.
func TestCLIResumeAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	baseDir, workDir := t.TempDir(), t.TempDir()
	for _, d := range []string{baseDir, workDir} {
		run(t, "gsnp-gen", "-out", d, "-genome", "-scale", "20", "-seed", "88")
	}
	run(t, "gsnp", "-genome-dir", baseDir, "-engine", "gsnp-cpu", "-window", "256", "-workers", "1")

	// Window index 15 exists only on chromosomes longer than 15*256 sites —
	// the three largest at this scale. They wedge; everything else
	// completes and checkpoints.
	bin, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(bin, "gsnp"),
		"-genome-dir", workDir, "-engine", "gsnp-cpu", "-window", "256",
		"-workers", "4", "-faults", "stall-window=15,stall=300s")
	var se bytes.Buffer
	cmd.Stderr = &se
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		m, _ := checkpoint.Load(checkpoint.Path(workDir))
		if m != nil && len(m.Done) >= 8 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("no checkpoint progress before the deadline\nstderr:\n%s", se.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()

	code, _, stderr := runCode(t, "gsnp",
		"-genome-dir", workDir, "-engine", "gsnp-cpu", "-window", "256", "-resume")
	if code != 0 {
		t.Fatalf("resume exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "skipped (checkpoint") {
		t.Errorf("resume did not skip checkpointed chromosomes:\n%s", stderr)
	}
	compareResults(t, baseDir, workDir)
}

// TestCLIExperimentsList checks the experiment runner's surface.
func TestCLIExperimentsList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out, _ := run(t, "gsnp-experiments", "-list")
	for _, id := range []string{"table1", "fig12", "ext-consistency"} {
		if !strings.Contains(out, id) {
			t.Errorf("experiment list missing %s", id)
		}
	}
}
