// Command gsnp-gen generates synthetic SNP-calling workloads: a reference
// FASTA, a position-sorted SOAP alignment file, a known-SNP prior file and
// a ground-truth variant list. It substitutes for the operational
// sequencing data of the paper's evaluation.
//
// Usage:
//
//	gsnp-gen -out data/ -chr chr21 -scale 250 [-seed N]     # one chromosome
//	gsnp-gen -out data/ -genome -scale 100 [-seed N]        # all 24
//	gsnp-gen -out data/ -sites 500000 -depth 11 [-seed N]   # custom size
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gsnp/internal/align"
	"gsnp/internal/bayes"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnp-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir = flag.String("out", ".", "output directory")
		chr    = flag.String("chr", "", "single chromosome name (chr1..chr22, chrX, chrY)")
		genome = flag.Bool("genome", false, "generate all 24 chromosomes")
		scale  = flag.Int("scale", 250, "sites per real megabase")
		sites  = flag.Int("sites", 0, "custom chromosome length in sites (overrides -chr/-genome)")
		depth  = flag.Float64("depth", 10, "sequencing depth for -sites mode")
		seed   = flag.Int64("seed", 20110607, "generation seed")
		fastq  = flag.Bool("fastq", false, "also write the raw reads as FASTQ (for gsnp-align)")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var specs []seqsim.ChromosomeSpec
	switch {
	case *sites > 0:
		specs = []seqsim.ChromosomeSpec{{
			Name: "chrSim", Length: *sites, Depth: *depth, MaskFraction: 0.12, Seed: *seed,
		}}
	case *genome:
		specs = seqsim.ScaledHumanGenome(*scale, *seed)
	case *chr != "":
		for _, s := range seqsim.ScaledHumanGenome(*scale, *seed) {
			if s.Name == *chr {
				specs = []seqsim.ChromosomeSpec{s}
			}
		}
		if len(specs) == 0 {
			return fmt.Errorf("unknown chromosome %q", *chr)
		}
	default:
		flag.Usage()
		return fmt.Errorf("one of -chr, -genome or -sites is required")
	}

	for _, spec := range specs {
		if err := writeDataset(*outDir, spec, *fastq); err != nil {
			return err
		}
	}
	return nil
}

func writeDataset(dir string, spec seqsim.ChromosomeSpec, fastq bool) error {
	ds := seqsim.BuildDataset(spec)
	st := ds.Stats()
	fmt.Printf("%s: %v\n", spec.Name, st)

	// Reference FASTA.
	if err := withFile(filepath.Join(dir, spec.Name+".fa"), func(f *os.File) error {
		return snpio.WriteFASTA(f, snpio.FASTARecord{Name: spec.Name, Seq: ds.Ref.Seq})
	}); err != nil {
		return err
	}

	// SOAP alignment.
	if err := withFile(filepath.Join(dir, spec.Name+".soap"), func(f *os.File) error {
		return snpio.WriteSOAP(f, spec.Name, ds.Reads)
	}); err != nil {
		return err
	}

	// Known-SNP prior file.
	known := snpio.KnownSNPs{}
	for _, v := range ds.Diploid.Variants {
		if !v.Known {
			continue
		}
		a1, a2 := v.Genotype.Alleles()
		rec := &bayes.KnownSNP{Validated: true}
		rec.Freq[a1] += 0.5
		rec.Freq[a2] += 0.5
		known[v.Pos] = rec
	}
	if err := withFile(filepath.Join(dir, spec.Name+".snp"), func(f *os.File) error {
		return snpio.WriteKnownSNPs(f, spec.Name, known)
	}); err != nil {
		return err
	}

	// Raw reads in FASTQ for the aligner stage.
	if fastq {
		raws := make([]align.RawRead, len(ds.Reads))
		for i := range ds.Reads {
			raws[i] = align.RawFromAligned(&ds.Reads[i])
		}
		if err := withFile(filepath.Join(dir, spec.Name+".fq"), func(f *os.File) error {
			return snpio.WriteFASTQ(f, raws)
		}); err != nil {
			return err
		}
	}

	// Ground truth (not a pipeline input; for accuracy evaluation).
	return withFile(filepath.Join(dir, spec.Name+".truth"), func(f *os.File) error {
		bw := bufio.NewWriter(f)
		for _, v := range ds.Diploid.Variants {
			k := 0
			if v.Known {
				k = 1
			}
			if _, err := fmt.Fprintf(bw, "%s\t%d\t%c\t%c\t%d\n",
				spec.Name, v.Pos+1, v.Ref.Byte(), v.Genotype.IUPAC(), k); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}

func withFile(path string, f func(*os.File) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
