// Command gsnp-dump decompresses GSNP output containers — the
// decompression tool of Section V-B. It converts the compressed result
// back to the 17-column text format, optionally filtering to SNP rows.
//
// Usage:
//
//	gsnp-dump result.gsnp                 # full table to stdout
//	gsnp-dump -snps result.gsnp           # non-reference calls only
//	gsnp-dump -head 10 -stats result.gsnp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gsnp/internal/snpio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnp-dump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		snpsOnly = flag.Bool("snps", false, "print only non-reference calls")
		head     = flag.Int("head", 0, "print at most N rows (0 = all)")
		stats    = flag.Bool("stats", false, "print container statistics to stderr")
		vcf      = flag.Bool("vcf", false, "emit variants as VCFv4.2 instead of the 17-column table")
		minQual  = flag.Int("min-quality", 0, "drop SNP calls below this consensus quality")
		minDepth = flag.Int("min-depth", 0, "drop SNP calls below this depth")
		minRank  = flag.Float64("min-ranksum", 0, "drop heterozygous calls with rank-sum p below this (allele-bias filter)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one input file required")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	br := snpio.NewBlockReader(f)
	var write func(*snpio.Row) error
	var flush func() error
	if *vcf {
		vw := snpio.NewVCFWriter(os.Stdout)
		write, flush = vw.Write, vw.Flush
	} else {
		out := snpio.NewResultWriter(os.Stdout)
		write, flush = out.Write, out.Flush
	}
	// keep applies the quality filters to SNP rows (non-SNP rows pass:
	// the filters judge calls, not coverage gaps).
	keep := func(r *snpio.Row) bool {
		if !r.IsSNP() {
			return true
		}
		if int(r.Quality) < *minQual || int(r.Depth) < *minDepth {
			return false
		}
		if *minRank > 0 && r.SecondBase != 'N' && r.RankSumP < *minRank {
			return false
		}
		return true
	}

	var blocks, rows, snps, filtered, printed int64
	for {
		blk, err := br.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		blocks++
		for i := range blk {
			rows++
			if blk[i].IsSNP() {
				snps++
				if !keep(&blk[i]) {
					filtered++
					continue
				}
			} else if *snpsOnly || *vcf {
				continue
			}
			if *head > 0 && printed >= int64(*head) {
				continue
			}
			if err := write(&blk[i]); err != nil {
				return err
			}
			printed++
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if *stats {
		info, err := f.Stat()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %d blocks, %d rows, %d SNPs (%d filtered out), %d compressed bytes (%.1f bits/site)\n",
			flag.Arg(0), blocks, rows, snps, filtered, info.Size(), 8*float64(info.Size())/float64(rows))
	}
	return nil
}
