// Command gsnp-experiments regenerates the tables and figures of the
// paper's evaluation (Section VI) on scaled synthetic workloads.
//
// Usage:
//
//	gsnp-experiments -exp all                 # every table and figure
//	gsnp-experiments -exp table4,fig5         # a subset
//	gsnp-experiments -list                    # show experiment ids
//	gsnp-experiments -exp all -scale 250 -o report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gsnp/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnp-experiments:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale = flag.Int("scale", harness.DefaultScale().SitesPerMb, "sites per real megabase")
		seed  = flag.Int64("seed", harness.DefaultScale().Seed, "data generation seed")
		out   = flag.String("o", "", "write the report to a file instead of stdout")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close %s: %w", *out, cerr)
			}
		}()
		w = f
	}

	ids := harness.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	s := harness.NewSession(harness.Scale{SitesPerMb: *scale, Seed: *seed})
	fmt.Fprintf(w, "GSNP reproduction report — scale %d sites/Mb, seed %d, %s\n\n",
		*scale, *seed, time.Now().Format(time.RFC3339))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := s.Run(id)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Format())
		fmt.Fprintf(w, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
