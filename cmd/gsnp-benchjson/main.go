// Command gsnp-benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON perf record, so benchmark runs can be archived and
// diffed across commits (the `make bench-json` target writes
// BENCH_pipeline.json this way).
//
// Every benchmark result line becomes one entry. Metric keys are the
// benchmark units verbatim ("ns/op", "B/op", "allocs/op", plus any
// ReportMetric extras such as "sites/s"); for the window-level benchmarks
// one op is one window, so ns/op reads as ns/window.
//
// Usage:
//
//	go test -bench BenchmarkRunWindow -benchmem ./internal/gsnp | gsnp-benchjson > BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark result.
type entry struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit strings to values.
	Metrics map[string]float64 `json:"metrics"`
}

// report is the emitted document.
type report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []entry           `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnp-benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	rep := report{Context: map[string]string{}, Benchmarks: []entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// Header lines: "goos: linux", "goarch: amd64", "pkg: ...", "cpu: ...".
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "gsnp-benchjson: skipping unparseable line: %s\n", line)
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	// A human-readable echo on stderr, since stdout is usually redirected.
	for _, e := range rep.Benchmarks {
		fmt.Fprintf(os.Stderr, "gsnp-benchjson: %-40s %12.1f ns/op\n", e.Name, e.Metrics["ns/op"])
	}
	return nil
}

// parseLine decodes one result line:
//
//	BenchmarkRunWindowCPU/cw=1-8   500   2000000 ns/op   0 B/op   0 allocs/op   2048000 sites/s
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}
