// Command gsnp calls SNPs from an alignment file, a FASTA reference and an
// optional known-SNP prior file — the command-line equivalent of SOAPsnp,
// with three engines:
//
//	-engine soapsnp    the dense CPU baseline (Algorithms 1-2 of the paper)
//	-engine gsnp-cpu   the sparse algorithm on the CPU (GSNP_CPU)
//	-engine gsnp-gpu   the full GSNP pipeline on the simulated GPU
//
// Usage:
//
//	gsnp -ref ref.fa -aln reads.soap [-snp known.snp] -out result.txt \
//	     [-engine gsnp-gpu] [-format soap|sam|fastq] [-window N] [-compress] [-stats]
//
// With -format fastq the input is raw sequencer reads: the built-in
// k-mer aligner places them against the reference in-process (sharded
// across -align-workers, tunable with -align-mm/-align-k) and streams the
// position-sorted result straight into windowed calling — no intermediate
// alignment file. Combined with -output-format vcf this is the complete
// raw-reads-to-variants pipeline:
//
//	gsnp -ref chr21.fa -aln chr21.fq -format fastq -output-format vcf -out chr21.vcf
//
// Whole-genome mode processes a directory of per-chromosome files (the
// production layout of the paper's evaluation: 24 separate sequence
// files), calling each <name>.fa against <name>.soap (+ optional
// <name>.snp) and writing <name>.result[.gsnp]. Chromosomes run on a
// bounded worker pool (-workers, default GOMAXPROCS); every chromosome is
// independent, so the result files are byte-identical at any worker count.
// With -format fastq the pairs are <name>.fa/<name>.fq and each
// chromosome is aligned before calling; with -output-format vcf the
// output files are <name>.vcf:
//
//	gsnp -genome-dir data/ [-engine gsnp-gpu] [-workers N] [-compress] [-stats]
//
// Long runs degrade instead of dying. A failing chromosome no longer
// discards the completed ones: each chromosome reports its own outcome,
// and the process distinguishes partial success (exit code 2: some
// chromosomes failed or were degraded, the rest are on disk) from fatal
// errors (exit code 1: nothing usable happened). The fault-tolerance
// flags:
//
//	-retries N          re-run a failed chromosome up to N times with
//	                    exponential backoff (-retry-backoff, default 100ms)
//	-task-timeout D     per-chromosome deadline; a wedged chromosome is
//	                    cut short and counted as failed
//	-quarantine         contain malformed records and panicking windows:
//	                    the affected window is skipped and recorded, the
//	                    chromosome completes with the rest of its output
//	-resume             skip chromosomes already recorded in the genome
//	                    directory's checkpoint manifest (written after
//	                    every clean completion, validated by output digest)
//	-failure-report F   write a machine-readable JSON report of every
//	                    chromosome's outcome, including quarantined windows
//	-faults SPEC        inject deterministic failures (testing; see
//	                    internal/faults)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gsnp/internal/checkpoint"
	"gsnp/internal/faults"
	"gsnp/internal/genomejob"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/sched"
)

// options carries the parsed command line. The engine configuration lives
// in genomejob.Options — the decomposition/dispatch package shared with
// the gsnpd service — so the CLI and the server run one code path.
type options struct {
	call    genomejob.Options
	workers int

	retries       int
	retryBackoff  time.Duration
	taskTimeout   time.Duration
	resume        bool
	failureReport string
}

// errPartial marks a run that produced usable output alongside failures:
// quarantined windows, failed chromosomes among successful ones. It maps
// to exit code 2, distinct from fatal errors (exit code 1).
var errPartial = errors.New("partial results")

func main() {
	err := run()
	switch {
	case err == nil:
	case errors.Is(err, errPartial):
		fmt.Fprintln(os.Stderr, "gsnp:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "gsnp:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		refPath   = flag.String("ref", "", "reference FASTA file")
		alnPath   = flag.String("aln", "", "alignment file (or raw FASTQ reads with -format fastq)")
		format    = flag.String("format", "soap", "input format: soap, sam or fastq (raw reads, aligned in-process)")
		snpPath   = flag.String("snp", "", "known-SNP prior file (optional)")
		outPath   = flag.String("out", "", "output file ('-' or empty for stdout)")
		genomeDir = flag.String("genome-dir", "", "process every <chr>.fa/<chr>.soap pair in a directory")
		engine    = flag.String("engine", "gsnp-gpu", "engine: soapsnp, gsnp-cpu or gsnp-gpu")
		window    = flag.Int("window", 0, "sites per window (0 = engine default)")
		workers   = flag.Int("workers", 0, "concurrent chromosomes in -genome-dir mode (0 = GOMAXPROCS)")
		computeW  = flag.Int("compute-workers", 0, "site-parallel likelihood/posterior workers per window (gsnp-cpu; 0 = GOMAXPROCS)")
		prefetch  = flag.Bool("prefetch", false, "overlap window read I/O with computation (double buffering)")
		compress  = flag.Bool("compress", false, "write the GSNP compressed container (gsnp engines only)")
		stats     = flag.Bool("stats", false, "print per-component timing to stderr")
		outFormat = flag.String("output-format", "", "result codec: rows (default, the 17-column table) or vcf")
		alignMM   = flag.Int("align-mm", 0, "aligner mismatch budget per read (-format fastq; 0 = default 2)")
		alignK    = flag.Int("align-k", 0, "aligner k-mer seed length (-format fastq; 0 = default 16, max 31)")
		alignW    = flag.Int("align-workers", 0, "alignment-stage workers per chromosome (-format fastq; 0 = GOMAXPROCS)")

		retries    = flag.Int("retries", 0, "re-run a failed chromosome up to N times (exponential backoff)")
		backoff    = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay between retries of a failed chromosome")
		taskTO     = flag.Duration("task-timeout", 0, "per-chromosome deadline (0 = none)")
		quarantine = flag.Bool("quarantine", false, "contain malformed records and panicking windows instead of aborting")
		resume     = flag.Bool("resume", false, "skip chromosomes recorded in the genome directory's checkpoint manifest")
		failReport = flag.String("failure-report", "", "write a JSON report of per-chromosome outcomes to this file")
		faultSpec  = flag.String("faults", "", "inject deterministic failures, e.g. seed=1,corrupt-every=40 (testing)")
	)
	flag.Parse()

	opts := options{
		call: genomejob.Options{
			Engine: *engine, Format: *format, Window: *window,
			ComputeWorkers: *computeW, Prefetch: *prefetch,
			Compress: *compress, Stats: *stats, Quarantine: *quarantine,
			OutputFormat:     *outFormat,
			AlignMaxMismatch: *alignMM, AlignSeedLen: *alignK, AlignWorkers: *alignW,
		},
		workers: *workers,
		retries: *retries, retryBackoff: *backoff, taskTimeout: *taskTO,
		resume: *resume, failureReport: *failReport,
	}
	if *faultSpec != "" {
		inj, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		opts.call.Injector = inj
	}
	if err := opts.call.Validate(); err != nil {
		return err
	}

	if *genomeDir != "" {
		return runGenome(*genomeDir, opts)
	}
	if *refPath == "" || *alnPath == "" {
		flag.Usage()
		return fmt.Errorf("-ref and -aln are required (or use -genome-dir)")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" && *outPath != "-" {
		f, cerr := os.Create(*outPath)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close %s: %w", *outPath, cerr)
			}
		}()
		out = f
	}
	ctx := context.Background()
	if opts.taskTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.taskTimeout)
		defer cancel()
	}
	unit := genomejob.Unit{Name: filepath.Base(*refPath), Ref: *refPath, Aln: *alnPath, SNP: *snpPath}
	res, err := genomejob.Call(ctx, opts.call, unit, out, os.Stderr, nil)
	if err != nil {
		return err
	}
	if res.Partial() {
		for _, q := range res.Quarantined {
			fmt.Fprintf(os.Stderr, "gsnp: quarantined %v\n", q)
		}
		return fmt.Errorf("%w: %d window(s) quarantined, %d calibration record(s) skipped",
			errPartial, len(res.Quarantined), res.CalSkipped)
	}
	return nil
}

// chrOutput is one chromosome's buffered result in genome mode.
type chrOutput struct {
	outPath string
	diag    string // buffered -stats diagnostics, printed in input order
	res     genomejob.Result
}

// runGenome processes every chromosome of a directory — the 24-file
// production layout of the paper — on a bounded worker pool. Each task
// owns its own output file and (for gsnp-gpu) its own simulated device,
// so chromosomes never share mutable state and the result files are
// byte-identical to a serial run. Diagnostics are buffered per chromosome
// and printed in input order once the pool drains, keeping terminal
// output deterministic at any worker count.
//
// A failing chromosome does not discard the others: the pool runs every
// task, each chromosome's outcome is reported individually (and in the
// -failure-report JSON), clean completions are checkpointed for -resume,
// and the run as a whole returns errPartial (exit code 2) when usable
// output coexists with failures.
func runGenome(dir string, opts options) error {
	units, skipped, err := genomejob.Discover(dir, opts.call)
	if err != nil {
		return err
	}
	for _, sk := range skipped {
		fmt.Fprintf(os.Stderr, "gsnp: skipping %s: no alignment file %s\n", sk.Ref, sk.Aln)
	}
	fingerprint := opts.call.Fingerprint()
	cp, err := checkpoint.NewWriter(checkpoint.Path(dir), fingerprint, opts.resume)
	if err != nil {
		return err
	}

	// taskRep[i] is the report slot of tasks[i]; checkpoint-skipped
	// chromosomes get their report entry up front and never enter the pool.
	reports := make([]checkpoint.TaskReport, 0, len(units))
	var taskRep []int
	var tasks []sched.LocalTask[chrOutput, *gsnp.Arena]
	for _, unit := range units {
		name := unit.Name
		if e, ok := cp.Done(name); ok {
			fmt.Fprintf(os.Stderr, "gsnp: %s: skipped (checkpoint: %s)\n", name, e.Output)
			reports = append(reports, checkpoint.TaskReport{
				Name: name, Status: checkpoint.StatusSkipped, Output: e.Output, Sites: e.Sites})
			continue
		}
		reports = append(reports, checkpoint.TaskReport{Name: name})
		taskRep = append(taskRep, len(reports)-1)
		unit := unit
		tasks = append(tasks, sched.LocalTask[chrOutput, *gsnp.Arena]{
			Name: name,
			Run: func(ctx context.Context, arena *gsnp.Arena) (chrOutput, error) {
				var diag strings.Builder
				f, err := os.Create(unit.OutPath)
				if err != nil {
					return chrOutput{}, err
				}
				res, err := genomejob.Call(ctx, opts.call, unit, f, &diag, arena)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				out := chrOutput{outPath: unit.OutPath, diag: diag.String(), res: res}
				if err != nil {
					// Leave no half-written output behind: a later -resume
					// must recompute this chromosome from scratch.
					os.Remove(unit.OutPath)
					return out, err
				}
				// Degraded completions stay on disk but are never
				// checkpointed, so -resume recomputes them.
				if !res.Partial() {
					if cerr := cp.Complete(name, unit.OutPath, res.Sites); cerr != nil {
						return out, cerr
					}
				}
				return out, nil
			},
		})
	}

	// One window arena per pool worker: every chromosome a worker runs
	// recycles the same working set (outputs are unaffected — the arena
	// only carries buffer capacity between runs). The policy keeps the pool
	// going past failures, converts task panics to errors, and retries
	// everything except permanent record-level corruption.
	pol := sched.Policy{
		Retries:         opts.retries,
		Backoff:         opts.retryBackoff,
		Timeout:         opts.taskTimeout,
		RecoverPanics:   true,
		ContinueOnError: true,
		RetryIf: func(err error) bool {
			var re pipeline.RecordError
			return !errors.As(err, &re)
		},
	}
	results, stats, _ := sched.RunLocalPolicy(context.Background(), opts.workers, pol,
		func(int) *gsnp.Arena { return gsnp.NewArena() }, tasks)

	var okN, partialN, failedN, quarantinedN int
	for i, r := range results {
		rep := &reports[taskRep[i]]
		rep.Attempts = r.Attempts
		switch {
		case r.Skipped:
			rep.Status = checkpoint.StatusSkipped
			rep.Error = fmt.Sprint(r.Err)
			fmt.Fprintf(os.Stderr, "gsnp: %s: not run (%v)\n", r.Name, r.Err)
		case r.Err != nil:
			failedN++
			rep.Status = checkpoint.StatusFailed
			rep.Error = r.Err.Error()
			rep.Panicked = r.Panicked
			fmt.Fprintf(os.Stderr, "gsnp: %s: FAILED after %d attempt(s): %v\n", r.Name, r.Attempts, r.Err)
		default:
			if r.Value.diag != "" {
				fmt.Fprint(os.Stderr, r.Value.diag)
			}
			rep.Output = filepath.Base(r.Value.outPath)
			rep.Sites = r.Value.res.Sites
			rep.CalSkipped = r.Value.res.CalSkipped
			rep.Quarantined = r.Value.res.Quarantined
			line := fmt.Sprintf("gsnp: %s -> %s", r.Name, filepath.Base(r.Value.outPath))
			if r.Value.res.Partial() {
				partialN++
				quarantinedN += len(r.Value.res.Quarantined)
				rep.Status = checkpoint.StatusPartial
				line += fmt.Sprintf(" [PARTIAL: %d window(s) quarantined, %d calibration record(s) skipped]",
					len(r.Value.res.Quarantined), r.Value.res.CalSkipped)
				for _, q := range r.Value.res.Quarantined {
					fmt.Fprintf(os.Stderr, "gsnp: quarantined %v\n", q)
				}
			} else {
				okN++
				rep.Status = checkpoint.StatusOK
			}
			if opts.call.Stats {
				line += fmt.Sprintf(" (worker %d, %v, %s)",
					r.Worker, r.Wall.Round(time.Millisecond), siteRate(r.Value.res.Sites, r.Wall))
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if opts.call.Stats {
		fmt.Fprintf(os.Stderr, "gsnp: scheduler: %d workers ran %d chromosomes in %v (task time %v, speedup %.2fx, longest %s %v)\n",
			stats.Workers, stats.Ran, stats.Wall.Round(time.Millisecond),
			stats.TaskWall.Round(time.Millisecond), stats.Speedup(),
			stats.LongestName, stats.Longest.Round(time.Millisecond))
	}

	var runErr error
	if failedN > 0 || partialN > 0 {
		runErr = fmt.Errorf("%w: %d ok, %d partial, %d failed (%d window(s) quarantined)",
			errPartial, okN, partialN, failedN, quarantinedN)
	}
	if opts.failureReport != "" {
		code := 0
		if runErr != nil {
			code = 2
		}
		fr := &checkpoint.FailureReport{Fingerprint: fingerprint, ExitCode: code, Tasks: reports}
		if err := fr.Save(opts.failureReport); err != nil {
			return fmt.Errorf("failure report: %w", err)
		}
	}
	return runErr
}

// siteRate formats a sites-per-second throughput.
func siteRate(sites int, wall time.Duration) string {
	if wall <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f Msites/s", float64(sites)/wall.Seconds()/1e6)
}
