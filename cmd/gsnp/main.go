// Command gsnp calls SNPs from an alignment file, a FASTA reference and an
// optional known-SNP prior file — the command-line equivalent of SOAPsnp,
// with three engines:
//
//	-engine soapsnp    the dense CPU baseline (Algorithms 1-2 of the paper)
//	-engine gsnp-cpu   the sparse algorithm on the CPU (GSNP_CPU)
//	-engine gsnp-gpu   the full GSNP pipeline on the simulated GPU
//
// Usage:
//
//	gsnp -ref ref.fa -aln reads.soap [-snp known.snp] -out result.txt \
//	     [-engine gsnp-gpu] [-format soap|sam] [-window N] [-compress] [-stats]
//
// Whole-genome mode processes a directory of per-chromosome files (the
// production layout of the paper's evaluation: 24 separate sequence
// files), calling each <name>.fa against <name>.soap (+ optional
// <name>.snp) and writing <name>.result[.gsnp]. Chromosomes run on a
// bounded worker pool (-workers, default GOMAXPROCS); every chromosome is
// independent, so the result files are byte-identical at any worker count:
//
//	gsnp -genome-dir data/ [-engine gsnp-gpu] [-workers N] [-compress] [-stats]
package main

import (
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
	"gsnp/internal/sched"
	"gsnp/internal/snpio"
	"gsnp/internal/soapsnp"
)

// options carries the parsed command line.
type options struct {
	engine         string
	format         string
	window         int
	workers        int
	computeWorkers int
	prefetch       bool
	compress       bool
	stats          bool
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		refPath   = flag.String("ref", "", "reference FASTA file")
		alnPath   = flag.String("aln", "", "alignment file")
		format    = flag.String("format", "soap", "alignment format: soap or sam")
		snpPath   = flag.String("snp", "", "known-SNP prior file (optional)")
		outPath   = flag.String("out", "", "output file ('-' or empty for stdout)")
		genomeDir = flag.String("genome-dir", "", "process every <chr>.fa/<chr>.soap pair in a directory")
		engine    = flag.String("engine", "gsnp-gpu", "engine: soapsnp, gsnp-cpu or gsnp-gpu")
		window    = flag.Int("window", 0, "sites per window (0 = engine default)")
		workers   = flag.Int("workers", 0, "concurrent chromosomes in -genome-dir mode (0 = GOMAXPROCS)")
		computeW  = flag.Int("compute-workers", 0, "site-parallel likelihood/posterior workers per window (gsnp-cpu; 0 = GOMAXPROCS)")
		prefetch  = flag.Bool("prefetch", false, "overlap window read I/O with computation (double buffering)")
		compress  = flag.Bool("compress", false, "write the GSNP compressed container (gsnp engines only)")
		stats     = flag.Bool("stats", false, "print per-component timing to stderr")
	)
	flag.Parse()

	opts := options{
		engine: *engine, format: *format, window: *window,
		workers: *workers, computeWorkers: *computeW,
		prefetch: *prefetch, compress: *compress, stats: *stats,
	}
	switch opts.engine {
	case "soapsnp":
		if opts.compress {
			return fmt.Errorf("-compress requires a gsnp engine")
		}
	case "gsnp-cpu", "gsnp-gpu":
	default:
		return fmt.Errorf("unknown engine %q", opts.engine)
	}
	if opts.format != "soap" && opts.format != "sam" {
		return fmt.Errorf("unknown alignment format %q", opts.format)
	}

	if *genomeDir != "" {
		return runGenome(*genomeDir, opts)
	}
	if *refPath == "" || *alnPath == "" {
		flag.Usage()
		return fmt.Errorf("-ref and -aln are required (or use -genome-dir)")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" && *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	_, err := callOne(*refPath, *alnPath, *snpPath, out, os.Stderr, opts, nil)
	return err
}

// chrOutput is one chromosome's buffered result in genome mode.
type chrOutput struct {
	outPath string
	sites   int
	diag    string // buffered -stats diagnostics, printed in input order
}

// runGenome processes every chromosome of a directory — the 24-file
// production layout of the paper — on a bounded worker pool. Each task
// owns its own output file and (for gsnp-gpu) its own simulated device,
// so chromosomes never share mutable state and the result files are
// byte-identical to a serial run. Diagnostics are buffered per chromosome
// and printed in input order once the pool drains, keeping terminal
// output deterministic at any worker count.
func runGenome(dir string, opts options) error {
	fas, err := filepath.Glob(filepath.Join(dir, "*.fa"))
	if err != nil {
		return err
	}
	if len(fas) == 0 {
		return fmt.Errorf("no .fa files in %s", dir)
	}
	sort.Strings(fas)
	suffix := ".result"
	if opts.compress {
		suffix = ".result.gsnp"
	}
	var tasks []sched.LocalTask[chrOutput, *gsnp.Arena]
	for _, fa := range fas {
		base := strings.TrimSuffix(fa, ".fa")
		aln := base + "." + opts.format
		if opts.format == "soap" {
			aln = base + ".soap"
		}
		if _, err := os.Stat(aln); err != nil {
			fmt.Fprintf(os.Stderr, "gsnp: skipping %s: no alignment file %s\n", fa, aln)
			continue
		}
		snp := base + ".snp"
		if _, err := os.Stat(snp); err != nil {
			snp = ""
		}
		fa, outPath := fa, base+suffix
		tasks = append(tasks, sched.LocalTask[chrOutput, *gsnp.Arena]{
			Name: filepath.Base(fa),
			Run: func(ctx context.Context, arena *gsnp.Arena) (chrOutput, error) {
				var diag strings.Builder
				f, err := os.Create(outPath)
				if err != nil {
					return chrOutput{}, err
				}
				sites, err := callOne(fa, aln, snp, f, &diag, opts, arena)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				return chrOutput{outPath: outPath, sites: sites, diag: diag.String()}, err
			},
		})
	}
	// One window arena per pool worker: every chromosome a worker runs
	// recycles the same working set (outputs are unaffected — the arena
	// only carries buffer capacity between runs).
	results, stats, err := sched.RunLocal(context.Background(), opts.workers,
		func(int) *gsnp.Arena { return gsnp.NewArena() }, tasks)
	for _, r := range results {
		switch {
		case r.Skipped:
			fmt.Fprintf(os.Stderr, "gsnp: %s: not run (%v)\n", r.Name, r.Err)
		case r.Err != nil:
			fmt.Fprintf(os.Stderr, "gsnp: %s: %v\n", r.Name, r.Err)
		default:
			if r.Value.diag != "" {
				fmt.Fprint(os.Stderr, r.Value.diag)
			}
			line := fmt.Sprintf("gsnp: %s -> %s", r.Name, filepath.Base(r.Value.outPath))
			if opts.stats {
				line += fmt.Sprintf(" (worker %d, %v, %s)",
					r.Worker, r.Wall.Round(time.Millisecond), siteRate(r.Value.sites, r.Wall))
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if opts.stats {
		fmt.Fprintf(os.Stderr, "gsnp: scheduler: %d workers ran %d chromosomes in %v (task time %v, speedup %.2fx, longest %s %v)\n",
			stats.Workers, stats.Ran, stats.Wall.Round(time.Millisecond),
			stats.TaskWall.Round(time.Millisecond), stats.Speedup(),
			stats.LongestName, stats.Longest.Round(time.Millisecond))
	}
	return err
}

// siteRate formats a sites-per-second throughput.
func siteRate(sites int, wall time.Duration) string {
	if wall <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f Msites/s", float64(sites)/wall.Seconds()/1e6)
}

// callOne runs one chromosome through the selected engine, writing result
// rows to out and diagnostics to diag. It returns the number of reference
// sites processed. arena, when non-nil, supplies the recycled window
// working set (gsnp engines only).
func callOne(refPath, alnPath, snpPath string, out, diag io.Writer, opts options, arena *gsnp.Arena) (int, error) {
	refFile, err := os.Open(refPath)
	if err != nil {
		return 0, err
	}
	recs, err := snpio.ReadFASTA(refFile)
	if cerr := refFile.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	if len(recs) != 1 {
		return 0, fmt.Errorf("reference must hold exactly one sequence, found %d", len(recs))
	}
	ref := recs[0]

	var known snpio.KnownSNPs
	if snpPath != "" {
		f, err := os.Open(snpPath)
		if err != nil {
			return 0, err
		}
		all, err := snpio.ReadKnownSNPs(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return 0, err
		}
		known = all[ref.Name]
	}

	// The pipeline reads its input twice (cal_p_matrix, then the windowed
	// pass); the source reopens the alignment file per pass. Files ending
	// in .gz are decompressed transparently.
	src := pipeline.FuncSource(func() (pipeline.ReadIter, error) {
		f, err := os.Open(alnPath)
		if err != nil {
			return nil, err
		}
		it := &fileIter{f: f}
		var r io.Reader = f
		if strings.HasSuffix(alnPath, ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				f.Close()
				return nil, err
			}
			it.zr = zr
			r = zr
		}
		if opts.format == "sam" {
			it.it = snpio.NewSAMReader(r)
		} else {
			it.it = snpio.NewSOAPReader(r)
		}
		return it, nil
	})

	switch opts.engine {
	case "soapsnp":
		eng := soapsnp.New(soapsnp.Config{
			Chr: ref.Name, Ref: ref.Seq, Known: known,
			Window: opts.window, Prefetch: opts.prefetch,
		})
		rep, err := eng.Run(src, out)
		if err != nil {
			return 0, err
		}
		if opts.stats {
			fmt.Fprintf(diag, "soapsnp: %d sites, %d SNPs, mean depth %.1fX\n%v\n",
				rep.Sites, rep.SNPs, rep.MeanDepth, rep.Times)
			if opts.prefetch {
				fmt.Fprintf(diag, "prefetch: %v\n", rep.Prefetch)
			}
		}
		return rep.Sites, nil
	default: // gsnp-cpu, gsnp-gpu
		cfg := gsnp.Config{
			Chr: ref.Name, Ref: ref.Seq, Known: known,
			Window: opts.window, CompressOutput: opts.compress,
			Prefetch: opts.prefetch, ComputeWorkers: opts.computeWorkers,
			Arena: arena,
		}
		if opts.engine == "gsnp-gpu" {
			cfg.Mode = gsnp.ModeGPU
			// One device per call: chromosomes scheduled concurrently in
			// genome mode must not share simulated-device state.
			cfg.Device = gpu.NewDevice(gpu.M2050())
		} else {
			cfg.Mode = gsnp.ModeCPU
		}
		eng, err := gsnp.New(cfg)
		if err != nil {
			return 0, err
		}
		rep, err := eng.Run(src, out)
		if err != nil {
			return 0, err
		}
		if opts.stats {
			fmt.Fprintf(diag, "%s: %d sites, %d SNPs, mean depth %.1fX, %d output bytes\n%v\n",
				opts.engine, rep.Sites, rep.SNPs, rep.MeanDepth, rep.OutputBytes, rep.Times)
			if opts.prefetch {
				fmt.Fprintf(diag, "prefetch: %v\n", rep.Prefetch)
			}
			if cfg.Device != nil {
				fmt.Fprintf(diag, "\nsimulated device profile (%s):\n%s",
					cfg.Device.Config().Name, cfg.Device.FormatProfile())
			}
		}
		return rep.Sites, nil
	}
}

// fileIter adapts an alignment reader over an open file to
// pipeline.ReadIter, closing the decompressor (for .gz inputs) and the
// file when the stream ends — at EOF or on any read error, so a parse
// failure doesn't leak the descriptor. A close failure surfaces instead
// of EOF so truncated gzip streams are reported rather than silently
// accepted.
type fileIter struct {
	f  *os.File
	zr *gzip.Reader
	it pipeline.ReadIter
}

func (it *fileIter) Next() (reads.AlignedRead, error) {
	r, err := it.it.Next()
	if err != nil && it.f != nil {
		if it.zr != nil {
			if cerr := it.zr.Close(); cerr != nil && err == io.EOF {
				err = cerr
			}
			it.zr = nil
		}
		if cerr := it.f.Close(); cerr != nil && err == io.EOF {
			err = cerr
		}
		it.f = nil
	}
	return r, err
}
