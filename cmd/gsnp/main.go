// Command gsnp calls SNPs from an alignment file, a FASTA reference and an
// optional known-SNP prior file — the command-line equivalent of SOAPsnp,
// with three engines:
//
//	-engine soapsnp    the dense CPU baseline (Algorithms 1-2 of the paper)
//	-engine gsnp-cpu   the sparse algorithm on the CPU (GSNP_CPU)
//	-engine gsnp-gpu   the full GSNP pipeline on the simulated GPU
//
// Usage:
//
//	gsnp -ref ref.fa -aln reads.soap [-snp known.snp] -out result.txt \
//	     [-engine gsnp-gpu] [-format soap|sam] [-window N] [-compress] [-stats]
//
// Whole-genome mode processes a directory of per-chromosome files (the
// production layout of the paper's evaluation: 24 separate sequence
// files), calling each <name>.fa against <name>.soap (+ optional
// <name>.snp) and writing <name>.result[.gsnp]:
//
//	gsnp -genome-dir data/ [-engine gsnp-gpu] [-compress] [-stats]
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
	"gsnp/internal/snpio"
	"gsnp/internal/soapsnp"
)

// options carries the parsed command line.
type options struct {
	engine   string
	format   string
	window   int
	compress bool
	stats    bool
	device   *gpu.Device
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		refPath   = flag.String("ref", "", "reference FASTA file")
		alnPath   = flag.String("aln", "", "alignment file")
		format    = flag.String("format", "soap", "alignment format: soap or sam")
		snpPath   = flag.String("snp", "", "known-SNP prior file (optional)")
		outPath   = flag.String("out", "", "output file ('-' or empty for stdout)")
		genomeDir = flag.String("genome-dir", "", "process every <chr>.fa/<chr>.soap pair in a directory")
		engine    = flag.String("engine", "gsnp-gpu", "engine: soapsnp, gsnp-cpu or gsnp-gpu")
		window    = flag.Int("window", 0, "sites per window (0 = engine default)")
		compress  = flag.Bool("compress", false, "write the GSNP compressed container (gsnp engines only)")
		stats     = flag.Bool("stats", false, "print per-component timing to stderr")
	)
	flag.Parse()

	opts := options{engine: *engine, format: *format, window: *window, compress: *compress, stats: *stats}
	switch opts.engine {
	case "soapsnp":
		if opts.compress {
			return fmt.Errorf("-compress requires a gsnp engine")
		}
	case "gsnp-cpu":
	case "gsnp-gpu":
		opts.device = gpu.NewDevice(gpu.M2050())
	default:
		return fmt.Errorf("unknown engine %q", opts.engine)
	}
	if opts.format != "soap" && opts.format != "sam" {
		return fmt.Errorf("unknown alignment format %q", opts.format)
	}

	if *genomeDir != "" {
		return runGenome(*genomeDir, opts)
	}
	if *refPath == "" || *alnPath == "" {
		flag.Usage()
		return fmt.Errorf("-ref and -aln are required (or use -genome-dir)")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" && *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return callOne(*refPath, *alnPath, *snpPath, out, opts)
}

// runGenome processes every chromosome of a directory, the 24-file
// production layout of the paper.
func runGenome(dir string, opts options) error {
	fas, err := filepath.Glob(filepath.Join(dir, "*.fa"))
	if err != nil {
		return err
	}
	if len(fas) == 0 {
		return fmt.Errorf("no .fa files in %s", dir)
	}
	sort.Strings(fas)
	suffix := ".result"
	if opts.compress {
		suffix = ".result.gsnp"
	}
	for _, fa := range fas {
		base := strings.TrimSuffix(fa, ".fa")
		aln := base + "." + opts.format
		if opts.format == "soap" {
			aln = base + ".soap"
		}
		if _, err := os.Stat(aln); err != nil {
			fmt.Fprintf(os.Stderr, "gsnp: skipping %s: no alignment file %s\n", fa, aln)
			continue
		}
		snp := base + ".snp"
		if _, err := os.Stat(snp); err != nil {
			snp = ""
		}
		outPath := base + suffix
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		err = callOne(fa, aln, snp, f, opts)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", fa, err)
		}
		fmt.Fprintf(os.Stderr, "gsnp: %s -> %s\n", filepath.Base(fa), filepath.Base(outPath))
	}
	return nil
}

// callOne runs one chromosome through the selected engine.
func callOne(refPath, alnPath, snpPath string, out io.Writer, opts options) error {
	refFile, err := os.Open(refPath)
	if err != nil {
		return err
	}
	recs, err := snpio.ReadFASTA(refFile)
	refFile.Close()
	if err != nil {
		return err
	}
	if len(recs) != 1 {
		return fmt.Errorf("reference must hold exactly one sequence, found %d", len(recs))
	}
	ref := recs[0]

	var known snpio.KnownSNPs
	if snpPath != "" {
		f, err := os.Open(snpPath)
		if err != nil {
			return err
		}
		all, err := snpio.ReadKnownSNPs(f)
		f.Close()
		if err != nil {
			return err
		}
		known = all[ref.Name]
	}

	// The pipeline reads its input twice (cal_p_matrix, then the windowed
	// pass); the source reopens the alignment file per pass. Files ending
	// in .gz are decompressed transparently.
	src := pipeline.FuncSource(func() (pipeline.ReadIter, error) {
		f, err := os.Open(alnPath)
		if err != nil {
			return nil, err
		}
		var r io.Reader = f
		if strings.HasSuffix(alnPath, ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				f.Close()
				return nil, err
			}
			r = zr
		}
		if opts.format == "sam" {
			return &fileIter{f: f, it: snpio.NewSAMReader(r)}, nil
		}
		return &fileIter{f: f, it: snpio.NewSOAPReader(r)}, nil
	})

	switch opts.engine {
	case "soapsnp":
		eng := soapsnp.New(soapsnp.Config{Chr: ref.Name, Ref: ref.Seq, Known: known, Window: opts.window})
		rep, err := eng.Run(src, out)
		if err != nil {
			return err
		}
		if opts.stats {
			fmt.Fprintf(os.Stderr, "soapsnp: %d sites, %d SNPs, mean depth %.1fX\n%v\n",
				rep.Sites, rep.SNPs, rep.MeanDepth, rep.Times)
		}
	case "gsnp-cpu", "gsnp-gpu":
		cfg := gsnp.Config{
			Chr: ref.Name, Ref: ref.Seq, Known: known,
			Window: opts.window, CompressOutput: opts.compress,
		}
		if opts.device != nil {
			cfg.Mode = gsnp.ModeGPU
			cfg.Device = opts.device
		} else {
			cfg.Mode = gsnp.ModeCPU
		}
		eng, err := gsnp.New(cfg)
		if err != nil {
			return err
		}
		rep, err := eng.Run(src, out)
		if err != nil {
			return err
		}
		if opts.stats {
			fmt.Fprintf(os.Stderr, "%s: %d sites, %d SNPs, mean depth %.1fX, %d output bytes\n%v\n",
				opts.engine, rep.Sites, rep.SNPs, rep.MeanDepth, rep.OutputBytes, rep.Times)
			if cfg.Device != nil {
				fmt.Fprintf(os.Stderr, "\nsimulated device profile (%s):\n%s",
					cfg.Device.Config().Name, cfg.Device.FormatProfile())
			}
		}
	}
	return nil
}

// fileIter adapts an alignment reader over an open file to
// pipeline.ReadIter, closing the file at EOF.
type fileIter struct {
	f  *os.File
	it pipeline.ReadIter
}

func (it *fileIter) Next() (reads.AlignedRead, error) {
	r, err := it.it.Next()
	if err == io.EOF {
		it.f.Close()
	}
	return r, err
}
