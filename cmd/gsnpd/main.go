// Command gsnpd is the long-running multi-genome calling service: the
// gsnp -genome-dir batch mode grown into a server. It accepts
// genome-calling jobs over HTTP/JSON, decomposes each into
// per-chromosome tasks, shards all active jobs' tasks across one shared
// worker pool with round-robin fairness across jobs (a 24-chromosome
// whole genome cannot starve a single-chromosome request), and streams
// per-chromosome results back as they complete.
//
// Completed results are held in a content-addressed cache: resubmitting
// a job whose input bytes and output-shaping options are identical
// replays the recorded stream without touching the scheduler, and
// identical jobs submitted while one is still running share that single
// execution (single-flight dedup). The cache is bounded by -cache-bytes
// and disabled entirely (dedup included) by -cache-off.
//
// With -journal-dir the server is crash-durable: every accepted job is
// recorded in a write-ahead journal (fsync'd before the 202), uploaded
// inputs spool under the journal directory, and each cleanly completed
// chromosome is checkpointed durably before its stream record is
// published. A restarted gsnpd pointed at the same directory re-enqueues
// every interrupted job — completed chromosomes replay from their
// checkpoints (digest-verified) instead of re-executing, output bytes
// stay identical to an uninterrupted run, and recovered jobs carry a
// "recovered" marker in GET /jobs. -max-queued bounds admission: beyond
// that many unfinished jobs, submissions get 429 + Retry-After.
//
// Usage:
//
//	gsnpd [-addr 127.0.0.1:8844] [-workers N] [-retries N]
//	      [-retry-backoff D] [-task-timeout D] [-spool DIR]
//	      [-drain-timeout D] [-cache-bytes N] [-cache-off]
//	      [-journal-dir DIR] [-max-queued N]
//
// API:
//
//	POST   /jobs              submit a job; body: {"genome_dir": "/data"}
//	                          or {"inputs": [{"name","ref","aln"}, ...]},
//	                          plus engine options (engine, format, window,
//	                          compress, quarantine, output_format, ...).
//	                          "format": "fastq" submits raw reads — each
//	                          chromosome is aligned in-process before
//	                          calling (align_max_mismatch, align_seed_len)
//	                          — and "output_format": "vcf" streams
//	                          VCFv4.2 records instead of the result table
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status with per-chromosome outcomes
//	GET    /jobs/{id}/stream  NDJSON stream of per-chromosome results
//	DELETE /jobs/{id}         cancel a job (others are unaffected)
//	GET    /healthz           liveness, drain state, cache occupancy
//	GET    /statz             cache hit/miss/eviction counters, byte
//	                          occupancy, single-flight join count
//
// On SIGTERM/SIGINT the server drains gracefully: new submissions get
// 503, running jobs finish (bounded by -drain-timeout), streams deliver
// their final records, then the process exits 0. A second signal forces
// immediate cancellation of every job.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsnp/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnpd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8844", "listen address (host:port; port 0 picks a free port)")
		workers  = flag.Int("workers", 0, "shared worker pool size (0 = GOMAXPROCS)")
		retries  = flag.Int("retries", 0, "re-run a failed chromosome up to N times (exponential backoff)")
		backoff  = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay between retries of a failed chromosome")
		taskTO   = flag.Duration("task-timeout", 0, "per-chromosome deadline (0 = none)")
		spool    = flag.String("spool", "", "directory for uploaded job inputs (default: a temp dir)")
		drainTO  = flag.Duration("drain-timeout", 10*time.Minute, "how long graceful shutdown waits for running jobs")
		cacheB   = flag.Int64("cache-bytes", 256<<20, "result cache byte budget (completed job streams, LRU-evicted)")
		cacheOff = flag.Bool("cache-off", false, "disable the result cache and single-flight dedup")
		journal  = flag.String("journal-dir", "", "write-ahead job journal directory: accepted jobs survive crashes and resume on restart (overrides -spool)")
		maxQ     = flag.Int("max-queued", 0, "reject submissions with 429 once N admitted jobs are unfinished (0 = unlimited)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "gsnpd: ", log.LstdFlags)
	srv, err := service.New(service.Config{
		Workers:      *workers,
		Retries:      *retries,
		RetryBackoff: *backoff,
		TaskTimeout:  *taskTO,
		SpoolDir:     *spool,
		CacheBytes:   *cacheB,
		CacheOff:     *cacheOff,
		JournalDir:   *journal,
		MaxQueued:    *maxQ,
		Logf:         logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listening line goes to stdout so scripts (and the integration
	// test) can discover the bound port under -addr :0.
	fmt.Printf("gsnpd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case s := <-sig:
		logger.Printf("received %v, draining (new jobs rejected; %v deadline)", s, *drainTO)
	}

	// A second signal forces shutdown: every job is cancelled and the
	// drain below completes promptly.
	//gsnplint:ignore goroutinejoin process-lifetime watcher: it dies with main, and joining it would block the forced shutdown it exists to deliver
	go func() {
		s := <-sig
		logger.Printf("received second %v, forcing shutdown", s)
		srv.Close()
	}()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := srv.Drain(drainCtx)

	// Let attached streams read their final records before the listener
	// goes away.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	logger.Printf("drained cleanly")
	return nil
}
