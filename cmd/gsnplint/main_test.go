package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGsnplintCleanOnRepo is the CLI smoke test the Makefile gate relies
// on: a built gsnplint binary run over the whole module exits 0. Any
// new finding (or a reintroduced old one, like the bare defer f.Close()
// sites this PR fixed) turns this test — and make ci — red.
func TestGsnplintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module twice; skipped in -short mode")
	}
	bin := buildLint(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("gsnplint ./... failed: %v\n%s", err, out)
	}
}

func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gsnplint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gsnplint: %v\n%s", err, out)
	}
	return bin
}

// TestGsnplintJSONReport pins the machine-readable gate artifact: -json
// writes a report naming all seven analyzers, the package count, and an
// explicit (not null) findings array even when the tree is clean.
func TestGsnplintJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module; skipped in -short mode")
	}
	bin := buildLint(t)
	reportPath := filepath.Join(t.TempDir(), "findings.json")

	cmd := exec.Command(bin, "-json", reportPath, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("gsnplint -json failed: %v\n%s", err, out)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var report struct {
		Analyzers []string `json:"analyzers"`
		Packages  int      `json:"packages"`
		Findings  []any    `json:"findings"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	want := []string{"determinism", "arenalifetime", "closecheck", "saturation", "goroutinejoin", "lockhold", "durability"}
	if strings.Join(report.Analyzers, ",") != strings.Join(want, ",") {
		t.Errorf("report analyzers = %v, want %v", report.Analyzers, want)
	}
	if report.Packages == 0 {
		t.Error("report claims zero packages were analyzed")
	}
	if report.Findings == nil {
		t.Error("findings is null; the gate's consumer needs an explicit empty array")
	}
	if len(report.Findings) != 0 {
		t.Errorf("clean tree produced findings: %v", report.Findings)
	}
}

// TestRacePkgsCoverSpawningPackages audits the Makefile: every package
// that contains a go statement (per gsnplint -go-pkgs, the same loader
// the analyzers use) must be listed in RACE_PKGS so the race detector
// actually exercises it.
func TestRacePkgsCoverSpawningPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module; skipped in -short mode")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "-go-pkgs", "./...")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("gsnplint -go-pkgs failed: %v", err)
	}

	mk, err := os.ReadFile("../../Makefile")
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^RACE_PKGS\s*=\s*(.+)$`).FindSubmatch(mk)
	if m == nil {
		t.Fatal("RACE_PKGS assignment not found in Makefile")
	}
	race := map[string]bool{}
	for _, f := range strings.Fields(string(m[1])) {
		race[strings.TrimPrefix(f, "./")] = true
	}

	mod, err := os.ReadFile("../../go.mod")
	if err != nil {
		t.Fatal(err)
	}
	mm := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(mod)
	if mm == nil {
		t.Fatal("module line not found in go.mod")
	}
	module := string(mm[1])

	for _, imp := range strings.Fields(string(out)) {
		rel := strings.TrimPrefix(imp, module+"/")
		if !race[rel] {
			t.Errorf("package %s spawns goroutines but is missing from RACE_PKGS (add ./%s)", imp, rel)
		}
	}
}

// TestGsnplintRejectsUnknownAnalyzer pins the -run flag's validation.
func TestGsnplintRejectsUnknownAnalyzer(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "-run", "nosuch", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure for -run nosuch, got success:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit code 2 for a usage error, got %v\n%s", err, out)
	}
}
