package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestGsnplintCleanOnRepo is the CLI smoke test the Makefile gate relies
// on: a built gsnplint binary run over the whole module exits 0. Any
// new finding (or a reintroduced old one, like the bare defer f.Close()
// sites this PR fixed) turns this test — and make ci — red.
func TestGsnplintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module twice; skipped in -short mode")
	}
	bin := buildLint(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("gsnplint ./... failed: %v\n%s", err, out)
	}
}

func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gsnplint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gsnplint: %v\n%s", err, out)
	}
	return bin
}

// TestGsnplintRejectsUnknownAnalyzer pins the -run flag's validation.
func TestGsnplintRejectsUnknownAnalyzer(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "-run", "nosuch", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure for -run nosuch, got success:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit code 2 for a usage error, got %v\n%s", err, out)
	}
}
