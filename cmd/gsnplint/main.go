// Command gsnplint is the GSNP project multichecker: it runs the seven
// invariant analyzers (determinism, arenalifetime, closecheck,
// saturation, goroutinejoin, lockhold, durability) over the packages
// matched by its arguments and exits non-zero on any finding. It is part
// of `make lint` and therefore of `make ci`: a PR that reintroduces an
// unordered output path, an arena escape, a silent Close, a raw pileup
// increment, an unjoined goroutine, a lock held across blocking I/O, or
// a non-atomic durable write fails the gate.
//
// Usage:
//
//	gsnplint [-run determinism,closecheck] [-dir path] [-tests] [-json file] [packages]
//
// Packages default to ./... . All analyzers of one invocation share a
// single package load and one interprocedural fact base, so cross-
// package call edges (service -> journal -> checkpoint) resolve exactly
// once. -tests adds _test.go files to the load; -json also writes the
// findings as a machine-readable report (the CI gate archives it as
// gsnplint-findings.json); -go-pkgs prints the import path of every
// loaded package containing a go statement and exits, which is how the
// Makefile's RACE_PKGS list is audited.
//
// Findings can be suppressed, one line at a time and with a mandatory
// written justification, by
//
//	//gsnplint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. See DESIGN.md §9 and §13
// for the invariants behind each analyzer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gsnp/internal/analysis"
)

func main() {
	os.Exit(run())
}

// jsonFinding is one diagnostic of the machine-readable report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output: written even when empty, so the CI
// artifact always states which analyzers ran over how many packages.
type jsonReport struct {
	Analyzers []string      `json:"analyzers"`
	Packages  int           `json:"packages"`
	Findings  []jsonFinding `json:"findings"`
}

func run() int {
	var (
		runList  = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		dir      = flag.String("dir", ".", "directory to resolve package patterns from")
		docs     = flag.Bool("doc", false, "print each analyzer's rule and exit")
		tests    = flag.Bool("tests", false, "include _test.go files in the load")
		jsonPath = flag.String("json", "", "also write findings as a JSON report to this file (- for stdout)")
		goPkgs   = flag.Bool("go-pkgs", false, "print packages containing go statements and exit (RACE_PKGS audit)")
	)
	flag.Parse()

	analyzers := analysis.All()
	if *docs {
		for _, a := range analyzers {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		sel, err := analysis.ByName(strings.Split(*runList, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsnplint:", err)
			return 2
		}
		analyzers = sel
	}

	pkgs, err := analysis.LoadTests(*dir, *tests, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsnplint:", err)
		return 2
	}
	if *goPkgs {
		for _, p := range spawningPackages(pkgs) {
			fmt.Println(p)
		}
		return 0
	}

	diags := analysis.RunAll(pkgs, analyzers)

	report := jsonReport{Packages: len(pkgs), Findings: []jsonFinding{}}
	for _, a := range analyzers {
		report.Analyzers = append(report.Analyzers, a.Name)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
		report.Findings = append(report.Findings, jsonFinding{
			File: relPath(pos.Filename), Line: pos.Line, Col: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "gsnplint:", err)
			return 2
		}
	}
	if len(report.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "gsnplint: %d finding(s)\n", len(report.Findings))
		return 1
	}
	return 0
}

// spawningPackages returns the sorted import paths of packages with at
// least one go statement — the set RACE_PKGS must cover.
func spawningPackages(pkgs []*analysis.Package) []string {
	var out []string
	for _, pkg := range pkgs {
		spawns := false
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					spawns = true
				}
				return !spawns
			})
		}
		if spawns {
			out = append(out, pkg.PkgPath)
		}
	}
	sort.Strings(out)
	return out
}

// relPath renders a finding path relative to the working directory when
// possible, so the JSON artifact is stable across checkouts.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}

func writeReport(path string, report jsonReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
