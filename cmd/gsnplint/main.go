// Command gsnplint is the GSNP project multichecker: it runs the four
// invariant analyzers (determinism, arenalifetime, closecheck,
// saturation) over the packages matched by its arguments and exits
// non-zero on any finding. It is part of `make lint` and therefore of
// `make ci`: a PR that reintroduces an unordered output path, an arena
// escape, a silent Close, or a raw pileup increment fails the gate.
//
// Usage:
//
//	gsnplint [-run determinism,closecheck] [-dir path] [packages]
//
// Packages default to ./... . Findings can be suppressed, one line at a
// time and with a mandatory written justification, by
//
//	//gsnplint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. See DESIGN.md §9 for the
// invariants behind each analyzer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsnp/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runList = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		dir     = flag.String("dir", ".", "directory to resolve package patterns from")
		docs    = flag.Bool("doc", false, "print each analyzer's rule and exit")
	)
	flag.Parse()

	analyzers := analysis.All()
	if *docs {
		for _, a := range analyzers {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		sel, err := analysis.ByName(strings.Split(*runList, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsnplint:", err)
			return 2
		}
		analyzers = sel
	}

	patterns := flag.Args()
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsnplint:", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analyzers) {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "gsnplint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
