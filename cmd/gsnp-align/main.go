// Command gsnp-align places raw FASTQ reads on a reference with the
// k-mer-index aligner and emits the SOAP-format alignment file the SNP
// caller consumes — the stage the SOAP aligner performs in the paper's
// production pipeline.
//
// Usage:
//
//	gsnp-align -ref ref.fa -fastq reads.fq -out reads.soap [-mm 2] [-k 16]
package main

import (
	"flag"
	"fmt"
	"os"

	"gsnp/internal/align"
	"gsnp/internal/snpio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsnp-align:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		refPath = flag.String("ref", "", "reference FASTA file (required)")
		fqPath  = flag.String("fastq", "", "raw reads FASTQ file (required)")
		outPath = flag.String("out", "", "output SOAP alignment file ('-' or empty for stdout)")
		mm      = flag.Int("mm", 2, "maximum mismatches per read")
		k       = flag.Int("k", align.DefaultK, "seed k-mer length")
	)
	flag.Parse()
	if *refPath == "" || *fqPath == "" {
		flag.Usage()
		return fmt.Errorf("-ref and -fastq are required")
	}

	rf, err := os.Open(*refPath)
	if err != nil {
		return err
	}
	recs, err := snpio.ReadFASTA(rf)
	rf.Close()
	if err != nil {
		return err
	}
	if len(recs) != 1 {
		return fmt.Errorf("reference must hold exactly one sequence, found %d", len(recs))
	}

	qf, err := os.Open(*fqPath)
	if err != nil {
		return err
	}
	raws, err := snpio.ReadFASTQ(qf)
	qf.Close()
	if err != nil {
		return err
	}

	ix, err := align.BuildIndex(recs[0].Seq, *k)
	if err != nil {
		return err
	}
	aligned := align.AlignReads(ix, raws, *mm)

	out := os.Stdout
	if *outPath != "" && *outPath != "-" {
		f, cerr := os.Create(*outPath)
		if cerr != nil {
			return cerr
		}
		// Close flushes the written alignment to disk; on ENOSPC the error
		// surfaces here, so it must reach the caller instead of a bare
		// defer discarding it.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close %s: %w", *outPath, cerr)
			}
		}()
		out = f
	}
	if err := snpio.WriteSOAP(out, recs[0].Name, aligned); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gsnp-align: %d/%d reads aligned (%.1f%%) to %s\n",
		len(aligned), len(raws), 100*float64(len(aligned))/float64(max(1, len(raws))), recs[0].Name)
	return nil
}
