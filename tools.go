//go:build tools

// Package tools pins the versions of build-gate tooling that lives
// outside the module graph.
//
// The conventional tools.go pattern would import
// golang.org/x/vuln/cmd/govulncheck here and record the version in
// go.mod, but this repository must build and gate with no network and
// an empty module cache, and an import line whose module can never be
// fetched would break `go vet ./...` under this build tag. The pin
// therefore lives in the Makefile (GOVULNCHECK_VERSION), `make vuln`
// invokes the tool via `go run pkg@version` so connected environments
// get exactly the pinned build, and offline environments skip the scan
// with an explicit message instead of failing.
//
// When the environment gains network access (or a vendored copy),
// migrate the pin here:
//
//	import _ "golang.org/x/vuln/cmd/govulncheck"
//
// and add the matching require to go.mod.
package tools
