// Sortlab: the multipass batch sorting network of Section IV-C — build
// the per-site base_word arrays of a realistic window and sort them with
// the paper's three GPU schemes plus the CPU baselines, comparing the
// simulated device time and the padded-element waste.
//
//	go run ./examples/sortlab
package main

import (
	"fmt"
	"time"

	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/sortnet"
)

func main() {
	// A window of real per-site base_word arrays: mostly tens of
	// elements, many empty — the size distribution of Figure 4(b).
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrSort", Length: 60_000, Depth: 11, MaskFraction: 0.1, Seed: 5,
	})
	orig := buildWords(ds)
	sizes := map[string]int{}
	for i := 0; i < orig.NumArrays(); i++ {
		switch s := orig.SizeOf(i); {
		case s <= 1:
			sizes["0-1"]++
		case s <= 8:
			sizes["2-8"]++
		case s <= 16:
			sizes["9-16"]++
		case s <= 32:
			sizes["17-32"]++
		case s <= 64:
			sizes["33-64"]++
		default:
			sizes[">64"]++
		}
	}
	fmt.Printf("window: %d arrays, %d elements; size classes: %v\n\n",
		orig.NumArrays(), len(orig.Data), sizes)

	clone := func() *sortnet.Batches {
		return &sortnet.Batches{Data: append([]uint32(nil), orig.Data...), Bounds: orig.Bounds}
	}

	d := gpu.NewDevice(gpu.M2050())
	mp := sortnet.MultipassBitonic(d, clone())
	sp := sortnet.SinglePassBitonic(d, clone())
	ne := sortnet.NonEqBitonic(d, clone())

	fmt.Printf("%-28s %12s %14s %10s\n", "scheme", "sim time", "elements", "vs MP")
	show := func(name string, st sortnet.Stats) {
		fmt.Printf("%-28s %11.4gs %14d %9.1fx\n", name, st.SimSeconds, st.ElementsSorted, st.SimSeconds/mp.SimSeconds)
	}
	show("bitonic MP (multipass)", mp)
	show("bitonic SP (single pass)", sp)
	show("bitonic noneq", ne)
	fmt.Printf("(paper, Fig. 7b: single pass sorts ~4x the elements and runs ~5x slower)\n\n")

	// CPU baselines on the same window.
	b := clone()
	start := time.Now()
	sortnet.ParallelQuicksort(b, 0)
	parallel := time.Since(start)
	b = clone()
	start = time.Now()
	sortnet.ParallelQuicksort(b, 1)
	serial := time.Since(start)
	fmt.Printf("CPU quicksort: serial %v, parallel %v\n", serial.Round(time.Microsecond), parallel.Round(time.Microsecond))

	// The per-array device radix sort baseline on a small sample.
	sample := &sortnet.Batches{Data: append([]uint32(nil), orig.Data[:orig.Bounds[512]]...), Bounds: orig.Bounds[:513]}
	sr := sortnet.SequentialRadixGPU(d, sample, 17)
	fmt.Printf("per-array GPU radix (512 arrays): %.4gs simulated, %d kernel launches — the underutilisation of Fig. 7a\n",
		sr.SimSeconds, sr.Launches)
}

// buildWords extracts the per-site base_word arrays of the dataset.
func buildWords(ds *seqsim.Dataset) *sortnet.Batches {
	n := len(ds.Ref.Seq)
	sizes := make([]int32, n+1)
	type rec struct {
		site int
		word uint32
	}
	var obs []rec
	for i := range ds.Reads {
		rd := &ds.Reads[i]
		for pos := rd.Pos; pos < rd.Pos+len(rd.Bases) && pos < n; pos++ {
			o, ok := pipeline.ObsOf(rd, pos)
			if !ok {
				continue
			}
			obs = append(obs, rec{pos, gsnp.PackWord(o)})
			sizes[pos+1]++
		}
	}
	b := &sortnet.Batches{Bounds: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		b.Bounds[i+1] = b.Bounds[i] + sizes[i+1]
	}
	b.Data = make([]uint32, len(obs))
	cursor := make([]int32, n)
	for _, o := range obs {
		b.Data[b.Bounds[o.site]+cursor[o.site]] = o.word
		cursor[o.site]++
	}
	return b
}
