// Quickstart: generate a tiny synthetic chromosome, call SNPs with the
// GPU-accelerated GSNP engine, and compare the calls against the injected
// ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"gsnp/internal/bayes"
	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

func main() {
	// 1. Simulate a 50 kb chromosome sequenced at 12X: a reference, a
	//    diploid individual carrying SNPs, and position-sorted aligned
	//    reads (the data a read aligner would hand to the SNP caller).
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrDemo", Length: 50_000, Depth: 12, MaskFraction: 0.05, Seed: 42,
	})
	fmt.Printf("simulated %s: %v, %d true variants\n",
		ds.Spec.Name, ds.Stats(), len(ds.Diploid.Variants))

	// 2. Build the known-SNP prior records (the dbSNP-like input file).
	known := snpio.KnownSNPs{}
	for _, v := range ds.Diploid.Variants {
		if !v.Known {
			continue
		}
		a1, a2 := v.Genotype.Alleles()
		rec := &bayes.KnownSNP{Validated: true}
		rec.Freq[a1] += 0.5
		rec.Freq[a2] += 0.5
		known[v.Pos] = rec
	}

	// 3. Call SNPs with GSNP on the simulated Tesla M2050.
	eng, err := gsnp.New(gsnp.Config{
		Chr:    ds.Spec.Name,
		Ref:    ds.Ref.Seq,
		Known:  known,
		Mode:   gsnp.ModeGPU,
		Device: gpu.NewDevice(gpu.M2050()),
	})
	if err != nil {
		log.Fatal(err)
	}
	var out bytes.Buffer
	rep, err := eng.Run(pipeline.MemSource(ds.Reads), &out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("called %d SNPs over %d sites (mean depth %.1fX)\n",
		rep.SNPs, rep.Sites, rep.MeanDepth)
	fmt.Printf("component times: %v\n", rep.Times)

	// 4. Compare calls with the ground truth.
	rows, err := snpio.ReadResults(&out)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int]byte{}
	for _, v := range ds.Diploid.Variants {
		truth[v.Pos] = v.Genotype.IUPAC()
	}
	var tp, fp, fn int
	for i := range rows {
		r := &rows[i]
		want, isVar := truth[int(r.Pos)-1]
		switch {
		case r.IsSNP() && isVar && r.Genotype == want:
			tp++
		case r.IsSNP() && !isVar:
			fp++
		case !r.IsSNP() && isVar && r.Depth >= 4:
			fn++
		}
	}
	fmt.Printf("vs ground truth: %d correct, %d missed (covered), %d spurious\n", tp, fn, fp)

	// 5. Show the first few SNP rows in SOAPsnp's 17-column format.
	fmt.Println("\nfirst SNP calls:")
	shown := 0
	for i := range rows {
		if rows[i].IsSNP() && shown < 5 {
			fmt.Printf("  chr=%s pos=%d ref=%c genotype=%c quality=%d depth=%d\n",
				rows[i].Chr, rows[i].Pos, rows[i].Ref, rows[i].Genotype,
				rows[i].Quality, rows[i].Depth)
			shown++
		}
	}
}
