// Wholegenome: the paper's headline workload — SNP detection over all 24
// human chromosome data sets (Figure 12), scaled down, comparing the three
// engines: dense SOAPsnp on the CPU, the sparse algorithm on the CPU
// (GSNP_CPU), and the full GSNP pipeline on the simulated GPU.
//
// Chromosomes are independent, so they run on a bounded worker pool
// (-workers, default GOMAXPROCS); each task owns its own simulated device
// and the per-chromosome table prints in chromosome order regardless of
// completion order. The three engines must stay byte-identical per
// chromosome (Section IV-G) at every worker count.
//
//	go run ./examples/wholegenome [-scale 40] [-workers N]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"

	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/harness"
	"gsnp/internal/pipeline"
	"gsnp/internal/sched"
	"gsnp/internal/seqsim"
	"gsnp/internal/soapsnp"
)

// chrTimes is one chromosome's result across the three engines.
type chrTimes struct {
	name           string
	sites          int
	soap, cpu, gpu float64 // engine-reported component totals, seconds
	snps           int64
}

func main() {
	scale := flag.Int("scale", 40, "sites per real megabase (the paper's data is ~1,000,000)")
	workers := flag.Int("workers", 0, "concurrent chromosomes (0 = GOMAXPROCS)")
	flag.Parse()

	var tasks []sched.Task[chrTimes]
	for _, spec := range seqsim.ScaledHumanGenome(*scale, 7) {
		spec := spec
		tasks = append(tasks, sched.Task[chrTimes]{
			Name: spec.Name,
			Run: func(ctx context.Context) (chrTimes, error) {
				return runChromosome(spec)
			},
		})
	}
	results, stats, err := sched.Run(context.Background(), *workers, tasks)
	if err != nil {
		log.Fatal(err)
	}

	var totSoap, totCPU, totGPU float64
	var totalSNPs int64
	fmt.Printf("%-8s %10s %12s %12s %10s\n", "chrom", "sites", "SOAPsnp", "GSNP(GPU)", "speedup")
	for _, r := range results {
		c := r.Value
		totSoap += c.soap
		totCPU += c.cpu
		totGPU += c.gpu
		totalSNPs += c.snps
		fmt.Printf("%-8s %10d %11.2fs %11.3fs %9.0fx\n",
			c.name, c.sites, c.soap, c.gpu, c.soap/c.gpu)
	}
	fmt.Printf("\nwhole genome: SOAPsnp %.1fs, GSNP_CPU %.1fs, GSNP %.2fs — end-to-end speedup %.0fx (paper: >=40x)\n",
		totSoap, totCPU, totGPU, totSoap/totGPU)
	fmt.Printf("total SNPs called: %d\n", totalSNPs)
	fmt.Printf("scheduler: %d workers, wall %v, task time %v, speedup %.2fx\n",
		stats.Workers, stats.Wall.Round(1e6), stats.TaskWall.Round(1e6), stats.Speedup())
}

// runChromosome builds one chromosome's dataset and runs all three
// engines over it, checking the Section IV-G byte-identity requirement.
func runChromosome(spec seqsim.ChromosomeSpec) (chrTimes, error) {
	ds := seqsim.BuildDataset(spec)
	known := harness.KnownSNPs(ds)

	// Dense baseline.
	soapEng := soapsnp.New(soapsnp.Config{Chr: spec.Name, Ref: ds.Ref.Seq, Known: known})
	var b1 bytes.Buffer
	soapRep, err := soapEng.Run(pipeline.MemSource(ds.Reads), &b1)
	if err != nil {
		return chrTimes{}, err
	}

	// Sparse on the CPU.
	cpuEng, err := gsnp.New(gsnp.Config{Chr: spec.Name, Ref: ds.Ref.Seq, Known: known, Mode: gsnp.ModeCPU})
	if err != nil {
		return chrTimes{}, err
	}
	var b2 bytes.Buffer
	cpuRep, err := cpuEng.Run(pipeline.MemSource(ds.Reads), &b2)
	if err != nil {
		return chrTimes{}, err
	}

	// Full GSNP on the simulated GPU with compressed output; the device is
	// task-local so concurrent chromosomes never share device state.
	gpuEng, err := gsnp.New(gsnp.Config{
		Chr: spec.Name, Ref: ds.Ref.Seq, Known: known,
		Mode: gsnp.ModeGPU, Device: gpu.NewDevice(gpu.M2050()), CompressOutput: true,
	})
	if err != nil {
		return chrTimes{}, err
	}
	var b3 bytes.Buffer
	gpuRep, err := gpuEng.Run(pipeline.MemSource(ds.Reads), &b3)
	if err != nil {
		return chrTimes{}, err
	}

	// The two text outputs must be byte-identical (Section IV-G).
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		return chrTimes{}, fmt.Errorf("%s: engine outputs diverge", spec.Name)
	}

	return chrTimes{
		name:  spec.Name,
		sites: len(ds.Ref.Seq),
		soap:  soapRep.Times.Total().Seconds(),
		cpu:   cpuRep.Times.Total().Seconds(),
		gpu:   gpuRep.Times.Total().Seconds(),
		snps:  gpuRep.SNPs,
	}, nil
}
