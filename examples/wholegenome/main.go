// Wholegenome: the paper's headline workload — SNP detection over all 24
// human chromosome data sets (Figure 12), scaled down, comparing the three
// engines: dense SOAPsnp on the CPU, the sparse algorithm on the CPU
// (GSNP_CPU), and the full GSNP pipeline on the simulated GPU.
//
//	go run ./examples/wholegenome [-scale 40]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/harness"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/soapsnp"
)

func main() {
	scale := flag.Int("scale", 40, "sites per real megabase (the paper's data is ~1,000,000)")
	flag.Parse()

	dev := gpu.NewDevice(gpu.M2050())
	var totSoap, totCPU, totGPU float64
	var totalSNPs int64

	fmt.Printf("%-8s %10s %12s %12s %10s\n", "chrom", "sites", "SOAPsnp", "GSNP(GPU)", "speedup")
	for _, spec := range seqsim.ScaledHumanGenome(*scale, 7) {
		ds := seqsim.BuildDataset(spec)
		known := harness.KnownSNPs(ds)

		// Dense baseline.
		soapEng := soapsnp.New(soapsnp.Config{Chr: spec.Name, Ref: ds.Ref.Seq, Known: known})
		var b1 bytes.Buffer
		soapRep, err := soapEng.Run(pipeline.MemSource(ds.Reads), &b1)
		if err != nil {
			log.Fatal(err)
		}

		// Sparse on the CPU.
		cpuEng, err := gsnp.New(gsnp.Config{Chr: spec.Name, Ref: ds.Ref.Seq, Known: known, Mode: gsnp.ModeCPU})
		if err != nil {
			log.Fatal(err)
		}
		var b2 bytes.Buffer
		cpuRep, err := cpuEng.Run(pipeline.MemSource(ds.Reads), &b2)
		if err != nil {
			log.Fatal(err)
		}

		// Full GSNP on the simulated GPU with compressed output.
		gpuEng, err := gsnp.New(gsnp.Config{
			Chr: spec.Name, Ref: ds.Ref.Seq, Known: known,
			Mode: gsnp.ModeGPU, Device: dev, CompressOutput: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var b3 bytes.Buffer
		gpuRep, err := gpuEng.Run(pipeline.MemSource(ds.Reads), &b3)
		if err != nil {
			log.Fatal(err)
		}

		// The two text outputs must be byte-identical (Section IV-G).
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			log.Fatalf("%s: engine outputs diverge", spec.Name)
		}

		so := soapRep.Times.Total().Seconds()
		cp := cpuRep.Times.Total().Seconds()
		gp := gpuRep.Times.Total().Seconds()
		totSoap += so
		totCPU += cp
		totGPU += gp
		totalSNPs += gpuRep.SNPs
		fmt.Printf("%-8s %10d %11.2fs %11.3fs %9.0fx\n",
			spec.Name, len(ds.Ref.Seq), so, gp, so/gp)
	}
	fmt.Printf("\nwhole genome: SOAPsnp %.1fs, GSNP_CPU %.1fs, GSNP %.2fs — end-to-end speedup %.0fx (paper: >=40x)\n",
		totSoap, totCPU, totGPU, totSoap/totGPU)
	fmt.Printf("total SNPs called: %d\n", totalSNPs)
}
