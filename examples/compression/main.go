// Compression: the customized output codecs of Section V — run SNP
// detection, write the result as plain text, gzip and the GSNP compressed
// container, compare sizes, and stream the container back through the
// decompression API.
//
//	go run ./examples/compression
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"gsnp/internal/compress"
	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/harness"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

func main() {
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrDemo", Length: 120_000, Depth: 10, MaskFraction: 0.1, Seed: 99,
	})
	known := harness.KnownSNPs(ds)
	dev := gpu.NewDevice(gpu.M2050())

	// Plain-text output (the SOAPsnp format).
	textEng, err := gsnp.New(gsnp.Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: known, Mode: gsnp.ModeCPU})
	if err != nil {
		log.Fatal(err)
	}
	var text bytes.Buffer
	if _, err := textEng.Run(pipeline.MemSource(ds.Reads), &text); err != nil {
		log.Fatal(err)
	}

	// GSNP container with the RLE-DICT columns compressed on the device.
	binEng, err := gsnp.New(gsnp.Config{
		Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: known,
		Mode: gsnp.ModeGPU, Device: dev, CompressOutput: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := binEng.Run(pipeline.MemSource(ds.Reads), &blob); err != nil {
		log.Fatal(err)
	}

	gz, err := compress.Gzip(text.Bytes())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result table for %d sites:\n", len(ds.Ref.Seq))
	fmt.Printf("  plain text:     %8d bytes\n", text.Len())
	fmt.Printf("  gzip:           %8d bytes (%.1fx smaller than text)\n", len(gz), float64(text.Len())/float64(len(gz)))
	fmt.Printf("  GSNP container: %8d bytes (%.1fx smaller than text, %.1fx smaller than gzip)\n",
		blob.Len(), float64(text.Len())/float64(blob.Len()), float64(len(gz))/float64(blob.Len()))
	fmt.Printf("  (paper, Fig. 9a: text 14-16x and gzip ~1.5x larger than GSNP)\n\n")

	// Stream the container back, block by block, and verify it matches
	// the plain text row for row.
	wantRows, err := snpio.ReadResults(bytes.NewReader(text.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	br := snpio.NewBlockReader(bytes.NewReader(blob.Bytes()))
	var got int
	var snps int
	for {
		rows, err := br.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		for i := range rows {
			if rows[i] != wantRows[got] {
				log.Fatalf("row %d differs after decompression", got)
			}
			if rows[i].IsSNP() {
				snps++
			}
			got++
		}
	}
	fmt.Printf("decompressed %d rows (%d SNPs) — identical to the plain-text output\n", got, snps)

	// The temporary input compression of Section V-A.
	var soap bytes.Buffer
	if err := snpio.WriteSOAP(&soap, ds.Spec.Name, ds.Reads); err != nil {
		log.Fatal(err)
	}
	var tmp bytes.Buffer
	tw := snpio.NewTempWriter(&tmp, ds.Spec.Name)
	for i := range ds.Reads {
		if err := tw.Write(&ds.Reads[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntemporary input: %d bytes -> %d bytes (%.0f%% of the original; paper: ~33%%)\n",
		soap.Len(), tmp.Len(), 100*float64(tmp.Len())/float64(soap.Len()))
}
