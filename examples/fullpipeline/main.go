// Fullpipeline: the complete production flow of the paper's setting — raw
// sequencer reads, short-read alignment (the SOAP stage), then GPU SNP
// detection — with every intermediate written through the real file
// formats (FASTA reference, SOAP alignment text, known-SNP priors, GSNP
// compressed output).
//
//	go run ./examples/fullpipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gsnp/internal/align"
	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/harness"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

func main() {
	dir, err := os.MkdirTemp("", "gsnp-pipeline-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A reference genome and an individual's raw reads.
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrP", Length: 80_000, Depth: 10, MaskFraction: 0.05, Seed: 11,
	})
	raws := make([]align.RawRead, len(ds.Reads))
	for i := range ds.Reads {
		raws[i] = align.RawFromAligned(&ds.Reads[i])
	}
	fmt.Printf("sequenced %d raw reads of %d bp from %s (%d sites)\n",
		len(raws), ds.ReadSpec.ReadLen, ds.Spec.Name, len(ds.Ref.Seq))

	// 2. Write the reference and align the raw reads against it (the
	//    stage SOAP performs in the paper's pipeline).
	refPath := filepath.Join(dir, "ref.fa")
	mustWrite(refPath, func(f *os.File) error {
		return snpio.WriteFASTA(f, snpio.FASTARecord{Name: ds.Spec.Name, Seq: ds.Ref.Seq})
	})
	ix, err := align.BuildIndex(ds.Ref.Seq, align.DefaultK)
	if err != nil {
		log.Fatal(err)
	}
	aligned := align.AlignReads(ix, raws, 2)
	fmt.Printf("aligned %d/%d reads (%.1f%%)\n", len(aligned), len(raws),
		100*float64(len(aligned))/float64(len(raws)))

	// 3. Write the SOAP-format alignment file, the SNP caller's input.
	alnPath := filepath.Join(dir, "reads.soap")
	mustWrite(alnPath, func(f *os.File) error {
		return snpio.WriteSOAP(f, ds.Spec.Name, aligned)
	})
	info, _ := os.Stat(alnPath)
	fmt.Printf("wrote %s (%.1f MB)\n", alnPath, float64(info.Size())/(1<<20))

	// 4. Call SNPs with GSNP, reading the alignment file twice as the
	//    real pipeline does (cal_p_matrix, then the windowed pass).
	src := pipeline.FuncSource(func() (pipeline.ReadIter, error) {
		f, err := os.Open(alnPath)
		if err != nil {
			return nil, err
		}
		return snpio.NewSOAPReader(f), nil
	})
	eng, err := gsnp.New(gsnp.Config{
		Chr:            ds.Spec.Name,
		Ref:            ds.Ref.Seq,
		Known:          harness.KnownSNPs(ds),
		Mode:           gsnp.ModeGPU,
		Device:         gpu.NewDevice(gpu.M2050()),
		CompressOutput: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var out bytes.Buffer
	rep, err := eng.Run(src, &out)
	if err != nil {
		log.Fatal(err)
	}
	outPath := filepath.Join(dir, "result.gsnp")
	if err := os.WriteFile(outPath, out.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("called %d SNPs; compressed result %.1f KB (%s)\n",
		rep.SNPs, float64(out.Len())/1024, outPath)

	// 5. Decompress and score against the simulator's ground truth.
	rows, err := snpio.ReadAllBlocks(bytes.NewReader(out.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int]byte{}
	for _, v := range ds.Diploid.Variants {
		truth[v.Pos] = v.Genotype.IUPAC()
	}
	var tp, fp int
	for i := range rows {
		if !rows[i].IsSNP() {
			continue
		}
		if want, ok := truth[int(rows[i].Pos)-1]; ok && rows[i].Genotype == want {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("ground truth: %d injected variants; %d recovered exactly, %d spurious\n",
		len(ds.Diploid.Variants), tp, fp)
}

func mustWrite(path string, f func(*os.File) error) {
	file, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := f(file); err != nil {
		log.Fatal(err)
	}
	if err := file.Close(); err != nil {
		log.Fatal(err)
	}
}
