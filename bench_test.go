// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section VI). Each benchmark regenerates its experiment on a
// scaled synthetic workload and reports the paper's headline quantity as a
// custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Larger (slower, higher-fidelity) runs:
//
//	go run ./cmd/gsnp-experiments -exp all -scale 250
package gsnp_test

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"gsnp/internal/gsnp"
	"gsnp/internal/harness"
	"gsnp/internal/sched"
	"gsnp/internal/seqsim"
)

// benchScale keeps every benchmark iteration in the seconds range; the
// dense SOAPsnp baseline dominates.
func benchScale() harness.Scale { return harness.QuickScale() }

// runExperiment executes one experiment per iteration on a fresh session
// (no cross-iteration caching) and returns the last result.
func runExperiment(b *testing.B, id string) *harness.Result {
	b.Helper()
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		s := harness.NewSession(benchScale())
		r, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	return res
}

// metricFromNote extracts the first "<float>x" figure from a result note
// containing the given marker, for ReportMetric.
func metricFromNote(res *harness.Result, marker string) (float64, bool) {
	for _, n := range res.Notes {
		if !strings.Contains(n, marker) {
			continue
		}
		for _, f := range strings.Fields(n) {
			f = strings.TrimSuffix(f, ";")
			f = strings.TrimSuffix(f, ",")
			if v, err := strconv.ParseFloat(strings.TrimSuffix(f, "x"), 64); err == nil && strings.HasSuffix(f, "x") {
				return v, true
			}
		}
	}
	return 0, false
}

func BenchmarkTable1SOAPsnpComponents(b *testing.B) {
	runExperiment(b, "table1")
}

func BenchmarkTable2Datasets(b *testing.B) {
	runExperiment(b, "table2")
}

func BenchmarkTable3HardwareCounters(b *testing.B) {
	runExperiment(b, "table3")
}

func BenchmarkTable4GSNPComponents(b *testing.B) {
	res := runExperiment(b, "table4")
	if v, ok := metricFromNote(res, "total speedup"); ok {
		b.ReportMetric(v, "total-speedup-x")
	}
}

func BenchmarkFig4aMemoryAccessEstimate(b *testing.B) {
	runExperiment(b, "fig4a")
}

func BenchmarkFig4bSparsity(b *testing.B) {
	runExperiment(b, "fig4b")
}

func BenchmarkFig5LikelihoodRepresentations(b *testing.B) {
	runExperiment(b, "fig5")
}

func BenchmarkFig6SortVsComp(b *testing.B) {
	runExperiment(b, "fig6")
}

func BenchmarkFig7aBatchSortThroughput(b *testing.B) {
	runExperiment(b, "fig7a")
}

func BenchmarkFig7bMultipass(b *testing.B) {
	res := runExperiment(b, "fig7b")
	if v, ok := metricFromNote(res, "single pass"); ok {
		b.ReportMetric(v, "sp-padding-x")
	}
}

func BenchmarkFig8KernelOptimizations(b *testing.B) {
	runExperiment(b, "fig8")
}

func BenchmarkFig9OutputCompression(b *testing.B) {
	res := runExperiment(b, "fig9")
	if v, ok := metricFromNote(res, "size ratio"); ok {
		b.ReportMetric(v, "text-vs-gsnp-x")
	}
}

func BenchmarkFig10aDecompression(b *testing.B) {
	runExperiment(b, "fig10a")
}

func BenchmarkFig10bTempInput(b *testing.B) {
	runExperiment(b, "fig10b")
}

func BenchmarkFig11WindowSize(b *testing.B) {
	runExperiment(b, "fig11")
}

func BenchmarkFig12EndToEnd(b *testing.B) {
	res := runExperiment(b, "fig12")
	if v, ok := metricFromNote(res, "whole-genome total speedup"); ok {
		b.ReportMetric(v, "end-to-end-speedup-x")
	}
}

// Ablation benches: isolate the engine-level effects the design document
// calls out, without the experiment-harness framing.

// BenchmarkAblationDenseVsSparseCPU measures the representation change
// alone on the CPU (the GSNP_CPU vs SOAPsnp delta of Figure 5).
func BenchmarkAblationDenseVsSparseCPU(b *testing.B) {
	s := harness.NewSession(benchScale())
	ds := s.Dataset("chr21")
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s2 := harness.NewSession(benchScale())
			s2.RunSOAPsnp("chr21")
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.RunGSNP(ds, harness.GSNPOptions{Mode: gsnp.ModeCPU})
		}
	})
}

// BenchmarkAblationKernelVariants times the four likelihood_comp kernels
// back to back (the Figure 8 ablation at engine level).
func BenchmarkAblationKernelVariants(b *testing.B) {
	s := harness.NewSession(benchScale())
	ds := s.Dataset("chr21")
	for _, v := range []gsnp.Variant{gsnp.VariantBaseline, gsnp.VariantShared, gsnp.VariantNewTable, gsnp.VariantOptimized} {
		v := v
		b.Run(strings.ReplaceAll(v.String(), " ", "_"), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, _ := s.RunGSNP(ds, harness.GSNPOptions{Mode: gsnp.ModeGPU, Variant: v})
				sim = rep.Times.LikeliComp.Seconds()
			}
			b.ReportMetric(sim*1e6, "sim-us/op")
		})
	}
}

// BenchmarkAblationSortMethods times the three likelihood_sort schemes
// (the Figure 7b ablation at engine level).
func BenchmarkAblationSortMethods(b *testing.B) {
	s := harness.NewSession(benchScale())
	ds := s.Dataset("chr21")
	for _, m := range []struct {
		name string
		m    gsnp.SortMethod
	}{{"multipass", gsnp.SortMultipass}, {"singlepass", gsnp.SortSinglePass}, {"noneq", gsnp.SortNonEq}} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, _ := s.RunGSNP(ds, harness.GSNPOptions{Mode: gsnp.ModeGPU, Sort: m.m})
				sim = rep.SortStats.SimSeconds
			}
			b.ReportMetric(sim*1e6, "sim-us/op")
		})
	}
}

// BenchmarkWholeGenomeParallel runs the scaled 24-chromosome set through
// the bounded worker-pool scheduler at 1 and 4 workers (gsnp-cpu engine
// with window prefetch), the whole-genome wall-clock the concurrent
// scheduler exists to improve. Datasets are built once outside the timed
// loop.
func BenchmarkWholeGenomeParallel(b *testing.B) {
	specs := seqsim.ScaledHumanGenome(benchScale().SitesPerMb, benchScale().Seed)
	s := harness.NewSession(benchScale())
	dss := make([]*seqsim.Dataset, len(specs))
	sites := 0
	for i, spec := range specs {
		dss[i] = seqsim.BuildDataset(spec)
		sites += len(dss[i].Ref.Seq)
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tasks := make([]sched.Task[int], len(dss))
				for k, ds := range dss {
					ds := ds
					tasks[k] = sched.Task[int]{
						Name: ds.Spec.Name,
						Run: func(ctx context.Context) (int, error) {
							rep, _ := s.RunGSNP(ds, harness.GSNPOptions{Mode: gsnp.ModeCPU, Prefetch: true})
							return rep.Sites, nil
						},
					}
				}
				if _, _, err := sched.Run(context.Background(), workers, tasks); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sites)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msites/s")
		})
	}
}

// BenchmarkAblationCompressedOutput compares text and compressed output
// paths end to end.
func BenchmarkAblationCompressedOutput(b *testing.B) {
	s := harness.NewSession(benchScale())
	ds := s.Dataset("chr21")
	for _, c := range []struct {
		name     string
		compress bool
	}{{"text", false}, {"compressed", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				rep, _ := s.RunGSNP(ds, harness.GSNPOptions{Mode: gsnp.ModeGPU, Compress: c.compress})
				bytes = rep.OutputBytes
			}
			b.ReportMetric(float64(bytes), "output-bytes")
		})
	}
}
