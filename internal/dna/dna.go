// Package dna provides the elementary genomic types shared by every other
// package in the repository: two-bit nucleotide bases, diploid genotypes,
// Phred quality scores and packed sequences.
//
// The encodings follow the conventions used by SOAPsnp and GSNP (Lu et al.,
// ICPP 2011): bases are A=0, C=1, G=2, T=3 so that a base complements to
// 3-base, and the ten unordered diploid genotypes are enumerated in the
// canonical order produced by the allele1 <= allele2 double loop of the
// likelihood algorithm.
package dna

import (
	"fmt"
	"math"
	"strings"
)

// Base is a nucleotide encoded in two bits: A=0, C=1, G=2, T=3.
type Base uint8

// The four nucleotide bases.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NBases is the size of the nucleotide alphabet.
const NBases = 4

// baseLetters maps the two-bit encoding to its letter.
var baseLetters = [NBases]byte{'A', 'C', 'G', 'T'}

// Byte returns the upper-case ASCII letter for b.
func (b Base) Byte() byte { return baseLetters[b&3] }

// String returns the single-letter representation of b.
func (b Base) String() string { return string(baseLetters[b&3]) }

// Complement returns the Watson-Crick complement of b (A<->T, C<->G).
// With the 2-bit encoding this is simply 3-b.
func (b Base) Complement() Base { return 3 - (b & 3) }

// IsTransition reports whether substituting b with o is a transition
// (purine<->purine or pyrimidine<->pyrimidine: A<->G or C<->T).
// All other substitutions are transversions.
func (b Base) IsTransition(o Base) bool {
	if b == o {
		return false
	}
	// A(0)<->G(2) differ by 2; C(1)<->T(3) differ by 2.
	return (b^o)&3 == 2
}

// ParseBase converts an ASCII nucleotide letter to a Base. It accepts upper
// and lower case. ok is false for any non-ACGT character (including N).
func ParseBase(c byte) (b Base, ok bool) {
	switch c {
	case 'A', 'a':
		return A, true
	case 'C', 'c':
		return C, true
	case 'G', 'g':
		return G, true
	case 'T', 't':
		return T, true
	}
	return 0, false
}

// Genotype is one of the ten unordered diploid genotypes (pairs of alleles).
// The encoding matches the type_likely indexing of SOAPsnp's likelihood
// algorithm: allele1<<2 | allele2 with allele1 <= allele2, giving the sparse
// set {0,1,2,3,5,6,7,10,11,15} inside a 16-slot table.
type Genotype uint8

// NGenotypes is the number of unordered diploid genotypes.
const NGenotypes = 10

// MakeGenotype builds the genotype for the unordered allele pair {a1, a2}.
func MakeGenotype(a1, a2 Base) Genotype {
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	return Genotype(a1<<2 | a2)
}

// HomozygousGenotype returns the genotype with both alleles equal to b.
func HomozygousGenotype(b Base) Genotype { return MakeGenotype(b, b) }

// Alleles returns the two alleles of g with Allele1 <= Allele2.
func (g Genotype) Alleles() (a1, a2 Base) {
	return Base(g>>2) & 3, Base(g) & 3
}

// IsHomozygous reports whether both alleles of g are identical.
func (g Genotype) IsHomozygous() bool {
	a1, a2 := g.Alleles()
	return a1 == a2
}

// Contains reports whether b is one of g's alleles.
func (g Genotype) Contains(b Base) bool {
	a1, a2 := g.Alleles()
	return a1 == b || a2 == b
}

// String renders the genotype as its two allele letters, e.g. "AG".
func (g Genotype) String() string {
	a1, a2 := g.Alleles()
	return string([]byte{a1.Byte(), a2.Byte()})
}

// IUPAC returns the IUPAC ambiguity code for the genotype, as used in the
// consensus column of the SOAPsnp result table (e.g. A/G -> 'R', A/A -> 'A').
func (g Genotype) IUPAC() byte {
	a1, a2 := g.Alleles()
	if a1 == a2 {
		return a1.Byte()
	}
	switch [2]Base{a1, a2} {
	case [2]Base{A, C}:
		return 'M'
	case [2]Base{A, G}:
		return 'R'
	case [2]Base{A, T}:
		return 'W'
	case [2]Base{C, G}:
		return 'S'
	case [2]Base{C, T}:
		return 'Y'
	case [2]Base{G, T}:
		return 'K'
	}
	return 'N' // unreachable for valid genotypes
}

// genotypeOrder lists the ten genotypes in the canonical double-loop order
// allele1 in 0..3, allele2 in allele1..3 used throughout the likelihood code.
var genotypeOrder = func() [NGenotypes]Genotype {
	var gs [NGenotypes]Genotype
	n := 0
	for a1 := Base(0); a1 < NBases; a1++ {
		for a2 := a1; a2 < NBases; a2++ {
			gs[n] = MakeGenotype(a1, a2)
			n++
		}
	}
	return gs
}()

// genotypeRank maps the 16-slot encoding to the dense rank 0..9 (or -1).
var genotypeRank = func() [16]int8 {
	var r [16]int8
	for i := range r {
		r[i] = -1
	}
	for i, g := range genotypeOrder {
		r[g] = int8(i)
	}
	return r
}()

// Genotypes returns the ten genotypes in canonical order. The returned array
// is a copy; callers may modify it freely.
func Genotypes() [NGenotypes]Genotype { return genotypeOrder }

// Rank returns the dense index 0..9 of g in canonical order, or -1 if g is
// not a valid unordered genotype encoding.
func (g Genotype) Rank() int {
	if g >= 16 {
		return -1
	}
	return int(genotypeRank[g])
}

// GenotypeByRank returns the genotype with the given canonical rank 0..9.
// It panics if rank is out of range.
func GenotypeByRank(rank int) Genotype {
	if rank < 0 || rank >= NGenotypes {
		panic(fmt.Sprintf("dna: genotype rank %d out of range", rank))
	}
	return genotypeOrder[rank]
}

// Quality is a Phred-scaled sequencing quality score. GSNP constrains
// scores to [0, QMax) so that log tables over the integer quality domain
// stay small enough for constant memory.
type Quality uint8

// QMax is the exclusive upper bound on quality scores (scores are 0..63),
// matching the 64-entry score dimension of base_occ and log_table.
const QMax = 64

// ClampQuality truncates q into the representable range [0, QMax-1].
func ClampQuality(q int) Quality {
	if q < 0 {
		return 0
	}
	if q >= QMax {
		return QMax - 1
	}
	return Quality(q)
}

// ErrorProbability returns the error probability 10^(-q/10) encoded by the
// Phred score.
func (q Quality) ErrorProbability() float64 {
	return phredErrTable[q&(QMax-1)]
}

// phredErrTable caches 10^(-q/10) for the 64 representable scores.
var phredErrTable = func() [QMax]float64 {
	var t [QMax]float64
	for q := range t {
		t[q] = math.Pow(10, -float64(q)/10)
	}
	return t
}()

// Sequence is an unpacked nucleotide sequence (one Base per element).
type Sequence []Base

// ParseSequence decodes an ASCII string of ACGT letters. Characters outside
// the alphabet (e.g. N) are reported in err and mapped to A so callers that
// tolerate Ns can ignore the error.
func ParseSequence(s string) (Sequence, error) {
	seq := make(Sequence, len(s))
	var bad int
	for i := 0; i < len(s); i++ {
		b, ok := ParseBase(s[i])
		if !ok {
			bad++
		}
		seq[i] = b
	}
	if bad > 0 {
		return seq, fmt.Errorf("dna: %d non-ACGT characters in sequence of length %d", bad, len(s))
	}
	return seq, nil
}

// String renders the sequence as ASCII letters.
func (s Sequence) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Byte())
	}
	return sb.String()
}

// ReverseComplement returns the reverse complement of s as a new sequence.
func (s Sequence) ReverseComplement() Sequence {
	rc := make(Sequence, len(s))
	for i, b := range s {
		rc[len(s)-1-i] = b.Complement()
	}
	return rc
}

// GCContent returns the fraction of G/C bases in s, or 0 for an empty
// sequence.
func (s Sequence) GCContent() float64 {
	if len(s) == 0 {
		return 0
	}
	n := 0
	for _, b := range s {
		if b == C || b == G {
			n++
		}
	}
	return float64(n) / float64(len(s))
}

// Packed is a 2-bit-per-base packed nucleotide sequence, used for reference
// storage and the compressed input/output formats.
type Packed struct {
	bits []byte
	n    int
}

// Pack compresses s into two bits per base.
func Pack(s Sequence) *Packed {
	p := &Packed{bits: make([]byte, (len(s)+3)/4), n: len(s)}
	for i, b := range s {
		p.bits[i>>2] |= byte(b&3) << uint((i&3)*2)
	}
	return p
}

// NewPacked creates an all-A packed sequence of length n.
func NewPacked(n int) *Packed {
	return &Packed{bits: make([]byte, (n+3)/4), n: n}
}

// Len returns the number of bases stored.
func (p *Packed) Len() int { return p.n }

// At returns the base at position i.
func (p *Packed) At(i int) Base {
	return Base(p.bits[i>>2]>>uint((i&3)*2)) & 3
}

// Set stores base b at position i.
func (p *Packed) Set(i int, b Base) {
	shift := uint((i & 3) * 2)
	p.bits[i>>2] = p.bits[i>>2]&^(3<<shift) | byte(b&3)<<shift
}

// Unpack expands the packed sequence back to one Base per element.
func (p *Packed) Unpack() Sequence {
	s := make(Sequence, p.n)
	for i := range s {
		s[i] = p.At(i)
	}
	return s
}

// Bytes returns the underlying bit storage (length ceil(n/4)). The slice is
// shared with the Packed value; treat it as read-only.
func (p *Packed) Bytes() []byte { return p.bits }

// FromBytes reconstructs a packed sequence of n bases from its bit storage.
func FromBytes(bits []byte, n int) (*Packed, error) {
	if need := (n + 3) / 4; len(bits) < need {
		return nil, fmt.Errorf("dna: packed storage too short: have %d bytes, need %d for %d bases", len(bits), need, n)
	}
	return &Packed{bits: bits[:(n+3)/4], n: n}, nil
}
