package dna

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBaseLetters(t *testing.T) {
	cases := []struct {
		b Base
		c byte
	}{{A, 'A'}, {C, 'C'}, {G, 'G'}, {T, 'T'}}
	for _, tc := range cases {
		if tc.b.Byte() != tc.c {
			t.Errorf("Base(%d).Byte() = %c, want %c", tc.b, tc.b.Byte(), tc.c)
		}
		got, ok := ParseBase(tc.c)
		if !ok || got != tc.b {
			t.Errorf("ParseBase(%c) = %v, %v; want %v, true", tc.c, got, ok, tc.b)
		}
		lower := tc.c + 'a' - 'A'
		got, ok = ParseBase(lower)
		if !ok || got != tc.b {
			t.Errorf("ParseBase(%c) = %v, %v; want %v, true", lower, got, ok, tc.b)
		}
	}
	if _, ok := ParseBase('N'); ok {
		t.Error("ParseBase('N') reported ok")
	}
	if _, ok := ParseBase('x'); ok {
		t.Error("ParseBase('x') reported ok")
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%v.Complement() = %v, want %v", b, got, want)
		}
		if got := b.Complement().Complement(); got != b {
			t.Errorf("double complement of %v = %v", b, got)
		}
	}
}

func TestTransitions(t *testing.T) {
	transitions := [][2]Base{{A, G}, {G, A}, {C, T}, {T, C}}
	for _, p := range transitions {
		if !p[0].IsTransition(p[1]) {
			t.Errorf("%v->%v should be a transition", p[0], p[1])
		}
	}
	transversions := [][2]Base{{A, C}, {A, T}, {C, G}, {G, T}, {C, A}, {T, G}}
	for _, p := range transversions {
		if p[0].IsTransition(p[1]) {
			t.Errorf("%v->%v should be a transversion", p[0], p[1])
		}
	}
	for b := Base(0); b < NBases; b++ {
		if b.IsTransition(b) {
			t.Errorf("%v->%v (identity) reported as transition", b, b)
		}
	}
}

func TestGenotypeEnumeration(t *testing.T) {
	gs := Genotypes()
	if len(gs) != NGenotypes {
		t.Fatalf("Genotypes() returned %d entries", len(gs))
	}
	seen := map[Genotype]bool{}
	for i, g := range gs {
		if seen[g] {
			t.Errorf("duplicate genotype %v at rank %d", g, i)
		}
		seen[g] = true
		if g.Rank() != i {
			t.Errorf("genotype %v rank = %d, want %d", g, g.Rank(), i)
		}
		if GenotypeByRank(i) != g {
			t.Errorf("GenotypeByRank(%d) = %v, want %v", i, GenotypeByRank(i), g)
		}
		a1, a2 := g.Alleles()
		if a1 > a2 {
			t.Errorf("genotype %v alleles out of order: %v > %v", g, a1, a2)
		}
	}
	// The canonical order starts AA, AC, AG, AT, CC, ...
	if gs[0] != MakeGenotype(A, A) || gs[1] != MakeGenotype(A, C) || gs[4] != MakeGenotype(C, C) {
		t.Errorf("unexpected canonical order: %v", gs)
	}
}

func TestMakeGenotypeUnordered(t *testing.T) {
	if MakeGenotype(G, A) != MakeGenotype(A, G) {
		t.Error("MakeGenotype is order sensitive")
	}
	g := MakeGenotype(T, C)
	a1, a2 := g.Alleles()
	if a1 != C || a2 != T {
		t.Errorf("alleles of CT genotype = %v,%v", a1, a2)
	}
	if !g.Contains(C) || !g.Contains(T) || g.Contains(A) {
		t.Error("Contains misreports alleles")
	}
	if g.IsHomozygous() {
		t.Error("CT reported homozygous")
	}
	if !HomozygousGenotype(G).IsHomozygous() {
		t.Error("GG reported heterozygous")
	}
}

func TestGenotypeRankInvalid(t *testing.T) {
	// Encodings with allele1 > allele2 are not canonical genotypes.
	if Genotype(G<<2|A).Rank() != -1 {
		t.Error("non-canonical encoding has a rank")
	}
	if Genotype(200).Rank() != -1 {
		t.Error("out-of-range encoding has a rank")
	}
}

func TestGenotypeByRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GenotypeByRank(10) did not panic")
		}
	}()
	GenotypeByRank(NGenotypes)
}

func TestIUPAC(t *testing.T) {
	cases := map[Genotype]byte{
		MakeGenotype(A, A): 'A',
		MakeGenotype(C, C): 'C',
		MakeGenotype(G, G): 'G',
		MakeGenotype(T, T): 'T',
		MakeGenotype(A, C): 'M',
		MakeGenotype(A, G): 'R',
		MakeGenotype(A, T): 'W',
		MakeGenotype(C, G): 'S',
		MakeGenotype(C, T): 'Y',
		MakeGenotype(G, T): 'K',
	}
	if len(cases) != NGenotypes {
		t.Fatal("test table incomplete")
	}
	for g, want := range cases {
		if got := g.IUPAC(); got != want {
			t.Errorf("%v.IUPAC() = %c, want %c", g, got, want)
		}
	}
}

func TestClampQuality(t *testing.T) {
	if ClampQuality(-5) != 0 {
		t.Error("negative quality not clamped to 0")
	}
	if ClampQuality(1000) != QMax-1 {
		t.Error("large quality not clamped to QMax-1")
	}
	if ClampQuality(40) != 40 {
		t.Error("in-range quality altered")
	}
}

func TestErrorProbability(t *testing.T) {
	if got := Quality(0).ErrorProbability(); got != 1 {
		t.Errorf("Q0 error probability = %v, want 1", got)
	}
	if got := Quality(10).ErrorProbability(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Q10 error probability = %v, want 0.1", got)
	}
	if got := Quality(30).ErrorProbability(); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("Q30 error probability = %v, want 0.001", got)
	}
	// Monotone decreasing.
	for q := 1; q < QMax; q++ {
		if Quality(q).ErrorProbability() >= Quality(q-1).ErrorProbability() {
			t.Fatalf("error probability not decreasing at q=%d", q)
		}
	}
}

func TestParseSequence(t *testing.T) {
	s, err := ParseSequence("ACGTacgt")
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	want := Sequence{A, C, G, T, A, C, G, T}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("position %d = %v, want %v", i, s[i], want[i])
		}
	}
	if s.String() != "ACGTACGT" {
		t.Errorf("String() = %q", s.String())
	}

	s, err = ParseSequence("ANT")
	if err == nil {
		t.Error("ParseSequence accepted N silently")
	}
	if len(s) != 3 || s[1] != A {
		t.Errorf("N not mapped to A: %v", s)
	}
}

func TestReverseComplement(t *testing.T) {
	s, _ := ParseSequence("AACGT")
	rc := s.ReverseComplement()
	if rc.String() != "ACGTT" {
		t.Errorf("ReverseComplement = %q, want ACGTT", rc.String())
	}
	back := rc.ReverseComplement()
	if back.String() != s.String() {
		t.Errorf("double reverse complement = %q", back.String())
	}
}

func TestGCContent(t *testing.T) {
	s, _ := ParseSequence("GGCC")
	if s.GCContent() != 1 {
		t.Error("GGCC GC content != 1")
	}
	s, _ = ParseSequence("AATT")
	if s.GCContent() != 0 {
		t.Error("AATT GC content != 0")
	}
	s, _ = ParseSequence("ACGT")
	if s.GCContent() != 0.5 {
		t.Error("ACGT GC content != 0.5")
	}
	if (Sequence{}).GCContent() != 0 {
		t.Error("empty GC content != 0")
	}
}

func TestPackedRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make(Sequence, len(raw))
		for i, b := range raw {
			seq[i] = Base(b & 3)
		}
		p := Pack(seq)
		if p.Len() != len(seq) {
			return false
		}
		got := p.Unpack()
		for i := range seq {
			if got[i] != seq[i] || p.At(i) != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedSet(t *testing.T) {
	p := NewPacked(13)
	for i := 0; i < p.Len(); i++ {
		if p.At(i) != A {
			t.Fatalf("fresh packed sequence not all-A at %d", i)
		}
	}
	p.Set(5, T)
	p.Set(6, G)
	p.Set(5, C) // overwrite
	if p.At(5) != C || p.At(6) != G || p.At(4) != A || p.At(7) != A {
		t.Errorf("Set produced wrong neighborhood: %v", p.Unpack())
	}
}

func TestPackedFromBytes(t *testing.T) {
	s, _ := ParseSequence("ACGTACGTA")
	p := Pack(s)
	q, err := FromBytes(p.Bytes(), p.Len())
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if q.Unpack().String() != s.String() {
		t.Errorf("FromBytes roundtrip = %q", q.Unpack().String())
	}
	if _, err := FromBytes(p.Bytes(), 100); err == nil {
		t.Error("FromBytes accepted too-short storage")
	}
}
