package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// dequeueLog records the pool's dispatch order via the OnDequeue hook.
type dequeueLog struct {
	mu    sync.Mutex
	order []string
}

func (l *dequeueLog) hook(job string, idx int) {
	l.mu.Lock()
	l.order = append(l.order, fmt.Sprintf("%s:%d", job, idx))
	l.mu.Unlock()
}

func (l *dequeueLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.order...)
}

// drain collects a job's results indexed by input position.
func drain[R any](t *testing.T, j *Job[R], n int) []Result[R] {
	t.Helper()
	out := make([]Result[R], n)
	got := 0
	timeout := time.After(30 * time.Second)
	for got < n {
		select {
		case r, ok := <-j.Results():
			if !ok {
				t.Fatalf("results closed after %d/%d", got, n)
			}
			if r.Index < 0 || r.Index >= n {
				t.Fatalf("result index %d out of range [0,%d)", r.Index, n)
			}
			out[r.Index] = r.Result
			got++
		case <-timeout:
			t.Fatalf("timed out draining results (%d/%d)", got, n)
		}
	}
	if _, ok := <-j.Results(); ok {
		t.Fatal("results channel not closed after the last task")
	}
	return out
}

// TestPoolFairnessSmallJobNotStarved is the starvation scenario from the
// service design: a 1-worker pool with a long job queued first must
// schedule a later small job's task within one round-robin rotation (here:
// after exactly one more long task), not after the long job drains. The
// OnDequeue hook makes the interleave deterministic: the long job's first
// task blocks until the small job is submitted, pinning the dispatch order
// to long:0, long:1, small:0, long:2, ... — the long job had already
// re-queued for its next turn when the small job arrived, and the small
// job is served at the very next rotation slot.
func TestPoolFairnessSmallJobNotStarved(t *testing.T) {
	var log dequeueLog
	firstStarted := make(chan struct{})
	release := make(chan struct{})

	p := NewPool[int, struct{}](PoolConfig{Workers: 1, OnDequeue: log.hook},
		func(int) struct{} { return struct{}{} })
	defer p.Close()

	const longN = 6
	long := make([]LocalTask[int, struct{}], longN)
	for i := range long {
		i := i
		long[i] = LocalTask[int, struct{}]{Name: fmt.Sprintf("long-%d", i),
			Run: func(ctx context.Context, _ struct{}) (int, error) {
				if i == 0 {
					close(firstStarted)
					<-release
				}
				return i, nil
			}}
	}
	lj, err := p.Submit("long", long)
	if err != nil {
		t.Fatal(err)
	}

	// The single worker is now inside long:0; everything else the long job
	// owns is still queued. Submit the small job, then let long:0 finish.
	<-firstStarted
	sj, err := p.Submit("small", []LocalTask[int, struct{}]{{Name: "small-0",
		Run: func(ctx context.Context, _ struct{}) (int, error) { return 100, nil }}})
	if err != nil {
		t.Fatal(err)
	}
	close(release)

	drain(t, sj, 1)
	drain(t, lj, longN)

	order := log.snapshot()
	want := []string{"long:0", "long:1", "small:0", "long:2", "long:3", "long:4", "long:5"}
	if len(order) != len(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (first divergence at %d)", order, want, i)
		}
	}
}

// TestPoolRoundRobinAcrossThreeJobs: with one worker and three jobs of
// equal size all queued while the worker is blocked, dispatch must cycle
// j1, j2, j3, j1, j2, j3, ... rather than draining any job first.
func TestPoolRoundRobinAcrossThreeJobs(t *testing.T) {
	var log dequeueLog
	gateStarted := make(chan struct{})
	release := make(chan struct{})

	p := NewPool[int, struct{}](PoolConfig{Workers: 1, OnDequeue: log.hook},
		func(int) struct{} { return struct{}{} })
	defer p.Close()

	// A gate job holds the worker while the three real jobs queue up.
	gate, err := p.Submit("gate", []LocalTask[int, struct{}]{{Name: "gate",
		Run: func(ctx context.Context, _ struct{}) (int, error) {
			close(gateStarted)
			<-release
			return 0, nil
		}}})
	if err != nil {
		t.Fatal(err)
	}
	<-gateStarted

	mk := func(n int) []LocalTask[int, struct{}] {
		ts := make([]LocalTask[int, struct{}], n)
		for i := range ts {
			i := i
			ts[i] = LocalTask[int, struct{}]{Name: fmt.Sprint(i),
				Run: func(ctx context.Context, _ struct{}) (int, error) { return i, nil }}
		}
		return ts
	}
	j1, _ := p.Submit("j1", mk(2))
	j2, _ := p.Submit("j2", mk(2))
	j3, _ := p.Submit("j3", mk(2))
	close(release)

	drain(t, gate, 1)
	drain(t, j1, 2)
	drain(t, j2, 2)
	drain(t, j3, 2)

	order := log.snapshot()
	want := []string{"gate:0", "j1:0", "j2:0", "j3:0", "j1:1", "j2:1", "j3:1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestPoolResultsCompleteAndIndexed: every task's result arrives exactly
// once with the right index and value at a parallel worker count.
func TestPoolResultsCompleteAndIndexed(t *testing.T) {
	p := NewPool[int, struct{}](PoolConfig{Workers: 4},
		func(int) struct{} { return struct{}{} })
	defer p.Close()

	const n = 64
	tasks := make([]LocalTask[int, struct{}], n)
	for i := range tasks {
		i := i
		tasks[i] = LocalTask[int, struct{}]{Name: fmt.Sprint(i),
			Run: func(ctx context.Context, _ struct{}) (int, error) { return i * i, nil }}
	}
	j, err := p.Submit("job", tasks)
	if err != nil {
		t.Fatal(err)
	}
	res := drain(t, j, n)
	for i, r := range res {
		if r.Err != nil || r.Value != i*i {
			t.Fatalf("task %d: value %d err %v, want %d", i, r.Value, r.Err, i*i)
		}
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Done not closed after all results")
	}
}

// TestPoolCancelSkipsQueuedOnly: cancelling a job resolves its queued
// tasks as skipped with the cancellation cause, lets the running task
// observe its context, and leaves a sibling job completely untouched.
func TestPoolCancelSkipsQueuedOnly(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	cause := errors.New("client went away")

	p := NewPool[int, struct{}](PoolConfig{Workers: 1},
		func(int) struct{} { return struct{}{} })
	defer p.Close()

	const n = 5
	tasks := make([]LocalTask[int, struct{}], n)
	for i := range tasks {
		i := i
		tasks[i] = LocalTask[int, struct{}]{Name: fmt.Sprint(i),
			Run: func(ctx context.Context, _ struct{}) (int, error) {
				if i == 0 {
					close(started)
					<-release
					return 0, ctx.Err() // report what cancellation did to us
				}
				return i, nil
			}}
	}
	victim, err := p.Submit("victim", tasks)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	bystander, err := p.Submit("bystander", []LocalTask[int, struct{}]{{Name: "b",
		Run: func(ctx context.Context, _ struct{}) (int, error) { return 42, nil }}})
	if err != nil {
		t.Fatal(err)
	}

	victim.Cancel(cause)
	close(release)

	vres := drain(t, victim, n)
	for i := 1; i < n; i++ {
		if !vres[i].Skipped {
			t.Errorf("task %d: not skipped after cancel", i)
		}
		if !errors.Is(vres[i].Err, cause) {
			t.Errorf("task %d: err %v, want cause %v", i, vres[i].Err, cause)
		}
	}
	if vres[0].Skipped {
		t.Error("running task reported skipped; it had already started")
	}
	if !errors.Is(vres[0].Err, context.Canceled) {
		t.Errorf("running task err %v, want context.Canceled", vres[0].Err)
	}

	bres := drain(t, bystander, 1)
	if bres[0].Err != nil || bres[0].Value != 42 {
		t.Fatalf("bystander perturbed by sibling cancel: %+v", bres[0])
	}
}

// TestPoolCloseDrainsQueuedTasks: Close is a graceful drain — tasks queued
// before Close still run to completion.
func TestPoolCloseDrainsQueuedTasks(t *testing.T) {
	p := NewPool[int, struct{}](PoolConfig{Workers: 2},
		func(int) struct{} { return struct{}{} })
	const n = 16
	tasks := make([]LocalTask[int, struct{}], n)
	for i := range tasks {
		i := i
		tasks[i] = LocalTask[int, struct{}]{Name: fmt.Sprint(i),
			Run: func(ctx context.Context, _ struct{}) (int, error) { return i, nil }}
	}
	j, err := p.Submit("job", tasks)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Submit("late", tasks); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: err %v, want ErrPoolClosed", err)
	}
	res := drain(t, j, n)
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("task %d not completed across Close: %+v", i, r)
		}
	}
}

// TestPoolEmptyJob: zero tasks yields an immediately-finished job.
func TestPoolEmptyJob(t *testing.T) {
	p := NewPool[int, struct{}](PoolConfig{Workers: 1},
		func(int) struct{} { return struct{}{} })
	defer p.Close()
	j, err := p.Submit("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-j.Results(); ok {
		t.Fatal("empty job produced a result")
	}
	<-j.Done()
}

// TestPoolPolicyAppliesPerTask: the pool's Policy converts panics and
// retries transient failures exactly like RunLocalPolicy, and one job's
// failures never cancel a sibling job.
func TestPoolPolicyAppliesPerTask(t *testing.T) {
	var attempts sync.Map
	p := NewPool[int, struct{}](PoolConfig{
		Workers: 2,
		Policy:  Policy{Retries: 2, RecoverPanics: true},
	}, func(int) struct{} { return struct{}{} })
	defer p.Close()

	tasks := []LocalTask[int, struct{}]{
		{Name: "panics", Run: func(ctx context.Context, _ struct{}) (int, error) {
			panic("boom")
		}},
		{Name: "flaky", Run: func(ctx context.Context, _ struct{}) (int, error) {
			n, _ := attempts.LoadOrStore("flaky", new(int))
			c := n.(*int)
			*c++
			if *c < 3 {
				return 0, errors.New("transient")
			}
			return 7, nil
		}},
		{Name: "ok", Run: func(ctx context.Context, _ struct{}) (int, error) { return 1, nil }},
	}
	j, err := p.Submit("mixed", tasks)
	if err != nil {
		t.Fatal(err)
	}
	res := drain(t, j, len(tasks))

	var pe *PanicError
	if !errors.As(res[0].Err, &pe) || !res[0].Panicked {
		t.Errorf("panicking task: err %v panicked %v, want PanicError", res[0].Err, res[0].Panicked)
	}
	if res[1].Err != nil || res[1].Value != 7 || res[1].Attempts != 3 {
		t.Errorf("flaky task: %+v, want success after 3 attempts", res[1])
	}
	if res[2].Err != nil || res[2].Value != 1 {
		t.Errorf("ok task perturbed by siblings: %+v", res[2])
	}
}
