package sched

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrPoolClosed is returned by Pool.Submit after Close has begun.
var ErrPoolClosed = errors.New("sched: pool closed")

// PoolConfig configures a Pool.
type PoolConfig struct {
	// Workers is the number of worker goroutines (<= 0 selects GOMAXPROCS).
	Workers int
	// Policy is the fault-tolerance contract applied to every task of every
	// job: deadlines, panic containment and retries, exactly as in
	// RunLocalPolicy. ContinueOnError is implied — one job's failure never
	// cancels another job, and within a job every task still runs.
	Policy Policy
	// OnDequeue, when set, observes dispatch order: it is called under the
	// pool's scheduling lock, in exactly the order tasks are handed to
	// workers, with the owning job's id and the task's index within its
	// job. Tests use it to assert fairness deterministically; the service
	// uses it to mark chromosomes running.
	OnDequeue func(job string, index int)
}

// Pool is the long-lived counterpart of RunLocal: a fixed set of workers
// (each with its own worker-local state, e.g. a gsnp.Arena) serving many
// jobs submitted over time. Scheduling is fair across jobs by round-robin:
// a worker looking for work takes ONE task from the least-recently-served
// job with pending tasks, so a 24-chromosome whole genome queued first
// cannot starve a single-chromosome request submitted later — the small
// job's task is dispatched within one rotation (at most one task per
// active job) of its submission.
//
// Within a job, tasks dispatch in input order and every result carries its
// input index, so a consumer can reassemble input order from the
// completion-order stream. Jobs are isolated: cancellation and failure of
// one job never affect another job's tasks or bytes.
type Pool[R, L any] struct {
	cfg      PoolConfig
	newLocal func(worker int) L

	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*poolJob[R, L] // jobs with undispatched tasks, round-robin order
	live   map[*poolJob[R, L]]struct{}
	closed bool
	wg     sync.WaitGroup
}

// poolJob is the pool-internal state of one submitted job.
type poolJob[R, L any] struct {
	id      string
	tasks   []LocalTask[R, L]
	next    int // next undispatched task index
	pending int // tasks not yet resolved (running, queued or undelivered)
	inRing  bool
	ctx     context.Context
	cancel  context.CancelCauseFunc
	results chan JobResult[R]
	done    chan struct{}
}

// JobResult is one task's outcome, tagged with its index within the job.
// Results arrive in completion order; Index recovers input order.
type JobResult[R any] struct {
	// Index is the task's position in the slice passed to Submit.
	Index int
	Result[R]
}

// Job is the caller's handle on a submitted job.
type Job[R any] struct {
	id       string
	results  chan JobResult[R]
	done     chan struct{}
	cancelFn func(cause error)
}

// ID echoes the id passed to Submit.
func (j *Job[R]) ID() string { return j.id }

// Results streams task outcomes in completion order. The channel is
// buffered to the job's task count — workers never block on a slow
// consumer — and closes once every task has resolved (finished, failed or
// skipped by cancellation).
func (j *Job[R]) Results() <-chan JobResult[R] { return j.results }

// Done closes when every task of the job has resolved.
func (j *Job[R]) Done() <-chan struct{} { return j.done }

// Cancel cancels the job: undispatched tasks resolve immediately as
// Skipped with cause as their error, and running tasks see their context
// cancelled (the engines abort at the next window boundary). Other jobs
// are unaffected. Cancel is idempotent; a nil cause means
// context.Canceled.
func (j *Job[R]) Cancel(cause error) { j.cancelFn(cause) }

// NewPool starts the workers and returns the pool. newLocal runs once in
// each worker goroutine before it takes tasks, exactly as in RunLocal.
func NewPool[R, L any](cfg PoolConfig, newLocal func(worker int) L) *Pool[R, L] {
	if cfg.Workers <= 0 {
		cfg.Workers = Clamp(cfg.Workers, 1<<30)
	}
	p := &Pool[R, L]{cfg: cfg, newLocal: newLocal, live: make(map[*poolJob[R, L]]struct{})}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go p.worker(w)
	}
	return p
}

// Submit enqueues a job's tasks behind every currently-active job's next
// turn and returns its handle. An empty task slice yields an
// already-finished job. Submit fails only after Close has begun.
func (p *Pool[R, L]) Submit(id string, tasks []LocalTask[R, L]) (*Job[R], error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &poolJob[R, L]{
		id: id, tasks: tasks, pending: len(tasks),
		ctx: ctx, cancel: cancel,
		results: make(chan JobResult[R], len(tasks)),
		done:    make(chan struct{}),
	}
	if len(tasks) == 0 {
		cancel(nil)
		close(j.results)
		close(j.done)
	} else {
		p.live[j] = struct{}{}
		p.ring = append(p.ring, j)
		j.inRing = true
		p.cond.Broadcast()
	}
	return &Job[R]{
		id: id, results: j.results, done: j.done,
		cancelFn: func(cause error) { p.cancelJob(j, cause) },
	}, nil
}

// CancelAll cancels every live job (used for forced shutdown).
func (p *Pool[R, L]) CancelAll(cause error) {
	p.mu.Lock()
	jobs := make([]*poolJob[R, L], 0, len(p.live))
	for j := range p.live {
		jobs = append(jobs, j)
	}
	p.mu.Unlock()
	for _, j := range jobs {
		p.cancelJob(j, cause)
	}
}

// Close drains the pool gracefully: no new jobs are accepted, already
// queued tasks still run, and Close returns once every worker has exited.
// Combine with CancelAll for a forced shutdown.
func (p *Pool[R, L]) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker executes tasks until the pool is closed and drained.
func (p *Pool[R, L]) worker(w int) {
	defer p.wg.Done()
	local := p.newLocal(w)
	p.mu.Lock()
	for {
		if j, idx, ok := p.pickLocked(); ok {
			p.mu.Unlock()
			t0 := time.Now()
			pol := p.cfg.Policy
			pol.ContinueOnError = true // job isolation; failures never cancel siblings
			v, err, attempts, panicked := execute(j.ctx, &pol, idx, j.tasks[idx], local)
			p.mu.Lock()
			//gsnplint:ignore lockhold each job's results channel is buffered to its full task count, so deliverLocked's send can never block
			p.deliverLocked(j, JobResult[R]{Index: idx, Result: Result[R]{
				Name: j.tasks[idx].Name, Value: v, Err: err,
				Wall: time.Since(t0), Worker: w, Attempts: attempts, Panicked: panicked,
			}})
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
	}
}

// pickLocked pops the next (job, task) pair in round-robin order: the job
// at the front of the ring gives up exactly one task and, if it still has
// undispatched tasks, rejoins at the back.
func (p *Pool[R, L]) pickLocked() (*poolJob[R, L], int, bool) {
	for len(p.ring) > 0 {
		j := p.ring[0]
		p.ring = p.ring[1:]
		j.inRing = false
		if j.next >= len(j.tasks) {
			continue // fully dispatched (e.g. drained by cancellation)
		}
		idx := j.next
		j.next++
		if j.next < len(j.tasks) {
			p.ring = append(p.ring, j)
			j.inRing = true
		}
		if p.cfg.OnDequeue != nil {
			p.cfg.OnDequeue(j.id, idx)
		}
		return j, idx, true
	}
	return nil, 0, false
}

// deliverLocked records one resolved task and finishes the job when it was
// the last. The results channel is buffered to len(tasks), so the send
// never blocks.
func (p *Pool[R, L]) deliverLocked(j *poolJob[R, L], r JobResult[R]) {
	j.results <- r
	j.pending--
	if j.pending == 0 {
		j.cancel(nil) // release the job context's resources
		close(j.results)
		close(j.done)
		delete(p.live, j)
	}
}

// cancelJob implements Job.Cancel: resolve every undispatched task as
// skipped and cancel the job context for running ones.
func (p *Pool[R, L]) cancelJob(j *poolJob[R, L], cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	j.cancel(cause)
	for j.next < len(j.tasks) {
		idx := j.next
		j.next++
		//gsnplint:ignore lockhold each job's results channel is buffered to its full task count, so deliverLocked's send can never block
		p.deliverLocked(j, JobResult[R]{Index: idx, Result: Result[R]{
			Name: j.tasks[idx].Name, Err: cause, Worker: -1, Skipped: true,
		}})
	}
	if j.inRing {
		for i, rj := range p.ring {
			if rj == j {
				p.ring = append(p.ring[:i], p.ring[i+1:]...)
				break
			}
		}
		j.inRing = false
	}
}
