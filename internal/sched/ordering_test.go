package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunPolicyResultOrderingMixedFailures makes the scheduler's in-order
// result guarantee explicit under the worst mix the byte-identity tests
// only exercise implicitly: ContinueOnError with successes, recovered
// panics and per-task deadline hits interleaved across a parallel pool.
// Every result must land at its input index with its own task's name and
// value, the run error must be the lowest-index failure, and nothing may
// be skipped.
func TestRunPolicyResultOrderingMixedFailures(t *testing.T) {
	const n = 24
	kind := func(i int) string {
		switch i % 4 {
		case 1:
			return "panic"
		case 3:
			return "timeout"
		default:
			return "ok"
		}
	}
	tasks := make([]Task[string], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[string]{
			Name: fmt.Sprintf("task-%02d", i),
			Run: func(ctx context.Context) (string, error) {
				switch kind(i) {
				case "panic":
					panic(fmt.Sprintf("boom-%d", i))
				case "timeout":
					<-ctx.Done() // cooperative deadline, like the engines
					return "", ctx.Err()
				default:
					return fmt.Sprintf("value-%02d", i), nil
				}
			},
		}
	}
	pol := Policy{
		Timeout:         20 * time.Millisecond,
		RecoverPanics:   true,
		ContinueOnError: true,
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			results, stats, err := RunPolicy(context.Background(), workers, pol, tasks)
			if len(results) != n {
				t.Fatalf("got %d results, want %d", len(results), n)
			}
			for i, r := range results {
				if r.Name != tasks[i].Name {
					t.Fatalf("result %d holds %q: results out of input order", i, r.Name)
				}
				if r.Skipped {
					t.Errorf("%s skipped under ContinueOnError", r.Name)
				}
				switch kind(i) {
				case "panic":
					var pe *PanicError
					if !errors.As(r.Err, &pe) || !r.Panicked {
						t.Errorf("%s: err %v panicked %v, want recovered panic", r.Name, r.Err, r.Panicked)
					} else if want := fmt.Sprintf("boom-%d", i); fmt.Sprint(pe.Value) != want {
						t.Errorf("%s carries panic %v, want %s: cross-task result mixup", r.Name, pe.Value, want)
					}
				case "timeout":
					if !errors.Is(r.Err, context.DeadlineExceeded) {
						t.Errorf("%s: err %v, want deadline exceeded", r.Name, r.Err)
					}
					if !strings.Contains(fmt.Sprint(r.Err), "task deadline") {
						t.Errorf("%s: deadline error not annotated: %v", r.Name, r.Err)
					}
				default:
					if r.Err != nil || r.Value != fmt.Sprintf("value-%02d", i) {
						t.Errorf("%s: value %q err %v, want value-%02d", r.Name, r.Value, r.Err, i)
					}
				}
			}
			// The run error is the lowest-index failure: task-01 (panic).
			if err == nil || !strings.Contains(err.Error(), "task-01") {
				t.Errorf("run error %v, want the lowest-index failure task-01", err)
			}
			if stats.Ran != n || stats.SkippedTasks != 0 {
				t.Errorf("stats ran=%d skipped=%d, want %d/0", stats.Ran, stats.SkippedTasks, n)
			}
		})
	}
}

// TestRunPolicyLowestIndexErrorBeatsEarlierCompletion pins the error
// selection rule when a HIGHER-index task fails FIRST in wall-clock time:
// with ContinueOnError the reported error must still be the lowest-index
// failure, no matter the completion order.
func TestRunPolicyLowestIndexErrorBeatsEarlierCompletion(t *testing.T) {
	lowStarted := make(chan struct{})
	highFailed := make(chan struct{})
	var highDone atomic.Bool
	tasks := []Task[int]{
		{Name: "low-fail", Run: func(ctx context.Context) (int, error) {
			close(lowStarted)
			<-highFailed // guarantee the high-index failure completes first
			if !highDone.Load() {
				return 0, errors.New("ordering broken: high failure not recorded yet")
			}
			return 0, errors.New("low error")
		}},
		{Name: "ok", Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Name: "high-fail", Run: func(ctx context.Context) (int, error) {
			<-lowStarted
			highDone.Store(true)
			defer close(highFailed)
			return 0, errors.New("high error")
		}},
	}
	_, _, err := RunPolicy(context.Background(), 3, Policy{ContinueOnError: true}, tasks)
	if err == nil || !strings.Contains(err.Error(), "low error") {
		t.Fatalf("run error %v, want the lowest-index failure (low error)", err)
	}
}
