// Package sched provides the bounded worker-pool scheduler used to run
// independent per-chromosome jobs concurrently: the paper's production
// workload is 24 separate chromosome data sets (Section VI-A), and nothing
// in the pipeline couples one chromosome to another, so the host can
// process several at once while each engine run stays internally
// sequential.
//
// The scheduler is deliberately deterministic where it matters for the
// byte-identity guarantee (Section IV-G): tasks are dispatched in input
// order, results are returned indexed by input position regardless of
// completion order, and the error returned by Run is always the
// lowest-index failure, so a concurrent whole-genome run reports exactly
// what a serial run over the same inputs would report.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one unit of work: an independent job (typically one chromosome)
// with a name for reporting.
type Task[R any] struct {
	// Name identifies the task in results and stats.
	Name string
	// Run executes the task. It should honour ctx cancellation for early
	// exit, but the scheduler never interrupts a task that has started —
	// cancellation only prevents queued tasks from starting.
	Run func(ctx context.Context) (R, error)
}

// Result is the outcome of one task, in input order.
type Result[R any] struct {
	// Name echoes the task name.
	Name string
	// Value is the task's return value (zero when Err is set or the task
	// was skipped).
	Value R
	// Err is the task's error, or the cancellation cause for skipped
	// tasks.
	Err error
	// Wall is the task's wall-clock execution time (zero when skipped).
	Wall time.Duration
	// Worker is the index of the worker that ran the task (-1 when
	// skipped).
	Worker int
	// Attempts is the number of executions the task's Policy spent on it
	// (1 with the zero policy; 0 when skipped).
	Attempts int
	// Panicked marks a task whose final attempt panicked and was converted
	// to Err by Policy.RecoverPanics.
	Panicked bool
	// Skipped marks tasks that never started because an earlier task
	// failed (first-error cancellation) or the caller's context ended.
	Skipped bool
}

// Stats summarises a pool run.
type Stats struct {
	// Workers is the number of workers actually used.
	Workers int
	// Wall is the end-to-end wall-clock time of the pool.
	Wall time.Duration
	// TaskWall sums the per-task wall times — the serial-equivalent cost.
	// TaskWall/Wall approximates the achieved parallel speedup.
	TaskWall time.Duration
	// Longest is the wall time of the slowest task, the lower bound on
	// pool wall time at any worker count.
	Longest time.Duration
	// LongestName names the slowest task.
	LongestName string
	// Ran and SkippedTasks count tasks that executed / were skipped.
	Ran, SkippedTasks int
}

// Speedup is the serial-equivalent time divided by the pool wall time.
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return s.TaskWall.Seconds() / s.Wall.Seconds()
}

func (s Stats) String() string {
	return fmt.Sprintf("workers=%d wall=%v task-wall=%v speedup=%.2fx longest=%v(%s) ran=%d skipped=%d",
		s.Workers, s.Wall.Round(time.Millisecond), s.TaskWall.Round(time.Millisecond), s.Speedup(),
		s.Longest.Round(time.Millisecond), s.LongestName, s.Ran, s.SkippedTasks)
}

// Clamp normalises a worker count: n <= 0 selects GOMAXPROCS, and the
// count never exceeds the number of tasks.
func Clamp(n, tasks int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > tasks {
		n = tasks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// LocalTask is a Task whose Run also receives worker-local state of type
// L, created once per worker by RunLocal: a scratch arena, a connection, a
// reusable buffer — anything worth amortising across the tasks one worker
// processes.
type LocalTask[R, L any] struct {
	// Name identifies the task in results and stats.
	Name string
	// Run executes the task with the worker's local state. The same
	// cancellation contract as Task.Run applies.
	Run func(ctx context.Context, local L) (R, error)
}

// Run executes tasks on a pool of bounded size. workers <= 0 selects
// GOMAXPROCS. Tasks start in input order; results come back indexed by
// input position. The first failure (lowest task index among failures)
// cancels the pool: queued tasks are skipped, already-running tasks finish,
// and Run returns that error alongside the full result slice.
func Run[R any](ctx context.Context, workers int, tasks []Task[R]) ([]Result[R], Stats, error) {
	lt := make([]LocalTask[R, struct{}], len(tasks))
	for i, t := range tasks {
		run := t.Run
		lt[i] = LocalTask[R, struct{}]{Name: t.Name, Run: func(ctx context.Context, _ struct{}) (R, error) {
			return run(ctx)
		}}
	}
	return RunLocal(ctx, workers, func(int) struct{} { return struct{}{} }, lt)
}

// RunPolicy is Run with a fault-tolerance Policy applied to every task.
func RunPolicy[R any](ctx context.Context, workers int, pol Policy, tasks []Task[R]) ([]Result[R], Stats, error) {
	lt := make([]LocalTask[R, struct{}], len(tasks))
	for i, t := range tasks {
		run := t.Run
		lt[i] = LocalTask[R, struct{}]{Name: t.Name, Run: func(ctx context.Context, _ struct{}) (R, error) {
			return run(ctx)
		}}
	}
	return RunLocalPolicy(ctx, workers, pol, func(int) struct{} { return struct{}{} }, lt)
}

// RunLocal is Run with per-worker local state: newLocal runs once in each
// worker goroutine before it takes tasks, and every task that worker
// executes receives the same L value. Scheduling semantics are identical
// to Run.
func RunLocal[R, L any](ctx context.Context, workers int, newLocal func(worker int) L, tasks []LocalTask[R, L]) ([]Result[R], Stats, error) {
	return RunLocalPolicy(ctx, workers, Policy{}, newLocal, tasks)
}

// RunLocalPolicy is RunLocal with a fault-tolerance Policy: each task runs
// under the policy's deadline, panic containment and retry schedule, and
// ContinueOnError selects whether a failure cancels the remaining queue.
// The in-order dispatch, in-order results and lowest-index-error guarantees
// of RunLocal are preserved at every policy setting.
func RunLocalPolicy[R, L any](ctx context.Context, workers int, pol Policy, newLocal func(worker int) L, tasks []LocalTask[R, L]) ([]Result[R], Stats, error) {
	results := make([]Result[R], len(tasks))
	if len(tasks) == 0 {
		return results, Stats{}, ctx.Err()
	}
	stats := Stats{Workers: Clamp(workers, len(tasks))}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	next := make(chan int) // task indexes, dispatched in order
	go func() {
		defer close(next)
		for i := range tasks {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	started := make([]bool, len(tasks))
	for w := 0; w < stats.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := newLocal(worker)
			for i := range next {
				if ctx.Err() != nil {
					// Cancelled after dispatch: drain without running so
					// the task is reported as skipped.
					continue
				}
				mu.Lock()
				started[i] = true
				mu.Unlock()
				t0 := time.Now()
				v, err, attempts, panicked := execute(ctx, &pol, i, tasks[i], local)
				results[i] = Result[R]{
					Name:     tasks[i].Name,
					Value:    v,
					Err:      err,
					Wall:     time.Since(t0),
					Worker:   worker,
					Attempts: attempts,
					Panicked: panicked,
				}
				if err != nil && !pol.ContinueOnError {
					cancel() // first-error cancellation
				}
			}
		}(w)
	}
	wg.Wait()
	stats.Wall = time.Since(start)

	// Mark tasks the cancellation kept from starting.
	cause := context.Cause(ctx)
	for i := range tasks {
		if started[i] {
			continue
		}
		results[i] = Result[R]{Name: tasks[i].Name, Err: cause, Worker: -1, Skipped: true}
	}

	var firstErr error
	for i := range results {
		r := &results[i]
		if r.Skipped {
			stats.SkippedTasks++
			continue
		}
		stats.Ran++
		stats.TaskWall += r.Wall
		if r.Wall > stats.Longest {
			stats.Longest = r.Wall
			stats.LongestName = r.Name
		}
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	if firstErr == nil && cause != nil {
		firstErr = cause
	}
	return results, stats, firstErr
}
