package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPolicyRetrySucceedsOnAttemptN: a task that fails its first attempts
// and succeeds on attempt N completes successfully, with the attempt count
// reported.
func TestPolicyRetrySucceedsOnAttemptN(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		var calls atomic.Int32
		tasks := []Task[int]{{Name: "flaky", Run: func(ctx context.Context) (int, error) {
			if int(calls.Add(1)) < n {
				return 0, errors.New("transient")
			}
			return 42, nil
		}}}
		pol := Policy{Retries: 4}
		results, _, err := RunPolicy(context.Background(), 1, pol, tasks)
		if err != nil {
			t.Fatalf("n=%d: run failed: %v", n, err)
		}
		if results[0].Value != 42 || results[0].Attempts != n {
			t.Errorf("n=%d: got value %d after %d attempts, want 42 after %d",
				n, results[0].Value, results[0].Attempts, n)
		}
	}
}

// TestPolicyRetriesExhausted: a permanently failing task surfaces its error
// after exactly 1+Retries attempts.
func TestPolicyRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	boom := errors.New("boom")
	tasks := []Task[int]{{Name: "broken", Run: func(ctx context.Context) (int, error) {
		calls.Add(1)
		return 0, boom
	}}}
	_, _, err := RunPolicy(context.Background(), 1, Policy{Retries: 3}, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("attempts = %d, want 4", got)
	}
}

// TestPolicyBackoffSchedule: delays grow exponentially from Backoff, clamp
// at MaxBackoff, and jitter is deterministic for a given seed.
func TestPolicyBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	pol := Policy{
		Retries:    4,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	tasks := []Task[int]{{Name: "t", Run: func(ctx context.Context) (int, error) {
		return 0, errors.New("always")
	}}}
	if _, _, err := RunPolicy(context.Background(), 1, pol, tasks); err == nil {
		t.Fatal("want error")
	}
	want := []time.Duration{10, 20, 40, 40} // ms: doubling, then clamped
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want 4 delays", slept)
	}
	for i, d := range want {
		if slept[i] != d*time.Millisecond {
			t.Errorf("delay %d = %v, want %v", i+1, slept[i], d*time.Millisecond)
		}
	}

	// Jitter is a deterministic function of (seed, task, attempt) in
	// [0, Jitter) of the base delay.
	j := Policy{Backoff: time.Second, Jitter: 0.5, Seed: 7}
	d1, d2 := j.Delay(3, 1), j.Delay(3, 1)
	if d1 != d2 {
		t.Errorf("jittered delay not deterministic: %v vs %v", d1, d2)
	}
	if d1 < time.Second || d1 >= 1500*time.Millisecond {
		t.Errorf("jittered delay %v outside [1s, 1.5s)", d1)
	}
	if other := j.Delay(4, 1); other == d1 {
		t.Errorf("jitter identical across tasks: %v", other)
	}
}

// TestPolicyDeadlineFiresMidTask: a task that honours its context is cut
// short by the per-attempt deadline and the error says so.
func TestPolicyDeadlineFiresMidTask(t *testing.T) {
	tasks := []Task[int]{{Name: "wedged", Run: func(ctx context.Context) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(30 * time.Second):
			return 1, nil
		}
	}}}
	start := time.Now()
	_, _, err := RunPolicy(context.Background(), 1, Policy{Timeout: 20 * time.Millisecond}, tasks)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if !strings.Contains(err.Error(), "task deadline") {
		t.Errorf("error %q does not name the per-task deadline", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("deadline did not cut the task short (took %v)", wall)
	}
}

// TestPolicyDeadlineRetry: an attempt that times out is retried, and a
// faster second attempt succeeds.
func TestPolicyDeadlineRetry(t *testing.T) {
	var calls atomic.Int32
	tasks := []Task[int]{{Name: "slow-once", Run: func(ctx context.Context) (int, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // first attempt stalls until the deadline
			return 0, ctx.Err()
		}
		return 7, nil
	}}}
	results, _, err := RunPolicy(context.Background(), 1,
		Policy{Timeout: 20 * time.Millisecond, Retries: 1}, tasks)
	if err != nil || results[0].Value != 7 || results[0].Attempts != 2 {
		t.Fatalf("got value %d attempts %d err %v, want 7/2/nil",
			results[0].Value, results[0].Attempts, err)
	}
}

// TestPolicyPanicBecomesError: a panicking task is converted to a
// *PanicError with the stack captured, and sibling tasks are unaffected.
func TestPolicyPanicBecomesError(t *testing.T) {
	ran := make([]atomic.Bool, 3)
	tasks := make([]Task[int], 3)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Name: fmt.Sprintf("t%d", i), Run: func(ctx context.Context) (int, error) {
			ran[i].Store(true)
			if i == 1 {
				panic("kaboom")
			}
			return i, nil
		}}
	}
	pol := Policy{RecoverPanics: true, ContinueOnError: true}
	results, _, err := RunPolicy(context.Background(), 2, pol, tasks)

	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("run error %v is not a PanicError", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("panic value %v / stack %d bytes; want kaboom with stack", pe.Value, len(pe.Stack))
	}
	if !results[1].Panicked || results[1].Err == nil {
		t.Error("panicking task not reported as panicked")
	}
	for _, i := range []int{0, 2} {
		if !ran[i].Load() || results[i].Err != nil || results[i].Value != i {
			t.Errorf("sibling %d affected by panic: ran=%v err=%v", i, ran[i].Load(), results[i].Err)
		}
	}
	// Panics are not retried by default.
	if results[1].Attempts != 1 {
		t.Errorf("panicked task attempted %d times, want 1", results[1].Attempts)
	}
}

// TestPolicyContinueOnError: with ContinueOnError every task runs, nothing
// is skipped, and the returned error is still the lowest-index failure.
func TestPolicyContinueOnError(t *testing.T) {
	const n = 12
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Name: fmt.Sprintf("t%d", i), Run: func(ctx context.Context) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		}}
	}
	results, stats, err := RunPolicy(context.Background(), 4, Policy{ContinueOnError: true}, tasks)
	if err == nil || !strings.Contains(err.Error(), "fail-3") {
		t.Fatalf("run error %v, want the lowest-index failure fail-3", err)
	}
	if stats.SkippedTasks != 0 || stats.Ran != n {
		t.Fatalf("ran=%d skipped=%d, want all %d run", stats.Ran, stats.SkippedTasks, n)
	}
	for i, r := range results {
		if r.Skipped {
			t.Errorf("task %d skipped under ContinueOnError", i)
		}
	}
}

// TestPolicyZeroMatchesLegacy: the zero policy keeps first-error
// cancellation and single attempts.
func TestPolicyZeroMatchesLegacy(t *testing.T) {
	const n = 64
	block := make(chan struct{})
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Name: fmt.Sprintf("t%d", i), Run: func(ctx context.Context) (int, error) {
			if i == 0 {
				close(block)
				return 0, errors.New("first fails")
			}
			<-block
			return i, nil
		}}
	}
	_, stats, err := RunPolicy(context.Background(), 2, Policy{}, tasks)
	if err == nil {
		t.Fatal("want error")
	}
	if stats.SkippedTasks == 0 {
		t.Error("zero policy should cancel queued tasks on first error")
	}
}

// TestPolicyRetryIf: a custom classifier stops retries for permanent
// errors.
func TestPolicyRetryIf(t *testing.T) {
	var calls atomic.Int32
	perm := errors.New("permanent")
	tasks := []Task[int]{{Name: "t", Run: func(ctx context.Context) (int, error) {
		calls.Add(1)
		return 0, perm
	}}}
	pol := Policy{Retries: 5, RetryIf: func(err error) bool { return !errors.Is(err, perm) }}
	if _, _, err := RunPolicy(context.Background(), 1, pol, tasks); !errors.Is(err, perm) {
		t.Fatalf("want permanent, got %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("permanent error retried %d times", calls.Load()-1)
	}
}
