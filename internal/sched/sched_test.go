package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunOrderedResults verifies results land at their input index no
// matter which worker finishes first.
func TestRunOrderedResults(t *testing.T) {
	const n = 50
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Name: fmt.Sprintf("t%d", i),
			Run: func(context.Context) (int, error) {
				if i%7 == 0 {
					time.Sleep(time.Millisecond) // scramble completion order
				}
				return i * i, nil
			},
		}
	}
	res, stats, err := Run(context.Background(), 8, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 8 || stats.Ran != n || stats.SkippedTasks != 0 {
		t.Errorf("stats = %+v", stats)
	}
	for i, r := range res {
		if r.Value != i*i || r.Err != nil || r.Skipped {
			t.Fatalf("result %d = %+v", i, r)
		}
		if r.Name != fmt.Sprintf("t%d", i) {
			t.Fatalf("result %d name = %q", i, r.Name)
		}
	}
}

// TestRunBoundedWorkers checks concurrency never exceeds the requested
// worker count.
func TestRunBoundedWorkers(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	tasks := make([]Task[struct{}], 24)
	for i := range tasks {
		tasks[i] = Task[struct{}]{
			Name: "t",
			Run: func(context.Context) (struct{}, error) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return struct{}{}, nil
			},
		}
	}
	if _, _, err := Run(context.Background(), workers, tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

// TestRunFirstErrorCancels checks that a failure stops queued tasks and
// that the reported error is the lowest-index failure.
func TestRunFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var lateRan atomic.Int32
	// Deterministic schedule with 2 workers: task 0 occupies worker A
	// until cancellation, task 1 fails on worker B, so tasks 2..9 can only
	// ever be drained as skipped.
	t0started := make(chan struct{})
	tasks := make([]Task[int], 10)
	tasks[0] = Task[int]{Name: "t0", Run: func(ctx context.Context) (int, error) {
		close(t0started)
		<-ctx.Done() // release only once the pool is cancelled
		return 0, nil
	}}
	tasks[1] = Task[int]{Name: "t1", Run: func(context.Context) (int, error) {
		<-t0started // fail only after task 0 is definitely running
		return 0, boom
	}}
	for i := 2; i < len(tasks); i++ {
		tasks[i] = Task[int]{Name: fmt.Sprintf("t%d", i), Run: func(context.Context) (int, error) {
			lateRan.Add(1)
			return 0, nil
		}}
	}
	res, stats, err := Run(context.Background(), 2, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := err.Error(); got != "t1: boom" {
		t.Errorf("error not named by task: %q", got)
	}
	if n := lateRan.Load(); n != 0 {
		t.Errorf("%d queued tasks ran after the failure, want 0", n)
	}
	if stats.Ran != 2 || stats.SkippedTasks != 8 {
		t.Errorf("stats = %+v", stats)
	}
	for i := 2; i < 10; i++ {
		if !res[i].Skipped || !errors.Is(res[i].Err, context.Canceled) {
			t.Errorf("task %d not skipped with cancellation cause: %+v", i, res[i])
		}
	}
}

// TestRunLowestIndexError ensures the returned error is deterministic when
// several tasks fail: the lowest input index wins, not the first to finish.
func TestRunLowestIndexError(t *testing.T) {
	// All four tasks start before any fails (the gate guarantees it), and
	// task 0 fails chronologically last — the reported error must still be
	// task 0's, by index.
	var gate sync.WaitGroup
	gate.Add(4)
	tasks := make([]Task[int], 4)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Name: fmt.Sprintf("t%d", i),
			Run: func(context.Context) (int, error) {
				gate.Done()
				gate.Wait()
				if i == 0 {
					time.Sleep(5 * time.Millisecond) // fails last in time
				}
				return 0, fmt.Errorf("err%d", i)
			},
		}
	}
	_, _, err := Run(context.Background(), 4, tasks)
	if err == nil || err.Error() != "t0: err0" {
		t.Fatalf("err = %v, want t0: err0", err)
	}
}

// TestRunContextCancellation: a cancelled parent context skips everything
// not yet started.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []Task[int]{{Name: "t0", Run: func(context.Context) (int, error) { return 1, nil }}}
	res, _, err := Run(ctx, 1, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !res[0].Skipped {
		t.Errorf("task ran under a cancelled context: %+v", res[0])
	}
}

func TestRunEmptyAndClamp(t *testing.T) {
	res, stats, err := Run[int](context.Background(), 4, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v %v", res, err)
	}
	if stats.Workers != 0 || stats.Wall != 0 {
		t.Errorf("empty-run stats = %+v", stats)
	}
	if Clamp(0, 100) < 1 {
		t.Error("Clamp(0, _) must select at least one worker")
	}
	if Clamp(16, 3) != 3 {
		t.Error("Clamp must bound workers by task count")
	}
	if Clamp(2, 100) != 2 {
		t.Error("Clamp altered an in-range count")
	}
}

func TestStatsSpeedup(t *testing.T) {
	tasks := make([]Task[struct{}], 8)
	for i := range tasks {
		tasks[i] = Task[struct{}]{Name: "t", Run: func(context.Context) (struct{}, error) {
			time.Sleep(2 * time.Millisecond)
			return struct{}{}, nil
		}}
	}
	_, st, err := Run(context.Background(), 4, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.TaskWall < st.Longest || st.Longest <= 0 {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.Speedup() <= 0 {
		t.Errorf("speedup = %v", st.Speedup())
	}
	if st.String() == "" {
		t.Error("empty Stats.String")
	}
}

// TestRunLocalWorkerState verifies the per-worker local state contract:
// newLocal runs exactly once per worker, and every task a worker executes
// receives that worker's value.
func TestRunLocalWorkerState(t *testing.T) {
	type local struct {
		worker int
		uses   int
	}
	var mu sync.Mutex
	locals := make(map[*local]bool)
	newLocal := func(worker int) *local {
		l := &local{worker: worker}
		mu.Lock()
		locals[l] = true
		mu.Unlock()
		return l
	}
	const n = 12
	tasks := make([]LocalTask[int, *local], n)
	for i := range tasks {
		i := i
		tasks[i] = LocalTask[int, *local]{
			Name: fmt.Sprintf("t%d", i),
			Run: func(_ context.Context, l *local) (int, error) {
				l.uses++ // worker-confined: no lock needed
				return i, nil
			},
		}
	}
	results, stats, err := RunLocal(context.Background(), 3, newLocal, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != i {
			t.Errorf("result %d = %d, want %d", i, r.Value, i)
		}
	}
	if stats.Workers != 3 {
		t.Errorf("workers = %d, want 3", stats.Workers)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(locals) != 3 {
		t.Fatalf("newLocal ran %d times, want once per worker (3)", len(locals))
	}
	total := 0
	for l := range locals {
		total += l.uses
	}
	if total != n {
		t.Errorf("tasks seen by locals = %d, want %d", total, n)
	}
}
