package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// Policy is the pool's fault-tolerance contract: how a task failure is
// contained (panic→error conversion), bounded (per-attempt deadlines),
// retried (exponential backoff with deterministic jitter) and propagated
// (first-error cancellation vs. run-everything). The zero Policy reproduces
// the original scheduler semantics exactly: one attempt, no deadline,
// panics propagate, the first failure cancels queued tasks.
//
// Determinism: the scheduler's ordering guarantees are unchanged — tasks
// dispatch in input order, results land at their input index, and the
// error returned by the run is the lowest-index failure. Jitter is derived
// from (Seed, task index, attempt), not from a global RNG, so a rerun with
// the same policy waits the same delays.
type Policy struct {
	// Retries is the number of re-executions allowed after the first
	// attempt (0 = single attempt).
	Retries int
	// Backoff is the delay before the first retry; retry k waits
	// Backoff << (k-1), capped at MaxBackoff when set. Zero retries
	// immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
	// Jitter extends each delay by a deterministic fraction in
	// [0, Jitter) of itself, decorrelating retry storms across tasks.
	Jitter float64
	// Seed feeds the jitter hash.
	Seed uint64
	// Timeout is the per-attempt deadline, applied to the context each
	// attempt receives (0 = none). Deadlines are cooperative: a task that
	// ignores its context runs to completion, but the engines check their
	// context at every window boundary.
	Timeout time.Duration
	// RecoverPanics converts a panicking attempt into a *PanicError with
	// the stack captured, instead of crashing the process. Sibling tasks
	// are unaffected (subject to ContinueOnError).
	RecoverPanics bool
	// ContinueOnError keeps the pool running after a failure: every task
	// still executes, and the run error is the lowest-index failure. The
	// default (false) preserves first-error cancellation.
	ContinueOnError bool
	// RetryIf decides whether an error is worth retrying. Nil selects the
	// default: retry everything except recovered panics and parent-context
	// cancellation.
	RetryIf func(error) bool

	// sleep is a test hook; nil selects a real context-aware sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// PanicError is a task panic converted to an error by Policy.RecoverPanics,
// with the stack captured at the recovery point.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task panicked: %v", e.Value)
}

// Delay reports the backoff before retry k (1-based) of task idx,
// including the deterministic jitter — exposed so tests and operators can
// predict a policy's schedule.
func (p *Policy) Delay(idx, k int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < k && d < (1<<62); i++ {
		d <<= 1
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		d += time.Duration(float64(d) * p.Jitter * jitterFrac(p.Seed, idx, k))
	}
	return d
}

// jitterFrac hashes (seed, task, attempt) to [0, 1) with splitmix64.
func jitterFrac(seed uint64, idx, attempt int) float64 {
	x := seed ^ uint64(idx)<<32 ^ uint64(attempt)
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// shouldRetry applies RetryIf or the default rule.
func (p *Policy) shouldRetry(err error, panicked bool) bool {
	if p.RetryIf != nil {
		return p.RetryIf(err)
	}
	return !panicked && !errors.Is(err, context.Canceled)
}

// sleepCtx waits d or until ctx ends.
func (p *Policy) sleepCtx(ctx context.Context, d time.Duration) error {
	if p.sleep != nil {
		return p.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runAttempt executes one attempt under the policy's deadline and panic
// containment.
func runAttempt[R, L any](ctx context.Context, p *Policy, t LocalTask[R, L], local L) (v R, err error, panicked bool) {
	actx := ctx
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	if p.RecoverPanics {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r, Stack: debug.Stack()}
				panicked = true
			}
		}()
	}
	v, err = t.Run(actx, local)
	// Distinguish the per-attempt deadline from ambient cancellation so
	// reports say what actually happened.
	if err != nil && p.Timeout > 0 && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		err = fmt.Errorf("task deadline %v exceeded: %w", p.Timeout, err)
	}
	return v, err, panicked
}

// execute runs one task to completion under the policy: attempts, backoff,
// and retry classification.
func execute[R, L any](ctx context.Context, p *Policy, idx int, t LocalTask[R, L], local L) (v R, err error, attempts int, panicked bool) {
	for attempt := 0; ; attempt++ {
		attempts++
		v, err, panicked = runAttempt(ctx, p, t, local)
		if err == nil || attempt >= p.Retries || ctx.Err() != nil {
			return v, err, attempts, panicked
		}
		if !p.shouldRetry(err, panicked) {
			return v, err, attempts, panicked
		}
		if serr := p.sleepCtx(ctx, p.Delay(idx, attempt+1)); serr != nil {
			return v, err, attempts, panicked
		}
	}
}
