// Package checkpoint makes whole-genome runs resumable. A genome-mode run
// records every cleanly finished chromosome in a manifest next to the data
// (.gsnp.checkpoint.json), saved atomically after each completion; a
// restarted run with -resume skips a chromosome only when the manifest's
// configuration fingerprint matches the current flags AND the recorded
// output file still exists with the recorded digest, so stale or tampered
// outputs are recomputed rather than trusted.
//
// The package also defines the machine-readable failure report a degraded
// run writes (-failure-report): per-chromosome status, attempts, and the
// window quarantine records.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"gsnp/internal/pipeline"
)

// Version guards the manifest schema; a mismatch invalidates the file.
const Version = 1

// DefaultName is the manifest file name inside a genome directory.
const DefaultName = ".gsnp.checkpoint.json"

// Path returns the manifest location for a genome directory.
func Path(genomeDir string) string { return filepath.Join(genomeDir, DefaultName) }

// Entry records one cleanly finished chromosome.
type Entry struct {
	// Output is the result file name, relative to the manifest directory.
	Output string `json:"output"`
	// SHA256 is the hex digest of the output file at completion time.
	SHA256 string `json:"sha256"`
	// Sites is the number of reference sites processed.
	Sites int `json:"sites"`
}

// Manifest is the on-disk checkpoint state.
type Manifest struct {
	Version int `json:"version"`
	// Fingerprint captures every flag that shapes output bytes; resuming
	// under different flags must recompute everything.
	Fingerprint string `json:"fingerprint"`
	// Done maps task name (the chromosome's .fa base name) to its entry.
	Done map[string]Entry `json:"done"`
}

// Fingerprint encodes the output-shaping configuration: every option that
// can change result bytes must appear here, because the fingerprint keys
// both checkpoint resume validation and the gsnpd result cache — two
// byte-different configurations must never alias. Concurrency and
// prefetch flags are deliberately absent: the engines guarantee
// byte-identical output across those, so a checkpoint taken at -workers 8
// is valid for a -workers 1 resume (and a cached result served across
// them is exact). Quarantine is present because a quarantined run may
// omit windows a strict run would either emit or die on.
// genomejob.Options.Fingerprint is the canonical caller; the pinning test
// there enumerates Options fields against this parameter list.
//
// Extras extend the fingerprint for newer output-shaping options (the
// aligner parameters of FASTQ jobs, the VCF codec). Each extra is
// appended verbatim after a space. Callers must pass extras only when the
// option is active so that pre-existing configurations keep the exact key
// they had before the option existed — cached results and checkpoints
// written by older builds stay valid.
func Fingerprint(engine, format string, window int, compress, quarantine bool, extra ...string) string {
	fp := fmt.Sprintf("v%d engine=%s format=%s window=%d compress=%t quarantine=%t",
		Version, engine, format, window, compress, quarantine)
	for _, e := range extra {
		fp += " " + e
	}
	return fp
}

// Load reads a manifest. A missing file returns (nil, nil); a corrupt or
// wrong-version file is an error so the caller can refuse a bad -resume
// rather than silently recompute.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s: version %d, want %d", path, m.Version, Version)
	}
	return &m, nil
}

// FileDigest returns the hex SHA-256 of a file's contents.
func FileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Writer maintains the manifest across a run. It is safe for concurrent
// use from the scheduler's worker pool; every Complete persists the
// manifest atomically (temp file + rename), so a killed run loses at most
// the chromosome in flight.
type Writer struct {
	path string

	mu sync.Mutex
	m  Manifest
}

// NewWriter opens the manifest at path for a run with the given
// fingerprint. When resume is set and an existing manifest matches the
// fingerprint, its entries carry over; otherwise the writer starts empty
// (a fingerprint mismatch under resume is reported, not ignored).
func NewWriter(path, fingerprint string, resume bool) (*Writer, error) {
	w := &Writer{path: path, m: Manifest{
		Version: Version, Fingerprint: fingerprint, Done: make(map[string]Entry)}}
	if !resume {
		return w, nil
	}
	prev, err := Load(path)
	if err != nil {
		return nil, err
	}
	if prev == nil {
		return w, nil
	}
	if prev.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint: %s was written under %q, current run is %q (rerun without -resume or align the flags)",
			path, prev.Fingerprint, fingerprint)
	}
	for name, e := range prev.Done {
		w.m.Done[name] = e
	}
	return w, nil
}

// Done reports whether name may be skipped: it was checkpointed and its
// output file still has the recorded digest. A missing or modified output
// invalidates the entry (and removes it, so the rerun re-checkpoints).
func (w *Writer) Done(name string) (Entry, bool) {
	w.mu.Lock()
	e, ok := w.m.Done[name]
	w.mu.Unlock()
	if !ok {
		return Entry{}, false
	}
	digest, err := FileDigest(filepath.Join(filepath.Dir(w.path), e.Output))
	if err != nil || digest != e.SHA256 {
		w.mu.Lock()
		delete(w.m.Done, name)
		w.mu.Unlock()
		return Entry{}, false
	}
	return e, true
}

// Complete records a cleanly finished chromosome and persists the
// manifest. outPath must live in the manifest's directory.
func (w *Writer) Complete(name, outPath string, sites int) error {
	digest, err := FileDigest(outPath)
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.m.Done[name] = Entry{Output: filepath.Base(outPath), SHA256: digest, Sites: sites}
	//gsnplint:ignore lockhold w.mu exists to serialize manifest read-modify-write saves; the atomic rewrite must stay inside it, and Complete runs once per chromosome, not per record
	return w.saveLocked()
}

// saveLocked writes the manifest atomically: a temp file in the same
// directory, fsync'd, then renamed over the target.
func (w *Writer) saveLocked() error {
	data, err := json.MarshalIndent(&w.m, "", "  ")
	if err != nil {
		return err
	}
	return AtomicWrite(w.path, append(data, '\n'))
}

// AtomicWrite replaces path with data via temp file + fsync + rename, so
// a crash at any point leaves either the old content or the new, never a
// torn file. Shared by the manifest writer, the failure report, the
// gsnpd job journal's rotation, and the service's durable per-chromosome
// outputs.
func AtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Task status values of the failure report.
const (
	StatusOK      = "ok"      // clean completion
	StatusPartial = "partial" // completed with quarantined windows / skipped records
	StatusFailed  = "failed"  // aborted after exhausting retries
	StatusSkipped = "skipped" // not run (checkpointed, or the run was cancelled first)
)

// TaskReport is one chromosome's outcome in the failure report.
type TaskReport struct {
	Name     string `json:"name"`
	Status   string `json:"status"`
	Output   string `json:"output,omitempty"`
	Sites    int    `json:"sites,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	// CalSkipped counts records dropped during the calibration pass.
	CalSkipped int `json:"cal_skipped,omitempty"`
	// Quarantined lists the windows abandoned during the windowed pass.
	Quarantined []pipeline.Quarantine `json:"quarantined,omitempty"`
}

// FailureReport is the machine-readable outcome of a degraded genome run.
type FailureReport struct {
	Fingerprint string       `json:"fingerprint"`
	ExitCode    int          `json:"exit_code"`
	Tasks       []TaskReport `json:"tasks"`
}

// Save writes the report atomically.
func (r *FailureReport) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return AtomicWrite(path, append(data, '\n'))
}
