package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fp := Fingerprint("gsnp-cpu", "soap", 0, false, false)
	out := filepath.Join(dir, "chr1.result")
	writeFile(t, out, "rows\n")

	w, err := NewWriter(Path(dir), fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Done("chr1"); ok {
		t.Fatal("empty manifest claims chr1 done")
	}
	if err := w.Complete("chr1", out, 1234); err != nil {
		t.Fatal(err)
	}

	// A resumed writer under the same fingerprint sees the entry.
	w2, err := NewWriter(Path(dir), fp, true)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := w2.Done("chr1")
	if !ok || e.Sites != 1234 || e.Output != "chr1.result" {
		t.Fatalf("Done = %+v, %v; want chr1.result/1234", e, ok)
	}
}

func TestDigestMismatchInvalidatesEntry(t *testing.T) {
	dir := t.TempDir()
	fp := Fingerprint("gsnp-cpu", "soap", 0, false, false)
	out := filepath.Join(dir, "chr1.result")
	writeFile(t, out, "rows\n")
	w, err := NewWriter(Path(dir), fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Complete("chr1", out, 10); err != nil {
		t.Fatal(err)
	}

	writeFile(t, out, "tampered\n")
	w2, err := NewWriter(Path(dir), fp, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w2.Done("chr1"); ok {
		t.Fatal("tampered output accepted")
	}
	// Deleted output is invalid too.
	os.Remove(out)
	if _, ok := w2.Done("chr1"); ok {
		t.Fatal("missing output accepted")
	}
}

func TestFingerprintMismatchRefusesResume(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "chr1.result")
	writeFile(t, out, "rows\n")
	w, err := NewWriter(Path(dir), Fingerprint("gsnp-cpu", "soap", 0, false, false), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Complete("chr1", out, 10); err != nil {
		t.Fatal(err)
	}
	_, err = NewWriter(Path(dir), Fingerprint("soapsnp", "soap", 0, false, false), true)
	if err == nil || !strings.Contains(err.Error(), "written under") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
	// Without -resume the stale manifest is simply replaced.
	if _, err := NewWriter(Path(dir), Fingerprint("soapsnp", "soap", 0, false, false), false); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	m, err := Load(Path(dir))
	if m != nil || err != nil {
		t.Fatalf("missing manifest: %v, %v; want nil, nil", m, err)
	}
	writeFile(t, Path(dir), "{not json")
	if _, err := Load(Path(dir)); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	writeFile(t, Path(dir), `{"version": 99, "done": {}}`)
	if _, err := Load(Path(dir)); err == nil {
		t.Fatal("wrong-version manifest accepted")
	}
}

func TestFailureReportSave(t *testing.T) {
	dir := t.TempDir()
	rep := &FailureReport{
		Fingerprint: Fingerprint("gsnp-cpu", "soap", 0, false, false),
		ExitCode:    2,
		Tasks: []TaskReport{
			{Name: "chr1", Status: StatusOK, Output: "chr1.result", Sites: 100},
			{Name: "chr2", Status: StatusFailed, Error: "boom", Attempts: 3},
		},
	}
	path := filepath.Join(dir, "report.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"exit_code": 2`, `"status": "failed"`, `"boom"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("report missing %q:\n%s", want, data)
		}
	}
}
