package gsnp

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/gpu"
	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
	"gsnp/internal/snpio"
	"gsnp/internal/sortnet"
)

// Engine executes the GSNP pipeline. Create one with New and invoke Run;
// an Engine may be reused for several runs with the same configuration.
type Engine struct {
	cfg    Config
	tables *bayes.Tables

	// Device-resident tables (GPU mode), uploaded by load_table.
	gNewP *gpu.Buffer[float64]
	gP    *gpu.Buffer[float64]
	cAdj  *gpu.ConstBuffer[uint8]

	// novelPriors caches the log genotype priors of sites absent from the
	// prior file, one vector per reference base.
	novelPriors [dna.NBases][dna.NGenotypes]float64

	// arena holds the recycled per-window working set plus the per-worker
	// dep_count scratch. Run takes it from Config.Arena or the process
	// pool; direct kernel calls (tests) lazily create a private one.
	arena *Arena

	// pool runs likelihood/posterior shards when ComputeWorkers > 1
	// (CPU mode); nil means inline single-threaded execution.
	pool *computePool

	// Window-persistent device state (GPU mode): the tagged dep_count
	// buffer and its window epoch.
	gDep     *gpu.Buffer[uint32]
	winEpoch uint32

	// Output sinks (exactly one non-nil during Run). textOut is the
	// row-codec sink — the 17-column result table by default, the VCF
	// writer under Config.VCFOutput.
	textOut  snpio.RowWriter
	blockOut *snpio.BlockWriter

	rep *Report
}

// New creates an engine. It returns an error for inconsistent
// configurations (ModeGPU without a device, oversized read length).
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode == ModeGPU && cfg.Device == nil {
		return nil, fmt.Errorf("gsnp: ModeGPU requires a Device")
	}
	if cfg.ReadLen > bayes.MaxReadLen {
		return nil, fmt.Errorf("gsnp: read length %d exceeds the model maximum %d", cfg.ReadLen, bayes.MaxReadLen)
	}
	if cfg.VCFOutput && cfg.CompressOutput {
		return nil, fmt.Errorf("gsnp: VCFOutput and CompressOutput are mutually exclusive")
	}
	return &Engine{cfg: cfg}, nil
}

// Tables exposes the calibrated tables after a run.
func (e *Engine) Tables() *bayes.Tables { return e.tables }

// minShardSites is the smallest per-shard site count worth handing to a
// pool helper. Dispatching one shard (channel send, WaitGroup traffic,
// helper wakeup, join) costs on the order of ten microseconds of host
// time, while the likelihood + posterior passes cost well under a
// microsecond per site, so a shard needs a few thousand sites before the
// handoff is noise. 2048 keeps the dispatch overhead under ~1% of shard
// compute; see DESIGN.md "Adaptive compute sharding" for the measurement.
const minShardSites = 2048

// effectiveComputeWorkers adapts the requested compute-worker count to one
// window: capped at the host CPU count (extra workers on a CPU-bound pass
// add handoffs but no parallelism — the source of the cw=4 regression on
// small hosts) and at one shard per minShardSites sites (tiny windows
// serialize rather than paying dispatch latency per sliver).
func effectiveComputeWorkers(k, n int) int {
	if mp := runtime.GOMAXPROCS(0); k > mp {
		k = mp
	}
	if floor := n / minShardSites; k > floor {
		k = floor
	}
	if k < 1 {
		k = 1
	}
	return k
}

// simSpan measures the simulated device time consumed by f.
func (e *Engine) simSpan(f func()) time.Duration {
	start := e.cfg.Device.SimTime()
	f()
	return time.Duration((e.cfg.Device.SimTime() - start) * float64(time.Second))
}

// Run executes the pipeline over src, writing results to w (plain text, or
// the compressed container when Config.CompressOutput is set).
func (e *Engine) Run(src pipeline.Source, w io.Writer) (*Report, error) {
	return e.RunContext(context.Background(), src, w)
}

// RunContext is Run with cooperative cancellation: the engine checks ctx
// at every window boundary and every ~1K input records, so a per-task
// deadline (sched.Policy.Timeout) cuts a wedged chromosome short instead
// of letting it run forever.
func (e *Engine) RunContext(ctx context.Context, src pipeline.Source, w io.Writer) (*Report, error) {
	cfg := e.cfg
	rep := &Report{Sites: len(cfg.Ref), NonZeroHist: make([]int64, sparsityHistSize)}
	e.rep = rep

	// Component 7 storage: the window working set is recycled across
	// windows, runs and (via Config.Arena or the process pool) engines.
	if cfg.Arena != nil {
		e.arena = cfg.Arena
	} else {
		e.arena = arenaPool.Get().(*Arena)
		defer func() {
			arenaPool.Put(e.arena)
			e.arena = nil
		}()
	}
	if cfg.Mode == ModeCPU && cfg.ComputeWorkers > 1 {
		e.pool = newComputePool(cfg.ComputeWorkers)
		defer func() {
			e.pool.stop()
			e.pool = nil
		}()
	}

	cw := &countingWriter{w: w}

	// Component 1: cal_p_matrix + load_table — one pass over the input to
	// calibrate the score matrix, then build the log table, the adjust
	// table and the new score table on the CPU (Section IV-G) and load
	// them into device memory.
	t0 := time.Now()
	var tempPath string
	var sink func(*reads.AlignedRead) error
	var tw *snpio.TempWriter
	if cfg.UseTempInput {
		f, err := os.CreateTemp(cfg.TempDir, "gsnp-temp-*.bin")
		if err != nil {
			return nil, fmt.Errorf("gsnp: cal_p_matrix: %w", err)
		}
		tempPath = f.Name()
		defer os.Remove(tempPath)
		defer f.Close()
		tw = snpio.NewTempWriter(f, cfg.Chr)
		sink = tw.Write
	}
	// Quarantine mode tolerates malformed records in this pass: the scan
	// must see the whole input, so a corrupt line is skipped and counted
	// rather than aborting the run. Window-level containment happens in
	// pass two, where the failure has a site range to attach to.
	calSrc := pipeline.SourceWithContext(ctx, src)
	if cfg.Quarantine {
		inner := calSrc
		calSrc = pipeline.FuncSource(func() (pipeline.ReadIter, error) {
			it, err := inner.Open()
			if err != nil {
				return nil, err
			}
			return pipeline.NewTolerantIter(it, func(pipeline.RecordError) { rep.CalSkipped++ }), nil
		})
	}
	cal, meanDepth, err := pipeline.CalibrationPass(calSrc, cfg.Ref, sink)
	if err != nil {
		return nil, fmt.Errorf("gsnp: cal_p_matrix: %w", err)
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			return nil, fmt.Errorf("gsnp: cal_p_matrix: temp input: %w", err)
		}
		// The windowed pass reads the compressed temporary file instead
		// of the original input (Section V-A).
		src = pipeline.FuncSource(func() (pipeline.ReadIter, error) {
			f, err := os.Open(tempPath)
			if err != nil {
				return nil, err
			}
			return &tempIter{f: f, tr: snpio.NewTempReader(f)}, nil
		})
	}
	rep.MeanDepth = meanDepth
	rep.Observations = int64(cal.Observations())
	e.tables = bayes.BuildTables(cal.Build())
	for b := dna.Base(0); b < dna.NBases; b++ {
		e.novelPriors[b] = cfg.Priors.LogPriors(b, nil)
	}
	if cfg.Mode == ModeGPU {
		if err := e.loadTables(); err != nil {
			return nil, err
		}
	}
	rep.Times.CalP = time.Since(t0)

	// Output sink.
	switch {
	case cfg.CompressOutput:
		if cfg.Mode == ModeGPU {
			e.blockOut = snpio.NewBlockWriterGPU(cw, cfg.Device)
		} else {
			e.blockOut = snpio.NewBlockWriter(cw)
		}
	case cfg.VCFOutput:
		e.textOut = snpio.NewVCFWriter(cw)
	default:
		e.textOut = snpio.NewResultWriter(cw)
	}

	// Pass two: windowed per-site computation.
	it, err := pipeline.SourceWithContext(ctx, src).Open()
	if err != nil {
		return nil, fmt.Errorf("gsnp: read_site: %w", err)
	}
	win := pipeline.NewWindower(it)
	if cfg.Prefetch {
		// read_site for window i+1 overlaps components 3-7 of window i;
		// windows arrive strictly in order, so output bytes are identical
		// to the serial path. Quarantine mode uses the resilient variant,
		// whose producer keeps fetching past a record-level failure.
		var pf *pipeline.WindowPrefetcher
		if cfg.Quarantine {
			pf = pipeline.NewResilientWindowPrefetcher(win, len(cfg.Ref), cfg.Window, 1)
		} else {
			pf = pipeline.NewWindowPrefetcher(win, len(cfg.Ref), cfg.Window, 1)
		}
		defer pf.Stop()
		for {
			pw, ok := pf.Next()
			if !ok {
				break
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			werr := pw.Err
			if werr == nil {
				werr = e.windowAttempt(ctx, pw.Reads, pw.Start, pw.End)
			}
			if werr != nil {
				if ferr := e.quarantineOrFail(pw.Start, pw.End, werr); ferr != nil {
					return nil, ferr
				}
			}
		}
		rep.Prefetch = pf.Stats()
		rep.Times.Read += rep.Prefetch.Wait
	} else {
		for start := 0; start < len(cfg.Ref); start += cfg.Window {
			end := start + cfg.Window
			if end > len(cfg.Ref) {
				end = len(cfg.Ref)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Component 2: read_site, into the arena's recycled read
			// buffer (the prefetch path allocates instead: it runs ahead
			// of the consumer, so its windows can't share one buffer).
			t0 = time.Now()
			rs, werr := win.AppendReads(e.arena.readBuf[:0], start, end)
			if rs != nil {
				e.arena.readBuf = rs[:0]
			}
			rep.Times.Read += time.Since(t0)
			if werr == nil {
				werr = e.windowAttempt(ctx, rs, start, end)
			}
			if werr != nil {
				if ferr := e.quarantineOrFail(start, end, werr); ferr != nil {
					return nil, ferr
				}
			}
		}
	}

	t0 = time.Now()
	if e.textOut != nil {
		if err := e.textOut.Flush(); err != nil {
			return nil, fmt.Errorf("gsnp: output: %w", err)
		}
	} else {
		if err := e.blockOut.Flush(); err != nil {
			return nil, fmt.Errorf("gsnp: output: %w", err)
		}
	}
	rep.Times.Output += time.Since(t0)
	rep.OutputBytes = cw.n

	if cfg.Mode == ModeGPU {
		if rep.PeakDeviceBytes < cfg.Device.AllocatedBytes() {
			rep.PeakDeviceBytes = cfg.Device.AllocatedBytes()
		}
		e.unloadTables()
	}
	return rep, nil
}

// loadTables uploads the precomputed tables (load_table in Figure 2). The
// small adjust table lives in constant memory; new_p_matrix (tens of MB)
// and p_matrix go to global memory.
func (e *Engine) loadTables() error {
	d := e.cfg.Device
	e.gNewP = gpu.Alloc[float64](d, len(e.tables.NewP))
	e.gNewP.CopyIn(e.tables.NewP)
	e.gP = gpu.Alloc[float64](d, len(e.tables.P))
	e.gP.CopyIn(e.tables.P)
	var err error
	e.cAdj, err = gpu.NewConst(d, e.tables.Adjust[:])
	if err != nil {
		return fmt.Errorf("gsnp: load_table: %w", err)
	}
	return nil
}

// unloadTables releases device table memory.
func (e *Engine) unloadTables() {
	if e.gNewP != nil {
		e.gNewP.Free()
		e.gP.Free()
		e.cAdj.Free()
		e.gNewP, e.gP, e.cAdj = nil, nil, nil
	}
	if e.gDep != nil {
		e.gDep.Free()
		e.gDep = nil
	}
}

// window holds the per-window working set. Every slice is arena-owned and
// grow-only: reset trims lengths, the components re-slice with grow, and
// capacity persists across windows (component 7, recycle).
type window struct {
	start, end int
	n          int

	// Flattened observations (read_site output). The packed base_word
	// carries quality and the uniq flag (bit 18), so these two arrays are
	// the complete counting input.
	obsSite []uint32
	obsWord []uint32

	// Counting output: per-site base_word segments and summaries, plus
	// the size/cursor scratch of the scatter pass.
	words  sortnet.Batches
	counts []pipeline.SiteCounts
	sizes  []int32
	cursor []int32

	// Likelihood output: ten genotype log-likelihoods per site.
	typeLikely []float64

	// Posterior output. priors backs the GPU posterior kernel input; the
	// CPU path fuses the priors into the posterior pass instead.
	priors     []float64
	bestRank   []uint8
	secondRank []uint8
	quality    []uint8

	// Output-assembly buffers.
	rows        []snpio.Row
	alleleQuals [dna.NBases][]float64

	// GPU host staging (readback targets of the device kernels).
	hostBounds []uint32
	hostStats  []uint32
	hostBest   []uint32
	hostSecond []uint32
	hostQual   []uint32
}

// runWindow executes components 3-7 for one window whose reads have
// already been fetched (serially or by the prefetcher).
func (e *Engine) runWindow(rs []reads.AlignedRead, start, end int) error {
	cfg := e.cfg
	rep := e.rep
	w := &e.ar().w
	w.reset(start, end)

	// Counting, host leg: flatten the observations into parallel arrays
	// (the per-aligned-base extraction the counting component performs).
	t0 := time.Now()
	for i := range rs {
		r := &rs[i]
		lo, hi := r.Pos, r.Pos+len(r.Bases)
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		for pos := lo; pos < hi; pos++ {
			o, ok := pipeline.ObsOf(r, pos)
			if !ok {
				continue
			}
			w.obsSite = append(w.obsSite, uint32(pos-start))
			w.obsWord = append(w.obsWord, PackWord(o))
		}
	}
	rep.Times.Count += time.Since(t0)

	// Components 3-7.
	var err error
	if cfg.Mode == ModeGPU {
		err = e.runWindowGPU(w)
	} else {
		err = e.runWindowCPU(w)
	}
	if err != nil {
		return err
	}

	// Sparsity histogram (Figure 4(b)): base_word length per site.
	for site := 0; site < w.n; site++ {
		h := w.words.SizeOf(site)
		if h >= sparsityHistSize {
			h = sparsityHistSize - 1
		}
		rep.NonZeroHist[h]++
	}
	return nil
}

// buildPriors fills the window's per-site log prior vectors (GPU posterior
// kernel input; the CPU path computes priors inside posteriorRange and
// never materialises this array).
func (e *Engine) buildPriors(w *window) []float64 {
	cfg := e.cfg
	w.priors = grow(w.priors, w.n*dna.NGenotypes)
	pri := w.priors
	for site := 0; site < w.n; site++ {
		ref := cfg.Ref[w.start+site]
		if known := cfg.Known[w.start+site]; known != nil {
			lp := cfg.Priors.LogPriors(ref, known)
			copy(pri[site*dna.NGenotypes:], lp[:])
		} else {
			copy(pri[site*dna.NGenotypes:], e.novelPriors[ref][:])
		}
	}
	return pri
}

// output runs component 6 on the host path: assemble rows and write them.
func (e *Engine) output(w *window) error {
	return e.writeRows(e.buildRows(w))
}

// buildRows assembles the window's result rows (host work): rank-sum
// quality lists are rebuilt from the sorted base_word segments, whose
// canonical order matches the dense engine's iteration order.
func (e *Engine) buildRows(w *window) []snpio.Row {
	cfg := e.cfg
	rep := e.rep

	w.rows = grow(w.rows, w.n)
	rows := w.rows
	for site := 0; site < w.n; site++ {
		call := bayes.Call{
			Genotype: dna.GenotypeByRank(int(w.bestRank[site])),
			Second:   dna.GenotypeByRank(int(w.secondRank[site])),
			Quality:  int(w.quality[site]),
		}
		var aq *[dna.NBases][]float64
		if !call.Genotype.IsHomozygous() {
			for b := range w.alleleQuals {
				w.alleleQuals[b] = w.alleleQuals[b][:0]
			}
			for _, word := range w.words.Array(site) {
				o := UnpackWord(word)
				w.alleleQuals[o.Base] = append(w.alleleQuals[o.Base], float64(o.Qual))
			}
			aq = &w.alleleQuals
		}
		rows[site] = pipeline.BuildRow(&pipeline.RowInputs{
			Chr:         cfg.Chr,
			Pos:         w.start + site,
			Ref:         cfg.Ref[w.start+site],
			Call:        call,
			Counts:      &w.counts[site],
			AlleleQuals: aq,
			MeanDepth:   rep.MeanDepth,
			Known:       cfg.Known[w.start+site],
		})
		if rows[site].IsSNP() {
			rep.SNPs++
		}
	}
	return rows
}

// writeRows pushes assembled rows to the configured sink; with compressed
// output on the GPU engine this is where the device compression kernels
// run.
func (e *Engine) writeRows(rows []snpio.Row) error {
	if e.textOut != nil {
		for i := range rows {
			if err := e.textOut.Write(&rows[i]); err != nil {
				return fmt.Errorf("gsnp: output: %w", err)
			}
		}
		return nil
	}
	if err := e.blockOut.WriteBlock(rows); err != nil {
		return fmt.Errorf("gsnp: output: %w", err)
	}
	return nil
}

// tempIter streams the compressed temporary input file, closing it when
// the stream ends — at EOF or on any read error, so an aborted run does
// not leak the descriptor.
type tempIter struct {
	f  *os.File
	tr *snpio.TempReader
}

func (it *tempIter) Next() (reads.AlignedRead, error) {
	r, err := it.tr.Next()
	if err != nil && it.f != nil {
		cerr := it.f.Close()
		it.f = nil
		if err == io.EOF && cerr != nil {
			err = cerr
		}
	}
	return r, err
}

// countingWriter tracks bytes written to the sink.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
