package gsnp

import (
	"sync"

	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
)

// Arena is the reusable per-window working set — the storage side of the
// paper's recycle component (Figure 2, component 7). Every slice a window
// needs (observation arrays, base_word Batches, counts, likelihoods,
// rank/quality arrays, result rows, GPU host staging) lives here and is
// grow-only: a window resets lengths, never releases capacity, so
// steady-state windows allocate nothing.
//
// An Arena serves one Engine.Run at a time but may be handed from run to
// run — including across engines and modes — which is how the concurrent
// chromosome scheduler (internal/sched) amortises window storage across a
// whole genome: one Arena per pool worker, every chromosome it processes
// reuses the same buffers.
type Arena struct {
	w window

	// workers holds the per-worker likelihood scratch: the epoch-tagged
	// dep_count array that is the only cross-site state of Algorithm 4.
	// Giving each compute worker its own copy is what makes the
	// likelihood/posterior site sharding race-free without changing a
	// single arithmetic operation.
	workers []depWorker

	// readBuf backs the serial read_site path's per-window read slice.
	readBuf []reads.AlignedRead
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{} }

// arenaPool recycles arenas across Engine.Run calls that were not handed
// an explicit Config.Arena.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// depWorker is one compute worker's dep_count scratch. Entries carry an
// epoch tag in the high half-word (see likelihoodRange); the tag makes
// stale entries self-invalidating, so the array is never swept except on
// resize or tag wrap.
type depWorker struct {
	dep   []uint32
	epoch uint32
}

// ensureWorkers sizes the per-worker scratch for k workers at readLen.
func (a *Arena) ensureWorkers(k, readLen int) {
	if len(a.workers) < k {
		a.workers = append(a.workers, make([]depWorker, k-len(a.workers))...)
	}
	for i := 0; i < k; i++ {
		if len(a.workers[i].dep) < 2*readLen {
			a.workers[i].dep = make([]uint32, 2*readLen)
			a.workers[i].epoch = 0
		}
	}
}

// grow returns s with length n, reusing capacity when possible. Contents
// are unspecified: callers either overwrite every element or clear()
// explicitly.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reset prepares the arena's window for [start, end).
func (w *window) reset(start, end int) {
	w.start, w.end, w.n = start, end, end-start
	w.obsSite = w.obsSite[:0]
	w.obsWord = w.obsWord[:0]
}

// computeJob is one shard of a site-parallel pass. Jobs are plain values
// sent over a channel to the persistent worker pool, so dispatching a
// window costs no allocations (no closures, no per-window goroutines).
type computeJob struct {
	eng    *Engine
	w      *window
	kind   uint8
	lo, hi int
	worker int
	// fn, when non-nil, replaces the kind dispatch — a test seam for
	// exercising the pool's panic containment.
	fn func()
}

const (
	jobLikelihood uint8 = iota
	jobPosterior
)

func (j computeJob) run() {
	if j.fn != nil {
		j.fn()
		return
	}
	switch j.kind {
	case jobLikelihood:
		j.eng.likelihoodRange(j.w, j.lo, j.hi, j.worker)
	case jobPosterior:
		j.eng.posteriorRange(j.w, j.lo, j.hi)
	}
}

// computePool is the engine-owned set of persistent goroutines that
// execute likelihood/posterior shards. The pool lives for one Run: its
// workers block on the job channel between windows.
//
// A panic inside a pool worker would normally crash the whole process —
// nothing on a fresh goroutine's stack recovers — defeating window-level
// quarantine. Workers therefore trap the first panic (value + stack at
// the point of failure) and runSharded re-raises it on the dispatching
// goroutine once the window's shards drain, where the engine's window
// containment can convert it to a quarantine record.
type computePool struct {
	jobs chan computeJob
	wg   sync.WaitGroup

	mu       sync.Mutex
	panicked *pipeline.PanicError
}

// newComputePool starts size-1 workers: the dispatching goroutine always
// runs shard 0 inline, so k-way sharding needs only k-1 helpers.
func newComputePool(size int) *computePool {
	p := &computePool{jobs: make(chan computeJob, size)}
	for i := 1; i < size; i++ {
		go func() {
			for j := range p.jobs {
				p.runOne(j)
			}
		}()
	}
	return p
}

// runOne executes one shard, trapping a panic instead of unwinding the
// worker goroutine. Only the first panic of a window is kept; wg.Done
// always runs so the dispatcher never deadlocks on a dead shard.
func (p *computePool) runOne(j computeJob) {
	defer func() {
		if pe := pipeline.Recovered(recover()); pe != nil {
			p.mu.Lock()
			if p.panicked == nil {
				p.panicked = pe
			}
			p.mu.Unlock()
		}
		p.wg.Done()
	}()
	j.run()
}

// takePanic returns and clears the first trapped worker panic.
func (p *computePool) takePanic() *pipeline.PanicError {
	p.mu.Lock()
	defer p.mu.Unlock()
	pe := p.panicked
	p.panicked = nil
	return pe
}

func (p *computePool) stop() { close(p.jobs) }

// runSharded splits sites [0, w.n) into contiguous ranges and runs kind
// over them in parallel. Each shard writes only its own disjoint index
// range of the output arrays and likelihood shards use per-worker
// dep_count scratch, so results are byte-identical to the serial order at
// any worker count. The effective width adapts to the window: requesting
// more workers than the host has CPUs, or more shards than the window has
// sites to amortise the dispatch cost, silently serializes (sharding never
// changes output bytes, only wall time).
func (e *Engine) runSharded(w *window, kind uint8) {
	k := e.cfg.ComputeWorkers
	switch {
	case e.pool == nil || k < 1:
		k = 1
	case e.cfg.forceShardWorkers > 0:
		k = e.cfg.forceShardWorkers
	default:
		k = effectiveComputeWorkers(k, w.n)
	}
	if k > w.n {
		k = w.n
	}
	if kind == jobLikelihood {
		e.ar().ensureWorkers(max(k, 1), e.cfg.ReadLen)
	}
	if k <= 1 {
		computeJob{eng: e, w: w, kind: kind, lo: 0, hi: w.n}.run()
		return
	}
	chunk := (w.n + k - 1) / k
	for wk := 1; wk < k; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > w.n {
			hi = w.n
		}
		e.pool.wg.Add(1)
		e.pool.jobs <- computeJob{eng: e, w: w, kind: kind, lo: lo, hi: hi, worker: wk}
	}
	func() {
		// Even if the inline shard panics, wait for the helper shards
		// before unwinding: the next window recycles this window's arena
		// buffers, and a still-running shard writing into them would race.
		defer e.pool.wg.Wait()
		computeJob{eng: e, w: w, kind: kind, lo: 0, hi: chunk}.run()
	}()
	if pe := e.pool.takePanic(); pe != nil {
		panic(pe)
	}
}

// ar returns the engine's arena, creating a private one for direct kernel
// calls that bypass Run (tests, benchmarks).
func (e *Engine) ar() *Arena {
	if e.arena == nil {
		e.arena = NewArena()
	}
	return e.arena
}
