package gsnp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
)

// testRecordError is a synthetic record-scoped parse failure.
type testRecordError struct{ line int }

func (e *testRecordError) Error() string {
	return fmt.Sprintf("test: corrupt record %d", e.line)
}
func (e *testRecordError) Record() (int, int64) { return e.line, -1 }

// corruptSource makes the at-th record (1-based) of every pass come back
// as a record error, the record itself dropped — the shape of a corrupt
// line in an alignment file.
func corruptSource(src pipeline.Source, at int) pipeline.Source {
	return pipeline.FuncSource(func() (pipeline.ReadIter, error) {
		it, err := src.Open()
		if err != nil {
			return nil, err
		}
		return &corruptIter{it: it, at: at}, nil
	})
}

type corruptIter struct {
	it    pipeline.ReadIter
	n, at int
}

func (c *corruptIter) Next() (reads.AlignedRead, error) {
	r, err := c.it.Next()
	if err != nil {
		return r, err
	}
	if c.n++; c.n == c.at {
		return reads.AlignedRead{}, &testRecordError{line: c.n}
	}
	return r, nil
}

// withoutWindow drops the result rows of sites [start, end) — what a run
// that quarantined exactly that window should emit.
func withoutWindow(t *testing.T, out []byte, start, end int) []byte {
	t.Helper()
	var keep bytes.Buffer
	for _, line := range strings.SplitAfter(string(out), "\n") {
		if line == "" {
			continue
		}
		f := strings.SplitN(line, "\t", 3)
		if len(f) < 2 {
			t.Fatalf("unparseable result line %q", line)
		}
		pos, err := strconv.Atoi(f[1])
		if err != nil {
			t.Fatalf("bad pos in %q: %v", line, err)
		}
		if p := pos - 1; p >= start && p < end {
			continue
		}
		keep.WriteString(line)
	}
	return keep.Bytes()
}

// TestQuarantineWindowPanic checks panic containment end to end: a window
// whose computation panics is quarantined, the run completes, and every
// other window's bytes are untouched.
func TestQuarantineWindowPanic(t *testing.T) {
	ds := testDataset(t, 3000, 8, 21)
	const window = 1000
	_, clean := runGSNP(t, ds, Config{Mode: ModeCPU, Window: window})

	for _, workers := range []int{0, 4} {
		cfg := Config{
			Mode: ModeCPU, Window: window, ComputeWorkers: workers,
			Quarantine: true,
			WindowHook: func(ctx context.Context, win, start, end int) error {
				if win == 1 {
					panic("injected window panic")
				}
				return nil
			},
		}
		rep, out := runGSNP(t, ds, cfg)
		if len(rep.Quarantined) != 1 {
			t.Fatalf("workers=%d: %d quarantined windows, want 1: %v", workers, len(rep.Quarantined), rep.Quarantined)
		}
		q := rep.Quarantined[0]
		if q.Window != 1 || q.Start != window || q.End != 2*window || !q.Panicked {
			t.Errorf("workers=%d: quarantine = %+v, want window 1 [1000,2000) panicked", workers, q)
		}
		if !strings.Contains(q.Cause, "injected window panic") {
			t.Errorf("workers=%d: cause %q misses the panic value", workers, q.Cause)
		}
		if !rep.Partial() {
			t.Errorf("workers=%d: Partial() = false for a degraded run", workers)
		}
		if want := withoutWindow(t, clean, window, 2*window); !bytes.Equal(out, want) {
			t.Errorf("workers=%d: surviving windows are not byte-identical to the clean run", workers)
		}
	}
}

// TestQuarantineWithoutFlagPanics confirms containment is opt-in: without
// Config.Quarantine an injected window panic propagates.
func TestQuarantineWithoutFlagPanics(t *testing.T) {
	ds := testDataset(t, 2000, 6, 3)
	eng, err := New(Config{
		Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Mode: ModeCPU, Window: 1000,
		WindowHook: func(ctx context.Context, win, start, end int) error {
			if win == 1 {
				panic("unrecovered")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate without Quarantine")
		}
	}()
	eng.Run(pipeline.MemSource(ds.Reads), &bytes.Buffer{})
}

// TestQuarantineCorruptRecord checks record-level containment: the
// calibration pass skips the bad record, the windowed pass quarantines the
// window it lands in, the run completes. Serial and prefetch paths must
// agree byte for byte.
func TestQuarantineCorruptRecord(t *testing.T) {
	ds := testDataset(t, 3000, 8, 21)
	const window, at = 1000, 40
	src := corruptSource(pipeline.MemSource(ds.Reads), at)

	// Without quarantine the same input aborts the run.
	strict, err := New(Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Mode: ModeCPU, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Run(src, &bytes.Buffer{}); err == nil {
		t.Fatal("corrupt record accepted without Quarantine")
	}

	var outs [][]byte
	for _, prefetch := range []bool{false, true} {
		eng, err := New(Config{
			Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Mode: ModeCPU,
			Window: window, Quarantine: true, Prefetch: prefetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep, err := eng.Run(src, &buf)
		if err != nil {
			t.Fatalf("prefetch=%t: %v", prefetch, err)
		}
		if rep.CalSkipped != 1 {
			t.Errorf("prefetch=%t: CalSkipped = %d, want 1", prefetch, rep.CalSkipped)
		}
		if len(rep.Quarantined) != 1 {
			t.Fatalf("prefetch=%t: %d quarantined windows, want 1: %v", prefetch, len(rep.Quarantined), rep.Quarantined)
		}
		q := rep.Quarantined[0]
		if q.Line != at || q.Panicked {
			t.Errorf("prefetch=%t: quarantine = %+v, want line %d, no panic", prefetch, q, at)
		}
		wantWin := ds.Reads[at-1].Pos / window
		if q.Window != wantWin {
			t.Errorf("prefetch=%t: quarantined window %d, record %d lies in window %d", prefetch, q.Window, at, wantWin)
		}
		outs = append(outs, buf.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("serial and prefetch quarantine outputs differ")
	}
}

// TestComputePoolTrapsWorkerPanic drives the pool's panic containment
// directly through the computeJob test seam: a panic on a pool goroutine
// must be trapped (not crash the process) and surface via takePanic.
func TestComputePoolTrapsWorkerPanic(t *testing.T) {
	p := newComputePool(3)
	defer p.stop()
	p.wg.Add(2)
	p.jobs <- computeJob{fn: func() { panic("kaboom") }}
	p.jobs <- computeJob{fn: func() {}}
	p.wg.Wait()
	pe := p.takePanic()
	if pe == nil {
		t.Fatal("worker panic was not trapped")
	}
	if pe.Value != "kaboom" {
		t.Errorf("trapped value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("trapped panic carries no stack")
	}
	if p.takePanic() != nil {
		t.Error("takePanic did not clear the slot")
	}
}

// TestRunContextCancelled checks cooperative cancellation: an
// already-cancelled context aborts the run with the context's error, and
// quarantine never swallows cancellation.
func TestRunContextCancelled(t *testing.T) {
	ds := testDataset(t, 2000, 6, 9)
	eng, err := New(Config{
		Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Mode: ModeCPU,
		Window: 500, Quarantine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := eng.RunContext(ctx, pipeline.MemSource(ds.Reads), &bytes.Buffer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Error("cancelled run returned a report")
	}
}
