package gsnp

import (
	"bytes"
	"testing"

	"gsnp/internal/gpu"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
)

func benchDataset(b *testing.B, sites int) *seqsim.Dataset {
	b.Helper()
	return seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrB", Length: sites, Depth: 10, MaskFraction: 0.1, Seed: 7,
	})
}

func BenchmarkEngineCPU(b *testing.B) {
	ds := benchDataset(b, 20000)
	b.SetBytes(int64(ds.Spec.Length))
	for i := 0; i < b.N; i++ {
		eng, err := New(Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Mode: ModeCPU})
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := eng.Run(pipeline.MemSource(ds.Reads), &buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGPU(b *testing.B) {
	ds := benchDataset(b, 20000)
	b.SetBytes(int64(ds.Spec.Length))
	for i := 0; i < b.N; i++ {
		eng, err := New(Config{
			Chr: ds.Spec.Name, Ref: ds.Ref.Seq,
			Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()),
		})
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := eng.Run(pipeline.MemSource(ds.Reads), &buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGPUCompressed(b *testing.B) {
	ds := benchDataset(b, 20000)
	b.SetBytes(int64(ds.Spec.Length))
	for i := 0; i < b.N; i++ {
		eng, err := New(Config{
			Chr: ds.Spec.Name, Ref: ds.Ref.Seq,
			Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()),
			CompressOutput: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := eng.Run(pipeline.MemSource(ds.Reads), &buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseLikelihoodCPUWindow(b *testing.B) {
	ds := benchDataset(b, 10000)
	eng, err := New(Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Mode: ModeCPU, Window: 10000})
	if err != nil {
		b.Fatal(err)
	}
	eng.tables = testTables()
	eng.rep = &Report{NonZeroHist: make([]int64, sparsityHistSize)}
	w := buildTestWindow(ds, 10000)
	eng.countCPU(w)
	sortWindowWords(w)
	b.SetBytes(int64(len(w.words.Data) * 4))
	for i := 0; i < b.N; i++ {
		eng.likelihoodCompCPU(w)
	}
}

func BenchmarkPackWord(b *testing.B) {
	o := pipeline.Obs{Base: 2, Qual: 37, Coord: 55, Strand: 1}
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += PackWord(o)
	}
	_ = sink
}
