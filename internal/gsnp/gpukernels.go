package gsnp

import (
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/gpu"
	"gsnp/internal/pipeline"
	"gsnp/internal/sortnet"
)

// likeliBlock is the thread-block size of the per-site kernels. With
// shared-memory type_likely each thread needs ten float64 slots: 256
// threads use 20 KB of the 48 KB per block.
const likeliBlock = 256

// runWindowGPU executes components 3-7 of one window on the simulated
// device.
func (e *Engine) runWindowGPU(w *window) error {
	rep := e.rep
	d := e.cfg.Device

	// Component 3: counting — build the per-site base_word segments with
	// count/scan/scatter kernels and accumulate the per-site summaries
	// with atomic kernels. (The host flattening leg was already charged
	// by runWindow.)
	sim := e.simSpan(func() { e.countGPU(w) })
	rep.Times.Count += sim

	// Component 4a: likelihood_sort — multipass batch bitonic by default.
	var st sortnet.Stats
	switch e.cfg.Sort {
	case SortSinglePass:
		st = sortnet.SinglePassBitonic(d, &w.words)
	case SortNonEq:
		st = sortnet.NonEqBitonic(d, &w.words)
	default:
		st = sortnet.MultipassBitonic(d, &w.words)
	}
	rep.SortStats.Launches += st.Launches
	rep.SortStats.SimSeconds += st.SimSeconds
	rep.SortStats.ElementsSorted += st.ElementsSorted
	rep.Times.LikeliSort += time.Duration(st.SimSeconds * float64(time.Second))

	// Component 4b: likelihood_comp.
	before := d.Stats()
	sim = e.simSpan(func() { e.likelihoodCompGPU(w) })
	delta := d.Stats().Sub(before)
	delta.SimSeconds = 0
	rep.LikeliStats.Add(delta)
	rep.Times.LikeliComp += sim

	// Component 5: posterior.
	t0 := time.Now()
	priors := e.buildPriors(w)
	hostPrep := time.Since(t0)
	sim = e.simSpan(func() { e.posteriorGPU(w, priors) })
	rep.Times.Post += sim + hostPrep

	// Component 6: output — row assembly on the host (wall time), column
	// compression on the device (simulated time; the simulator's own host
	// cost of emulating the kernels is excluded).
	t0 = time.Now()
	rows := e.buildRows(w)
	rowWall := time.Since(t0)
	var outErr error
	sim = e.simSpan(func() { outErr = e.writeRows(rows) })
	if outErr != nil {
		return outErr
	}
	rep.Times.Output += rowWall + sim

	// Component 7: recycle — the sparse representation leaves nothing to
	// sweep: the tagged dep_count buffer invalidates by epoch and the
	// per-window buffers return to the arena with lengths reset.
	t0 = time.Now()
	w.obsSite, w.obsWord = w.obsSite[:0], w.obsWord[:0]
	rep.Times.Recycle += time.Since(t0)

	if ab := d.AllocatedBytes(); ab > rep.PeakDeviceBytes {
		rep.PeakDeviceBytes = ab
	}
	return nil
}

// countGPU runs the counting component's kernels.
func (e *Engine) countGPU(w *window) {
	d := e.cfg.Device
	n := w.n
	m := len(w.obsWord)

	obsSite := gpu.Alloc[uint32](d, m)
	defer obsSite.Free()
	obsSite.CopyIn(w.obsSite)
	obsWord := gpu.Alloc[uint32](d, m)
	defer obsWord.Free()
	obsWord.CopyIn(w.obsWord)

	siteCount := gpu.Alloc[uint32](d, n)
	defer siteCount.Free()
	bounds := gpu.Alloc[uint32](d, n)
	defer bounds.Free()
	grid := (m + likeliBlock - 1) / likeliBlock
	if grid > 0 {
		d.MustLaunch(gpu.LaunchConfig{Name: "count_sites", Grid: grid, Block: likeliBlock}, func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= m {
				return
			}
			gpu.AtomicAddU32(t, siteCount, int(gpu.Ld(t, obsSite, i)), 1)
		})
	}
	gpu.ExclusiveScanU32(d, siteCount, bounds)

	words := gpu.Alloc[uint32](d, m)
	defer words.Free()
	cursor := gpu.Alloc[uint32](d, n)
	defer cursor.Free()
	stats := gpu.Alloc[uint32](d, 3*4*n) // count, qualsum, uniq per (site, base)
	defer stats.Free()
	if grid > 0 {
		d.MustLaunch(gpu.LaunchConfig{Name: "count_scatter", Grid: grid, Block: likeliBlock}, func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= m {
				return
			}
			site := int(gpu.Ld(t, obsSite, i))
			word := gpu.Ld(t, obsWord, i)
			t.Exec(3)
			off := gpu.Ld(t, bounds, site) + gpu.AtomicAddU32(t, cursor, site, 1)
			// The uniq flag rides above the 17-bit sort key; strip it so
			// the segment sorts in the canonical base_word order.
			gpu.St(t, words, int(off), word&^wordUniqBit)
			base := int(word >> 15 & 3)
			qual := dna.QMax - 1 - word>>9&(dna.QMax-1)
			uniq := word >> 18 & 1
			t.Exec(2)
			sb := site*4 + base
			gpu.AtomicAddU32(t, stats, sb, 1)
			gpu.AtomicAddU32(t, stats, 4*n+sb, qual)
			gpu.AtomicAddU32(t, stats, 8*n+sb, uniq)
		})
	}

	// Assemble the host-side structures the later components use, reading
	// back into the window's recycled staging buffers.
	w.hostBounds = grow(w.hostBounds, n)
	bounds.CopyOut(w.hostBounds)
	w.hostStats = grow(w.hostStats, 3*4*n)
	stats.CopyOut(w.hostStats)
	hostStats := w.hostStats

	w.words.Reset(n, m)
	words.CopyOut(w.words.Data)
	b := w.words.Bounds
	for i := 0; i < n; i++ {
		b[i] = int32(w.hostBounds[i])
	}
	b[n] = int32(m)
	w.counts = grow(w.counts, n)
	// The device accumulates in uint32; clamping on readback matches the
	// CPU path's saturating counters (pipeline.SiteCounts.Add).
	for site := 0; site < n; site++ {
		c := &w.counts[site]
		c.Depth = pipeline.SatDepth(uint32(b[site+1] - b[site]))
		for base := 0; base < 4; base++ {
			sb := site*4 + base
			c.Count[base] = pipeline.SatDepth(hostStats[sb])
			c.QualSum[base] = hostStats[4*n+sb]
			c.Uniq[base] = pipeline.SatDepth(hostStats[8*n+sb])
		}
	}
}

// likelihoodCompGPU launches the likelihood_comp kernel variant configured
// for the engine: one thread per site over the sorted base_word segments
// (Algorithm 4).
func (e *Engine) likelihoodCompGPU(w *window) {
	d := e.cfg.Device
	n := w.n
	readLen := e.cfg.ReadLen

	words := gpu.Alloc[uint32](d, len(w.words.Data))
	defer words.Free()
	words.CopyIn(w.words.Data)
	bounds := gpu.Alloc[uint32](d, n+1)
	defer bounds.Free()
	hb := bounds.Host()
	for i := range w.words.Bounds {
		hb[i] = uint32(w.words.Bounds[i])
	}

	e.ensureDep(n)
	e.winEpoch++
	if e.winEpoch >= 1<<14 { // tag field exhausted: flush and restart
		clear(e.gDep.Host())
		e.winEpoch = 1
	}
	epochBase := e.winEpoch << 2 // room for the 2-bit base in the tag

	gTL := gpu.Alloc[float64](d, n*dna.NGenotypes)
	defer gTL.Free()

	variant := e.cfg.Variant
	useShared := variant == VariantOptimized || variant == VariantShared
	useNewTable := variant == VariantOptimized || variant == VariantNewTable
	block := likeliBlock
	if useShared {
		// Each thread stages ten float64 likelihoods in shared memory;
		// shrink the block on devices with smaller shared memory (e.g.
		// GT200's 16 KB) so the kernel still fits.
		perThread := dna.NGenotypes * 8
		if max := d.Config().SharedMemPerBlock / perThread; block > max {
			block = max / 32 * 32
			if block < 32 {
				block = 32
			}
		}
	}
	cfgLaunch := gpu.LaunchConfig{
		Name:  "likelihood_comp_" + variant.String(),
		Grid:  (n + block - 1) / block,
		Block: block,
	}
	if useShared {
		cfgLaunch.SharedF64 = block * dna.NGenotypes
	}

	gDep := e.gDep
	newP := e.gNewP
	pmat := e.gP
	adj := e.cAdj
	d.MustLaunch(cfgLaunch, func(t *gpu.Thread) {
		site := t.GlobalID()
		if site >= n {
			return
		}
		lo := int(gpu.Ld(t, bounds, site))
		hi := int(gpu.Ld(t, bounds, site+1))
		shBase := t.Lane * dna.NGenotypes

		// Initialise type_likely (line 4 of Algorithm 4).
		if useShared {
			for r := 0; r < dna.NGenotypes; r++ {
				t.SetSharedF64(shBase+r, 0)
			}
		} else {
			for r := 0; r < dna.NGenotypes; r++ {
				gpu.St(t, gTL, site*dna.NGenotypes+r, 0)
			}
		}

		depOff := site * 2 * readLen
		lastBase := -1
		var tag uint32
		for k := lo; k < hi; k++ {
			word := gpu.Ld(t, words, k)
			base := int(word >> 15 & 3)
			score := int(dna.QMax - 1 - word>>9&(dna.QMax-1))
			coord := int(word >> 1 & (bayes.MaxReadLen - 1))
			strand := int(word & 1)
			t.Exec(4) // field extraction

			if base != lastBase {
				// Re-initialising dep_count per base group (lines 8-10)
				// costs one tag change with the epoch encoding.
				tag = (epochBase | uint32(base)) << 16
				lastBase = base
				t.Exec(1)
			}
			slot := depOff + strand*readLen + coord
			entry := gpu.Ld(t, gDep, slot)
			cnt := uint32(0)
			if entry&0xFFFF0000 == tag {
				cnt = entry & 0xFFFF
			}
			cnt++
			gpu.St(t, gDep, slot, tag|cnt)
			t.Exec(2)

			// adjust (line 12): constant-memory penalty lookup.
			dcap := int(cnt) - 1
			if dcap >= int(bayes.NQ) {
				dcap = bayes.NQ - 1
			}
			pen := int(gpu.CLd(t, adj, dcap))
			qadj := score - pen
			if qadj < 0 {
				qadj = 0
			}
			t.Exec(2)

			if useNewTable {
				// Algorithm 3: one table read per genotype.
				idx := bayes.NewPMatrixIndex(dna.Quality(qadj), coord, dna.Base(base), 0)
				t.Exec(2)
				for r := 0; r < dna.NGenotypes; r++ {
					v := gpu.Ld(t, newP, idx+r)
					if useShared {
						t.AddSharedF64(shBase+r, v)
					} else {
						i := site*dna.NGenotypes + r
						gpu.St(t, gTL, i, gpu.Ld(t, gTL, i)+v)
					}
				}
			} else {
				// Algorithm 2: two p_matrix reads and a runtime log per
				// genotype.
				r := 0
				for a1 := dna.Base(0); a1 < dna.NBases; a1++ {
					for a2 := a1; a2 < dna.NBases; a2++ {
						p1 := gpu.Ld(t, pmat, bayes.PMatrixIndex(dna.Quality(qadj), coord, a1, dna.Base(base)))
						p2 := gpu.Ld(t, pmat, bayes.PMatrixIndex(dna.Quality(qadj), coord, a2, dna.Base(base)))
						v := t.Log10(0.5*p1 + 0.5*p2)
						t.Exec(2)
						if useShared {
							t.AddSharedF64(shBase+r, v)
						} else {
							i := site*dna.NGenotypes + r
							gpu.St(t, gTL, i, gpu.Ld(t, gTL, i)+v)
						}
						r++
					}
				}
			}
		}

		// Copy the shared result to global memory (line 18).
		if useShared {
			for r := 0; r < dna.NGenotypes; r++ {
				gpu.St(t, gTL, site*dna.NGenotypes+r, t.SharedF64(shBase+r))
			}
		}
	})

	w.typeLikely = grow(w.typeLikely, n*dna.NGenotypes)
	gTL.CopyOut(w.typeLikely)
}

// ensureDep sizes the device-resident tagged dep_count buffer.
func (e *Engine) ensureDep(n int) {
	need := n * 2 * e.cfg.ReadLen
	if e.gDep == nil || e.gDep.Len() < need {
		if e.gDep != nil {
			e.gDep.Free()
		}
		e.gDep = gpu.Alloc[uint32](e.cfg.Device, need)
		e.winEpoch = 0
	}
}

// posteriorGPU launches the posterior kernel: per site, combine the ten
// genotype log-likelihoods with the log priors and select the best and
// second-best genotypes. The comparison sequence matches posteriorSite and
// bayes.Posterior exactly.
func (e *Engine) posteriorGPU(w *window, priors []float64) {
	d := e.cfg.Device
	n := w.n

	gTL := gpu.Alloc[float64](d, len(w.typeLikely))
	defer gTL.Free()
	gTL.CopyIn(w.typeLikely)
	gPri := gpu.Alloc[float64](d, len(priors))
	defer gPri.Free()
	gPri.CopyIn(priors)
	gBest := gpu.Alloc[uint32](d, n)
	defer gBest.Free()
	gSecond := gpu.Alloc[uint32](d, n)
	defer gSecond.Free()
	gQual := gpu.Alloc[uint32](d, n)
	defer gQual.Free()

	d.MustLaunch(gpu.LaunchConfig{
		Name: "posterior", Grid: (n + likeliBlock - 1) / likeliBlock, Block: likeliBlock,
	}, func(t *gpu.Thread) {
		site := t.GlobalID()
		if site >= n {
			return
		}
		b, s := -1, -1
		var lb, ls float64
		for r := 0; r < dna.NGenotypes; r++ {
			lp := gpu.Ld(t, gTL, site*dna.NGenotypes+r) + gpu.Ld(t, gPri, site*dna.NGenotypes+r)
			t.Exec(2)
			switch {
			case b < 0 || lp > lb:
				s, ls = b, lb
				b, lb = r, lp
			case s < 0 || lp > ls:
				s, ls = r, lp
			}
		}
		q := 10 * (lb - ls)
		if !(q >= 0) {
			q = 0
		}
		if q > 99 {
			q = 99
		}
		t.Exec(3)
		gpu.St(t, gBest, site, uint32(b))
		gpu.St(t, gSecond, site, uint32(s))
		gpu.St(t, gQual, site, uint32(q))
	})

	w.hostBest = grow(w.hostBest, n)
	w.hostSecond = grow(w.hostSecond, n)
	w.hostQual = grow(w.hostQual, n)
	gBest.CopyOut(w.hostBest)
	gSecond.CopyOut(w.hostSecond)
	gQual.CopyOut(w.hostQual)
	w.bestRank = grow(w.bestRank, n)
	w.secondRank = grow(w.secondRank, n)
	w.quality = grow(w.quality, n)
	for i := 0; i < n; i++ {
		w.bestRank[i] = uint8(w.hostBest[i])
		w.secondRank[i] = uint8(w.hostSecond[i])
		w.quality[i] = uint8(w.hostQual[i])
	}
}
