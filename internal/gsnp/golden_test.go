package gsnp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden result table")

// TestGoldenOutput freezes a complete result table for a small
// deterministic workload. Any change to the statistical model, the row
// format or the engines shows up as a diff here before it reaches users.
// Regenerate deliberately with:
//
//	go test ./internal/gsnp -run TestGoldenOutput -update-golden
//
// (The file depends on math.Log10's bit-level behaviour, which the Go
// runtime keeps stable across platforms for a given algorithm; if a Go
// release changes it, regenerating is the intended response.)
func TestGoldenOutput(t *testing.T) {
	ds := testDataset(t, 1500, 9, 2024)
	_, got := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 400})

	path := filepath.Join("testdata", "golden_chr.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Locate the first differing line for a readable failure.
		gl := bytes.Split(got, []byte{'\n'})
		wl := bytes.Split(want, []byte{'\n'})
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("output diverged from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("output length diverged from golden: %d vs %d bytes", len(got), len(want))
	}
}
