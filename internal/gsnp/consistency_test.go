package gsnp

import (
	"testing"

	"gsnp/internal/bayes"
	"gsnp/internal/gpu"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
)

// buildTestWindow reconstructs one window's observation arrays directly
// from a dataset, for tests that drive individual components.
func buildTestWindow(ds *seqsim.Dataset, n int) *window {
	w := &window{start: 0, end: n, n: n}
	for i := range ds.Reads {
		r := &ds.Reads[i]
		for pos := r.Pos; pos < r.Pos+len(r.Bases) && pos < n; pos++ {
			if pos < 0 {
				continue
			}
			o, ok := pipeline.ObsOf(r, pos)
			if !ok {
				continue
			}
			w.obsSite = append(w.obsSite, uint32(pos))
			w.obsWord = append(w.obsWord, PackWord(o))
		}
	}
	return w
}

// likelihoodOnDevice runs counting+sort+likelihood_comp for one window on
// the given device and returns the type_likely array.
func likelihoodOnDevice(t *testing.T, ds *seqsim.Dataset, dev *gpu.Device, variant Variant) []float64 {
	t.Helper()
	n := len(ds.Ref.Seq)
	eng, err := New(Config{
		Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Window: n,
		Mode: ModeGPU, Device: dev, Variant: variant,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Minimal table setup (cal_p_matrix from a Phred prior keeps the
	// comparison focused on the kernels).
	eng.tables = testTables()
	eng.rep = &Report{NonZeroHist: make([]int64, sparsityHistSize)}
	if err := eng.loadTables(); err != nil {
		t.Fatal(err)
	}
	defer eng.unloadTables()

	w := buildTestWindow(ds, n)
	eng.countCPU(w)
	sortWindowWords(w)
	eng.likelihoodCompGPU(w)
	return w.typeLikely
}

// likelihoodOnHost runs the same window through the CPU sparse path.
func likelihoodOnHost(t *testing.T, ds *seqsim.Dataset) []float64 {
	t.Helper()
	n := len(ds.Ref.Seq)
	eng, err := New(Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Window: n, Mode: ModeCPU})
	if err != nil {
		t.Fatal(err)
	}
	eng.tables = testTables()
	eng.rep = &Report{NonZeroHist: make([]int64, sparsityHistSize)}
	w := buildTestWindow(ds, n)
	eng.countCPU(w)
	sortWindowWords(w)
	eng.likelihoodCompCPU(w)
	return w.typeLikely
}

// TestFastMathConsistency reproduces the Section IV-G experiment: on a
// device whose native math functions differ from the host libm in the
// trailing bits, the kernel that computes logarithms at runtime (the
// baseline, Algorithm 2) produces likelihoods that disagree with the CPU,
// while the shipped configuration — all logarithms precomputed on the CPU
// into log_table/new_p_matrix — stays bit-identical. The paper observed
// ~0.1% of final results differing before adopting the tables.
func TestFastMathConsistency(t *testing.T) {
	ds := testDataset(t, 3000, 10, 777)
	hostTL := likelihoodOnHost(t, ds)

	fastCfg := gpu.M2050()
	fastCfg.FastMath = true

	// Runtime-log kernel on the fast-math device: values drift.
	fastTL := likelihoodOnDevice(t, ds, gpu.NewDevice(fastCfg), VariantBaseline)
	diff := 0
	for i := range hostTL {
		if hostTL[i] != fastTL[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("fast-math runtime-log kernel produced bit-identical likelihoods; the device-math inconsistency is not being exercised")
	}
	t.Logf("fast-math runtime-log kernel: %d of %d likelihood values differ (%.2f%%)",
		diff, len(hostTL), 100*float64(diff)/float64(len(hostTL)))

	// The table-based kernel is immune on the same device.
	tableTL := likelihoodOnDevice(t, ds, gpu.NewDevice(fastCfg), VariantOptimized)
	for i := range hostTL {
		if hostTL[i] != tableTL[i] {
			t.Fatalf("table-based kernel diverged at %d under fast math: %v vs %v", i, tableTL[i], hostTL[i])
		}
	}

	// And on an IEEE-exact device even the runtime-log kernel matches,
	// because the host computes the same log10.
	exactTL := likelihoodOnDevice(t, ds, gpu.NewDevice(gpu.M2050()), VariantBaseline)
	hostRuntime := runtimeLogHost(t, ds)
	for i := range exactTL {
		if exactTL[i] != hostRuntime[i] {
			t.Fatalf("exact-math runtime-log kernel differs from host runtime-log at %d", i)
		}
	}
}

// runtimeLogHost computes likelihoods on the host with Algorithm 2's
// runtime logarithms (what single-threaded SOAPsnp does); with IEEE math
// this matches the precomputed tables bit for bit.
func runtimeLogHost(t *testing.T, ds *seqsim.Dataset) []float64 {
	t.Helper()
	// The table path is proven equal to runtime LikelyUpdate in the bayes
	// package tests; reuse the host sparse path.
	return likelihoodOnHost(t, ds)
}

// testTables builds the fixed Phred-model tables used by the consistency
// tests.
func testTables() *bayes.Tables {
	return bayes.BuildTables(bayes.NewPMatrixFromPhred())
}
