package gsnp

import (
	"bytes"
	"testing"
	"testing/quick"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/gpu"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
	"gsnp/internal/soapsnp"
)

func testDataset(t *testing.T, sites int, depth float64, seed int64) *seqsim.Dataset {
	t.Helper()
	return seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrT", Length: sites, Depth: depth, MaskFraction: 0.1, Seed: seed,
	})
}

func knownFromDataset(ds *seqsim.Dataset) snpio.KnownSNPs {
	known := snpio.KnownSNPs{}
	for _, v := range ds.Diploid.Variants {
		if !v.Known {
			continue
		}
		a1, a2 := v.Genotype.Alleles()
		rec := &bayes.KnownSNP{Validated: true}
		rec.Freq[a1] += 0.5
		rec.Freq[a2] += 0.5
		known[v.Pos] = rec
	}
	return known
}

// runGSNP executes the engine and returns the report plus raw output.
func runGSNP(t *testing.T, ds *seqsim.Dataset, cfg Config) (*Report, []byte) {
	t.Helper()
	cfg.Chr = ds.Spec.Name
	cfg.Ref = ds.Ref.Seq
	cfg.Known = knownFromDataset(ds)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep, buf.Bytes()
}

// soapsnpText runs the dense baseline and returns its text output.
func soapsnpText(t *testing.T, ds *seqsim.Dataset, window int) []byte {
	t.Helper()
	eng := soapsnp.New(soapsnp.Config{
		Chr:    ds.Spec.Name,
		Ref:    ds.Ref.Seq,
		Known:  knownFromDataset(ds),
		Window: window,
	})
	var buf bytes.Buffer
	if _, err := eng.Run(pipeline.MemSource(ds.Reads), &buf); err != nil {
		t.Fatalf("soapsnp.Run: %v", err)
	}
	return buf.Bytes()
}

func TestPackUnpackWord(t *testing.T) {
	f := func(b, q, c, s uint8, u bool) bool {
		o := pipeline.Obs{
			Base:   dna.Base(b & 3),
			Qual:   dna.Quality(q & 63),
			Coord:  c,
			Strand: s & 1,
			Uniq:   u,
		}
		got := UnpackWord(PackWord(o))
		return got == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniqBitAboveSortKey(t *testing.T) {
	// The uniq flag must ride above the 17-bit sort key so that stripping
	// it (which counting does before sorting) leaves the key untouched.
	o := pipeline.Obs{Base: dna.T, Qual: 63, Coord: 255, Strand: 1}
	plain := PackWord(o)
	o.Uniq = true
	flagged := PackWord(o)
	if plain >= 1<<wordKeyBits {
		t.Errorf("non-uniq word %#x overflows the %d-bit sort key", plain, wordKeyBits)
	}
	if flagged&^wordUniqBit != plain {
		t.Errorf("uniq flag perturbs key bits: %#x vs %#x", flagged&^wordUniqBit, plain)
	}
	if flagged&wordUniqBit == 0 {
		t.Error("uniq flag not set")
	}
}

func TestWordSortOrderIsCanonical(t *testing.T) {
	// Ascending word order must equal (base asc, score desc, coord asc,
	// strand asc) — Algorithm 1's loop order.
	a := PackWord(pipeline.Obs{Base: dna.A, Qual: 50, Coord: 10, Strand: 0})
	b := PackWord(pipeline.Obs{Base: dna.A, Qual: 20, Coord: 0, Strand: 0})
	if a >= b {
		t.Error("higher score must sort before lower score within a base")
	}
	c := PackWord(pipeline.Obs{Base: dna.C, Qual: 63, Coord: 0, Strand: 0})
	if b >= c {
		t.Error("base A must sort before base C regardless of score")
	}
	d1 := PackWord(pipeline.Obs{Base: dna.A, Qual: 20, Coord: 5, Strand: 0})
	d2 := PackWord(pipeline.Obs{Base: dna.A, Qual: 20, Coord: 5, Strand: 1})
	if d1 >= d2 {
		t.Error("forward strand must sort before reverse at equal fields")
	}
}

func TestGSNPCPUMatchesSOAPsnp(t *testing.T) {
	// The headline consistency claim (Section IV-G): the sparse engine
	// produces output byte-identical to the dense baseline.
	ds := testDataset(t, 4000, 9, 101)
	want := soapsnpText(t, ds, 1000)
	_, got := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 800})
	if !bytes.Equal(got, want) {
		t.Fatalf("GSNP_CPU output differs from SOAPsnp (lens %d vs %d)", len(got), len(want))
	}
}

func TestGSNPGPUMatchesSOAPsnp(t *testing.T) {
	ds := testDataset(t, 3000, 9, 102)
	want := soapsnpText(t, ds, 700)
	for _, variant := range []Variant{VariantOptimized, VariantBaseline, VariantShared, VariantNewTable} {
		_, got := runGSNP(t, ds, Config{
			Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()),
			Window: 640, Variant: variant,
		})
		if !bytes.Equal(got, want) {
			t.Fatalf("variant %v: GPU output differs from SOAPsnp", variant)
		}
	}
}

func TestSortMethodsProduceIdenticalOutput(t *testing.T) {
	ds := testDataset(t, 2000, 9, 103)
	var ref []byte
	for i, method := range []SortMethod{SortMultipass, SortSinglePass, SortNonEq} {
		_, got := runGSNP(t, ds, Config{
			Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()),
			Window: 512, Sort: method,
		})
		if i == 0 {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("sort method %d output differs", method)
		}
	}
}

func TestCompressedOutputDecodesToSameRows(t *testing.T) {
	ds := testDataset(t, 2500, 8, 104)
	_, text := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 600})
	wantRows, err := snpio.ReadResults(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rep, blob := runGSNP(t, ds, Config{
		Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()),
		Window: 600, CompressOutput: true,
	})
	gotRows, err := snpio.ReadAllBlocks(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("row counts differ: %d vs %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("row %d differs:\n got %+v\nwant %+v", i, gotRows[i], wantRows[i])
		}
	}
	// Figure 9(a): the compressed container is much smaller than text.
	if rep.OutputBytes*4 > int64(len(text)) {
		t.Errorf("compressed output %d B not <= 1/4 of text %d B", rep.OutputBytes, len(text))
	}
}

func TestWindowSizeInvariance(t *testing.T) {
	ds := testDataset(t, 2200, 8, 105)
	var ref []byte
	for i, win := range []int{300, 1024, 2200} {
		_, got := runGSNP(t, ds, Config{Mode: ModeCPU, Window: win})
		if i == 0 {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("window %d output differs", win)
		}
	}
}

func TestReportContents(t *testing.T) {
	ds := testDataset(t, 3000, 9.6, 106)
	rep, _ := runGSNP(t, ds, Config{
		Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 1000,
	})
	if rep.Sites != 3000 {
		t.Errorf("Sites = %d", rep.Sites)
	}
	if rep.MeanDepth < 7 || rep.MeanDepth > 11 {
		t.Errorf("MeanDepth = %v", rep.MeanDepth)
	}
	if rep.LikeliStats.Instructions == 0 || rep.LikeliStats.GlobalLoads == 0 {
		t.Error("likelihood_comp counters empty")
	}
	if rep.SortStats.ElementsSorted == 0 {
		t.Error("sort stats empty")
	}
	if rep.PeakDeviceBytes == 0 {
		t.Error("peak device bytes empty")
	}
	var sites int64
	for _, c := range rep.NonZeroHist {
		sites += c
	}
	if sites != 3000 {
		t.Errorf("sparsity histogram covers %d sites", sites)
	}
	if rep.Times.Total() <= 0 || rep.Times.String() == "" {
		t.Error("times not populated")
	}
	if rep.Times.Likeli() != rep.Times.LikeliSort+rep.Times.LikeliComp {
		t.Error("Likeli() inconsistent")
	}
}

func TestTableIIICounterTrends(t *testing.T) {
	// The hardware-counter trends of Table III: shared memory removes the
	// global type_likely traffic; the new table removes instructions
	// (logs) and p_matrix loads; optimized is lowest on both.
	ds := testDataset(t, 2000, 9, 107)
	stats := map[Variant]gpu.Stats{}
	for _, v := range []Variant{VariantBaseline, VariantShared, VariantNewTable, VariantOptimized} {
		rep, _ := runGSNP(t, ds, Config{
			Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()),
			Window: 1000, Variant: v,
		})
		stats[v] = rep.LikeliStats
	}
	base, shared, table, opt := stats[VariantBaseline], stats[VariantShared], stats[VariantNewTable], stats[VariantOptimized]

	if shared.SharedLoads == 0 || shared.SharedStores == 0 {
		t.Error("shared variant has no shared-memory traffic")
	}
	if base.SharedLoads != 0 {
		t.Error("baseline variant uses shared memory")
	}
	if !(shared.GlobalLoads < base.GlobalLoads) {
		t.Errorf("shared gld %d not below baseline %d", shared.GlobalLoads, base.GlobalLoads)
	}
	if !(shared.GlobalStores < base.GlobalStores) {
		t.Errorf("shared gst %d not below baseline %d", shared.GlobalStores, base.GlobalStores)
	}
	if !(table.Instructions < base.Instructions) {
		t.Errorf("new-table instructions %d not below baseline %d", table.Instructions, base.Instructions)
	}
	if !(table.GlobalLoads < base.GlobalLoads) {
		t.Errorf("new-table gld %d not below baseline %d", table.GlobalLoads, base.GlobalLoads)
	}
	if !(opt.GlobalLoads+opt.GlobalStores < base.GlobalLoads+base.GlobalStores) {
		t.Error("optimized global accesses not below baseline")
	}
	if !(opt.Instructions < base.Instructions) {
		t.Error("optimized instructions not below baseline")
	}
}

func TestDenseGPULikelihoodMatchesSparse(t *testing.T) {
	ds := testDataset(t, 300, 9, 108)
	d := gpu.NewDevice(gpu.M2050())
	cfg := Config{Mode: ModeGPU, Device: d, Window: 300}
	cfg.Chr = ds.Spec.Name
	cfg.Ref = ds.Ref.Seq
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.Run(pipeline.MemSource(ds.Reads), &buf); err != nil {
		t.Fatal(err)
	}

	// Rebuild the window's sorted words and compare dense vs sparse
	// likelihood directly.
	it, _ := pipeline.MemSource(ds.Reads).Open()
	win := pipeline.NewWindower(it)
	w := &window{start: 0, end: 300, n: 300}
	rs, _ := win.Reads(0, 300)
	for i := range rs {
		r := &rs[i]
		for pos := r.Pos; pos < r.Pos+len(r.Bases) && pos < 300; pos++ {
			if pos < 0 {
				continue
			}
			o, ok := pipeline.ObsOf(r, pos)
			if !ok {
				continue
			}
			o.Uniq = true
			w.obsSite = append(w.obsSite, uint32(pos))
			w.obsWord = append(w.obsWord, PackWord(o))
		}
	}
	eng2, _ := New(cfg)
	eng2.tables = eng.Tables()
	eng2.rep = &Report{NonZeroHist: make([]int64, sparsityHistSize)}
	if err := eng2.loadTables(); err != nil {
		t.Fatal(err)
	}
	defer eng2.unloadTables()
	eng2.countCPU(w)
	sortWindowWords(w)
	eng2.likelihoodCompCPU(w)
	sparse := append([]float64(nil), w.typeLikely...)

	dense := DenseGPULikelihood(d, eng.Tables(), 100, &w.words, eng2.gNewP, eng2.cAdj)
	if len(dense) != len(sparse) {
		t.Fatalf("length mismatch %d vs %d", len(dense), len(sparse))
	}
	for i := range dense {
		if dense[i] != sparse[i] {
			t.Fatalf("dense GPU likelihood differs at %d: %v vs %v", i, dense[i], sparse[i])
		}
	}
}

// sortWindowWords sorts each site's words on the host (test helper).
func sortWindowWords(w *window) {
	for site := 0; site < w.n; site++ {
		arr := w.words.Array(site)
		for i := 1; i < len(arr); i++ {
			for k := i; k > 0 && arr[k-1] > arr[k]; k-- {
				arr[k-1], arr[k] = arr[k], arr[k-1]
			}
		}
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		VariantOptimized: "optimized",
		VariantBaseline:  "baseline",
		VariantShared:    "w/ shared",
		VariantNewTable:  "w/ new table",
		Variant(99):      "Variant(99)",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("Variant(%d).String() = %q", int(v), v.String())
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Mode: ModeGPU}); err == nil {
		t.Error("ModeGPU without device accepted")
	}
	if _, err := New(Config{Mode: ModeCPU, ReadLen: 1000}); err == nil {
		t.Error("oversized read length accepted")
	}
	if _, err := New(Config{Mode: ModeCPU}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRecycleIsNegligible(t *testing.T) {
	// The sparse representation makes recycle orders of magnitude cheaper
	// than likelihood (Table IV: 3s vs 60s on the GPU; SOAPsnp: 8214s).
	ds := testDataset(t, 5000, 9, 109)
	rep, _ := runGSNP(t, ds, Config{
		Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 1000,
	})
	if rep.Times.Recycle*10 > rep.Times.Likeli() {
		t.Errorf("recycle %v not negligible vs likelihood %v", rep.Times.Recycle, rep.Times.Likeli())
	}
}

func TestUseTempInputIdenticalOutput(t *testing.T) {
	// The Section V-A flow: cal_p_matrix writes the compressed temporary
	// input, the windowed pass reads it back — output must not change.
	ds := testDataset(t, 2500, 9, 110)
	_, want := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 700})
	_, got := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 700, UseTempInput: true})
	if !bytes.Equal(got, want) {
		t.Fatal("temporary-input flow changed the output")
	}
	_, gotGPU := runGSNP(t, ds, Config{
		Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()),
		Window: 700, UseTempInput: true,
	})
	if !bytes.Equal(gotGPU, want) {
		t.Fatal("temporary-input flow on the GPU engine changed the output")
	}
}

func TestGPUWindowSizeInvariance(t *testing.T) {
	ds := testDataset(t, 1800, 8, 111)
	var ref []byte
	dev := gpu.NewDevice(gpu.M2050())
	for i, win := range []int{256, 900, 1800} {
		_, got := runGSNP(t, ds, Config{Mode: ModeGPU, Device: dev, Window: win})
		if i == 0 {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("GPU window %d output differs", win)
		}
	}
}

func TestEngineReuseAcrossRuns(t *testing.T) {
	// One engine, several runs: device table state must reset cleanly.
	ds := testDataset(t, 1200, 8, 112)
	cfg := Config{Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 400}
	cfg.Chr = ds.Spec.Name
	cfg.Ref = ds.Ref.Seq
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for run := 0; run < 3; run++ {
		var buf bytes.Buffer
		if _, err := eng.Run(pipeline.MemSource(ds.Reads), &buf); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if run == 0 {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), first) {
			t.Fatalf("run %d output differs from run 0", run)
		}
	}
	// Device memory must not leak across runs (tables/dep freed).
	if ab := cfg.Device.AllocatedBytes(); ab != 0 {
		t.Errorf("device memory leaked: %d bytes still allocated", ab)
	}
}

func TestCountGPUMatchesCountCPU(t *testing.T) {
	// The counting component's GPU kernels (count/scan/scatter + atomic
	// per-base statistics) must agree with the host implementation, up to
	// intra-site word order (restored by likelihood_sort).
	ds := testDataset(t, 1500, 9, 113)
	n := len(ds.Ref.Seq)

	build := func() *window { return buildTestWindow(ds, n) }

	cpuEng, _ := New(Config{Chr: "c", Ref: ds.Ref.Seq, Window: n, Mode: ModeCPU})
	wc := build()
	cpuEng.countCPU(wc)

	gpuEng, _ := New(Config{Chr: "c", Ref: ds.Ref.Seq, Window: n, Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050())})
	wg := build()
	gpuEng.countGPU(wg)

	if len(wc.words.Bounds) != len(wg.words.Bounds) {
		t.Fatal("bounds lengths differ")
	}
	for i := range wc.words.Bounds {
		if wc.words.Bounds[i] != wg.words.Bounds[i] {
			t.Fatalf("bounds differ at %d: %d vs %d", i, wc.words.Bounds[i], wg.words.Bounds[i])
		}
	}
	sortWindowWords(wc)
	sortWindowWords(wg)
	for i := range wc.words.Data {
		if wc.words.Data[i] != wg.words.Data[i] {
			t.Fatalf("sorted words differ at %d", i)
		}
	}
	for site := 0; site < n; site++ {
		if wc.counts[site] != wg.counts[site] {
			t.Fatalf("site %d counts differ:\n cpu %+v\n gpu %+v", site, wc.counts[site], wg.counts[site])
		}
	}
}
