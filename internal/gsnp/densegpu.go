package gsnp

import (
	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/gpu"
	"gsnp/internal/sortnet"
)

// denseChunk bounds the number of sites whose dense matrices are resident
// at once (2048 x 128 KB = 256 MB).
const denseChunk = 2048

// DenseGPULikelihood runs the "GPU dense" configuration of Figure 5: the
// dense base_occ representation moved to the device, one thread per site
// scanning all 131,072 matrix elements in canonical order. Matrices are
// stored site-interleaved (element e of site s at e*chunk+s) so that the
// 32 lanes of a warp reading element e of 32 consecutive sites coalesce —
// the best possible dense layout. Even so, the scan touches every element
// of a 128 KB matrix per site while the sparse representation touches only
// the ~0.08% non-zeros, which is why the paper measures dense-on-GPU at
// 14-17x slower than GSNP.
//
// words supplies the per-site observations (sorted or not; the dense scan
// re-establishes canonical order by construction). The function returns
// the genotype log-likelihoods per site, identical to the sparse kernels'.
// The per-thread dep_count array is modelled as thread-local storage.
func DenseGPULikelihood(d *gpu.Device, tables *bayes.Tables, readLen int, words *sortnet.Batches, gNewP *gpu.Buffer[float64], cAdj *gpu.ConstBuffer[uint8]) []float64 {
	n := words.NumArrays()
	out := make([]float64, n*dna.NGenotypes)
	baseOcc := gpu.Alloc[uint8](d, denseChunk*bayes.BaseOccSize)
	defer baseOcc.Free()
	gTL := gpu.Alloc[float64](d, denseChunk*dna.NGenotypes)
	defer gTL.Free()

	for chunk := 0; chunk < n; chunk += denseChunk {
		cn := denseChunk
		if chunk+cn > n {
			cn = n - chunk
		}
		// Counting into the dense matrices (host side; the measured
		// component here is the likelihood scan, as in Figure 5).
		// Site-interleaved layout: element e of site s at e*cn + s.
		host := baseOcc.Host()
		clear(host[:cn*bayes.BaseOccSize])
		for s := 0; s < cn; s++ {
			for _, word := range words.Array(chunk + s) {
				o := UnpackWord(word)
				e := bayes.BaseOccIndex(o.Base, o.Qual, int(o.Coord), int(o.Strand))
				idx := e*cn + s
				if host[idx] < 255 {
					host[idx]++
				}
			}
		}

		cc := cn
		d.MustLaunch(gpu.LaunchConfig{
			Name: "likelihood_dense", Grid: (cc + 31) / 32, Block: 32,
		}, func(t *gpu.Thread) {
			site := t.GlobalID()
			if site >= cc {
				return
			}
			var tl [dna.NGenotypes]float64
			var dep [2 * bayes.MaxReadLen]uint16
			for base := dna.Base(0); base < dna.NBases; base++ {
				for i := range dep[:2*readLen] {
					dep[i] = 0
				}
				t.Exec(1)
				for score := int(bayes.NQ) - 1; score >= 0; score-- {
					row := bayes.BaseOccIndex(base, dna.Quality(score), 0, 0)
					for coord := 0; coord < readLen; coord++ {
						for strand := 0; strand < 2; strand++ {
							occ := gpu.Ld(t, baseOcc, (row+coord<<1+strand)*cc+site)
							if occ == 0 {
								continue
							}
							for k := uint8(0); k < occ; k++ {
								slot := strand*readLen + coord
								dep[slot]++
								dcap := int(dep[slot]) - 1
								if dcap >= int(bayes.NQ) {
									dcap = bayes.NQ - 1
								}
								pen := int(gpu.CLd(t, cAdj, dcap))
								qadj := score - pen
								if qadj < 0 {
									qadj = 0
								}
								t.Exec(4)
								idx := bayes.NewPMatrixIndex(dna.Quality(qadj), coord, base, 0)
								for r := 0; r < dna.NGenotypes; r++ {
									tl[r] += gpu.Ld(t, gNewP, idx+r)
									t.Exec(1)
								}
							}
						}
					}
				}
			}
			for r := 0; r < dna.NGenotypes; r++ {
				gpu.St(t, gTL, site*dna.NGenotypes+r, tl[r])
			}
		})
		gTL.CopyOut(out[chunk*dna.NGenotypes : (chunk+cn)*dna.NGenotypes])
	}
	return out
}
