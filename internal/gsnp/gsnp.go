// Package gsnp implements the paper's system: the GPU-accelerated SNP
// detection pipeline of Figure 2 with the sparse base_word representation
// (Section IV-B), the multipass batch sorting of likelihood_sort (IV-C),
// the precomputed new score table (IV-D), shared-memory type_likely (IV-E)
// and GPU-compressed output (V). A CPU mode (GSNP_CPU in the paper's
// figures) runs the identical sparse algorithm without the device.
//
// All modes and kernel variants produce result tables byte-identical to the
// dense SOAPsnp baseline — the consistency requirement of Section IV-G —
// because every engine consumes the same CPU-built tables and performs the
// same floating-point operations in the same canonical order.
package gsnp

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/gpu"
	"gsnp/internal/pipeline"
	"gsnp/internal/snpio"
	"gsnp/internal/sortnet"
)

// Mode selects the execution engine.
type Mode int

const (
	// ModeGPU runs counting, likelihood, posterior and output
	// compression on the simulated device (GSNP in the paper).
	ModeGPU Mode = iota
	// ModeCPU runs the same sparse algorithm sequentially on the host
	// (GSNP_CPU in the paper's figures).
	ModeCPU
)

// Variant selects the likelihood_comp kernel implementation, the subject
// of Figure 8 and Table III.
type Variant int

const (
	// VariantOptimized uses shared-memory type_likely and the new score
	// table (the shipping configuration).
	VariantOptimized Variant = iota
	// VariantBaseline uses global-memory type_likely and p_matrix with
	// runtime logarithms.
	VariantBaseline
	// VariantShared uses shared-memory type_likely but keeps p_matrix.
	VariantShared
	// VariantNewTable uses the new score table but keeps type_likely in
	// global memory.
	VariantNewTable
)

func (v Variant) String() string {
	switch v {
	case VariantOptimized:
		return "optimized"
	case VariantBaseline:
		return "baseline"
	case VariantShared:
		return "w/ shared"
	case VariantNewTable:
		return "w/ new table"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// SortMethod selects the likelihood_sort implementation (Figure 7(b)).
type SortMethod int

const (
	// SortMultipass is the paper's six-pass size-classed batch bitonic.
	SortMultipass SortMethod = iota
	// SortSinglePass pads every array to the largest size.
	SortSinglePass
	// SortNonEq sorts different sizes directly with imbalanced blocks.
	SortNonEq
)

// Config parameterises a run.
type Config struct {
	// Chr names the chromosome in output rows.
	Chr string
	// Ref is the reference sequence.
	Ref dna.Sequence
	// Known holds the prior-file records.
	Known snpio.KnownSNPs
	// Window is the number of sites per window; GSNP's default is
	// 256,000 (Section VI-A).
	Window int
	// ReadLen is the maximum read length.
	ReadLen int
	// Priors configures the genotype prior model.
	Priors bayes.Priors
	// Mode selects GPU or CPU execution.
	Mode Mode
	// Device is the simulated GPU (required for ModeGPU).
	Device *gpu.Device
	// Variant selects the likelihood_comp kernel (GPU mode).
	Variant Variant
	// Sort selects the likelihood_sort implementation (GPU mode).
	Sort SortMethod
	// CompressOutput writes the GSNP compressed container instead of the
	// plain result text.
	CompressOutput bool
	// VCFOutput writes VCFv4.2 variant records instead of the 17-column
	// result table (SNP rows only — homozygous-reference sites are
	// filtered by the codec). Mutually exclusive with CompressOutput.
	VCFOutput bool
	// UseTempInput makes cal_p_matrix write the compressed temporary
	// input file during its pass and the windowed pass read it back
	// (Section V-A: the second read costs roughly a third of the bytes).
	UseTempInput bool
	// TempDir locates the temporary input file (default os.TempDir()).
	TempDir string
	// Prefetch overlaps read_site I/O for window i+1 with components 3-7
	// of window i (double buffering). Output is byte-identical either
	// way; the serial path remains the default so the Table IV component
	// timings are unaffected.
	Prefetch bool
	// SortWorkers bounds the host worker count of likelihood_sort in CPU
	// mode. Zero selects GOMAXPROCS; the Figure 6/paper-comparison
	// harness pins it to 1, the paper's single-threaded GSNP_CPU
	// configuration.
	SortWorkers int
	// ComputeWorkers bounds the host worker count of the site-parallel
	// likelihood_comp + posterior passes in CPU mode. Zero selects
	// GOMAXPROCS; the paper-comparison harness pins it to 1. Sites are
	// sharded into contiguous disjoint index ranges with per-worker
	// dep_count scratch, so output is byte-identical at every setting.
	// The count is an upper bound: each window caps it at the host CPU
	// count and at one shard per minShardSites sites, so small windows
	// and single-CPU hosts serialize instead of paying dispatch overhead
	// for no parallelism.
	ComputeWorkers int
	// forceShardWorkers pins the sharded-dispatch width, bypassing the
	// adaptive cap. Test seam: byte-identity and pool tests must exercise
	// helper dispatch even on hosts where the cap would serialize.
	forceShardWorkers int
	// Arena supplies the per-window working-set recycler (component 7).
	// Nil selects a process-wide pool; the whole-genome scheduler hands
	// each of its workers a private Arena so consecutive chromosome runs
	// reuse one working set.
	Arena *Arena
	// Quarantine contains window-level failures instead of aborting the
	// run: a malformed alignment record or a panicking window computation
	// is recorded in Report.Quarantined (window index, site range, input
	// position, cause) and the run continues with the next window. The
	// calibration pass skips malformed records, counted in
	// Report.CalSkipped. Output on the success path is byte-identical
	// with or without quarantine; a quarantined window emits no rows.
	// Non-containable failures — I/O errors, output-sink errors, context
	// cancellation — still abort the run.
	Quarantine bool
	// WindowHook, when non-nil, runs before each window's computation
	// with the window index and site range. A returned error or a panic
	// is treated exactly like a failure of the window itself — the seam
	// internal/faults uses to inject worker panics and stalls.
	WindowHook func(ctx context.Context, window, start, end int) error
}

// DefaultWindow is GSNP's window size from the paper's setup.
const DefaultWindow = 256000

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.ReadLen == 0 {
		c.ReadLen = 100
	}
	if c.Priors == (bayes.Priors{}) {
		c.Priors = bayes.DefaultPriors()
	}
	if c.SortWorkers <= 0 {
		c.SortWorkers = runtime.GOMAXPROCS(0)
	}
	if c.ComputeWorkers <= 0 {
		c.ComputeWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Times is the per-component breakdown of Table IV. GPU components combine
// the simulated device time of their kernels and copies with the host time
// of their host-side work.
type Times struct {
	CalP       time.Duration
	Read       time.Duration
	Count      time.Duration
	LikeliSort time.Duration
	LikeliComp time.Duration
	Post       time.Duration
	Output     time.Duration
	Recycle    time.Duration
}

// Likeli is the combined likelihood component (sort + comp), comparable
// with SOAPsnp's likelihood column.
func (t Times) Likeli() time.Duration { return t.LikeliSort + t.LikeliComp }

// Total sums the components.
func (t Times) Total() time.Duration {
	return t.CalP + t.Read + t.Count + t.LikeliSort + t.LikeliComp + t.Post + t.Output + t.Recycle
}

func (t Times) String() string {
	return fmt.Sprintf("cal_p=%v read=%v count=%v likeli=%v(sort=%v,comp=%v) post=%v output=%v recycle=%v total=%v",
		t.CalP.Round(time.Microsecond), t.Read.Round(time.Microsecond), t.Count.Round(time.Microsecond),
		t.Likeli().Round(time.Microsecond), t.LikeliSort.Round(time.Microsecond), t.LikeliComp.Round(time.Microsecond),
		t.Post.Round(time.Microsecond), t.Output.Round(time.Microsecond), t.Recycle.Round(time.Microsecond),
		t.Total().Round(time.Microsecond))
}

// Report summarises a run.
type Report struct {
	// Times is the component breakdown.
	Times Times
	// Sites, SNPs, MeanDepth and Observations as in the SOAPsnp report.
	Sites        int
	SNPs         int64
	MeanDepth    float64
	Observations int64
	// NonZeroHist is the Figure 4(b) sparsity histogram (length of the
	// base_word array per site).
	NonZeroHist []int64
	// SortStats aggregates the likelihood_sort work (GPU mode).
	SortStats sortnet.Stats
	// LikeliStats aggregates the device counters of the likelihood_comp
	// kernels only — the Table III measurement (GPU mode).
	LikeliStats gpu.Stats
	// OutputBytes is the number of result bytes written.
	OutputBytes int64
	// PeakDeviceBytes is the high-water device memory use (GPU mode).
	PeakDeviceBytes int64
	// Prefetch reports the window-prefetch counters when Config.Prefetch
	// is set (zero otherwise): Fetch is read_site work that overlapped
	// computation, Wait the residual blocking left in Times.Read.
	Prefetch pipeline.PrefetchStats
	// Quarantined lists the windows abandoned under Config.Quarantine; a
	// non-empty list marks the run's output as partial.
	Quarantined []pipeline.Quarantine
	// CalSkipped counts malformed records skipped during the calibration
	// pass under Config.Quarantine.
	CalSkipped int
}

// Partial reports whether the run degraded: any quarantined window or
// skipped calibration record means the output is incomplete.
func (r *Report) Partial() bool {
	return len(r.Quarantined) > 0 || r.CalSkipped > 0
}

// sparsityHistSize caps the sparsity histogram domain.
const sparsityHistSize = 257

// PackWord encodes an observation as a 32-bit base_word. The quality field
// stores 63-score so that sorting words ascending yields Algorithm 1's
// canonical order: base ascending, score descending, coordinate ascending,
// strand ascending. The uniq flag rides spare bit 18, above the sort key:
// counting strips it (see wordUniqBit) before the words enter a Batches,
// so it never perturbs the canonical order.
func PackWord(o pipeline.Obs) uint32 {
	w := uint32(o.Base)<<15 | uint32(dna.QMax-1-uint32(o.Qual))<<9 | uint32(o.Coord)<<1 | uint32(o.Strand)
	if o.Uniq {
		w |= wordUniqBit
	}
	return w
}

// UnpackWord decodes a base_word.
func UnpackWord(w uint32) pipeline.Obs {
	return pipeline.Obs{
		Base:   dna.Base(w >> 15 & 3),
		Qual:   dna.Quality(dna.QMax - 1 - w>>9&(dna.QMax-1)),
		Coord:  uint8(w >> 1 & (bayes.MaxReadLen - 1)),
		Strand: uint8(w & 1),
		Uniq:   w&wordUniqBit != 0,
	}
}

// wordKeyBits is the width of a base_word key (2+6+8+1).
const wordKeyBits = 17

// wordUniqBit flags a unique-hit observation. It sits above the sort key,
// where it would dominate any comparison of full 32-bit words, so the
// counting component masks it off when scattering words into the sort
// batches; only the flattened read_site output carries it.
const wordUniqBit = 1 << 18
