package gsnp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"gsnp/internal/dna"
	"gsnp/internal/gpu"
	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

// directWin is one pre-fetched window for direct runWindow calls.
type directWin struct {
	rs         []reads.AlignedRead
	start, end int
}

// newDirectEngine builds an engine ready for direct runWindow calls —
// the setup Run normally performs (tables, priors, output sink, compute
// pool) — plus the dataset's windows with their reads pre-fetched, so
// tests and benchmarks can measure components 3-7 in isolation.
func newDirectEngine(tb testing.TB, ds *seqsim.Dataset, cfg Config) (*Engine, []directWin) {
	tb.Helper()
	cfg.Chr = ds.Spec.Name
	cfg.Ref = ds.Ref.Seq
	eng, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	eng.tables = testTables()
	for b := dna.Base(0); b < dna.NBases; b++ {
		eng.novelPriors[b] = eng.cfg.Priors.LogPriors(b, nil)
	}
	eng.rep = &Report{Sites: len(eng.cfg.Ref), NonZeroHist: make([]int64, sparsityHistSize)}
	eng.textOut = snpio.NewResultWriter(io.Discard)
	if eng.cfg.Mode == ModeGPU {
		if err := eng.loadTables(); err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(eng.unloadTables)
	} else if eng.cfg.ComputeWorkers > 1 {
		eng.pool = newComputePool(eng.cfg.ComputeWorkers)
		tb.Cleanup(eng.pool.stop)
	}

	it, err := pipeline.MemSource(ds.Reads).Open()
	if err != nil {
		tb.Fatal(err)
	}
	win := pipeline.NewWindower(it)
	var wins []directWin
	for start := 0; start < len(eng.cfg.Ref); start += eng.cfg.Window {
		end := start + eng.cfg.Window
		if end > len(eng.cfg.Ref) {
			end = len(eng.cfg.Ref)
		}
		rs, err := win.Reads(start, end)
		if err != nil {
			tb.Fatal(err)
		}
		wins = append(wins, directWin{rs: rs, start: start, end: end})
	}
	return eng, wins
}

func TestComputeWorkersByteIdentity(t *testing.T) {
	// The tentpole guarantee: sharding likelihood_comp + posterior over
	// sites must not perturb a single output byte, because shards write
	// disjoint index ranges with per-worker dep_count scratch.
	// forceShardWorkers pins the dispatch width so the parallel pool path
	// is really exercised even on hosts where the adaptive cap (CPU count,
	// minShardSites) would serialize these small windows.
	ds := testDataset(t, 3000, 9, 555)
	_, want := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 700, ComputeWorkers: 1})
	for _, cw := range []int{2, 4, 7} {
		_, got := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 700, ComputeWorkers: cw, forceShardWorkers: cw})
		if !bytes.Equal(got, want) {
			t.Errorf("ComputeWorkers=%d output differs from single-threaded", cw)
		}
	}
	// The adaptive path (no forcing): whatever width it picks, bytes match.
	_, gotAdaptive := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 700, ComputeWorkers: 4})
	if !bytes.Equal(gotAdaptive, want) {
		t.Error("adaptive ComputeWorkers output differs from single-threaded")
	}
	// Stacked with the other concurrency knobs.
	_, got := runGSNP(t, ds, Config{Mode: ModeCPU, Window: 700, ComputeWorkers: 4, forceShardWorkers: 4, SortWorkers: 4, Prefetch: true})
	if !bytes.Equal(got, want) {
		t.Error("ComputeWorkers+SortWorkers+Prefetch output differs from serial")
	}
}

func TestEffectiveComputeWorkers(t *testing.T) {
	mp := runtime.GOMAXPROCS(0)
	cases := []struct {
		k, n, want int
	}{
		// Tiny windows serialize regardless of the request.
		{k: 8, n: minShardSites - 1, want: 1},
		{k: 8, n: 1, want: 1},
		// One shard's worth of sites: still serial (floor is 1).
		{k: 8, n: minShardSites, want: 1},
		// Large window: bounded by the host CPU count only.
		{k: 4, n: 100 * minShardSites, want: min(4, mp)},
		{k: 1, n: 100 * minShardSites, want: 1},
	}
	for _, c := range cases {
		if got := effectiveComputeWorkers(c.k, c.n); got != c.want {
			t.Errorf("effectiveComputeWorkers(%d, %d) = %d, want %d (GOMAXPROCS=%d)", c.k, c.n, got, c.want, mp)
		}
	}
}

// TestComputeWorkersNoRegression pins the cw=4 bugfix: with the adaptive
// cap in place, requesting more compute workers than the window or host
// can use must not make the bench window slower than serial. The old
// behaviour dispatched pool shards unconditionally, and on a small host
// that pure overhead made cw=4 measurably slower than cw=1.
func TestComputeWorkersNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrB", Length: 40000, Depth: 10, MaskFraction: 0.1, Seed: 7,
	})
	measure := func(cw int) float64 {
		eng, wins := newDirectEngine(t, ds, Config{Mode: ModeCPU, Window: 8000, SortWorkers: 1, ComputeWorkers: cw})
		runAll := func() {
			for _, dw := range wins {
				if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
					t.Fatal(err)
				}
			}
		}
		runAll() // warm the arena
		best := math.Inf(1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			runAll()
			if d := time.Since(start).Seconds(); d < best {
				best = d
			}
		}
		return best
	}
	t1 := measure(1)
	t4 := measure(4)
	// Generous slack: the fix makes cw=4 at worst equal to cw=1 (it
	// serializes when no parallelism is available), so anything beyond
	// noise is a regression.
	if t4 > t1*1.25 {
		t.Errorf("cw=4 window pass took %.2fms, cw=1 took %.2fms: adaptive cap failed to remove the dispatch overhead", t4*1e3, t1*1e3)
	}
	t.Logf("bench window pass: cw=1 %.2fms, cw=4 %.2fms", t1*1e3, t4*1e3)
}

func TestArenaReuseAcrossRuns(t *testing.T) {
	// One arena handed through Config across consecutive runs — the
	// whole-genome scheduler's per-worker usage — must keep outputs
	// byte-identical while the working set is recycled, including across
	// datasets of different sizes and across CPU/GPU modes.
	dsA := testDataset(t, 2500, 9, 900)
	dsB := testDataset(t, 1200, 6, 901)
	_, wantA := runGSNP(t, dsA, Config{Mode: ModeCPU, Window: 600})
	_, wantB := runGSNP(t, dsB, Config{Mode: ModeCPU, Window: 600})

	arena := NewArena()
	for run := 0; run < 2; run++ {
		_, gotA := runGSNP(t, dsA, Config{Mode: ModeCPU, Window: 600, Arena: arena, ComputeWorkers: 2})
		if !bytes.Equal(gotA, wantA) {
			t.Fatalf("run %d: recycled-arena output differs (dataset A)", run)
		}
		_, gotB := runGSNP(t, dsB, Config{Mode: ModeCPU, Window: 600, Arena: arena})
		if !bytes.Equal(gotB, wantB) {
			t.Fatalf("run %d: recycled-arena output differs (dataset B, shrunk window set)", run)
		}
	}

	// The same arena feeding a GPU engine next: host staging reuse must
	// not leak CPU-run state into the kernels' inputs.
	_, wantGPU := runGSNP(t, dsA, Config{Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 600})
	_, gotGPU := runGSNP(t, dsA, Config{Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 600, Arena: arena})
	if !bytes.Equal(gotGPU, wantGPU) {
		t.Error("arena handed from CPU to GPU engine changed GPU output")
	}
}

// TestRunWindowSteadyStateAllocsCPU is the allocation regression gate of
// the window recycler: once the arena is warm, a CPU-mode window must run
// components 3-7 with at most a handful of allocations (the acceptance
// bound is 8; the steady state is expected to be ~0). SortWorkers is
// pinned to 1 — parallel sort spawns its goroutines per call and is gated
// separately by the byte-identity tests.
func TestRunWindowSteadyStateAllocsCPU(t *testing.T) {
	ds := testDataset(t, 4000, 10, 321)
	eng, wins := newDirectEngine(t, ds, Config{Mode: ModeCPU, Window: 800, SortWorkers: 1, ComputeWorkers: 4, forceShardWorkers: 4})

	runAll := func() {
		for _, dw := range wins {
			if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the arena: every buffer reaches its high-water capacity.
	runAll()
	runAll()

	perWindow := testing.AllocsPerRun(5, runAll) / float64(len(wins))
	if perWindow > 8 {
		t.Errorf("steady-state CPU window allocates %.1f times (gate: 8)", perWindow)
	}
	t.Logf("steady-state CPU allocs/window: %.2f over %d windows", perWindow, len(wins))
}

// TestRunWindowSteadyStateAllocsGPU is the GPU counterpart of the CPU
// allocation gate: with the device free-lists (buffer storage, block
// scratch) and the arena staging warm, a GPU-mode window must run within a
// hard allocation budget. The remaining steady-state allocations are the
// per-launch kernel closures and the Buffer descriptor structs — a few
// per launch, ~15 launches per window — so the budget is a small constant,
// down from the ~560K allocs/window of the unrecycled simulator.
func TestRunWindowSteadyStateAllocsGPU(t *testing.T) {
	const budget = 256
	ds := testDataset(t, 2400, 10, 322)
	eng, wins := newDirectEngine(t, ds, Config{Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 800})

	runAll := func() {
		for _, dw := range wins {
			if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the arena, the device free-lists and the launch scratch.
	runAll()
	runAll()

	perWindow := testing.AllocsPerRun(5, runAll) / float64(len(wins))
	if perWindow > budget {
		t.Errorf("steady-state GPU window allocates %.1f times (gate: %d)", perWindow, budget)
	}
	t.Logf("steady-state GPU allocs/window: %.2f over %d windows", perWindow, len(wins))
}

// TestRunWindowSteadyStateStagingGPU gates pointer stability of the GPU
// window's host staging: after a warm-up pass, re-running the same windows
// must leave every staging buffer's backing array in place — reuse, not
// equal-sized reallocation.
func TestRunWindowSteadyStateStagingGPU(t *testing.T) {
	ds := testDataset(t, 2400, 10, 322)
	eng, wins := newDirectEngine(t, ds, Config{Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 800})

	runAll := func() {
		for _, dw := range wins {
			if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
				t.Fatal(err)
			}
		}
	}
	runAll()
	runAll()

	w := &eng.arena.w
	before := [][]uint32{w.hostBounds[:1], w.hostStats[:1], w.hostBest[:1], w.hostSecond[:1], w.hostQual[:1], w.words.Data[:1]}
	tlBefore := &w.typeLikely[0]
	runAll()
	after := [][]uint32{w.hostBounds[:1], w.hostStats[:1], w.hostBest[:1], w.hostSecond[:1], w.hostQual[:1], w.words.Data[:1]}
	names := []string{"hostBounds", "hostStats", "hostBest", "hostSecond", "hostQual", "words.Data"}
	for i := range before {
		if &before[i][0] != &after[i][0] {
			t.Errorf("GPU staging buffer %s was reallocated in steady state", names[i])
		}
	}
	if tlBefore != &w.typeLikely[0] {
		t.Error("typeLikely was reallocated in steady state")
	}
}

func TestCountCPUStripsUniqBit(t *testing.T) {
	// The uniq flag rides above the sort key; counting must decode it into
	// the per-site summaries and strip it from the sort batches so the
	// canonical order is untouched.
	ds := testDataset(t, 600, 8, 77)
	eng, err := New(Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Mode: ModeCPU, Window: 600})
	if err != nil {
		t.Fatal(err)
	}
	w := buildTestWindow(ds, 600)
	flagged := 0
	for _, word := range w.obsWord {
		if word&wordUniqBit != 0 {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("dataset produced no unique-hit observations; test is vacuous")
	}
	eng.countCPU(w)
	for _, word := range w.words.Data {
		if word&wordUniqBit != 0 {
			t.Fatal("uniq bit leaked into the sort batches")
		}
	}
	var uniq int
	for site := 0; site < w.n; site++ {
		for b := 0; b < int(dna.NBases); b++ {
			uniq += int(w.counts[site].Uniq[b])
		}
	}
	if uniq != flagged {
		t.Errorf("counting decoded %d uniq observations from packed words, want %d", uniq, flagged)
	}
}

func TestTempIterClosesOnReadError(t *testing.T) {
	// A corrupt temporary input must not leak the descriptor: the iterator
	// closes the file on any error, not only io.EOF.
	f, err := os.CreateTemp(t.TempDir(), "gsnp-bad-*.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("NOTMAGIC-and-then-garbage"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	it := &tempIter{f: f, tr: snpio.NewTempReader(f)}
	_, nerr := it.Next()
	if nerr == nil || errors.Is(nerr, io.EOF) {
		t.Fatalf("corrupt stream returned %v, want a parse error", nerr)
	}
	if it.f != nil {
		t.Error("iterator kept the file handle after a read error")
	}
	if cerr := f.Close(); !errors.Is(cerr, os.ErrClosed) {
		t.Errorf("file was not closed on read error (second Close: %v)", cerr)
	}
	// Further Next calls must not panic on the released handle.
	if _, again := it.Next(); again == nil {
		t.Error("Next after failure returned nil error")
	}
}

// BenchmarkRunWindowCPU measures components 3-7 of one CPU window (one op
// = one window, so ns/op is ns/window) with the arena warm, at the
// single-threaded paper configuration and with site-parallel compute.
func BenchmarkRunWindowCPU(b *testing.B) {
	for _, cw := range []int{1, 4} {
		b.Run(fmt.Sprintf("cw=%d", cw), func(b *testing.B) {
			ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
				Name: "chrB", Length: 40000, Depth: 10, MaskFraction: 0.1, Seed: 7,
			})
			eng, wins := newDirectEngine(b, ds, Config{Mode: ModeCPU, Window: 8000, SortWorkers: 1, ComputeWorkers: cw})
			for _, dw := range wins { // warm the arena
				if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
					b.Fatal(err)
				}
			}
			sites := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dw := wins[i%len(wins)]
				if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
					b.Fatal(err)
				}
				sites += dw.end - dw.start
			}
			b.ReportMetric(float64(sites)/b.Elapsed().Seconds(), "sites/s")
		})
	}
}

// BenchmarkRunWindowGPU is the GPU counterpart. With the device free-lists
// and phased kernel execution in place the simulator itself recycles its
// per-launch machinery, so allocs/op is a real pipeline metric here,
// gated hard by TestRunWindowSteadyStateAllocsGPU above.
func BenchmarkRunWindowGPU(b *testing.B) {
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrB", Length: 16000, Depth: 10, MaskFraction: 0.1, Seed: 7,
	})
	eng, wins := newDirectEngine(b, ds, Config{Mode: ModeGPU, Device: gpu.NewDevice(gpu.M2050()), Window: 8000})
	for _, dw := range wins {
		if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
			b.Fatal(err)
		}
	}
	sites := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dw := wins[i%len(wins)]
		if err := eng.runWindow(dw.rs, dw.start, dw.end); err != nil {
			b.Fatal(err)
		}
		sites += dw.end - dw.start
	}
	b.ReportMetric(float64(sites)/b.Elapsed().Seconds(), "sites/s")
}
