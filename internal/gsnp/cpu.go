package gsnp

import (
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/pipeline"
	"gsnp/internal/sortnet"
)

// runWindowCPU executes components 3-7 of one window on the host: the
// GSNP_CPU configuration of the paper's figures — the same sparse
// algorithm and tables as the GPU path, sequential quicksort instead of
// the batch bitonic network. Components 4b-5 shard sites across
// Config.ComputeWorkers; each shard writes a disjoint index range, so
// output is byte-identical at every worker count.
func (e *Engine) runWindowCPU(w *window) error {
	rep := e.rep

	// Component 3: counting — pack the observations into per-site
	// base_word segments (two-pass: count, then scatter) and accumulate
	// the per-site summaries.
	t0 := time.Now()
	e.countCPU(w)
	rep.Times.Count += time.Since(t0)

	// Component 4a: likelihood_sort — restore the canonical order. The
	// worker count comes from Config.SortWorkers (GOMAXPROCS by default;
	// the paper-comparison harness pins it to 1).
	t0 = time.Now()
	sortnet.ParallelQuicksort(&w.words, e.cfg.SortWorkers)
	rep.Times.LikeliSort += time.Since(t0)
	rep.SortStats.ElementsSorted += int64(len(w.words.Data))

	// Component 4b: likelihood_comp — Algorithm 4 with the new score
	// table, sharded over sites.
	t0 = time.Now()
	w.typeLikely = grow(w.typeLikely, w.n*dna.NGenotypes)
	e.runSharded(w, jobLikelihood)
	rep.Times.LikeliComp += time.Since(t0)

	// Component 5: posterior, sharded over sites. The per-site priors are
	// computed inside the pass (a stack vector per site) instead of being
	// materialised as a w.n*NGenotypes temporary first.
	t0 = time.Now()
	w.bestRank = grow(w.bestRank, w.n)
	w.secondRank = grow(w.secondRank, w.n)
	w.quality = grow(w.quality, w.n)
	e.runSharded(w, jobPosterior)
	rep.Times.Post += time.Since(t0)

	// Component 6: output.
	t0 = time.Now()
	if err := e.output(w); err != nil {
		return err
	}
	rep.Times.Output += time.Since(t0)

	// Component 7: recycle — with the sparse representation and the arena
	// there is nothing to sweep: slice lengths reset at the next window,
	// capacity persists, and the tagged dep_count arrays invalidate by
	// epoch.
	t0 = time.Now()
	w.obsSite, w.obsWord = w.obsSite[:0], w.obsWord[:0]
	rep.Times.Recycle += time.Since(t0)
	return nil
}

// countCPU builds the per-site base_word segments and summaries. The
// observation quality and uniq flag are decoded from the packed word; the
// uniq bit sits above the 17-bit sort key and is stripped before the word
// enters the sort batches, preserving the canonical ascending order.
func (e *Engine) countCPU(w *window) {
	n := w.n
	w.counts = grow(w.counts, n)
	clear(w.counts)
	w.sizes = grow(w.sizes, n)
	clear(w.sizes)
	for _, s := range w.obsSite {
		w.sizes[s]++
	}
	w.words.Reset(n, len(w.obsWord))
	bounds := w.words.Bounds
	bounds[0] = 0
	for i := 0; i < n; i++ {
		bounds[i+1] = bounds[i] + w.sizes[i]
	}
	w.cursor = grow(w.cursor, n)
	clear(w.cursor)
	data := w.words.Data
	for k, s := range w.obsSite {
		word := w.obsWord[k]
		data[bounds[s]+w.cursor[s]] = word &^ wordUniqBit
		w.cursor[s]++
		w.counts[s].Add(pipeline.Obs{
			Base: dna.Base(word >> 15 & 3),
			Qual: dna.Quality(dna.QMax - 1 - word>>9&(dna.QMax-1)),
			Uniq: word&wordUniqBit != 0,
		})
	}
}

// likelihoodCompCPU is the sparse likelihood computation (Algorithm 4) on
// the host over the whole window, single-threaded — the entry point tests
// and ablations use directly. runWindowCPU shards the same per-range
// kernel (likelihoodRange) across compute workers instead.
func (e *Engine) likelihoodCompCPU(w *window) {
	w.typeLikely = grow(w.typeLikely, w.n*dna.NGenotypes)
	e.ar().ensureWorkers(1, e.cfg.ReadLen)
	e.likelihoodRange(w, 0, w.n, 0)
}

// likelihoodRange runs Algorithm 4 over sites [lo, hi) with worker's
// dep_count scratch, using the new score table so no logarithms run at
// call time. dep_count entries carry an epoch tag in the high half-word,
// so re-initialisation per base group (lines 8-10 of Algorithm 4) is one
// epoch increment instead of a memory sweep. Sites are independent — the
// scratch is the only cross-site state, and it is per-worker — so ranges
// run concurrently with bit-identical results.
func (e *Engine) likelihoodRange(w *window, lo, hi, worker int) {
	wk := &e.arena.workers[worker]
	readLen := e.cfg.ReadLen
	newP := e.tables.NewP
	adj := e.tables.Adjust

	for site := lo; site < hi; site++ {
		seg := w.words.Array(site)
		tl := w.typeLikely[site*dna.NGenotypes : (site+1)*dna.NGenotypes]
		for r := range tl {
			tl[r] = 0
		}
		lastBase := -1
		for _, word := range seg {
			base := int(word >> 15 & 3)
			score := int(dna.QMax - 1 - word>>9&(dna.QMax-1))
			coord := int(word >> 1 & (bayes.MaxReadLen - 1))
			strand := int(word & 1)
			if base != lastBase {
				wk.epoch++
				if wk.epoch<<16 == 0 { // tag wrapped: flush stale entries
					clear(wk.dep)
					wk.epoch = 1
				}
				lastBase = base
			}
			tag := wk.epoch << 16
			slot := strand*readLen + coord
			entry := wk.dep[slot]
			cnt := uint32(0)
			if entry&0xFFFF0000 == tag {
				cnt = entry & 0xFFFF
			}
			cnt++
			wk.dep[slot] = tag | cnt
			qadj := adj.Adjust(dna.Quality(score), uint16(cnt))
			idx := bayes.NewPMatrixIndex(qadj, coord, dna.Base(base), 0)
			for r := 0; r < dna.NGenotypes; r++ {
				tl[r] += newP[idx+r]
			}
		}
	}
}

// posteriorRange runs component 5 over sites [lo, hi): combine the ten
// genotype log-likelihoods with the log priors — computed here per site,
// fused into the pass — and select the best and second-best genotypes.
func (e *Engine) posteriorRange(w *window, lo, hi int) {
	cfg := &e.cfg
	for site := lo; site < hi; site++ {
		pos := w.start + site
		ref := cfg.Ref[pos]
		var pri [dna.NGenotypes]float64
		if known := cfg.Known[pos]; known != nil {
			pri = cfg.Priors.LogPriors(ref, known)
		} else {
			pri = e.novelPriors[ref]
		}
		posteriorSite(w.typeLikely[site*dna.NGenotypes:(site+1)*dna.NGenotypes],
			pri[:], &w.bestRank[site], &w.secondRank[site], &w.quality[site])
	}
}

// posteriorSite selects the best and second-best genotypes from the ten
// log posteriors. The same comparison sequence runs in the GPU posterior
// kernel, keeping results identical across engines; dense-engine parity is
// guaranteed because bayes.Posterior performs the same loop.
func posteriorSite(tl, priors []float64, best, second, quality *uint8) {
	b, s := -1, -1
	var lb, ls float64
	for r := 0; r < dna.NGenotypes; r++ {
		lp := tl[r] + priors[r]
		switch {
		case b < 0 || lp > lb:
			s, ls = b, lb
			b, lb = r, lp
		case s < 0 || lp > ls:
			s, ls = r, lp
		}
	}
	*best = uint8(b)
	*second = uint8(s)
	q := 10 * (lb - ls)
	if !(q >= 0) { // NaN or negative
		q = 0
	}
	if q > 99 {
		q = 99
	}
	*quality = uint8(q)
}
