package gsnp

import (
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/pipeline"
	"gsnp/internal/sortnet"
)

// runWindowCPU executes components 3-7 of one window on the host: the
// GSNP_CPU configuration of the paper's figures — the same sparse
// algorithm and tables as the GPU path, sequential quicksort instead of
// the batch bitonic network.
func (e *Engine) runWindowCPU(w *window) error {
	rep := e.rep

	// Component 3: counting — pack the observations into per-site
	// base_word segments (two-pass: count, then scatter) and accumulate
	// the per-site summaries.
	t0 := time.Now()
	e.countCPU(w)
	rep.Times.Count += time.Since(t0)

	// Component 4a: likelihood_sort — restore the canonical order. The
	// worker count comes from Config.SortWorkers (GOMAXPROCS by default;
	// the paper-comparison harness pins it to 1).
	t0 = time.Now()
	sortnet.ParallelQuicksort(&w.words, e.cfg.SortWorkers)
	rep.Times.LikeliSort += time.Since(t0)
	rep.SortStats.ElementsSorted += int64(len(w.words.Data))

	// Component 4b: likelihood_comp — Algorithm 4 with the new score
	// table.
	t0 = time.Now()
	e.likelihoodCompCPU(w)
	rep.Times.LikeliComp += time.Since(t0)

	// Component 5: posterior.
	t0 = time.Now()
	priors := e.buildPriors(w)
	w.bestRank = make([]uint8, w.n)
	w.secondRank = make([]uint8, w.n)
	w.quality = make([]uint8, w.n)
	for site := 0; site < w.n; site++ {
		posteriorSite(w.typeLikely[site*dna.NGenotypes:(site+1)*dna.NGenotypes],
			priors[site*dna.NGenotypes:(site+1)*dna.NGenotypes],
			&w.bestRank[site], &w.secondRank[site], &w.quality[site])
	}
	rep.Times.Post += time.Since(t0)

	// Component 6: output.
	t0 = time.Now()
	if err := e.output(w); err != nil {
		return err
	}
	rep.Times.Output += time.Since(t0)

	// Component 7: recycle — with the sparse representation only the
	// window's slices are dropped; the tagged dep_count array needs no
	// clearing at all.
	t0 = time.Now()
	w.obsSite, w.obsWord, w.obsQual, w.obsUniq = nil, nil, nil, nil
	rep.Times.Recycle += time.Since(t0)
	return nil
}

// countCPU builds the per-site base_word segments and summaries.
func (e *Engine) countCPU(w *window) {
	n := w.n
	w.counts = make([]pipeline.SiteCounts, n)
	sizes := make([]int32, n+1)
	for _, s := range w.obsSite {
		sizes[s+1]++
	}
	bounds := make([]int32, n+1)
	for i := 0; i < n; i++ {
		bounds[i+1] = bounds[i] + sizes[i+1]
	}
	data := make([]uint32, len(w.obsWord))
	cursor := make([]int32, n)
	for k, s := range w.obsSite {
		data[bounds[s]+cursor[s]] = w.obsWord[k]
		cursor[s]++
		o := pipeline.Obs{
			Base: dna.Base(w.obsWord[k] >> 15 & 3),
			Qual: dna.Quality(w.obsQual[k]),
			Uniq: w.obsUniq[k] == 1,
		}
		w.counts[s].Add(o)
	}
	w.words = sortnet.Batches{Data: data, Bounds: bounds}
}

// likelihoodCompCPU is the sparse likelihood computation (Algorithm 4) on
// the host, using the new score table so no logarithms run at call time.
// dep_count entries carry an epoch tag in the high half-word, so
// re-initialisation per base group (lines 8-10 of Algorithm 4) is one
// epoch increment instead of a memory sweep.
func (e *Engine) likelihoodCompCPU(w *window) {
	readLen := e.cfg.ReadLen
	if len(e.depCount) < 2*readLen {
		e.depCount = make([]uint32, 2*readLen)
		e.depEpoch = 0
	}
	newP := e.tables.NewP
	adj := e.tables.Adjust
	w.typeLikely = make([]float64, w.n*dna.NGenotypes)

	for site := 0; site < w.n; site++ {
		seg := w.words.Array(site)
		tl := w.typeLikely[site*dna.NGenotypes : (site+1)*dna.NGenotypes]
		lastBase := -1
		for _, word := range seg {
			base := int(word >> 15 & 3)
			score := int(dna.QMax - 1 - word>>9&(dna.QMax-1))
			coord := int(word >> 1 & (bayes.MaxReadLen - 1))
			strand := int(word & 1)
			if base != lastBase {
				e.depEpoch++
				if e.depEpoch<<16 == 0 { // tag wrapped: flush stale entries
					clear(e.depCount)
					e.depEpoch = 1
				}
				lastBase = base
			}
			tag := e.depEpoch << 16
			slot := strand*readLen + coord
			entry := e.depCount[slot]
			cnt := uint32(0)
			if entry&0xFFFF0000 == tag {
				cnt = entry & 0xFFFF
			}
			cnt++
			e.depCount[slot] = tag | cnt
			qadj := adj.Adjust(dna.Quality(score), uint16(cnt))
			idx := bayes.NewPMatrixIndex(qadj, coord, dna.Base(base), 0)
			for r := 0; r < dna.NGenotypes; r++ {
				tl[r] += newP[idx+r]
			}
		}
	}
}

// posteriorSite selects the best and second-best genotypes from the ten
// log posteriors. The same comparison sequence runs in the GPU posterior
// kernel, keeping results identical across engines; dense-engine parity is
// guaranteed because bayes.Posterior performs the same loop.
func posteriorSite(tl, priors []float64, best, second, quality *uint8) {
	b, s := -1, -1
	var lb, ls float64
	for r := 0; r < dna.NGenotypes; r++ {
		lp := tl[r] + priors[r]
		switch {
		case b < 0 || lp > lb:
			s, ls = b, lb
			b, lb = r, lp
		case s < 0 || lp > ls:
			s, ls = r, lp
		}
	}
	*best = uint8(b)
	*second = uint8(s)
	q := 10 * (lb - ls)
	if !(q >= 0) { // NaN or negative
		q = 0
	}
	if q > 99 {
		q = 99
	}
	*quality = uint8(q)
}
