package gsnp

import (
	"context"
	"fmt"

	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
)

// Fault containment for the windowed pass. The failure domain is one
// window: a malformed record surfacing from read_site or a panic anywhere
// in components 3-7 abandons that window's output and the run moves on,
// recording what happened and where. Failures the window boundary cannot
// contain — output-sink errors, I/O errors, cancellation — still abort the
// run so the task-level retry policy (internal/sched) can handle them.
// The classification itself (pipeline.Containable) and the stream
// cancellation wrapper (pipeline.SourceWithContext) are shared with the
// soapsnp baseline engine.

// windowAttempt runs the window hook and components 3-7 for one window,
// converting a panic into a *pipeline.PanicError when quarantine is
// enabled (without quarantine, panics propagate and crash as before).
func (e *Engine) windowAttempt(ctx context.Context, rs []reads.AlignedRead, start, end int) (err error) {
	if e.cfg.Quarantine {
		defer func() {
			if pe := pipeline.Recovered(recover()); pe != nil {
				err = pe
			}
		}()
	}
	if e.cfg.WindowHook != nil {
		if herr := e.cfg.WindowHook(ctx, start/e.cfg.Window, start, end); herr != nil {
			return herr
		}
	}
	return e.runWindow(rs, start, end)
}

// quarantineOrFail records a containable window failure and lets the run
// continue (nil return); non-containable failures, or any failure without
// Config.Quarantine, come back wrapped for the caller to abort with.
func (e *Engine) quarantineOrFail(start, end int, err error) error {
	if e.cfg.Quarantine && pipeline.Containable(err) {
		e.rep.Quarantined = append(e.rep.Quarantined,
			pipeline.NewQuarantine(e.cfg.Chr, start/e.cfg.Window, start, end, err))
		return nil
	}
	return fmt.Errorf("gsnp: window [%d,%d): %w", start, end, err)
}
