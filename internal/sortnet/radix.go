package sortnet

import "gsnp/internal/gpu"

// RadixSortU32 sorts a device buffer ascending with an LSD radix sort,
// one bit per pass (the classic split primitive: flag, scan, scatter).
// keyBits bounds the key width; pass 32 for arbitrary values or 17 for
// base_word keys. This is the kind of device-wide sort Thrust provides;
// GSNP's sorting study uses it per array as the sorts-arrays-sequentially
// baseline of Figure 7(a).
func RadixSortU32(d *gpu.Device, buf *gpu.Buffer[uint32], keyBits int) {
	n := buf.Len()
	if n <= 1 {
		return
	}
	if keyBits <= 0 || keyBits > 32 {
		keyBits = 32
	}
	flags := gpu.Alloc[uint32](d, n)
	defer flags.Free()
	pos0 := gpu.Alloc[uint32](d, n)
	defer pos0.Free()
	tmp := gpu.Alloc[uint32](d, n)
	defer tmp.Free()

	src, dst := buf, tmp
	block := 256
	grid := (n + block - 1) / block
	for bit := 0; bit < keyBits; bit++ {
		shift := uint(bit)
		s := src
		d.MustLaunch(gpu.LaunchConfig{Name: "radix_flag", Grid: grid, Block: block}, func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			t.Exec(2)
			gpu.St(t, flags, i, 1-(gpu.Ld(t, s, i)>>shift&1))
		})
		zeros := gpu.ExclusiveScanU32(d, flags, pos0)
		z := uint32(zeros)
		dd := dst
		d.MustLaunch(gpu.LaunchConfig{Name: "radix_scatter", Grid: grid, Block: block}, func(t *gpu.Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			v := gpu.Ld(t, s, i)
			p0 := gpu.Ld(t, pos0, i)
			t.Exec(3)
			var idx uint32
			if v>>shift&1 == 0 {
				idx = p0
			} else {
				// Ones before i = i - zeros-before-i.
				idx = z + uint32(i) - p0
			}
			gpu.St(t, dd, int(idx), v)
		})
		src, dst = dst, src
	}
	if src != buf {
		copy(buf.Host(), src.Host())
	}
}

// SequentialRadixGPU sorts each sub-array with a full device radix sort,
// one array at a time. Each tiny sort underutilises the hardware and pays
// dozens of kernel launches, reproducing the very low throughput of the
// per-array radix baseline in Figure 7(a).
func SequentialRadixGPU(d *gpu.Device, b *Batches, keyBits int) Stats {
	var st Stats
	start := d.Stats()
	for i := 0; i < b.NumArrays(); i++ {
		arr := b.Array(i)
		if len(arr) <= 1 {
			continue
		}
		buf := gpu.Alloc[uint32](d, len(arr))
		buf.CopyIn(arr)
		RadixSortU32(d, buf, keyBits)
		buf.CopyOut(arr)
		buf.Free()
		st.ElementsSorted += int64(len(arr))
	}
	end := d.Stats()
	st.SimSeconds = end.Sub(start).SimSeconds
	st.Launches = end.Kernels - start.Kernels
	return st
}
