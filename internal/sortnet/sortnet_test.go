package sortnet

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gsnp/internal/gpu"
)

func testDevice() *gpu.Device { return gpu.NewDevice(gpu.M2050()) }

// randomBatches builds arrays with the size distribution of per-site
// base_word arrays: geometric-ish around a mean depth.
func randomBatches(numArrays, meanSize int, seed int64) *Batches {
	rng := rand.New(rand.NewSource(seed))
	b := &Batches{Bounds: make([]int32, 1, numArrays+1)}
	for i := 0; i < numArrays; i++ {
		size := 0
		switch rng.Intn(10) {
		case 0: // empty site
		case 1, 2:
			size = 1 + rng.Intn(meanSize/2+1)
		default:
			size = meanSize/2 + rng.Intn(meanSize+1)
		}
		for k := 0; k < size; k++ {
			b.Data = append(b.Data, uint32(rng.Intn(1<<17)))
		}
		b.Bounds = append(b.Bounds, int32(len(b.Data)))
	}
	return b
}

func clone(b *Batches) *Batches {
	return &Batches{
		Data:   append([]uint32(nil), b.Data...),
		Bounds: append([]int32(nil), b.Bounds...),
	}
}

// verifySorted checks every sub-array is ascending and a permutation of
// the reference batches.
func verifySorted(t *testing.T, name string, got, orig *Batches) {
	t.Helper()
	if len(got.Data) != len(orig.Data) {
		t.Fatalf("%s: data length changed", name)
	}
	for i := 0; i < got.NumArrays(); i++ {
		arr := got.Array(i)
		for k := 1; k < len(arr); k++ {
			if arr[k-1] > arr[k] {
				t.Fatalf("%s: array %d not sorted at %d: %v", name, i, k, arr)
			}
		}
		want := append([]uint32(nil), orig.Array(i)...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for k := range want {
			if arr[k] != want[k] {
				t.Fatalf("%s: array %d not a permutation at %d", name, i, k)
			}
		}
	}
}

func TestMultipassBitonic(t *testing.T) {
	d := testDevice()
	orig := randomBatches(500, 12, 1)
	b := clone(orig)
	st := MultipassBitonic(d, b)
	verifySorted(t, "multipass", b, orig)
	if st.Launches == 0 || st.SimSeconds <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestSinglePassBitonic(t *testing.T) {
	d := testDevice()
	orig := randomBatches(500, 12, 2)
	b := clone(orig)
	st := SinglePassBitonic(d, b)
	verifySorted(t, "singlepass", b, orig)
	if st.ElementsSorted == 0 {
		t.Error("no elements sorted")
	}
}

func TestNonEqBitonic(t *testing.T) {
	d := testDevice()
	orig := randomBatches(300, 12, 3)
	b := clone(orig)
	NonEqBitonic(d, b)
	verifySorted(t, "noneq", b, orig)
}

func TestParallelQuicksort(t *testing.T) {
	orig := randomBatches(1000, 15, 4)
	b := clone(orig)
	ParallelQuicksort(b, 8)
	verifySorted(t, "quicksort", b, orig)
	b2 := clone(orig)
	ParallelQuicksort(b2, 0) // GOMAXPROCS default
	verifySorted(t, "quicksort-default", b2, orig)
}

func TestSinglePassWastesWork(t *testing.T) {
	// The single pass pads every array to the largest size; multipass
	// sorts far fewer (padded) elements — the mechanism behind the ~5x of
	// Figure 7(b). The paper reports ~4x more elements for single pass.
	d := testDevice()
	orig := randomBatches(2000, 12, 5)
	// Inject one large array so the single-pass class is 256.
	big := make([]uint32, 200)
	for i := range big {
		big[i] = uint32(i * 7 % 251)
	}
	orig.Data = append(orig.Data, big...)
	orig.Bounds = append(orig.Bounds, int32(len(orig.Data)))

	mp := clone(orig)
	stMP := MultipassBitonic(d, mp)
	sp := clone(orig)
	stSP := SinglePassBitonic(d, sp)
	verifySorted(t, "mp", mp, orig)
	verifySorted(t, "sp", sp, orig)
	if stSP.ElementsSorted < 3*stMP.ElementsSorted {
		t.Errorf("single pass sorted %d elements vs multipass %d; expected much more padding waste",
			stSP.ElementsSorted, stMP.ElementsSorted)
	}
	if stSP.SimSeconds <= stMP.SimSeconds {
		t.Errorf("single pass (%.3gs) not slower than multipass (%.3gs)", stSP.SimSeconds, stMP.SimSeconds)
	}
}

func TestOversizedArraysFallBackToHost(t *testing.T) {
	d := testDevice()
	rng := rand.New(rand.NewSource(6))
	big := make([]uint32, 400) // > maxClassSize
	for i := range big {
		big[i] = rng.Uint32()
	}
	orig := &Batches{Data: append([]uint32(nil), big...), Bounds: []int32{0, int32(len(big))}}
	b := clone(orig)
	MultipassBitonic(d, b)
	verifySorted(t, "oversized", b, orig)
}

func TestBatchesAccessors(t *testing.T) {
	b := &Batches{Data: []uint32{5, 1, 9, 2}, Bounds: []int32{0, 2, 2, 4}}
	if b.NumArrays() != 3 {
		t.Errorf("NumArrays = %d", b.NumArrays())
	}
	if b.SizeOf(0) != 2 || b.SizeOf(1) != 0 || b.SizeOf(2) != 2 {
		t.Error("SizeOf wrong")
	}
	if b.MaxSize() != 2 {
		t.Errorf("MaxSize = %d", b.MaxSize())
	}
	if len(b.Array(1)) != 0 {
		t.Error("empty array wrong")
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 2, 1: 2, 2: 2, 3: 4, 4: 4, 5: 8, 64: 64, 65: 128, 200: 256}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestQuicksortProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		a := append([]uint32(nil), vals...)
		quicksort(a)
		want := append([]uint32(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if a[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadixSortU32(t *testing.T) {
	d := testDevice()
	for _, n := range []int{1, 2, 100, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = rng.Uint32()
		}
		buf := gpu.Alloc[uint32](d, n)
		buf.CopyIn(vals)
		RadixSortU32(d, buf, 32)
		got := buf.Host()
		want := append([]uint32(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: radix sorted wrong at %d", n, i)
			}
		}
		buf.Free()
	}
}

func TestRadixSortNarrowKeys(t *testing.T) {
	d := testDevice()
	vals := []uint32{99, 3, 77, 3, 0, 127}
	buf := gpu.Alloc[uint32](d, len(vals))
	buf.CopyIn(vals)
	RadixSortU32(d, buf, 7) // keys fit in 7 bits
	got := buf.Host()
	want := []uint32{0, 3, 3, 77, 99, 127}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("narrow radix wrong: %v", got)
		}
	}
}

func TestSequentialRadixGPU(t *testing.T) {
	d := testDevice()
	orig := randomBatches(40, 12, 7)
	b := clone(orig)
	st := SequentialRadixGPU(d, b, 17)
	verifySorted(t, "seqradix", b, orig)
	if st.Launches == 0 {
		t.Error("no launches recorded")
	}
	// The whole point of the baseline: enormous launch counts per element.
	if st.ElementsSorted > 0 && st.Launches < st.ElementsSorted/4 {
		t.Logf("launches=%d elements=%d", st.Launches, st.ElementsSorted)
	}
}

func TestMultipassFasterThanSequentialRadix(t *testing.T) {
	d := testDevice()
	orig := randomBatches(300, 12, 8)
	mp := clone(orig)
	stMP := MultipassBitonic(d, mp)
	sr := clone(orig)
	stSR := SequentialRadixGPU(d, sr, 17)
	if stMP.SimSeconds >= stSR.SimSeconds {
		t.Errorf("multipass (%.3gs) not faster than sequential radix (%.3gs)", stMP.SimSeconds, stSR.SimSeconds)
	}
}
