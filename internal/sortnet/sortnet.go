// Package sortnet implements the sorting machinery of GSNP's
// likelihood_sort step and the sorting study of the paper's Section IV-C /
// Figure 7: a batch bitonic sort primitive for many equal-sized small
// arrays on the GPU, the multipass scheme that buckets variable-sized
// arrays into size classes, the single-pass and non-equal-size baselines, a
// parallel CPU quicksort, and a per-array GPU radix sort (the
// sorts-arrays-sequentially baseline).
package sortnet

import (
	"math/bits"
	"runtime"
	"sync"

	"gsnp/internal/gpu"
)

// Batches is a collection of independent small arrays stored back to back:
// array i occupies Data[Bounds[i]:Bounds[i+1]]. It is the layout of the
// per-site base_word arrays of a window.
type Batches struct {
	Data   []uint32
	Bounds []int32
}

// NumArrays returns the number of sub-arrays.
func (b *Batches) NumArrays() int { return len(b.Bounds) - 1 }

// SizeOf returns the length of sub-array i.
func (b *Batches) SizeOf(i int) int { return int(b.Bounds[i+1] - b.Bounds[i]) }

// Array returns sub-array i.
func (b *Batches) Array(i int) []uint32 { return b.Data[b.Bounds[i]:b.Bounds[i+1]] }

// Reset prepares b to hold nArrays sub-arrays over nData total elements,
// reusing the backing storage when capacity allows (grow-only): callers
// that recycle a Batches across windows pay no steady-state allocations.
// Contents are unspecified; the caller fills Bounds and Data.
func (b *Batches) Reset(nArrays, nData int) {
	if cap(b.Bounds) < nArrays+1 {
		b.Bounds = make([]int32, nArrays+1)
	} else {
		b.Bounds = b.Bounds[:nArrays+1]
	}
	if cap(b.Data) < nData {
		b.Data = make([]uint32, nData)
	} else {
		b.Data = b.Data[:nData]
	}
}

// MaxSize returns the largest sub-array length.
func (b *Batches) MaxSize() int {
	m := 0
	for i := 0; i < b.NumArrays(); i++ {
		if s := b.SizeOf(i); s > m {
			m = s
		}
	}
	return m
}

// Stats describes one batch-sorting operation on the simulated device.
type Stats struct {
	// Launches is the number of kernel launches issued.
	Launches int64
	// SimSeconds is the simulated device time consumed.
	SimSeconds float64
	// ElementsSorted counts elements pushed through sorting networks,
	// including padding (the single-pass waste of Figure 7(b) shows up
	// here).
	ElementsSorted int64
}

// padValue fills batch slots beyond an array's real length; it sorts last.
const padValue = ^uint32(0)

// maxClassSize is the largest batch array size the shared-memory kernel
// handles; longer arrays (rare at realistic sequencing depths) are sorted
// on the host.
const maxClassSize = 256

// multipassClasses are the size-class upper bounds of the paper's
// six-pass scheme: [0,1], (1,8], (8,16], (16,32], (32,64], >64.
var multipassClasses = []int{1, 8, 16, 32, 64, maxClassSize}

// MultipassBitonic sorts every sub-array ascending using the paper's
// multipass scheme: arrays are bucketed by size class and each class is
// sorted with the equal-size batch bitonic primitive, so threads within a
// pass do balanced work.
func MultipassBitonic(d *gpu.Device, b *Batches) Stats {
	var st Stats
	start := d.Stats()
	for ci, class := range multipassClasses {
		if class == 1 {
			continue // single-element arrays are already sorted
		}
		lo := 1
		if ci > 0 {
			lo = multipassClasses[ci-1] + 1
		}
		sortClass(d, b, lo, class, class, &st)
	}
	sortOversized(b)
	st.SimSeconds = d.Stats().Sub(start).SimSeconds
	return st
}

// SinglePassBitonic sorts every sub-array using one batch size: the
// largest array length rounded up to a power of two. Small arrays are
// padded all the way up, the wasted work the multipass scheme eliminates
// (Figure 7(b) measures bitonic SP at ~5x slower).
func SinglePassBitonic(d *gpu.Device, b *Batches) Stats {
	var st Stats
	start := d.Stats()
	max := b.MaxSize()
	if max <= 1 {
		return st
	}
	class := ceilPow2(max)
	if class > maxClassSize {
		class = maxClassSize
	}
	sortClass(d, b, 2, class, class, &st)
	sortOversized(b)
	st.SimSeconds = d.Stats().Sub(start).SimSeconds
	return st
}

// NonEqBitonic sorts arrays of different sizes directly in one launch:
// each block handles one array padded to its own power of two. Workloads
// are imbalanced across blocks (the bitonic noneq baseline of Figure
// 7(b)).
func NonEqBitonic(d *gpu.Device, b *Batches) Stats {
	var st Stats
	start := d.Stats()
	n := 0
	for i := 0; i < b.NumArrays(); i++ {
		if s := b.SizeOf(i); s > 1 && s <= maxClassSize {
			n++
		}
	}
	if n == 0 {
		sortOversized(b)
		return st
	}

	// One launch; every block sorts one array padded to its own power of
	// two inside a fixed 256-slot shared buffer. Threads beyond the
	// array's padded size idle through the barriers — the imbalance.
	// Membership is recomputed per pass rather than materialised, so the
	// window loop stays allocation-free.
	bounds := gpu.Alloc[uint32](d, 2*n)
	defer bounds.Free()
	hostBounds := bounds.Host()
	var maxPadTotal int64
	k := 0
	for i := 0; i < b.NumArrays(); i++ {
		s := b.SizeOf(i)
		if s <= 1 || s > maxClassSize {
			continue
		}
		hostBounds[2*k] = uint32(b.Bounds[i])
		hostBounds[2*k+1] = uint32(s)
		maxPadTotal += int64(ceilPow2(s))
		k++
	}
	data := gpu.Alloc[uint32](d, len(b.Data))
	defer data.Free()
	data.CopyIn(b.Data)

	// Phase 0 stages the descriptor, phase 1 loads the array, then one
	// phase per (k, j) network step. Blocks with a smaller pad run a
	// prefix of the full maxClassSize network (k ascends, j descends
	// within k), write back and retire early, exactly as their goroutines
	// used to leave the barrier early.
	merges := nkjPhases(maxClassSize)
	d.MustLaunchPhased(gpu.LaunchConfig{
		Name: "bitonic_noneq", Grid: n, Block: maxClassSize,
		SharedU32: maxClassSize + 2,
	}, merges+3, func(t *gpu.Thread, p int) bool {
		switch {
		case p == 0:
			// Lane 0 stages the block's array descriptor through shared
			// memory; a naive per-lane load would multiply global traffic.
			if t.Lane == 0 {
				t.SetSharedU32(maxClassSize, gpu.Ld(t, bounds, 2*t.Block))
				t.SetSharedU32(maxClassSize+1, gpu.Ld(t, bounds, 2*t.Block+1))
			}
			return true
		case p == 1:
			off := t.SharedU32(maxClassSize)
			size := t.SharedU32(maxClassSize + 1)
			t.Reg[0] = uint64(off)
			t.Reg[1] = uint64(size)
			pad := ceilPow2(int(size))
			if t.Lane >= pad {
				// Lanes beyond this array's padded size retire; the block
				// still occupies a full 256-thread slot, the imbalance
				// this baseline suffers from.
				return false
			}
			v := padValue
			if t.Lane < int(size) {
				v = gpu.Ld(t, data, int(off)+t.Lane)
			}
			t.SetSharedU32(t.Lane, v)
			return true
		default:
			off := int(t.Reg[0])
			size := int(t.Reg[1])
			pad := ceilPow2(size)
			if p-2 < nkjPhases(pad) {
				kk, jj := kjAt(p - 2)
				bitonicPhase(t, t.Lane, kk, jj, pad, pad)
				return true
			}
			if t.Lane < size {
				gpu.St(t, data, off+t.Lane, t.SharedU32(t.Lane))
			}
			return false
		}
	})
	st.Launches++
	st.ElementsSorted += maxPadTotal
	data.CopyOut(b.Data)
	sortOversized(b)
	st.SimSeconds = d.Stats().Sub(start).SimSeconds
	return st
}

// sortClass pads every array whose size falls in [lo, hi] to class size,
// sorts the batch with the equal-size bitonic kernel and writes the
// results back. Membership is recomputed per pass instead of materialising
// a member list, keeping the window loop allocation-free.
func sortClass(d *gpu.Device, b *Batches, lo, hi, class int, st *Stats) {
	n := 0
	for i := 0; i < b.NumArrays(); i++ {
		if s := b.SizeOf(i); s >= lo && s <= hi {
			n++
		}
	}
	if n == 0 {
		return
	}
	class = ceilPow2(class)
	batch := gpu.Alloc[uint32](d, n*class)
	defer batch.Free()
	host := batch.Host()
	k := 0
	for i := 0; i < b.NumArrays(); i++ {
		s := b.SizeOf(i)
		if s < lo || s > hi {
			continue
		}
		copy(host[k*class:], b.Array(i))
		for j := s; j < class; j++ {
			host[k*class+j] = padValue
		}
		k++
	}
	st.Launches += int64(batchBitonicEqual(d, batch, class))
	st.ElementsSorted += int64(n * class)
	k = 0
	for i := 0; i < b.NumArrays(); i++ {
		s := b.SizeOf(i)
		if s < lo || s > hi {
			continue
		}
		copy(b.Array(i), host[k*class:k*class+s])
		k++
	}
}

// batchBitonicEqual sorts contiguous equal-sized arrays (class must be a
// power of two <= 256) in shared memory, multiple arrays per 256-thread
// block. It returns the number of kernel launches (always 1).
func batchBitonicEqual(d *gpu.Device, batch *gpu.Buffer[uint32], class int) int {
	total := batch.Len()
	block := maxClassSize
	if total < block {
		block = ceilPow2(total)
		if block < 32 {
			block = 32
		}
	}
	grid := (total + block - 1) / block
	merges := nkjPhases(class)
	d.MustLaunchPhased(gpu.LaunchConfig{
		Name: "batch_bitonic", Grid: grid, Block: block,
		SharedU32: block,
	}, merges+2, func(t *gpu.Thread, p int) bool {
		switch {
		case p == 0:
			i := t.GlobalID()
			v := padValue
			if i < total {
				v = gpu.Ld(t, batch, i)
			}
			t.SetSharedU32(t.Lane, v)
			return true
		case p <= merges:
			kk, jj := kjAt(p - 1)
			bitonicPhase(t, t.Lane, kk, jj, class, t.BlockDim)
			return true
		default:
			i := t.GlobalID()
			if i < total {
				gpu.St(t, batch, i, t.SharedU32(t.Lane))
			}
			return false
		}
	})
	return 1
}

// nkjPhases is the number of (k, j) compare-exchange steps of a bitonic
// network over size elements: log2(size) * (log2(size)+1) / 2.
func nkjPhases(size int) int {
	l := bits.Len(uint(size)) - 1
	return l * (l + 1) / 2
}

// kjAt maps a flat step index back to its (k, j) pair in network order —
// k ascends 2, 4, ... and within each k the stride j halves from k/2 down
// to 1 — so the step sequence of a smaller power of two is a prefix of a
// larger one's, which is what lets non-equal-size blocks share one phase
// counter.
func kjAt(q int) (k, j int) {
	for k = 2; ; k *= 2 {
		steps := bits.Len(uint(k)) - 1 // log2(k) strides for this k
		if q < steps {
			return k, k >> (q + 1)
		}
		q -= steps
	}
}

// bitonicPhase performs one (k, j) compare-exchange step of the bitonic
// network over the block's shared buffer, sorting each aligned
// size-element sub-array independently and ascending. It is one phase of a
// PhasedKernel body; the barrier that separated steps in the synchronous
// form is implicit between phases.
func bitonicPhase(t *gpu.Thread, lane, k, j, size, blockDim int) {
	pos := lane & (size - 1) // position within the aligned sub-array
	partner := lane ^ j
	if partner > lane && partner < blockDim {
		a := t.SharedU32(lane)
		bv := t.SharedU32(partner)
		// Direction from the in-array position: the final merge
		// (k == size) has pos&k == 0 everywhere, so every sub-array ends
		// ascending.
		up := pos&k == 0
		t.Exec(2)
		if (a > bv) == up {
			t.SetSharedU32(lane, bv)
			t.SetSharedU32(partner, a)
		}
	}
}

// sortOversized host-sorts the rare arrays larger than maxClassSize.
func sortOversized(b *Batches) {
	for i := 0; i < b.NumArrays(); i++ {
		if b.SizeOf(i) > maxClassSize {
			quicksort(b.Array(i))
		}
	}
}

// ceilPow2 rounds up to a power of two (minimum 2).
func ceilPow2(n int) int {
	if n <= 2 {
		return 2
	}
	return 1 << bits.Len(uint(n-1))
}

// ParallelQuicksort sorts every sub-array on the host, one array per task
// over a worker pool — the OpenMP-style parallel CPU sort of Figure 7(a).
// workers <= 0 selects GOMAXPROCS.
func ParallelQuicksort(b *Batches, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := b.NumArrays()
	if n == 0 {
		return
	}
	if workers == 1 {
		// Inline fast path: no goroutine or WaitGroup traffic, so the
		// single-threaded configuration sorts allocation-free.
		for i := 0; i < n; i++ {
			quicksort(b.Array(i))
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				quicksort(b.Array(i))
			}
		}(lo, hi)
	}
	wg.Wait()
}

// quicksort sorts a small uint32 slice in place: insertion sort below 16
// elements, median-of-three quicksort above.
func quicksort(a []uint32) {
	for len(a) > 16 {
		// Median-of-three pivot.
		m := len(a) / 2
		hi := len(a) - 1
		if a[0] > a[m] {
			a[0], a[m] = a[m], a[0]
		}
		if a[m] > a[hi] {
			a[m], a[hi] = a[hi], a[m]
			if a[0] > a[m] {
				a[0], a[m] = a[m], a[0]
			}
		}
		pivot := a[m]
		i, j := 0, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(a)-i {
			quicksort(a[:j+1])
			a = a[i:]
		} else {
			quicksort(a[i:])
			a = a[:j+1]
		}
	}
	// Insertion sort for the remainder.
	for i := 1; i < len(a); i++ {
		for k := i; k > 0 && a[k-1] > a[k]; k-- {
			a[k-1], a[k] = a[k], a[k-1]
		}
	}
}
