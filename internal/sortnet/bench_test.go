package sortnet

import (
	"testing"

	"gsnp/internal/gpu"
)

func benchBatches(numArrays, meanSize int) *Batches {
	return randomBatches(numArrays, meanSize, 99)
}

func BenchmarkMultipassBitonic(b *testing.B) {
	d := gpu.NewDevice(gpu.M2050())
	orig := benchBatches(5000, 12)
	b.SetBytes(int64(len(orig.Data) * 4))
	for i := 0; i < b.N; i++ {
		MultipassBitonic(d, clone(orig))
	}
}

func BenchmarkSinglePassBitonic(b *testing.B) {
	d := gpu.NewDevice(gpu.M2050())
	orig := benchBatches(5000, 12)
	b.SetBytes(int64(len(orig.Data) * 4))
	for i := 0; i < b.N; i++ {
		SinglePassBitonic(d, clone(orig))
	}
}

func BenchmarkParallelQuicksort(b *testing.B) {
	orig := benchBatches(5000, 12)
	b.SetBytes(int64(len(orig.Data) * 4))
	for i := 0; i < b.N; i++ {
		ParallelQuicksort(clone(orig), 0)
	}
}

func BenchmarkSerialQuicksort(b *testing.B) {
	orig := benchBatches(5000, 12)
	b.SetBytes(int64(len(orig.Data) * 4))
	for i := 0; i < b.N; i++ {
		ParallelQuicksort(clone(orig), 1)
	}
}

func BenchmarkDeviceRadixSort(b *testing.B) {
	d := gpu.NewDevice(gpu.M2050())
	orig := benchBatches(1, 4096)
	b.SetBytes(int64(len(orig.Data) * 4))
	for i := 0; i < b.N; i++ {
		c := clone(orig)
		buf := gpu.Alloc[uint32](d, len(c.Data))
		buf.CopyIn(c.Data)
		RadixSortU32(d, buf, 17)
		buf.Free()
	}
}
