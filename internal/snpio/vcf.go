package snpio

import (
	"bufio"
	"fmt"
	"io"

	"gsnp/internal/dna"
)

// VCF export for downstream consumers: the result table predates VCF's
// dominance (GSNP emits SOAPsnp's consensus format), but modern toolchains
// expect VCFv4, so the dump tool can convert SNP rows.

// vcfHeader is the fixed VCFv4.2 preamble.
const vcfHeader = `##fileformat=VCFv4.2
##source=gsnp
##INFO=<ID=DP,Number=1,Type=Integer,Description="Raw read depth">
##INFO=<ID=RSP,Number=1,Type=Float,Description="Rank-sum test p-value">
##INFO=<ID=CN,Number=1,Type=Float,Description="Estimated copy number">
##INFO=<ID=DB,Number=0,Type=Flag,Description="Known SNP (prior file)">
##FORMAT=<ID=GT,Number=1,Type=String,Description="Genotype">
##FORMAT=<ID=GQ,Number=1,Type=Integer,Description="Genotype quality">
#CHROM	POS	ID	REF	ALT	QUAL	FILTER	INFO	FORMAT	SAMPLE
`

// VCFWriter converts SNP rows to VCF records. Homozygous-reference rows
// are skipped (VCF records variants).
type VCFWriter struct {
	bw     *bufio.Writer
	header bool
	n      int64
}

// NewVCFWriter wraps w.
func NewVCFWriter(w io.Writer) *VCFWriter {
	return &VCFWriter{bw: bufio.NewWriterSize(w, 1<<20)}
}

// iupacAlleles maps a genotype code to its allele pair.
func iupacAlleles(code byte) (dna.Genotype, bool) {
	for rank := 0; rank < dna.NGenotypes; rank++ {
		g := dna.GenotypeByRank(rank)
		if g.IUPAC() == code {
			return g, true
		}
	}
	return 0, false
}

// Write converts one result row; non-SNP rows are ignored and return nil.
func (vw *VCFWriter) Write(r *Row) error {
	if !r.IsSNP() {
		return nil
	}
	if !vw.header {
		if _, err := vw.bw.WriteString(vcfHeader); err != nil {
			return err
		}
		vw.header = true
	}
	ref, ok := dna.ParseBase(r.Ref)
	if !ok {
		return fmt.Errorf("snpio: vcf: bad reference base %q at %s:%d", r.Ref, r.Chr, r.Pos)
	}
	g, ok := iupacAlleles(r.Genotype)
	if !ok {
		return fmt.Errorf("snpio: vcf: bad genotype code %q at %s:%d", r.Genotype, r.Chr, r.Pos)
	}
	a1, a2 := g.Alleles()

	// ALT alleles: the genotype's non-reference alleles, deduplicated.
	var alts []dna.Base
	for _, a := range []dna.Base{a1, a2} {
		if a == ref {
			continue
		}
		dup := false
		for _, seen := range alts {
			if seen == a {
				dup = true
			}
		}
		if !dup {
			alts = append(alts, a)
		}
	}
	if len(alts) == 0 {
		return nil // defensive; IsSNP should have filtered this
	}
	altStr := alts[0].String()
	if len(alts) == 2 {
		altStr += "," + alts[1].String()
	}

	// GT indexes into [REF, ALT...].
	idx := func(a dna.Base) int {
		if a == ref {
			return 0
		}
		for i, alt := range alts {
			if alt == a {
				return i + 1
			}
		}
		return 0
	}
	gt := fmt.Sprintf("%d/%d", idx(a1), idx(a2))

	id := "."
	info := fmt.Sprintf("DP=%d;RSP=%.5f;CN=%.3f", r.Depth, r.RankSumP, r.CopyNum)
	if r.IsDbSNP == 1 {
		info += ";DB"
	}
	if _, err := fmt.Fprintf(vw.bw, "%s\t%d\t%s\t%c\t%s\t%d\tPASS\t%s\tGT:GQ\t%s:%d\n",
		r.Chr, r.Pos, id, r.Ref, altStr, r.Quality, info, gt, r.Quality); err != nil {
		return err
	}
	vw.n++
	return nil
}

// Flush completes the stream (writing the header even when no variants
// were seen, so the output is always a valid VCF).
func (vw *VCFWriter) Flush() error {
	if !vw.header {
		if _, err := vw.bw.WriteString(vcfHeader); err != nil {
			return err
		}
		vw.header = true
	}
	return vw.bw.Flush()
}

// Count returns the number of variant records written.
func (vw *VCFWriter) Count() int64 { return vw.n }
