package snpio

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestSAMRoundTrip(t *testing.T) {
	rs := makeReads(t)
	var buf bytes.Buffer
	if err := WriteSAM(&buf, "chrT", 5000, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "@HD") {
		t.Error("missing SAM header")
	}
	sr := NewSAMReader(bytes.NewReader(buf.Bytes()))
	for i := range rs {
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := &rs[i]
		if got.ID != want.ID || got.Pos != want.Pos || got.Strand != want.Strand || got.Hits != want.Hits {
			t.Fatalf("record %d metadata corrupted: %+v vs %+v", i, got, *want)
		}
		if got.Bases.String() != want.Bases.String() {
			t.Fatalf("record %d bases corrupted", i)
		}
		for j := range want.Quals {
			if got.Quals[j] != want.Quals[j] {
				t.Fatalf("record %d quality corrupted at %d", i, j)
			}
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	if sr.Chromosome() != "chrT" {
		t.Errorf("chromosome = %q", sr.Chromosome())
	}
	if sr.Skipped() != 0 {
		t.Errorf("skipped = %d", sr.Skipped())
	}
}

func TestSAMReaderSkipsUnusableRecords(t *testing.T) {
	sam := strings.Join([]string{
		"@HD\tVN:1.6",
		"read_1\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII",           // unmapped
		"read_2\t0\tchr1\t10\t60\t2M1I1M\t*\t0\t0\tACGT\tIIII", // indel CIGAR
		"read_3\t0\tchr1\t20\t60\t4M\t*\t0\t0\t*\t*",           // no sequence
		"read_4\t0\tchr1\t30\t60\t4M\t*\t0\t0\tACGT\tIIII",     // usable
	}, "\n") + "\n"
	sr := NewSAMReader(strings.NewReader(sam))
	r, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != 4 || r.Pos != 29 {
		t.Errorf("usable record wrong: %+v", r)
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	if sr.Skipped() != 3 {
		t.Errorf("skipped = %d, want 3", sr.Skipped())
	}
}

func TestSAMReaderErrors(t *testing.T) {
	bad := []string{
		"read_1\t0\tchr1\t10",                                 // too few fields
		"read_1\tx\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\tIIII",    // bad flag
		"read_1\t0\tchr1\t0\t60\t4M\t*\t0\t0\tACGT\tIIII",     // bad pos
		"read_1\t0\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\tII\x01I", // bad qual
	}
	for _, b := range bad {
		sr := NewSAMReader(strings.NewReader(b + "\n"))
		if _, err := sr.Next(); err == nil || err == io.EOF {
			t.Errorf("malformed SAM accepted: %q", b)
		}
	}
}

func TestSAMNHTag(t *testing.T) {
	sam := "read_9\t16\tchr2\t100\t60\t4M\t*\t0\t0\tACGT\tIIII\tNH:i:7\n"
	sr := NewSAMReader(strings.NewReader(sam))
	r, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r.Hits != 7 {
		t.Errorf("Hits = %d, want 7", r.Hits)
	}
	if r.Strand != 1 {
		t.Errorf("Strand = %d, want reverse", r.Strand)
	}
}
