package snpio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gsnp/internal/align"
	"gsnp/internal/dna"
)

// FASTQ support for raw (pre-alignment) reads: the sequencer's output
// format, consumed by the aligner stage.

// WriteFASTQ writes raw reads in FASTQ format (Phred+33 qualities).
func WriteFASTQ(w io.Writer, raws []align.RawRead) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for i := range raws {
		r := &raws[i]
		qs := make([]byte, len(r.Quals))
		for j, q := range r.Quals {
			qs[j] = byte(q) + qualOffset
		}
		if _, err := fmt.Fprintf(bw, "@read_%d\n%s\n+\n%s\n", r.ID, r.Seq.String(), qs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses a FASTQ stream.
func ReadFASTQ(r io.Reader) ([]align.RawRead, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var raws []align.RawRead
	line := 0
	var off, cur int64 // byte offsets: next line / line just read
	next := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		line++
		cur = off
		off += int64(len(sc.Bytes())) + 1
		return sc.Text(), true
	}
	errf := func(field, format string, args ...any) *ParseError {
		return &ParseError{Format: "fastq", Line: line, Offset: cur,
			Field: field, Msg: fmt.Sprintf(format, args...)}
	}
	for {
		head, ok := next()
		if !ok {
			break
		}
		if strings.TrimSpace(head) == "" {
			continue
		}
		if !strings.HasPrefix(head, "@") {
			return nil, errf("header", "expected @header, got %q", head)
		}
		seqLine, ok := next()
		if !ok {
			return nil, errf("sequence", "truncated record")
		}
		plus, ok := next()
		if !ok || !strings.HasPrefix(plus, "+") {
			return nil, errf("separator", "expected '+' separator")
		}
		qualLine, ok := next()
		if !ok {
			return nil, errf("quality", "missing quality line")
		}
		if len(qualLine) != len(seqLine) {
			return nil, errf("quality", "quality length %d != sequence length %d", len(qualLine), len(seqLine))
		}
		var raw align.RawRead
		raw.ID = int64(len(raws))
		if fields := strings.Fields(head[1:]); len(fields) > 0 {
			idStr := strings.TrimPrefix(fields[0], "read_")
			if id, err := strconv.ParseInt(idStr, 10, 64); err == nil {
				raw.ID = id
			}
		}
		raw.Seq, _ = dna.ParseSequence(seqLine) // Ns tolerated as A
		raw.Quals = make([]dna.Quality, len(qualLine))
		for j := 0; j < len(qualLine); j++ {
			c := qualLine[j]
			if c < qualOffset {
				return nil, errf("quality", "bad quality character %q", c)
			}
			raw.Quals[j] = dna.ClampQuality(int(c) - qualOffset)
		}
		raws = append(raws, raw)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return raws, nil
}
