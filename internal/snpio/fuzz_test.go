package snpio

import (
	"bytes"
	"strings"
	"testing"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

func FuzzParseRow(f *testing.F) {
	r := sampleRow()
	f.Add(string(r.appendText(nil)))
	f.Add("")
	f.Add("a\tb\tc")
	f.Fuzz(func(t *testing.T, line string) {
		row, err := ParseRow(line)
		if err != nil {
			return
		}
		// Serialisation must be canonical: one serialise/parse pass
		// reaches a fixed point. (Exact row equality needs QuantizeRow,
		// which the pipeline applies; arbitrary parsed floats may lose
		// sub-quantum precision on the first pass.)
		text1 := string(row.appendText(nil))
		row2, err := ParseRow(text1)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		text2 := string(row2.appendText(nil))
		if text1 != text2 {
			t.Fatalf("serialisation not canonical:\n %q\n %q", text1, text2)
		}
	})
}

func FuzzSOAPReader(f *testing.F) {
	f.Add("read_1\tACGT\tIIII\t1\t4\t+\tc\t1\n")
	f.Add("")
	f.Add("garbage line\n")
	f.Fuzz(func(t *testing.T, data string) {
		// Must never panic; errors are fine.
		_, _, _ = ReadSOAP(strings.NewReader(data))
	})
}

func FuzzFASTQReader(f *testing.F) {
	f.Add("@read_1\nACGT\n+\nIIII\n")
	f.Add("")
	f.Add("@truncated\nACGT\n")
	f.Add("@mismatch\nACGT\n+\nII\n")
	f.Fuzz(func(t *testing.T, data string) {
		// Must never panic; malformed records report errors.
		rs, err := ReadFASTQ(strings.NewReader(data))
		if err != nil {
			return
		}
		// Parsed reads uphold the invariant the aligner depends on:
		// equally long base and quality strings.
		for i, r := range rs {
			if len(r.Seq) != len(r.Quals) {
				t.Fatalf("read %d: %d bases vs %d quals", i, len(r.Seq), len(r.Quals))
			}
		}
	})
}

func FuzzSAMReader(f *testing.F) {
	f.Add("@HD\tVN:1.6\nread_1\t0\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\tIIII\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		sr := NewSAMReader(strings.NewReader(data))
		for i := 0; i < 100; i++ {
			if _, err := sr.Next(); err != nil {
				return
			}
		}
	})
}

func FuzzBlockReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewBlockWriter(&buf)
	_ = w.WriteBlock(makeRows("c", 1, 50, 1))
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("GSNPv1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic on corrupted containers.
		_, _ = ReadAllBlocks(bytes.NewReader(data))
	})
}

func FuzzTempReader(f *testing.F) {
	var buf bytes.Buffer
	tw := NewTempWriter(&buf, "c")
	rs := makeReadsForFuzz()
	for i := range rs {
		_ = tw.Write(&rs[i])
	}
	_ = tw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("GSNPTMP1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTempReader(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			if _, err := tr.Next(); err != nil {
				return
			}
		}
	})
}

// makeReadsForFuzz builds a tiny deterministic read set without testing.T.
func makeReadsForFuzz() []reads.AlignedRead {
	var rs []reads.AlignedRead
	for i := 0; i < 5; i++ {
		n := 20
		r := reads.AlignedRead{ID: int64(i), Pos: i * 7, Hits: 1}
		r.Bases = make(dna.Sequence, n)
		r.Quals = make([]dna.Quality, n)
		for k := 0; k < n; k++ {
			r.Bases[k] = dna.Base((i + k) & 3)
			r.Quals[k] = dna.Quality(20 + (k/8)*5)
		}
		rs = append(rs, r)
	}
	return rs
}
