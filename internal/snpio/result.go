package snpio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gsnp/internal/dna"
)

// Row is one line of the SNP-detection result table. The result of SNP
// detection is a table of 17 columns (Section III-A / V-B of the paper);
// this struct mirrors the consensus (CNS) output of SOAPsnp:
//
//	 1 Chr              chromosome name
//	 2 Pos              1-based site position
//	 3 Ref              reference base
//	 4 Genotype         consensus genotype (IUPAC code)
//	 5 Quality          Phred consensus quality (0-99)
//	 6 BestBase         most supported base
//	 7 AvgQualBest      rounded average quality of BestBase observations
//	 8 CountBest        number of BestBase observations
//	 9 CountUniqBest    ... from uniquely aligned reads only
//	10 SecondBase       second most supported base, or N
//	11 AvgQualSecond    rounded average quality of SecondBase observations
//	12 CountSecond      number of SecondBase observations
//	13 CountUniqSecond  ... from uniquely aligned reads only
//	14 Depth            total aligned bases at the site
//	15 RankSumP         rank-sum test p-value (strand/quality bias)
//	16 CopyNum          estimated copy number (depth / genome mean)
//	17 IsDbSNP          1 when the site appears in the prior file
type Row struct {
	Chr             string
	Pos             int64
	Ref             byte
	Genotype        byte
	Quality         uint8
	BestBase        byte
	AvgQualBest     uint8
	CountBest       uint16
	CountUniqBest   uint16
	SecondBase      byte
	AvgQualSecond   uint8
	CountSecond     uint16
	CountUniqSecond uint16
	Depth           uint16
	RankSumP        float64
	CopyNum         float64
	IsDbSNP         uint8
}

// NColumns is the number of columns of the result table.
const NColumns = 17

// IsSNP reports whether the row calls a non-reference genotype.
func (r *Row) IsSNP() bool {
	ref, ok := dna.ParseBase(r.Ref)
	if !ok {
		return false
	}
	return r.Genotype != dna.HomozygousGenotype(ref).IUPAC()
}

// appendText appends the tab-separated text encoding of r to buf.
// RankSumP uses five decimals and CopyNum three, like SOAPsnp's
// fixed-point output.
func (r *Row) appendText(buf []byte) []byte {
	buf = append(buf, r.Chr...)
	buf = append(buf, '\t')
	buf = strconv.AppendInt(buf, r.Pos, 10)
	buf = append(buf, '\t', r.Ref, '\t', r.Genotype, '\t')
	buf = strconv.AppendUint(buf, uint64(r.Quality), 10)
	buf = append(buf, '\t', r.BestBase, '\t')
	buf = strconv.AppendUint(buf, uint64(r.AvgQualBest), 10)
	buf = append(buf, '\t')
	buf = strconv.AppendUint(buf, uint64(r.CountBest), 10)
	buf = append(buf, '\t')
	buf = strconv.AppendUint(buf, uint64(r.CountUniqBest), 10)
	buf = append(buf, '\t', r.SecondBase, '\t')
	buf = strconv.AppendUint(buf, uint64(r.AvgQualSecond), 10)
	buf = append(buf, '\t')
	buf = strconv.AppendUint(buf, uint64(r.CountSecond), 10)
	buf = append(buf, '\t')
	buf = strconv.AppendUint(buf, uint64(r.CountUniqSecond), 10)
	buf = append(buf, '\t')
	buf = strconv.AppendUint(buf, uint64(r.Depth), 10)
	buf = append(buf, '\t')
	buf = strconv.AppendFloat(buf, r.RankSumP, 'f', 5, 64)
	buf = append(buf, '\t')
	buf = strconv.AppendFloat(buf, r.CopyNum, 'f', 3, 64)
	buf = append(buf, '\t')
	buf = strconv.AppendUint(buf, uint64(r.IsDbSNP), 10)
	buf = append(buf, '\n')
	return buf
}

// RowWriter is a streaming sink for result rows. ResultWriter (the
// paper's 17-column table) and VCFWriter (VCFv4.2 variant records) both
// satisfy it, letting the engines select the output codec without knowing
// its encoding. Count reports rows actually emitted — a codec may filter
// (VCF skips homozygous-reference rows), so Count can be below the number
// of Write calls.
type RowWriter interface {
	Write(r *Row) error
	Flush() error
	Count() int64
}

// ResultWriter streams result rows as plain text, the SOAPsnp output
// format.
type ResultWriter struct {
	bw  *bufio.Writer
	buf []byte
	n   int64
}

// NewResultWriter wraps w.
func NewResultWriter(w io.Writer) *ResultWriter {
	return &ResultWriter{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Write emits one row.
func (rw *ResultWriter) Write(r *Row) error {
	rw.buf = r.appendText(rw.buf[:0])
	_, err := rw.bw.Write(rw.buf)
	if err == nil {
		rw.n++
	}
	return err
}

// Flush completes the stream.
func (rw *ResultWriter) Flush() error { return rw.bw.Flush() }

// Count returns the number of rows written.
func (rw *ResultWriter) Count() int64 { return rw.n }

// ParseRow parses one text line of the result table.
func ParseRow(line string) (Row, error) {
	f := strings.Split(strings.TrimRight(line, "\n"), "\t")
	if len(f) != NColumns {
		return Row{}, fmt.Errorf("snpio: result row has %d columns, want %d", len(f), NColumns)
	}
	var r Row
	r.Chr = f[0]
	var err error
	if r.Pos, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return r, fmt.Errorf("snpio: bad position %q", f[1])
	}
	byteCol := func(s string) (byte, error) {
		if len(s) != 1 {
			return 0, fmt.Errorf("snpio: bad single-character column %q", s)
		}
		return s[0], nil
	}
	if r.Ref, err = byteCol(f[2]); err != nil {
		return r, err
	}
	if r.Genotype, err = byteCol(f[3]); err != nil {
		return r, err
	}
	u8 := func(s string) (uint8, error) {
		v, err := strconv.ParseUint(s, 10, 8)
		return uint8(v), err
	}
	u16 := func(s string) (uint16, error) {
		v, err := strconv.ParseUint(s, 10, 16)
		return uint16(v), err
	}
	if r.Quality, err = u8(f[4]); err != nil {
		return r, fmt.Errorf("snpio: bad quality %q", f[4])
	}
	if r.BestBase, err = byteCol(f[5]); err != nil {
		return r, err
	}
	if r.AvgQualBest, err = u8(f[6]); err != nil {
		return r, fmt.Errorf("snpio: bad avg quality %q", f[6])
	}
	if r.CountBest, err = u16(f[7]); err != nil {
		return r, fmt.Errorf("snpio: bad count %q", f[7])
	}
	if r.CountUniqBest, err = u16(f[8]); err != nil {
		return r, fmt.Errorf("snpio: bad count %q", f[8])
	}
	if r.SecondBase, err = byteCol(f[9]); err != nil {
		return r, err
	}
	if r.AvgQualSecond, err = u8(f[10]); err != nil {
		return r, fmt.Errorf("snpio: bad avg quality %q", f[10])
	}
	if r.CountSecond, err = u16(f[11]); err != nil {
		return r, fmt.Errorf("snpio: bad count %q", f[11])
	}
	if r.CountUniqSecond, err = u16(f[12]); err != nil {
		return r, fmt.Errorf("snpio: bad count %q", f[12])
	}
	if r.Depth, err = u16(f[13]); err != nil {
		return r, fmt.Errorf("snpio: bad depth %q", f[13])
	}
	if r.RankSumP, err = strconv.ParseFloat(f[14], 64); err != nil {
		return r, fmt.Errorf("snpio: bad rank-sum p %q", f[14])
	}
	if r.CopyNum, err = strconv.ParseFloat(f[15], 64); err != nil {
		return r, fmt.Errorf("snpio: bad copy number %q", f[15])
	}
	if r.IsDbSNP, err = u8(f[16]); err != nil {
		return r, fmt.Errorf("snpio: bad dbSNP flag %q", f[16])
	}
	return r, nil
}

// ReadResults parses a whole result table.
func ReadResults(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows []Row
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		row, err := ParseRow(line)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
