package snpio

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/reads"
	"gsnp/internal/seqsim"
)

func TestFASTARoundTrip(t *testing.T) {
	seq1, _ := dna.ParseSequence(strings.Repeat("ACGTGGTTCA", 31)) // forces wrapping
	seq2, _ := dna.ParseSequence("ACGT")
	var buf bytes.Buffer
	err := WriteFASTA(&buf, FASTARecord{Name: "chr1", Seq: seq1}, FASTARecord{Name: "chr2", Seq: seq2})
	if err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	recs, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name != "chr1" || recs[0].Seq.String() != seq1.String() {
		t.Error("record 1 corrupted")
	}
	if recs[1].Name != "chr2" || recs[1].Seq.String() != seq2.String() {
		t.Error("record 2 corrupted")
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">\nACGT\n")); err == nil {
		t.Error("empty header accepted")
	}
	recs, err := ReadFASTA(strings.NewReader(">x desc here\nAC\n\nGT\n"))
	if err != nil || len(recs) != 1 || recs[0].Name != "x" || recs[0].Seq.String() != "ACGT" {
		t.Errorf("header description / blank line handling wrong: %v %v", recs, err)
	}
}

func makeReads(t *testing.T) []reads.AlignedRead {
	t.Helper()
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "chrT", Length: 5000, Seed: 1})
	d := seqsim.MakeDiploid(ref, seqsim.DefaultDiploidSpec(2))
	spec := seqsim.DefaultReadSpec(6, 3)
	spec.MaskFraction = 0
	rs, _ := seqsim.SampleReads(d, spec)
	return rs
}

func TestSOAPRoundTrip(t *testing.T) {
	rs := makeReads(t)
	var buf bytes.Buffer
	if err := WriteSOAP(&buf, "chrT", rs); err != nil {
		t.Fatalf("WriteSOAP: %v", err)
	}
	got, chr, err := ReadSOAP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSOAP: %v", err)
	}
	if chr != "chrT" {
		t.Errorf("chromosome = %q", chr)
	}
	if len(got) != len(rs) {
		t.Fatalf("got %d reads, want %d", len(got), len(rs))
	}
	for i := range rs {
		a, b := &rs[i], &got[i]
		if a.ID != b.ID || a.Pos != b.Pos || a.Strand != b.Strand || a.Hits != b.Hits {
			t.Fatalf("read %d metadata corrupted: %+v vs %+v", i, a, b)
		}
		if a.Bases.String() != b.Bases.String() {
			t.Fatalf("read %d bases corrupted", i)
		}
		for j := range a.Quals {
			if a.Quals[j] != b.Quals[j] {
				t.Fatalf("read %d quality corrupted at %d", i, j)
			}
		}
	}
}

func TestSOAPReverseStrandOrientation(t *testing.T) {
	// A reverse-strand read must be written in sequencing orientation:
	// reverse complement of the reference-oriented bases.
	seq, _ := dna.ParseSequence("AACG")
	r := reads.AlignedRead{
		ID: 7, Pos: 9, Strand: 1, Hits: 1,
		Bases: seq,
		Quals: []dna.Quality{10, 20, 30, 40},
	}
	var buf bytes.Buffer
	if err := WriteSOAP(&buf, "c", []reads.AlignedRead{r}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	f := strings.Split(line, "\t")
	if f[1] != "CGTT" {
		t.Errorf("sequenced-orientation bases = %q, want CGTT", f[1])
	}
	// Qualities reversed: 40,30,20,10 -> I>3+ in Phred+33.
	if f[2] != string([]byte{40 + 33, 30 + 33, 20 + 33, 10 + 33}) {
		t.Errorf("sequenced-orientation quals = %q", f[2])
	}
	if f[5] != "-" || f[7] != "10" {
		t.Errorf("strand/pos = %q/%q", f[5], f[7])
	}
}

func TestSOAPReaderErrors(t *testing.T) {
	cases := []string{
		"read_1\tACGT\t!!!!\t1\t4\t+\tc",       // 7 fields
		"read_x\tACGT\t!!!!\t1\t4\t+\tc\t1",    // bad id
		"read_1\tACGT\t!!!!\t0\t4\t+\tc\t1",    // bad hits
		"read_1\tACGT\t!!!!\t1\t5\t+\tc\t1",    // bad length
		"read_1\tACGT\t!!!!\t1\t4\t*\tc\t1",    // bad strand
		"read_1\tACGT\t!!!!\t1\t4\t+\tc\t0",    // bad position
		"read_1\tACGT\t!!\x01!\t1\t4\t+\tc\t1", // bad quality char
	}
	for _, c := range cases {
		if _, _, err := ReadSOAP(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("malformed line accepted: %q", c)
		}
	}
}

func TestKnownSNPsRoundTrip(t *testing.T) {
	snps := KnownSNPs{
		100: &bayes.KnownSNP{Freq: [4]float64{0.7, 0, 0.3, 0}, Validated: true},
		5:   &bayes.KnownSNP{Freq: [4]float64{0.25, 0.25, 0.25, 0.25}},
	}
	var buf bytes.Buffer
	if err := WriteKnownSNPs(&buf, "chr9", snps); err != nil {
		t.Fatal(err)
	}
	// Ascending positions.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "\t6\t") {
		t.Errorf("output order wrong: %v", lines)
	}
	got, err := ReadKnownSNPs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got["chr9"]
	if len(g) != 2 {
		t.Fatalf("got %d records", len(g))
	}
	if !g[100].Validated || g[100].Freq[0] != 0.7 || g[100].Freq[2] != 0.3 {
		t.Errorf("record corrupted: %+v", g[100])
	}
	if g[5].Validated {
		t.Error("validation flag corrupted")
	}
}

func TestKnownSNPsErrors(t *testing.T) {
	bad := []string{
		"chr1\t0\t1\t1\t0\t0\t0",   // position < 1
		"chr1\t5\t1\t0.5\t0\t0\t0", // frequencies don't sum to 1
		"chr1\t5\t1\t2\t0\t0\t0",   // frequency out of range
		"chr1\t5\t1\t0.5\t0.5\t0",  // missing column
	}
	for _, b := range bad {
		if _, err := ReadKnownSNPs(strings.NewReader(b + "\n")); err == nil {
			t.Errorf("malformed known-SNP line accepted: %q", b)
		}
	}
	// Comments and blank lines are fine.
	got, err := ReadKnownSNPs(strings.NewReader("# header\n\nchr1\t5\t1\t1.0\t0\t0\t0\n"))
	if err != nil || len(got["chr1"]) != 1 {
		t.Errorf("comment handling wrong: %v %v", got, err)
	}
}

func sampleRow() Row {
	return Row{
		Chr: "chr21", Pos: 12345, Ref: 'A', Genotype: 'R', Quality: 37,
		BestBase: 'A', AvgQualBest: 33, CountBest: 6, CountUniqBest: 5,
		SecondBase: 'G', AvgQualSecond: 30, CountSecond: 4, CountUniqSecond: 4,
		Depth: 10, RankSumP: 0.8714, CopyNum: 1.002, IsDbSNP: 1,
	}
}

func TestRowTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rw := NewResultWriter(&buf)
	row := sampleRow()
	if err := rw.Write(&row); err != nil {
		t.Fatal(err)
	}
	row2 := row
	row2.Pos++
	row2.Genotype = 'A'
	row2.IsDbSNP = 0
	if err := rw.Write(&row2); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if rw.Count() != 2 {
		t.Errorf("Count = %d", rw.Count())
	}
	rows, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0] != row {
		t.Errorf("row 0 corrupted:\n got %+v\nwant %+v", rows[0], row)
	}
	if rows[1] != row2 {
		t.Errorf("row 1 corrupted")
	}
}

func TestRowColumns(t *testing.T) {
	row := sampleRow()
	text := string(row.appendText(nil))
	cols := strings.Split(strings.TrimSpace(text), "\t")
	if len(cols) != NColumns {
		t.Fatalf("text row has %d columns, want %d", len(cols), NColumns)
	}
	if cols[0] != "chr21" || cols[1] != "12345" || cols[2] != "A" || cols[3] != "R" {
		t.Errorf("leading columns wrong: %v", cols[:4])
	}
	if cols[14] != "0.87140" || cols[15] != "1.002" || cols[16] != "1" {
		t.Errorf("trailing columns wrong: %v", cols[14:])
	}
}

func TestRowIsSNP(t *testing.T) {
	row := sampleRow()
	if !row.IsSNP() {
		t.Error("het row not flagged as SNP")
	}
	row.Genotype = 'A'
	if row.IsSNP() {
		t.Error("hom-ref row flagged as SNP")
	}
	row.Ref = 'N'
	if row.IsSNP() {
		t.Error("N-reference row flagged as SNP")
	}
}

func TestParseRowErrors(t *testing.T) {
	goodRow := sampleRow()
	good := string(goodRow.appendText(nil))
	if _, err := ParseRow(good); err != nil {
		t.Fatalf("good row rejected: %v", err)
	}
	bad := []string{
		"a\tb",
		strings.Replace(good, "12345", "x", 1),
		strings.Replace(good, "\tA\t", "\tAB\t", 1),
		strings.Replace(good, "0.87140", "zz", 1),
	}
	for _, b := range bad {
		if _, err := ParseRow(b); err == nil {
			t.Errorf("malformed row accepted: %q", b)
		}
	}
}

func TestRowPropertyRoundTrip(t *testing.T) {
	letters := []byte{'A', 'C', 'G', 'T'}
	iupac := []byte{'A', 'C', 'G', 'T', 'M', 'R', 'W', 'S', 'Y', 'K'}
	f := func(pos uint32, q, aq uint8, cb, d uint16, gi, bi uint8, p float64) bool {
		row := Row{
			Chr: "c", Pos: int64(pos) + 1, Ref: letters[bi%4],
			Genotype: iupac[gi%10], Quality: q % 100,
			BestBase: letters[bi%4], AvgQualBest: aq % 64,
			CountBest: cb, CountUniqBest: cb / 2,
			SecondBase: 'N', Depth: d,
			RankSumP: float64(uint16(p*10000)%10001) / 10000, CopyNum: 1,
		}
		text := string(row.appendText(nil))
		got, err := ParseRow(text)
		return err == nil && got == row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSOAPReaderStreaming(t *testing.T) {
	rs := makeReads(t)[:10]
	var buf bytes.Buffer
	if err := WriteSOAP(&buf, "chrT", rs); err != nil {
		t.Fatal(err)
	}
	sr := NewSOAPReader(&buf)
	n := 0
	for {
		_, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 10 {
		t.Errorf("streamed %d records, want 10", n)
	}
}
