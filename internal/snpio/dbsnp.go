package snpio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gsnp/internal/bayes"
)

// The known-SNP prior file: one site per line, tab-separated —
//
//	chromosome  position  validated  freqA  freqC  freqG  freqT
//
// position is 1-based, validated is 0/1, frequencies sum to ~1. This
// carries the same information as the dbSNP-derived prior file SOAPsnp
// consumes.

// KnownSNPs maps zero-based positions to prior records for one chromosome.
type KnownSNPs map[int]*bayes.KnownSNP

// WriteKnownSNPs writes the prior file for one chromosome. Positions are
// emitted in ascending order.
func WriteKnownSNPs(w io.Writer, chr string, snps KnownSNPs) error {
	bw := bufio.NewWriter(w)
	positions := make([]int, 0, len(snps))
	for pos := range snps {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		s := snps[pos]
		v := 0
		if s.Validated {
			v = 1
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.4f\n",
			chr, pos+1, v, s.Freq[0], s.Freq[1], s.Freq[2], s.Freq[3]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadKnownSNPs parses the prior file, returning records for every
// chromosome in the stream.
func ReadKnownSNPs(r io.Reader) (map[string]KnownSNPs, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := map[string]KnownSNPs{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 7 {
			return nil, fmt.Errorf("snpio: known-SNP line %d: %d fields, want 7", line, len(f))
		}
		pos, err := strconv.Atoi(f[1])
		if err != nil || pos < 1 {
			return nil, fmt.Errorf("snpio: known-SNP line %d: bad position %q", line, f[1])
		}
		rec := &bayes.KnownSNP{Validated: f[2] == "1"}
		var sum float64
		for b := 0; b < 4; b++ {
			v, err := strconv.ParseFloat(f[3+b], 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("snpio: known-SNP line %d: bad frequency %q", line, f[3+b])
			}
			rec.Freq[b] = v
			sum += v
		}
		if sum < 0.98 || sum > 1.02 {
			return nil, fmt.Errorf("snpio: known-SNP line %d: frequencies sum to %.3f", line, sum)
		}
		chr := f[0]
		if out[chr] == nil {
			out[chr] = KnownSNPs{}
		}
		out[chr][pos-1] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
