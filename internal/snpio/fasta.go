// Package snpio implements the file formats of the SNP-detection pipeline:
// the FASTA reference, the SOAP-style alignment text format (the main input,
// produced by sequence alignment software), the known-SNP prior file, the
// 17-column SOAPsnp result table, and GSNP's compressed binary formats for
// temporary input and final output (Section V of the paper).
package snpio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gsnp/internal/dna"
)

// FASTARecord is one sequence of a FASTA file.
type FASTARecord struct {
	Name string
	Seq  dna.Sequence
}

// fastaWidth is the line width used when writing sequences.
const fastaWidth = 70

// WriteFASTA writes records in FASTA format.
func WriteFASTA(w io.Writer, recs ...FASTARecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		s := rec.Seq.String()
		for off := 0; off < len(s); off += fastaWidth {
			end := off + fastaWidth
			if end > len(s) {
				end = len(s)
			}
			if _, err := fmt.Fprintln(bw, s[off:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses a FASTA stream. Non-ACGT characters are mapped to A, as
// the pipeline treats Ns as unusable reference anyway.
func ReadFASTA(r io.Reader) ([]FASTARecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []FASTARecord
	var cur *FASTARecord
	var body strings.Builder
	flush := func() error {
		if cur == nil {
			return nil
		}
		seq, _ := dna.ParseSequence(body.String()) // Ns tolerated
		cur.Seq = seq
		recs = append(recs, *cur)
		cur = nil
		body.Reset()
		return nil
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			if err := flush(); err != nil {
				return nil, err
			}
			name := strings.Fields(text[1:])
			if len(name) == 0 {
				return nil, fmt.Errorf("snpio: line %d: empty FASTA header", line)
			}
			cur = &FASTARecord{Name: name[0]}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("snpio: line %d: sequence data before FASTA header", line)
		}
		body.WriteString(text)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return recs, nil
}
