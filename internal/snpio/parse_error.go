package snpio

import "fmt"

// ParseError is a malformed-record error with enough positional context to
// act on: the input line, the byte offset of that line's start, and the
// offending field. The quarantine machinery (internal/pipeline) uses the
// position to produce actionable failure reports, and record-level skipping
// keys off this type — a ParseError means the stream itself is still
// readable and the next record can be parsed.
type ParseError struct {
	// Format names the input format: "soap", "sam" or "fastq".
	Format string
	// Line is the 1-based line number of the offending record.
	Line int
	// Offset is the byte offset of the start of that line, or -1 when the
	// reader cannot track it. Offsets assume \n line endings.
	Offset int64
	// Field names the offending column ("position", "FLAG", ...); empty
	// for structural errors (wrong field count, truncated record).
	Field string
	// Msg describes the defect.
	Msg string
}

func (e *ParseError) Error() string {
	s := fmt.Sprintf("snpio: %s line %d", e.Format, e.Line)
	if e.Offset >= 0 {
		s += fmt.Sprintf(" (byte %d)", e.Offset)
	}
	if e.Field != "" {
		s += fmt.Sprintf(", field %s", e.Field)
	}
	return s + ": " + e.Msg
}

// Record reports the record's position, implementing the record-level
// error interface of internal/pipeline: a ParseError is scoped to one
// input record, so a fault-tolerant consumer may skip it and keep reading.
func (e *ParseError) Record() (line int, offset int64) { return e.Line, e.Offset }
