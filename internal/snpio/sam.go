package snpio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

// SAM alignment support: the paper's contemporaries (SAMtools, Section
// II-C) standardised on the Sequence Alignment/Map format, so the caller
// accepts SAM in addition to the SOAP text format. Only the subset SNP
// calling needs is interpreted: position-sorted records with simple
// match/mismatch alignments (CIGAR "<n>M" or "*"); reads with indels,
// clipping or unmapped flags are skipped, mirroring how SOAPsnp consumes
// only ungapped hits.

// SAM flag bits used here.
const (
	samFlagUnmapped = 0x4
	samFlagReverse  = 0x10
)

// SAMReader streams alignment records from SAM text.
type SAMReader struct {
	sc      *bufio.Scanner
	line    int
	off     int64 // byte offset of the next line (assumes \n endings)
	cur     int64 // byte offset of the line being parsed
	chr     string
	skipped int64
}

// NewSAMReader wraps r.
func NewSAMReader(r io.Reader) *SAMReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &SAMReader{sc: sc}
}

// Chromosome returns the reference name of the last record read.
func (sr *SAMReader) Chromosome() string { return sr.chr }

// Skipped counts records dropped because SNP calling cannot use them
// (unmapped, gapped, clipped or malformed-but-tolerable).
func (sr *SAMReader) Skipped() int64 { return sr.skipped }

// Next parses the next usable record, returning io.EOF at end of stream.
func (sr *SAMReader) Next() (reads.AlignedRead, error) {
	for {
		if !sr.sc.Scan() {
			if err := sr.sc.Err(); err != nil {
				return reads.AlignedRead{}, err
			}
			return reads.AlignedRead{}, io.EOF
		}
		sr.line++
		sr.cur = sr.off
		sr.off += int64(len(sr.sc.Bytes())) + 1
		text := sr.sc.Text()
		if text == "" || strings.HasPrefix(text, "@") {
			continue // header or blank
		}
		r, ok, err := sr.parse(text)
		if err != nil {
			return reads.AlignedRead{}, err
		}
		if !ok {
			sr.skipped++
			continue
		}
		return r, nil
	}
}

// errf builds a positioned parse error for the line being parsed.
func (sr *SAMReader) errf(field, format string, args ...any) *ParseError {
	return &ParseError{Format: "sam", Line: sr.line, Offset: sr.cur,
		Field: field, Msg: fmt.Sprintf(format, args...)}
}

// parse interprets one alignment line; ok=false means "skip this record".
func (sr *SAMReader) parse(text string) (reads.AlignedRead, bool, error) {
	f := strings.Split(text, "\t")
	if len(f) < 11 {
		return reads.AlignedRead{}, false, sr.errf("", "%d fields, want >= 11", len(f))
	}
	flag, err := strconv.Atoi(f[1])
	if err != nil {
		return reads.AlignedRead{}, false, sr.errf("FLAG", "bad FLAG %q", f[1])
	}
	if flag&samFlagUnmapped != 0 || f[2] == "*" {
		return reads.AlignedRead{}, false, nil
	}
	pos, err := strconv.Atoi(f[3])
	if err != nil || pos < 1 {
		return reads.AlignedRead{}, false, sr.errf("POS", "bad POS %q", f[3])
	}
	seqStr, qualStr := f[9], f[10]
	if seqStr == "*" || len(qualStr) != len(seqStr) {
		return reads.AlignedRead{}, false, nil
	}
	// Only plain full-length matches are usable.
	cigar := f[5]
	if cigar != "*" && cigar != fmt.Sprintf("%dM", len(seqStr)) {
		return reads.AlignedRead{}, false, nil
	}

	var r reads.AlignedRead
	r.Pos = pos - 1
	idStr := strings.TrimPrefix(f[0], "read_")
	if id, err := strconv.ParseInt(idStr, 10, 64); err == nil {
		r.ID = id
	}
	if flag&samFlagReverse != 0 {
		r.Strand = 1
	}
	// Hit count from the NH tag when present, else 1.
	r.Hits = 1
	for _, tag := range f[11:] {
		if strings.HasPrefix(tag, "NH:i:") {
			if nh, err := strconv.Atoi(tag[5:]); err == nil && nh >= 1 {
				if nh > 255 {
					nh = 255
				}
				r.Hits = uint8(nh)
			}
		}
	}
	sr.chr = f[2]

	// SAM stores SEQ/QUAL already in reference orientation.
	seq, _ := dna.ParseSequence(seqStr)
	r.Bases = seq
	r.Quals = make([]dna.Quality, len(qualStr))
	for i := 0; i < len(qualStr); i++ {
		c := qualStr[i]
		if c < qualOffset {
			return reads.AlignedRead{}, false, sr.errf("QUAL", "bad quality character %q", c)
		}
		r.Quals[i] = dna.ClampQuality(int(c) - qualOffset)
	}
	return r, true, nil
}

// WriteSAM writes reads as minimal SAM with an @HD/@SQ header. refLen is
// the reference length for the @SQ line.
func WriteSAM(w io.Writer, chr string, refLen int, rs []reads.AlignedRead) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "@HD\tVN:1.6\tSO:coordinate\n@SQ\tSN:%s\tLN:%d\n", chr, refLen); err != nil {
		return err
	}
	for i := range rs {
		r := &rs[i]
		flag := 0
		if r.Strand == 1 {
			flag |= samFlagReverse
		}
		qs := make([]byte, len(r.Quals))
		for j, q := range r.Quals {
			qs[j] = byte(q) + qualOffset
		}
		if _, err := fmt.Fprintf(bw, "read_%d\t%d\t%s\t%d\t60\t%dM\t*\t0\t0\t%s\t%s\tNH:i:%d\n",
			r.ID, flag, chr, r.Pos+1, len(r.Bases), r.Bases.String(), qs, r.Hits); err != nil {
			return err
		}
	}
	return bw.Flush()
}
