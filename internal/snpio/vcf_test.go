package snpio

import (
	"bytes"
	"strings"
	"testing"
)

func TestVCFWriterHetTransition(t *testing.T) {
	var buf bytes.Buffer
	vw := NewVCFWriter(&buf)
	row := sampleRow() // A ref, genotype R (A/G), dbSNP
	if err := vw.Write(&row); err != nil {
		t.Fatal(err)
	}
	if err := vw.Flush(); err != nil {
		t.Fatal(err)
	}
	if vw.Count() != 1 {
		t.Errorf("Count = %d", vw.Count())
	}
	out := buf.String()
	if !strings.HasPrefix(out, "##fileformat=VCFv4.2") {
		t.Error("missing VCF header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	rec := lines[len(lines)-1]
	f := strings.Split(rec, "\t")
	if len(f) != 10 {
		t.Fatalf("record has %d fields: %q", len(f), rec)
	}
	if f[0] != "chr21" || f[1] != "12345" || f[3] != "A" || f[4] != "G" {
		t.Errorf("CHROM/POS/REF/ALT wrong: %v", f[:5])
	}
	if f[5] != "37" || f[6] != "PASS" {
		t.Errorf("QUAL/FILTER wrong: %v", f[5:7])
	}
	if !strings.Contains(f[7], "DP=10") || !strings.Contains(f[7], ";DB") {
		t.Errorf("INFO wrong: %q", f[7])
	}
	if f[9] != "0/1:37" {
		t.Errorf("sample column = %q, want 0/1:37", f[9])
	}
}

func TestVCFWriterHomAlt(t *testing.T) {
	var buf bytes.Buffer
	vw := NewVCFWriter(&buf)
	row := sampleRow()
	row.Genotype = 'G' // hom G over A ref
	row.IsDbSNP = 0
	if err := vw.Write(&row); err != nil {
		t.Fatal(err)
	}
	if err := vw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	f := strings.Split(lines[len(lines)-1], "\t")
	if f[4] != "G" || f[9] != "1/1:37" {
		t.Errorf("hom-alt record wrong: ALT=%q sample=%q", f[4], f[9])
	}
	if strings.Contains(f[7], "DB") {
		t.Error("DB flag present without dbSNP")
	}
}

func TestVCFWriterDoubleNonRefHet(t *testing.T) {
	var buf bytes.Buffer
	vw := NewVCFWriter(&buf)
	row := sampleRow()
	row.Genotype = 'S' // C/G over A ref: two ALT alleles
	if err := vw.Write(&row); err != nil {
		t.Fatal(err)
	}
	if err := vw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	f := strings.Split(lines[len(lines)-1], "\t")
	if f[4] != "C,G" {
		t.Errorf("ALT = %q, want C,G", f[4])
	}
	if f[9] != "1/2:37" {
		t.Errorf("sample = %q, want 1/2:37", f[9])
	}
}

func TestVCFWriterSkipsHomRef(t *testing.T) {
	var buf bytes.Buffer
	vw := NewVCFWriter(&buf)
	row := sampleRow()
	row.Genotype = 'A' // hom ref
	if err := vw.Write(&row); err != nil {
		t.Fatal(err)
	}
	if err := vw.Flush(); err != nil {
		t.Fatal(err)
	}
	if vw.Count() != 0 {
		t.Error("hom-ref row emitted")
	}
	// Still a valid VCF: header only.
	if !strings.Contains(buf.String(), "#CHROM") {
		t.Error("header missing from empty VCF")
	}
}

func TestVCFWriterBadRows(t *testing.T) {
	vw := NewVCFWriter(&bytes.Buffer{})
	row := sampleRow()
	row.Ref = 'N'
	row.Genotype = 'R'
	// N reference: IsSNP is false, so the row is skipped silently.
	if err := vw.Write(&row); err != nil {
		t.Errorf("N-ref row errored: %v", err)
	}
	row = sampleRow()
	row.Genotype = 'Z'
	if err := vw.Write(&row); err == nil {
		t.Error("bad genotype code accepted")
	}
}
