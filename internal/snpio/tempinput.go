package snpio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gsnp/internal/compress"
	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

// GSNP temporary input format (Section V-A): cal_p_matrix reads the
// original alignment text once and rewrites it compressed, so the second
// pass (read_site) reads roughly one third of the bytes. Reads are batched
// into blocks; within a block, positions are delta-coded, bases packed two
// bits each and quality strings RLE-DICT coded across the whole block.

// tmpMagic identifies the temporary input stream.
var tmpMagic = []byte("GSNPTMP1")

// tmpBlockReads is the number of reads per block.
const tmpBlockReads = 4096

// TempWriter writes the compressed temporary input.
type TempWriter struct {
	bw    *bufio.Writer
	batch []reads.AlignedRead
	chr   string
	wrote bool
	n     int64
}

// NewTempWriter creates a writer for chromosome chr.
func NewTempWriter(w io.Writer, chr string) *TempWriter {
	return &TempWriter{bw: bufio.NewWriterSize(w, 1<<20), chr: chr}
}

// Write buffers one read (reads must arrive position-sorted).
func (tw *TempWriter) Write(r *reads.AlignedRead) error {
	tw.batch = append(tw.batch, *r)
	tw.n++
	if len(tw.batch) >= tmpBlockReads {
		return tw.flushBlock()
	}
	return nil
}

// Count returns the number of reads written.
func (tw *TempWriter) Count() int64 { return tw.n }

// Flush writes any buffered block and completes the stream.
func (tw *TempWriter) Flush() error {
	if err := tw.flushBlock(); err != nil {
		return err
	}
	return tw.bw.Flush()
}

func (tw *TempWriter) flushBlock() error {
	if len(tw.batch) == 0 {
		return nil
	}
	if !tw.wrote {
		if _, err := tw.bw.Write(tmpMagic); err != nil {
			return err
		}
		name := appendUvarint(nil, uint64(len(tw.chr)))
		name = append(name, tw.chr...)
		if _, err := tw.bw.Write(name); err != nil {
			return err
		}
		tw.wrote = true
	}

	n := len(tw.batch)
	var payload []byte
	payload = appendUvarint(payload, uint64(n))
	prev := 0
	var meta []byte
	var baseCodes []uint8
	var quals []uint32
	for i := range tw.batch {
		r := &tw.batch[i]
		meta = appendUvarint(meta, uint64(r.Pos-prev))
		prev = r.Pos
		meta = appendUvarint(meta, uint64(r.ID))
		meta = append(meta, r.Strand|r.Hits<<1)
		meta = appendUvarint(meta, uint64(len(r.Bases)))
		for _, b := range r.Bases {
			baseCodes = append(baseCodes, uint8(b))
		}
		for _, q := range r.Quals {
			quals = append(quals, uint32(q))
		}
	}
	payload = appendUvarint(payload, uint64(len(meta)))
	payload = append(payload, meta...)
	payload = append(payload, compress.Pack2Bit(baseCodes)...)
	payload = append(payload, compress.RLEDictEncode(quals)...)

	frame := appendUvarint(nil, uint64(len(payload)))
	if _, err := tw.bw.Write(frame); err != nil {
		return err
	}
	if _, err := tw.bw.Write(payload); err != nil {
		return err
	}
	tw.batch = tw.batch[:0]
	return nil
}

// TempReader streams reads back out of the temporary input.
type TempReader struct {
	br     *bufio.Reader
	chr    string
	header bool
	buf    []reads.AlignedRead
	pos    int
}

// NewTempReader wraps r.
func NewTempReader(r io.Reader) *TempReader {
	return &TempReader{br: bufio.NewReaderSize(r, 1<<20)}
}

// Chromosome returns the stream's chromosome name (valid after the first
// Next call).
func (tr *TempReader) Chromosome() string { return tr.chr }

// Next returns the next read, or io.EOF.
func (tr *TempReader) Next() (reads.AlignedRead, error) {
	if tr.pos >= len(tr.buf) {
		if err := tr.readBlock(); err != nil {
			return reads.AlignedRead{}, err
		}
	}
	r := tr.buf[tr.pos]
	tr.pos++
	return r, nil
}

func (tr *TempReader) readBlock() error {
	if !tr.header {
		head := make([]byte, len(tmpMagic))
		if _, err := io.ReadFull(tr.br, head); err != nil {
			if err == io.ErrUnexpectedEOF {
				return fmt.Errorf("snpio: truncated temp-input header")
			}
			return err
		}
		if string(head) != string(tmpMagic) {
			return fmt.Errorf("snpio: bad magic %q, not a GSNP temp-input file", head)
		}
		nameLen, err := binary.ReadUvarint(tr.br)
		if err != nil {
			return err
		}
		if nameLen > 4096 {
			return fmt.Errorf("snpio: temp-input chromosome name of %d bytes", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(tr.br, name); err != nil {
			return err
		}
		tr.chr = string(name)
		tr.header = true
	}
	size, err := binary.ReadUvarint(tr.br)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return io.EOF
		}
		return err
	}
	if size > maxBlockBytes {
		return fmt.Errorf("snpio: temp-input block claims %d bytes (limit %d)", size, maxBlockBytes)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(tr.br, payload); err != nil {
		return fmt.Errorf("snpio: truncated temp-input block: %v", err)
	}

	n64, off, err := uvarintAt(payload, 0)
	if err != nil {
		return err
	}
	// Every read costs at least four metadata bytes, and the writer never
	// batches more than tmpBlockReads; reject counts beyond either bound
	// before allocating.
	if n64 > size/4 || n64 > 16*tmpBlockReads {
		return fmt.Errorf("snpio: temp-input block claims %d reads in %d bytes", n64, size)
	}
	metaLen, off, err := uvarintAt(payload, off)
	if err != nil {
		return err
	}
	if off+int(metaLen) > len(payload) {
		return fmt.Errorf("snpio: truncated metadata section")
	}
	meta := payload[off : off+int(metaLen)]
	off += int(metaLen)
	baseCodes, m, err := compress.Unpack2Bit(payload[off:])
	if err != nil {
		return err
	}
	off += m
	quals, _, err := compress.RLEDictDecode(payload[off:])
	if err != nil {
		return err
	}

	n := int(n64)
	tr.buf = make([]reads.AlignedRead, n)
	tr.pos = 0
	mOff := 0
	prev := 0
	consumed := 0
	for i := 0; i < n; i++ {
		d, m2, err := uvarintAt(meta, mOff)
		if err != nil {
			return err
		}
		mOff = m2
		id, m2, err := uvarintAt(meta, mOff)
		if err != nil {
			return err
		}
		mOff = m2
		if mOff >= len(meta) {
			return fmt.Errorf("snpio: truncated read metadata")
		}
		sh := meta[mOff]
		mOff++
		rl64, m2, err := uvarintAt(meta, mOff)
		if err != nil {
			return err
		}
		mOff = m2
		rl := int(rl64)
		if consumed+rl > len(baseCodes) || consumed+rl > len(quals) {
			return fmt.Errorf("snpio: base/quality sections shorter than metadata claims")
		}
		prev += int(d)
		r := &tr.buf[i]
		r.Pos = prev
		r.ID = int64(id)
		r.Strand = sh & 1
		r.Hits = sh >> 1
		r.Bases = make(dna.Sequence, rl)
		r.Quals = make([]dna.Quality, rl)
		for k := 0; k < rl; k++ {
			r.Bases[k] = dna.Base(baseCodes[consumed+k])
			r.Quals[k] = dna.Quality(quals[consumed+k])
		}
		consumed += rl
	}
	return nil
}
