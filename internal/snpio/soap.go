package snpio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

// The SOAP alignment text format: one read per line, tab-separated —
//
//	id  sequence  quality  hits  length  strand  chromosome  position
//
// Sequence and quality are written in sequencing orientation (the reverse
// complement of the reference orientation for '-' strand reads), position
// is 1-based leftmost reference coordinate, quality is Phred+33 ASCII.
// This mirrors the relevant columns of the format emitted by the SOAP
// aligner that SOAPsnp consumes, with alignment-type columns the SNP caller
// ignores omitted.

// qualOffset is the Phred ASCII offset.
const qualOffset = 33

// SOAPWriter streams alignment records to text.
type SOAPWriter struct {
	bw  *bufio.Writer
	chr string
	n   int64
}

// NewSOAPWriter creates a writer emitting records for chromosome chr.
func NewSOAPWriter(w io.Writer, chr string) *SOAPWriter {
	return &SOAPWriter{bw: bufio.NewWriterSize(w, 1<<20), chr: chr}
}

// Write emits one alignment record.
func (sw *SOAPWriter) Write(r *reads.AlignedRead) error {
	bases := r.Bases
	quals := r.Quals
	strand := byte('+')
	if r.Strand == 1 {
		strand = '-'
		bases = bases.ReverseComplement()
		rq := make([]dna.Quality, len(quals))
		for i, q := range quals {
			rq[len(quals)-1-i] = q
		}
		quals = rq
	}
	qs := make([]byte, len(quals))
	for i, q := range quals {
		qs[i] = byte(q) + qualOffset
	}
	_, err := fmt.Fprintf(sw.bw, "read_%d\t%s\t%s\t%d\t%d\t%c\t%s\t%d\n",
		r.ID, bases.String(), qs, r.Hits, len(bases), strand, sw.chr, r.Pos+1)
	if err == nil {
		sw.n++
	}
	return err
}

// Flush completes the stream.
func (sw *SOAPWriter) Flush() error { return sw.bw.Flush() }

// Count returns the number of records written.
func (sw *SOAPWriter) Count() int64 { return sw.n }

// WriteSOAP writes a whole read set.
func WriteSOAP(w io.Writer, chr string, rs []reads.AlignedRead) error {
	sw := NewSOAPWriter(w, chr)
	for i := range rs {
		if err := sw.Write(&rs[i]); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// SOAPReader streams alignment records from text.
type SOAPReader struct {
	sc   *bufio.Scanner
	line int
	off  int64 // byte offset of the next line (assumes \n endings)
	cur  int64 // byte offset of the line being parsed
	chr  string
}

// NewSOAPReader wraps r.
func NewSOAPReader(r io.Reader) *SOAPReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &SOAPReader{sc: sc}
}

// Chromosome returns the chromosome name of the last record read.
func (sr *SOAPReader) Chromosome() string { return sr.chr }

// Next parses the next record. It returns io.EOF at end of stream.
func (sr *SOAPReader) Next() (reads.AlignedRead, error) {
	for {
		if !sr.sc.Scan() {
			if err := sr.sc.Err(); err != nil {
				return reads.AlignedRead{}, err
			}
			return reads.AlignedRead{}, io.EOF
		}
		sr.line++
		sr.cur = sr.off
		sr.off += int64(len(sr.sc.Bytes())) + 1
		text := strings.TrimSpace(sr.sc.Text())
		if text == "" {
			continue
		}
		return sr.parse(text)
	}
}

// errf builds a positioned parse error for the line being parsed.
func (sr *SOAPReader) errf(field, format string, args ...any) *ParseError {
	return &ParseError{Format: "soap", Line: sr.line, Offset: sr.cur,
		Field: field, Msg: fmt.Sprintf(format, args...)}
}

func (sr *SOAPReader) parse(text string) (reads.AlignedRead, error) {
	f := strings.Split(text, "\t")
	if len(f) != 8 {
		return reads.AlignedRead{}, sr.errf("", "%d fields, want 8", len(f))
	}
	var r reads.AlignedRead
	idStr := strings.TrimPrefix(f[0], "read_")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		return r, sr.errf("id", "bad read id %q", f[0])
	}
	r.ID = id
	seq, _ := dna.ParseSequence(f[1])
	hits, err := strconv.Atoi(f[3])
	if err != nil || hits < 1 || hits > 255 {
		return r, sr.errf("hits", "bad hit count %q", f[3])
	}
	r.Hits = uint8(hits)
	length, err := strconv.Atoi(f[4])
	if err != nil || length != len(seq) || length != len(f[2]) {
		return r, sr.errf("length", "length %q inconsistent with sequence", f[4])
	}
	switch f[5] {
	case "+":
		r.Strand = 0
	case "-":
		r.Strand = 1
	default:
		return r, sr.errf("strand", "bad strand %q", f[5])
	}
	sr.chr = f[6]
	pos, err := strconv.Atoi(f[7])
	if err != nil || pos < 1 {
		return r, sr.errf("position", "bad position %q", f[7])
	}
	r.Pos = pos - 1

	quals := make([]dna.Quality, length)
	for i := 0; i < length; i++ {
		c := f[2][i]
		if c < qualOffset {
			return r, sr.errf("quality", "bad quality character %q", c)
		}
		quals[i] = dna.ClampQuality(int(c) - qualOffset)
	}
	if r.Strand == 1 {
		seq = seq.ReverseComplement()
		for i, j := 0, len(quals)-1; i < j; i, j = i+1, j-1 {
			quals[i], quals[j] = quals[j], quals[i]
		}
	}
	r.Bases = seq
	r.Quals = quals
	return r, nil
}

// ReadSOAP reads a whole alignment stream, returning the records and the
// chromosome name.
func ReadSOAP(r io.Reader) ([]reads.AlignedRead, string, error) {
	sr := NewSOAPReader(r)
	var rs []reads.AlignedRead
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return rs, sr.Chromosome(), nil
		}
		if err != nil {
			return nil, "", err
		}
		rs = append(rs, rec)
	}
}
