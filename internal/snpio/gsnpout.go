package snpio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gsnp/internal/compress"
	"gsnp/internal/dna"
	"gsnp/internal/gpu"
)

// GSNP compressed output container (Section V-B of the paper). The result
// table is compressed column by column, one block per processing window:
//
//   - chromosome name and site IDs: stored once per block as (name, start,
//     count) — sites are consecutive;
//   - base-type columns (reference, best base): two bits per base;
//   - SNP-related columns (genotype, dbSNP flag, rank-sum p): difference
//     coded against their overwhelmingly common default;
//   - second-allele columns (second base, its quality/counts): sparse,
//     storing only non-default entries;
//   - six quality-related columns (consensus quality, avg quality best,
//     count best, count-uniq best, depth, copy number): RLE-DICT, the
//     two-level run-length + dictionary codec.
//
// Stream layout: a magic header, then length-prefixed blocks, so the file
// can be decompressed block by block in memory by multiple passes, as the
// paper's decompression tools do.

// gsnpMagic identifies the compressed output stream.
var gsnpMagic = []byte("GSNPv1\n")

// maxBlockBytes bounds a single block's serialized size, so a corrupted
// length prefix cannot demand an arbitrary allocation.
const maxBlockBytes = 1 << 28

// rankSumScale and copyNumScale quantize the two fixed-point columns,
// matching the 5- and 3-decimal text output.
const (
	rankSumScale = 100000
	copyNumScale = 1000
)

// QuantizeRow rounds the fixed-point columns of r to their output
// precision (five decimals for RankSumP, three for CopyNum) so that the
// text and compressed binary encodings of a row are exactly equivalent.
func QuantizeRow(r *Row) {
	r.RankSumP = math.Round(r.RankSumP*rankSumScale) / rankSumScale
	r.CopyNum = math.Round(r.CopyNum*copyNumScale) / copyNumScale
}

// BlockWriter writes the compressed result container.
type BlockWriter struct {
	bw *bufio.Writer
	// Dev selects the GPU path for the six RLE-DICT columns when non-nil,
	// as GSNP compresses output on the device; output bytes are identical
	// either way.
	dev    *gpu.Device
	wrote  bool
	blocks int
}

// NewBlockWriter creates a CPU-compressing writer.
func NewBlockWriter(w io.Writer) *BlockWriter {
	return &BlockWriter{bw: bufio.NewWriterSize(w, 1<<20)}
}

// NewBlockWriterGPU creates a writer that compresses the RLE-DICT columns
// on the simulated device.
func NewBlockWriterGPU(w io.Writer, dev *gpu.Device) *BlockWriter {
	return &BlockWriter{bw: bufio.NewWriterSize(w, 1<<20), dev: dev}
}

// Blocks returns the number of blocks written.
func (w *BlockWriter) Blocks() int { return w.blocks }

// rleDict dispatches a quality-related column to the CPU or GPU encoder.
func (w *BlockWriter) rleDict(vals []uint32) []byte {
	if w.dev != nil {
		return compress.RLEDictEncodeGPU(w.dev, vals)
	}
	return compress.RLEDictEncode(vals)
}

// baseCode converts a base letter to its 2-bit code; N and other letters
// map to code 0 (they cannot appear in the two packed columns by
// construction: reference and best base are always ACGT here).
func baseCode(letter byte) uint8 {
	b, ok := dna.ParseBase(letter)
	if !ok {
		return 0
	}
	return uint8(b)
}

// secondCode maps the second-base column to 0..4 with 4 = absent (N).
func secondCode(letter byte) uint32 {
	b, ok := dna.ParseBase(letter)
	if !ok {
		return 4
	}
	return uint32(b)
}

var secondLetters = [5]byte{'A', 'C', 'G', 'T', 'N'}

// WriteBlock compresses and appends one window of rows. All rows must
// belong to one chromosome and occupy consecutive positions.
func (w *BlockWriter) WriteBlock(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	if !w.wrote {
		if _, err := w.bw.Write(gsnpMagic); err != nil {
			return err
		}
		w.wrote = true
	}
	chr := rows[0].Chr
	start := rows[0].Pos
	for i := range rows {
		if rows[i].Chr != chr {
			return fmt.Errorf("snpio: block mixes chromosomes %q and %q", chr, rows[i].Chr)
		}
		if rows[i].Pos != start+int64(i) {
			return fmt.Errorf("snpio: block positions not consecutive at index %d", i)
		}
	}

	n := len(rows)
	refCol := make([]uint8, n)
	bestCol := make([]uint8, n)
	genoCol := make([]uint32, n) // 0 = hom-ref default, else IUPAC byte
	qualCol := make([]uint32, n)
	avgQ1Col := make([]uint32, n)
	cnt1Col := make([]uint32, n)
	uniq1Col := make([]uint32, n)
	secondCol := make([]uint32, n)
	avgQ2Col := make([]uint32, n)
	cnt2Col := make([]uint32, n)
	uniq2Col := make([]uint32, n)
	depthCol := make([]uint32, n)
	rankCol := make([]uint32, n)
	copyCol := make([]uint32, n)
	dbCol := make([]uint32, n)
	for i := range rows {
		r := &rows[i]
		refCol[i] = baseCode(r.Ref)
		bestCol[i] = baseCode(r.BestBase)
		if r.Genotype != r.Ref {
			genoCol[i] = uint32(r.Genotype)
		}
		qualCol[i] = uint32(r.Quality)
		avgQ1Col[i] = uint32(r.AvgQualBest)
		cnt1Col[i] = uint32(r.CountBest)
		uniq1Col[i] = uint32(r.CountUniqBest)
		secondCol[i] = secondCode(r.SecondBase)
		avgQ2Col[i] = uint32(r.AvgQualSecond)
		cnt2Col[i] = uint32(r.CountSecond)
		uniq2Col[i] = uint32(r.CountUniqSecond)
		depthCol[i] = uint32(r.Depth)
		rankCol[i] = uint32(math.Round(r.RankSumP * rankSumScale))
		copyCol[i] = uint32(math.Round(r.CopyNum * copyNumScale))
		dbCol[i] = uint32(r.IsDbSNP)
	}

	var payload []byte
	payload = appendUvarint(payload, uint64(len(chr)))
	payload = append(payload, chr...)
	payload = appendUvarint(payload, uint64(start))
	payload = appendUvarint(payload, uint64(n))
	payload = append(payload, compress.Pack2Bit(refCol)...)
	payload = append(payload, compress.SparseEncode(genoCol, 0)...)
	payload = append(payload, w.rleDict(qualCol)...)
	payload = append(payload, compress.Pack2Bit(bestCol)...)
	payload = append(payload, w.rleDict(avgQ1Col)...)
	payload = append(payload, w.rleDict(cnt1Col)...)
	payload = append(payload, w.rleDict(uniq1Col)...)
	payload = append(payload, compress.SparseEncode(secondCol, 4)...)
	payload = append(payload, compress.SparseEncode(avgQ2Col, 0)...)
	payload = append(payload, compress.SparseEncode(cnt2Col, 0)...)
	payload = append(payload, compress.SparseEncode(uniq2Col, 0)...)
	payload = append(payload, w.rleDict(depthCol)...)
	payload = append(payload, compress.SparseEncode(rankCol, rankSumScale)...)
	payload = append(payload, w.rleDict(copyCol)...)
	payload = append(payload, compress.SparseEncode(dbCol, 0)...)

	frame := appendUvarint(nil, uint64(len(payload)))
	if _, err := w.bw.Write(frame); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.blocks++
	return nil
}

// Flush completes the stream.
func (w *BlockWriter) Flush() error { return w.bw.Flush() }

// appendUvarint appends a varint to buf.
func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

// BlockReader streams blocks out of the compressed container, the
// decompression API of Section V-B: each block decompresses independently
// in memory.
type BlockReader struct {
	br     *bufio.Reader
	header bool
}

// NewBlockReader wraps r.
func NewBlockReader(r io.Reader) *BlockReader {
	return &BlockReader{br: bufio.NewReaderSize(r, 1<<20)}
}

// NextBlock decompresses the next window of rows, returning io.EOF at the
// end of the stream.
func (br *BlockReader) NextBlock() ([]Row, error) {
	if !br.header {
		head := make([]byte, len(gsnpMagic))
		if _, err := io.ReadFull(br.br, head); err != nil {
			if err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("snpio: truncated GSNP header")
			}
			return nil, err
		}
		if string(head) != string(gsnpMagic) {
			return nil, fmt.Errorf("snpio: bad magic %q, not a GSNP output file", head)
		}
		br.header = true
	}
	size, err := binary.ReadUvarint(br.br)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	if size > maxBlockBytes {
		return nil, fmt.Errorf("snpio: block claims %d bytes (limit %d)", size, maxBlockBytes)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br.br, payload); err != nil {
		return nil, fmt.Errorf("snpio: truncated block: %v", err)
	}
	return decodeBlock(payload)
}

// decodeBlock inverts WriteBlock's payload encoding.
func decodeBlock(p []byte) ([]Row, error) {
	nameLen, off, err := uvarintAt(p, 0)
	if err != nil {
		return nil, err
	}
	if off+int(nameLen) > len(p) {
		return nil, fmt.Errorf("snpio: truncated chromosome name")
	}
	chr := string(p[off : off+int(nameLen)])
	off += int(nameLen)
	start64, off, err := uvarintAt(p, off)
	if err != nil {
		return nil, err
	}
	n64, off, err := uvarintAt(p, off)
	if err != nil {
		return nil, err
	}
	n := int(n64)

	next2bit := func() ([]uint8, error) {
		vals, m, err := compress.Unpack2Bit(p[off:])
		off += m
		return vals, err
	}
	nextSparse := func() ([]uint32, error) {
		vals, m, err := compress.SparseDecode(p[off:])
		off += m
		return vals, err
	}
	nextRLED := func() ([]uint32, error) {
		vals, m, err := compress.RLEDictDecode(p[off:])
		off += m
		return vals, err
	}

	refCol, err := next2bit()
	if err != nil {
		return nil, err
	}
	genoCol, err := nextSparse()
	if err != nil {
		return nil, err
	}
	qualCol, err := nextRLED()
	if err != nil {
		return nil, err
	}
	bestCol, err := next2bit()
	if err != nil {
		return nil, err
	}
	avgQ1Col, err := nextRLED()
	if err != nil {
		return nil, err
	}
	cnt1Col, err := nextRLED()
	if err != nil {
		return nil, err
	}
	uniq1Col, err := nextRLED()
	if err != nil {
		return nil, err
	}
	secondCol, err := nextSparse()
	if err != nil {
		return nil, err
	}
	avgQ2Col, err := nextSparse()
	if err != nil {
		return nil, err
	}
	cnt2Col, err := nextSparse()
	if err != nil {
		return nil, err
	}
	uniq2Col, err := nextSparse()
	if err != nil {
		return nil, err
	}
	depthCol, err := nextRLED()
	if err != nil {
		return nil, err
	}
	rankCol, err := nextSparse()
	if err != nil {
		return nil, err
	}
	copyCol, err := nextRLED()
	if err != nil {
		return nil, err
	}
	dbCol, err := nextSparse()
	if err != nil {
		return nil, err
	}

	for name, col := range map[string]int{
		"ref": len(refCol), "geno": len(genoCol), "qual": len(qualCol),
		"best": len(bestCol), "avgQ1": len(avgQ1Col), "cnt1": len(cnt1Col),
		"uniq1": len(uniq1Col), "second": len(secondCol), "avgQ2": len(avgQ2Col),
		"cnt2": len(cnt2Col), "uniq2": len(uniq2Col), "depth": len(depthCol),
		"rank": len(rankCol), "copy": len(copyCol), "db": len(dbCol),
	} {
		if col != n {
			return nil, fmt.Errorf("snpio: column %s has %d entries, want %d", name, col, n)
		}
	}

	rows := make([]Row, n)
	for i := range rows {
		r := &rows[i]
		r.Chr = chr
		r.Pos = int64(start64) + int64(i)
		r.Ref = dna.Base(refCol[i]).Byte()
		if genoCol[i] == 0 {
			r.Genotype = r.Ref
		} else {
			r.Genotype = byte(genoCol[i])
		}
		r.Quality = uint8(qualCol[i])
		r.BestBase = dna.Base(bestCol[i]).Byte()
		r.AvgQualBest = uint8(avgQ1Col[i])
		r.CountBest = uint16(cnt1Col[i])
		r.CountUniqBest = uint16(uniq1Col[i])
		if secondCol[i] > 4 {
			return nil, fmt.Errorf("snpio: bad second-base code %d", secondCol[i])
		}
		r.SecondBase = secondLetters[secondCol[i]]
		r.AvgQualSecond = uint8(avgQ2Col[i])
		r.CountSecond = uint16(cnt2Col[i])
		r.CountUniqSecond = uint16(uniq2Col[i])
		r.Depth = uint16(depthCol[i])
		r.RankSumP = float64(rankCol[i]) / rankSumScale
		r.CopyNum = float64(copyCol[i]) / copyNumScale
		r.IsDbSNP = uint8(dbCol[i])
	}
	return rows, nil
}

// uvarintAt reads a varint at offset off of p.
func uvarintAt(p []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("snpio: malformed varint at offset %d", off)
	}
	return v, off + n, nil
}

// ReadAllBlocks decompresses an entire container.
func ReadAllBlocks(r io.Reader) ([]Row, error) {
	br := NewBlockReader(r)
	var rows []Row
	for {
		blk, err := br.NextBlock()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, blk...)
	}
}
