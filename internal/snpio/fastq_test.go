package snpio

import (
	"bytes"
	"strings"
	"testing"

	"gsnp/internal/align"
	"gsnp/internal/dna"
)

func sampleRaws(t *testing.T) []align.RawRead {
	t.Helper()
	seq1, _ := dna.ParseSequence("ACGTACGTAC")
	seq2, _ := dna.ParseSequence("TTGGCCAATT")
	return []align.RawRead{
		{ID: 0, Seq: seq1, Quals: []dna.Quality{30, 31, 32, 33, 34, 35, 36, 37, 38, 39}},
		{ID: 7, Seq: seq2, Quals: []dna.Quality{5, 5, 5, 5, 5, 20, 20, 20, 20, 20}},
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	raws := sampleRaws(t)
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, raws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(raws) {
		t.Fatalf("got %d reads", len(got))
	}
	for i := range raws {
		if got[i].ID != raws[i].ID {
			t.Errorf("read %d id = %d", i, got[i].ID)
		}
		if got[i].Seq.String() != raws[i].Seq.String() {
			t.Errorf("read %d sequence corrupted", i)
		}
		for j := range raws[i].Quals {
			if got[i].Quals[j] != raws[i].Quals[j] {
				t.Errorf("read %d quality corrupted at %d", i, j)
			}
		}
	}
}

func TestFASTQFormat(t *testing.T) {
	raws := sampleRaws(t)[:1]
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, raws); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("FASTQ record has %d lines", len(lines))
	}
	if lines[0] != "@read_0" || lines[1] != "ACGTACGTAC" || lines[2] != "+" {
		t.Errorf("unexpected record: %v", lines)
	}
}

func TestFASTQErrors(t *testing.T) {
	bad := []string{
		"read_1\nACGT\n+\n!!!!\n",     // missing @
		"@read_1\nACGT\n-\n!!!!\n",    // bad separator
		"@read_1\nACGT\n+\n!!!\n",     // quality length mismatch
		"@read_1\nACGT\n+\n!!\x01!\n", // bad quality char
		"@read_1\nACGT\n",             // truncated
	}
	for _, b := range bad {
		if _, err := ReadFASTQ(strings.NewReader(b)); err == nil {
			t.Errorf("malformed FASTQ accepted: %q", b)
		}
	}
	// Unparseable ids fall back to ordinal numbering.
	got, err := ReadFASTQ(strings.NewReader("@weird header\nAC\n+\nII\n"))
	if err != nil || len(got) != 1 || got[0].ID != 0 {
		t.Errorf("header fallback wrong: %v %v", got, err)
	}
}
