package snpio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"gsnp/internal/gpu"
)

// makeRows builds a realistic window of result rows: mostly hom-ref with
// occasional SNPs, run-structured quality columns.
func makeRows(chr string, start int64, n int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	letters := []byte{'A', 'C', 'G', 'T'}
	depth := uint16(9)
	qual := uint8(40)
	for i := range rows {
		if i%13 == 0 {
			depth = uint16(5 + rng.Intn(10))
		}
		if i%17 == 0 {
			qual = uint8(20 + rng.Intn(40))
		}
		ref := letters[rng.Intn(4)]
		r := Row{
			Chr: chr, Pos: start + int64(i), Ref: ref, Genotype: ref,
			Quality: qual, BestBase: ref, AvgQualBest: qual - 5,
			CountBest: depth, CountUniqBest: depth - 1,
			SecondBase: 'N', Depth: depth, RankSumP: 1, CopyNum: 1.001,
		}
		if rng.Float64() < 0.002 {
			// A het SNP row exercising the sparse columns.
			r.Genotype = 'R'
			r.SecondBase = 'G'
			r.AvgQualSecond = 30
			r.CountSecond = depth / 2
			r.CountUniqSecond = depth / 2
			r.RankSumP = 0.4321
			r.IsDbSNP = 1
		}
		QuantizeRow(&r)
		rows[i] = r
	}
	return rows
}

func TestBlockRoundTrip(t *testing.T) {
	rows := makeRows("chr21", 1, 5000, 3)
	var buf bytes.Buffer
	w := NewBlockWriter(&buf)
	if err := w.WriteBlock(rows[:2500]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(rows[2500:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Blocks() != 2 {
		t.Errorf("Blocks = %d", w.Blocks())
	}
	got, err := ReadAllBlocks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d corrupted:\n got %+v\nwant %+v", i, got[i], rows[i])
		}
	}
}

func TestBlockCompressionRatio(t *testing.T) {
	rows := makeRows("chr1", 1, 20000, 5)
	var bin bytes.Buffer
	w := NewBlockWriter(&bin)
	if err := w.WriteBlock(rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	rw := NewResultWriter(&text)
	for i := range rows {
		if err := rw.Write(&rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(text.Len()) / float64(bin.Len())
	// The paper reports plain output 14-16x larger than GSNP's.
	if ratio < 8 {
		t.Errorf("compression ratio = %.1f, want >= 8 (paper: 14-16)", ratio)
	}
	t.Logf("text %d B, compressed %d B, ratio %.1fx", text.Len(), bin.Len(), ratio)
}

func TestBlockWriterGPUByteIdentical(t *testing.T) {
	rows := makeRows("chr21", 100, 4000, 9)
	var cpu, dev bytes.Buffer
	w := NewBlockWriter(&cpu)
	if err := w.WriteBlock(rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	g := NewBlockWriterGPU(&dev, gpu.NewDevice(gpu.M2050()))
	if err := g.WriteBlock(rows); err != nil {
		t.Fatal(err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cpu.Bytes(), dev.Bytes()) {
		t.Error("GPU-compressed container differs from CPU-compressed container")
	}
}

func TestBlockWriterValidation(t *testing.T) {
	w := NewBlockWriter(&bytes.Buffer{})
	rows := makeRows("a", 1, 10, 1)
	rows[5].Chr = "b"
	if err := w.WriteBlock(rows); err == nil {
		t.Error("mixed-chromosome block accepted")
	}
	rows = makeRows("a", 1, 10, 1)
	rows[5].Pos = 999
	if err := w.WriteBlock(rows); err == nil {
		t.Error("non-consecutive block accepted")
	}
	if err := w.WriteBlock(nil); err != nil {
		t.Errorf("empty block rejected: %v", err)
	}
}

func TestBlockReaderErrors(t *testing.T) {
	if _, err := ReadAllBlocks(bytes.NewReader([]byte("WRONGMAG"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated block body.
	rows := makeRows("c", 1, 100, 2)
	var buf bytes.Buffer
	w := NewBlockWriter(&buf)
	if err := w.WriteBlock(rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadAllBlocks(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated container accepted")
	}
}

func TestQuantizeRow(t *testing.T) {
	r := Row{RankSumP: 0.123456789, CopyNum: 1.23456}
	QuantizeRow(&r)
	if r.RankSumP != 0.12346 {
		t.Errorf("RankSumP = %v", r.RankSumP)
	}
	if r.CopyNum != 1.235 {
		t.Errorf("CopyNum = %v", r.CopyNum)
	}
}

func TestTempInputRoundTrip(t *testing.T) {
	rs := makeReads(t)
	var buf bytes.Buffer
	tw := NewTempWriter(&buf, "chrT")
	for i := range rs {
		if err := tw.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != int64(len(rs)) {
		t.Errorf("Count = %d", tw.Count())
	}

	tr := NewTempReader(&buf)
	for i := range rs {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := &rs[i]
		if got.ID != want.ID || got.Pos != want.Pos || got.Strand != want.Strand || got.Hits != want.Hits {
			t.Fatalf("read %d metadata corrupted", i)
		}
		if got.Bases.String() != want.Bases.String() {
			t.Fatalf("read %d bases corrupted", i)
		}
		for j := range want.Quals {
			if got.Quals[j] != want.Quals[j] {
				t.Fatalf("read %d quals corrupted at %d", i, j)
			}
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if tr.Chromosome() != "chrT" {
		t.Errorf("chromosome = %q", tr.Chromosome())
	}
}

func TestTempInputSmallerThanText(t *testing.T) {
	rs := makeReads(t)
	var text, bin bytes.Buffer
	if err := WriteSOAP(&text, "chrT", rs); err != nil {
		t.Fatal(err)
	}
	tw := NewTempWriter(&bin, "chrT")
	for i := range rs {
		if err := tw.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(bin.Len()) / float64(text.Len())
	// Figure 10(b): compressed input around one third of the original.
	if ratio > 0.45 {
		t.Errorf("temp input is %.0f%% of text size, want <= 45%% (paper ~33%%)", 100*ratio)
	}
	t.Logf("text %d B, temp %d B (%.0f%%)", text.Len(), bin.Len(), 100*ratio)
}

func TestTempReaderBadMagic(t *testing.T) {
	tr := NewTempReader(bytes.NewReader([]byte("NOTMAGIC")))
	if _, err := tr.Next(); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBlockReaderStreamsBlockByBlock(t *testing.T) {
	var buf bytes.Buffer
	w := NewBlockWriter(&buf)
	for blk := 0; blk < 4; blk++ {
		rows := makeRows("chrS", int64(1+1000*blk), 1000, int64(blk))
		if err := w.WriteBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBlockReader(&buf)
	blocks := 0
	for {
		blk, err := br.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(blk) != 1000 {
			t.Fatalf("block %d has %d rows", blocks, len(blk))
		}
		if blk[0].Pos != int64(1+1000*blocks) {
			t.Fatalf("block %d starts at %d", blocks, blk[0].Pos)
		}
		blocks++
	}
	if blocks != 4 {
		t.Errorf("streamed %d blocks, want 4", blocks)
	}
}

func TestTempWriterEmptyFlush(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTempWriter(&buf, "c")
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty temp writer produced %d bytes", buf.Len())
	}
}
