package compress

import (
	"testing"

	"gsnp/internal/gpu"
)

func benchColumn(n int) []uint32 {
	return qualityColumn(n, 42)
}

func BenchmarkRLEEncode(b *testing.B) {
	vals := benchColumn(100000)
	b.SetBytes(int64(len(vals) * 4))
	for i := 0; i < b.N; i++ {
		RLEEncode(vals)
	}
}

func BenchmarkRLEDictEncode(b *testing.B) {
	vals := benchColumn(100000)
	b.SetBytes(int64(len(vals) * 4))
	for i := 0; i < b.N; i++ {
		RLEDictEncode(vals)
	}
}

func BenchmarkRLEDictDecode(b *testing.B) {
	vals := benchColumn(100000)
	buf := RLEDictEncode(vals)
	b.SetBytes(int64(len(vals) * 4))
	for i := 0; i < b.N; i++ {
		if _, _, err := RLEDictDecode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRLEDictEncodeGPU(b *testing.B) {
	d := gpu.NewDevice(gpu.M2050())
	vals := benchColumn(100000)
	b.SetBytes(int64(len(vals) * 4))
	for i := 0; i < b.N; i++ {
		RLEDictEncodeGPU(d, vals)
	}
}

func BenchmarkGzipQualityColumn(b *testing.B) {
	vals := benchColumn(100000)
	raw := make([]byte, 0, len(vals)*3)
	for _, v := range vals {
		raw = append(raw, byte('0'+v/10), byte('0'+v%10), '\t')
	}
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		if _, err := Gzip(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseEncode(b *testing.B) {
	vals := make([]uint32, 100000)
	for i := 0; i < len(vals); i += 997 {
		vals[i] = uint32(i)
	}
	b.SetBytes(int64(len(vals) * 4))
	for i := 0; i < b.N; i++ {
		SparseEncode(vals, 0)
	}
}

func BenchmarkPack2Bit(b *testing.B) {
	vals := make([]uint8, 100000)
	for i := range vals {
		vals[i] = uint8(i & 3)
	}
	b.SetBytes(int64(len(vals)))
	for i := 0; i < b.N; i++ {
		Pack2Bit(vals)
	}
}
