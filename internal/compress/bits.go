// Package compress implements the customized compression schemes of GSNP
// (Section V of the paper): run-length encoding, dictionary encoding, the
// two-level RLE-DICT codec for quality-related columns, two-bit packing for
// base columns, sparse and difference coding for SNP-related columns, plus
// a gzip wrapper used as the general-purpose comparator. The RLE-DICT
// encoder also has a GPU implementation built on the simulator's
// reduction/sort/unique/binary-search primitives, as in the paper.
//
// All encoders are deterministic and the GPU encoder produces bytes
// identical to the CPU encoder, so either side can decode the other.
package compress

// BitWriter packs fixed-width little-endian bit fields into a byte slice.
type BitWriter struct {
	buf  []byte
	bits uint64
	n    uint // bits buffered
}

// WriteBits appends the low width bits of v.
func (w *BitWriter) WriteBits(v uint32, width uint) {
	w.bits |= uint64(v&((1<<width)-1)) << w.n
	w.n += width
	for w.n >= 8 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits >>= 8
		w.n -= 8
	}
}

// Bytes flushes any partial byte and returns the packed stream.
func (w *BitWriter) Bytes() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits = 0
		w.n = 0
	}
	return w.buf
}

// BitReader unpacks fixed-width bit fields written by BitWriter.
type BitReader struct {
	buf  []byte
	bits uint64
	n    uint
	pos  int
}

// NewBitReader wraps a packed stream.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits extracts the next width-bit field.
func (r *BitReader) ReadBits(width uint) uint32 {
	for r.n < width {
		var b byte
		if r.pos < len(r.buf) {
			b = r.buf[r.pos]
			r.pos++
		}
		r.bits |= uint64(b) << r.n
		r.n += 8
	}
	v := uint32(r.bits & ((1 << width) - 1))
	r.bits >>= width
	r.n -= width
	return v
}

// BytesConsumed reports how many input bytes have been consumed, counting
// buffered but unread bits as consumed.
func (r *BitReader) BytesConsumed() int { return r.pos }

// bitWidth returns the number of bits needed to represent v (at least 1).
func bitWidth(v uint32) uint {
	w := uint(1)
	for v > 1 {
		v >>= 1
		w++
	}
	return w
}
