package compress

import "gsnp/internal/gpu"

// GPU implementations of the RLE-DICT pipeline, as Section V-B describes:
// RLE is built from flag/scan/scatter (the "primitive reduction"), DICT
// from sort + unique to build the dictionary and a parallel binary search
// to index elements (the dictionary goes to constant memory when it fits).
// The byte output is identical to the CPU encoder's, so files compressed on
// the device decode with the host decoder and vice versa.

// RLEEncodeGPU computes the run decomposition on the device.
func RLEEncodeGPU(d *gpu.Device, vals []uint32) (values, lengths []uint32) {
	n := len(vals)
	if n == 0 {
		return nil, nil
	}
	in := gpu.Alloc[uint32](d, n)
	defer in.Free()
	in.CopyIn(vals)

	// Flag run heads.
	flags := gpu.Alloc[uint32](d, n)
	defer flags.Free()
	block := 256
	grid := (n + block - 1) / block
	d.MustLaunch(gpu.LaunchConfig{Name: "rle_flag", Grid: grid, Block: block}, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		f := uint32(1)
		if i > 0 {
			t.Exec(1)
			if gpu.Ld(t, in, i-1) == gpu.Ld(t, in, i) {
				f = 0
			}
		}
		gpu.St(t, flags, i, f)
	})

	// Scan flags into run destinations, scatter run heads.
	dst := gpu.Alloc[uint32](d, n)
	defer dst.Free()
	runs := int(gpu.ExclusiveScanU32(d, flags, dst))
	outVals := gpu.Alloc[uint32](d, runs)
	defer outVals.Free()
	starts := gpu.Alloc[uint32](d, runs+1)
	defer starts.Free()
	d.MustLaunch(gpu.LaunchConfig{Name: "rle_scatter", Grid: grid, Block: block}, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		if gpu.Ld(t, flags, i) == 1 {
			r := int(gpu.Ld(t, dst, i))
			gpu.St(t, outVals, r, gpu.Ld(t, in, i))
			gpu.St(t, starts, r, uint32(i))
		}
	})
	starts.Host()[runs] = uint32(n)

	// Run lengths from adjacent start positions.
	outLens := gpu.Alloc[uint32](d, runs)
	defer outLens.Free()
	lgrid := (runs + block - 1) / block
	d.MustLaunch(gpu.LaunchConfig{Name: "rle_lengths", Grid: lgrid, Block: block}, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= runs {
			return
		}
		t.Exec(1)
		gpu.St(t, outLens, i, gpu.Ld(t, starts, i+1)-gpu.Ld(t, starts, i))
	})

	values = make([]uint32, runs)
	lengths = make([]uint32, runs)
	outVals.CopyOut(values)
	outLens.CopyOut(lengths)
	return values, lengths
}

// dictEncodeGPU builds the dictionary with device sort+unique and indexes
// vals with the batched binary search, returning the sorted dictionary and
// per-element indexes.
func dictEncodeGPU(d *gpu.Device, vals []uint32) (dict []uint32, indexes []uint32) {
	n := len(vals)
	work := gpu.Alloc[uint32](d, n)
	defer work.Free()
	work.CopyIn(vals)
	gpu.SortU32(d, work)
	uniq := gpu.UniqueU32(d, work)
	defer uniq.Free()
	dict = make([]uint32, uniq.Len())
	uniq.CopyOut(dict)

	keys := gpu.Alloc[uint32](d, n)
	defer keys.Free()
	keys.CopyIn(vals)
	idx := gpu.Alloc[uint32](d, n)
	defer idx.Free()
	gpu.BatchBinarySearchU32(d, keys, dict, idx)
	indexes = make([]uint32, n)
	idx.CopyOut(indexes)
	return dict, indexes
}

// appendDictBlockGPU serialises a dictionary block using device-computed
// dictionary and indexes; the byte layout matches appendDictBlock.
func appendDictBlockGPU(buf []byte, d *gpu.Device, vals []uint32) []byte {
	dict, indexes := dictEncodeGPU(d, vals)
	buf = putUvarint(buf, uint64(len(dict)))
	prev := uint32(0)
	for i, v := range dict {
		dv := v - prev
		if i == 0 {
			dv = v
		}
		buf = putUvarint(buf, uint64(dv))
		prev = v
	}
	width := bitWidth(uint32(len(dict) - 1))
	if len(dict) == 1 {
		width = 1
	}
	buf = append(buf, byte(width))
	var bw BitWriter
	for _, ix := range indexes {
		bw.WriteBits(ix, width)
	}
	packed := bw.Bytes()
	buf = putUvarint(buf, uint64(len(packed)))
	return append(buf, packed...)
}

// RLEDictEncodeGPU is the device implementation of RLEDictEncode. Its
// output is byte-identical to the CPU encoder's.
func RLEDictEncodeGPU(d *gpu.Device, vals []uint32) []byte {
	values, lengths := RLEEncodeGPU(d, vals)
	buf := putUvarint(nil, uint64(len(vals)))
	buf = putUvarint(buf, uint64(len(values)))
	if len(values) == 0 {
		return buf
	}
	buf = appendDictBlockGPU(buf, d, values)
	buf = appendDictBlockGPU(buf, d, lengths)
	return buf
}
