package compress

import (
	"bytes"
	"testing"
)

// Fuzz targets: the decoders must never panic or loop on adversarial
// bytes — they parse data that crosses machine and file-system boundaries.

func FuzzRLEDictDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add(RLEDictEncode([]uint32{1, 1, 2, 3, 3, 3}))
	f.Add(RLEDictEncode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, n, err := RLEDictDecode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Whatever decoded must re-encode and decode to itself.
		back, _, err := RLEDictDecode(RLEDictEncode(vals))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("re-decode length %d != %d", len(back), len(vals))
		}
	})
}

func FuzzSparseDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(SparseEncode([]uint32{0, 5, 0, 9}, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, n, err := SparseDecode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		_ = vals
	})
}

func FuzzDictDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(DictEncode([]uint32{7, 7, 9}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, n, err := DictDecode(data); err == nil && n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
	})
}

func FuzzUnpack2Bit(f *testing.F) {
	f.Add([]byte{})
	f.Add(Pack2Bit([]uint8{0, 1, 2, 3, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, n, err := Unpack2Bit(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Canonicalisation: re-packing decoded values reproduces the
		// consumed prefix's payload bits.
		if got, _, err := Unpack2Bit(Pack2Bit(vals)); err != nil || !bytes.Equal(got, vals) {
			t.Fatalf("2-bit re-pack not canonical: %v", err)
		}
	})
}
