package compress

import (
	"bytes"
	"compress/gzip"
	"io"
)

// Gzip compresses data with the standard library's gzip (the zlib
// comparator of Figures 9 and 10).
func Gzip(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Gunzip decompresses a gzip stream.
func Gunzip(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}
