package compress

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// putUvarint appends a varint to buf.
func putUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

// getUvarint reads a varint, returning the value and the bytes consumed.
func getUvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, fmt.Errorf("compress: truncated or malformed varint")
	}
	return v, n, nil
}

// RLEEncode splits vals into maximal runs, returning parallel run-value and
// run-length arrays — the first level of the RLE-DICT codec.
func RLEEncode(vals []uint32) (values, lengths []uint32) {
	for i := 0; i < len(vals); {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		values = append(values, vals[i])
		lengths = append(lengths, uint32(j-i))
		i = j
	}
	return values, lengths
}

// MaxDecodeElements bounds the number of elements any decoder will
// materialise from one block. Encoded streams carry their element counts
// as varints, so without a bound a corrupted or hostile header could
// demand arbitrarily large allocations before validation catches it.
const MaxDecodeElements = 1 << 27

// RLEDecode expands run-value/run-length arrays back to the flat sequence.
func RLEDecode(values, lengths []uint32) []uint32 {
	out, _ := rleDecodeLimit(values, lengths, -1)
	return out
}

// rleDecodeLimit expands runs, aborting once the output would exceed
// limit elements (limit < 0 means unbounded, used by the in-process API).
func rleDecodeLimit(values, lengths []uint32, limit int) ([]uint32, error) {
	var n uint64
	for _, l := range lengths {
		n += uint64(l)
		if limit >= 0 && n > uint64(limit) {
			return nil, fmt.Errorf("compress: RLE expansion of %d elements exceeds limit %d", n, limit)
		}
	}
	out := make([]uint32, 0, n)
	for i, v := range values {
		for k := uint32(0); k < lengths[i]; k++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// buildDict returns the sorted distinct values of vals.
func buildDict(vals []uint32) []uint32 {
	seen := make(map[uint32]struct{}, 64)
	for _, v := range vals {
		seen[v] = struct{}{}
	}
	dict := make([]uint32, 0, len(seen))
	for v := range seen {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	return dict
}

// dictIndex finds v in the sorted dict by binary search; v must be present.
func dictIndex(dict []uint32, v uint32) uint32 {
	lo, hi := 0, len(dict)
	for lo < hi {
		mid := (lo + hi) / 2
		if dict[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// appendDictBlock serialises one dictionary-encoded array: the dictionary
// (delta varints over the sorted values), the index bit width, and the
// bit-packed indexes.
func appendDictBlock(buf []byte, vals []uint32, dict []uint32, indexOf func(uint32) uint32) []byte {
	buf = putUvarint(buf, uint64(len(dict)))
	prev := uint32(0)
	for i, v := range dict {
		d := v - prev
		if i == 0 {
			d = v
		}
		buf = putUvarint(buf, uint64(d))
		prev = v
	}
	width := bitWidth(uint32(len(dict) - 1))
	if len(dict) == 1 {
		width = 1
	}
	buf = append(buf, byte(width))
	var bw BitWriter
	for _, v := range vals {
		bw.WriteBits(indexOf(v), width)
	}
	packed := bw.Bytes()
	buf = putUvarint(buf, uint64(len(packed)))
	return append(buf, packed...)
}

// DictEncode serialises vals with dictionary encoding: distinct values are
// collected into a sorted dictionary and each element is replaced by its
// bit-packed dictionary index — the second level of RLE-DICT.
func DictEncode(vals []uint32) []byte {
	dict := buildDict(vals)
	buf := putUvarint(nil, uint64(len(vals)))
	if len(vals) == 0 {
		return buf
	}
	return appendDictBlock(buf, vals, dict, func(v uint32) uint32 { return dictIndex(dict, v) })
}

// DictDecode inverts DictEncode, returning the values and bytes consumed.
func DictDecode(buf []byte) ([]uint32, int, error) {
	n64, off, err := getUvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	if n64 > MaxDecodeElements {
		return nil, 0, fmt.Errorf("compress: dictionary block claims %d elements (limit %d)", n64, MaxDecodeElements)
	}
	n := int(n64)
	if n == 0 {
		return nil, off, nil
	}
	vals, m, err := decodeDictBlock(buf[off:], n)
	return vals, off + m, err
}

// decodeDictBlock parses one dictionary block holding n elements.
func decodeDictBlock(buf []byte, n int) ([]uint32, int, error) {
	ds64, off, err := getUvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	dictSize := int(ds64)
	if dictSize == 0 {
		return nil, 0, fmt.Errorf("compress: empty dictionary for %d elements", n)
	}
	if dictSize > n || ds64 > MaxDecodeElements {
		return nil, 0, fmt.Errorf("compress: dictionary of %d entries for %d elements", dictSize, n)
	}
	dict := make([]uint32, dictSize)
	prev := uint64(0)
	for i := range dict {
		d, m, err := getUvarint(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += m
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		dict[i] = uint32(prev)
	}
	if off >= len(buf) {
		return nil, 0, fmt.Errorf("compress: truncated dictionary block")
	}
	width := uint(buf[off])
	off++
	if width == 0 || width > 32 {
		return nil, 0, fmt.Errorf("compress: bad index width %d", width)
	}
	packedLen64, m, err := getUvarint(buf[off:])
	if err != nil {
		return nil, 0, err
	}
	off += m
	packedLen := int(packedLen64)
	if off+packedLen > len(buf) {
		return nil, 0, fmt.Errorf("compress: truncated packed indexes")
	}
	br := NewBitReader(buf[off : off+packedLen])
	out := make([]uint32, n)
	for i := range out {
		idx := br.ReadBits(width)
		if int(idx) >= dictSize {
			return nil, 0, fmt.Errorf("compress: index %d out of dictionary range %d", idx, dictSize)
		}
		out[i] = dict[idx]
	}
	return out, off + packedLen, nil
}

// RLEDictEncode applies the paper's two-level codec for quality-related
// columns: run-length encode, then dictionary-encode both the run-value
// and run-length arrays.
func RLEDictEncode(vals []uint32) []byte {
	values, lengths := RLEEncode(vals)
	buf := putUvarint(nil, uint64(len(vals)))
	buf = putUvarint(buf, uint64(len(values)))
	if len(values) == 0 {
		return buf
	}
	vd := buildDict(values)
	buf = appendDictBlock(buf, values, vd, func(v uint32) uint32 { return dictIndex(vd, v) })
	ld := buildDict(lengths)
	buf = appendDictBlock(buf, lengths, ld, func(v uint32) uint32 { return dictIndex(ld, v) })
	return buf
}

// RLEDictDecode inverts RLEDictEncode, returning the values and the bytes
// consumed.
func RLEDictDecode(buf []byte) ([]uint32, int, error) {
	n64, off, err := getUvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	if n64 > MaxDecodeElements {
		return nil, 0, fmt.Errorf("compress: RLE-DICT block claims %d elements (limit %d)", n64, MaxDecodeElements)
	}
	runs64, m, err := getUvarint(buf[off:])
	if err != nil {
		return nil, 0, err
	}
	off += m
	if runs64 > n64 {
		return nil, 0, fmt.Errorf("compress: %d runs for %d elements", runs64, n64)
	}
	runs := int(runs64)
	if runs == 0 {
		if n64 != 0 {
			return nil, 0, fmt.Errorf("compress: zero runs for %d elements", n64)
		}
		return nil, off, nil
	}
	values, m, err := decodeDictBlock(buf[off:], runs)
	if err != nil {
		return nil, 0, err
	}
	off += m
	lengths, m, err := decodeDictBlock(buf[off:], runs)
	if err != nil {
		return nil, 0, err
	}
	off += m
	out, err := rleDecodeLimit(values, lengths, int(n64))
	if err != nil {
		return nil, 0, err
	}
	if len(out) != int(n64) {
		return nil, 0, fmt.Errorf("compress: RLE-DICT expanded to %d elements, want %d", len(out), n64)
	}
	return out, off, nil
}

// Pack2Bit packs values in 0..3 (base codes) four to a byte — the paper's
// two-bits-per-base encoding for base-type columns.
func Pack2Bit(vals []uint8) []byte {
	buf := putUvarint(nil, uint64(len(vals)))
	body := make([]byte, (len(vals)+3)/4)
	for i, v := range vals {
		body[i>>2] |= (v & 3) << uint((i&3)*2)
	}
	return append(buf, body...)
}

// Unpack2Bit inverts Pack2Bit, returning the values and bytes consumed.
func Unpack2Bit(buf []byte) ([]uint8, int, error) {
	n64, off, err := getUvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	// Bound before any arithmetic: n elements need ceil(n/4) body bytes,
	// so n can never exceed 4x the remaining input.
	if n64 > uint64(len(buf))*4 {
		return nil, 0, fmt.Errorf("compress: 2-bit block claims %d elements in %d bytes", n64, len(buf))
	}
	n := int(n64)
	body := (n + 3) / 4
	if off+body > len(buf) {
		return nil, 0, fmt.Errorf("compress: truncated 2-bit block")
	}
	out := make([]uint8, n)
	for i := range out {
		out[i] = buf[off+(i>>2)] >> uint((i&3)*2) & 3
	}
	return out, off + body, nil
}

// SparseEncode stores only the elements that differ from the default —
// the paper's difference/sparse coding for SNP-related and second-allele
// columns. Exception positions are delta-varint coded.
func SparseEncode(vals []uint32, def uint32) []byte {
	buf := putUvarint(nil, uint64(len(vals)))
	buf = putUvarint(buf, uint64(def))
	var idx []int
	for i, v := range vals {
		if v != def {
			idx = append(idx, i)
		}
	}
	buf = putUvarint(buf, uint64(len(idx)))
	prev := 0
	for _, i := range idx {
		buf = putUvarint(buf, uint64(i-prev))
		prev = i
		buf = putUvarint(buf, uint64(vals[i]))
	}
	return buf
}

// SparseDecode inverts SparseEncode, returning the values and bytes
// consumed.
func SparseDecode(buf []byte) ([]uint32, int, error) {
	n64, off, err := getUvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	if n64 > MaxDecodeElements {
		return nil, 0, fmt.Errorf("compress: sparse block claims %d elements (limit %d)", n64, MaxDecodeElements)
	}
	def64, m, err := getUvarint(buf[off:])
	if err != nil {
		return nil, 0, err
	}
	off += m
	k64, m, err := getUvarint(buf[off:])
	if err != nil {
		return nil, 0, err
	}
	off += m
	out := make([]uint32, int(n64))
	for i := range out {
		out[i] = uint32(def64)
	}
	pos := 0
	for e := uint64(0); e < k64; e++ {
		d, m, err := getUvarint(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += m
		v, m, err := getUvarint(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += m
		pos += int(d)
		if pos >= len(out) {
			return nil, 0, fmt.Errorf("compress: sparse exception at %d beyond length %d", pos, len(out))
		}
		out[pos] = uint32(v)
	}
	return out, off, nil
}
