package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gsnp/internal/gpu"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	f := func(vals []uint32, width8 uint8) bool {
		width := uint(width8%32) + 1
		var bw BitWriter
		masked := make([]uint32, len(vals))
		for i, v := range vals {
			masked[i] = v & ((1 << width) - 1)
			bw.WriteBits(v, width)
		}
		br := NewBitReader(bw.Bytes())
		for _, want := range masked {
			if br.ReadBits(width) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitWidth(t *testing.T) {
	cases := map[uint32]uint{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 1 << 31: 32}
	for v, want := range cases {
		if got := bitWidth(v); got != want {
			t.Errorf("bitWidth(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestRLEEncodeDecode(t *testing.T) {
	vals := []uint32{5, 5, 5, 2, 9, 9, 9, 9, 1}
	values, lengths := RLEEncode(vals)
	wantV := []uint32{5, 2, 9, 1}
	wantL := []uint32{3, 1, 4, 1}
	if len(values) != 4 {
		t.Fatalf("runs = %d", len(values))
	}
	for i := range wantV {
		if values[i] != wantV[i] || lengths[i] != wantL[i] {
			t.Fatalf("run %d = (%d,%d), want (%d,%d)", i, values[i], lengths[i], wantV[i], wantL[i])
		}
	}
	back := RLEDecode(values, lengths)
	if len(back) != len(vals) {
		t.Fatalf("decoded length %d", len(back))
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatal("roundtrip mismatch")
		}
	}
	if v, l := RLEEncode(nil); v != nil || l != nil {
		t.Error("empty input produced runs")
	}
}

func roundTripU32(t *testing.T, name string, enc func([]uint32) []byte, dec func([]byte) ([]uint32, int, error), vals []uint32) []byte {
	t.Helper()
	buf := enc(vals)
	// Append trailing garbage to verify consumed-byte reporting.
	full := append(append([]byte{}, buf...), 0xAA, 0xBB)
	got, n, err := dec(full)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if n != len(buf) {
		t.Fatalf("%s: consumed %d bytes, want %d", name, n, len(buf))
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: decoded %d values, want %d", name, len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: value %d = %d, want %d", name, i, got[i], vals[i])
		}
	}
	return buf
}

func TestDictRoundTrip(t *testing.T) {
	roundTripU32(t, "dict", DictEncode, DictDecode, []uint32{7, 7, 42, 7, 100000, 42})
	roundTripU32(t, "dict-empty", DictEncode, DictDecode, nil)
	roundTripU32(t, "dict-single", DictEncode, DictDecode, []uint32{3, 3, 3})
}

func TestRLEDictRoundTrip(t *testing.T) {
	vals := make([]uint32, 0, 1000)
	rng := rand.New(rand.NewSource(1))
	for len(vals) < 1000 {
		v := uint32(rng.Intn(40))
		run := 1 + rng.Intn(30)
		for k := 0; k < run && len(vals) < 1000; k++ {
			vals = append(vals, v)
		}
	}
	buf := roundTripU32(t, "rledict", RLEDictEncode, RLEDictDecode, vals)
	if len(buf) > len(vals) {
		t.Errorf("RLE-DICT did not compress runs: %d bytes for %d values", len(buf), len(vals))
	}
	roundTripU32(t, "rledict-empty", RLEDictEncode, RLEDictDecode, nil)
	roundTripU32(t, "rledict-const", RLEDictEncode, RLEDictDecode, []uint32{9, 9, 9, 9, 9, 9, 9, 9})
}

func TestRLEDictProperty(t *testing.T) {
	f := func(raw []uint8, runLen8 uint8) bool {
		runLen := int(runLen8%20) + 1
		var vals []uint32
		for _, v := range raw {
			for k := 0; k < runLen; k++ {
				vals = append(vals, uint32(v%64))
			}
		}
		buf := RLEDictEncode(vals)
		got, _, err := RLEDictDecode(buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPack2BitRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]uint8, len(raw))
		for i, v := range raw {
			vals[i] = v & 3
		}
		buf := Pack2Bit(vals)
		got, n, err := Unpack2Bit(append(buf, 0xFF))
		if err != nil || n != len(buf) || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPack2BitDensity(t *testing.T) {
	buf := Pack2Bit(make([]uint8, 1000))
	if len(buf) > 260 {
		t.Errorf("2-bit packing of 1000 bases took %d bytes", len(buf))
	}
}

func TestSparseRoundTrip(t *testing.T) {
	vals := make([]uint32, 500)
	vals[3] = 7
	vals[499] = 1
	buf := SparseEncode(vals, 0)
	if len(buf) > 20 {
		t.Errorf("sparse encoding of 2 exceptions took %d bytes", len(buf))
	}
	got, n, err := SparseDecode(append(buf, 0x11))
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v (n=%d want %d)", err, n, len(buf))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}

	// Non-zero default.
	vals2 := []uint32{9, 9, 2, 9}
	buf2 := SparseEncode(vals2, 9)
	got2, _, err := SparseDecode(buf2)
	if err != nil || got2[2] != 2 || got2[0] != 9 {
		t.Fatalf("non-zero default corrupted: %v %v", got2, err)
	}
}

func TestSparseProperty(t *testing.T) {
	f := func(raw []uint8, def uint8) bool {
		vals := make([]uint32, len(raw))
		for i, v := range raw {
			vals[i] = uint32(v % 8)
		}
		buf := SparseEncode(vals, uint32(def%8))
		got, _, err := SparseDecode(buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	garbage := [][]byte{
		{},
		{0x05},             // claims 5 elements, no data
		{0x02, 0x00},       // dict: zero dictionary
		{0xFF, 0xFF, 0xFF}, // malformed varint territory
	}
	for _, g := range garbage {
		if _, _, err := DictDecode(g); err == nil && len(g) > 0 && g[0] != 0 {
			t.Errorf("DictDecode accepted %x", g)
		}
		if _, _, err := RLEDictDecode(g); err == nil && len(g) > 0 && g[0] != 0 {
			t.Errorf("RLEDictDecode accepted %x", g)
		}
	}
	// A truncated 2-bit block (claims 5 elements, provides none).
	if _, _, err := Unpack2Bit([]byte{0x05}); err == nil {
		t.Error("Unpack2Bit accepted a truncated block")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("SNP detection on the GPU\n"), 100)
	z, err := Gzip(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(data) {
		t.Errorf("gzip did not compress repetitive text: %d -> %d", len(data), len(z))
	}
	back, err := Gunzip(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Error("gzip roundtrip corrupted data")
	}
	if _, err := Gunzip([]byte("not gzip")); err == nil {
		t.Error("Gunzip accepted garbage")
	}
}

func qualityColumn(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint32, 0, n)
	for len(vals) < n {
		v := uint32(10 + rng.Intn(50))
		run := 5 + rng.Intn(40) // tens of repeats, as the paper observes
		for k := 0; k < run && len(vals) < n; k++ {
			vals = append(vals, v)
		}
	}
	return vals
}

func TestGPUMatchesCPURLE(t *testing.T) {
	d := gpu.NewDevice(gpu.M2050())
	vals := qualityColumn(5000, 7)
	cv, cl := RLEEncode(vals)
	gv, gl := RLEEncodeGPU(d, vals)
	if len(gv) != len(cv) {
		t.Fatalf("GPU runs = %d, CPU runs = %d", len(gv), len(cv))
	}
	for i := range cv {
		if gv[i] != cv[i] || gl[i] != cl[i] {
			t.Fatalf("run %d differs: GPU (%d,%d) CPU (%d,%d)", i, gv[i], gl[i], cv[i], cl[i])
		}
	}
	if v, l := RLEEncodeGPU(d, nil); v != nil || l != nil {
		t.Error("GPU RLE of empty input produced runs")
	}
}

func TestGPURLEDictBitIdentical(t *testing.T) {
	d := gpu.NewDevice(gpu.M2050())
	for _, seed := range []int64{1, 2, 3} {
		vals := qualityColumn(3000, seed)
		cpu := RLEDictEncode(vals)
		dev := RLEDictEncodeGPU(d, vals)
		if !bytes.Equal(cpu, dev) {
			t.Fatalf("seed %d: GPU encoding differs from CPU (%d vs %d bytes)", seed, len(dev), len(cpu))
		}
		// And decodes correctly.
		got, _, err := RLEDictDecode(dev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("seed %d: GPU-encoded stream decodes wrong at %d", seed, i)
			}
		}
	}
}

func TestRLEDictBeatsGzipOnQualityColumns(t *testing.T) {
	// The design claim of Section V-B: the custom codec beats gzip on
	// quality-like columns with few distinct values and long runs.
	vals := qualityColumn(20000, 99)
	custom := RLEDictEncode(vals)
	raw := make([]byte, 0, len(vals)*3)
	for _, v := range vals {
		// Text-ish representation comparable to the plain output column.
		raw = append(raw, byte('0'+v/10), byte('0'+v%10), '\t')
	}
	z, err := Gzip(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(custom) >= len(z) {
		t.Errorf("RLE-DICT (%d B) not smaller than gzip (%d B) on a quality column", len(custom), len(z))
	}
}
