package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gsnp/internal/reads"
)

// PrefetchStats reports what window prefetch achieved during a run, so the
// I/O/compute overlap is observable instead of asserted.
type PrefetchStats struct {
	// Windows is the number of windows delivered.
	Windows int
	// Fetch is the total producer-side read_site time — work that
	// overlapped the consumer's likelihood/posterior/output instead of
	// serialising with it.
	Fetch time.Duration
	// Wait is the total time the consumer blocked waiting for a window:
	// the residual read_site cost left on the critical path.
	Wait time.Duration
}

func (s PrefetchStats) String() string {
	return fmt.Sprintf("windows=%d fetch=%v wait=%v",
		s.Windows, s.Fetch.Round(time.Microsecond), s.Wait.Round(time.Microsecond))
}

// PrefetchedWindow is one window's reads, produced ahead of consumption.
type PrefetchedWindow struct {
	// Start and End delimit the window [Start, End).
	Start, End int
	// Reads holds every read overlapping the window, exactly as the
	// underlying Windower would have returned them.
	Reads []reads.AlignedRead
	// Err is a read error encountered while fetching this window; the
	// prefetcher stops after delivering it.
	Err error
}

// WindowPrefetcher overlaps read_site I/O with computation: a producer
// goroutine walks the windows of [0, total) in order, fetching window i+1
// while the consumer processes window i (double buffering). Because the
// producer is the only goroutine touching the Windower and windows are
// delivered strictly in order, the reads seen by the consumer are
// byte-for-byte the ones a serial loop would see — the Section IV-G
// byte-identity guarantee holds with prefetch enabled.
type WindowPrefetcher struct {
	ch    chan PrefetchedWindow
	stop  chan struct{}
	once  sync.Once
	fetch atomic.Int64 // producer-side fetch time, nanoseconds

	windows int
	wait    time.Duration
}

// NewWindowPrefetcher starts prefetching windows of size window over
// [0, total) from win. depth is the number of windows the producer may run
// ahead of the consumer; depth <= 0 selects 1 (double buffering). The
// Windower must not be used by anyone else while the prefetcher is live.
// The producer stops after delivering the first failed window.
func NewWindowPrefetcher(win *Windower, total, window, depth int) *WindowPrefetcher {
	return startPrefetcher(win, total, window, depth, false)
}

// NewResilientWindowPrefetcher is NewWindowPrefetcher for quarantine mode:
// after delivering a window whose fetch failed with a record-level error
// (see RecordError), the producer keeps going with the next window — the
// Windower remains usable past a parse failure, the bad record is simply
// absent. Non-record errors (I/O failures) still stop the producer.
func NewResilientWindowPrefetcher(win *Windower, total, window, depth int) *WindowPrefetcher {
	return startPrefetcher(win, total, window, depth, true)
}

func startPrefetcher(win *Windower, total, window, depth int, resilient bool) *WindowPrefetcher {
	if depth <= 0 {
		depth = 1
	}
	p := &WindowPrefetcher{
		ch:   make(chan PrefetchedWindow, depth),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(p.ch)
		for start := 0; start < total; start += window {
			end := start + window
			if end > total {
				end = total
			}
			t0 := time.Now()
			rs, err := win.Reads(start, end)
			p.fetch.Add(int64(time.Since(t0)))
			select {
			case p.ch <- PrefetchedWindow{Start: start, End: end, Reads: rs, Err: err}:
			case <-p.stop:
				return
			}
			if err != nil {
				var re RecordError
				if !resilient || !errors.As(err, &re) {
					return
				}
			}
		}
	}()
	return p
}

// Next blocks until the next window is available. ok is false once every
// window has been delivered (or the prefetcher was stopped). The blocking
// time is accumulated into Stats().Wait.
func (p *WindowPrefetcher) Next() (pw PrefetchedWindow, ok bool) {
	t0 := time.Now()
	pw, ok = <-p.ch
	p.wait += time.Since(t0)
	if ok {
		p.windows++
	}
	return pw, ok
}

// Stop terminates the producer early (e.g. when the consumer fails
// mid-run). It is safe to call multiple times and after exhaustion.
func (p *WindowPrefetcher) Stop() {
	p.once.Do(func() { close(p.stop) })
	for range p.ch { // release a producer blocked on send
	}
}

// Stats reports the prefetch counters. Call it only after the consumer
// loop has finished (it reads producer-shared state).
func (p *WindowPrefetcher) Stats() PrefetchStats {
	return PrefetchStats{
		Windows: p.windows,
		Fetch:   time.Duration(p.fetch.Load()),
		Wait:    p.wait,
	}
}
