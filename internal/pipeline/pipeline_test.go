package pipeline

import (
	"io"
	"testing"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/reads"
	"gsnp/internal/seqsim"
)

func TestMemSource(t *testing.T) {
	rs := []reads.AlignedRead{{ID: 1}, {ID: 2}}
	src := MemSource(rs)
	for pass := 0; pass < 2; pass++ {
		it, err := src.Open()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			r, err := it.Next()
			if err != nil || r.ID != int64(i+1) {
				t.Fatalf("pass %d read %d: %v %v", pass, i, r.ID, err)
			}
		}
		if _, err := it.Next(); err != io.EOF {
			t.Fatalf("pass %d: want EOF, got %v", pass, err)
		}
	}
}

func TestObsOf(t *testing.T) {
	seq, _ := dna.ParseSequence("ACGT")
	r := reads.AlignedRead{
		Pos: 100, Strand: 1, Hits: 1,
		Bases: seq,
		Quals: []dna.Quality{10, 20, 30, 40},
	}
	o, ok := ObsOf(&r, 101)
	if !ok {
		t.Fatal("covered position reported uncovered")
	}
	if o.Base != dna.C || o.Qual != 20 {
		t.Errorf("obs = %+v", o)
	}
	// Reverse strand: reference offset 1 is cycle len-1-1 = 2.
	if o.Coord != 2 {
		t.Errorf("coord = %d, want 2", o.Coord)
	}
	if o.Strand != 1 || !o.Uniq {
		t.Errorf("strand/uniq wrong: %+v", o)
	}
	if _, ok := ObsOf(&r, 99); ok {
		t.Error("position before read reported covered")
	}
	if _, ok := ObsOf(&r, 104); ok {
		t.Error("position after read reported covered")
	}
	r.Hits = 3
	if o, _ := ObsOf(&r, 100); o.Uniq {
		t.Error("multi-hit read reported unique")
	}
}

func TestSiteCounts(t *testing.T) {
	var c SiteCounts
	c.Add(Obs{Base: dna.A, Qual: 30, Uniq: true})
	c.Add(Obs{Base: dna.A, Qual: 31, Uniq: false})
	c.Add(Obs{Base: dna.G, Qual: 20, Uniq: true})
	if c.Depth != 3 || c.Count[dna.A] != 2 || c.Uniq[dna.A] != 1 || c.QualSum[dna.A] != 61 {
		t.Errorf("counts wrong: %+v", c)
	}
	best, second, hb, hs := c.BestSecond()
	if !hb || !hs || best != dna.A || second != dna.G {
		t.Errorf("best/second = %v/%v (%v,%v)", best, second, hb, hs)
	}
	if c.AvgQual(dna.A) != 31 { // round(61/2) = 31
		t.Errorf("AvgQual(A) = %d", c.AvgQual(dna.A))
	}
	if c.AvgQual(dna.T) != 0 {
		t.Error("AvgQual of unobserved base non-zero")
	}
	c.Reset()
	if c.Depth != 0 || c.Count[dna.A] != 0 {
		t.Error("Reset incomplete")
	}
}

func TestBestSecondEdgeCases(t *testing.T) {
	var c SiteCounts
	_, _, hb, hs := c.BestSecond()
	if hb || hs {
		t.Error("empty counts reported bases")
	}
	c.Add(Obs{Base: dna.T, Qual: 1})
	best, _, hb, hs := c.BestSecond()
	if !hb || hs || best != dna.T {
		t.Error("single-base site wrong")
	}
	// Tie: smaller base code wins deterministically.
	var c2 SiteCounts
	c2.Add(Obs{Base: dna.G, Qual: 1})
	c2.Add(Obs{Base: dna.C, Qual: 1})
	best, second, _, _ := c2.BestSecond()
	if best != dna.C || second != dna.G {
		t.Errorf("tie broken wrong: %v/%v", best, second)
	}
}

func TestBuildRowHomRef(t *testing.T) {
	var c SiteCounts
	var aq [4][]float64
	for i := 0; i < 8; i++ {
		c.Add(Obs{Base: dna.A, Qual: 35, Uniq: true})
		aq[dna.A] = append(aq[dna.A], 35)
	}
	var tl [bayes.TypeLikelySize]float64
	for i := range tl {
		tl[i] = -100
	}
	tl[dna.HomozygousGenotype(dna.A)] = -1
	pr := bayes.DefaultPriors()
	lp := pr.LogPriors(dna.A, nil)
	call := bayes.Posterior(&tl, &lp)

	row := BuildRow(&RowInputs{
		Chr: "c", Pos: 41, Ref: dna.A, Call: call, Counts: &c,
		AlleleQuals: &aq, MeanDepth: 8,
	})
	if row.Pos != 42 || row.Ref != 'A' || row.Genotype != 'A' {
		t.Errorf("identity columns wrong: %+v", row)
	}
	if row.BestBase != 'A' || row.CountBest != 8 || row.AvgQualBest != 35 || row.CountUniqBest != 8 {
		t.Errorf("best-base columns wrong: %+v", row)
	}
	if row.SecondBase != 'N' || row.CountSecond != 0 {
		t.Errorf("second-base columns wrong: %+v", row)
	}
	if row.RankSumP != 1 {
		t.Errorf("hom call rank-sum = %v, want 1", row.RankSumP)
	}
	if row.CopyNum != 1 {
		t.Errorf("copy number = %v, want 1", row.CopyNum)
	}
	if row.IsDbSNP != 0 {
		t.Error("dbSNP flag set without known record")
	}
	if row.IsSNP() {
		t.Error("hom-ref row reported as SNP")
	}
}

func TestBuildRowHet(t *testing.T) {
	var c SiteCounts
	var aq [4][]float64
	for i := 0; i < 5; i++ {
		c.Add(Obs{Base: dna.A, Qual: 35, Uniq: true})
		aq[dna.A] = append(aq[dna.A], 35)
	}
	for i := 0; i < 4; i++ {
		c.Add(Obs{Base: dna.G, Qual: 33, Uniq: true})
		aq[dna.G] = append(aq[dna.G], 33)
	}
	var tl [bayes.TypeLikelySize]float64
	for i := range tl {
		tl[i] = -100
	}
	tl[dna.MakeGenotype(dna.A, dna.G)] = -1
	pr := bayes.DefaultPriors()
	lp := pr.LogPriors(dna.A, nil)
	call := bayes.Posterior(&tl, &lp)

	known := &bayes.KnownSNP{Validated: true}
	row := BuildRow(&RowInputs{
		Chr: "c", Pos: 0, Ref: dna.A, Call: call, Counts: &c,
		AlleleQuals: &aq, MeanDepth: 9, Known: known,
	})
	if row.Genotype != 'R' {
		t.Errorf("genotype = %c, want R", row.Genotype)
	}
	if row.BestBase != 'A' || row.SecondBase != 'G' {
		t.Errorf("best/second = %c/%c", row.BestBase, row.SecondBase)
	}
	if row.CountSecond != 4 || row.AvgQualSecond != 33 {
		t.Errorf("second columns wrong: %+v", row)
	}
	if row.RankSumP >= 1 || row.RankSumP <= 0 {
		t.Errorf("het rank-sum p = %v, want in (0,1)", row.RankSumP)
	}
	if row.IsDbSNP != 1 {
		t.Error("dbSNP flag missing")
	}
	if !row.IsSNP() {
		t.Error("het row not reported as SNP")
	}
}

func TestBuildRowNoCoverage(t *testing.T) {
	var c SiteCounts
	var tl [bayes.TypeLikelySize]float64
	pr := bayes.DefaultPriors()
	lp := pr.LogPriors(dna.T, nil)
	call := bayes.Posterior(&tl, &lp)
	row := BuildRow(&RowInputs{Chr: "c", Pos: 7, Ref: dna.T, Call: call, Counts: &c, MeanDepth: 10})
	if row.BestBase != 'T' || row.Depth != 0 || row.Genotype != 'T' {
		t.Errorf("zero-coverage row wrong: %+v", row)
	}
	// With no evidence the prior dominates: hom-ref call.
	if row.IsSNP() {
		t.Error("zero-coverage site called as SNP")
	}
}

func TestCalibrationPass(t *testing.T) {
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{Name: "t", Length: 20000, Depth: 8, Seed: 3})
	var sunk int
	cal, mean, err := CalibrationPass(MemSource(ds.Reads), ds.Ref.Seq, func(r *reads.AlignedRead) error {
		sunk++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sunk != len(ds.Reads) {
		t.Errorf("sink saw %d reads, want %d", sunk, len(ds.Reads))
	}
	st := ds.Stats()
	if mean < st.Depth*0.95 || mean > st.Depth*1.05 {
		t.Errorf("mean depth = %v, want ~%v", mean, st.Depth)
	}
	if cal.Observations() == 0 {
		t.Error("no calibration observations")
	}
	// The calibrated matrix should assign high probability to matching
	// bases at high quality.
	p := cal.Build()
	if got := p.At(38, 5, dna.A, dna.A); got < 0.9 {
		t.Errorf("P(A|A,Q38) = %v, want > 0.9", got)
	}
}

func TestWindower(t *testing.T) {
	mk := func(pos, n int) reads.AlignedRead {
		return reads.AlignedRead{Pos: pos, Bases: make(dna.Sequence, n), Quals: make([]dna.Quality, n)}
	}
	rs := []reads.AlignedRead{mk(0, 10), mk(5, 10), mk(95, 10), mk(99, 10), mk(100, 10), mk(250, 10)}
	it, _ := MemSource(rs).Open()
	w := NewWindower(it)

	w0, err := w.Reads(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(w0) != 4 { // pos 0, 5, 95, 99
		t.Fatalf("window 0 has %d reads, want 4", len(w0))
	}
	w1, err := w.Reads(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	// 95 and 99 span the boundary; 100 starts inside.
	if len(w1) != 3 {
		t.Fatalf("window 1 has %d reads, want 3: %+v", len(w1), w1)
	}
	w2, err := w.Reads(200, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2) != 1 || w2[0].Pos != 250 {
		t.Fatalf("window 2 wrong: %+v", w2)
	}
	w3, err := w.Reads(300, 400)
	if err != nil || len(w3) != 0 {
		t.Fatalf("window 3 should be empty: %v %v", w3, err)
	}
}

func TestWindowerCoversAllObservations(t *testing.T) {
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{Name: "t", Length: 5000, Depth: 6, Seed: 9})
	it, _ := MemSource(ds.Reads).Open()
	w := NewWindower(it)
	const win = 333
	total := 0
	for start := 0; start < 5000; start += win {
		end := start + win
		if end > 5000 {
			end = 5000
		}
		rs, err := w.Reads(start, end)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rs {
			r := &rs[i]
			for pos := start; pos < end; pos++ {
				if _, ok := ObsOf(r, pos); ok {
					total++
				}
			}
		}
	}
	var want int
	for i := range ds.Reads {
		want += len(ds.Reads[i].Bases)
	}
	if total != want {
		t.Errorf("windowed observations = %d, want %d", total, want)
	}
}
