package pipeline

import (
	"errors"
	"testing"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
	"gsnp/internal/seqsim"
)

func mkRead(pos, n int) reads.AlignedRead {
	return reads.AlignedRead{Pos: pos, Bases: make(dna.Sequence, n), Quals: make([]dna.Quality, n)}
}

// TestWindowerLongRead checks a read spanning more than two windows: it
// must be visible to every window it overlaps and only those.
func TestWindowerLongRead(t *testing.T) {
	// [95, 345) overlaps windows 0-3 of size 100; window 4 starts at 400.
	rs := []reads.AlignedRead{mkRead(95, 250)}
	it, _ := MemSource(rs).Open()
	w := NewWindower(it)
	for win := 0; win < 5; win++ {
		got, err := w.Reads(win*100, (win+1)*100)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if win == 4 {
			want = 0
		}
		if len(got) != want {
			t.Errorf("window %d: %d reads, want %d", win, len(got), want)
		}
	}
}

// TestWindowerEmptyTrailingWindow checks that windows past the last read
// come back empty without error, including several in a row.
func TestWindowerEmptyTrailingWindow(t *testing.T) {
	rs := []reads.AlignedRead{mkRead(10, 20)}
	it, _ := MemSource(rs).Open()
	w := NewWindower(it)
	if got, err := w.Reads(0, 100); err != nil || len(got) != 1 {
		t.Fatalf("window 0: %v reads, err %v", len(got), err)
	}
	for win := 1; win < 4; win++ {
		got, err := w.Reads(win*100, (win+1)*100)
		if err != nil || len(got) != 0 {
			t.Errorf("trailing window %d: %d reads, err %v; want empty", win, len(got), err)
		}
	}
}

// TestWindowerAbuttingBoundary checks the half-open interval arithmetic: a
// read whose end exactly meets a window boundary (Pos+len == end) belongs
// to that window only and must not be carried into the next.
func TestWindowerAbuttingBoundary(t *testing.T) {
	rs := []reads.AlignedRead{
		mkRead(90, 10),  // [90, 100): ends exactly at the boundary
		mkRead(91, 10),  // [91, 101): spans into the next window
		mkRead(100, 10), // [100, 110): starts exactly at the boundary
	}
	it, _ := MemSource(rs).Open()
	w := NewWindower(it)
	w0, err := w.Reads(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(w0) != 2 {
		t.Fatalf("window 0 has %d reads, want 2 (pos 90, 91)", len(w0))
	}
	w1, err := w.Reads(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != 2 {
		t.Fatalf("window 1 has %d reads, want 2 (pos 91, 100): %+v", len(w1), w1)
	}
	for _, r := range w1 {
		if r.Pos == 90 {
			t.Error("read ending exactly at the boundary leaked into the next window")
		}
	}
}

// errAfterIter yields n reads then a non-EOF error.
type errAfterIter struct {
	n   int
	err error
}

func (it *errAfterIter) Next() (reads.AlignedRead, error) {
	if it.n == 0 {
		return reads.AlignedRead{}, it.err
	}
	it.n--
	return mkRead(0, 5), nil
}

// TestWindowPrefetcherMatchesSerial runs the same dataset through a serial
// Windower and through the prefetcher and requires identical windows — the
// property that makes prefetch safe under the byte-identity requirement.
func TestWindowPrefetcherMatchesSerial(t *testing.T) {
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{Name: "t", Length: 5000, Depth: 6, Seed: 9})
	const total, window = 5000, 333

	it1, _ := MemSource(ds.Reads).Open()
	serial := NewWindower(it1)
	var want [][]reads.AlignedRead
	for start := 0; start < total; start += window {
		end := start + window
		if end > total {
			end = total
		}
		rs, err := serial.Reads(start, end)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rs)
	}

	it2, _ := MemSource(ds.Reads).Open()
	pf := NewWindowPrefetcher(NewWindower(it2), total, window, 1)
	defer pf.Stop()
	i := 0
	for {
		pw, ok := pf.Next()
		if !ok {
			break
		}
		if pw.Err != nil {
			t.Fatal(pw.Err)
		}
		if i >= len(want) {
			t.Fatalf("prefetcher delivered %d windows, serial loop had %d", i+1, len(want))
		}
		if wantStart := i * window; pw.Start != wantStart {
			t.Fatalf("window %d start = %d, want %d (out of order?)", i, pw.Start, wantStart)
		}
		if len(pw.Reads) != len(want[i]) {
			t.Fatalf("window %d: %d reads, serial had %d", i, len(pw.Reads), len(want[i]))
		}
		for k := range pw.Reads {
			if pw.Reads[k].Pos != want[i][k].Pos || pw.Reads[k].ID != want[i][k].ID {
				t.Fatalf("window %d read %d differs from serial", i, k)
			}
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("prefetcher delivered %d windows, want %d", i, len(want))
	}
	if st := pf.Stats(); st.Windows != len(want) {
		t.Errorf("Stats().Windows = %d, want %d", st.Windows, len(want))
	}
}

// TestWindowPrefetcherError checks a read error is delivered in-order and
// terminates the stream.
func TestWindowPrefetcherError(t *testing.T) {
	boom := errors.New("boom")
	it := &errAfterIter{n: 2, err: boom}
	pf := NewWindowPrefetcher(NewWindower(it), 1000, 100, 1)
	defer pf.Stop()
	pw, ok := pf.Next()
	if !ok {
		t.Fatal("prefetcher closed before delivering the error")
	}
	if !errors.Is(pw.Err, boom) {
		t.Fatalf("window error = %v, want boom", pw.Err)
	}
	if _, ok := pf.Next(); ok {
		t.Error("prefetcher kept producing after an error")
	}
}

// TestWindowPrefetcherStop stops mid-stream; the producer must unblock and
// further Next calls must report exhaustion.
func TestWindowPrefetcherStop(t *testing.T) {
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{Name: "t", Length: 5000, Depth: 6, Seed: 9})
	it, _ := MemSource(ds.Reads).Open()
	pf := NewWindowPrefetcher(NewWindower(it), 5000, 100, 1)
	if _, ok := pf.Next(); !ok {
		t.Fatal("first window missing")
	}
	pf.Stop()
	pf.Stop() // idempotent
	if _, ok := pf.Next(); ok {
		t.Error("Next returned a window after Stop")
	}
}
