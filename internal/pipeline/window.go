package pipeline

import (
	"io"

	"gsnp/internal/reads"
)

// Windower feeds position-sorted reads to the windowed per-site pass: the
// read_site component loads a fixed number of sites (a window) at a time,
// and reads spanning a window boundary must be visible to both windows.
type Windower struct {
	it    ReadIter
	carry []reads.AlignedRead
	next  *reads.AlignedRead
	done  bool
}

// NewWindower wraps a position-sorted read iterator.
func NewWindower(it ReadIter) *Windower { return &Windower{it: it} }

// Reads returns every read overlapping [start, end). Windows must be
// requested in increasing, non-overlapping order.
func (w *Windower) Reads(start, end int) ([]reads.AlignedRead, error) {
	return w.AppendReads(nil, start, end)
}

// AppendReads appends every read overlapping [start, end) to out and
// returns the extended slice, letting a caller recycle one buffer across
// windows. Windows must be requested in increasing, non-overlapping order.
func (w *Windower) AppendReads(out []reads.AlignedRead, start, end int) ([]reads.AlignedRead, error) {
	// Reads carried over from earlier windows.
	keep := w.carry[:0]
	for i := range w.carry {
		r := w.carry[i]
		if r.Pos+len(r.Bases) > start && r.Pos < end {
			out = append(out, r)
		}
		if r.Pos+len(r.Bases) > end {
			keep = append(keep, r)
		}
	}
	w.carry = keep

	// A read pulled for a previous window that starts beyond it.
	if w.next != nil && w.next.Pos < end {
		r := *w.next
		w.next = nil
		if r.Pos+len(r.Bases) > start {
			out = append(out, r)
		}
		if r.Pos+len(r.Bases) > end {
			w.carry = append(w.carry, r)
		}
	}

	for !w.done && w.next == nil {
		r, err := w.it.Next()
		if err == io.EOF {
			w.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		if r.Pos >= end {
			w.next = &r
			break
		}
		if r.Pos+len(r.Bases) > start {
			out = append(out, r)
		}
		if r.Pos+len(r.Bases) > end {
			w.carry = append(w.carry, r)
		}
	}
	return out, nil
}
