package pipeline

import (
	"errors"
	"io"
	"testing"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

func TestFuncSource(t *testing.T) {
	opens := 0
	src := FuncSource(func() (ReadIter, error) {
		opens++
		it, _ := MemSource([]reads.AlignedRead{{ID: 1}}).Open()
		return it, nil
	})
	for pass := 0; pass < 2; pass++ {
		it, err := src.Open()
		if err != nil {
			t.Fatal(err)
		}
		if r, err := it.Next(); err != nil || r.ID != 1 {
			t.Fatalf("pass %d: %v %v", pass, r, err)
		}
		if _, err := it.Next(); err != io.EOF {
			t.Fatalf("pass %d: want EOF", pass)
		}
	}
	if opens != 2 {
		t.Errorf("source opened %d times, want 2", opens)
	}
}

func TestFuncSourceError(t *testing.T) {
	boom := errors.New("boom")
	src := FuncSource(func() (ReadIter, error) { return nil, boom })
	if _, err := src.Open(); err != boom {
		t.Errorf("error not propagated: %v", err)
	}
}

type failIter struct{ n int }

func (f *failIter) Next() (reads.AlignedRead, error) {
	f.n++
	if f.n > 2 {
		return reads.AlignedRead{}, errors.New("read error")
	}
	return reads.AlignedRead{Pos: f.n * 10, Bases: make(dna.Sequence, 5), Quals: make([]dna.Quality, 5)}, nil
}

func TestWindowerPropagatesReadErrors(t *testing.T) {
	w := NewWindower(&failIter{})
	if _, err := w.Reads(0, 1000); err == nil {
		t.Error("iterator error swallowed")
	}
}

func TestCalibrationPassSinkError(t *testing.T) {
	ds := []reads.AlignedRead{{Pos: 0, Bases: make(dna.Sequence, 4), Quals: make([]dna.Quality, 4)}}
	boom := errors.New("sink failed")
	_, _, err := CalibrationPass(MemSource(ds), make(dna.Sequence, 100), func(*reads.AlignedRead) error { return boom })
	if err == nil {
		t.Error("sink error swallowed")
	}
}

func TestCalibrationPassEmptyRef(t *testing.T) {
	cal, mean, err := CalibrationPass(MemSource(nil), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 0 || cal.Observations() != 0 {
		t.Errorf("empty reference produced mean %v, obs %d", mean, cal.Observations())
	}
}

func TestObsOfClampsOversizedCoord(t *testing.T) {
	// Reads longer than the model's MaxReadLen produce no observation
	// beyond the representable coordinate.
	r := reads.AlignedRead{
		Pos:    0,
		Bases:  make(dna.Sequence, 300),
		Quals:  make([]dna.Quality, 300),
		Strand: 0,
	}
	if _, ok := ObsOf(&r, 299); ok {
		t.Error("coordinate 299 accepted beyond MaxReadLen")
	}
	if _, ok := ObsOf(&r, 100); !ok {
		t.Error("in-range coordinate rejected")
	}
}
