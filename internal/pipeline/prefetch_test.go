package pipeline

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
	"gsnp/internal/seqsim"
)

// TestWindowPrefetcherNoGoroutineLeakOnAbort aborts consumers mid-stream
// and requires every producer goroutine to exit: a leaked producer would
// pin its Windower and buffers for the life of a whole-genome process,
// once per aborted (failed, cancelled, quarantine-aborted) chromosome.
func TestWindowPrefetcherNoGoroutineLeakOnAbort(t *testing.T) {
	ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{Name: "t", Length: 20000, Depth: 8, Seed: 3})
	baseline := runtime.NumGoroutine()

	for i := 0; i < 8; i++ {
		it, _ := MemSource(ds.Reads).Open()
		var pf *WindowPrefetcher
		if i%2 == 0 {
			pf = NewWindowPrefetcher(NewWindower(it), 20000, 100, 2)
		} else {
			pf = NewResilientWindowPrefetcher(NewWindower(it), 20000, 100, 2)
		}
		if _, ok := pf.Next(); !ok {
			t.Fatal("first window missing")
		}
		pf.Stop() // consumer abort: most windows never consumed
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("%d goroutines after Stop, baseline %d; producers leaked:\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// flakyIter yields reads at increasing positions, returning a record error
// in place of every badEvery-th record.
type flakyIter struct {
	n, total, badEvery int
}

type flakyRecordError struct{ line int }

func (e *flakyRecordError) Error() string        { return fmt.Sprintf("flaky record %d", e.line) }
func (e *flakyRecordError) Record() (int, int64) { return e.line, -1 }
func (it *flakyIter) Next() (reads.AlignedRead, error) {
	if it.n >= it.total {
		return reads.AlignedRead{}, io.EOF
	}
	it.n++
	if it.badEvery > 0 && it.n%it.badEvery == 0 {
		return reads.AlignedRead{}, &flakyRecordError{line: it.n}
	}
	return reads.AlignedRead{ID: int64(it.n), Pos: it.n * 10, Bases: make(dna.Sequence, 5)}, nil
}

// TestResilientPrefetcherContinuesPastRecordError: the resilient variant
// delivers the failed window and keeps producing; the strict variant stops
// after delivering the failure.
func TestResilientPrefetcherContinuesPastRecordError(t *testing.T) {
	const total, window = 1000, 100
	run := func(resilient bool) (windows, failed int) {
		it := &flakyIter{total: 50, badEvery: 20}
		var pf *WindowPrefetcher
		if resilient {
			pf = NewResilientWindowPrefetcher(NewWindower(it), total, window, 1)
		} else {
			pf = NewWindowPrefetcher(NewWindower(it), total, window, 1)
		}
		defer pf.Stop()
		for {
			pw, ok := pf.Next()
			if !ok {
				return windows, failed
			}
			windows++
			if pw.Err != nil {
				var re RecordError
				if !errors.As(pw.Err, &re) {
					t.Fatalf("unexpected non-record error: %v", pw.Err)
				}
				failed++
			}
		}
	}
	if windows, failed := run(true); windows != total/window || failed == 0 {
		t.Errorf("resilient: %d windows (%d failed), want all %d with failures", windows, failed, total/window)
	}
	if windows, failed := run(false); failed != 1 || windows > total/window-1 {
		t.Errorf("strict: %d windows (%d failed), want to stop at the first failure", windows, failed)
	}
}
