package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"gsnp/internal/reads"
)

// Fault containment for long whole-genome runs: instead of one malformed
// record or one panicking window killing the process and discarding every
// completed chromosome, engines running with quarantine enabled convert the
// failure into a Quarantine record — window-scoped, machine-readable, with
// the input position when known — and keep going. The success path is
// untouched: a clean run produces byte-identical output with or without
// quarantine enabled.

// RecordError is an error scoped to a single input record: the stream
// remains readable past it, so a fault-tolerant consumer may skip the
// record. snpio.ParseError implements it; fault injectors
// (internal/faults) implement it for synthetic corruption.
type RecordError interface {
	error
	// Record reports the 1-based input line of the record and the byte
	// offset of that line's start (-1 when untracked).
	Record() (line int, offset int64)
}

// Quarantine describes one contained failure: a window whose computation
// was abandoned, or a record skipped during the calibration pass
// (Window == -1). It is the unit of the machine-readable failure report.
type Quarantine struct {
	// Chr names the chromosome.
	Chr string `json:"chr"`
	// Window is the zero-based window index, or -1 for a calibration-pass
	// record skip that precedes windowing.
	Window int `json:"window"`
	// Start and End delimit the affected site range [Start, End); both are
	// -1 for calibration-pass skips.
	Start int `json:"start"`
	End   int `json:"end"`
	// Line and Offset locate the offending input record when the cause was
	// a record-level error (0 and -1 otherwise).
	Line   int   `json:"line,omitempty"`
	Offset int64 `json:"offset"`
	// Cause is the failure description.
	Cause string `json:"cause"`
	// Panicked marks failures recovered from a panic rather than returned
	// as an error.
	Panicked bool `json:"panicked,omitempty"`
}

func (q Quarantine) String() string {
	where := fmt.Sprintf("window %d [%d,%d)", q.Window, q.Start, q.End)
	if q.Window < 0 {
		where = "calibration pass"
	}
	if q.Line > 0 {
		where += fmt.Sprintf(", input line %d", q.Line)
	}
	return fmt.Sprintf("%s %s: %s", q.Chr, where, q.Cause)
}

// NewQuarantine builds a window quarantine record from its cause,
// extracting the input position when the cause is record-level and
// flagging recovered panics.
func NewQuarantine(chr string, window, start, end int, cause error) Quarantine {
	q := Quarantine{Chr: chr, Window: window, Start: start, End: end,
		Offset: -1, Cause: cause.Error()}
	var re RecordError
	if errors.As(cause, &re) {
		q.Line, q.Offset = re.Record()
	}
	var pe *PanicError
	if errors.As(cause, &pe) {
		q.Panicked = true
	}
	return q
}

// PanicError is a panic converted to an error, with the goroutine stack
// captured at the recovery point. Engines use it to contain a panicking
// window; the scheduler's Policy produces the analogous sched.PanicError
// for whole-task panics.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the stack captured by the recovering goroutine.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Recovered converts a recover() value into a *PanicError, capturing the
// current stack. It returns nil for a nil recover value so callers can
// write `if err := pipeline.Recovered(recover()); err != nil`. A value
// that already is a *PanicError passes through unchanged, preserving the
// stack captured where the panic originally happened (worker-pool panics
// are re-raised on the dispatching goroutine).
func Recovered(v any) *PanicError {
	if v == nil {
		return nil
	}
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Containable reports whether a window failure is scoped to the window:
// record-level input errors and recovered panics are; everything else
// (I/O, output sink, cancellation) poisons the whole run so the task-level
// retry policy (internal/sched) can handle it.
func Containable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *PanicError
	var re RecordError
	return errors.As(err, &pe) || errors.As(err, &re)
}

// SourceWithContext wraps every iterator a source opens with ctx
// cancellation checks, so a deadline interrupts a pass mid-stream. A
// context that can never be cancelled returns src unchanged.
func SourceWithContext(ctx context.Context, src Source) Source {
	if ctx.Done() == nil {
		return src
	}
	return FuncSource(func() (ReadIter, error) {
		it, err := src.Open()
		if err != nil {
			return nil, err
		}
		return WithContext(ctx, it), nil
	})
}

// ctxIter aborts a read stream when its context ends, checking every 1024
// records so cancellation latency stays bounded without measurable
// per-record overhead.
type ctxIter struct {
	it  ReadIter
	ctx interface{ Err() error }
	n   int
}

// WithContext wraps it so that a cancelled or expired ctx aborts the
// stream with the context's error — what makes per-task deadlines
// effective inside a long calibration or window pass.
func WithContext(ctx interface{ Err() error }, it ReadIter) ReadIter {
	if ctx == nil {
		return it
	}
	return &ctxIter{it: it, ctx: ctx}
}

func (c *ctxIter) Next() (reads.AlignedRead, error) {
	if c.n++; c.n&1023 == 0 {
		if err := c.ctx.Err(); err != nil {
			return reads.AlignedRead{}, err
		}
	}
	return c.it.Next()
}

// TolerantIter wraps a ReadIter, skipping record-level errors instead of
// surfacing them — the calibration-pass behaviour of quarantine mode,
// where a corrupt record must not abort the whole-input scan. Non-record
// errors (I/O failures, truncated streams) still propagate. Each skip is
// reported through onSkip when non-nil.
type TolerantIter struct {
	it      ReadIter
	onSkip  func(err RecordError)
	skipped int
}

// maxRecordSkips bounds consecutive record skips so a pathological input
// (or a reader that keeps returning the same record error without
// consuming input) cannot spin forever.
const maxRecordSkips = 1 << 20

// NewTolerantIter wraps it. onSkip, when non-nil, observes every skipped
// record error.
func NewTolerantIter(it ReadIter, onSkip func(err RecordError)) *TolerantIter {
	return &TolerantIter{it: it, onSkip: onSkip}
}

// Skipped reports how many records were skipped so far.
func (t *TolerantIter) Skipped() int { return t.skipped }

// Next returns the next parseable record, skipping records whose errors
// are record-scoped.
func (t *TolerantIter) Next() (reads.AlignedRead, error) {
	for skips := 0; ; skips++ {
		r, err := t.it.Next()
		if err == nil {
			return r, nil
		}
		var re RecordError
		if !errors.As(err, &re) || skips >= maxRecordSkips {
			return r, err
		}
		t.skipped++
		if t.onSkip != nil {
			t.onSkip(re)
		}
	}
}
