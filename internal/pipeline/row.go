package pipeline

import (
	"io"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/reads"
	"gsnp/internal/snpio"
)

// RowInputs carries everything the output component needs for one site.
type RowInputs struct {
	// Chr and Pos identify the site (Pos is zero-based; the row gets the
	// 1-based position).
	Chr string
	Pos int
	// Ref is the reference base.
	Ref dna.Base
	// Call is the posterior genotype call.
	Call bayes.Call
	// Counts is the counting component's summary.
	Counts *SiteCounts
	// AlleleQuals holds the quality scores supporting each base, in
	// canonical observation order, for the rank-sum test.
	AlleleQuals *[dna.NBases][]float64
	// MeanDepth is the data set's average depth (from pass one), the
	// denominator of the copy-number estimate.
	MeanDepth float64
	// Known is non-nil when the site appears in the prior file.
	Known *bayes.KnownSNP
}

// BuildRow assembles the 17-column result row for one site. Both engines
// call this with identical inputs, making their outputs byte-identical.
func BuildRow(in *RowInputs) snpio.Row {
	c := in.Counts
	row := snpio.Row{
		Chr:      in.Chr,
		Pos:      int64(in.Pos) + 1,
		Ref:      in.Ref.Byte(),
		Genotype: in.Call.Genotype.IUPAC(),
		Quality:  uint8(in.Call.Quality),
		Depth:    c.Depth,
		RankSumP: 1,
		CopyNum:  0,
	}

	best, second, hasBest, hasSecond := c.BestSecond()
	if hasBest {
		row.BestBase = best.Byte()
		row.AvgQualBest = c.AvgQual(best)
		row.CountBest = c.Count[best]
		row.CountUniqBest = c.Uniq[best]
	} else {
		// No coverage: the best base defaults to the reference.
		row.BestBase = in.Ref.Byte()
	}
	if hasSecond {
		row.SecondBase = second.Byte()
		row.AvgQualSecond = c.AvgQual(second)
		row.CountSecond = c.Count[second]
		row.CountUniqSecond = c.Uniq[second]
	} else {
		row.SecondBase = 'N'
	}

	// Rank-sum strand/quality bias test for heterozygous calls: compare
	// the quality distributions supporting the two alleles.
	if !in.Call.Genotype.IsHomozygous() && in.AlleleQuals != nil {
		a1, a2 := in.Call.Genotype.Alleles()
		row.RankSumP = bayes.RankSum(in.AlleleQuals[a1], in.AlleleQuals[a2])
	}

	if in.MeanDepth > 0 {
		row.CopyNum = float64(c.Depth) / in.MeanDepth
	}
	if in.Known != nil {
		row.IsDbSNP = 1
	}
	snpio.QuantizeRow(&row)
	return row
}

// CalibrationPass is the shared pass-one logic of cal_p_matrix: it streams
// the whole input once, feeding every observation into the calibration
// against the reference and counting aligned bases for the mean-depth
// estimate. The caller may supply a sink that sees every read (GSNP uses it
// to write the compressed temporary input during the same pass).
func CalibrationPass(src Source, ref dna.Sequence, sink func(*reads.AlignedRead) error) (*bayes.Calibration, float64, error) {
	it, err := src.Open()
	if err != nil {
		return nil, 0, err
	}
	cal := bayes.NewCalibration()
	var bases int64
	for {
		r, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		for off := range r.Bases {
			pos := r.Pos + off
			if pos < 0 || pos >= len(ref) {
				continue
			}
			o, ok := ObsOf(&r, pos)
			if !ok {
				continue
			}
			cal.Observe(dna.ClampQuality(int(o.Qual)), int(o.Coord), ref[pos], o.Base)
			bases++
		}
		if sink != nil {
			if err := sink(&r); err != nil {
				return nil, 0, err
			}
		}
	}
	mean := 0.0
	if len(ref) > 0 {
		mean = float64(bases) / float64(len(ref))
	}
	return cal, mean, nil
}
