// Package pipeline holds the machinery shared by the SOAPsnp baseline and
// the GSNP engine: alignment sources that can be read twice (pass one for
// cal_p_matrix, pass two for the windowed per-site computation), per-site
// observation records and counts, and the construction of result rows from
// genotype likelihoods. Both engines build rows through this package with
// identical arithmetic, which is what makes their outputs byte-identical —
// the consistency requirement of Section IV-G of the paper.
package pipeline

import (
	"io"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

// ReadIter streams position-sorted alignment records; Next returns io.EOF
// at the end of the stream. snpio's SOAP and temp-input readers implement
// it.
type ReadIter interface {
	Next() (reads.AlignedRead, error)
}

// Source provides the alignment input. SNP detection reads its input twice
// (Section V-A: the score-matrix calculation needs all data before the
// windowed pass begins), so a Source must be openable repeatedly.
type Source interface {
	Open() (ReadIter, error)
}

// MemSource serves reads from memory. It implements Source.
type MemSource []reads.AlignedRead

// Open returns an iterator over the slice.
func (m MemSource) Open() (ReadIter, error) {
	return &memIter{rs: m}, nil
}

type memIter struct {
	rs []reads.AlignedRead
	i  int
}

func (it *memIter) Next() (reads.AlignedRead, error) {
	if it.i >= len(it.rs) {
		return reads.AlignedRead{}, io.EOF
	}
	r := it.rs[it.i]
	it.i++
	return r, nil
}

// FuncSource adapts an open function to Source.
type FuncSource func() (ReadIter, error)

// Open invokes the function.
func (f FuncSource) Open() (ReadIter, error) { return f() }

// Obs is one aligned base over a site: the observation unit of the
// likelihood model.
type Obs struct {
	// Base is the observed base (reference orientation).
	Base dna.Base
	// Qual is the clamped sequencing quality.
	Qual dna.Quality
	// Coord is the sequencing cycle (coordinate on the read as
	// sequenced), < bayes.MaxReadLen.
	Coord uint8
	// Strand is the read strand.
	Strand uint8
	// Uniq marks observations from uniquely aligned reads.
	Uniq bool
}

// ObsOf extracts the observation of read r over reference position pos.
// ok is false when the read does not cover pos or the coordinate exceeds
// the model's maximum read length.
func ObsOf(r *reads.AlignedRead, pos int) (Obs, bool) {
	off := pos - r.Pos
	if off < 0 || off >= len(r.Bases) {
		return Obs{}, false
	}
	cyc := r.Cycle(off)
	if cyc >= bayes.MaxReadLen {
		return Obs{}, false
	}
	return Obs{
		Base:   r.Bases[off],
		Qual:   r.Quals[off],
		Coord:  uint8(cyc),
		Strand: r.Strand,
		Uniq:   r.Hits == 1,
	}, true
}

// SiteCounts aggregates the counting component's per-site statistics, the
// inputs of the count/quality columns of the result table.
type SiteCounts struct {
	// Depth is the total number of aligned bases.
	Depth uint16
	// Count, QualSum and Uniq are per observed base: occurrence count,
	// sum of quality scores, and count from uniquely aligned reads.
	Count   [dna.NBases]uint16
	QualSum [dna.NBases]uint32
	Uniq    [dna.NBases]uint16
}

// Add folds one observation into the counts.
func (c *SiteCounts) Add(o Obs) {
	c.Depth++
	c.Count[o.Base]++
	c.QualSum[o.Base] += uint32(o.Qual)
	if o.Uniq {
		c.Uniq[o.Base]++
	}
}

// Reset zeroes the counts for window reuse.
func (c *SiteCounts) Reset() { *c = SiteCounts{} }

// BestSecond returns the most and second-most supported bases by count
// (ties broken toward the smaller base code, deterministically). hasSecond
// is false when fewer than two distinct bases were observed.
func (c *SiteCounts) BestSecond() (best dna.Base, second dna.Base, hasBest, hasSecond bool) {
	bi, si := -1, -1
	for b := 0; b < dna.NBases; b++ {
		if c.Count[b] == 0 {
			continue
		}
		switch {
		case bi < 0 || c.Count[b] > c.Count[bi]:
			si = bi
			bi = b
		case si < 0 || c.Count[b] > c.Count[si]:
			si = b
		}
	}
	if bi >= 0 {
		best, hasBest = dna.Base(bi), true
	}
	if si >= 0 {
		second, hasSecond = dna.Base(si), true
	}
	return best, second, hasBest, hasSecond
}

// AvgQual returns the rounded average quality of base b's observations.
func (c *SiteCounts) AvgQual(b dna.Base) uint8 {
	if c.Count[b] == 0 {
		return 0
	}
	return uint8((c.QualSum[b] + uint32(c.Count[b])/2) / uint32(c.Count[b]))
}
