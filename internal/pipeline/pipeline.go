// Package pipeline holds the machinery shared by the SOAPsnp baseline and
// the GSNP engine: alignment sources that can be read twice (pass one for
// cal_p_matrix, pass two for the windowed per-site computation), per-site
// observation records and counts, and the construction of result rows from
// genotype likelihoods. Both engines build rows through this package with
// identical arithmetic, which is what makes their outputs byte-identical —
// the consistency requirement of Section IV-G of the paper.
package pipeline

import (
	"io"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

// ReadIter streams position-sorted alignment records; Next returns io.EOF
// at the end of the stream. snpio's SOAP and temp-input readers implement
// it.
type ReadIter interface {
	Next() (reads.AlignedRead, error)
}

// Source provides the alignment input. SNP detection reads its input twice
// (Section V-A: the score-matrix calculation needs all data before the
// windowed pass begins), so a Source must be openable repeatedly.
type Source interface {
	Open() (ReadIter, error)
}

// MemSource serves reads from memory. It implements Source.
type MemSource []reads.AlignedRead

// Open returns an iterator over the slice.
func (m MemSource) Open() (ReadIter, error) {
	return &memIter{rs: m}, nil
}

type memIter struct {
	rs []reads.AlignedRead
	i  int
}

func (it *memIter) Next() (reads.AlignedRead, error) {
	if it.i >= len(it.rs) {
		return reads.AlignedRead{}, io.EOF
	}
	r := it.rs[it.i]
	it.i++
	return r, nil
}

// FuncSource adapts an open function to Source.
type FuncSource func() (ReadIter, error)

// Open invokes the function.
func (f FuncSource) Open() (ReadIter, error) { return f() }

// Obs is one aligned base over a site: the observation unit of the
// likelihood model.
type Obs struct {
	// Base is the observed base (reference orientation).
	Base dna.Base
	// Qual is the clamped sequencing quality.
	Qual dna.Quality
	// Coord is the sequencing cycle (coordinate on the read as
	// sequenced), < bayes.MaxReadLen.
	Coord uint8
	// Strand is the read strand.
	Strand uint8
	// Uniq marks observations from uniquely aligned reads.
	Uniq bool
}

// ObsOf extracts the observation of read r over reference position pos.
// ok is false when the read does not cover pos or the coordinate exceeds
// the model's maximum read length.
func ObsOf(r *reads.AlignedRead, pos int) (Obs, bool) {
	off := pos - r.Pos
	if off < 0 || off >= len(r.Bases) {
		return Obs{}, false
	}
	cyc := r.Cycle(off)
	if cyc >= bayes.MaxReadLen {
		return Obs{}, false
	}
	return Obs{
		Base:   r.Bases[off],
		Qual:   r.Quals[off],
		Coord:  uint8(cyc),
		Strand: r.Strand,
		Uniq:   r.Hits == 1,
	}, true
}

// SiteCounts aggregates the counting component's per-site statistics, the
// inputs of the count/quality columns of the result table. Every counter
// saturates at its type maximum instead of wrapping: pileup hotspots
// (repeat regions collapse tens of thousands of reads onto one site) would
// otherwise wrap the 16-bit counters and scramble the best/second-base
// ranking. Saturating addition is order-independent for non-negative
// increments, so the GPU engine's atomic accumulation clamps to the same
// values.
type SiteCounts struct {
	// Depth is the total number of aligned bases, saturating at 65,535.
	Depth uint16
	// Count, QualSum and Uniq are per observed base: occurrence count,
	// sum of quality scores, and count from uniquely aligned reads, each
	// saturating at its type maximum.
	Count   [dna.NBases]uint16
	QualSum [dna.NBases]uint32
	Uniq    [dna.NBases]uint16
}

// satU16 is the saturation limit of the 16-bit counters.
const satU16 = 1<<16 - 1

// SatDepth converts a wide accumulated count to the saturated 16-bit
// domain of SiteCounts (shared with the GPU counting kernels, which
// accumulate in uint32 on the device and clamp here on readback).
func SatDepth(n uint32) uint16 {
	if n > satU16 {
		return satU16
	}
	return uint16(n)
}

// Add folds one observation into the counts, saturating each counter.
func (c *SiteCounts) Add(o Obs) {
	if c.Depth < satU16 {
		c.Depth++
	}
	if c.Count[o.Base] < satU16 {
		c.Count[o.Base]++
	}
	if s := c.QualSum[o.Base] + uint32(o.Qual); s >= c.QualSum[o.Base] {
		c.QualSum[o.Base] = s
	} else {
		c.QualSum[o.Base] = ^uint32(0)
	}
	if o.Uniq && c.Uniq[o.Base] < satU16 {
		c.Uniq[o.Base]++
	}
}

// Reset zeroes the counts for window reuse.
func (c *SiteCounts) Reset() { *c = SiteCounts{} }

// BestSecond returns the most and second-most supported bases by count
// (ties broken toward the smaller base code, deterministically). hasSecond
// is false when fewer than two distinct bases were observed.
func (c *SiteCounts) BestSecond() (best dna.Base, second dna.Base, hasBest, hasSecond bool) {
	bi, si := -1, -1
	for b := 0; b < dna.NBases; b++ {
		if c.Count[b] == 0 {
			continue
		}
		switch {
		case bi < 0 || c.Count[b] > c.Count[bi]:
			si = bi
			bi = b
		case si < 0 || c.Count[b] > c.Count[si]:
			si = b
		}
	}
	if bi >= 0 {
		best, hasBest = dna.Base(bi), true
	}
	if si >= 0 {
		second, hasSecond = dna.Base(si), true
	}
	return best, second, hasBest, hasSecond
}

// AvgQual returns the rounded average quality of base b's observations.
// At a saturated site Count stops at 65,535 while QualSum keeps the full
// sum, so the quotient can exceed the true quality range; it is clamped so
// the 8-bit column cannot wrap.
func (c *SiteCounts) AvgQual(b dna.Base) uint8 {
	if c.Count[b] == 0 {
		return 0
	}
	// 64-bit so the rounding addend cannot wrap a near-ceiling QualSum.
	q := (uint64(c.QualSum[b]) + uint64(c.Count[b])/2) / uint64(c.Count[b])
	if q > 255 {
		q = 255
	}
	return uint8(q)
}
