package pipeline

import (
	"testing"

	"gsnp/internal/dna"
)

// TestSiteCountsSaturate is the regression test for the pileup-counter
// overflow: a site deeper than 65,535 must pin the uint16 counters at
// their maximum instead of wrapping to small values (which silently
// corrupted depth, allele counts and rank-sum inputs at deep sites).
func TestSiteCountsSaturate(t *testing.T) {
	var c SiteCounts
	const n = 70000 // > 2^16-1
	for i := 0; i < n; i++ {
		c.Add(Obs{Base: dna.A, Qual: 40, Uniq: true})
	}
	c.Add(Obs{Base: dna.G, Qual: 20})

	if c.Depth != 65535 {
		t.Errorf("Depth = %d, want saturated 65535", c.Depth)
	}
	if c.Count[dna.A] != 65535 {
		t.Errorf("Count[A] = %d, want saturated 65535", c.Count[dna.A])
	}
	if c.Uniq[dna.A] != 65535 {
		t.Errorf("Uniq[A] = %d, want saturated 65535", c.Uniq[dna.A])
	}
	// QualSum is 32-bit and keeps the full sum well past count
	// saturation.
	if want := uint32(n * 40); c.QualSum[dna.A] != want {
		t.Errorf("QualSum[A] = %d, want %d", c.QualSum[dna.A], want)
	}
	// BestSecond stays sane on a saturated site.
	best, second, hb, hs := c.BestSecond()
	if !hb || !hs || best != dna.A || second != dna.G {
		t.Errorf("BestSecond = %v/%v (%v,%v), want A/G", best, second, hb, hs)
	}
	if got := c.AvgQual(dna.A); got != 43 { // round(2800000/65535)
		t.Errorf("AvgQual(A) = %d, want 43", got)
	}
}

// TestSiteCountsQualSumClamp drives the 32-bit quality sum to its ceiling
// and checks it pins instead of wrapping.
func TestSiteCountsQualSumClamp(t *testing.T) {
	var c SiteCounts
	c.QualSum[dna.C] = ^uint32(0) - 10
	c.Count[dna.C] = 100
	c.Add(Obs{Base: dna.C, Qual: 40})
	if c.QualSum[dna.C] != ^uint32(0) {
		t.Errorf("QualSum[C] = %d, want clamped %d", c.QualSum[dna.C], ^uint32(0))
	}
	// A huge sum over a small count must clamp the 8-bit average.
	if got := c.AvgQual(dna.C); got != 255 {
		t.Errorf("AvgQual(C) = %d, want clamped 255", got)
	}
}

// TestSatDepth covers the host-side clamp used when reading back 32-bit
// device accumulators.
func TestSatDepth(t *testing.T) {
	cases := []struct {
		in   uint32
		want uint16
	}{{0, 0}, {1, 1}, {65535, 65535}, {65536, 65535}, {1 << 30, 65535}}
	for _, tc := range cases {
		if got := SatDepth(tc.in); got != tc.want {
			t.Errorf("SatDepth(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
