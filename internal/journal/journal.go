// Package journal is gsnpd's crash-durability layer: a write-ahead log
// of accepted jobs. Every job the service admits is appended (and
// fsync'd) to the WAL *before* the client sees its 202, together with
// everything a restarted process needs to re-run it — the job spec, the
// output-shaping fingerprint, per-chromosome input digests, and the
// journal-owned spool directory holding uploaded inputs. Terminal states
// are appended on finalize; an accepted record without a matching final
// record is exactly the set of jobs a crash interrupted, and Open
// returns them for recovery.
//
// The WAL is newline-delimited JSON, one self-contained record per line,
// in the same atomic-write discipline internal/checkpoint uses for its
// manifests: appends are a single write followed by fsync, a failed
// append is truncated back out so the log never carries a torn line, and
// compaction (at open, and whenever the log outgrows RotateBytes)
// rewrites only the live records through checkpoint.AtomicWrite's temp
// file + fsync + rename. Replay tolerates exactly one torn line at the
// tail — the signature of a crash mid-append — and refuses anything
// else, so silent corruption surfaces instead of dropping jobs.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gsnp/internal/checkpoint"
)

// Version guards the record schema; a mismatched record invalidates the
// log rather than being misread.
const Version = 1

// WALName is the journal file name inside the journal directory.
const WALName = "wal.ndjson"

// Record kinds.
const (
	KindAccepted = "accepted" // job admitted, not yet resolved
	KindFinal    = "final"    // job reached a terminal state
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("journal: closed")

// Entry is one WAL record. Accepted records carry the job's identity and
// everything recovery needs; final records carry only the terminal state.
type Entry struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	// Seq is the job's admission sequence number (the numeric part of its
	// id); the restarted service resumes id allocation past the maximum.
	Seq int `json:"seq"`
	// Job is the job id the record belongs to.
	Job string `json:"job"`
	// State is the terminal state (final records only).
	State string `json:"state,omitempty"`
	// Spec is the job's JSON spec with uploaded input bodies stripped —
	// those live in the spool directory, which survives restarts.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Fingerprint is the output-shaping configuration fingerprint the job
	// was admitted under; recovery refuses a mismatch.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Digests are the per-unit input content digests in Discover order;
	// recovery re-hashes the inputs and refuses any drift.
	Digests []string `json:"digests,omitempty"`
	// Spool names the job's spool directory under SpoolDir (uploaded
	// inputs); empty for genome-dir jobs.
	Spool string `json:"spool,omitempty"`
	// Created is the job's original admission time.
	Created time.Time `json:"created,omitempty"`
}

// Config configures Open.
type Config struct {
	// Dir is the journal directory; created if missing. The WAL, the
	// spool root (uploaded inputs) and the work root (durable
	// per-chromosome outputs + checkpoint manifests) all live under it.
	Dir string
	// RotateBytes triggers compaction when the WAL exceeds it
	// (0 selects 4 MiB).
	RotateBytes int64
	// Fault, when set, is consulted before every durable write — the
	// disk-fault injection seam (internal/faults.Injector.DiskOp).
	Fault func(op string) error
	// Logf receives operational log lines (nil discards).
	Logf func(format string, args ...any)
}

// Journal is an open WAL. Safe for concurrent use.
type Journal struct {
	cfg  Config
	path string

	mu      sync.Mutex
	f       *os.File
	size    int64
	pending map[string]Entry // accepted records without a final, by job id
	maxSeq  int
	closed  bool
	broken  error // set when a failed append could not be repaired
}

// Open loads (or creates) the journal under cfg.Dir: the WAL is replayed,
// compacted down to its live records, and reopened for appending. The
// returned journal's Pending holds every job a previous process accepted
// but never finalized, in admission order.
func Open(cfg Config) (*Journal, error) {
	if cfg.RotateBytes <= 0 {
		cfg.RotateBytes = 4 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	for _, d := range []string{cfg.Dir, filepath.Join(cfg.Dir, "spool"), filepath.Join(cfg.Dir, "work")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	j := &Journal{cfg: cfg, path: filepath.Join(cfg.Dir, WALName), pending: make(map[string]Entry)}
	if err := j.replay(); err != nil {
		return nil, err
	}
	// Compact: the replayed history collapses to the live records, so a
	// long-running service's accepted/final churn never accretes.
	if err := j.rewriteLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// replay loads the WAL into the pending map. A torn final line — the
// crash-mid-append signature — is dropped with a log line; a malformed
// interior line is corruption and fails Open.
func (j *Journal) replay() error {
	data, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for len(data) > 0 {
		line := data
		rest := []byte(nil)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, rest = data[:i], data[i+1:]
		}
		var e Entry
		if uerr := json.Unmarshal(line, &e); uerr != nil || e.V != Version || e.Job == "" {
			if len(rest) == 0 {
				j.cfg.Logf("journal: dropping torn trailing record (%d bytes)", len(line))
				data = nil
				continue
			}
			return fmt.Errorf("journal: %s: corrupt interior record: %q", j.path, truncateForLog(line))
		}
		switch e.Kind {
		case KindAccepted:
			j.pending[e.Job] = e
		case KindFinal:
			delete(j.pending, e.Job)
		default:
			return fmt.Errorf("journal: %s: unknown record kind %q", j.path, e.Kind)
		}
		if e.Seq > j.maxSeq {
			j.maxSeq = e.Seq
		}
		data = rest
	}
	return nil
}

func truncateForLog(b []byte) string {
	if len(b) > 120 {
		b = b[:120]
	}
	return string(b)
}

// rewriteLocked compacts the WAL down to the pending records (atomic
// temp + fsync + rename) and reopens it for appending. Caller must hold
// j.mu, or own the journal exclusively (Open).
func (j *Journal) rewriteLocked() error {
	live := j.pendingSortedLocked()
	var buf []byte
	for _, e := range live {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if j.cfg.Fault != nil {
		if err := j.cfg.Fault("rotate"); err != nil {
			return fmt.Errorf("journal rotate: %w", err)
		}
	}
	if err := checkpoint.AtomicWrite(j.path, buf); err != nil {
		return err
	}
	if j.f != nil {
		// The old handle points at the renamed-over inode; a close error
		// is irrelevant (everything it wrote was already fsync'd).
		j.f.Close()
		j.f = nil
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.size = int64(len(buf))
	return nil
}

// pendingSortedLocked snapshots the pending records in admission order.
func (j *Journal) pendingSortedLocked() []Entry {
	live := make([]Entry, 0, len(j.pending))
	for _, e := range j.pending {
		live = append(live, e)
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Seq < live[b].Seq })
	return live
}

// Pending returns the accepted-but-unresolved records in admission order.
func (j *Journal) Pending() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pendingSortedLocked()
}

// MaxSeq returns the highest sequence number the WAL has recorded; the
// service resumes job-id allocation past it so recovered and new ids
// never collide.
func (j *Journal) MaxSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxSeq
}

// SpoolDir returns the journal-owned spool directory for a job's
// uploaded inputs. Unlike temp-dir spools, it survives restarts; the
// service removes it when the job is finalized durably.
func (j *Journal) SpoolDir(job string) string {
	return filepath.Join(j.cfg.Dir, "spool", job)
}

// WorkDir returns the job's durable work directory: per-chromosome
// output files plus the checkpoint manifest recovery resumes from.
func (j *Journal) WorkDir(job string) string {
	return filepath.Join(j.cfg.Dir, "work", job)
}

// Accept journals a job admission. It must return before the job is
// acknowledged to the client; an error means the job was never durably
// accepted and the caller must fail it (the WAL itself stays clean — a
// torn append is truncated back out).
func (j *Journal) Accept(e Entry) error {
	e.V, e.Kind = Version, KindAccepted
	return j.append(e)
}

// Final journals a job's terminal state. An error leaves the job pending
// — it will re-run (idempotently, through its checkpoints) on the next
// recovery — so callers log it rather than failing the finished job.
func (j *Journal) Final(seq int, job, state string) error {
	return j.append(Entry{V: Version, Kind: KindFinal, Seq: seq, Job: job, State: state})
}

// append writes one record durably: marshal, single write, fsync. On a
// write or sync failure the file is truncated back to its pre-append
// size so the log never carries a torn line mid-file; if even the repair
// fails the journal is marked broken and every later append errors.
func (j *Journal) append(e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.broken != nil {
		return fmt.Errorf("journal: unusable after failed repair: %w", j.broken)
	}
	if j.cfg.Fault != nil {
		if ferr := j.cfg.Fault("append"); ferr != nil {
			return fmt.Errorf("journal append: %w", ferr)
		}
	}
	//gsnplint:ignore lockhold the WAL contract is one fsync'd append at a time; j.mu exists to serialize exactly this write
	if _, werr := j.f.Write(line); werr != nil {
		j.repairLocked()
		return fmt.Errorf("journal append: %w", werr)
	}
	if serr := j.f.Sync(); serr != nil {
		j.repairLocked()
		return fmt.Errorf("journal sync: %w", serr)
	}
	j.size += int64(len(line))
	switch e.Kind {
	case KindAccepted:
		j.pending[e.Job] = e
	case KindFinal:
		delete(j.pending, e.Job)
	}
	if e.Seq > j.maxSeq {
		j.maxSeq = e.Seq
	}
	if j.size > j.cfg.RotateBytes {
		if rerr := j.rewriteLocked(); rerr != nil {
			// Compaction failure is not fatal: the oversized WAL is still
			// correct, only uncompacted. Keep appending and retry at the
			// next threshold crossing.
			j.cfg.Logf("journal: compaction failed (will retry): %v", rerr)
		}
	}
	return nil
}

// repairLocked truncates a torn append back out of the WAL.
func (j *Journal) repairLocked() {
	if err := j.f.Truncate(j.size); err != nil {
		j.broken = err
		j.cfg.Logf("journal: CANNOT repair torn append (%v); journal disabled, new jobs will be refused", err)
	}
}

// Sweep removes spool and work directories belonging to jobs that are no
// longer pending — the debris of jobs finalized (or never fully
// admitted) right before a crash. Called once after Open, with the
// recovered job set as keep.
func (j *Journal) Sweep(keep map[string]bool) {
	for _, root := range []string{filepath.Join(j.cfg.Dir, "spool"), filepath.Join(j.cfg.Dir, "work")} {
		entries, err := os.ReadDir(root)
		if err != nil {
			j.cfg.Logf("journal: sweep %s: %v", root, err)
			continue
		}
		for _, ent := range entries {
			if keep[ent.Name()] {
				continue
			}
			p := filepath.Join(root, ent.Name())
			if err := os.RemoveAll(p); err != nil {
				j.cfg.Logf("journal: sweep: removing %s: %v", p, err)
			} else {
				j.cfg.Logf("journal: swept stale %s", p)
			}
		}
	}
}

// Close flushes nothing (every append already fsync'd) and releases the
// WAL handle. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	//gsnplint:ignore lockhold Close must exclude in-flight appends before releasing the handle; this is the lock's final critical section
	err := j.f.Close()
	j.f = nil
	return err
}
