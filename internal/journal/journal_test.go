package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, cfg Config) *Journal {
	t.Helper()
	j, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func acceptN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		e := Entry{
			Seq: i, Job: fmt.Sprintf("j%d", i),
			Spec:        json.RawMessage(`{"genome_dir":"/data"}`),
			Fingerprint: "fp", Digests: []string{"d1", "d2"},
			Created: time.Unix(int64(1700000000+i), 0).UTC(),
		}
		if err := j.Accept(e); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
}

// TestJournalRoundTrip: accepted-without-final records survive a close and
// reopen, in admission order, with ids resuming past MaxSeq.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir})
	acceptN(t, j, 3)
	if err := j.Final(2, "j2", "done"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, Config{Dir: dir})
	pending := j2.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending after reopen: %d entries, want 2", len(pending))
	}
	if pending[0].Job != "j1" || pending[1].Job != "j3" {
		t.Fatalf("pending order: %s, %s, want j1, j3", pending[0].Job, pending[1].Job)
	}
	if pending[0].Fingerprint != "fp" || len(pending[0].Digests) != 2 {
		t.Fatalf("entry fields lost across reopen: %+v", pending[0])
	}
	if got := j2.MaxSeq(); got != 3 {
		t.Fatalf("MaxSeq = %d, want 3", got)
	}
	if !pending[0].Created.Equal(time.Unix(1700000001, 0).UTC()) {
		t.Fatalf("created timestamp drifted: %v", pending[0].Created)
	}
}

// TestJournalTornTail: a partial trailing line — the crash-mid-append
// signature — is dropped on replay; every complete record survives.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir})
	acceptN(t, j, 2)
	j.Close()

	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"kind":"accepted","seq":3,"jo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openT(t, Config{Dir: dir})
	pending := j2.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending after torn tail: %d, want 2", len(pending))
	}
	// Open compacted the log: the torn bytes are gone from disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"seq":3`) {
		t.Fatalf("torn record survived compaction: %q", data)
	}
}

// TestJournalCorruptInterior: a malformed record that is NOT the last line
// is silent corruption, and Open must refuse the log rather than drop jobs.
func TestJournalCorruptInterior(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir})
	acceptN(t, j, 1)
	j.Close()

	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage not json\n{\"v\":1,\"kind\":\"final\",\"seq\":1,\"job\":\"j1\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open accepted a WAL with a corrupt interior record")
	}
}

// TestJournalUnknownKind: a record kind this version does not know is a
// schema breach, not something to skip silently.
func TestJournalUnknownKind(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALName),
		[]byte("{\"v\":1,\"kind\":\"mystery\",\"seq\":1,\"job\":\"j1\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open accepted an unknown record kind")
	}
}

// TestJournalRotation: accept/final churn beyond RotateBytes compacts the
// WAL down to its live records instead of accreting history.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir, RotateBytes: 512})
	for i := 1; i <= 50; i++ {
		job := fmt.Sprintf("j%d", i)
		if err := j.Accept(Entry{Seq: i, Job: job, Fingerprint: "fp"}); err != nil {
			t.Fatal(err)
		}
		if i != 50 { // leave the last job pending
			if err := j.Final(i, job, "done"); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := os.Stat(filepath.Join(dir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 1024 {
		t.Fatalf("WAL grew to %d bytes despite RotateBytes=512", st.Size())
	}
	if p := j.Pending(); len(p) != 1 || p[0].Job != "j50" {
		t.Fatalf("pending after churn: %+v, want only j50", p)
	}
	j.Close()
	if p := openT(t, Config{Dir: dir}).Pending(); len(p) != 1 || p[0].Job != "j50" {
		t.Fatalf("pending after reopen: %+v, want only j50", p)
	}
}

// TestJournalAppendFault: an injected append fault fails that one Accept,
// leaves the WAL clean, and later appends succeed.
func TestJournalAppendFault(t *testing.T) {
	dir := t.TempDir()
	failNext := false
	j := openT(t, Config{Dir: dir, Fault: func(op string) error {
		if failNext && op == "append" {
			failNext = false
			return fmt.Errorf("injected %s fault", op)
		}
		return nil
	}})
	acceptN(t, j, 1)
	failNext = true
	if err := j.Accept(Entry{Seq: 2, Job: "j2"}); err == nil {
		t.Fatal("faulted Accept succeeded")
	}
	if err := j.Accept(Entry{Seq: 3, Job: "j3"}); err != nil {
		t.Fatalf("append after fault: %v", err)
	}
	j.Close()

	pending := openT(t, Config{Dir: dir}).Pending()
	if len(pending) != 2 || pending[0].Job != "j1" || pending[1].Job != "j3" {
		t.Fatalf("pending after faulted append: %+v, want j1 and j3", pending)
	}
}

// TestJournalSweep removes spool/work debris of non-pending jobs and keeps
// the recovered set.
func TestJournalSweep(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir})
	for _, sub := range []string{"spool", "work"} {
		for _, job := range []string{"j1", "j2"} {
			p := filepath.Join(dir, sub, job)
			if err := os.MkdirAll(p, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(p, "x"), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Sweep(map[string]bool{"j2": true})
	for _, sub := range []string{"spool", "work"} {
		if _, err := os.Stat(filepath.Join(dir, sub, "j1")); !os.IsNotExist(err) {
			t.Errorf("%s/j1 survived the sweep", sub)
		}
		if _, err := os.Stat(filepath.Join(dir, sub, "j2", "x")); err != nil {
			t.Errorf("%s/j2 was swept despite being kept: %v", sub, err)
		}
	}
}

// TestJournalClosed: appends after Close report ErrClosed instead of
// writing through a nil handle.
func TestJournalClosed(t *testing.T) {
	j := openT(t, Config{Dir: t.TempDir()})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := j.Accept(Entry{Seq: 1, Job: "j1"}); err != ErrClosed {
		t.Fatalf("Accept after Close: %v, want ErrClosed", err)
	}
}

// TestJournalConcurrent hammers Accept/Final from many goroutines; the
// reopened log must agree exactly with the survivors.
func TestJournalConcurrent(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, Config{Dir: dir, RotateBytes: 2048})
	const n = 100
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := fmt.Sprintf("j%d", i)
			if err := j.Accept(Entry{Seq: i, Job: job}); err != nil {
				t.Errorf("accept %s: %v", job, err)
				return
			}
			if i%2 == 0 {
				if err := j.Final(i, job, "done"); err != nil {
					t.Errorf("final %s: %v", job, err)
				}
			}
		}(i)
	}
	wg.Wait()
	j.Close()

	pending := openT(t, Config{Dir: dir}).Pending()
	if len(pending) != n/2 {
		t.Fatalf("pending after concurrent churn: %d, want %d", len(pending), n/2)
	}
	for i, e := range pending {
		if e.Seq != 2*i+1 {
			t.Fatalf("pending[%d].Seq = %d, want %d (odd seqs only, sorted)", i, e.Seq, 2*i+1)
		}
	}
}
