// Package seqsim synthesises second-generation sequencing workloads: a
// reference genome, a diploid individual carrying SNPs, and short reads
// sampled from the individual with realistic errors and quality strings.
//
// It substitutes for the operational BGI data sets of the paper's
// evaluation (Section VI-A: ~500M reads of 100 bp over 24 chromosome
// files). The generator reproduces the structural properties the paper's
// experiments depend on: per-site aligned-base counts (the sparsity of
// Figure 4b), quality scores that repeat in runs along reads (the RLE-DICT
// compressibility of Section V-B), partial coverage from unmappable
// regions, and ground-truth SNPs for accuracy checks.
package seqsim

import (
	"math"
	"math/rand"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

// GenomeSpec configures reference generation.
type GenomeSpec struct {
	// Name is the chromosome name, e.g. "chr21".
	Name string
	// Length is the reference length in base pairs.
	Length int
	// GC is the genome GC content (0.41 for human when zero).
	GC float64
	// Seed makes generation deterministic.
	Seed int64
}

// Reference is a generated reference chromosome.
type Reference struct {
	Name string
	Seq  dna.Sequence
}

// GenerateReference builds a random reference with first-order base
// composition matching the GC target, plus occasional low-complexity
// stretches as found in real genomes.
func GenerateReference(spec GenomeSpec) *Reference {
	gc := spec.GC
	if gc == 0 {
		gc = 0.41
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	seq := make(dna.Sequence, spec.Length)
	i := 0
	for i < spec.Length {
		if rng.Float64() < 0.001 {
			// Low-complexity repeat: copy a short motif a few times.
			motifLen := 2 + rng.Intn(5)
			reps := 3 + rng.Intn(8)
			motif := make(dna.Sequence, motifLen)
			for m := range motif {
				motif[m] = randBase(rng, gc)
			}
			for r := 0; r < reps && i < spec.Length; r++ {
				for m := 0; m < motifLen && i < spec.Length; m++ {
					seq[i] = motif[m]
					i++
				}
			}
			continue
		}
		seq[i] = randBase(rng, gc)
		i++
	}
	return &Reference{Name: spec.Name, Seq: seq}
}

// randBase draws a base with the given GC probability.
func randBase(rng *rand.Rand, gc float64) dna.Base {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return dna.C
		}
		return dna.G
	}
	if rng.Intn(2) == 0 {
		return dna.A
	}
	return dna.T
}

// DiploidSpec configures the simulated individual.
type DiploidSpec struct {
	// HetRate is the per-site probability of a heterozygous SNP
	// (human-typical ~1e-3).
	HetRate float64
	// HomRate is the per-site probability of a homozygous-alt SNP.
	HomRate float64
	// TiTv is the transition/transversion ratio of injected SNPs.
	TiTv float64
	// KnownFraction is the fraction of injected SNPs also present in the
	// known-SNP (dbSNP-like) prior file.
	KnownFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultDiploidSpec matches human polymorphism rates.
func DefaultDiploidSpec(seed int64) DiploidSpec {
	return DiploidSpec{HetRate: 1e-3, HomRate: 5e-4, TiTv: 2.1, KnownFraction: 0.3, Seed: seed}
}

// Variant is an injected ground-truth SNP.
type Variant struct {
	// Pos is the zero-based reference position.
	Pos int
	// Ref is the reference base at Pos.
	Ref dna.Base
	// Genotype is the individual's true genotype at Pos.
	Genotype dna.Genotype
	// Known marks variants that appear in the prior file.
	Known bool
}

// Diploid is a simulated individual: two haplotypes over a reference plus
// the ground-truth variant list.
type Diploid struct {
	Ref      *Reference
	Hap1     dna.Sequence
	Hap2     dna.Sequence
	Variants []Variant
}

// MakeDiploid injects SNPs into the reference according to spec.
func MakeDiploid(ref *Reference, spec DiploidSpec) *Diploid {
	rng := rand.New(rand.NewSource(spec.Seed))
	d := &Diploid{
		Ref:  ref,
		Hap1: append(dna.Sequence(nil), ref.Seq...),
		Hap2: append(dna.Sequence(nil), ref.Seq...),
	}
	for pos, refBase := range ref.Seq {
		r := rng.Float64()
		var g dna.Genotype
		switch {
		case r < spec.HetRate:
			alt := mutate(rng, refBase, spec.TiTv)
			g = dna.MakeGenotype(refBase, alt)
			if rng.Intn(2) == 0 {
				d.Hap1[pos] = alt
			} else {
				d.Hap2[pos] = alt
			}
		case r < spec.HetRate+spec.HomRate:
			alt := mutate(rng, refBase, spec.TiTv)
			g = dna.HomozygousGenotype(alt)
			d.Hap1[pos] = alt
			d.Hap2[pos] = alt
		default:
			continue
		}
		d.Variants = append(d.Variants, Variant{
			Pos:      pos,
			Ref:      refBase,
			Genotype: g,
			Known:    rng.Float64() < spec.KnownFraction,
		})
	}
	return d
}

// mutate draws an alternative base with transition/transversion bias.
func mutate(rng *rand.Rand, ref dna.Base, tiTv float64) dna.Base {
	if tiTv <= 0 {
		tiTv = 2
	}
	// One transition, two transversions.
	pTi := tiTv / (tiTv + 2)
	if rng.Float64() < pTi {
		return ref ^ 2 // the transition partner under the 2-bit encoding
	}
	// Pick one of the two transversions.
	alt := ref ^ 1
	if rng.Intn(2) == 1 {
		alt = ref ^ 3
	}
	return alt
}

// ReadSpec configures read sampling.
type ReadSpec struct {
	// Depth is the mean sequencing depth over unmasked regions.
	Depth float64
	// ReadLen is the read length in bp (100 in the paper's data).
	ReadLen int
	// MaskFraction is the fraction of the reference with no read
	// coverage (unmappable regions), producing the partial coverage of
	// Table II (88% for Ch.1, 68% for Ch.21).
	MaskFraction float64
	// QualityHigh is the plateau quality of early read cycles.
	QualityHigh int
	// QualityLow is the floor quality of late cycles.
	QualityLow int
	// SegmentLen is the length of constant-quality runs along a read;
	// real base callers emit the same quality for stretches of cycles.
	SegmentLen int
	// MultiHitRate is the fraction of reads flagged as aligning to
	// multiple positions (hits > 1), which SNP calling weighs via the
	// count-uniq columns.
	MultiHitRate float64
	// HotspotRate is the expected number of pileup hotspots per site:
	// repetitive regions attract excess alignments in real data,
	// producing the deep per-site stacks (hundreds of aligned bases)
	// that drive the largest size classes of the multipass sort.
	HotspotRate float64
	// HotspotBoost multiplies the local depth at a hotspot.
	HotspotBoost float64
	// Seed makes sampling deterministic.
	Seed int64
}

// DefaultReadSpec mirrors the paper's 100 bp reads at the given depth.
func DefaultReadSpec(depth float64, seed int64) ReadSpec {
	return ReadSpec{
		Depth:        depth,
		ReadLen:      100,
		MaskFraction: 0.12,
		QualityHigh:  38,
		QualityLow:   12,
		SegmentLen:   16,
		MultiHitRate: 0.08,
		HotspotRate:  1.0 / 40000,
		HotspotBoost: 8,
		Seed:         seed,
	}
}

// SampleReads draws reads from the diploid individual. Reads are returned
// sorted by position (the SNP-calling input order). The returned mask
// reports which reference positions were eligible for coverage.
func SampleReads(d *Diploid, spec ReadSpec) ([]reads.AlignedRead, []bool) {
	rng := rand.New(rand.NewSource(spec.Seed))
	n := len(d.Ref.Seq)
	mask := buildMask(rng, n, spec.MaskFraction)

	if spec.ReadLen > n {
		spec.ReadLen = n
	}
	numReads := int(math.Round(spec.Depth * float64(n) / float64(spec.ReadLen)))
	rs := make([]reads.AlignedRead, 0, numReads)

	// Sample candidate start positions uniformly; reject reads that
	// overlap masked territory so masked regions stay uncovered.
	maxStart := n - spec.ReadLen
	for attempt := int64(0); len(rs) < numReads; attempt++ {
		if attempt > int64(numReads)*20 {
			break // degenerate mask; avoid an unbounded loop
		}
		start := rng.Intn(maxStart + 1)
		if !mask[start] || !mask[start+spec.ReadLen-1] {
			continue
		}
		rs = append(rs, sampleOneRead(d, spec, rng, int64(len(rs)), start))
	}

	// Pileup hotspots: repetitive regions accumulate excess alignments,
	// giving a few sites per chromosome stacks of hundreds of aligned
	// bases (dominated by multi-hit reads).
	nHot := int(float64(n) * spec.HotspotRate)
	extra := int(spec.Depth * spec.HotspotBoost)
	for h := 0; h < nHot; h++ {
		center := rng.Intn(maxStart + 1)
		if !mask[center] || !mask[center+spec.ReadLen-1] {
			continue
		}
		lo := center - spec.ReadLen + 1
		if lo < 0 {
			lo = 0
		}
		for k := 0; k < extra; k++ {
			start := lo + rng.Intn(center-lo+1)
			if !mask[start] || start+spec.ReadLen > n || !mask[start+spec.ReadLen-1] {
				continue
			}
			r := sampleOneRead(d, spec, rng, int64(len(rs)), start)
			r.Hits = uint8(2 + rng.Intn(200)) // repeat-region alignments
			rs = append(rs, r)
		}
	}

	reads.SortByPos(rs)
	return rs, mask
}

// buildMask marks ~maskFraction of the genome unmappable in contiguous
// blocks.
func buildMask(rng *rand.Rand, n int, frac float64) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	if frac <= 0 {
		return mask
	}
	masked := 0
	target := int(float64(n) * frac)
	for masked < target {
		blockLen := 500 + rng.Intn(4500)
		if blockLen > target-masked+499 {
			blockLen = target - masked + 1
		}
		start := rng.Intn(n)
		for i := start; i < start+blockLen && i < n; i++ {
			if mask[i] {
				mask[i] = false
				masked++
			}
		}
	}
	return mask
}

// sampleOneRead sequences one read from a random haplotype and strand.
func sampleOneRead(d *Diploid, spec ReadSpec, rng *rand.Rand, id int64, start int) reads.AlignedRead {
	hap := d.Hap1
	if rng.Intn(2) == 1 {
		hap = d.Hap2
	}
	strand := uint8(rng.Intn(2))
	r := reads.AlignedRead{
		ID:     id,
		Pos:    start,
		Strand: strand,
		Hits:   1,
		Bases:  make(dna.Sequence, spec.ReadLen),
		Quals:  make([]dna.Quality, spec.ReadLen),
	}
	if rng.Float64() < spec.MultiHitRate {
		r.Hits = uint8(2 + rng.Intn(3))
	}

	// Quality string: a declining staircase of constant-quality segments
	// over sequencing cycles, with read-to-read jitter.
	segLen := spec.SegmentLen
	if segLen <= 0 {
		segLen = 16
	}
	offset := rng.Intn(7) - 3
	for cyc := 0; cyc < spec.ReadLen; cyc++ {
		seg := cyc / segLen
		frac := float64(seg*segLen) / float64(spec.ReadLen)
		q := float64(spec.QualityHigh) - frac*float64(spec.QualityHigh-spec.QualityLow)
		r.Quals[refOffset(strand, spec.ReadLen, cyc)] = dna.ClampQuality(int(q) + offset)
	}

	// Bases: haplotype truth with Phred-governed miscalls.
	for i := 0; i < spec.ReadLen; i++ {
		truth := hap[start+i]
		q := r.Quals[i]
		if rng.Float64() < q.ErrorProbability() {
			// Uniform among the three wrong bases.
			truth = dna.Base((int(truth) + 1 + rng.Intn(3))) & 3
		}
		r.Bases[i] = truth
	}
	return r
}

// refOffset converts a sequencing cycle to a reference offset for the given
// strand.
func refOffset(strand uint8, readLen, cycle int) int {
	if strand == 1 {
		return readLen - 1 - cycle
	}
	return cycle
}
