package seqsim

import (
	"math"
	"testing"

	"gsnp/internal/dna"
	qreads "gsnp/internal/reads"
)

func TestGenerateReferenceDeterministic(t *testing.T) {
	a := GenerateReference(GenomeSpec{Name: "t", Length: 10000, Seed: 42})
	b := GenerateReference(GenomeSpec{Name: "t", Length: 10000, Seed: 42})
	if a.Seq.String() != b.Seq.String() {
		t.Error("same seed produced different references")
	}
	c := GenerateReference(GenomeSpec{Name: "t", Length: 10000, Seed: 43})
	if a.Seq.String() == c.Seq.String() {
		t.Error("different seeds produced identical references")
	}
}

func TestGenerateReferenceGC(t *testing.T) {
	ref := GenerateReference(GenomeSpec{Name: "t", Length: 200000, GC: 0.41, Seed: 1})
	gc := ref.Seq.GCContent()
	if math.Abs(gc-0.41) > 0.03 {
		t.Errorf("GC content = %v, want ~0.41", gc)
	}
	ref = GenerateReference(GenomeSpec{Name: "t", Length: 200000, GC: 0.7, Seed: 1})
	if gc := ref.Seq.GCContent(); math.Abs(gc-0.7) > 0.03 {
		t.Errorf("GC content = %v, want ~0.7", gc)
	}
}

func TestMakeDiploidRates(t *testing.T) {
	ref := GenerateReference(GenomeSpec{Name: "t", Length: 500000, Seed: 7})
	spec := DiploidSpec{HetRate: 1e-3, HomRate: 5e-4, TiTv: 2.1, KnownFraction: 0.3, Seed: 8}
	d := MakeDiploid(ref, spec)

	nHet, nHom, nKnown, nTi := 0, 0, 0, 0
	for _, v := range d.Variants {
		if v.Genotype.IsHomozygous() {
			nHom++
		} else {
			nHet++
		}
		if v.Known {
			nKnown++
		}
		a1, a2 := v.Genotype.Alleles()
		alt := a1
		if alt == v.Ref {
			alt = a2
		}
		if v.Ref.IsTransition(alt) {
			nTi++
		}
		if v.Ref != ref.Seq[v.Pos] {
			t.Fatalf("variant at %d records wrong ref base", v.Pos)
		}
		if v.Genotype.IsHomozygous() {
			if d.Hap1[v.Pos] == v.Ref || d.Hap2[v.Pos] == v.Ref {
				t.Fatalf("hom variant at %d not applied to both haplotypes", v.Pos)
			}
		} else if (d.Hap1[v.Pos] == v.Ref) == (d.Hap2[v.Pos] == v.Ref) {
			t.Fatalf("het variant at %d not applied to exactly one haplotype", v.Pos)
		}
	}
	total := len(d.Variants)
	if total == 0 {
		t.Fatal("no variants injected")
	}
	wantHet := 1e-3 * 500000
	if math.Abs(float64(nHet)-wantHet) > wantHet*0.25 {
		t.Errorf("het count = %d, want ~%.0f", nHet, wantHet)
	}
	wantHom := 5e-4 * 500000
	if math.Abs(float64(nHom)-wantHom) > wantHom*0.35 {
		t.Errorf("hom count = %d, want ~%.0f", nHom, wantHom)
	}
	tiFrac := float64(nTi) / float64(total)
	wantTi := 2.1 / 4.1
	if math.Abs(tiFrac-wantTi) > 0.08 {
		t.Errorf("transition fraction = %v, want ~%v", tiFrac, wantTi)
	}
	knownFrac := float64(nKnown) / float64(total)
	if math.Abs(knownFrac-0.3) > 0.08 {
		t.Errorf("known fraction = %v, want ~0.3", knownFrac)
	}
	// Non-variant sites match the reference on both haplotypes.
	varAt := map[int]bool{}
	for _, v := range d.Variants {
		varAt[v.Pos] = true
	}
	for pos := 0; pos < len(ref.Seq); pos += 997 {
		if !varAt[pos] && (d.Hap1[pos] != ref.Seq[pos] || d.Hap2[pos] != ref.Seq[pos]) {
			t.Fatalf("non-variant site %d differs from reference", pos)
		}
	}
}

func TestSampleReadsBasic(t *testing.T) {
	ref := GenerateReference(GenomeSpec{Name: "t", Length: 100000, Seed: 3})
	d := MakeDiploid(ref, DefaultDiploidSpec(4))
	spec := DefaultReadSpec(10, 5)
	reads, mask := SampleReads(d, spec)

	if len(reads) == 0 {
		t.Fatal("no reads sampled")
	}
	st := qreads.Stats(reads, len(ref.Seq))
	if math.Abs(st.Depth-10) > 1.5 {
		t.Errorf("depth = %v, want ~10", st.Depth)
	}
	if math.Abs(st.Coverage-0.88) > 0.05 {
		t.Errorf("coverage = %v, want ~0.88", st.Coverage)
	}

	// Reads sorted by position, in range, masked regions untouched.
	for i := range reads {
		r := &reads[i]
		if i > 0 && r.Pos < reads[i-1].Pos {
			t.Fatal("reads not sorted by position")
		}
		if r.Pos < 0 || r.Pos+len(r.Bases) > len(ref.Seq) {
			t.Fatalf("read %d out of range", i)
		}
		if len(r.Bases) != spec.ReadLen || len(r.Quals) != spec.ReadLen {
			t.Fatalf("read %d has wrong length", i)
		}
		if !mask[r.Pos] || !mask[r.Pos+len(r.Bases)-1] {
			t.Fatalf("read %d overlaps masked region", i)
		}
		for _, q := range r.Quals {
			if q >= dna.QMax {
				t.Fatalf("quality %d out of range", q)
			}
		}
	}
}

func TestSampleReadsErrorRate(t *testing.T) {
	ref := GenerateReference(GenomeSpec{Name: "t", Length: 200000, Seed: 11})
	// No variants: every mismatch against the reference is a sequencing
	// error.
	d := MakeDiploid(ref, DiploidSpec{Seed: 12})
	if len(d.Variants) != 0 {
		t.Fatal("zero-rate diploid has variants")
	}
	spec := DefaultReadSpec(8, 13)
	reads, _ := SampleReads(d, spec)
	var bases, errs int
	for i := range reads {
		r := &reads[i]
		for j, b := range r.Bases {
			bases++
			if b != ref.Seq[r.Pos+j] {
				errs++
			}
		}
	}
	rate := float64(errs) / float64(bases)
	// The staircase quality model (Q38 head to Q12 tail) yields an average
	// error rate around 1-3%, the paper's "error rate of around 2%".
	if rate < 0.005 || rate > 0.04 {
		t.Errorf("sequencing error rate = %v, want ~0.02", rate)
	}
}

func TestQualityRuns(t *testing.T) {
	// Consecutive cycles share quality values in runs (SegmentLen), the
	// property RLE-DICT compression exploits.
	ref := GenerateReference(GenomeSpec{Name: "t", Length: 50000, Seed: 21})
	d := MakeDiploid(ref, DefaultDiploidSpec(22))
	spec := DefaultReadSpec(5, 23)
	reads, _ := SampleReads(d, spec)
	r := &reads[0]
	runs := 1
	for c := 1; c < len(r.Quals); c++ {
		a := r.Quals[refOffset(r.Strand, len(r.Quals), c)]
		b := r.Quals[refOffset(r.Strand, len(r.Quals), c-1)]
		if a != b {
			runs++
		}
	}
	if runs > len(r.Quals)/spec.SegmentLen+2 {
		t.Errorf("quality string has %d runs over %d cycles; expected long runs", runs, len(r.Quals))
	}
}

func TestCycleMapping(t *testing.T) {
	r := qreads.AlignedRead{Strand: 0, Bases: make(dna.Sequence, 100)}
	if r.Cycle(0) != 0 || r.Cycle(99) != 99 {
		t.Error("forward cycle mapping wrong")
	}
	r.Strand = 1
	if r.Cycle(0) != 99 || r.Cycle(99) != 0 {
		t.Error("reverse cycle mapping wrong")
	}
}

func TestMultiHitRate(t *testing.T) {
	ref := GenerateReference(GenomeSpec{Name: "t", Length: 100000, Seed: 31})
	d := MakeDiploid(ref, DefaultDiploidSpec(32))
	spec := DefaultReadSpec(10, 33)
	reads, _ := SampleReads(d, spec)
	multi := 0
	for i := range reads {
		if reads[i].Hits > 1 {
			multi++
		}
	}
	frac := float64(multi) / float64(len(reads))
	if math.Abs(frac-spec.MultiHitRate) > 0.03 {
		t.Errorf("multi-hit fraction = %v, want ~%v", frac, spec.MultiHitRate)
	}
}

func TestScaledHumanGenome(t *testing.T) {
	specs := ScaledHumanGenome(1000, 99)
	if len(specs) != 24 {
		t.Fatalf("chromosome count = %d, want 24", len(specs))
	}
	if specs[0].Name != "chr1" || specs[20].Name != "chr21" {
		t.Error("chromosome order wrong")
	}
	if specs[0].Length != 247000 {
		t.Errorf("chr1 length = %d, want 247000", specs[0].Length)
	}
	if specs[20].Length != 47000 {
		t.Errorf("chr21 length = %d, want 47000", specs[20].Length)
	}
	// chr1 is the largest.
	for _, s := range specs {
		if s.Length > specs[0].Length {
			t.Errorf("%s larger than chr1", s.Name)
		}
	}
	if Chr1Spec(1000, 99) != specs[0] || Chr21Spec(1000, 99) != specs[20] {
		t.Error("convenience spec accessors disagree")
	}
}

func TestBuildDataset(t *testing.T) {
	spec := ChromosomeSpec{Name: "chrT", Length: 30000, Depth: 9.6, MaskFraction: 0.32, Seed: 5}
	ds := BuildDataset(spec)
	if ds.Ref == nil || ds.Diploid == nil || len(ds.Reads) == 0 {
		t.Fatal("dataset incomplete")
	}
	st := ds.Stats()
	if math.Abs(st.Coverage-0.68) > 0.06 {
		t.Errorf("coverage = %v, want ~0.68 (Table II chr21)", st.Coverage)
	}
	if math.Abs(st.Depth-9.6) > 1.5 {
		t.Errorf("depth = %v, want ~9.6", st.Depth)
	}
}
