package seqsim

import "gsnp/internal/reads"

// This file describes the scaled whole-human-genome workload: the paper
// evaluates on 24 chromosome files (Section VI-A, Figure 12); we keep their
// relative sizes but scale absolute lengths so experiments complete on a
// development machine.

// ChromosomeSpec describes one chromosome of the scaled genome.
type ChromosomeSpec struct {
	// Name is the chromosome label.
	Name string
	// Length is the scaled reference length in bp.
	Length int
	// Depth is the sequencing depth of the data set for this chromosome.
	Depth float64
	// MaskFraction is the uncovered fraction (1 - coverage target).
	MaskFraction float64
	// Seed seeds all generation for the chromosome.
	Seed int64
}

// humanChromosomeMb lists approximate human chromosome lengths in Mb
// (GRCh36 era, matching the paper's data: Ch.1 = 247 M sites, Ch.21 = 47 M).
var humanChromosomeMb = map[string]float64{
	"chr1": 247, "chr2": 243, "chr3": 199, "chr4": 191, "chr5": 181,
	"chr6": 171, "chr7": 159, "chr8": 146, "chr9": 140, "chr10": 135,
	"chr11": 134, "chr12": 132, "chr13": 114, "chr14": 106, "chr15": 100,
	"chr16": 89, "chr17": 79, "chr18": 76, "chr19": 64, "chr20": 62,
	"chr21": 47, "chr22": 50, "chrX": 155, "chrY": 58,
}

// chromosomeOrder is the 24-sequence order used in reports.
var chromosomeOrder = []string{
	"chr1", "chr2", "chr3", "chr4", "chr5", "chr6", "chr7", "chr8",
	"chr9", "chr10", "chr11", "chr12", "chr13", "chr14", "chr15", "chr16",
	"chr17", "chr18", "chr19", "chr20", "chr21", "chr22", "chrX", "chrY",
}

// ScaledHumanGenome returns specs for all 24 chromosomes with lengths
// scaled to sitesPerMb sites per real megabase (e.g. sitesPerMb = 2000
// makes chr1 around 494,000 sites). Depths follow the paper's data: chr1
// at 11X, chr21 at 9.6X, the rest interpolated around 10-11X; coverage
// targets are 88% for chr1 and 68% for chr21 as in Table II.
func ScaledHumanGenome(sitesPerMb int, seed int64) []ChromosomeSpec {
	specs := make([]ChromosomeSpec, 0, len(chromosomeOrder))
	for i, name := range chromosomeOrder {
		depth := 10.0 + 0.5*float64(i%4)
		mask := 0.15
		switch name {
		case "chr1":
			depth, mask = 11.0, 0.12
		case "chr21":
			depth, mask = 9.6, 0.32
		case "chrY":
			depth, mask = 9.0, 0.40 // Y is poorly covered in practice
		}
		specs = append(specs, ChromosomeSpec{
			Name:         name,
			Length:       int(humanChromosomeMb[name] * float64(sitesPerMb)),
			Depth:        depth,
			MaskFraction: mask,
			Seed:         seed + int64(i)*7919,
		})
	}
	return specs
}

// Chr1Spec returns the scaled Chromosome 1 workload (the paper's largest
// data set) at the given sites-per-Mb scale.
func Chr1Spec(sitesPerMb int, seed int64) ChromosomeSpec {
	return ScaledHumanGenome(sitesPerMb, seed)[0]
}

// Chr21Spec returns the scaled Chromosome 21 workload (the paper's
// smallest data set).
func Chr21Spec(sitesPerMb int, seed int64) ChromosomeSpec {
	return ScaledHumanGenome(sitesPerMb, seed)[20]
}

// Dataset bundles everything one chromosome's SNP-calling run consumes.
type Dataset struct {
	Spec     ChromosomeSpec
	Ref      *Reference
	Diploid  *Diploid
	Reads    []reads.AlignedRead
	Mask     []bool
	ReadSpec ReadSpec
}

// BuildDataset generates the reference, individual and reads for spec.
func BuildDataset(spec ChromosomeSpec) *Dataset {
	ref := GenerateReference(GenomeSpec{Name: spec.Name, Length: spec.Length, Seed: spec.Seed})
	dip := MakeDiploid(ref, DefaultDiploidSpec(spec.Seed+1))
	rspec := DefaultReadSpec(spec.Depth, spec.Seed+2)
	rspec.MaskFraction = spec.MaskFraction
	rs, mask := SampleReads(dip, rspec)
	return &Dataset{Spec: spec, Ref: ref, Diploid: dip, Reads: rs, Mask: mask, ReadSpec: rspec}
}

// Stats returns the Table II characteristics of the data set.
func (d *Dataset) Stats() reads.CoverageStats {
	return reads.Stats(d.Reads, len(d.Ref.Seq))
}
