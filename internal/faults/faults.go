// Package faults injects deterministic failures into a run — parse
// corruption, transient I/O errors, worker panics, artificial stalls — so
// the fault-tolerance machinery (window quarantine, task retry, deadlines,
// checkpoint/resume) can be exercised end to end without doctored input
// files. Everything fires on a fixed schedule derived from the spec; there
// is no global randomness, so two runs with the same spec and inputs fail
// identically.
//
// A spec is a comma-separated key=value list:
//
//	seed=1,corrupt-every=40,transient-every=25,transient-fails=2,panic-window=1,stall-window=3,stall=50ms
//
//	seed=N            offsets the record schedules (default 0)
//	corrupt-every=K   every Kth record of each stream becomes a parse
//	                  error (a pipeline.RecordError: skippable, permanent)
//	transient-every=K every Kth record raises a transient I/O error —
//	                  NOT record-scoped, so it aborts the task and the
//	                  scheduler's retry policy must recover it
//	transient-fails=N total transient errors per stream across reopens
//	                  and retries (default 1), so retries eventually pass
//	panic-window=W    the first task to reach window W panics (once per
//	                  injector, so a retried task passes)
//	stall-window=W    window W sleeps for the stall duration (once per
//	                  stream), tripping per-task deadlines
//	stall=D           the stall duration (default 1s)
//	stall-times=N     stalls per stream (default 1)
//	disk-fail-every=K every Kth durable-write operation routed through
//	                  DiskOp fails (gsnpd's job journal wires its
//	                  appends through it) — the disk-fault schedule is
//	                  injector-wide, counted across all operations
//	disk-fails=N      total disk faults across the schedule (default 1),
//	                  so a retried or subsequent operation succeeds
//
// One Injector serves a whole run; each chromosome (or input file) gets
// its own named Stream whose schedules are independent but identical.
package faults

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
)

// Config is the parsed spec.
type Config struct {
	Seed           uint64
	CorruptEvery   int
	TransientEvery int
	TransientFails int
	PanicWindow    int
	StallWindow    int
	Stall          time.Duration
	StallTimes     int
	DiskFailEvery  int
	DiskFails      int
}

// Parse parses a spec string. An empty spec yields a zero-valued injector
// that injects nothing.
func Parse(spec string) (*Injector, error) {
	cfg := Config{PanicWindow: -1, StallWindow: -1, TransientFails: 1,
		Stall: time.Second, StallTimes: 1, DiskFails: 1}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q: want key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "corrupt-every":
			cfg.CorruptEvery, err = strconv.Atoi(v)
		case "transient-every":
			cfg.TransientEvery, err = strconv.Atoi(v)
		case "transient-fails":
			cfg.TransientFails, err = strconv.Atoi(v)
		case "panic-window":
			cfg.PanicWindow, err = strconv.Atoi(v)
		case "stall-window":
			cfg.StallWindow, err = strconv.Atoi(v)
		case "stall":
			cfg.Stall, err = time.ParseDuration(v)
		case "stall-times":
			cfg.StallTimes, err = strconv.Atoi(v)
		case "disk-fail-every":
			cfg.DiskFailEvery, err = strconv.Atoi(v)
		case "disk-fails":
			cfg.DiskFails, err = strconv.Atoi(v)
		default:
			return nil, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: %s: %w", k, err)
		}
	}
	return New(cfg), nil
}

// New builds an injector from an explicit config.
func New(cfg Config) *Injector {
	inj := &Injector{cfg: cfg, streams: make(map[string]*Stream)}
	inj.diskLeft = int64(cfg.DiskFails)
	return inj
}

// Injector is the process-wide fault source. It is safe for concurrent use
// from the scheduler's worker pool.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	streams map[string]*Stream

	// panicFired makes panic-window a once-per-injector event: the first
	// task to reach the window panics, every later visit (including the
	// retried task) passes.
	panicFired atomic.Bool

	// diskOps counts DiskOp calls injector-wide; diskLeft is the fault
	// budget (disk-fails), decremented each time the schedule fires.
	diskOps  atomic.Int64
	diskLeft int64
}

// DiskError is an injected durable-write failure: gsnpd's job journal
// routes its appends through DiskOp so append-failure handling (fail the
// one job, keep serving) can be exercised deterministically.
type DiskError struct {
	Op string
	N  int64
}

func (e *DiskError) Error() string {
	return fmt.Sprintf("faults: injected disk error on %s (op %d)", e.Op, e.N)
}

// DiskOp is the durable-write injection point: callers invoke it before a
// write-and-sync operation, aborting on a non-nil error. With
// disk-fail-every=K, every Kth call injector-wide fails (offset by seed),
// subject to the disk-fails budget. The count is global rather than
// per-stream because journal appends are serialized process-wide — the
// schedule stays deterministic for a fixed submission order.
func (inj *Injector) DiskOp(op string) error {
	n := inj.diskOps.Add(1)
	if scheduled(n, inj.cfg.DiskFailEvery, inj.cfg.Seed) && takeBudget(&inj.diskLeft) {
		return &DiskError{Op: op, N: n}
	}
	return nil
}

// Config returns the injector's parsed configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Stream returns the named stream's fault state, creating it on first use.
// Stream state — the transient-error and stall budgets — persists across
// iterator reopens and task retries; the record schedules restart with
// each iterator, so corruption hits the same records on every pass.
func (inj *Injector) Stream(name string) *Stream {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	s, ok := inj.streams[name]
	if !ok {
		s = &Stream{inj: inj, name: name,
			transientLeft: int64(inj.cfg.TransientFails),
			stallsLeft:    int64(inj.cfg.StallTimes)}
		inj.streams[name] = s
	}
	return s
}

// Stream is one input stream's fault state.
type Stream struct {
	inj  *Injector
	name string

	transientLeft int64
	stallsLeft    int64
}

// takeBudget atomically decrements *n if positive, reporting whether a
// unit was taken.
func takeBudget(n *int64) bool {
	for {
		v := atomic.LoadInt64(n)
		if v <= 0 {
			return false
		}
		if atomic.CompareAndSwapInt64(n, v, v-1) {
			return true
		}
	}
}

// WrapIter injects record faults into one iterator pass. The schedule is
// positional: with corrupt-every=K and seed s, records K+s%K, 2K+s%K, ...
// (1-based) come back as CorruptError; likewise for transient-every,
// subject to the stream's remaining transient budget.
func (s *Stream) WrapIter(it pipeline.ReadIter) pipeline.ReadIter {
	return &faultIter{it: it, s: s}
}

// WrapSource wraps every iterator src opens with WrapIter.
func (s *Stream) WrapSource(src pipeline.Source) pipeline.Source {
	return pipeline.FuncSource(func() (pipeline.ReadIter, error) {
		it, err := src.Open()
		if err != nil {
			return nil, err
		}
		return s.WrapIter(it), nil
	})
}

// WindowHook is the engine-side injection point (Config.WindowHook on
// either engine): it stalls at stall-window and panics at panic-window.
func (s *Stream) WindowHook(ctx context.Context, window, start, end int) error {
	cfg := s.inj.cfg
	if window == cfg.StallWindow && takeBudget(&s.stallsLeft) {
		select {
		case <-time.After(cfg.Stall):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if window == cfg.PanicWindow && s.inj.panicFired.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("faults: injected panic at %s window %d [%d,%d)",
			s.name, window, start, end))
	}
	return nil
}

// scheduled reports whether 1-based record n fires an every-K schedule
// offset by seed.
func scheduled(n int64, every int, seed uint64) bool {
	if every <= 0 {
		return false
	}
	k := int64(every)
	off := int64(seed) % k
	return n%k == off && n > off
}

// CorruptError is an injected parse error. It implements
// pipeline.RecordError, so quarantine-mode runs skip the record (and
// quarantine the window it lands in during the windowed pass) while
// strict runs abort.
type CorruptError struct {
	Stream string
	Line   int
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("faults: injected corrupt record at %s line %d", e.Stream, e.Line)
}

// Record implements pipeline.RecordError.
func (e *CorruptError) Record() (line int, offset int64) { return e.Line, -1 }

// TransientError is an injected transient I/O failure. It is deliberately
// NOT record-scoped: quarantine cannot contain it, so it aborts the task
// and only the scheduler's retry policy recovers it.
type TransientError struct {
	Stream string
	Line   int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faults: injected transient I/O error at %s line %d", e.Stream, e.Line)
}

// faultIter applies the record schedules to one iterator pass.
type faultIter struct {
	it pipeline.ReadIter
	s  *Stream
	n  int64
}

func (f *faultIter) Next() (reads.AlignedRead, error) {
	r, err := f.it.Next()
	if err != nil {
		return r, err
	}
	f.n++
	cfg := f.s.inj.cfg
	if scheduled(f.n, cfg.TransientEvery, cfg.Seed) && takeBudget(&f.s.transientLeft) {
		return reads.AlignedRead{}, &TransientError{Stream: f.s.name, Line: int(f.n)}
	}
	if scheduled(f.n, cfg.CorruptEvery, cfg.Seed) {
		return reads.AlignedRead{}, &CorruptError{Stream: f.s.name, Line: int(f.n)}
	}
	return r, nil
}
