package faults

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
)

// sliceIter yields n synthetic reads then EOF.
type sliceIter struct{ i, n int }

func (s *sliceIter) Next() (reads.AlignedRead, error) {
	if s.i >= s.n {
		return reads.AlignedRead{}, io.EOF
	}
	s.i++
	return reads.AlignedRead{Pos: s.i}, nil
}

// drain pulls the whole iterator, returning delivered positions and the
// errors encountered (EOF excluded).
func drain(t *testing.T, it pipeline.ReadIter) (got []int, errs []error) {
	t.Helper()
	for {
		r, err := it.Next()
		if err == io.EOF {
			return got, errs
		}
		if err != nil {
			errs = append(errs, err)
			continue
		}
		got = append(got, r.Pos)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"corrupt-every", "bogus=1", "stall=fast", "corrupt-every=x"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error", spec)
		}
	}
}

func TestCorruptScheduleIsPositionalAndRepeatable(t *testing.T) {
	inj, err := Parse("corrupt-every=3")
	if err != nil {
		t.Fatal(err)
	}
	s := inj.Stream("chr1")
	for pass := 0; pass < 2; pass++ {
		got, errs := drain(t, s.WrapIter(&sliceIter{n: 10}))
		if want := []int{1, 2, 4, 5, 7, 8, 10}; len(got) != len(want) {
			t.Fatalf("pass %d: delivered %v, want %v", pass, got, want)
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pass %d: delivered %v, want %v", pass, got, want)
				}
			}
		}
		if len(errs) != 3 {
			t.Fatalf("pass %d: %d errors, want 3", pass, len(errs))
		}
		var ce *CorruptError
		if !errors.As(errs[0], &ce) || ce.Line != 3 {
			t.Fatalf("pass %d: first error %v, want CorruptError at line 3", pass, errs[0])
		}
		var re pipeline.RecordError
		if !errors.As(errs[0], &re) {
			t.Fatalf("CorruptError must implement pipeline.RecordError")
		}
	}
}

func TestSeedOffsetsSchedule(t *testing.T) {
	inj, _ := Parse("corrupt-every=4,seed=1")
	_, errs := drain(t, inj.Stream("x").WrapIter(&sliceIter{n: 10}))
	var ce *CorruptError
	if len(errs) != 2 || !errors.As(errs[0], &ce) || ce.Line != 5 {
		t.Fatalf("seed=1: errs=%v, want corrupt at lines 5,9", errs)
	}
}

func TestTransientBudgetPersistsAcrossPasses(t *testing.T) {
	inj, _ := Parse("transient-every=5,transient-fails=2")
	s := inj.Stream("chr1")
	for pass := 0; pass < 2; pass++ {
		_, errs := drain(t, s.WrapIter(&sliceIter{n: 9}))
		if len(errs) != 1 {
			t.Fatalf("pass %d: %d errors, want 1", pass, len(errs))
		}
		var te *TransientError
		if !errors.As(errs[0], &te) || te.Line != 5 {
			t.Fatalf("pass %d: %v, want TransientError at line 5", pass, errs[0])
		}
		var re pipeline.RecordError
		if errors.As(errs[0], &re) {
			t.Fatal("TransientError must NOT be record-scoped")
		}
		if pipeline.Containable(errs[0]) {
			t.Fatal("TransientError must not be containable")
		}
	}
	// Budget exhausted: the third pass is clean.
	got, errs := drain(t, s.WrapIter(&sliceIter{n: 9}))
	if len(errs) != 0 || len(got) != 9 {
		t.Fatalf("third pass: %d records, errs=%v; want 9 clean records", len(got), errs)
	}
	// Budgets are per stream.
	if _, errs := drain(t, inj.Stream("chr2").WrapIter(&sliceIter{n: 9})); len(errs) != 1 {
		t.Fatalf("fresh stream: %d errors, want 1", len(errs))
	}
}

func TestPanicWindowFiresOncePerInjector(t *testing.T) {
	inj, _ := Parse("panic-window=2")
	s := inj.Stream("chr1")
	ctx := context.Background()
	if err := s.WindowHook(ctx, 1, 4000, 8000); err != nil {
		t.Fatalf("window 1: %v", err)
	}
	panicked := func() (v any) {
		defer func() { v = recover() }()
		s.WindowHook(ctx, 2, 8000, 12000)
		return nil
	}()
	if panicked == nil {
		t.Fatal("window 2: want panic")
	}
	// Retry (any stream) passes: the panic is once per injector.
	if err := inj.Stream("chr1").WindowHook(ctx, 2, 8000, 12000); err != nil {
		t.Fatalf("retried window 2: %v", err)
	}
	if err := inj.Stream("chr2").WindowHook(ctx, 2, 8000, 12000); err != nil {
		t.Fatalf("other stream window 2: %v", err)
	}
}

func TestStallRespectsContextAndBudget(t *testing.T) {
	inj, _ := Parse("stall-window=0,stall=10s")
	s := inj.Stream("chr1")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.WindowHook(ctx, 0, 0, 4000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall under deadline: err=%v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall ignored the context")
	}
	// Budget spent: second visit does not stall.
	if err := s.WindowHook(context.Background(), 0, 0, 4000); err != nil {
		t.Fatalf("second visit: %v", err)
	}
}

func TestEmptySpecInjectsNothing(t *testing.T) {
	inj, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	s := inj.Stream("chr1")
	got, errs := drain(t, s.WrapIter(&sliceIter{n: 50}))
	if len(errs) != 0 || len(got) != 50 {
		t.Fatalf("empty spec: %d records, errs=%v", len(got), errs)
	}
	if err := s.WindowHook(context.Background(), 0, 0, 4000); err != nil {
		t.Fatal(err)
	}
}

// TestDiskOpScheduleAndBudget pins the disk-fault dimension: with
// disk-fail-every=3 and a budget of 2, exactly operations 3 and 6 fail
// (typed, carrying the op name), every later operation passes, and an
// empty spec never fires.
func TestDiskOpScheduleAndBudget(t *testing.T) {
	inj, err := Parse("disk-fail-every=3,disk-fails=2")
	if err != nil {
		t.Fatal(err)
	}
	var failed []int64
	for i := 1; i <= 12; i++ {
		if err := inj.DiskOp("append"); err != nil {
			var de *DiskError
			if !errors.As(err, &de) {
				t.Fatalf("op %d: error %v is not a *DiskError", i, err)
			}
			if de.Op != "append" || de.N != int64(i) {
				t.Fatalf("op %d: DiskError %+v", i, de)
			}
			failed = append(failed, de.N)
		}
	}
	if len(failed) != 2 || failed[0] != 3 || failed[1] != 6 {
		t.Fatalf("failed ops %v, want [3 6] (every 3rd, budget 2)", failed)
	}

	// The count is injector-wide across op names — one schedule, as the
	// journal's append/rotate mix requires.
	inj2, _ := Parse("disk-fail-every=2,disk-fails=1")
	if err := inj2.DiskOp("rotate"); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := inj2.DiskOp("append"); err == nil {
		t.Fatal("op 2 passed; want the every-2 schedule to fire across op names")
	}

	// No spec, no faults.
	quiet := New(Config{})
	for i := 0; i < 10; i++ {
		if err := quiet.DiskOp("append"); err != nil {
			t.Fatalf("zero-valued injector fired: %v", err)
		}
	}
}
