// Package reads defines the aligned short-read record shared by the read
// simulator, the aligner, the I/O formats and both SNP-calling pipelines.
package reads

import (
	"fmt"
	"sort"

	"gsnp/internal/dna"
)

// AlignedRead is a read placed on the reference, the unit of the
// SOAP-format alignment input. Bases and quality scores are stored in
// reference orientation; Strand records which strand was sequenced, and the
// sequencing cycle of reference-offset i is i on the forward strand and
// len-1-i on the reverse strand.
type AlignedRead struct {
	// ID is the read identifier.
	ID int64
	// Pos is the zero-based leftmost reference position.
	Pos int
	// Strand is 0 for forward, 1 for reverse.
	Strand uint8
	// Hits is the number of equally good alignment positions; 1 = unique.
	Hits uint8
	// Bases holds the read bases in reference orientation.
	Bases dna.Sequence
	// Quals holds the per-base quality scores, aligned with Bases.
	Quals []dna.Quality
}

// Cycle returns the sequencing cycle (coordinate on the read as sequenced)
// of reference-offset i.
func (r *AlignedRead) Cycle(i int) int {
	if r.Strand == 1 {
		return len(r.Bases) - 1 - i
	}
	return i
}

// SortByPos sorts by position, tie-broken on ID for determinism — the
// order the SNP-calling input file requires.
func SortByPos(rs []AlignedRead) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Pos != rs[j].Pos {
			return rs[i].Pos < rs[j].Pos
		}
		return rs[i].ID < rs[j].ID
	})
}

// CoverageStats summarises a read set the way the paper's Table II does.
type CoverageStats struct {
	Sites    int
	Reads    int
	Depth    float64
	Coverage float64
}

// Stats computes the Table II characteristics of reads over a reference of
// n sites.
func Stats(rs []AlignedRead, n int) CoverageStats {
	covered := make([]bool, n)
	var bases int64
	for i := range rs {
		r := &rs[i]
		bases += int64(len(r.Bases))
		for j := range r.Bases {
			if p := r.Pos + j; p >= 0 && p < n {
				covered[p] = true
			}
		}
	}
	nc := 0
	for _, c := range covered {
		if c {
			nc++
		}
	}
	return CoverageStats{
		Sites:    n,
		Reads:    len(rs),
		Depth:    float64(bases) / float64(n),
		Coverage: float64(nc) / float64(n),
	}
}

func (s CoverageStats) String() string {
	return fmt.Sprintf("sites=%d reads=%d depth=%.1fX coverage=%.0f%%", s.Sites, s.Reads, s.Depth, 100*s.Coverage)
}
