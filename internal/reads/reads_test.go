package reads

import (
	"testing"

	"gsnp/internal/dna"
)

func TestCycle(t *testing.T) {
	r := AlignedRead{Strand: 0, Bases: make(dna.Sequence, 10)}
	for i := 0; i < 10; i++ {
		if r.Cycle(i) != i {
			t.Fatalf("forward Cycle(%d) = %d", i, r.Cycle(i))
		}
	}
	r.Strand = 1
	for i := 0; i < 10; i++ {
		if r.Cycle(i) != 9-i {
			t.Fatalf("reverse Cycle(%d) = %d", i, r.Cycle(i))
		}
	}
}

func TestSortByPos(t *testing.T) {
	rs := []AlignedRead{
		{ID: 2, Pos: 50},
		{ID: 1, Pos: 10},
		{ID: 4, Pos: 10},
		{ID: 3, Pos: 5},
	}
	SortByPos(rs)
	wantIDs := []int64{3, 1, 4, 2}
	for i, w := range wantIDs {
		if rs[i].ID != w {
			t.Fatalf("order[%d] = id %d, want %d", i, rs[i].ID, w)
		}
	}
}

func TestStats(t *testing.T) {
	rs := []AlignedRead{
		{Pos: 0, Bases: make(dna.Sequence, 10)},
		{Pos: 5, Bases: make(dna.Sequence, 10)},
	}
	st := Stats(rs, 20)
	if st.Reads != 2 || st.Sites != 20 {
		t.Errorf("reads/sites = %d/%d", st.Reads, st.Sites)
	}
	if st.Depth != 1.0 {
		t.Errorf("depth = %v, want 1.0", st.Depth)
	}
	if st.Coverage != 0.75 { // sites 0..14 covered of 20
		t.Errorf("coverage = %v, want 0.75", st.Coverage)
	}
	if st.String() == "" {
		t.Error("String empty")
	}
}

func TestStatsClipsOutOfRange(t *testing.T) {
	rs := []AlignedRead{{Pos: 18, Bases: make(dna.Sequence, 10)}}
	st := Stats(rs, 20)
	if st.Coverage != 0.1 {
		t.Errorf("coverage = %v, want 0.1", st.Coverage)
	}
}
