package harness

import (
	"strconv"
	"strings"
	"testing"

	"gsnp/internal/gsnp"
)

// tinyScale keeps unit tests fast; the dense baseline is the limiting
// factor.
func tinyScale() Scale { return Scale{SitesPerMb: 25, Seed: 7} }

func TestIDsCoverEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig4a", "fig4b", "fig5", "fig6", "fig7a", "fig7b",
		"fig8", "fig9", "fig10a", "fig10b", "fig11", "fig12",
		"ext-threads", "ext-accuracy", "ext-consistency", "ext-device",
		"ext-parallel",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := NewSession(tinyScale())
	if _, err := s.Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSessionCaching(t *testing.T) {
	s := NewSession(tinyScale())
	a := s.Dataset("chr21")
	b := s.Dataset("chr21")
	if a != b {
		t.Error("dataset not cached")
	}
	r1, o1 := s.RunSOAPsnp("chr21")
	r2, o2 := s.RunSOAPsnp("chr21")
	if r1 != r2 || &o1[0] != &o2[0] {
		t.Error("soapsnp run not cached")
	}
}

func TestNewSessionDefaults(t *testing.T) {
	s := NewSession(Scale{})
	if s.Scale.SitesPerMb != DefaultScale().SitesPerMb {
		t.Error("zero scale not defaulted")
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{
		ID: "x", Title: "demo",
		Headers: []string{"a", "bb"},
	}
	r.AddRow("1", "2")
	r.Notef("n=%d", 5)
	out := r.Format()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestEveryExperimentRuns executes the full suite at tiny scale and sanity
// checks the structure of each result.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	s := NewSession(tinyScale())
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := s.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id || res.Title == "" {
				t.Errorf("metadata missing: %+v", res)
			}
			if len(res.Rows) == 0 {
				t.Error("no rows")
			}
			for _, row := range res.Rows {
				if len(row) != len(res.Headers) {
					t.Errorf("row width %d != header width %d: %v", len(row), len(res.Headers), row)
				}
			}
			if res.Format() == "" {
				t.Error("empty rendering")
			}
		})
	}
}

// TestShapeTable4Speedups asserts the headline shape: GSNP's likelihood
// and recycle components collapse relative to the dense baseline.
func TestShapeTable4Speedups(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks in -short mode")
	}
	s := NewSession(tinyScale())
	base, _ := s.RunSOAPsnp("chr21")
	ds := s.Dataset("chr21")
	rep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Compress: true})

	likeliSpeedup := base.Times.Likeli.Seconds() / rep.Times.Likeli().Seconds()
	if likeliSpeedup < 10 {
		t.Errorf("likelihood speedup = %.1fx, want >> 10x (paper: 231x)", likeliSpeedup)
	}
	recycleSpeedup := base.Times.Recycle.Seconds() / rep.Times.Recycle.Seconds()
	if recycleSpeedup < 10 {
		t.Errorf("recycle speedup = %.1fx, want >> 10x (paper: 1603x)", recycleSpeedup)
	}
	total := base.Times.Total().Seconds() / rep.Times.Total().Seconds()
	if total < 2 {
		t.Errorf("total speedup = %.1fx, want > 2x (paper: 50x)", total)
	}
	t.Logf("likeli %.0fx, recycle %.0fx, total %.0fx", likeliSpeedup, recycleSpeedup, total)
}

// TestShapeFig5 asserts the representation ordering of Figure 5.
func TestShapeFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks in -short mode")
	}
	s := NewSession(tinyScale())
	base, _ := s.RunSOAPsnp("chr21")
	ds := s.Dataset("chr21")
	cpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU})
	gpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU})
	dense := s.denseGPUSeconds(ds)

	soap := base.Times.Likeli.Seconds()
	sparseCPU := cpuRep.Times.Likeli().Seconds()
	sparseGPU := gpuRep.Times.Likeli().Seconds()
	if !(sparseCPU < soap) {
		t.Errorf("sparse CPU (%.3fs) not faster than dense CPU (%.3fs)", sparseCPU, soap)
	}
	if !(sparseGPU < sparseCPU) {
		t.Errorf("sparse GPU (%.3fs) not faster than sparse CPU (%.3fs)", sparseGPU, sparseCPU)
	}
	if !(dense > sparseGPU*5) {
		t.Errorf("GPU dense (%.3fs) not >> GPU sparse (%.3fs); paper: 14-17x", dense, sparseGPU)
	}
	t.Logf("soap=%.3fs gpuDense=%.3fs sparseCPU=%.3fs sparseGPU=%.4fs", soap, dense, sparseCPU, sparseGPU)
}

func TestMeasureCPUBandwidth(t *testing.T) {
	bw := MeasureCPUBandwidth()
	if bw < 1e8 || bw > 1e12 {
		t.Errorf("implausible bandwidth %v B/s", bw)
	}
}

func TestHelpers(t *testing.T) {
	if ratio(10, 0) != "inf" {
		t.Error("ratio by zero")
	}
	if ratio(10, 5) != "2.0x" {
		t.Errorf("ratio = %s", ratio(10, 5))
	}
	for _, v := range []float64{0.001, 5, 500} {
		out := seconds(durationSec(v))
		if _, err := strconv.ParseFloat(out, 64); err != nil {
			t.Errorf("seconds(%v) = %q not numeric", v, out)
		}
	}
	if mb(1<<20) != "1.0 MB" {
		t.Errorf("mb = %s", mb(1<<20))
	}
}
