package harness

import (
	"fmt"
	"strings"
)

// Result is one reproduced table or figure: rows of cells plus notes
// comparing the measured shape with the paper's published numbers.
type Result struct {
	// ID is the experiment identifier, e.g. "table1" or "fig7a".
	ID string
	// Title describes the experiment.
	Title string
	// Headers and Rows hold the rendered table.
	Headers []string
	Rows    [][]string
	// Notes records shape observations and paper comparisons.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders the result as aligned text.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)

	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
