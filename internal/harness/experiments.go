package harness

import (
	"fmt"
	"sort"

	"gsnp/internal/gsnp"
	"gsnp/internal/soapsnp"
)

// experiment is one reproducible table or figure.
type experiment struct {
	id, title string
	run       func(*Session) *Result
}

// experiments lists every reproduced table and figure in paper order.
var experiments = []experiment{
	{"table1", "SOAPsnp time breakdown by component (paper Table I)", (*Session).Table1},
	{"table2", "Data set characteristics (paper Table II)", (*Session).Table2},
	{"table3", "Hardware counters for likelihood_comp (paper Table III)", (*Session).Table3},
	{"table4", "GSNP time breakdown and speedup vs SOAPsnp (paper Table IV)", (*Session).Table4},
	{"fig4a", "Estimated base_occ access time vs measured component time (paper Fig. 4a)", (*Session).Fig4a},
	{"fig4b", "Sparsity of base_occ: sites by non-zero count (paper Fig. 4b)", (*Session).Fig4b},
	{"fig5", "Likelihood time across representations and processors (paper Fig. 5)", (*Session).Fig5},
	{"fig6", "likelihood_sort vs likelihood_comp, GPU vs CPU (paper Fig. 6)", (*Session).Fig6},
	{"fig7a", "Batch sort throughput by implementation (paper Fig. 7a)", (*Session).Fig7a},
	{"fig7b", "Multipass vs single-pass vs non-equal bitonic (paper Fig. 7b)", (*Session).Fig7b},
	{"fig8", "likelihood_comp kernel optimizations (paper Fig. 8)", (*Session).Fig8},
	{"fig9", "Output size and output speed (paper Fig. 9)", (*Session).Fig9},
	{"fig10a", "Decompression (sequential read) speed (paper Fig. 10a)", (*Session).Fig10a},
	{"fig10b", "Compressed temporary input size (paper Fig. 10b)", (*Session).Fig10b},
	{"fig11", "Time and memory vs window size (paper Fig. 11)", (*Session).Fig11},
	{"fig12", "End-to-end comparison over all 24 chromosomes (paper Fig. 12)", (*Session).Fig12},
	{"ext-threads", "EXTENSION: multi-threaded SOAPsnp scaling (Section VI-A remark)", (*Session).ExtThreads},
	{"ext-accuracy", "EXTENSION: calling accuracy vs sequencing depth (ground truth)", (*Session).ExtAccuracy},
	{"ext-consistency", "EXTENSION: byte-identity of every engine (Section IV-G)", (*Session).ExtConsistency},
	{"ext-device", "EXTENSION: device-configuration sensitivity of the likelihood component", (*Session).ExtDevice},
	{"ext-parallel", "EXTENSION: concurrent chromosome scheduling with byte-identical outputs", (*Session).ExtParallel},
}

// IDs returns the experiment identifiers in paper order.
func IDs() []string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	return ids
}

// Run executes one experiment by id.
func (s *Session) Run(id string) (*Result, error) {
	for _, e := range experiments {
		if e.id == id {
			r := e.run(s)
			r.ID = e.id
			r.Title = e.title
			return r, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, IDs())
}

// Table1 reproduces Table I: the per-component breakdown of the dense
// SOAPsnp baseline on chr1 and chr21.
func (s *Session) Table1() *Result {
	r := &Result{Headers: []string{"dataset", "cal_p", "read", "count", "likeli", "post", "output", "recycle", "total"}}
	for _, name := range []string{"chr1", "chr21"} {
		rep, _ := s.RunSOAPsnp(name)
		tm := rep.Times
		r.AddRow(name, seconds(tm.CalP), seconds(tm.Read), seconds(tm.Count), seconds(tm.Likeli),
			seconds(tm.Post), seconds(tm.Output), seconds(tm.Recycle), seconds(tm.Total()))

		share := tm.Likeli.Seconds() / tm.Total().Seconds()
		r.Notef("%s: likelihood is %.0f%% of total (paper: ~56%%); recycle ranks %s (paper: 2nd)",
			name, share*100, componentRank(rep, "recycle"))
		p := PaperTable1[name]
		r.Notef("%s: paper reported likeli=%.0fs recycle=%.0fs total=%.0fs on the full-size data",
			name, p["likeli"], p["recycle"], p["total"])
	}
	return r
}

// componentRank reports the rank of a component within the run's
// non-cal_p components.
func componentRank(rep *soapsnp.Report, comp string) string {
	vals := map[string]float64{
		"read": rep.Times.Read.Seconds(), "count": rep.Times.Count.Seconds(),
		"likeli": rep.Times.Likeli.Seconds(), "post": rep.Times.Post.Seconds(),
		"output": rep.Times.Output.Seconds(), "recycle": rep.Times.Recycle.Seconds(),
	}
	type kv struct {
		k string
		v float64
	}
	var list []kv
	for k, v := range vals {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	for i, e := range list {
		if e.k == comp {
			return fmt.Sprintf("#%d", i+1)
		}
	}
	return "?"
}

// Table2 reproduces Table II: the data set characteristics.
func (s *Session) Table2() *Result {
	r := &Result{Headers: []string{"dataset", "#sites", "seq.dep", "#reads", "coverage", "input", "output"}}
	for _, name := range []string{"chr1", "chr21"} {
		ds := s.Dataset(name)
		st := ds.Stats()
		inBytes := soapInputSize(ds)
		_, out := s.RunSOAPsnp(name)
		r.AddRow(name,
			fmt.Sprintf("%d", st.Sites),
			fmt.Sprintf("%.1fX", st.Depth),
			fmt.Sprintf("%d", st.Reads),
			fmt.Sprintf("%.0f%%", 100*st.Coverage),
			mb(inBytes), mb(int64(len(out))))
	}
	r.Notef("paper (full size): chr1 = 247M sites, 11X, 44M reads, 88%%, 12 GB in / 17 GB out; chr21 = 47M sites, 9.6X, 6M reads, 68%%, 2 GB / 3 GB")
	r.Notef("scaled at %d sites/Mb; depth, coverage and the output>input relationship carry over", s.Scale.SitesPerMb)
	return r
}

// mb renders a byte count in MB.
func mb(n int64) string {
	return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
}

// Table3 reproduces Table III: simulated hardware counters of the four
// likelihood_comp kernel variants on chr1.
func (s *Session) Table3() *Result {
	r := &Result{Headers: []string{"counter", "baseline", "w/ shared", "w/ new table", "optimized"}}
	ds := s.Dataset("chr1")
	variants := []gsnp.Variant{gsnp.VariantBaseline, gsnp.VariantShared, gsnp.VariantNewTable, gsnp.VariantOptimized}
	type row struct{ inst, gld, gst, sld, sst float64 }
	got := make([]row, len(variants))
	for i, v := range variants {
		rep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Variant: v})
		st := rep.LikeliStats
		got[i] = row{
			inst: st.InstPerWarp(32),
			gld:  float64(st.GlobalLoads),
			gst:  float64(st.GlobalStores),
		}
		got[i].sld, got[i].sst = st.SharedPerWarp(32)
	}
	fmtRow := func(name string, f func(row) float64) {
		cells := []string{name}
		for _, g := range got {
			cells = append(cells, fmt.Sprintf("%.2e", f(g)))
		}
		r.AddRow(cells...)
	}
	fmtRow("#inst. PW", func(g row) float64 { return g.inst })
	fmtRow("#g_load", func(g row) float64 { return g.gld })
	fmtRow("#g_store", func(g row) float64 { return g.gst })
	fmtRow("#s_load PW", func(g row) float64 { return g.sld })
	fmtRow("#s_store PW", func(g row) float64 { return g.sst })

	b, o := got[0], got[3]
	r.Notef("optimized/baseline: inst %.0f%% (paper ~70%%), global accesses %.0f%% (paper ~51%%)",
		100*o.inst/b.inst, 100*(o.gld+o.gst)/(b.gld+b.gst))
	sh := got[1]
	r.Notef("w/ shared reduces g_load to %.0f%% and g_store to %.0f%% of baseline (paper: ~70%% and ~68%%)",
		100*sh.gld/b.gld, 100*sh.gst/b.gst)
	nt := got[2]
	r.Notef("w/ new table reduces inst to %.0f%% and g_load to %.0f%% of baseline (paper: ~73%% and ~64%%)",
		100*nt.inst/b.inst, 100*nt.gld/b.gld)
	return r
}

// Table4 reproduces Table IV: GSNP's per-component times with speedups
// over the SOAPsnp baseline.
func (s *Session) Table4() *Result {
	r := &Result{Headers: []string{"dataset", "cal_p", "read", "count", "likeli", "post", "output", "recycle", "total"}}
	for _, name := range []string{"chr1", "chr21"} {
		base, _ := s.RunSOAPsnp(name)
		ds := s.Dataset(name)
		rep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Compress: true})
		tm := rep.Times
		bt := base.Times
		cell := func(g, b float64) string {
			if b > 0 && g > 0 {
				return fmt.Sprintf("%s(%.0f)", seconds(durationSec(g)), b/g)
			}
			return seconds(durationSec(g))
		}
		r.AddRow(name,
			seconds(tm.CalP),
			cell(tm.Read.Seconds(), bt.Read.Seconds()),
			cell(tm.Count.Seconds(), bt.Count.Seconds()),
			cell(tm.Likeli().Seconds(), bt.Likeli.Seconds()),
			cell(tm.Post.Seconds(), bt.Post.Seconds()),
			cell(tm.Output.Seconds(), bt.Output.Seconds()),
			cell(tm.Recycle.Seconds(), bt.Recycle.Seconds()),
			cell(tm.Total().Seconds(), bt.Total().Seconds()))
		r.Notef("%s: total speedup %.0fx (paper: %.0fx); likelihood %.0fx (paper: %.0fx); recycle %.0fx (paper: %.0fx)",
			name,
			bt.Total().Seconds()/tm.Total().Seconds(), PaperTable4Speedups[name]["total"],
			bt.Likeli.Seconds()/tm.Likeli().Seconds(), PaperTable4Speedups[name]["likeli"],
			bt.Recycle.Seconds()/tm.Recycle.Seconds(), PaperTable4Speedups[name]["recycle"])
	}
	r.Notef("cells show seconds(speedup vs SOAPsnp); GPU components are simulated device time")
	return r
}
