// Package harness drives the reproduction of every table and figure of the
// paper's evaluation (Section VI). Each experiment builds its scaled
// workload, runs the relevant engines and renders the same rows or series
// the paper reports, with notes comparing the measured shape against the
// published numbers.
//
// Data sets are scaled-down versions of the paper's 24-chromosome human
// genome (Section VI-A); scale is expressed in simulated sites per real
// megabase, so chr1 keeps its 247:47 size ratio to chr21. GPU work runs on
// the simulator: GPU times are simulated device seconds, CPU times are
// host wall-clock, and absolute magnitudes are therefore not comparable to
// the paper's testbed — the reproduced quantity is the shape (who wins,
// by roughly what factor, where crossovers fall).
package harness

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
	"gsnp/internal/soapsnp"
)

// Scale controls workload sizes.
type Scale struct {
	// SitesPerMb converts real chromosome megabases to simulated sites:
	// chr1 gets 247*SitesPerMb sites.
	SitesPerMb int
	// Seed drives all data generation.
	Seed int64
}

// DefaultScale is sized so the slowest experiment (the dense SOAPsnp
// baseline on chr1) completes in tens of seconds on a development machine.
func DefaultScale() Scale { return Scale{SitesPerMb: 250, Seed: 20110607} }

// QuickScale is for smoke tests and benchmarks.
func QuickScale() Scale { return Scale{SitesPerMb: 60, Seed: 20110607} }

// Session caches datasets and baseline runs across the experiments of one
// invocation, since several figures reuse the chr1/chr21 workloads.
type Session struct {
	Scale Scale

	mu       sync.Mutex
	datasets map[string]*seqsim.Dataset
	soapRuns map[string]*soapRun
}

// soapRun caches a SOAPsnp execution.
type soapRun struct {
	report *soapsnp.Report
	output []byte
}

// NewSession creates a session at the given scale.
func NewSession(sc Scale) *Session {
	if sc.SitesPerMb <= 0 {
		sc = DefaultScale()
	}
	return &Session{
		Scale:    sc,
		datasets: map[string]*seqsim.Dataset{},
		soapRuns: map[string]*soapRun{},
	}
}

// Dataset builds (or returns the cached) chromosome workload. Valid names
// are "chr1".."chr22", "chrX", "chrY".
func (s *Session) Dataset(name string) *seqsim.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds, ok := s.datasets[name]; ok {
		return ds
	}
	for _, spec := range seqsim.ScaledHumanGenome(s.Scale.SitesPerMb, s.Scale.Seed) {
		if spec.Name == name {
			ds := seqsim.BuildDataset(spec)
			s.datasets[name] = ds
			return ds
		}
	}
	panic(fmt.Sprintf("harness: unknown chromosome %q", name))
}

// datasetAt builds a chromosome at a non-session scale (uncached).
func (s *Session) datasetAt(name string, sitesPerMb int) *seqsim.Dataset {
	for _, spec := range seqsim.ScaledHumanGenome(sitesPerMb, s.Scale.Seed) {
		if spec.Name == name {
			return seqsim.BuildDataset(spec)
		}
	}
	panic(fmt.Sprintf("harness: unknown chromosome %q", name))
}

// KnownSNPs derives the prior-file records of a dataset.
func KnownSNPs(ds *seqsim.Dataset) snpio.KnownSNPs {
	known := snpio.KnownSNPs{}
	for _, v := range ds.Diploid.Variants {
		if !v.Known {
			continue
		}
		a1, a2 := v.Genotype.Alleles()
		rec := &bayes.KnownSNP{Validated: true}
		rec.Freq[a1] += 0.5
		rec.Freq[a2] += 0.5
		known[v.Pos] = rec
	}
	return known
}

// RunSOAPsnp executes (or returns the cached) dense baseline for a
// dataset.
func (s *Session) RunSOAPsnp(name string) (*soapsnp.Report, []byte) {
	s.mu.Lock()
	if r, ok := s.soapRuns[name]; ok {
		s.mu.Unlock()
		return r.report, r.output
	}
	s.mu.Unlock()

	ds := s.Dataset(name)
	eng := soapsnp.New(soapsnp.Config{
		Chr:   ds.Spec.Name,
		Ref:   ds.Ref.Seq,
		Known: KnownSNPs(ds),
	})
	var buf bytes.Buffer
	rep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
	if err != nil {
		panic(fmt.Sprintf("harness: soapsnp run failed: %v", err))
	}
	s.mu.Lock()
	s.soapRuns[name] = &soapRun{report: rep, output: buf.Bytes()}
	s.mu.Unlock()
	return rep, buf.Bytes()
}

// GSNPOptions tweaks a GSNP run.
type GSNPOptions struct {
	Mode     gsnp.Mode
	Variant  gsnp.Variant
	Sort     gsnp.SortMethod
	Window   int
	Compress bool
	Device   *gpu.Device
	// Prefetch enables double-buffered window read I/O.
	Prefetch bool
	// SortWorkers sets the CPU-mode likelihood_sort worker count. Zero
	// pins 1 — the paper's single-threaded GSNP_CPU configuration — so
	// the Figure 5/6, Table IV and Figure 12 comparisons keep their
	// shape; pass an explicit count to opt into host parallelism.
	SortWorkers int
	// ComputeWorkers sets the CPU-mode likelihood_comp/posterior worker
	// count, pinned to 1 on zero for the same reason as SortWorkers.
	ComputeWorkers int
}

// RunGSNP executes a GSNP run over a dataset.
func (s *Session) RunGSNP(ds *seqsim.Dataset, opts GSNPOptions) (*gsnp.Report, []byte) {
	dev := opts.Device
	if opts.Mode == gsnp.ModeGPU && dev == nil {
		dev = gpu.NewDevice(gpu.M2050())
	}
	sortWorkers := opts.SortWorkers
	if sortWorkers == 0 {
		sortWorkers = 1
	}
	computeWorkers := opts.ComputeWorkers
	if computeWorkers == 0 {
		computeWorkers = 1
	}
	eng, err := gsnp.New(gsnp.Config{
		Chr:            ds.Spec.Name,
		Ref:            ds.Ref.Seq,
		Known:          KnownSNPs(ds),
		Window:         opts.Window,
		Mode:           opts.Mode,
		Device:         dev,
		Variant:        opts.Variant,
		Sort:           opts.Sort,
		CompressOutput: opts.Compress,
		Prefetch:       opts.Prefetch,
		SortWorkers:    sortWorkers,
		ComputeWorkers: computeWorkers,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: gsnp config: %v", err))
	}
	var buf bytes.Buffer
	rep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
	if err != nil {
		panic(fmt.Sprintf("harness: gsnp run failed: %v", err))
	}
	return rep, buf.Bytes()
}

// MeasureCPUBandwidth estimates the host's sequential memory read
// bandwidth in bytes/second (the B_cpu of Formula 1), by streaming over a
// buffer several times larger than the last-level cache.
func MeasureCPUBandwidth() float64 {
	const size = 256 << 20
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	var sum uint64
	start := time.Now()
	const passes = 4
	for p := 0; p < passes; p++ {
		for i := 0; i < size; i += 8 {
			sum += uint64(buf[i]) + uint64(buf[i+7])
		}
	}
	elapsed := time.Since(start).Seconds()
	if sum == 42 {
		fmt.Print("") // defeat dead-code elimination
	}
	return float64(size*passes) / elapsed
}

// seconds renders a duration in seconds with sensible precision.
func seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}

// ratio renders a speedup factor.
func ratio(num, den float64) string {
	if den == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", num/den)
}
