package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/compress"
	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
	"gsnp/internal/soapsnp"
	"gsnp/internal/sortnet"
)

// durationSec converts float seconds to a Duration.
func durationSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// soapsnpEngine builds a baseline engine for a dataset.
func soapsnpEngine(ds *seqsim.Dataset, known snpio.KnownSNPs) *soapsnp.Engine {
	return soapsnp.New(soapsnp.Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: known})
}

// soapInputSize measures the SOAP alignment text size of a dataset.
func soapInputSize(ds *seqsim.Dataset) int64 {
	cw := &countWriter{}
	if err := snpio.WriteSOAP(cw, ds.Spec.Name, ds.Reads); err != nil {
		panic(err)
	}
	return cw.n
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Fig4a reproduces Figure 4(a): the Formula-1 estimate of base_occ memory
// access time against the measured likelihood and recycle times of the
// dense baseline.
func (s *Session) Fig4a() *Result {
	r := &Result{Headers: []string{"dataset", "estimated (s)", "likelihood (s)", "est/likeli", "recycle (s)", "est/recycle"}}
	bw := MeasureCPUBandwidth()
	for _, name := range []string{"chr1", "chr21"} {
		rep, _ := s.RunSOAPsnp(name)
		est := float64(rep.Sites) * float64(bayes.BaseOccSize) / bw
		li := rep.Times.Likeli.Seconds()
		re := rep.Times.Recycle.Seconds()
		r.AddRow(name, fmt.Sprintf("%.2f", est), fmt.Sprintf("%.2f", li),
			fmt.Sprintf("%.0f%%", 100*est/li), fmt.Sprintf("%.2f", re), fmt.Sprintf("%.0f%%", 100*est/re))
	}
	r.Notef("B_cpu measured at %.1f GB/s; paper measured 4.2 GB/s on its Xeon", bw/1e9)
	r.Notef("paper: estimate covers 65-70%% of likelihood and 89-92%% of recycle; a modern host's" +
		" prefetchers hide more latency, so the likelihood share lands lower here while recycle" +
		" (pure memset bandwidth) can exceed 100%% of the estimate")
	return r
}

// Fig4b reproduces Figure 4(b): the percentage of sites by number of
// non-zero base_occ elements.
func (s *Session) Fig4b() *Result {
	r := &Result{Headers: []string{"non-zero elements", "chr1 sites %", "chr21 sites %"}}
	hists := map[string][]int64{}
	totals := map[string]int64{}
	for _, name := range []string{"chr1", "chr21"} {
		rep, _ := s.RunSOAPsnp(name)
		hists[name] = rep.NonZeroHist
		for _, c := range rep.NonZeroHist {
			totals[name] += c
		}
	}
	buckets := [][2]int{{0, 0}, {1, 5}, {6, 10}, {11, 15}, {16, 20}, {21, 30}, {31, 50}, {51, 100}, {101, 256}}
	for _, b := range buckets {
		label := fmt.Sprintf("%d-%d", b[0], b[1])
		if b[0] == b[1] {
			label = fmt.Sprintf("%d", b[0])
		}
		cells := []string{label}
		for _, name := range []string{"chr1", "chr21"} {
			var n int64
			for k := b[0]; k <= b[1] && k < len(hists[name]); k++ {
				n += hists[name][k]
			}
			cells = append(cells, fmt.Sprintf("%.1f%%", 100*float64(n)/float64(totals[name])))
		}
		r.AddRow(cells...)
	}
	for _, name := range []string{"chr1", "chr21"} {
		var weighted, n int64
		for k, c := range hists[name] {
			weighted += int64(k) * c
			n += c
		}
		mean := float64(weighted) / float64(n)
		r.Notef("%s: mean non-zero count %.1f of %d elements = %.4f%% (paper: up to ~0.08%% at <=100X depth)",
			name, mean, bayes.BaseOccSize, 100*mean/float64(bayes.BaseOccSize))
	}
	return r
}

// Fig5 reproduces Figure 5: likelihood time under the four
// representation/processor combinations.
func (s *Session) Fig5() *Result {
	r := &Result{Headers: []string{"dataset", "SOAPsnp (CPU dense)", "GPU dense", "GSNP_CPU (sparse)", "GSNP (GPU sparse)"}}
	for _, name := range []string{"chr1", "chr21"} {
		base, _ := s.RunSOAPsnp(name)
		ds := s.Dataset(name)
		cpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU})
		gpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU})

		denseSec := s.denseGPUSeconds(ds)
		soap := base.Times.Likeli.Seconds()
		cpuS := cpuRep.Times.Likeli().Seconds()
		gpuS := gpuRep.Times.Likeli().Seconds()
		r.AddRow(name,
			fmt.Sprintf("%.2f s", soap),
			fmt.Sprintf("%.2f s", denseSec),
			fmt.Sprintf("%.2f s", cpuS),
			fmt.Sprintf("%.3f s", gpuS))
		r.Notef("%s: GSNP_CPU vs SOAPsnp %s (paper ~4-5x); GSNP vs GSNP_CPU %s (paper ~30x); GPU dense vs GSNP %s slower (paper 14-17x)",
			name, ratio(soap, cpuS), ratio(cpuS, gpuS), ratio(denseSec, gpuS))
	}
	r.Notef("GPU dense simulated over a site sample and scaled linearly (the dense scan cost is exactly proportional to site count)")
	return r
}

// denseGPUSeconds simulates the dense-representation GPU likelihood on a
// sample of sites and extrapolates to the dataset (the scan cost per site
// is constant by construction: 131,072 loads regardless of content).
func (s *Session) denseGPUSeconds(ds *seqsim.Dataset) float64 {
	const sample = 512
	n := len(ds.Ref.Seq)
	words := buildWindowWords(ds, sample)
	d := gpu.NewDevice(gpu.M2050())
	tables := bayes.BuildTables(bayes.NewPMatrixFromPhred())
	gNewP := gpu.Alloc[float64](d, len(tables.NewP))
	defer gNewP.Free()
	gNewP.CopyIn(tables.NewP)
	cAdj, err := gpu.NewConst(d, tables.Adjust[:])
	if err != nil {
		panic(err)
	}
	defer cAdj.Free()
	before := d.SimTime()
	gsnp.DenseGPULikelihood(d, tables, ds.ReadSpec.ReadLen, words, gNewP, cAdj)
	perSite := (d.SimTime() - before) / float64(words.NumArrays())
	return perSite * float64(n)
}

// buildWindowWords extracts the per-site sorted base_word arrays of the
// first maxSites sites of a dataset.
func buildWindowWords(ds *seqsim.Dataset, maxSites int) *sortnet.Batches {
	n := len(ds.Ref.Seq)
	if maxSites > 0 && maxSites < n {
		n = maxSites
	}
	sizes := make([]int32, n+1)
	type obsRec struct {
		site int
		word uint32
	}
	var obs []obsRec
	for i := range ds.Reads {
		rd := &ds.Reads[i]
		for pos := rd.Pos; pos < rd.Pos+len(rd.Bases) && pos < n; pos++ {
			o, ok := pipeline.ObsOf(rd, pos)
			if !ok {
				continue
			}
			obs = append(obs, obsRec{pos, gsnp.PackWord(o)})
			sizes[pos+1]++
		}
	}
	b := &sortnet.Batches{Bounds: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		b.Bounds[i+1] = b.Bounds[i] + sizes[i+1]
	}
	b.Data = make([]uint32, len(obs))
	cursor := make([]int32, n)
	for _, o := range obs {
		b.Data[b.Bounds[o.site]+cursor[o.site]] = o.word
		cursor[o.site]++
	}
	return b
}

// Fig6 reproduces Figure 6: the sort and compute halves of the sparse
// likelihood on GPU and CPU.
func (s *Session) Fig6() *Result {
	r := &Result{Headers: []string{"dataset", "step", "GPU (s)", "CPU (s)", "speedup"}}
	for _, name := range []string{"chr1", "chr21"} {
		ds := s.Dataset(name)
		gpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU})
		cpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU})
		gs, cs := gpuRep.Times.LikeliSort.Seconds(), cpuRep.Times.LikeliSort.Seconds()
		gc, cc := gpuRep.Times.LikeliComp.Seconds(), cpuRep.Times.LikeliComp.Seconds()
		r.AddRow(name, "likelihood_sort", fmt.Sprintf("%.4f", gs), fmt.Sprintf("%.4f", cs), ratio(cs, gs))
		r.AddRow(name, "likelihood_comp", fmt.Sprintf("%.4f", gc), fmt.Sprintf("%.4f", cc), ratio(cc, gc))
	}
	r.Notef("paper: sort speeds up ~22x and compute ~40x; bitonic's higher complexity keeps the sort speedup below the compute speedup")
	return r
}

// Fig7a reproduces Figure 7(a): batch sort throughput on randomly
// generated equal-sized arrays for the three implementations.
func (s *Session) Fig7a() *Result {
	r := &Result{Headers: []string{"batch array size", "CPU qsort (Melem/s)", "GPU batch bitonic (Melem/s)", "GPU radix per-array (Melem/s)"}}
	rng := rand.New(rand.NewSource(s.Scale.Seed))
	for _, size := range []int{16, 32, 64, 128, 256} {
		numArrays := 1 << 16 / size * 8 // ~512K elements
		mk := func(n int) *sortnet.Batches {
			b := &sortnet.Batches{Bounds: make([]int32, 1, n+1)}
			for i := 0; i < n; i++ {
				for k := 0; k < size; k++ {
					b.Data = append(b.Data, rng.Uint32()&0x1FFFF)
				}
				b.Bounds = append(b.Bounds, int32(len(b.Data)))
			}
			return b
		}

		cpuB := mk(numArrays)
		start := time.Now()
		sortnet.ParallelQuicksort(cpuB, 0)
		cpuThr := float64(len(cpuB.Data)) / time.Since(start).Seconds() / 1e6

		d := gpu.NewDevice(gpu.M2050())
		gpuB := mk(numArrays)
		st := sortnet.SinglePassBitonic(d, gpuB) // equal sizes: one class
		gpuThr := float64(len(gpuB.Data)) / st.SimSeconds / 1e6

		radixB := mk(64) // per-array radix is slow; throughput is per element anyway
		sr := sortnet.SequentialRadixGPU(d, radixB, 17)
		radixThr := float64(len(radixB.Data)) / sr.SimSeconds / 1e6

		r.AddRow(fmt.Sprintf("%d", size),
			fmt.Sprintf("%.1f", cpuThr), fmt.Sprintf("%.1f", gpuThr), fmt.Sprintf("%.2f", radixThr))
	}
	r.Notef("paper: GPU batch bitonic ~1.5x the 16-thread CPU sort; per-array radix has very low throughput; throughput decreases as arrays grow")
	return r
}

// Fig7b reproduces Figure 7(b): the three schemes for sorting the
// variable-sized base_word arrays of a real window.
func (s *Session) Fig7b() *Result {
	r := &Result{Headers: []string{"scheme", "sim time (s)", "elements sorted", "vs multipass"}}
	ds := s.Dataset("chr1")
	limit := len(ds.Ref.Seq)
	if limit > 131072 {
		limit = 131072
	}
	orig := buildWindowWords(ds, limit)
	clone := func() *sortnet.Batches {
		return &sortnet.Batches{
			Data:   append([]uint32(nil), orig.Data...),
			Bounds: orig.Bounds,
		}
	}
	d := gpu.NewDevice(gpu.M2050())
	mp := sortnet.MultipassBitonic(d, clone())
	sp := sortnet.SinglePassBitonic(d, clone())
	ne := sortnet.NonEqBitonic(d, clone())
	add := func(name string, st sortnet.Stats) {
		r.AddRow(name, fmt.Sprintf("%.5f", st.SimSeconds),
			fmt.Sprintf("%d", st.ElementsSorted), ratio(st.SimSeconds, mp.SimSeconds))
	}
	add("bitonic MP (multipass)", mp)
	add("bitonic SP (single pass)", sp)
	add("bitonic noneq", ne)
	r.Notef("single pass sorts %.1fx the elements of multipass (paper: ~4x) and runs %.1fx slower (paper: ~5x)",
		float64(sp.ElementsSorted)/float64(mp.ElementsSorted), sp.SimSeconds/mp.SimSeconds)
	return r
}

// Fig8 reproduces Figure 8: likelihood_comp time under the four kernel
// variants.
func (s *Session) Fig8() *Result {
	r := &Result{Headers: []string{"dataset", "baseline", "w/ shared", "w/ new table", "optimized", "opt speedup"}}
	for _, name := range []string{"chr1", "chr21"} {
		ds := s.Dataset(name)
		times := map[gsnp.Variant]float64{}
		for _, v := range []gsnp.Variant{gsnp.VariantBaseline, gsnp.VariantShared, gsnp.VariantNewTable, gsnp.VariantOptimized} {
			rep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Variant: v})
			times[v] = rep.Times.LikeliComp.Seconds()
		}
		b := times[gsnp.VariantBaseline]
		r.AddRow(name,
			fmt.Sprintf("%.4f s", b),
			fmt.Sprintf("%.4f s (%.0f%%)", times[gsnp.VariantShared], 100*times[gsnp.VariantShared]/b),
			fmt.Sprintf("%.4f s (%.0f%%)", times[gsnp.VariantNewTable], 100*times[gsnp.VariantNewTable]/b),
			fmt.Sprintf("%.4f s", times[gsnp.VariantOptimized]),
			ratio(b, times[gsnp.VariantOptimized]))
		r.Notef("%s: paper reports shared-only at ~55%% and new-table-only at ~78%% of baseline, optimized ~2.4x faster", name)
	}
	return r
}

// paperDiskBandwidth is the sequential disk rate of the paper's testbed
// (Section VI-A: ~90 MB/s), used to model the I/O leg of the output and
// decompression experiments — a modern host's page cache would otherwise
// hide the effect the paper measures.
const paperDiskBandwidth = 90e6

// Fig9 reproduces Figure 9: output size and output speed for plain text,
// gzip and the GSNP compressed container. Output time = the engine's
// output component (formatting / compression) + bytes written at the
// paper's 90 MB/s disk rate.
func (s *Session) Fig9() *Result {
	r := &Result{Headers: []string{"dataset", "variant", "size", "vs GSNP", "output time (s)", "speedup vs plain"}}
	for _, name := range []string{"chr1", "chr21"} {
		base, text := s.RunSOAPsnp(name)
		ds := s.Dataset(name)

		// Plain text: SOAPsnp's formatting time + text bytes to disk.
		plainSec := base.Times.Output.Seconds() + float64(len(text))/paperDiskBandwidth

		// gzip: formatting + gzip compression + compressed bytes to disk.
		t0 := time.Now()
		gz, err := compress.Gzip(text)
		if err != nil {
			panic(err)
		}
		gzSec := base.Times.Output.Seconds() + time.Since(t0).Seconds() + float64(len(gz))/paperDiskBandwidth

		// GSNP: row assembly + device compression + compressed bytes.
		rep, blob := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Compress: true})
		gsnpSec := rep.Times.Output.Seconds() + float64(len(blob))/paperDiskBandwidth

		g := float64(len(blob))
		r.AddRow(name, "SOAPsnp text", mb(int64(len(text))), ratio(float64(len(text)), g), fmt.Sprintf("%.4f", plainSec), "1.0x")
		r.AddRow(name, "SOAPsnp + gzip", mb(int64(len(gz))), ratio(float64(len(gz)), g), fmt.Sprintf("%.4f", gzSec), ratio(plainSec, gzSec))
		r.AddRow(name, "GSNP", mb(int64(len(blob))), "1.0x", fmt.Sprintf("%.4f", gsnpSec), ratio(plainSec, gsnpSec))
		r.Notef("%s: text/GSNP size ratio %.1fx (paper: 14-16x), gzip/GSNP %.1fx (paper: ~1.5x); GSNP output %.1fx faster than plain (paper: 13-15x)",
			name, float64(len(text))/g, float64(len(gz))/g, plainSec/gsnpSec)
	}
	r.Notef("disk legs modelled at the paper's 90 MB/s sequential rate; compression/formatting legs measured (gzip on the host CPU, GSNP columns on the simulated device)")
	return r
}

// Fig10a reproduces Figure 10(a): sequential-read (decompression) speed of
// the three output formats.
func (s *Session) Fig10a() *Result {
	r := &Result{Headers: []string{"dataset", "variant", "read+decode time (s)", "logical MB/s", "speedup vs plain"}}
	for _, name := range []string{"chr1", "chr21"} {
		_, text := s.RunSOAPsnp(name)
		ds := s.Dataset(name)
		_, blob := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU, Compress: true})
		gz, err := compress.Gzip(text)
		if err != nil {
			panic(err)
		}
		logicalMB := float64(len(text)) / (1 << 20)

		t0 := time.Now()
		rows, err := snpio.ReadResults(bytes.NewReader(text))
		if err != nil {
			panic(err)
		}
		plainSec := time.Since(t0).Seconds() + float64(len(text))/paperDiskBandwidth

		t0 = time.Now()
		raw, err := compress.Gunzip(gz)
		if err != nil {
			panic(err)
		}
		if _, err := snpio.ReadResults(bytes.NewReader(raw)); err != nil {
			panic(err)
		}
		gzSec := time.Since(t0).Seconds() + float64(len(gz))/paperDiskBandwidth

		t0 = time.Now()
		rows2, err := snpio.ReadAllBlocks(bytes.NewReader(blob))
		if err != nil {
			panic(err)
		}
		gsnpSec := time.Since(t0).Seconds() + float64(len(blob))/paperDiskBandwidth
		if len(rows2) != len(rows) {
			panic("fig10a: row count mismatch")
		}

		r.AddRow(name, "SOAPsnp text", fmt.Sprintf("%.4f", plainSec), fmt.Sprintf("%.0f", logicalMB/plainSec), "1.0x")
		r.AddRow(name, "gzip", fmt.Sprintf("%.4f", gzSec), fmt.Sprintf("%.0f", logicalMB/gzSec), ratio(plainSec, gzSec))
		r.AddRow(name, "GSNP", fmt.Sprintf("%.4f", gsnpSec), fmt.Sprintf("%.0f", logicalMB/gsnpSec), ratio(plainSec, gsnpSec))
	}
	r.Notef("paper: reading GSNP output is ~40x faster than plain text and ~6x faster than gzip; disk legs modelled at the paper's 90 MB/s, decode legs measured in memory")
	return r
}

// Fig10b reproduces Figure 10(b): the compressed temporary input size.
func (s *Session) Fig10b() *Result {
	r := &Result{Headers: []string{"dataset", "original input", "GSNP temp input", "ratio", "gzip", "gzip ratio"}}
	for _, name := range []string{"chr1", "chr21"} {
		ds := s.Dataset(name)
		var soap bytes.Buffer
		if err := snpio.WriteSOAP(&soap, ds.Spec.Name, ds.Reads); err != nil {
			panic(err)
		}
		var tmp bytes.Buffer
		tw := snpio.NewTempWriter(&tmp, ds.Spec.Name)
		for i := range ds.Reads {
			if err := tw.Write(&ds.Reads[i]); err != nil {
				panic(err)
			}
		}
		if err := tw.Flush(); err != nil {
			panic(err)
		}
		gz, err := compress.Gzip(soap.Bytes())
		if err != nil {
			panic(err)
		}
		r.AddRow(name, mb(int64(soap.Len())), mb(int64(tmp.Len())),
			fmt.Sprintf("%.0f%%", 100*float64(tmp.Len())/float64(soap.Len())),
			mb(int64(len(gz))), fmt.Sprintf("%.0f%%", 100*float64(len(gz))/float64(soap.Len())))
	}
	r.Notef("paper: compressed input ~1/3 of the original, comparable to gzip (gzip slightly better on the more general input data)")
	return r
}

// Fig11 reproduces Figure 11: elapsed time and memory consumption as the
// window size varies on chr1.
func (s *Session) Fig11() *Result {
	r := &Result{Headers: []string{"window (sites)", "total time (s)", "device memory", "vs largest window"}}
	ds := s.Dataset("chr1")
	n := len(ds.Ref.Seq)
	wins := []int{n / 32, n / 16, n / 8, n / 4, n / 2, n}
	var largest float64
	type row struct {
		win  int
		sec  float64
		memB int64
	}
	var rows []row
	for _, win := range wins {
		rep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Window: win, Compress: true})
		rows = append(rows, row{win, rep.Times.Total().Seconds(), rep.PeakDeviceBytes})
	}
	largest = rows[len(rows)-1].sec
	for _, rw := range rows {
		r.AddRow(fmt.Sprintf("%d", rw.win), fmt.Sprintf("%.3f", rw.sec), mb(rw.memB), ratio(rw.sec, largest))
	}
	r.Notef("paper: time rises sharply below ~128K sites (per-window overhead, underutilised hardware) and is flat beyond ~256K; memory grows with the window")
	r.Notef("window sizes here are fractions of the scaled chr1 (%d sites); the paper's absolute knee depends on data size", n)
	return r
}

// Fig12 reproduces Figure 12: end-to-end times for SOAPsnp, GSNP_CPU and
// GSNP over all 24 chromosomes. It runs at a reduced scale: the dense
// baseline over a whole genome is the expensive part, exactly as in the
// paper.
func (s *Session) Fig12() *Result {
	r := &Result{Headers: []string{"chromosome", "SOAPsnp (s)", "GSNP_CPU (s)", "GSNP (s)", "GSNP speedup"}}
	scale := s.Scale.SitesPerMb / 8
	if scale < 20 {
		scale = 20
	}
	var totSoap, totCPU, totGPU float64
	dev := gpu.NewDevice(gpu.M2050())
	minSpeedup := 0.0
	for _, spec := range seqsim.ScaledHumanGenome(scale, s.Scale.Seed) {
		ds := seqsim.BuildDataset(spec)
		known := KnownSNPs(ds)

		eng := soapsnpEngine(ds, known)
		var buf bytes.Buffer
		soapRep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
		if err != nil {
			panic(err)
		}
		cpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU, Compress: true})
		gpuRep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Compress: true, Device: dev})

		so := soapRep.Times.Total().Seconds()
		cp := cpuRep.Times.Total().Seconds()
		gp := gpuRep.Times.Total().Seconds()
		totSoap += so
		totCPU += cp
		totGPU += gp
		sp := so / gp
		if minSpeedup == 0 || sp < minSpeedup {
			minSpeedup = sp
		}
		r.AddRow(spec.Name, fmt.Sprintf("%.2f", so), fmt.Sprintf("%.2f", cp), fmt.Sprintf("%.2f", gp), fmt.Sprintf("%.0fx", sp))
	}
	r.AddRow("TOTAL", fmt.Sprintf("%.1f", totSoap), fmt.Sprintf("%.1f", totCPU), fmt.Sprintf("%.1f", totGPU), fmt.Sprintf("%.0fx", totSoap/totGPU))
	r.Notef("whole-genome total speedup %.0fx, minimum per-chromosome %.0fx (paper: at least 40x everywhere; 3 days -> 2 hours)",
		totSoap/totGPU, minSpeedup)
	r.Notef("run at %d sites/Mb (reduced from the session's %d: the dense baseline dominates this experiment's cost)", scale, s.Scale.SitesPerMb)
	return r
}
