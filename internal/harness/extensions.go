package harness

import (
	"bytes"
	"context"
	"fmt"
	"runtime"

	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/sched"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
	"gsnp/internal/soapsnp"
)

// Extension experiments beyond the paper's figures: the multi-threaded
// SOAPsnp scaling the authors mention in Section VI-A but do not plot, and
// a calling-accuracy sweep enabled by the simulator's ground truth.

// ExtThreads measures the multi-threaded SOAPsnp port: the paper reports
// that 16 threads gained only 3-4x over the single-threaded baseline
// because the dense scan saturates memory bandwidth.
func (s *Session) ExtThreads() *Result {
	r := &Result{Headers: []string{"threads", "likelihood (s)", "speedup", "aggregate GB/s"}}
	ds := s.Dataset("chr21")
	known := KnownSNPs(ds)
	bytesScanned := float64(ds.Spec.Length) * 131072

	var base float64
	threads := []int{1, 2, 4, 8, 16}
	maxT := runtime.GOMAXPROCS(0)
	for _, th := range threads {
		eng := soapsnp.New(soapsnp.Config{
			Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: known, Threads: th,
		})
		var buf bytes.Buffer
		rep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
		if err != nil {
			panic(err)
		}
		li := rep.Times.Likeli.Seconds()
		if th == 1 {
			base = li
		}
		note := ""
		if th > maxT {
			note = fmt.Sprintf(" (host limit: %d)", maxT)
		}
		r.AddRow(fmt.Sprintf("%d%s", th, note),
			fmt.Sprintf("%.2f", li), ratio(base, li),
			fmt.Sprintf("%.1f", bytesScanned/li/1e9))
	}
	r.Notef("paper (Section VI-A): their 16-thread port reached only 3-4x — the dense scan is bound by memory bandwidth, visible here as the flat aggregate GB/s column")
	if maxT == 1 {
		r.Notef("this host exposes a single core, the degenerate case: one core already runs the scan at a large fraction of the memory bandwidth, so extra threads only add overhead — the same ceiling the paper hit at 16 threads")
	}
	return r
}

// ExtAccuracy sweeps sequencing depth and scores calls against the
// simulator's injected ground truth — the quality dimension the paper
// holds fixed (it validates GSNP by byte-identity with SOAPsnp instead).
func (s *Session) ExtAccuracy() *Result {
	r := &Result{Headers: []string{"depth", "variants", "recovered", "sensitivity", "false calls", "precision"}}
	for _, depth := range []float64{5, 10, 20, 30} {
		ds := seqsim.BuildDataset(seqsim.ChromosomeSpec{
			Name: "chrAcc", Length: 40000, Depth: depth, MaskFraction: 0.05,
			Seed: s.Scale.Seed + int64(depth*10),
		})
		rep, out := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU})
		_ = rep
		rows, err := snpio.ReadResults(bytes.NewReader(out))
		if err != nil {
			panic(err)
		}
		truth := map[int]byte{}
		for _, v := range ds.Diploid.Variants {
			truth[v.Pos] = v.Genotype.IUPAC()
		}
		var tp, fp, calls int
		for i := range rows {
			if !rows[i].IsSNP() {
				continue
			}
			calls++
			if want, ok := truth[int(rows[i].Pos)-1]; ok && rows[i].Genotype == want {
				tp++
			} else {
				fp++
			}
		}
		sens := float64(tp) / float64(max(1, len(truth)))
		prec := float64(tp) / float64(max(1, calls))
		r.AddRow(fmt.Sprintf("%.0fX", depth),
			fmt.Sprintf("%d", len(truth)), fmt.Sprintf("%d", tp),
			fmt.Sprintf("%.1f%%", 100*sens),
			fmt.Sprintf("%d", fp), fmt.Sprintf("%.1f%%", 100*prec))
	}
	r.Notef("the Bayesian model's behaviour with depth: sensitivity climbs steeply to ~20X and saturates — the regime argument behind the paper's 11X whole-genome data")
	return r
}

// ExtConsistency verifies the Section IV-G property across engines at the
// session scale and reports the comparison.
func (s *Session) ExtConsistency() *Result {
	r := &Result{Headers: []string{"engine", "output bytes", "identical to SOAPsnp"}}
	_, want := s.RunSOAPsnp("chr21")
	ds := s.Dataset("chr21")
	check := func(name string, got []byte) {
		id := "YES"
		if !bytes.Equal(got, want) {
			id = "NO"
		}
		r.AddRow(name, fmt.Sprintf("%d", len(got)), id)
	}
	r.AddRow("SOAPsnp (dense CPU)", fmt.Sprintf("%d", len(want)), "reference")
	_, cpuOut := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU})
	check("GSNP_CPU (sparse)", cpuOut)
	for _, v := range []gsnp.Variant{gsnp.VariantOptimized, gsnp.VariantBaseline, gsnp.VariantShared, gsnp.VariantNewTable} {
		_, out := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Variant: v})
		check("GSNP GPU "+v.String(), out)
	}

	// Concurrency knobs must not perturb a single byte: window prefetch
	// (both engine families), parallel likelihood_sort on the host, and
	// their combination.
	soapPf := soapsnp.New(soapsnp.Config{
		Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: KnownSNPs(ds), Prefetch: true,
	})
	var pfBuf bytes.Buffer
	if _, err := soapPf.Run(pipeline.MemSource(ds.Reads), &pfBuf); err != nil {
		panic(err)
	}
	check("SOAPsnp prefetch", pfBuf.Bytes())
	_, out := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU, Prefetch: true})
	check("GSNP_CPU prefetch", out)
	_, out = s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU, SortWorkers: 4})
	check("GSNP_CPU sort workers=4", out)
	_, out = s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU, ComputeWorkers: 4})
	check("GSNP_CPU compute workers=4", out)
	_, out = s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU, SortWorkers: 4, ComputeWorkers: 4, Prefetch: true})
	check("GSNP_CPU sort+compute+prefetch", out)
	_, out = s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Prefetch: true})
	check("GSNP GPU prefetch", out)
	r.Notef("every engine, kernel variant and concurrency knob reproduces the dense baseline byte for byte — the consistency requirement BGI set for GSNP (Section IV-G)")
	return r
}

// ExtParallel measures the bounded worker-pool chromosome scheduler over a
// multi-chromosome set — the production whole-genome layout the paper runs
// serially (Figure 12) — and verifies the result files stay byte-identical
// at every worker count.
func (s *Session) ExtParallel() *Result {
	r := &Result{Headers: []string{"workers", "wall (s)", "task time (s)", "speedup", "Msites/s", "identical to serial"}}
	specs := seqsim.ScaledHumanGenome(s.Scale.SitesPerMb, s.Scale.Seed)
	specs = specs[len(specs)-8:] // the eight smallest chromosomes
	dss := make([]*seqsim.Dataset, len(specs))
	totalSites := 0
	for i, spec := range specs {
		dss[i] = seqsim.BuildDataset(spec)
		totalSites += len(dss[i].Ref.Seq)
	}

	var baseline [][]byte
	var baseWall float64
	for _, workers := range []int{1, 2, 4} {
		tasks := make([]sched.Task[[]byte], len(dss))
		for i, ds := range dss {
			ds := ds
			tasks[i] = sched.Task[[]byte]{
				Name: ds.Spec.Name,
				Run: func(ctx context.Context) ([]byte, error) {
					_, out := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeCPU, Prefetch: true})
					return out, nil
				},
			}
		}
		res, stats, err := sched.Run(context.Background(), workers, tasks)
		if err != nil {
			panic(err)
		}
		identical := "reference"
		if baseline == nil {
			baseline = make([][]byte, len(res))
			for i := range res {
				baseline[i] = res[i].Value
			}
			baseWall = stats.Wall.Seconds()
		} else {
			identical = "YES"
			for i := range res {
				if !bytes.Equal(res[i].Value, baseline[i]) {
					identical = "NO"
				}
			}
		}
		r.AddRow(fmt.Sprintf("%d", stats.Workers),
			fmt.Sprintf("%.2f", stats.Wall.Seconds()),
			fmt.Sprintf("%.2f", stats.TaskWall.Seconds()),
			ratio(baseWall, stats.Wall.Seconds()),
			fmt.Sprintf("%.2f", float64(totalSites)/stats.Wall.Seconds()/1e6),
			identical)
	}
	r.Notef("chromosomes are independent, so the pool scales until the smallest-chromosome tail dominates; outputs are byte-identical at every worker count — concurrency never trades off the Section IV-G guarantee")
	return r
}

// ExtDevice sweeps the device configuration: how the likelihood component
// responds to core count and memory bandwidth, a sensitivity study of the
// timing model underlying every GPU figure.
func (s *Session) ExtDevice() *Result {
	r := &Result{Headers: []string{"device", "cores", "bandwidth", "likelihood (s)", "vs M2050"}}
	ds := s.Dataset("chr21")
	devices := []gpu.Config{gpu.M2050(), gpu.C2050(), gpu.GTX280()}
	// A hypothetical half-bandwidth M2050 isolates the memory leg.
	half := gpu.M2050()
	half.Name = "M2050 @ half bandwidth"
	half.PeakBandwidth /= 2
	devices = append(devices, half)

	var base float64
	for i, cfg := range devices {
		dev := gpu.NewDevice(cfg)
		rep, _ := s.RunGSNP(ds, GSNPOptions{Mode: gsnp.ModeGPU, Device: dev})
		li := rep.Times.Likeli().Seconds()
		if i == 0 {
			base = li
		}
		r.AddRow(cfg.Name,
			fmt.Sprintf("%d", cfg.TotalCores()),
			fmt.Sprintf("%.0f GB/s", cfg.PeakBandwidth/1e9),
			fmt.Sprintf("%.4f", li), ratio(li, base))
	}
	r.Notef("likelihood_comp is dominated by non-coalesced new_p_matrix reads, so halving bandwidth hurts far more than the GT200's 4x core deficit helps its wider bus — consistent with the paper's focus on memory-access optimizations over arithmetic ones")
	return r
}
