package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtConsistencyAllYes(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	s := NewSession(tinyScale())
	res, err := s.Run("ext-consistency")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("expected 12 engine rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows[1:] {
		if row[2] != "YES" {
			t.Errorf("engine %q not byte-identical: %v", row[0], row)
		}
	}
}

// TestExtParallelByteIdentity runs the chromosome scheduler at workers 1,
// 2 and 4 and requires byte-identical result files at every worker count —
// the Section IV-G guarantee must survive concurrency.
func TestExtParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	s := NewSession(tinyScale())
	res, err := s.Run("ext-parallel")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 worker rows, got %d", len(res.Rows))
	}
	if res.Rows[0][0] != "1" || res.Rows[2][0] != "4" {
		t.Fatalf("worker column = %q, %q, %q; want 1, 2, 4", res.Rows[0][0], res.Rows[1][0], res.Rows[2][0])
	}
	if got := res.Rows[0][5]; got != "reference" {
		t.Errorf("workers=1 identity cell = %q, want reference", got)
	}
	for _, row := range res.Rows[1:] {
		if row[5] != "YES" {
			t.Errorf("workers=%s output not byte-identical to serial: %v", row[0], row)
		}
	}
}

func TestExtAccuracyMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	s := NewSession(tinyScale())
	res, err := s.Run("ext-accuracy")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 depth rows, got %d", len(res.Rows))
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("bad percentage cell %q: %v", cell, err)
		}
		return v
	}
	// Sensitivity at 30X should comfortably exceed sensitivity at 5X.
	low := parse(res.Rows[0][3])
	high := parse(res.Rows[3][3])
	if high <= low {
		t.Errorf("sensitivity did not improve with depth: 5X=%v%% 30X=%v%%", low, high)
	}
	if high < 80 {
		t.Errorf("30X sensitivity = %v%%, want >= 80%%", high)
	}
}

func TestExtThreadsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	s := NewSession(tinyScale())
	res, err := s.Run("ext-threads")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 thread rows, got %d", len(res.Rows))
	}
	if res.Rows[0][2] != "1.0x" {
		t.Errorf("single-thread speedup cell = %q", res.Rows[0][2])
	}
}
