package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtConsistencyAllYes(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	s := NewSession(tinyScale())
	res, err := s.Run("ext-consistency")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 engine rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows[1:] {
		if row[2] != "YES" {
			t.Errorf("engine %q not byte-identical: %v", row[0], row)
		}
	}
}

func TestExtAccuracyMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	s := NewSession(tinyScale())
	res, err := s.Run("ext-accuracy")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 depth rows, got %d", len(res.Rows))
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("bad percentage cell %q: %v", cell, err)
		}
		return v
	}
	// Sensitivity at 30X should comfortably exceed sensitivity at 5X.
	low := parse(res.Rows[0][3])
	high := parse(res.Rows[3][3])
	if high <= low {
		t.Errorf("sensitivity did not improve with depth: 5X=%v%% 30X=%v%%", low, high)
	}
	if high < 80 {
		t.Errorf("30X sensitivity = %v%%, want >= 80%%", high)
	}
}

func TestExtThreadsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	s := NewSession(tinyScale())
	res, err := s.Run("ext-threads")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 thread rows, got %d", len(res.Rows))
	}
	if res.Rows[0][2] != "1.0x" {
		t.Errorf("single-thread speedup cell = %q", res.Rows[0][2])
	}
}
