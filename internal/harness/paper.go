package harness

// Published numbers from the paper, used in the notes of each reproduced
// result so EXPERIMENTS.md can record paper-vs-measured side by side.

// PaperTable1 is Table I: SOAPsnp component times in seconds.
var PaperTable1 = map[string]map[string]float64{
	"chr1": {
		"cal_p": 258, "read": 101, "count": 376, "likeli": 12267,
		"post": 113, "output": 550, "recycle": 8214, "total": 21879,
	},
	"chr21": {
		"cal_p": 31, "read": 12, "count": 55, "likeli": 1854,
		"post": 17, "output": 103, "recycle": 1603, "total": 3675,
	},
}

// PaperTable4 is Table IV: GSNP component times in seconds (with the
// speedups over SOAPsnp the paper lists in parentheses).
var PaperTable4 = map[string]map[string]float64{
	"chr1": {
		"cal_p": 297, "read": 20, "count": 87, "likeli": 60,
		"post": 16, "output": 44, "recycle": 3, "total": 527,
	},
	"chr21": {
		"cal_p": 37, "read": 3, "count": 14, "likeli": 8,
		"post": 3, "output": 7, "recycle": 1, "total": 73,
	},
}

// PaperTable4Speedups are the parenthesised per-component speedups of
// Table IV.
var PaperTable4Speedups = map[string]map[string]float64{
	"chr1":  {"read": 5, "count": 4, "likeli": 204, "post": 7, "output": 13, "recycle": 2738, "total": 42},
	"chr21": {"read": 4, "count": 4, "likeli": 231, "post": 6, "output": 15, "recycle": 1603, "total": 50},
}

// PaperTable3 is Table III: hardware counters for likelihood_comp on chr1
// (PW = per warp on a multiprocessor).
var PaperTable3 = map[string]map[string]float64{
	"baseline":     {"inst_pw": 3.3e10, "g_load": 3.3e8, "g_store": 3.7e8, "s_load_pw": 0, "s_store_pw": 0},
	"w/ shared":    {"inst_pw": 3.1e10, "g_load": 2.3e8, "g_store": 2.5e8, "s_load_pw": 1.1e8, "s_store_pw": 1.1e8},
	"w/ new table": {"inst_pw": 2.4e10, "g_load": 2.1e8, "g_store": 3.6e8, "s_load_pw": 0, "s_store_pw": 0},
	"optimized":    {"inst_pw": 2.3e10, "g_load": 1.2e8, "g_store": 2.4e8, "s_load_pw": 1.1e8, "s_store_pw": 1.1e8},
}

// Paper shape facts quoted in notes.
const (
	// PaperSparseCPUSpeedup: GSNP_CPU beats SOAPsnp by ~4-5x on
	// likelihood (Figure 5).
	PaperSparseCPUSpeedupLo, PaperSparseCPUSpeedupHi = 4, 5
	// PaperDenseGPUSlowdown: GPU dense is 14-17x slower than GSNP
	// (Figure 5).
	PaperDenseGPUSlowdownLo, PaperDenseGPUSlowdownHi = 14, 17
	// PaperMultipassSpeedup: multipass is ~5x faster than single pass
	// (Figure 7b).
	PaperMultipassSpeedup = 5
	// PaperKernelOptSpeedup: optimized likelihood_comp is ~2.4x the
	// baseline (Figure 8).
	PaperKernelOptSpeedup = 2.4
	// PaperOutputRatio: SOAPsnp output is 14-16x larger than GSNP's
	// (Figure 9a); gzip is ~1.5x larger.
	PaperOutputRatioLo, PaperOutputRatioHi = 14, 16
	PaperGzipOutputRatio                   = 1.5
	// PaperTempInputRatio: compressed temporary input is ~1/3 of the
	// original (Figure 10b).
	PaperTempInputRatio = 1.0 / 3
	// PaperEndToEndSpeedup: GSNP is at least 40x faster end to end
	// (Figure 12).
	PaperEndToEndSpeedup = 40
	// PaperLikelihoodShare: likelihood is ~56% of SOAPsnp's total time
	// (Section III-A).
	PaperLikelihoodShare = 0.56
	// PaperMemAccessShareLikeli / Recycle: the estimated base_occ access
	// time is 65-70% of likelihood and 89-92% of recycle (Figure 4a).
	PaperMemAccessShareLikeliLo, PaperMemAccessShareLikeliHi   = 0.65, 0.70
	PaperMemAccessShareRecycleLo, PaperMemAccessShareRecycleHi = 0.89, 0.92
)
