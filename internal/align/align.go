// Package align implements a k-mer-index short-read aligner, the substrate
// standing in for the SOAP aligner whose output SOAPsnp and GSNP consume
// (the paper's main input file "is obtained from sequence alignment
// software", Section III-A).
//
// The aligner seeds with exact k-mers at pigeonhole offsets — with at most
// m mismatches, one of m+1 disjoint seeds must match exactly — verifies
// candidates by full-length mismatch counting on both strands, and reports
// the best position with the count of equally good hits (the uniqueness
// signal SNP calling consumes).
package align

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
)

// RawRead is a read as it leaves the sequencer: bases and qualities in
// sequencing orientation, not yet placed on the reference.
type RawRead struct {
	ID    int64
	Seq   dna.Sequence
	Quals []dna.Quality
}

// Index is a k-mer seed index over a reference sequence.
type Index struct {
	ref   dna.Sequence
	k     int
	seeds map[uint64][]int32
}

// DefaultK is the default seed length: long enough to be selective on
// megabase references, short enough that three seeds fit a 100 bp read.
const DefaultK = 16

// DefaultMaxMismatch is the default per-read mismatch budget, matching the
// classic short-read aligner setting the paper's input pipeline assumes.
const DefaultMaxMismatch = 2

// BuildIndex indexes every k-mer position of the reference.
func BuildIndex(ref dna.Sequence, k int) (*Index, error) {
	if k <= 0 {
		k = DefaultK
	}
	if k > 31 {
		return nil, fmt.Errorf("align: seed length %d exceeds 31", k)
	}
	if len(ref) < k {
		return nil, fmt.Errorf("align: reference shorter than seed length")
	}
	ix := &Index{ref: ref, k: k, seeds: make(map[uint64][]int32, len(ref))}
	var key uint64
	mask := uint64(1)<<(2*k) - 1
	for i, b := range ref {
		key = (key<<2 | uint64(b)) & mask
		if i >= k-1 {
			pos := int32(i - k + 1)
			ix.seeds[key] = append(ix.seeds[key], pos)
		}
	}
	return ix, nil
}

// K returns the seed length.
func (ix *Index) K() int { return ix.k }

// kmerAt packs seq[off:off+k] into a key.
func (ix *Index) kmerAt(seq dna.Sequence, off int) uint64 {
	var key uint64
	for _, b := range seq[off : off+ix.k] {
		key = key<<2 | uint64(b)
	}
	return key
}

// Hit is one candidate placement of a read.
type Hit struct {
	// Pos is the zero-based leftmost reference position.
	Pos int
	// Strand is 0 when the read matched forward, 1 when its reverse
	// complement matched.
	Strand uint8
	// Mismatches is the number of mismatching bases.
	Mismatches int
}

// Align finds all placements of seq with at most maxMismatch mismatches,
// on both strands, sorted by (mismatches, position, strand).
func (ix *Index) Align(seq dna.Sequence, maxMismatch int) []Hit {
	var hits []Hit
	hits = ix.alignOne(seq, 0, maxMismatch, hits)
	hits = ix.alignOne(seq.ReverseComplement(), 1, maxMismatch, hits)
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Mismatches != hits[j].Mismatches {
			return hits[i].Mismatches < hits[j].Mismatches
		}
		if hits[i].Pos != hits[j].Pos {
			return hits[i].Pos < hits[j].Pos
		}
		return hits[i].Strand < hits[j].Strand
	})
	// Deduplicate (two seeds may propose the same placement).
	out := hits[:0]
	for _, h := range hits {
		if len(out) > 0 {
			last := out[len(out)-1]
			if last.Pos == h.Pos && last.Strand == h.Strand {
				continue
			}
		}
		out = append(out, h)
	}
	return out
}

// alignOne seeds and verifies one orientation of the read.
func (ix *Index) alignOne(seq dna.Sequence, strand uint8, maxMismatch int, hits []Hit) []Hit {
	if len(seq) < ix.k {
		return hits
	}
	// Pigeonhole seeds: maxMismatch+1 disjoint k-mers (as many as fit).
	nSeeds := maxMismatch + 1
	if max := len(seq) / ix.k; nSeeds > max {
		nSeeds = max
	}
	seen := map[int]bool{}
	for s := 0; s < nSeeds; s++ {
		off := s * ix.k
		for _, sp := range ix.seeds[ix.kmerAt(seq, off)] {
			pos := int(sp) - off
			if pos < 0 || pos+len(seq) > len(ix.ref) || seen[pos] {
				continue
			}
			seen[pos] = true
			mm := 0
			for i, b := range seq {
				if ix.ref[pos+i] != b {
					mm++
					if mm > maxMismatch {
						break
					}
				}
			}
			if mm <= maxMismatch {
				hits = append(hits, Hit{Pos: pos, Strand: strand, Mismatches: mm})
			}
		}
	}
	return hits
}

// alignRead places one raw read, reporting ok=false when it is unmapped.
// Qualities are normalized to the sequence length before placement —
// truncated when over-long, zero-padded when short — so a malformed read
// can never produce an AlignedRead whose Bases and Quals disagree (the
// downstream pileup indexes Quals by base offset and must not panic).
func alignRead(ix *Index, r *RawRead, maxMismatch int) (reads.AlignedRead, bool) {
	hits := ix.Align(r.Seq, maxMismatch)
	if len(hits) == 0 {
		return reads.AlignedRead{}, false
	}
	quals := r.Quals
	if len(quals) != len(r.Seq) {
		norm := make([]dna.Quality, len(r.Seq))
		copy(norm, quals)
		quals = norm
	}
	best := hits[0]
	ties := 0
	for _, h := range hits {
		if h.Mismatches == best.Mismatches {
			ties++
		}
	}
	if ties > 255 {
		ties = 255
	}
	ar := reads.AlignedRead{
		ID:     r.ID,
		Pos:    best.Pos,
		Strand: best.Strand,
		Hits:   uint8(ties),
	}
	if best.Strand == 1 {
		ar.Bases = r.Seq.ReverseComplement()
		ar.Quals = make([]dna.Quality, len(quals))
		for j, q := range quals {
			ar.Quals[len(quals)-1-j] = q
		}
	} else {
		ar.Bases = append(dna.Sequence(nil), r.Seq...)
		ar.Quals = append([]dna.Quality(nil), quals...)
	}
	return ar, true
}

// AlignReads places every raw read, returning position-sorted alignment
// records in the SNP caller's input form. Reads with no placement within
// maxMismatch are dropped (unmapped). The Hits field counts the placements
// tied with the best one, so repeat-region reads carry Hits > 1.
func AlignReads(ix *Index, raws []RawRead, maxMismatch int) []reads.AlignedRead {
	var out []reads.AlignedRead
	for i := range raws {
		if ar, ok := alignRead(ix, &raws[i], maxMismatch); ok {
			out = append(out, ar)
		}
	}
	reads.SortByPos(out)
	return out
}

// AlignReadsParallel is AlignReads sharded across workers. Each worker
// aligns a contiguous shard of the input; shards are concatenated in input
// order before the final position sort, so the result is byte-for-byte
// identical to the serial AlignReads at every worker count (SortByPos
// breaks position ties by read ID, and per-read placement is a pure
// function of the read and the index). workers <= 0 means GOMAXPROCS.
func AlignReadsParallel(ix *Index, raws []RawRead, maxMismatch, workers int) []reads.AlignedRead {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(raws) {
		workers = len(raws)
	}
	if workers <= 1 {
		return AlignReads(ix, raws, maxMismatch)
	}
	shards := make([][]reads.AlignedRead, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(raws) / workers
		hi := (w + 1) * len(raws) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []reads.AlignedRead
			for i := lo; i < hi; i++ {
				if ar, ok := alignRead(ix, &raws[i], maxMismatch); ok {
					out = append(out, ar)
				}
			}
			shards[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var out []reads.AlignedRead
	for _, s := range shards {
		out = append(out, s...)
	}
	reads.SortByPos(out)
	return out
}

// RawFromAligned converts an aligned read back to sequencer orientation,
// letting simulated data drive the aligner end to end.
func RawFromAligned(r *reads.AlignedRead) RawRead {
	raw := RawRead{ID: r.ID}
	if r.Strand == 1 {
		raw.Seq = r.Bases.ReverseComplement()
		raw.Quals = make([]dna.Quality, len(r.Quals))
		for i, q := range r.Quals {
			raw.Quals[len(r.Quals)-1-i] = q
		}
	} else {
		raw.Seq = append(dna.Sequence(nil), r.Bases...)
		raw.Quals = append([]dna.Quality(nil), r.Quals...)
	}
	return raw
}
