package align

import (
	"reflect"
	"testing"

	"gsnp/internal/dna"
	"gsnp/internal/reads"
	"gsnp/internal/seqsim"
)

func TestBuildIndexErrors(t *testing.T) {
	ref, _ := dna.ParseSequence("ACGTACGT")
	if _, err := BuildIndex(ref, 32); err == nil {
		t.Error("k=32 accepted")
	}
	if _, err := BuildIndex(ref[:3], 16); err == nil {
		t.Error("reference shorter than k accepted")
	}
	long, _ := dna.ParseSequence("ACGTACGTACGTACGTACGTACGT")
	ix, err := BuildIndex(long, 0)
	if err != nil {
		t.Fatalf("default k rejected: %v", err)
	}
	if ix.K() != DefaultK {
		t.Errorf("K = %d", ix.K())
	}
}

func TestAlignExactForward(t *testing.T) {
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 5000, Seed: 1}).Seq
	ix, err := BuildIndex(ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	read := append(dna.Sequence(nil), ref[1234:1334]...)
	hits := ix.Align(read, 2)
	if len(hits) == 0 {
		t.Fatal("exact read not aligned")
	}
	if hits[0].Pos != 1234 || hits[0].Strand != 0 || hits[0].Mismatches != 0 {
		t.Errorf("best hit = %+v, want pos 1234 forward exact", hits[0])
	}
}

func TestAlignReverseStrand(t *testing.T) {
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 5000, Seed: 2}).Seq
	ix, _ := BuildIndex(ref, 16)
	read := dna.Sequence(ref[700:800]).ReverseComplement()
	hits := ix.Align(read, 2)
	if len(hits) == 0 {
		t.Fatal("reverse read not aligned")
	}
	if hits[0].Pos != 700 || hits[0].Strand != 1 {
		t.Errorf("best hit = %+v, want pos 700 reverse", hits[0])
	}
}

func TestAlignWithMismatches(t *testing.T) {
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 5000, Seed: 3}).Seq
	ix, _ := BuildIndex(ref, 16)
	read := append(dna.Sequence(nil), ref[2000:2100]...)
	read[50] = read[50] ^ 1 // one mismatch in the middle
	read[90] = read[90] ^ 2 // another in the tail
	hits := ix.Align(read, 2)
	if len(hits) == 0 {
		t.Fatal("2-mismatch read not aligned")
	}
	if hits[0].Pos != 2000 || hits[0].Mismatches != 2 {
		t.Errorf("best hit = %+v", hits[0])
	}
	// With budget 1, the placement is rejected.
	hits = ix.Align(read, 1)
	for _, h := range hits {
		if h.Pos == 2000 && h.Strand == 0 {
			t.Error("over-budget placement returned")
		}
	}
}

func TestAlignRepeatRegionMultiHit(t *testing.T) {
	// A reference with an exact repeated segment: reads from it must
	// report Hits > 1.
	base := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 3000, Seed: 4}).Seq
	ref := append(dna.Sequence(nil), base...)
	copy(ref[2000:2100], ref[500:600]) // plant the repeat
	ix, _ := BuildIndex(ref, 16)
	raws := []RawRead{{ID: 1, Seq: append(dna.Sequence(nil), ref[500:600]...), Quals: make([]dna.Quality, 100)}}
	out := AlignReads(ix, raws, 2)
	if len(out) != 1 {
		t.Fatal("repeat read unmapped")
	}
	if out[0].Hits < 2 {
		t.Errorf("repeat read Hits = %d, want >= 2", out[0].Hits)
	}
}

func TestAlignReadsEndToEnd(t *testing.T) {
	// Simulate reads, strip their placements, re-align, and compare with
	// the simulator's ground truth.
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 60000, Seed: 5})
	dip := seqsim.MakeDiploid(ref, seqsim.DefaultDiploidSpec(6))
	spec := seqsim.DefaultReadSpec(6, 7)
	spec.MaskFraction = 0
	spec.HotspotRate = 0
	truth, _ := seqsim.SampleReads(dip, spec)

	raws := make([]RawRead, len(truth))
	truthPos := map[int64]int{}
	truthStrand := map[int64]uint8{}
	for i := range truth {
		raws[i] = RawFromAligned(&truth[i])
		truthPos[truth[i].ID] = truth[i].Pos
		truthStrand[truth[i].ID] = truth[i].Strand
	}

	ix, err := BuildIndex(ref.Seq, 16)
	if err != nil {
		t.Fatal(err)
	}
	aligned := AlignReads(ix, raws, 2)

	mapped := len(aligned)
	correct := 0
	for i := range aligned {
		a := &aligned[i]
		if truthPos[a.ID] == a.Pos && truthStrand[a.ID] == a.Strand {
			correct++
		}
		if i > 0 && aligned[i-1].Pos > a.Pos {
			t.Fatal("aligner output not position sorted")
		}
	}
	mapRate := float64(mapped) / float64(len(truth))
	accuracy := float64(correct) / float64(mapped)
	if mapRate < 0.9 {
		t.Errorf("map rate = %.2f, want >= 0.9 (2%% error reads, 2-mismatch budget)", mapRate)
	}
	if accuracy < 0.97 {
		t.Errorf("placement accuracy = %.3f, want >= 0.97", accuracy)
	}
	t.Logf("mapped %.1f%%, placed correctly %.1f%%", 100*mapRate, 100*accuracy)
}

func TestRawFromAlignedRoundTrip(t *testing.T) {
	seq, _ := dna.ParseSequence("ACGTT")
	r := reads.AlignedRead{
		ID: 9, Pos: 3, Strand: 1,
		Bases: seq,
		Quals: []dna.Quality{1, 2, 3, 4, 5},
	}
	raw := RawFromAligned(&r)
	if raw.Seq.String() != "AACGT" {
		t.Errorf("raw seq = %s, want AACGT", raw.Seq)
	}
	if raw.Quals[0] != 5 || raw.Quals[4] != 1 {
		t.Errorf("raw quals = %v", raw.Quals)
	}
	// Forward reads copy through unchanged.
	r.Strand = 0
	raw = RawFromAligned(&r)
	if raw.Seq.String() != seq.String() || raw.Quals[0] != 1 {
		t.Error("forward conversion altered the read")
	}
}

// TestAlignReadsParallelMatchesSerial pins the byte-identity guarantee
// that exempts AlignWorkers from the job fingerprint: the sharded aligner
// must reproduce the serial output exactly at every worker count,
// including counts that don't divide the read count evenly and counts
// exceeding it.
func TestAlignReadsParallelMatchesSerial(t *testing.T) {
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 40000, Seed: 11})
	dip := seqsim.MakeDiploid(ref, seqsim.DefaultDiploidSpec(11))
	truth, _ := seqsim.SampleReads(dip, seqsim.DefaultReadSpec(5, 12))
	raws := make([]RawRead, len(truth))
	for i := range truth {
		raws[i] = RawFromAligned(&truth[i])
	}
	ix, err := BuildIndex(ref.Seq, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := AlignReads(ix, raws, 2)
	for _, workers := range []int{0, 1, 2, 3, 4, 7, len(raws) + 5} {
		got := AlignReadsParallel(ix, raws, 2, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d reads, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: read %d differs:\n got %+v\nwant %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestAlignReadsNormalizesQuals: a read whose quality array disagrees with
// its sequence length (a malformed FASTQ record upstream tolerated under
// quarantine) must still come back with len(Bases) == len(Quals) — the
// invariant pipeline.ObsOf indexes on — on both strands.
func TestAlignReadsNormalizesQuals(t *testing.T) {
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 5000, Seed: 13}).Seq
	ix, _ := BuildIndex(ref, 16)
	fwd := append(dna.Sequence(nil), ref[100:180]...)
	rev := dna.Sequence(ref[300:380]).ReverseComplement()
	raws := []RawRead{
		{ID: 1, Seq: fwd, Quals: make([]dna.Quality, 10)},                    // too short
		{ID: 2, Seq: rev, Quals: make([]dna.Quality, 200)},                   // too long
		{ID: 3, Seq: append(dna.Sequence(nil), ref[500:580]...), Quals: nil}, // absent
	}
	for i := range raws {
		for j := range raws[i].Quals {
			raws[i].Quals[j] = dna.Quality(j % 40)
		}
	}
	out := AlignReads(ix, raws, 2)
	if len(out) != 3 {
		t.Fatalf("aligned %d of 3 reads", len(out))
	}
	for _, r := range out {
		if len(r.Bases) != len(r.Quals) {
			t.Errorf("read %d: len(Bases)=%d len(Quals)=%d", r.ID, len(r.Bases), len(r.Quals))
		}
	}
	// The reverse-strand read's padded qualities must be flipped like the
	// bases: input cycle j sits at output offset len-1-j.
	for _, r := range out {
		if r.ID != 2 {
			continue
		}
		if r.Strand != 1 {
			t.Fatalf("read 2 strand = %d, want 1", r.Strand)
		}
		for j := 0; j < len(r.Quals); j++ {
			if r.Quals[len(r.Quals)-1-j] != dna.Quality(j%40) {
				t.Fatalf("read 2 qual[%d] not reversed", j)
			}
		}
	}
}

func TestUnmappableReadDropped(t *testing.T) {
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "r", Length: 2000, Seed: 8}).Seq
	ix, _ := BuildIndex(ref, 16)
	junk := make(dna.Sequence, 100)
	for i := range junk {
		junk[i] = dna.Base(i % 4)
	}
	out := AlignReads(ix, []RawRead{{ID: 1, Seq: junk, Quals: make([]dna.Quality, 100)}}, 2)
	if len(out) != 0 {
		t.Errorf("junk read aligned: %+v", out)
	}
}
