package align

import (
	"bytes"
	"reflect"
	"testing"

	"gsnp/internal/dna"
	"gsnp/internal/seqsim"
)

// fuzzRef is the shared fuzz reference, built once: FuzzAlignReads
// stresses read-shaped inputs, not the reference, and rebuilding a
// k-mer index per execution would dominate the fuzzing budget.
var fuzzRef = seqsim.GenerateReference(seqsim.GenomeSpec{Name: "fz", Length: 4096, Seed: 99}).Seq

// FuzzAlignReads drives the aligner with adversarial read sets: non-ACGT
// bases (mapped by the parser the way FASTQ Ns are), empty reads, reads
// shorter than the seed, reads longer than the reference, and quality
// arrays that disagree with the sequence length. Whatever the input, the
// aligner must not panic and must uphold its output invariants — in-bounds
// position-sorted placements with matched Bases/Quals lengths — and the
// sharded variant must reproduce the serial output exactly.
func FuzzAlignReads(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTACGTACGT\nTTTT\n"), []byte("5555555555\n!"), 2, 16)
	f.Add([]byte("NNNNNNNNNNNNNNNNNNNN\nACGNACGTNNACGTACGTAC\n"), []byte(""), 1, 8)
	f.Add([]byte("ACG\n\nA\nACGTACGTACGTACGT\n"), []byte("#\n##\n###\n"), 0, 4)
	f.Add([]byte("acgtacgtacgtacgtacgtacgtacgtacgt\n"), []byte("IIIIIIII"), 3, 31)
	f.Fuzz(func(t *testing.T, seqData, qualData []byte, mm, k int) {
		if mm < 0 {
			mm = -mm
		}
		mm %= 8
		if k < 0 {
			k = -k
		}
		k %= 32 // 0 selects DefaultK
		ix, err := BuildIndex(fuzzRef, k)
		if err != nil {
			t.Fatalf("BuildIndex(k=%d): %v", k, err)
		}

		// One read per line; quality lines pair up by index and may be
		// missing, short or long relative to their sequence.
		seqLines := bytes.Split(seqData, []byte("\n"))
		qualLines := bytes.Split(qualData, []byte("\n"))
		var raws []RawRead
		for i, sl := range seqLines {
			seq, _ := dna.ParseSequence(string(sl)) // non-ACGT tolerated as A
			var quals []dna.Quality
			if i < len(qualLines) {
				for _, c := range qualLines[i] {
					quals = append(quals, dna.ClampQuality(int(c)-33))
				}
			}
			raws = append(raws, RawRead{ID: int64(i), Seq: seq, Quals: quals})
		}

		out := AlignReads(ix, raws, mm)
		for i := range out {
			r := &out[i]
			if len(r.Bases) != len(r.Quals) {
				t.Fatalf("read %d: len(Bases)=%d len(Quals)=%d", r.ID, len(r.Bases), len(r.Quals))
			}
			if r.Pos < 0 || r.Pos+len(r.Bases) > len(fuzzRef) {
				t.Fatalf("read %d: placement [%d, %d) outside reference of %d sites",
					r.ID, r.Pos, r.Pos+len(r.Bases), len(fuzzRef))
			}
			if r.Hits < 1 {
				t.Fatalf("read %d: mapped with Hits=0", r.ID)
			}
			if i > 0 && out[i-1].Pos > r.Pos {
				t.Fatalf("output not position sorted at %d", i)
			}
		}
		par := AlignReadsParallel(ix, raws, mm, 3)
		if !reflect.DeepEqual(out, par) {
			t.Fatalf("parallel output differs from serial: %d vs %d reads", len(par), len(out))
		}
	})
}
