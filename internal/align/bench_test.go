package align

import (
	"testing"

	"gsnp/internal/seqsim"
)

// BenchmarkAlignReads measures alignment-stage throughput (one op = one
// full read-set alignment over a 200 kb reference) serially and sharded,
// the FASTQ-to-VCF pipeline's added stage in BENCH_pipeline.json.
func BenchmarkAlignReads(b *testing.B) {
	ref := seqsim.GenerateReference(seqsim.GenomeSpec{Name: "bench", Length: 200_000, Seed: 21})
	dip := seqsim.MakeDiploid(ref, seqsim.DefaultDiploidSpec(21))
	truth, _ := seqsim.SampleReads(dip, seqsim.DefaultReadSpec(8, 22))
	raws := make([]RawRead, len(truth))
	for i := range truth {
		raws[i] = RawFromAligned(&truth[i])
	}
	ix, err := BuildIndex(ref.Seq, DefaultK)
	if err != nil {
		b.Fatal(err)
	}
	bases := 0
	for i := range raws {
		bases += len(raws[i].Seq)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"workers4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := AlignReadsParallel(ix, raws, DefaultMaxMismatch, bc.workers)
				if len(out) == 0 {
					b.Fatal("no reads aligned")
				}
			}
			b.SetBytes(int64(bases))
		})
	}
}
