// Package resultcache is the content-addressed result store behind
// gsnpd's repeat-job short-circuit. GSNP's outputs are byte-identical by
// construction — the determinism analyzer and the byte-identity test
// suite enforce it — so a job keyed by the sha256 of every input file
// plus the output-shaping configuration fingerprint can be served
// *exactly* from a prior run's recorded bytes: caching is not an
// approximation here, it is replay.
//
// The package provides two pieces the service composes:
//
//   - Cache[V]: a strictly byte-budgeted LRU store (least recently *hit*
//     entry evicted first) with hit/miss/eviction accounting.
//   - Flights[T]: a single-flight registry so concurrently submitted
//     identical jobs share one execution — the second submission joins
//     the first job's stream instead of spawning duplicate pool work.
//
// Both are safe for concurrent use.
package resultcache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	// Hits counts Get calls that found a live entry.
	Hits uint64 `json:"hits"`
	// Misses counts Get calls that found nothing.
	Misses uint64 `json:"misses"`
	// Puts counts successful stores (including overwrites).
	Puts uint64 `json:"puts"`
	// Evictions counts entries removed to make room under the byte budget.
	Evictions uint64 `json:"evictions"`
	// Rejected counts Put calls refused because the value alone exceeds
	// the byte budget.
	Rejected uint64 `json:"rejected"`
	// Entries is the current number of cached values.
	Entries int `json:"entries"`
	// Bytes is the current occupancy; MaxBytes the configured budget.
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// entry is one cached value on the LRU list.
type entry[V any] struct {
	key  string
	val  V
	size int64
}

// Cache is a size-bounded LRU map from content-hash keys to values.
// Values are treated as immutable once stored: callers must not mutate a
// value after Put or after receiving it from Get.
type Cache[V any] struct {
	mu  sync.Mutex
	max int64
	// ll orders entries by recency of last hit, front = most recent;
	// every element value is *entry[V].
	ll    *list.List
	index map[string]*list.Element
	bytes int64

	hits, misses, puts, evictions, rejected uint64
}

// New builds a cache holding at most maxBytes of values (as accounted by
// the sizes passed to Put). maxBytes <= 0 yields a cache that rejects
// every Put — a disabled cache that still answers Get with a miss.
func New[V any](maxBytes int64) *Cache[V] {
	return &Cache[V]{max: maxBytes, ll: list.New(), index: make(map[string]*list.Element)}
}

// Get returns the value stored under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Put stores v under key, charging size bytes against the budget and
// evicting least-recently-hit entries until it fits. A value larger than
// the whole budget is rejected (returns false) rather than flushing the
// cache for an entry that could never be retained alongside others.
// Storing an existing key replaces its value and re-charges its size.
func (c *Cache[V]) Put(key string, v V, size int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 || size > c.max || size < 0 {
		c.rejected++
		return false
	}
	if el, ok := c.index[key]; ok {
		e := el.Value.(*entry[V])
		c.bytes -= e.size
		e.val, e.size = v, size
		c.bytes += size
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&entry[V]{key: key, val: v, size: size})
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		e := back.Value.(*entry[V])
		if e.key == key {
			// The new entry itself is at the back only when it is the
			// sole entry; the size check above guarantees it fits.
			break
		}
		c.ll.Remove(back)
		delete(c.index, e.key)
		c.bytes -= e.size
		c.evictions++
	}
	c.puts++
	return true
}

// Invalidate removes key if present, returning whether it was.
func (c *Cache[V]) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
	return true
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts,
		Evictions: c.evictions, Rejected: c.rejected,
		Entries: c.ll.Len(), Bytes: c.bytes, MaxBytes: c.max,
	}
}

// Flights tracks in-progress computations by key so duplicate work can
// join the leader instead of executing again. T is the leader's token
// (for gsnpd, the leader job's registry entry).
type Flights[T any] struct {
	mu    sync.Mutex
	m     map[string]T
	joins uint64
}

// NewFlights builds an empty registry.
func NewFlights[T any]() *Flights[T] {
	return &Flights[T]{m: make(map[string]T)}
}

// Begin registers t as the leader for key if no flight is in progress,
// returning (t, false). If a leader already exists, Begin counts a join
// and returns (leader, true) — the caller should attach to the leader's
// result instead of executing.
func (f *Flights[T]) Begin(key string, t T) (T, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur, ok := f.m[key]; ok {
		f.joins++
		return cur, true
	}
	f.m[key] = t
	return t, false
}

// End closes the flight for key. The leader must call it exactly once
// when its execution resolves (success or failure), after any cache Put,
// so late submissions either join a live leader or hit the cache.
func (f *Flights[T]) End(key string) {
	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
}

// Joins returns how many submissions joined an existing flight.
func (f *Flights[T]) Joins() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.joins
}
