package resultcache

import (
	"fmt"
	"sync"
	"testing"
)

// keysLRU returns the cache's keys from most to least recently hit, via
// the internals (test-only).
func keysLRU[V any](c *Cache[V]) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[V]).key)
	}
	return out
}

func TestCacheGetPut(t *testing.T) {
	c := New[string](100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	if !c.Put("a", "va", 10) {
		t.Fatal("Put rejected a fitting value")
	}
	v, ok := c.Get("a")
	if !ok || v != "va" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Bytes != 10 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheEvictsLeastRecentlyHit pins the eviction order: the entry
// whose last *hit* is oldest goes first, not the oldest insertion.
func TestCacheEvictsLeastRecentlyHit(t *testing.T) {
	c := New[string](30)
	c.Put("a", "va", 10)
	c.Put("b", "vb", 10)
	c.Put("c", "vc", 10)
	// Touch a: b is now the least recently hit.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", "vd", 10) // must evict b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; want least-recently-hit out first")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want only b out", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 30 {
		t.Fatalf("stats %+v, want 1 eviction, 30 bytes", st)
	}
}

func TestCacheBudgetStrict(t *testing.T) {
	c := New[string](25)
	c.Put("a", "va", 10)
	c.Put("b", "vb", 10)
	// 10+10+10 > 25: storing c must evict until the budget holds.
	c.Put("c", "vc", 10)
	if st := c.Stats(); st.Bytes > 25 {
		t.Fatalf("occupancy %d exceeds budget 25", st.Bytes)
	}
	if got := keysLRU(c); len(got) != 2 {
		t.Fatalf("entries %v, want 2", got)
	}
}

func TestCacheRejectsOversizeAndDisabled(t *testing.T) {
	c := New[string](10)
	if c.Put("big", "x", 11) {
		t.Fatal("oversize value accepted")
	}
	if c.Put("neg", "x", -1) {
		t.Fatal("negative size accepted")
	}
	if st := c.Stats(); st.Rejected != 2 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Oversize rejection must not flush existing entries.
	c.Put("a", "va", 5)
	c.Put("big", "x", 11)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("rejected Put disturbed existing entries")
	}

	off := New[string](0)
	if off.Put("a", "va", 0) {
		t.Fatal("disabled cache accepted a value")
	}
}

func TestCacheReplaceRecharges(t *testing.T) {
	c := New[string](30)
	c.Put("a", "v1", 10)
	c.Put("a", "v2", 25)
	v, ok := c.Get("a")
	if !ok || v != "v2" {
		t.Fatalf("Get(a) = %q, %v, want replaced value", v, ok)
	}
	if st := c.Stats(); st.Bytes != 25 || st.Entries != 1 {
		t.Fatalf("stats %+v, want re-charged 25 bytes", st)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New[string](30)
	c.Put("a", "va", 10)
	if !c.Invalidate("a") {
		t.Fatal("Invalidate missed a live entry")
	}
	if c.Invalidate("a") {
		t.Fatal("Invalidate hit a removed entry")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Invalidate")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats %+v, want empty", st)
	}
}

func TestFlightsSingleLeader(t *testing.T) {
	f := NewFlights[int]()
	lead, joined := f.Begin("k", 1)
	if joined || lead != 1 {
		t.Fatalf("first Begin = %d, joined %v", lead, joined)
	}
	lead, joined = f.Begin("k", 2)
	if !joined || lead != 1 {
		t.Fatalf("second Begin = %d, joined %v; want join of leader 1", lead, joined)
	}
	if f.Joins() != 1 {
		t.Fatalf("joins %d, want 1", f.Joins())
	}
	f.End("k")
	lead, joined = f.Begin("k", 3)
	if joined || lead != 3 {
		t.Fatalf("Begin after End = %d, joined %v; want fresh leader", lead, joined)
	}
}

// TestConcurrency hammers the cache and flights from many goroutines so
// the race detector can audit the locking.
func TestConcurrency(t *testing.T) {
	c := New[int](1 << 10)
	f := NewFlights[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%17)
				c.Put(k, g, 64)
				c.Get(k)
				if _, joined := f.Begin(k, g); !joined {
					f.End(k)
				}
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 1<<10 {
		t.Fatalf("budget violated under concurrency: %+v", st)
	}
}

// TestConcurrentEvictionChurn keeps the cache permanently over-subscribed
// (64 hot keys, budget for 4 entries) while goroutines Put, Get and
// Invalidate concurrently, so the race detector audits the eviction path
// itself and the stats invariants hold at every interleaving.
func TestConcurrentEvictionChurn(t *testing.T) {
	const budget = 256 // 4 entries of 64 bytes
	c := New[int](budget)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				c.Put(k, i, 64)
				c.Get(k)
				if i%17 == 0 {
					c.Invalidate(k)
				}
				if i%29 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("byte budget violated under churn: %+v", st)
	}
	if st.Entries > budget/64 {
		t.Fatalf("entry count exceeds what the budget admits: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite 16x over-subscription: %+v", st)
	}
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("hit/miss accounting drifted: %+v", st)
	}
}
