package gpu

import (
	"fmt"
	"sort"
	"strings"
)

// KernelProfile aggregates the launches of one kernel name, the way a
// profiler's summary view groups invocations.
type KernelProfile struct {
	// Name is the kernel's launch name.
	Name string
	// Launches is the number of invocations.
	Launches int64
	// SimSeconds is the total simulated execution time.
	SimSeconds float64
	// Instructions, GlobalLoads and GlobalStores total the counters.
	Instructions int64
	GlobalLoads  int64
	GlobalStores int64
	// AvgCoalescing is the launch-weighted mean transactions per warp
	// memory instruction (1 = perfect, 32 = fully scattered).
	AvgCoalescing float64
}

// Profile aggregates the device's per-launch records by kernel name,
// ordered by descending simulated time.
func (d *Device) Profile() []KernelProfile {
	byName := map[string]*KernelProfile{}
	weights := map[string]float64{}
	for _, ls := range d.Launches() {
		name := ls.Name
		if name == "" {
			name = "(unnamed)"
		}
		p := byName[name]
		if p == nil {
			p = &KernelProfile{Name: name}
			byName[name] = p
		}
		p.Launches++
		p.SimSeconds += ls.Stats.SimSeconds
		p.Instructions += ls.Stats.Instructions
		p.GlobalLoads += ls.Stats.GlobalLoads
		p.GlobalStores += ls.Stats.GlobalStores
		if ls.CoalescingFactor > 0 {
			p.AvgCoalescing += ls.CoalescingFactor
			weights[name]++
		}
	}
	out := make([]KernelProfile, 0, len(byName))
	for name, p := range byName {
		if w := weights[name]; w > 0 {
			p.AvgCoalescing /= w
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SimSeconds > out[j].SimSeconds })
	return out
}

// FormatProfile renders the profile as an aligned text table, the
// simulator's equivalent of a CUDA Visual Profiler summary.
func (d *Device) FormatProfile() string {
	prof := d.Profile()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %8s %12s %12s %12s %12s %8s\n",
		"kernel", "launches", "sim time", "inst", "g_load", "g_store", "coalesce")
	sb.WriteString(strings.Repeat("-", 102))
	sb.WriteByte('\n')
	for _, p := range prof {
		fmt.Fprintf(&sb, "%-32s %8d %11.3gs %12.3g %12.3g %12.3g %7.1fx\n",
			p.Name, p.Launches, p.SimSeconds,
			float64(p.Instructions), float64(p.GlobalLoads), float64(p.GlobalStores),
			p.AvgCoalescing)
	}
	return sb.String()
}
