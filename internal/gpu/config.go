// Package gpu implements a software SIMT GPU simulator.
//
// The simulator stands in for the NVIDIA Tesla M2050 used by GSNP (Lu et
// al., ICPP 2011): Go has no practical CUDA binding, so kernels are executed
// on the host — for real, producing real results — while the simulator
// meters every memory access and arithmetic step the kernel declares, models
// memory coalescing per warp, and advances a simulated device clock using an
// analytic timing model calibrated to the bandwidth and core counts the
// paper reports for the M2050 (Section VI-A).
//
// # Execution model
//
// A kernel is a Go function invoked once per simulated thread. Threads are
// grouped into blocks (CUDA thread blocks) and warps of 32. Blocks run
// concurrently on a host worker pool; threads within a block run either
// sequentially (the fast path) or as goroutines synchronised by a cyclic
// barrier when the kernel uses Thread.Sync (needed e.g. by bitonic sort).
//
// # Accounting model
//
// Kernels access device-resident data through typed Buffer values using
// Ld/St, shared memory through the Thread shared-array accessors, and
// constant memory through ConstBuffer. Each access increments per-thread
// counters that are merged into per-launch and per-device statistics —
// instructions, global loads/stores (and bytes), shared loads/stores,
// constant loads. These are the quantities CUDA Visual Profiler reports and
// the paper lists in Table III. Arithmetic work is declared with
// Thread.Exec(n), mirroring how a profiler counts issued instructions.
//
// Coalescing is estimated by sampling: in the first block of every launch
// each thread records the addresses of its global accesses; the k-th access
// of the 32 lanes of a warp is treated as one SIMT memory instruction, and
// the number of distinct 128-byte segments it touches is the number of
// memory transactions it costs. The sampled transactions-per-access ratio
// extrapolates to the whole launch, exactly as a sampling profiler would.
//
// # Timing model
//
// A launch's simulated time is max(compute, memory) + launch overhead,
// where compute = thread-instructions / (cores x clock) and memory =
// transactions x 128B / peak bandwidth. The published M2050 figures fall
// out of this model: a fully coalesced 4-byte access per lane moves one
// 128-byte transaction per warp (82 GB/s effective), while a fully
// scattered one moves 32 transactions for the same 128 useful bytes
// (82/32 = 2.6 GB/s, matching the 3.2 GB/s random-access measurement of
// the paper within model accuracy). Host/device copies advance the clock
// at PCIe bandwidth.
package gpu

// Config describes the simulated device.
type Config struct {
	// Name identifies the device in reports.
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoresPerSM is the number of scalar cores per SM.
	CoresPerSM int
	// ClockHz is the core clock rate.
	ClockHz float64
	// WarpSize is the SIMT width. All presets use 32.
	WarpSize int
	// SharedMemPerBlock is the shared-memory capacity available to one
	// block, in bytes.
	SharedMemPerBlock int
	// ConstMemBytes is the total constant-memory capacity.
	ConstMemBytes int
	// GlobalMemBytes is the device memory capacity.
	GlobalMemBytes int64
	// PeakBandwidth is the global-memory bandwidth for fully coalesced
	// access, in bytes/second.
	PeakBandwidth float64
	// SegmentBytes is the memory transaction size (128 B on Fermi).
	SegmentBytes int
	// PCIeBandwidth is the host<->device copy bandwidth in bytes/second.
	PCIeBandwidth float64
	// LaunchOverhead is the fixed simulated cost of one kernel launch, in
	// seconds.
	LaunchOverhead float64
	// FastMath selects the device's native math functions for
	// Thread.Log10, which differ from the host libm in the last bits —
	// the CPU/GPU inconsistency discussed in Section IV-G of the paper.
	// When false, Log10 is bit-identical to math.Log10.
	FastMath bool
}

// M2050 returns the configuration of the NVIDIA Tesla M2050 used in the
// paper's evaluation: 448 cores (14 SMs x 32), 1.15 GHz, 3 GB memory,
// 48 KB shared memory per block, 64 KB constant memory, measured 82 GB/s
// coalesced bandwidth.
func M2050() Config {
	return Config{
		Name:              "Tesla M2050 (simulated)",
		SMs:               14,
		CoresPerSM:        32,
		ClockHz:           1.15e9,
		WarpSize:          32,
		SharedMemPerBlock: 48 << 10,
		ConstMemBytes:     64 << 10,
		GlobalMemBytes:    3 << 30,
		PeakBandwidth:     82e9,
		SegmentBytes:      128,
		PCIeBandwidth:     5e9,
		LaunchOverhead:    5e-6,
	}
}

// C2050 returns the Tesla C2050 configuration — the M2050's workstation
// sibling with ECC overhead lowering effective bandwidth.
func C2050() Config {
	c := M2050()
	c.Name = "Tesla C2050 (simulated)"
	c.PeakBandwidth = 72e9
	return c
}

// GTX280 returns a previous-generation (GT200) configuration: fewer cores,
// no L1/L2 for global memory, smaller shared memory per block. Useful for
// sensitivity studies of the timing model.
func GTX280() Config {
	return Config{
		Name:              "GeForce GTX 280 (simulated)",
		SMs:               30,
		CoresPerSM:        8,
		ClockHz:           1.30e9,
		WarpSize:          32,
		SharedMemPerBlock: 16 << 10,
		ConstMemBytes:     64 << 10,
		GlobalMemBytes:    1 << 30,
		PeakBandwidth:     142e9, // wide GDDR3 bus, but no cache hierarchy
		SegmentBytes:      128,
		PCIeBandwidth:     3e9,
		LaunchOverhead:    8e-6,
	}
}

// TotalCores returns the number of scalar cores on the device.
func (c Config) TotalCores() int { return c.SMs * c.CoresPerSM }

// validate fills defaults for zero fields so a partially specified Config
// (common in tests) behaves sensibly.
func (c Config) withDefaults() Config {
	d := M2050()
	if c.Name == "" {
		c.Name = "generic (simulated)"
	}
	if c.SMs == 0 {
		c.SMs = d.SMs
	}
	if c.CoresPerSM == 0 {
		c.CoresPerSM = d.CoresPerSM
	}
	if c.ClockHz == 0 {
		c.ClockHz = d.ClockHz
	}
	if c.WarpSize == 0 {
		c.WarpSize = d.WarpSize
	}
	if c.SharedMemPerBlock == 0 {
		c.SharedMemPerBlock = d.SharedMemPerBlock
	}
	if c.ConstMemBytes == 0 {
		c.ConstMemBytes = d.ConstMemBytes
	}
	if c.GlobalMemBytes == 0 {
		c.GlobalMemBytes = d.GlobalMemBytes
	}
	if c.PeakBandwidth == 0 {
		c.PeakBandwidth = d.PeakBandwidth
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = d.SegmentBytes
	}
	if c.PCIeBandwidth == 0 {
		c.PCIeBandwidth = d.PCIeBandwidth
	}
	if c.LaunchOverhead == 0 {
		c.LaunchOverhead = d.LaunchOverhead
	}
	return c
}
