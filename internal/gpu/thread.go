package gpu

import "math"

// Thread is the execution context passed to a kernel, one per simulated
// thread. Its exported fields mirror the CUDA built-ins: Block is
// blockIdx.x, Lane is threadIdx.x, BlockDim/GridDim the launch geometry.
type Thread struct {
	// Dev is the device running the kernel.
	Dev *Device
	// Block is the block index within the grid.
	Block int
	// Lane is the thread index within the block.
	Lane int
	// BlockDim is the number of threads per block.
	BlockDim int
	// GridDim is the number of blocks.
	GridDim int

	// Reg models two per-lane registers for PhasedKernel bodies: register
	// state survives barriers on real hardware, and phased kernels need a
	// place to carry values across phase boundaries without re-reading
	// memory (which would change the metered counts). Reads and writes
	// are free, like register traffic.
	Reg [2]uint64

	block  *blockRT
	sample []int64 // sampled global-access addresses (block 0 only)

	instr, gld, gst, gldB, gstB, sld, sst, cld int64
}

// GlobalID returns the flat thread id Block*BlockDim + Lane.
func (t *Thread) GlobalID() int { return t.Block*t.BlockDim + t.Lane }

// Warp returns the warp index of the thread within its block.
func (t *Thread) Warp() int { return t.Lane / t.Dev.cfg.WarpSize }

// Exec declares n arithmetic instructions. Kernels call it to account for
// the compute work between memory operations, mirroring what a hardware
// profiler's issued-instruction counter would observe.
func (t *Thread) Exec(n int) { t.instr += int64(n) }

// syncCost is the issue-slot cost charged per thread per barrier,
// modelling the pipeline drain and re-convergence latency of
// __syncthreads (roughly 16 cycles of lost issue on Fermi-class parts).
const syncCost = 16

// Sync is the block-wide barrier (__syncthreads). The launch must have been
// configured with LaunchConfig.Sync; calling Sync in an asynchronous launch
// panics, because sequential thread execution cannot honour a barrier.
func (t *Thread) Sync() {
	if t.block.bar == nil {
		panic("gpu: Thread.Sync called in a launch without LaunchConfig.Sync")
	}
	t.instr += syncCost
	t.block.bar.await()
}

// SharedF64 reads element i of the block's shared float64 array.
func (t *Thread) SharedF64(i int) float64 {
	t.instr++
	t.sld++
	return t.block.sharedF64[i]
}

// SetSharedF64 writes element i of the block's shared float64 array.
func (t *Thread) SetSharedF64(i int, v float64) {
	t.instr++
	t.sst++
	t.block.sharedF64[i] = v
}

// AddSharedF64 accumulates v into element i (one load + one store, as the
// paper counts the ten read-modify-write updates of type_likely).
func (t *Thread) AddSharedF64(i int, v float64) {
	t.instr++
	t.sld++
	t.sst++
	t.block.sharedF64[i] += v
}

// SharedU32 reads element i of the block's shared uint32 array.
func (t *Thread) SharedU32(i int) uint32 {
	t.instr++
	t.sld++
	return t.block.sharedU32[i]
}

// SetSharedU32 writes element i of the block's shared uint32 array.
func (t *Thread) SetSharedU32(i int, v uint32) {
	t.instr++
	t.sst++
	t.block.sharedU32[i] = v
}

// Log10 is the device base-10 logarithm. With Config.FastMath it emulates
// the GPU's native implementation, which differs from the host libm in the
// trailing bits — the source of the ~0.1% result mismatches Section IV-G
// describes; otherwise it is bit-identical to math.Log10. Either way it
// costs the equivalent of 8 arithmetic instructions.
func (t *Thread) Log10(x float64) float64 {
	t.instr += 8
	if t.Dev.cfg.FastMath {
		return fastLog10(x)
	}
	return math.Log10(x)
}

// fastLog10 emulates a less accurate device intrinsic: log2(x)/log2(10)
// computed in a different association order than libm, producing last-ULP
// differences for many inputs.
func fastLog10(x float64) float64 {
	return math.Log2(x) * (1 / math.Log2(10))
}

// recordGlobal meters one global access of size bytes at logical address
// addr.
func (t *Thread) recordGlobal(addr int64, size int64, store bool) {
	t.instr++
	if store {
		t.gst++
		t.gstB += size
	} else {
		t.gld++
		t.gldB += size
	}
	if t.sample != nil && len(t.sample) < 1<<16 {
		t.sample = append(t.sample, addr)
	}
}

// recordConst meters one constant-memory load.
func (t *Thread) recordConst() {
	t.instr++
	t.cld++
}
