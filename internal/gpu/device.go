package gpu

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Device is a simulated GPU. It is safe for concurrent use; launches and
// copies serialise their accounting on an internal mutex while kernel
// threads execute in parallel on the host.
type Device struct {
	cfg Config

	mu        sync.Mutex
	totals    Stats
	simTime   float64
	allocated int64
	constUsed int
	nextBufID int64
	launches  []LaunchStats
}

// NewDevice creates a simulated device. Zero fields of cfg are filled with
// M2050 defaults.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg.withDefaults()}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the cumulative counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.totals
	s.SimSeconds = d.simTime
	return s
}

// ResetStats zeroes the cumulative counters and the simulated clock.
// Allocations are unaffected.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.totals = Stats{}
	d.simTime = 0
	d.launches = nil
}

// SimTime returns the simulated device-clock time consumed so far, in
// seconds.
func (d *Device) SimTime() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simTime
}

// AllocatedBytes returns the current device-memory footprint.
func (d *Device) AllocatedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// Launches returns the per-launch records accumulated since the last
// ResetStats, oldest first.
func (d *Device) Launches() []LaunchStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]LaunchStats, len(d.launches))
	copy(out, d.launches)
	return out
}

// LaunchConfig describes the geometry and resources of one kernel launch.
type LaunchConfig struct {
	// Name labels the launch in profiler output.
	Name string
	// Grid is the number of blocks; Block the threads per block.
	Grid, Block int
	// SharedF64 and SharedU32 request per-block shared-memory arrays of
	// the given element counts. Their combined byte size must fit in
	// Config.SharedMemPerBlock.
	SharedF64 int
	SharedU32 int
	// Sync must be set when the kernel calls Thread.Sync. Synchronous
	// launches run each block's threads as goroutines joined by a cyclic
	// barrier; asynchronous launches run them sequentially (much faster
	// on the host).
	Sync bool
}

// Kernel is the body executed once per simulated thread.
type Kernel func(t *Thread)

// Launch executes the kernel over cfg.Grid x cfg.Block threads, meters it,
// advances the simulated clock and returns the per-launch statistics.
func (d *Device) Launch(cfg LaunchConfig, kernel Kernel) (LaunchStats, error) {
	if cfg.Grid <= 0 || cfg.Block <= 0 {
		return LaunchStats{}, fmt.Errorf("gpu: launch %q: invalid geometry %dx%d", cfg.Name, cfg.Grid, cfg.Block)
	}
	if cfg.Block%d.cfg.WarpSize != 0 && cfg.Block > d.cfg.WarpSize {
		// Allowed on real hardware but wasteful; we only require that a
		// block is either a multiple of the warp size or smaller than one
		// warp, which keeps the warp decomposition unambiguous.
		return LaunchStats{}, fmt.Errorf("gpu: launch %q: block size %d is neither <= warp size nor a multiple of it", cfg.Name, cfg.Block)
	}
	if shBytes := cfg.SharedF64*8 + cfg.SharedU32*4; shBytes > d.cfg.SharedMemPerBlock {
		return LaunchStats{}, fmt.Errorf("gpu: launch %q: %d B shared memory requested, %d B available", cfg.Name, shBytes, d.cfg.SharedMemPerBlock)
	}

	acc := &launchAccumulator{}
	// Block 0 is the coalescing sample, as in a sampling profiler.
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Grid {
		workers = cfg.Grid
	}
	blockCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for bid := range blockCh {
				func() {
					// Kernel panics must surface on the launching
					// goroutine, not kill an anonymous worker.
					defer func() {
						if r := recover(); r != nil {
							acc.mu.Lock()
							if acc.panicked == nil {
								acc.panicked = r
							}
							acc.mu.Unlock()
						}
					}()
					d.runBlock(cfg, kernel, bid, acc)
				}()
			}
		}()
	}
	for bid := 0; bid < cfg.Grid; bid++ {
		blockCh <- bid
	}
	close(blockCh)
	wg.Wait()
	if acc.panicked != nil {
		panic(acc.panicked)
	}

	ls := d.finishLaunch(cfg, acc)
	return ls, nil
}

// MustLaunch is Launch but panics on configuration errors; convenient for
// kernels whose geometry is computed and known valid.
func (d *Device) MustLaunch(cfg LaunchConfig, kernel Kernel) LaunchStats {
	ls, err := d.Launch(cfg, kernel)
	if err != nil {
		panic(err)
	}
	return ls
}

// launchAccumulator gathers counters and the coalescing sample across
// blocks of a single launch.
type launchAccumulator struct {
	mu           sync.Mutex
	stats        Stats
	sampleTrans  int64 // transactions observed in the sample block
	sampleWarpMI int64 // warp memory instructions observed in the sample block
	panicked     any   // first kernel panic, re-raised by Launch
}

func (a *launchAccumulator) add(s Stats, trans, warpMI int64) {
	a.mu.Lock()
	a.stats.Add(s)
	a.sampleTrans += trans
	a.sampleWarpMI += warpMI
	a.mu.Unlock()
}

// runBlock executes one block of the launch.
func (d *Device) runBlock(cfg LaunchConfig, kernel Kernel, bid int, acc *launchAccumulator) {
	rt := &blockRT{
		dev:       d,
		sharedF64: make([]float64, cfg.SharedF64),
		sharedU32: make([]uint32, cfg.SharedU32),
	}
	sampling := bid == 0
	threads := make([]*Thread, cfg.Block)
	for l := 0; l < cfg.Block; l++ {
		t := &Thread{
			Dev:      d,
			Block:    bid,
			Lane:     l,
			BlockDim: cfg.Block,
			GridDim:  cfg.Grid,
			block:    rt,
		}
		if sampling {
			t.sample = make([]int64, 0, 256)
		}
		threads[l] = t
	}

	if cfg.Sync {
		rt.bar = newBarrier(cfg.Block)
		var wg sync.WaitGroup
		wg.Add(cfg.Block)
		for _, t := range threads {
			go func(t *Thread) {
				defer wg.Done()
				defer rt.bar.leave()
				defer func() {
					if r := recover(); r != nil {
						acc.mu.Lock()
						if acc.panicked == nil {
							acc.panicked = r
						}
						acc.mu.Unlock()
					}
				}()
				kernel(t)
			}(t)
		}
		wg.Wait()
	} else {
		for _, t := range threads {
			kernel(t)
		}
	}

	var s Stats
	for _, t := range threads {
		s.Instructions += t.instr
		s.GlobalLoads += t.gld
		s.GlobalStores += t.gst
		s.GlobalLoadBytes += t.gldB
		s.GlobalStoreBytes += t.gstB
		s.SharedLoads += t.sld
		s.SharedStores += t.sst
		s.ConstLoads += t.cld
	}
	// SIMT issue accounting: a warp occupies its issue slots for as long
	// as its longest-running lane.
	ws := d.cfg.WarpSize
	for w0 := 0; w0 < len(threads); w0 += ws {
		w1 := w0 + ws
		if w1 > len(threads) {
			w1 = len(threads)
		}
		var maxInstr int64
		for _, t := range threads[w0:w1] {
			if t.instr > maxInstr {
				maxInstr = t.instr
			}
		}
		s.WarpInstructions += maxInstr
	}
	var trans, warpMI int64
	if sampling {
		trans, warpMI = d.coalesce(threads)
	}
	acc.add(s, trans, warpMI)
}

// coalesce analyses the sampled global-access address streams of one block.
// The k-th access of each lane in a warp forms one SIMT memory instruction;
// its cost is the number of distinct SegmentBytes-sized segments touched.
func (d *Device) coalesce(threads []*Thread) (transactions, warpMemInst int64) {
	ws := d.cfg.WarpSize
	seg := int64(d.cfg.SegmentBytes)
	for w0 := 0; w0 < len(threads); w0 += ws {
		w1 := w0 + ws
		if w1 > len(threads) {
			w1 = len(threads)
		}
		maxLen := 0
		for _, t := range threads[w0:w1] {
			if len(t.sample) > maxLen {
				maxLen = len(t.sample)
			}
		}
		var segs [64]int64 // distinct segments of one warp instruction
		for k := 0; k < maxLen; k++ {
			n := 0
			for _, t := range threads[w0:w1] {
				if k >= len(t.sample) {
					continue
				}
				s := t.sample[k] / seg
				dup := false
				for i := 0; i < n; i++ {
					if segs[i] == s {
						dup = true
						break
					}
				}
				if !dup {
					segs[n] = s
					n++
				}
			}
			if n > 0 {
				transactions += int64(n)
				warpMemInst++
			}
		}
	}
	return transactions, warpMemInst
}

// finishLaunch extrapolates the coalescing sample, applies the timing model
// and commits the launch to the device totals.
func (d *Device) finishLaunch(cfg LaunchConfig, acc *launchAccumulator) LaunchStats {
	s := acc.stats
	s.Kernels = 1
	ws := float64(d.cfg.WarpSize)

	accesses := s.GlobalLoads + s.GlobalStores
	factor := 0.0
	if accesses > 0 {
		if acc.sampleWarpMI > 0 {
			factor = float64(acc.sampleTrans) / float64(acc.sampleWarpMI)
		} else {
			// No sample (block 0 made no global accesses but others did):
			// assume the worst case, full scatter.
			factor = ws
		}
		s.GlobalTransactions = int64(math.Ceil(float64(accesses) / ws * factor))
	}

	// Compute leg: every SM issues one warp instruction per cycle, so the
	// device retires SMs warp-instructions per cycle. For perfectly
	// balanced warps this equals thread-instructions / total cores; for
	// divergent or imbalanced warps it is correctly larger.
	compute := float64(s.WarpInstructions) / (float64(d.cfg.SMs) * d.cfg.ClockHz)
	memory := float64(s.GlobalTransactions) * float64(d.cfg.SegmentBytes) / d.cfg.PeakBandwidth
	s.SimSeconds = math.Max(compute, memory) + d.cfg.LaunchOverhead

	ls := LaunchStats{
		Name:             cfg.Name,
		Grid:             cfg.Grid,
		Block:            cfg.Block,
		Stats:            s,
		CoalescingFactor: factor,
		ComputeSeconds:   compute,
		MemorySeconds:    memory,
	}

	d.mu.Lock()
	d.totals.Add(s)
	d.simTime += s.SimSeconds
	d.launches = append(d.launches, ls)
	d.mu.Unlock()
	return ls
}

// advanceCopy accounts for a host<->device copy of n bytes.
func (d *Device) advanceCopy(n int64, toDevice bool) {
	t := float64(n) / d.cfg.PCIeBandwidth
	d.mu.Lock()
	if toDevice {
		d.totals.H2DBytes += n
	} else {
		d.totals.D2HBytes += n
	}
	d.simTime += t
	d.totals.SimSeconds += t
	d.mu.Unlock()
}

// blockRT is the per-block runtime state: shared memory and the barrier.
type blockRT struct {
	dev       *Device
	sharedF64 []float64
	sharedU32 []uint32
	bar       *barrier
}

// barrier is a cyclic barrier that tolerates threads exiting early (a
// returning thread leaves the party set, as CUDA requires __syncthreads to
// be reached by all *remaining* threads of the block in our relaxed model).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting >= b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *barrier) leave() {
	b.mu.Lock()
	b.parties--
	if b.waiting >= b.parties && b.parties > 0 {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}
