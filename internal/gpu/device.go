package gpu

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Device is a simulated GPU. It is safe for concurrent use; launches and
// copies serialise their accounting on an internal mutex while kernel
// threads execute in parallel on the host.
type Device struct {
	cfg Config

	mu        sync.Mutex
	totals    Stats
	simTime   float64
	allocated int64
	constUsed int
	nextBufID int64
	launches  []LaunchStats

	// gen tags launches with the stats generation they started under.
	// ResetStats advances it, and finishLaunch discards the device-total
	// commit of a launch from an older generation, so counters reset
	// between launches can never be polluted by in-flight work.
	gen uint64

	// scratch and bufFree are the device-side arena of the recycle
	// component: scratch recycles per-block execution state (thread
	// contexts, shared memory, sample storage) across launches, and
	// bufFree recycles buffer backing storage keyed by element size.
	// Steady-state launches and allocations touch neither the Go heap
	// nor the garbage collector.
	scratch []*blockScratch
	bufFree map[int64][]any
}

// NewDevice creates a simulated device. Zero fields of cfg are filled with
// M2050 defaults.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg.withDefaults()}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the cumulative counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.totals
	s.SimSeconds = d.simTime
	return s
}

// ResetStats zeroes the cumulative counters and the simulated clock.
// Allocations are unaffected. A launch in flight when ResetStats is called
// still returns its own LaunchStats but does not commit to the device
// totals: the reset defines a clean measurement origin.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.totals = Stats{}
	d.simTime = 0
	d.launches = d.launches[:0]
	d.gen++
}

// SimTime returns the simulated device-clock time consumed so far, in
// seconds.
func (d *Device) SimTime() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simTime
}

// AllocatedBytes returns the current device-memory footprint.
func (d *Device) AllocatedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// Launches returns the per-launch records accumulated since the last
// ResetStats, oldest first.
func (d *Device) Launches() []LaunchStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]LaunchStats, len(d.launches))
	copy(out, d.launches)
	return out
}

// LaunchConfig describes the geometry and resources of one kernel launch.
type LaunchConfig struct {
	// Name labels the launch in profiler output.
	Name string
	// Grid is the number of blocks; Block the threads per block.
	Grid, Block int
	// SharedF64 and SharedU32 request per-block shared-memory arrays of
	// the given element counts. Their combined byte size must fit in
	// Config.SharedMemPerBlock.
	SharedF64 int
	SharedU32 int
	// Sync must be set when the kernel calls Thread.Sync. Synchronous
	// launches run each block's threads as goroutines joined by a cyclic
	// barrier; asynchronous launches run them sequentially (much faster
	// on the host). Kernels whose barrier structure is static should use
	// LaunchPhased instead, which needs no goroutines at all.
	Sync bool
}

// Kernel is the body executed once per simulated thread.
type Kernel func(t *Thread)

// PhasedKernel is the body of a barrier-structured kernel run by
// LaunchPhased: it is invoked once per thread per phase, with an implicit
// block-wide barrier between consecutive phases. Returning true means the
// lane reaches the barrier at the end of the phase (charged exactly like a
// Thread.Sync call); returning false retires the lane after the phase's
// work, with no further invocations or barrier charges — the analogue of
// returning from a Kernel body before the next __syncthreads. Per-lane
// state that must survive a barrier lives in Thread.Reg, the simulated
// register file. Lanes run sequentially within a phase, so a phased launch
// spawns no per-thread goroutines and allocates nothing in steady state.
type PhasedKernel func(t *Thread, phase int) bool

// Launch executes the kernel over cfg.Grid x cfg.Block threads, meters it,
// advances the simulated clock and returns the per-launch statistics.
func (d *Device) Launch(cfg LaunchConfig, kernel Kernel) (LaunchStats, error) {
	return d.launch(cfg, kernel, nil, 0)
}

// MustLaunch is Launch but panics on configuration errors; convenient for
// kernels whose geometry is computed and known valid.
func (d *Device) MustLaunch(cfg LaunchConfig, kernel Kernel) LaunchStats {
	ls, err := d.Launch(cfg, kernel)
	if err != nil {
		panic(err)
	}
	return ls
}

// LaunchPhased executes a barrier-structured kernel as a sequence of
// phases with an implicit block-wide barrier between them. Metering is
// identical to the equivalent Launch with LaunchConfig.Sync — each lane
// pays the Sync issue cost per barrier it reaches — but execution is
// sequential per block: no goroutines, no host barrier, no allocations.
func (d *Device) LaunchPhased(cfg LaunchConfig, phases int, kernel PhasedKernel) (LaunchStats, error) {
	if phases < 1 {
		return LaunchStats{}, fmt.Errorf("gpu: launch %q: phased launch needs at least 1 phase, got %d", cfg.Name, phases)
	}
	return d.launch(cfg, nil, kernel, phases)
}

// MustLaunchPhased is LaunchPhased but panics on configuration errors.
func (d *Device) MustLaunchPhased(cfg LaunchConfig, phases int, kernel PhasedKernel) LaunchStats {
	ls, err := d.LaunchPhased(cfg, phases, kernel)
	if err != nil {
		panic(err)
	}
	return ls
}

// launch is the common body of Launch and LaunchPhased: exactly one of
// kernel and phased is non-nil.
func (d *Device) launch(cfg LaunchConfig, kernel Kernel, phased PhasedKernel, phases int) (LaunchStats, error) {
	if cfg.Grid <= 0 || cfg.Block <= 0 {
		return LaunchStats{}, fmt.Errorf("gpu: launch %q: invalid geometry %dx%d", cfg.Name, cfg.Grid, cfg.Block)
	}
	if cfg.Block%d.cfg.WarpSize != 0 && cfg.Block > d.cfg.WarpSize {
		// Allowed on real hardware but wasteful; we only require that a
		// block is either a multiple of the warp size or smaller than one
		// warp, which keeps the warp decomposition unambiguous.
		return LaunchStats{}, fmt.Errorf("gpu: launch %q: block size %d is neither <= warp size nor a multiple of it", cfg.Name, cfg.Block)
	}
	if shBytes := cfg.SharedF64*8 + cfg.SharedU32*4; shBytes > d.cfg.SharedMemPerBlock {
		return LaunchStats{}, fmt.Errorf("gpu: launch %q: %d B shared memory requested, %d B available", cfg.Name, shBytes, d.cfg.SharedMemPerBlock)
	}

	d.mu.Lock()
	gen := d.gen
	d.mu.Unlock()

	var acc launchAccumulator
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Grid {
		workers = cfg.Grid
	}
	if workers <= 1 {
		// Single-worker fast path: blocks run inline on the launching
		// goroutine with one recycled scratch — the steady state on a
		// single-CPU host is completely goroutine- and allocation-free.
		sc := d.getScratch()
		for bid := 0; bid < cfg.Grid; bid++ {
			d.runBlockCaught(cfg, kernel, phased, phases, bid, &acc, sc)
		}
		d.putScratch(sc)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sc := d.getScratch()
				defer d.putScratch(sc)
				for {
					bid := int(next.Add(1)) - 1
					if bid >= cfg.Grid {
						return
					}
					d.runBlockCaught(cfg, kernel, phased, phases, bid, &acc, sc)
				}
			}()
		}
		wg.Wait()
	}
	if acc.panicked != nil {
		panic(acc.panicked)
	}

	ls := d.finishLaunch(cfg, &acc, gen)
	return ls, nil
}

// launchAccumulator gathers counters and the coalescing sample across
// blocks of a single launch.
type launchAccumulator struct {
	mu           sync.Mutex
	stats        Stats
	sampleTrans  int64 // transactions observed in the sample block
	sampleWarpMI int64 // warp memory instructions observed in the sample block
	panicked     any   // first kernel panic, re-raised by Launch
}

func (a *launchAccumulator) add(s Stats, trans, warpMI int64) {
	a.mu.Lock()
	a.stats.Add(s)
	a.sampleTrans += trans
	a.sampleWarpMI += warpMI
	a.mu.Unlock()
}

// blockScratch is the recycled per-block execution state: the thread
// contexts, shared-memory arrays, coalescing-sample storage (block 0) and
// the legacy sync barrier. One scratch serves one host worker at a time
// and returns to the device free-list after the launch, so steady-state
// launches allocate nothing. Everything a scratch owns is valid only while
// its block runs — nothing may escape the launch.
type blockScratch struct {
	rt      blockRT
	threads []Thread
	samples [][]int64
	retired []bool
	bar     *barrier
}

// getScratch pops a recycled block scratch, or makes an empty one.
func (d *Device) getScratch() *blockScratch {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.scratch); n > 0 {
		sc := d.scratch[n-1]
		d.scratch[n-1] = nil
		d.scratch = d.scratch[:n-1]
		return sc
	}
	return &blockScratch{}
}

// putScratch returns a scratch to the free-list for the next launch.
func (d *Device) putScratch(sc *blockScratch) {
	d.mu.Lock()
	d.scratch = append(d.scratch, sc)
	d.mu.Unlock()
}

// grow returns s with length n, reusing capacity when possible. Contents
// are unspecified; callers clear or overwrite as their semantics require.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// runBlockCaught runs one block, trapping a kernel panic in acc so it
// surfaces on the launching goroutine after the remaining blocks drain,
// not on an anonymous worker.
func (d *Device) runBlockCaught(cfg LaunchConfig, kernel Kernel, phased PhasedKernel, phases, bid int, acc *launchAccumulator, sc *blockScratch) {
	defer func() {
		if r := recover(); r != nil {
			acc.mu.Lock()
			if acc.panicked == nil {
				acc.panicked = r
			}
			acc.mu.Unlock()
		}
	}()
	d.runBlock(cfg, kernel, phased, phases, bid, acc, sc)
}

// runBlock executes one block of the launch on the recycled scratch.
func (d *Device) runBlock(cfg LaunchConfig, kernel Kernel, phased PhasedKernel, phases, bid int, acc *launchAccumulator, sc *blockScratch) {
	rt := &sc.rt
	rt.dev = d
	// Blocks observe freshly zeroed shared memory, exactly as the
	// per-block make calls used to guarantee.
	rt.sharedF64 = grow(rt.sharedF64, cfg.SharedF64)
	clear(rt.sharedF64)
	rt.sharedU32 = grow(rt.sharedU32, cfg.SharedU32)
	clear(rt.sharedU32)

	sc.threads = grow(sc.threads, cfg.Block)
	threads := sc.threads
	// Block 0 is the coalescing sample, as in a sampling profiler.
	sampling := bid == 0
	if sampling {
		for len(sc.samples) < cfg.Block {
			sc.samples = append(sc.samples, nil)
		}
	}
	for l := range threads {
		t := &threads[l]
		*t = Thread{Dev: d, Block: bid, Lane: l, BlockDim: cfg.Block, GridDim: cfg.Grid, block: rt}
		if sampling {
			if sc.samples[l] == nil {
				sc.samples[l] = make([]int64, 0, 256)
			}
			t.sample = sc.samples[l][:0]
		}
	}

	switch {
	case phased != nil:
		// Sequential lockstep: all live lanes run phase p before any lane
		// sees phase p+1 — the barrier is the iteration order. A lane
		// returning true pays the barrier cost it just arrived at; a lane
		// returning false retires silently, like a kernel body returning.
		sc.retired = grow(sc.retired, cfg.Block)
		clear(sc.retired)
		alive := cfg.Block
		for p := 0; p < phases && alive > 0; p++ {
			for l := range threads {
				if sc.retired[l] {
					continue
				}
				t := &threads[l]
				if phased(t, p) {
					t.instr += syncCost
				} else {
					sc.retired[l] = true
					alive--
				}
			}
		}
	case cfg.Sync:
		if sc.bar == nil {
			sc.bar = newBarrier(cfg.Block)
		} else {
			sc.bar.reset(cfg.Block)
		}
		rt.bar = sc.bar
		var wg sync.WaitGroup
		wg.Add(cfg.Block)
		for l := range threads {
			go func(t *Thread) {
				defer wg.Done()
				defer rt.bar.leave()
				defer func() {
					if r := recover(); r != nil {
						acc.mu.Lock()
						if acc.panicked == nil {
							acc.panicked = r
						}
						acc.mu.Unlock()
					}
				}()
				kernel(t)
			}(&threads[l])
		}
		wg.Wait()
		rt.bar = nil
	default:
		for l := range threads {
			kernel(&threads[l])
		}
	}

	var s Stats
	for l := range threads {
		t := &threads[l]
		s.Instructions += t.instr
		s.GlobalLoads += t.gld
		s.GlobalStores += t.gst
		s.GlobalLoadBytes += t.gldB
		s.GlobalStoreBytes += t.gstB
		s.SharedLoads += t.sld
		s.SharedStores += t.sst
		s.ConstLoads += t.cld
	}
	// SIMT issue accounting: a warp occupies its issue slots for as long
	// as its longest-running lane.
	ws := d.cfg.WarpSize
	for w0 := 0; w0 < len(threads); w0 += ws {
		w1 := w0 + ws
		if w1 > len(threads) {
			w1 = len(threads)
		}
		var maxInstr int64
		for l := w0; l < w1; l++ {
			if threads[l].instr > maxInstr {
				maxInstr = threads[l].instr
			}
		}
		s.WarpInstructions += maxInstr
	}
	var trans, warpMI int64
	if sampling {
		trans, warpMI = d.coalesce(threads)
		for l := range threads {
			// Keep any capacity the sample streams grew for the next
			// sampled block.
			sc.samples[l] = threads[l].sample
		}
	}
	acc.add(s, trans, warpMI)
}

// coalesce analyses the sampled global-access address streams of one block.
// The k-th access of each lane in a warp forms one SIMT memory instruction;
// its cost is the number of distinct SegmentBytes-sized segments touched.
func (d *Device) coalesce(threads []Thread) (transactions, warpMemInst int64) {
	ws := d.cfg.WarpSize
	seg := int64(d.cfg.SegmentBytes)
	for w0 := 0; w0 < len(threads); w0 += ws {
		w1 := w0 + ws
		if w1 > len(threads) {
			w1 = len(threads)
		}
		maxLen := 0
		for l := w0; l < w1; l++ {
			if len(threads[l].sample) > maxLen {
				maxLen = len(threads[l].sample)
			}
		}
		var segs [64]int64 // distinct segments of one warp instruction
		for k := 0; k < maxLen; k++ {
			n := 0
			for l := w0; l < w1; l++ {
				if k >= len(threads[l].sample) {
					continue
				}
				s := threads[l].sample[k] / seg
				dup := false
				for i := 0; i < n; i++ {
					if segs[i] == s {
						dup = true
						break
					}
				}
				if !dup {
					segs[n] = s
					n++
				}
			}
			if n > 0 {
				transactions += int64(n)
				warpMemInst++
			}
		}
	}
	return transactions, warpMemInst
}

// finishLaunch extrapolates the coalescing sample, applies the timing model
// and commits the launch to the device totals — unless a ResetStats landed
// after the launch started, in which case the totals commit is dropped and
// only the per-launch record is returned to the caller.
func (d *Device) finishLaunch(cfg LaunchConfig, acc *launchAccumulator, gen uint64) LaunchStats {
	s := acc.stats
	s.Kernels = 1
	ws := float64(d.cfg.WarpSize)

	accesses := s.GlobalLoads + s.GlobalStores
	factor := 0.0
	if accesses > 0 {
		if acc.sampleWarpMI > 0 {
			factor = float64(acc.sampleTrans) / float64(acc.sampleWarpMI)
		} else {
			// No sample (block 0 made no global accesses but others did):
			// assume the worst case, full scatter.
			factor = ws
		}
		s.GlobalTransactions = int64(math.Ceil(float64(accesses) / ws * factor))
	}

	// Compute leg: every SM issues one warp instruction per cycle, so the
	// device retires SMs warp-instructions per cycle. For perfectly
	// balanced warps this equals thread-instructions / total cores; for
	// divergent or imbalanced warps it is correctly larger.
	compute := float64(s.WarpInstructions) / (float64(d.cfg.SMs) * d.cfg.ClockHz)
	memory := float64(s.GlobalTransactions) * float64(d.cfg.SegmentBytes) / d.cfg.PeakBandwidth
	s.SimSeconds = math.Max(compute, memory) + d.cfg.LaunchOverhead

	ls := LaunchStats{
		Name:             cfg.Name,
		Grid:             cfg.Grid,
		Block:            cfg.Block,
		Stats:            s,
		CoalescingFactor: factor,
		ComputeSeconds:   compute,
		MemorySeconds:    memory,
	}

	d.mu.Lock()
	if d.gen == gen {
		d.totals.Add(s)
		d.simTime += s.SimSeconds
		d.launches = append(d.launches, ls)
	}
	d.mu.Unlock()
	return ls
}

// advanceCopy accounts for a host<->device copy of n bytes.
func (d *Device) advanceCopy(n int64, toDevice bool) {
	t := float64(n) / d.cfg.PCIeBandwidth
	d.mu.Lock()
	if toDevice {
		d.totals.H2DBytes += n
	} else {
		d.totals.D2HBytes += n
	}
	d.simTime += t
	d.totals.SimSeconds += t
	d.mu.Unlock()
}

// blockRT is the per-block runtime state: shared memory and the barrier.
type blockRT struct {
	dev       *Device
	sharedF64 []float64
	sharedU32 []uint32
	bar       *barrier
}

// barrier is a cyclic barrier that tolerates threads exiting early (a
// returning thread leaves the party set, as CUDA requires __syncthreads to
// be reached by all *remaining* threads of the block in our relaxed model).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// reset re-arms a recycled barrier for the next block. The caller owns the
// barrier exclusively (the previous block's threads have all joined), so
// no locking is needed.
func (b *barrier) reset(parties int) {
	b.parties = parties
	b.waiting = 0
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting >= b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *barrier) leave() {
	b.mu.Lock()
	b.parties--
	if b.waiting >= b.parties && b.parties > 0 {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}
