package gpu

import "math/bits"

// This file provides the classic data-parallel primitives GSNP's
// GPU compression path is built from (Section V-B of the paper): reduction,
// exclusive prefix scan, device-wide bitonic sort, unique, and batched
// binary search. They are written as kernels against the simulator so their
// memory behaviour is metered like any other device code.

// primBlock is the thread-block size used by the primitive kernels, and
// primLog its base-2 logarithm (the number of stride rounds in the
// tree-shaped reduce and scan kernels).
const primBlock = 256

var primLog = bits.Len(uint(primBlock)) - 1

// ReduceU32 sums the device buffer with a shared-memory tree reduction per
// block followed by a host combine of the per-block partials, the standard
// two-level GPU reduction. The barrier structure is static (load, primLog
// halving strides, store), so it runs as a phased launch: identical
// metering to the synchronous form, no per-thread goroutines.
func ReduceU32(d *Device, in *Buffer[uint32]) uint64 {
	n := in.Len()
	if n == 0 {
		return 0
	}
	grid := (n + primBlock - 1) / primBlock
	partial := Alloc[uint32](d, grid)
	defer partial.Free()
	d.MustLaunchPhased(LaunchConfig{Name: "reduce_u32", Grid: grid, Block: primBlock, SharedU32: primBlock}, primLog+2, func(t *Thread, p int) bool {
		switch {
		case p == 0:
			i := t.GlobalID()
			v := uint32(0)
			if i < n {
				v = Ld(t, in, i)
			}
			t.SetSharedU32(t.Lane, v)
			return true
		case p <= primLog:
			stride := primBlock >> p
			if t.Lane < stride {
				t.Exec(1)
				t.SetSharedU32(t.Lane, t.SharedU32(t.Lane)+t.SharedU32(t.Lane+stride))
			}
			return true
		default:
			if t.Lane == 0 {
				St(t, partial, t.Block, t.SharedU32(0))
			}
			return false
		}
	})
	var sum uint64
	for _, p := range partial.Host() {
		sum += uint64(p)
	}
	return sum
}

// ExclusiveScanU32 computes the exclusive prefix sum of in into out
// (out[0]=0, out[i]=sum(in[0..i-1])) and returns the grand total. It uses a
// per-block Hillis-Steele scan in shared memory plus a host pass that
// offsets each block by the preceding blocks' totals — the standard
// scan-then-propagate scheme.
func ExclusiveScanU32(d *Device, in, out *Buffer[uint32]) uint64 {
	n := in.Len()
	if out.Len() < n {
		panic("gpu: ExclusiveScanU32: output shorter than input")
	}
	if n == 0 {
		return 0
	}
	grid := (n + primBlock - 1) / primBlock
	blockTotals := Alloc[uint32](d, grid)
	defer blockTotals.Free()

	// Double-buffered inclusive Hillis-Steele scan, phased: one load
	// round, primLog doubling strides, one store round. Each lane carries
	// its own input value across the barriers in a register (Reg[0]) so
	// the exclusive result costs no extra shared-memory traffic.
	d.MustLaunchPhased(LaunchConfig{Name: "scan_u32", Grid: grid, Block: primBlock, SharedU32: 2 * primBlock}, primLog+2, func(t *Thread, p int) bool {
		switch {
		case p == 0:
			i := t.GlobalID()
			v := uint32(0)
			if i < n {
				v = Ld(t, in, i)
			}
			t.Reg[0] = uint64(v)
			t.SetSharedU32(t.Lane, v)
			return true
		case p <= primLog:
			stride := 1 << (p - 1)
			cur := ((p - 1) & 1) * primBlock
			nxt := primBlock - cur
			x := t.SharedU32(cur + t.Lane)
			if t.Lane >= stride {
				t.Exec(1)
				x += t.SharedU32(cur + t.Lane - stride)
			}
			t.SetSharedU32(nxt+t.Lane, x)
			return true
		default:
			// After primLog buffer swaps from offset 0 the inclusive
			// values sit at offset 0 iff primLog is even.
			incl := t.SharedU32((primLog&1)*primBlock + t.Lane)
			i := t.GlobalID()
			if i < n {
				St(t, out, i, incl-uint32(t.Reg[0])) // exclusive = inclusive - self
			}
			if t.Lane == primBlock-1 {
				St(t, blockTotals, t.Block, incl)
			}
			return false
		}
	})

	// Host carry propagation across blocks (cheap: one value per block).
	// The carries are staged directly in the device buffer's backing
	// storage; the self-CopyIn meters the upload without a second host
	// array.
	carryBuf := Alloc[uint32](d, grid)
	defer carryBuf.Free()
	totals := blockTotals.Host()
	carries := carryBuf.Host()
	var carry uint64
	for b := 0; b < grid; b++ {
		carries[b] = uint32(carry)
		carry += uint64(totals[b])
	}
	carryBuf.CopyIn(carries)
	d.MustLaunch(LaunchConfig{Name: "scan_carry", Grid: grid, Block: primBlock}, func(t *Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		c := Ld(t, carryBuf, t.Block)
		t.Exec(1)
		St(t, out, i, Ld(t, out, i)+c)
	})
	return carry
}

// SortU32 sorts the device buffer in place with a device-wide iterative
// bitonic sorting network. Lengths that are not powers of two are handled
// by padding with the maximum key. The network performs log^2(n) global
// passes; each pass is one kernel launch, as on real hardware.
func SortU32(d *Device, buf *Buffer[uint32]) {
	n := buf.Len()
	if n <= 1 {
		return
	}
	pow := 1 << bits.Len(uint(n-1)) // next power of two >= n
	var work *Buffer[uint32]
	if pow != n {
		work = Alloc[uint32](d, pow)
		defer work.Free()
		host := work.Host()
		copy(host, buf.Host())
		for i := n; i < pow; i++ {
			host[i] = ^uint32(0)
		}
	} else {
		work = buf
	}

	grid := (pow/2 + primBlock - 1) / primBlock
	for k := 2; k <= pow; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			kk, jj := k, j
			d.MustLaunch(LaunchConfig{Name: "bitonic_global", Grid: grid, Block: primBlock}, func(t *Thread) {
				id := t.GlobalID()
				if id >= pow/2 {
					return
				}
				// Map compare-exchange id to element index i with partner
				// i^jj, processing each pair once.
				i := 2*id - (id & (jj - 1))
				t.Exec(4)
				l := i ^ jj
				a, b := Ld(t, work, i), Ld(t, work, l)
				up := i&kk == 0
				t.Exec(1)
				if (a > b) == up {
					St(t, work, i, b)
					St(t, work, l, a)
				}
			})
		}
	}
	if work != buf {
		copy(buf.Host(), work.Host()[:n])
	}
}

// UniqueU32 compacts consecutive duplicates out of a sorted device buffer:
// it flags run heads, scans the flags for destinations and scatters. It
// returns a new buffer holding the distinct values (caller frees).
func UniqueU32(d *Device, in *Buffer[uint32]) *Buffer[uint32] {
	n := in.Len()
	if n == 0 {
		return Alloc[uint32](d, 0)
	}
	flags := Alloc[uint32](d, n)
	defer flags.Free()
	d.MustLaunch(LaunchConfig{Name: "unique_flag", Grid: (n + primBlock - 1) / primBlock, Block: primBlock}, func(t *Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		f := uint32(1)
		if i > 0 {
			t.Exec(1)
			if Ld(t, in, i-1) == Ld(t, in, i) {
				f = 0
			}
		}
		St(t, flags, i, f)
	})
	dst := Alloc[uint32](d, n)
	defer dst.Free()
	total := ExclusiveScanU32(d, flags, dst)
	out := Alloc[uint32](d, int(total))
	d.MustLaunch(LaunchConfig{Name: "unique_scatter", Grid: (n + primBlock - 1) / primBlock, Block: primBlock}, func(t *Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		if Ld(t, flags, i) == 1 {
			St(t, out, int(Ld(t, dst, i)), Ld(t, in, i))
		}
	})
	return out
}

// BatchBinarySearchU32 looks every key up in the sorted dictionary with one
// thread per key and writes the found index (keys are guaranteed present in
// GSNP's DICT encoder, which built the dictionary from the same data). The
// dictionary is read from constant memory when it fits — the paper loads
// the DICT dictionary into constant memory — and from global memory
// otherwise.
func BatchBinarySearchU32(d *Device, keys *Buffer[uint32], dict []uint32, out *Buffer[uint32]) {
	n := keys.Len()
	if out.Len() < n {
		panic("gpu: BatchBinarySearchU32: output shorter than keys")
	}
	if n == 0 {
		return
	}
	grid := (n + primBlock - 1) / primBlock

	cb, err := NewConst(d, dict)
	if err == nil {
		defer cb.Free()
		d.MustLaunch(LaunchConfig{Name: "dict_search_const", Grid: grid, Block: primBlock}, func(t *Thread) {
			i := t.GlobalID()
			if i >= n {
				return
			}
			key := Ld(t, keys, i)
			lo, hi := 0, cb.Len()
			for lo < hi {
				t.Exec(3)
				mid := (lo + hi) / 2
				if CLd(t, cb, mid) < key {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			St(t, out, i, uint32(lo))
		})
		return
	}

	gdict := Alloc[uint32](d, len(dict))
	defer gdict.Free()
	gdict.CopyIn(dict)
	d.MustLaunch(LaunchConfig{Name: "dict_search_global", Grid: grid, Block: primBlock}, func(t *Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		key := Ld(t, keys, i)
		lo, hi := 0, len(dict)
		for lo < hi {
			t.Exec(3)
			mid := (lo + hi) / 2
			if Ld(t, gdict, mid) < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		St(t, out, i, uint32(lo))
	})
}
