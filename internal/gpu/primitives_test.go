package gpu

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestReduceU32(t *testing.T) {
	d := testDevice()
	for _, n := range []int{0, 1, 255, 256, 257, 10000} {
		src := make([]uint32, n)
		var want uint64
		for i := range src {
			src[i] = uint32(i % 97)
			want += uint64(src[i])
		}
		buf := Alloc[uint32](d, n)
		buf.CopyIn(src)
		if got := ReduceU32(d, buf); got != want {
			t.Errorf("n=%d: ReduceU32 = %d, want %d", n, got, want)
		}
		buf.Free()
	}
}

func TestExclusiveScanU32(t *testing.T) {
	d := testDevice()
	for _, n := range []int{1, 2, 255, 256, 257, 5000} {
		src := make([]uint32, n)
		for i := range src {
			src[i] = uint32(rand.Intn(10))
		}
		in := Alloc[uint32](d, n)
		out := Alloc[uint32](d, n)
		in.CopyIn(src)
		total := ExclusiveScanU32(d, in, out)
		var run uint64
		for i := 0; i < n; i++ {
			if out.Host()[i] != uint32(run) {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, out.Host()[i], run)
			}
			run += uint64(src[i])
		}
		if total != run {
			t.Errorf("n=%d: total = %d, want %d", n, total, run)
		}
		in.Free()
		out.Free()
	}
}

func TestExclusiveScanShortOutputPanics(t *testing.T) {
	d := testDevice()
	in := Alloc[uint32](d, 10)
	out := Alloc[uint32](d, 5)
	defer func() {
		if recover() == nil {
			t.Error("short output accepted")
		}
	}()
	ExclusiveScanU32(d, in, out)
}

func TestSortU32(t *testing.T) {
	d := testDevice()
	for _, n := range []int{0, 1, 2, 100, 256, 1000, 4096, 5000} {
		src := make([]uint32, n)
		for i := range src {
			src[i] = rand.Uint32()
		}
		buf := Alloc[uint32](d, n)
		buf.CopyIn(src)
		SortU32(d, buf)
		got := buf.Host()
		want := append([]uint32(nil), src...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: sorted[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		buf.Free()
	}
}

func TestSortU32Property(t *testing.T) {
	d := testDevice()
	f := func(src []uint32) bool {
		if len(src) > 2000 {
			src = src[:2000]
		}
		buf := Alloc[uint32](d, len(src))
		buf.CopyIn(src)
		SortU32(d, buf)
		defer buf.Free()
		got := buf.Host()
		// Sortedness.
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				return false
			}
		}
		// Permutation (multiset equality via sorted copies).
		want := append([]uint32(nil), src...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUniqueU32(t *testing.T) {
	d := testDevice()
	src := []uint32{1, 1, 1, 2, 5, 5, 9, 9, 9, 9, 12}
	in := Alloc[uint32](d, len(src))
	in.CopyIn(src)
	out := UniqueU32(d, in)
	defer out.Free()
	want := []uint32{1, 2, 5, 9, 12}
	if out.Len() != len(want) {
		t.Fatalf("unique count = %d, want %d", out.Len(), len(want))
	}
	for i := range want {
		if out.Host()[i] != want[i] {
			t.Errorf("unique[%d] = %d, want %d", i, out.Host()[i], want[i])
		}
	}

	empty := Alloc[uint32](d, 0)
	if got := UniqueU32(d, empty); got.Len() != 0 {
		t.Error("unique of empty not empty")
	}
}

func TestBatchBinarySearchU32(t *testing.T) {
	d := testDevice()
	dict := []uint32{3, 7, 10, 42, 99}
	keys := []uint32{42, 3, 99, 10, 7, 42}
	kb := Alloc[uint32](d, len(keys))
	kb.CopyIn(keys)
	out := Alloc[uint32](d, len(keys))
	BatchBinarySearchU32(d, kb, dict, out)
	want := []uint32{3, 0, 4, 2, 1, 3}
	for i := range want {
		if out.Host()[i] != want[i] {
			t.Errorf("search[%d] = %d, want %d", i, out.Host()[i], want[i])
		}
	}
}

func TestBatchBinarySearchLargeDictFallsBackToGlobal(t *testing.T) {
	d := testDevice()
	// 64 KB constant memory / 4 B = 16384 entries; use more to force the
	// global-memory path.
	dict := make([]uint32, 20000)
	for i := range dict {
		dict[i] = uint32(2 * i)
	}
	keys := []uint32{0, 2, 39998}
	kb := Alloc[uint32](d, len(keys))
	kb.CopyIn(keys)
	out := Alloc[uint32](d, len(keys))
	before := d.Stats().ConstLoads
	BatchBinarySearchU32(d, kb, dict, out)
	if d.Stats().ConstLoads != before {
		t.Error("large dictionary unexpectedly used constant memory")
	}
	want := []uint32{0, 1, 19999}
	for i := range want {
		if out.Host()[i] != want[i] {
			t.Errorf("search[%d] = %d, want %d", i, out.Host()[i], want[i])
		}
	}
}

func TestSortVsUniquePipeline(t *testing.T) {
	// The DICT build path: sort then unique, as Section V-B describes.
	d := testDevice()
	src := make([]uint32, 3000)
	for i := range src {
		src[i] = uint32(rand.Intn(50))
	}
	buf := Alloc[uint32](d, len(src))
	buf.CopyIn(src)
	SortU32(d, buf)
	out := UniqueU32(d, buf)
	defer out.Free()

	seen := map[uint32]bool{}
	for _, v := range src {
		seen[v] = true
	}
	if out.Len() != len(seen) {
		t.Fatalf("dictionary size = %d, want %d", out.Len(), len(seen))
	}
	for i := 1; i < out.Len(); i++ {
		if out.Host()[i-1] >= out.Host()[i] {
			t.Fatal("dictionary not strictly increasing")
		}
	}
}
