package gpu

import (
	"math/bits"
	"testing"
)

// BenchmarkRunWindowSimKernels drives the simulator with one GPU window's
// worth of kernel traffic — an atomic counting scatter over the
// observations, a reduce, an exclusive scan over the sites, and a phased
// shared-memory bitonic pass — isolating the simulator's own per-launch
// cost from the pipeline around it. One op is one synthetic window
// (windowSites sites, obsPerSite observations each), so sites/s here is
// the ceiling the simulator imposes on BenchmarkRunWindowGPU, and
// allocs/op pins the launch/buffer recycling of the device itself.
func BenchmarkRunWindowSimKernels(b *testing.B) {
	const (
		windowSites = 8000
		obsPerSite  = 10
		m           = windowSites * obsPerSite
	)
	d := NewDevice(M2050())

	window := func() {
		obs := Alloc[uint32](d, m)
		siteCount := Alloc[uint32](d, windowSites)
		bounds := Alloc[uint32](d, windowSites)
		host := obs.Host()
		for i := range host {
			host[i] = uint32(i % windowSites)
		}
		obs.CopyIn(host)
		d.MustLaunch(LaunchConfig{Name: "count_sites", Grid: (m + 255) / 256, Block: 256}, func(t *Thread) {
			i := t.GlobalID()
			if i >= m {
				return
			}
			site := int(Ld(t, obs, i))
			AtomicAddU32(t, siteCount, site, 1)
		})
		ReduceU32(d, siteCount)
		ExclusiveScanU32(d, siteCount, bounds)
		// One full shared-memory bitonic network per 256-lane block, the
		// phased form the sort pipeline uses.
		merges := 0
		for k := 2; k <= 256; k *= 2 {
			merges += bits.Len(uint(k)) - 1
		}
		d.MustLaunchPhased(LaunchConfig{Name: "batch_bitonic", Grid: (m + 255) / 256, Block: 256, SharedU32: 256}, merges+2, func(t *Thread, p int) bool {
			switch {
			case p == 0:
				v := ^uint32(0)
				if i := t.GlobalID(); i < m {
					v = Ld(t, obs, i)
				}
				t.SetSharedU32(t.Lane, v)
				return true
			case p <= merges:
				// Walk the (k, j) network in order.
				q := p - 1
				k := 2
				for {
					steps := bits.Len(uint(k)) - 1
					if q < steps {
						break
					}
					q -= steps
					k *= 2
				}
				j := k >> (q + 1)
				partner := t.Lane ^ j
				if partner > t.Lane {
					a := t.SharedU32(t.Lane)
					bv := t.SharedU32(partner)
					t.Exec(2)
					if (a > bv) == (t.Lane&k == 0) {
						t.SetSharedU32(t.Lane, bv)
						t.SetSharedU32(partner, a)
					}
				}
				return true
			default:
				if i := t.GlobalID(); i < m {
					St(t, obs, i, t.SharedU32(t.Lane))
				}
				return false
			}
		})
		bounds.Free()
		siteCount.Free()
		obs.Free()
	}

	window() // warm the scratch and buffer free-lists
	sites := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		window()
		sites += windowSites
	}
	b.ReportMetric(float64(sites)/b.Elapsed().Seconds(), "sites/s")
}
