package gpu

import "fmt"

// Stats aggregates the hardware counters the simulator maintains. The
// quantities mirror those CUDA Visual Profiler exposes and that the paper
// reports in Table III: issued instructions, global loads and stores,
// shared-memory loads and stores.
type Stats struct {
	// Kernels is the number of kernel launches.
	Kernels int64
	// Instructions counts thread-level instructions: one per declared
	// arithmetic step (Thread.Exec) and one per memory access of any
	// space.
	Instructions int64
	// WarpInstructions counts SIMT issue slots: each warp contributes the
	// maximum instruction count over its lanes, so divergent or
	// imbalanced warps cost their longest lane. This drives the compute
	// leg of the timing model.
	WarpInstructions int64
	// GlobalLoads and GlobalStores count per-thread global-memory
	// accesses; the *Bytes fields carry the payload sizes.
	GlobalLoads      int64
	GlobalStores     int64
	GlobalLoadBytes  int64
	GlobalStoreBytes int64
	// SharedLoads and SharedStores count shared-memory accesses.
	SharedLoads  int64
	SharedStores int64
	// ConstLoads counts constant-memory reads.
	ConstLoads int64
	// GlobalTransactions is the estimated number of memory transactions
	// (SegmentBytes each) needed to service the global accesses, after
	// per-warp coalescing.
	GlobalTransactions int64
	// H2DBytes and D2HBytes are the host->device and device->host copy
	// volumes.
	H2DBytes int64
	D2HBytes int64
	// DoubleFrees counts redundant Buffer/ConstBuffer Free calls absorbed
	// by the double-free guard. Always zero in a correct program; the
	// guard exists because a second Free would push the same backing
	// storage onto the recycle free-list twice, aliasing two live buffers.
	DoubleFrees int64
	// SimSeconds is the simulated device-clock time consumed.
	SimSeconds float64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Kernels += o.Kernels
	s.Instructions += o.Instructions
	s.WarpInstructions += o.WarpInstructions
	s.GlobalLoads += o.GlobalLoads
	s.GlobalStores += o.GlobalStores
	s.GlobalLoadBytes += o.GlobalLoadBytes
	s.GlobalStoreBytes += o.GlobalStoreBytes
	s.SharedLoads += o.SharedLoads
	s.SharedStores += o.SharedStores
	s.ConstLoads += o.ConstLoads
	s.GlobalTransactions += o.GlobalTransactions
	s.H2DBytes += o.H2DBytes
	s.D2HBytes += o.D2HBytes
	s.DoubleFrees += o.DoubleFrees
	s.SimSeconds += o.SimSeconds
}

// Sub returns s minus o, useful for windowed measurements around a phase.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Kernels:            s.Kernels - o.Kernels,
		Instructions:       s.Instructions - o.Instructions,
		WarpInstructions:   s.WarpInstructions - o.WarpInstructions,
		GlobalLoads:        s.GlobalLoads - o.GlobalLoads,
		GlobalStores:       s.GlobalStores - o.GlobalStores,
		GlobalLoadBytes:    s.GlobalLoadBytes - o.GlobalLoadBytes,
		GlobalStoreBytes:   s.GlobalStoreBytes - o.GlobalStoreBytes,
		SharedLoads:        s.SharedLoads - o.SharedLoads,
		SharedStores:       s.SharedStores - o.SharedStores,
		ConstLoads:         s.ConstLoads - o.ConstLoads,
		GlobalTransactions: s.GlobalTransactions - o.GlobalTransactions,
		H2DBytes:           s.H2DBytes - o.H2DBytes,
		D2HBytes:           s.D2HBytes - o.D2HBytes,
		DoubleFrees:        s.DoubleFrees - o.DoubleFrees,
		SimSeconds:         s.SimSeconds - o.SimSeconds,
	}
}

// InstPerWarp reports instructions normalised per warp, the "PW" unit of
// Table III (a counter for one warp on a multiprocessor): total thread
// instructions divided by the warp size.
func (s Stats) InstPerWarp(warpSize int) float64 {
	if warpSize <= 0 {
		warpSize = 32
	}
	return float64(s.Instructions) / float64(warpSize)
}

// SharedPerWarp reports shared loads and stores normalised per warp.
func (s Stats) SharedPerWarp(warpSize int) (loads, stores float64) {
	if warpSize <= 0 {
		warpSize = 32
	}
	return float64(s.SharedLoads) / float64(warpSize), float64(s.SharedStores) / float64(warpSize)
}

// String renders a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("kernels=%d inst=%.3g gld=%.3g gst=%.3g sld=%.3g sst=%.3g trans=%.3g sim=%.3gs",
		s.Kernels, float64(s.Instructions), float64(s.GlobalLoads), float64(s.GlobalStores),
		float64(s.SharedLoads), float64(s.SharedStores), float64(s.GlobalTransactions), s.SimSeconds)
}

// LaunchStats describes one kernel launch.
type LaunchStats struct {
	// Name echoes LaunchConfig.Name.
	Name string
	// Grid and Block echo the launch geometry.
	Grid, Block int
	// Stats holds the counters for this launch only.
	Stats Stats
	// CoalescingFactor is the sampled average number of memory
	// transactions per warp memory instruction (1 = perfectly coalesced,
	// WarpSize = fully scattered). Zero when the launch performed no
	// global accesses.
	CoalescingFactor float64
	// ComputeSeconds and MemorySeconds are the two legs of the timing
	// model; Stats.SimSeconds = max of the two + launch overhead.
	ComputeSeconds float64
	MemorySeconds  float64
}
