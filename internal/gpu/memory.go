package gpu

import (
	"fmt"
	"unsafe"
)

// Buffer is a device-resident typed array in simulated global memory.
// Host code accesses the backing storage directly via Host (unmetered, like
// reading memory you just copied back); kernels must go through Ld/St so the
// access is metered and enters the coalescing sample.
type Buffer[T any] struct {
	dev      *Device
	data     []T
	id       int64
	elemSize int64
}

// Alloc reserves an n-element device buffer. It panics if the device memory
// capacity would be exceeded — the simulated analogue of cudaMalloc failing,
// kept as a panic because allocations in this codebase are sized from
// window configuration and exceeding 3 GB indicates a programming error.
func Alloc[T any](dev *Device, n int) *Buffer[T] {
	var zero T
	es := int64(unsafe.Sizeof(zero))
	bytes := es * int64(n)
	dev.mu.Lock()
	if dev.allocated+bytes > dev.cfg.GlobalMemBytes {
		used := dev.allocated
		dev.mu.Unlock()
		panic(fmt.Sprintf("gpu: out of device memory: %d B requested, %d/%d B in use", bytes, used, dev.cfg.GlobalMemBytes))
	}
	dev.allocated += bytes
	dev.nextBufID++
	id := dev.nextBufID
	dev.mu.Unlock()
	return &Buffer[T]{dev: dev, data: make([]T, n), id: id, elemSize: es}
}

// Free releases the buffer's device memory accounting. Using the buffer
// after Free is a programming error (the storage is cleared to surface it).
func (b *Buffer[T]) Free() {
	bytes := b.elemSize * int64(len(b.data))
	b.dev.mu.Lock()
	b.dev.allocated -= bytes
	b.dev.mu.Unlock()
	b.data = nil
}

// Len returns the element count.
func (b *Buffer[T]) Len() int { return len(b.data) }

// Host returns the backing storage for host-side access. Mutating it from
// the host while a kernel runs is a race, as on real hardware.
func (b *Buffer[T]) Host() []T { return b.data }

// CopyIn copies src into the buffer (host-to-device), advancing the
// simulated clock at PCIe bandwidth.
func (b *Buffer[T]) CopyIn(src []T) {
	n := copy(b.data, src)
	b.dev.advanceCopy(int64(n)*b.elemSize, true)
}

// CopyOut copies the buffer into dst (device-to-host), advancing the
// simulated clock at PCIe bandwidth.
func (b *Buffer[T]) CopyOut(dst []T) {
	n := copy(dst, b.data)
	b.dev.advanceCopy(int64(n)*b.elemSize, false)
}

// addr returns the logical global-memory address of element i, unique
// across buffers so the coalescing sampler can distinguish streams.
func (b *Buffer[T]) addr(i int) int64 { return b.id<<40 + int64(i)*b.elemSize }

// Ld performs a metered global-memory load of element i from within a
// kernel.
func Ld[T any](t *Thread, b *Buffer[T], i int) T {
	t.recordGlobal(b.addr(i), b.elemSize, false)
	return b.data[i]
}

// St performs a metered global-memory store of element i from within a
// kernel.
func St[T any](t *Thread, b *Buffer[T], i int, v T) {
	t.recordGlobal(b.addr(i), b.elemSize, true)
	b.data[i] = v
}

// AtomicAddU32 performs a metered atomic add on element i, returning the
// old value. The simulator runs blocks concurrently on the host, so the
// update itself must be host-atomic; the accounting charges one load and
// one store, like the profiler's gld/gst counters do for atomics on Fermi.
func AtomicAddU32(t *Thread, b *Buffer[uint32], i int, delta uint32) uint32 {
	t.recordGlobal(b.addr(i), b.elemSize, false)
	t.recordGlobal(b.addr(i), b.elemSize, true)
	return atomicAddU32(&b.data[i], delta)
}

// ConstBuffer is a read-only array in simulated constant memory. Constant
// memory is cached on-chip; loads are metered as instructions and constant
// loads but never contribute global-memory transactions.
type ConstBuffer[T any] struct {
	dev  *Device
	data []T
}

// NewConst uploads data to constant memory. It returns an error when the
// device's constant-memory capacity would be exceeded — callers decide
// whether to fall back to global memory, as GSNP's DICT dictionaries do.
func NewConst[T any](dev *Device, data []T) (*ConstBuffer[T], error) {
	var zero T
	bytes := int(unsafe.Sizeof(zero)) * len(data)
	dev.mu.Lock()
	if dev.constUsed+bytes > dev.cfg.ConstMemBytes {
		used := dev.constUsed
		dev.mu.Unlock()
		return nil, fmt.Errorf("gpu: constant memory exhausted: %d B requested, %d/%d B in use", bytes, used, dev.cfg.ConstMemBytes)
	}
	dev.constUsed += bytes
	dev.mu.Unlock()
	cp := make([]T, len(data))
	copy(cp, data)
	dev.advanceCopy(int64(bytes), true)
	return &ConstBuffer[T]{dev: dev, data: cp}, nil
}

// FreeConst releases the constant-memory accounting of cb.
func (cb *ConstBuffer[T]) Free() {
	var zero T
	bytes := int(unsafe.Sizeof(zero)) * len(cb.data)
	cb.dev.mu.Lock()
	cb.dev.constUsed -= bytes
	cb.dev.mu.Unlock()
	cb.data = nil
}

// Len returns the element count.
func (cb *ConstBuffer[T]) Len() int { return len(cb.data) }

// CLd performs a metered constant-memory load of element i from within a
// kernel.
func CLd[T any](t *Thread, cb *ConstBuffer[T], i int) T {
	t.recordConst()
	return cb.data[i]
}
