package gpu

import (
	"fmt"
	"unsafe"
)

// Buffer is a device-resident typed array in simulated global memory.
// Host code accesses the backing storage directly via Host (unmetered, like
// reading memory you just copied back); kernels must go through Ld/St so the
// access is metered and enters the coalescing sample.
type Buffer[T any] struct {
	dev      *Device
	data     []T
	id       int64
	elemSize int64
	freed    bool
}

// maxFreeListEntries bounds each element-size class of the storage
// free-list. The window pipeline keeps well under this many buffers live
// per size class; anything beyond it is dropped for the garbage collector
// so a pathological allocation pattern cannot pin unbounded host memory.
const maxFreeListEntries = 64

// takeStorage pops a recycled backing array with capacity for n elements
// from the device free-list. The caller must hold d.mu. Entries of the
// right byte size but a different element type are left in place for their
// own type's allocations.
func takeStorage[T any](d *Device, es int64, n int) []T {
	if n == 0 {
		return nil
	}
	list := d.bufFree[es]
	for i := len(list) - 1; i >= 0; i-- {
		s, ok := list[i].([]T)
		if !ok || cap(s) < n {
			continue
		}
		last := len(list) - 1
		list[i] = list[last]
		list[last] = nil
		d.bufFree[es] = list[:last]
		return s[:n]
	}
	return nil
}

// putStorage returns a backing array to the free-list for the next Alloc
// of the same element size. The caller must hold d.mu.
func (d *Device) putStorage(es int64, data any) {
	if d.bufFree == nil {
		d.bufFree = make(map[int64][]any)
	}
	list := d.bufFree[es]
	if len(list) >= maxFreeListEntries {
		return
	}
	d.bufFree[es] = append(list, data)
}

// noteDoubleFree counts a redundant Free absorbed by the guard.
func (d *Device) noteDoubleFree() {
	d.mu.Lock()
	d.totals.DoubleFrees++
	d.mu.Unlock()
}

// Alloc reserves an n-element device buffer. It panics if the device memory
// capacity would be exceeded — the simulated analogue of cudaMalloc failing,
// kept as a panic because allocations in this codebase are sized from
// window configuration and exceeding 3 GB indicates a programming error.
//
// Backing storage is recycled from the device free-list when a previously
// freed buffer of the same element type has enough capacity, so the
// steady-state window loop allocates nothing; recycled storage is zeroed
// first, preserving the fresh-allocation semantics kernels rely on.
func Alloc[T any](dev *Device, n int) *Buffer[T] {
	var zero T
	es := int64(unsafe.Sizeof(zero))
	bytes := es * int64(n)
	dev.mu.Lock()
	if dev.allocated+bytes > dev.cfg.GlobalMemBytes {
		used := dev.allocated
		dev.mu.Unlock()
		panic(fmt.Sprintf("gpu: out of device memory: %d B requested, %d/%d B in use", bytes, used, dev.cfg.GlobalMemBytes))
	}
	dev.allocated += bytes
	dev.nextBufID++
	id := dev.nextBufID
	data := takeStorage[T](dev, es, n)
	dev.mu.Unlock()
	if data == nil {
		data = make([]T, n)
	} else {
		clear(data)
	}
	return &Buffer[T]{dev: dev, data: data, id: id, elemSize: es}
}

// Free releases the buffer's device-memory accounting exactly once and
// returns the backing storage to the device free-list. Using the buffer
// after Free is a programming error (the storage is cleared to surface it).
// A second Free on the same buffer is a guarded no-op counted in
// Stats.DoubleFrees: without the guard it would corrupt the accounting and
// push the storage onto the free-list twice, aliasing two live buffers.
func (b *Buffer[T]) Free() {
	if b.freed {
		b.dev.noteDoubleFree()
		return
	}
	b.freed = true
	bytes := b.elemSize * int64(len(b.data))
	b.dev.mu.Lock()
	b.dev.allocated -= bytes
	if cap(b.data) > 0 {
		b.dev.putStorage(b.elemSize, b.data)
	}
	b.dev.mu.Unlock()
	b.data = nil
}

// Len returns the element count.
func (b *Buffer[T]) Len() int { return len(b.data) }

// Host returns the backing storage for host-side access. Mutating it from
// the host while a kernel runs is a race, as on real hardware.
func (b *Buffer[T]) Host() []T { return b.data }

// CopyIn copies src into the buffer (host-to-device), advancing the
// simulated clock at PCIe bandwidth. Passing the buffer's own Host slice
// is allowed: it meters the transfer a real upload of staged data would
// cost without needing a second host array.
func (b *Buffer[T]) CopyIn(src []T) {
	n := copy(b.data, src)
	b.dev.advanceCopy(int64(n)*b.elemSize, true)
}

// CopyOut copies the buffer into dst (device-to-host), advancing the
// simulated clock at PCIe bandwidth.
func (b *Buffer[T]) CopyOut(dst []T) {
	n := copy(dst, b.data)
	b.dev.advanceCopy(int64(n)*b.elemSize, false)
}

// addr returns the logical global-memory address of element i, unique
// across buffers so the coalescing sampler can distinguish streams.
func (b *Buffer[T]) addr(i int) int64 { return b.id<<40 + int64(i)*b.elemSize }

// Ld performs a metered global-memory load of element i from within a
// kernel.
func Ld[T any](t *Thread, b *Buffer[T], i int) T {
	t.recordGlobal(b.addr(i), b.elemSize, false)
	return b.data[i]
}

// St performs a metered global-memory store of element i from within a
// kernel.
func St[T any](t *Thread, b *Buffer[T], i int, v T) {
	t.recordGlobal(b.addr(i), b.elemSize, true)
	b.data[i] = v
}

// AtomicAddU32 performs a metered atomic add on element i, returning the
// old value. The simulator runs blocks concurrently on the host, so the
// update itself must be host-atomic; the accounting charges one load and
// one store, like the profiler's gld/gst counters do for atomics on Fermi.
func AtomicAddU32(t *Thread, b *Buffer[uint32], i int, delta uint32) uint32 {
	t.recordGlobal(b.addr(i), b.elemSize, false)
	t.recordGlobal(b.addr(i), b.elemSize, true)
	return atomicAddU32(&b.data[i], delta)
}

// ConstBuffer is a read-only array in simulated constant memory. Constant
// memory is cached on-chip; loads are metered as instructions and constant
// loads but never contribute global-memory transactions.
type ConstBuffer[T any] struct {
	dev   *Device
	data  []T
	freed bool
}

// NewConst uploads data to constant memory. It returns an error when the
// device's constant-memory capacity would be exceeded — callers decide
// whether to fall back to global memory, as GSNP's DICT dictionaries do.
// Like Alloc, it recycles freed backing storage from the device free-list.
func NewConst[T any](dev *Device, data []T) (*ConstBuffer[T], error) {
	var zero T
	es := int64(unsafe.Sizeof(zero))
	bytes := int(es) * len(data)
	dev.mu.Lock()
	if dev.constUsed+bytes > dev.cfg.ConstMemBytes {
		used := dev.constUsed
		dev.mu.Unlock()
		return nil, fmt.Errorf("gpu: constant memory exhausted: %d B requested, %d/%d B in use", bytes, used, dev.cfg.ConstMemBytes)
	}
	dev.constUsed += bytes
	cp := takeStorage[T](dev, es, len(data))
	dev.mu.Unlock()
	if cp == nil {
		cp = make([]T, len(data))
	}
	copy(cp, data)
	dev.advanceCopy(int64(bytes), true)
	return &ConstBuffer[T]{dev: dev, data: cp}, nil
}

// Free releases the constant-memory accounting of cb exactly once and
// recycles the backing storage. A second Free is a guarded no-op counted
// in Stats.DoubleFrees, as for Buffer.Free.
func (cb *ConstBuffer[T]) Free() {
	if cb.freed {
		cb.dev.noteDoubleFree()
		return
	}
	cb.freed = true
	var zero T
	es := int64(unsafe.Sizeof(zero))
	bytes := int(es) * len(cb.data)
	cb.dev.mu.Lock()
	cb.dev.constUsed -= bytes
	if cap(cb.data) > 0 {
		cb.dev.putStorage(es, cb.data)
	}
	cb.dev.mu.Unlock()
	cb.data = nil
}

// Len returns the element count.
func (cb *ConstBuffer[T]) Len() int { return len(cb.data) }

// CLd performs a metered constant-memory load of element i from within a
// kernel.
func CLd[T any](t *Thread, cb *ConstBuffer[T], i int) T {
	t.recordConst()
	return cb.data[i]
}
