package gpu

import "sync/atomic"

// atomicAddU32 adds delta to *p atomically and returns the previous value.
func atomicAddU32(p *uint32, delta uint32) uint32 {
	return atomic.AddUint32(p, delta) - delta
}
