package gpu

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func testDevice() *Device { return NewDevice(M2050()) }

func TestConfigDefaults(t *testing.T) {
	d := NewDevice(Config{})
	cfg := d.Config()
	if cfg.SMs != 14 || cfg.CoresPerSM != 32 || cfg.WarpSize != 32 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.TotalCores() != 448 {
		t.Errorf("TotalCores = %d, want 448", cfg.TotalCores())
	}
	if cfg.Name != "generic (simulated)" {
		t.Errorf("Name = %q", cfg.Name)
	}
}

func TestLaunchGeometryErrors(t *testing.T) {
	d := testDevice()
	if _, err := d.Launch(LaunchConfig{Grid: 0, Block: 32}, func(*Thread) {}); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 48}, func(*Thread) {}); err == nil {
		t.Error("non-warp-multiple block of 48 accepted")
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 16}, func(*Thread) {}); err != nil {
		t.Errorf("sub-warp block rejected: %v", err)
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 32, SharedF64: 1 << 20}, func(*Thread) {}); err == nil {
		t.Error("oversized shared memory accepted")
	}
}

func TestMustLaunchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLaunch did not panic on bad geometry")
		}
	}()
	testDevice().MustLaunch(LaunchConfig{Grid: 0, Block: 0}, func(*Thread) {})
}

func TestKernelComputesCorrectResult(t *testing.T) {
	d := testDevice()
	n := 1000
	in := Alloc[uint32](d, n)
	out := Alloc[uint32](d, n)
	src := make([]uint32, n)
	for i := range src {
		src[i] = uint32(i)
	}
	in.CopyIn(src)
	ls := d.MustLaunch(LaunchConfig{Name: "double", Grid: (n + 255) / 256, Block: 256}, func(t *Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		v := Ld(t, in, i)
		t.Exec(1)
		St(t, out, i, 2*v)
	})
	got := make([]uint32, n)
	out.CopyOut(got)
	for i := range got {
		if got[i] != uint32(2*i) {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], 2*i)
		}
	}
	if ls.Stats.GlobalLoads != int64(n) || ls.Stats.GlobalStores != int64(n) {
		t.Errorf("loads/stores = %d/%d, want %d/%d", ls.Stats.GlobalLoads, ls.Stats.GlobalStores, n, n)
	}
	if ls.Stats.Instructions < int64(3*n) {
		t.Errorf("instructions = %d, want >= %d", ls.Stats.Instructions, 3*n)
	}
}

func TestCoalescingDetection(t *testing.T) {
	d := testDevice()
	n := 4096
	buf := Alloc[uint32](d, n*33)

	// Fully coalesced: lane i reads element i.
	ls := d.MustLaunch(LaunchConfig{Name: "coalesced", Grid: n / 256, Block: 256}, func(t *Thread) {
		_ = Ld(t, buf, t.GlobalID())
	})
	if ls.CoalescingFactor > 1.01 {
		t.Errorf("coalesced access factor = %v, want ~1", ls.CoalescingFactor)
	}

	// Fully scattered: lane i reads element 33*i (each in its own 128 B
	// segment: 33*4 = 132 B stride).
	ls = d.MustLaunch(LaunchConfig{Name: "scattered", Grid: n / 256, Block: 256}, func(t *Thread) {
		_ = Ld(t, buf, 33*t.GlobalID())
	})
	if ls.CoalescingFactor < 31 {
		t.Errorf("scattered access factor = %v, want ~32", ls.CoalescingFactor)
	}
	if ls.Stats.GlobalTransactions < int64(n)-10 {
		t.Errorf("scattered transactions = %d, want ~%d", ls.Stats.GlobalTransactions, n)
	}
}

func TestTimingModelBandwidth(t *testing.T) {
	d := testDevice()
	n := 1 << 20
	buf := Alloc[uint32](d, n)
	ls := d.MustLaunch(LaunchConfig{Name: "stream", Grid: n / 256, Block: 256}, func(t *Thread) {
		_ = Ld(t, buf, t.GlobalID())
	})
	// 1 Mi coalesced 4-byte loads = 4 MiB moved; at 82 GB/s that is ~51 us.
	wantMem := float64(n) * 4 / d.cfg.PeakBandwidth
	if ls.MemorySeconds < wantMem*0.9 || ls.MemorySeconds > wantMem*1.5 {
		t.Errorf("memory leg = %v, want ~%v", ls.MemorySeconds, wantMem)
	}
	if ls.Stats.SimSeconds < math.Max(ls.MemorySeconds, ls.ComputeSeconds) {
		t.Error("SimSeconds below max(compute, memory)")
	}
}

func TestSharedMemoryAndSync(t *testing.T) {
	d := testDevice()
	blocks, bs := 8, 128
	out := Alloc[float64](d, blocks)
	// Block-wide tree reduction over shared memory, requiring barriers.
	d.MustLaunch(LaunchConfig{Name: "reduce", Grid: blocks, Block: bs, SharedF64: bs, Sync: true}, func(t *Thread) {
		t.SetSharedF64(t.Lane, float64(t.Lane))
		t.Sync()
		for stride := bs / 2; stride > 0; stride /= 2 {
			if t.Lane < stride {
				t.AddSharedF64(t.Lane, t.SharedF64(t.Lane+stride))
			}
			t.Sync()
		}
		if t.Lane == 0 {
			St(t, out, t.Block, t.SharedF64(0))
		}
	})
	want := float64(bs*(bs-1)) / 2
	for b := 0; b < blocks; b++ {
		if out.Host()[b] != want {
			t.Fatalf("block %d reduction = %v, want %v", b, out.Host()[b], want)
		}
	}
}

func TestSyncWithEarlyExit(t *testing.T) {
	d := testDevice()
	bs := 64
	out := Alloc[uint32](d, bs)
	// Half the threads return before the barrier; the rest must not hang.
	done := make(chan struct{})
	go func() {
		d.MustLaunch(LaunchConfig{Name: "early-exit", Grid: 1, Block: bs, Sync: true}, func(t *Thread) {
			if t.Lane%2 == 1 {
				return
			}
			t.Sync()
			St(t, out, t.Lane, 1)
		})
		close(done)
	}()
	<-done
	for i := 0; i < bs; i += 2 {
		if out.Host()[i] != 1 {
			t.Fatalf("surviving lane %d did not pass the barrier", i)
		}
	}
}

func TestSyncPanicsWithoutSyncConfig(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Error("Sync in async launch did not panic")
		}
	}()
	d.MustLaunch(LaunchConfig{Grid: 1, Block: 32}, func(t *Thread) { t.Sync() })
}

func TestSharedU32(t *testing.T) {
	d := testDevice()
	out := Alloc[uint32](d, 32)
	d.MustLaunch(LaunchConfig{Grid: 1, Block: 32, SharedU32: 32, Sync: true}, func(t *Thread) {
		t.SetSharedU32(t.Lane, uint32(t.Lane*10))
		t.Sync()
		St(t, out, t.Lane, t.SharedU32(31-t.Lane))
	})
	for i := 0; i < 32; i++ {
		if out.Host()[i] != uint32((31-i)*10) {
			t.Fatalf("shared u32 exchange wrong at %d: %d", i, out.Host()[i])
		}
	}
}

func TestAtomicAddU32(t *testing.T) {
	d := testDevice()
	counter := Alloc[uint32](d, 1)
	n := 64 * 256
	d.MustLaunch(LaunchConfig{Grid: 64, Block: 256}, func(t *Thread) {
		AtomicAddU32(t, counter, 0, 1)
	})
	if counter.Host()[0] != uint32(n) {
		t.Errorf("atomic counter = %d, want %d", counter.Host()[0], n)
	}
}

func TestConstBuffer(t *testing.T) {
	d := testDevice()
	tbl := []float64{1, 2, 3, 4}
	cb, err := NewConst(d, tbl)
	if err != nil {
		t.Fatalf("NewConst: %v", err)
	}
	if cb.Len() != 4 {
		t.Errorf("Len = %d", cb.Len())
	}
	out := Alloc[float64](d, 4)
	ls := d.MustLaunch(LaunchConfig{Grid: 1, Block: 4}, func(t *Thread) {
		St(t, out, t.Lane, CLd(t, cb, t.Lane)*10)
	})
	for i := range tbl {
		if out.Host()[i] != tbl[i]*10 {
			t.Fatalf("const load wrong at %d", i)
		}
	}
	if ls.Stats.ConstLoads != 4 {
		t.Errorf("ConstLoads = %d, want 4", ls.Stats.ConstLoads)
	}
	// Constant loads must not add global transactions beyond the stores.
	if ls.Stats.GlobalLoads != 0 {
		t.Errorf("const loads counted as global: %d", ls.Stats.GlobalLoads)
	}
	cb.Free()

	if _, err := NewConst(d, make([]float64, 1<<20)); err == nil {
		t.Error("oversized constant allocation accepted")
	}
}

func TestAllocAccountingAndOOM(t *testing.T) {
	d := NewDevice(Config{GlobalMemBytes: 1 << 20})
	b := Alloc[uint32](d, 1024)
	if d.AllocatedBytes() != 4096 {
		t.Errorf("AllocatedBytes = %d, want 4096", d.AllocatedBytes())
	}
	b.Free()
	if d.AllocatedBytes() != 0 {
		t.Errorf("AllocatedBytes after Free = %d", d.AllocatedBytes())
	}
	defer func() {
		if recover() == nil {
			t.Error("OOM allocation did not panic")
		}
	}()
	Alloc[uint32](d, 1<<20)
}

func TestStatsAccumulationAndReset(t *testing.T) {
	d := testDevice()
	buf := Alloc[uint32](d, 256)
	d.MustLaunch(LaunchConfig{Grid: 1, Block: 256}, func(t *Thread) { _ = Ld(t, buf, t.Lane) })
	d.MustLaunch(LaunchConfig{Grid: 1, Block: 256}, func(t *Thread) { St(t, buf, t.Lane, 1) })
	s := d.Stats()
	if s.Kernels != 2 {
		t.Errorf("Kernels = %d", s.Kernels)
	}
	if s.GlobalLoads != 256 || s.GlobalStores != 256 {
		t.Errorf("loads/stores = %d/%d", s.GlobalLoads, s.GlobalStores)
	}
	if len(d.Launches()) != 2 {
		t.Errorf("Launches len = %d", len(d.Launches()))
	}
	if d.SimTime() <= 0 {
		t.Error("SimTime not advanced")
	}
	d.ResetStats()
	if d.Stats().Kernels != 0 || d.SimTime() != 0 || len(d.Launches()) != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestStatsSubAndPerWarp(t *testing.T) {
	a := Stats{Instructions: 6400, SharedLoads: 320, SharedStores: 64, GlobalLoads: 10}
	b := Stats{Instructions: 400, SharedLoads: 20, GlobalLoads: 4}
	diff := a.Sub(b)
	if diff.Instructions != 6000 || diff.SharedLoads != 300 || diff.GlobalLoads != 6 {
		t.Errorf("Sub wrong: %+v", diff)
	}
	if got := a.InstPerWarp(32); got != 200 {
		t.Errorf("InstPerWarp = %v", got)
	}
	ld, st := a.SharedPerWarp(32)
	if ld != 10 || st != 2 {
		t.Errorf("SharedPerWarp = %v, %v", ld, st)
	}
	if a.InstPerWarp(0) != 200 {
		t.Error("InstPerWarp(0) default warp size wrong")
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestCopyAccounting(t *testing.T) {
	d := testDevice()
	b := Alloc[uint32](d, 1024)
	src := make([]uint32, 1024)
	b.CopyIn(src)
	b.CopyOut(src)
	s := d.Stats()
	if s.H2DBytes != 4096 || s.D2HBytes != 4096 {
		t.Errorf("copy bytes = %d/%d", s.H2DBytes, s.D2HBytes)
	}
	wantT := 2 * 4096 / d.cfg.PCIeBandwidth
	if math.Abs(d.SimTime()-wantT) > wantT*0.01 {
		t.Errorf("copy sim time = %v, want %v", d.SimTime(), wantT)
	}
}

func TestFastMathDiffers(t *testing.T) {
	exact := NewDevice(M2050())
	cfgFast := M2050()
	cfgFast.FastMath = true
	fast := NewDevice(cfgFast)

	diffs := 0
	total := 0
	run := func(d *Device) []float64 {
		out := Alloc[float64](d, 4096)
		d.MustLaunch(LaunchConfig{Grid: 16, Block: 256}, func(t *Thread) {
			x := 1.0 + float64(t.GlobalID())*0.37
			St(t, out, t.GlobalID(), t.Log10(x))
		})
		return out.Host()
	}
	a, b := run(exact), run(fast)
	for i := range a {
		total++
		if a[i] != b[i] {
			diffs++
		}
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("fast math wildly off at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if diffs == 0 {
		t.Error("fast math produced bit-identical results; cannot demonstrate the Section IV-G inconsistency")
	}
	// The paper observed ~0.1% of *final results* differing; raw log calls
	// differ more often. Just require it to be a minority-to-moderate
	// fraction, not everything.
	if diffs == total {
		t.Logf("all %d values differ slightly (acceptable for raw calls)", total)
	}
	host := make([]float64, 10)
	for i := range host {
		if math.Log10(1.5+float64(i)) != host[i] && host[i] != 0 {
			t.Fatal("unexpected host table state")
		}
	}
}

func TestConcurrentLaunches(t *testing.T) {
	d := testDevice()
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := Alloc[uint32](d, 512)
			d.MustLaunch(LaunchConfig{Grid: 2, Block: 256}, func(t *Thread) {
				St(t, buf, t.GlobalID(), uint32(t.GlobalID()))
			})
			buf.Free()
		}()
	}
	wg.Wait()
	if d.Stats().Kernels != 8 {
		t.Errorf("Kernels = %d, want 8", d.Stats().Kernels)
	}
}

func TestInstPerWarpMatchesManualCount(t *testing.T) {
	d := testDevice()
	ls := d.MustLaunch(LaunchConfig{Grid: 1, Block: 64}, func(t *Thread) {
		t.Exec(10)
	})
	// 64 threads x 10 instructions / 32 lanes per warp = 20 per warp.
	if got := ls.Stats.InstPerWarp(d.Config().WarpSize); got != 20 {
		t.Errorf("InstPerWarp = %v, want 20", got)
	}
}

func TestProfile(t *testing.T) {
	d := testDevice()
	buf := Alloc[uint32](d, 1024)
	for k := 0; k < 3; k++ {
		d.MustLaunch(LaunchConfig{Name: "alpha", Grid: 4, Block: 256}, func(t *Thread) {
			_ = Ld(t, buf, t.GlobalID())
		})
	}
	d.MustLaunch(LaunchConfig{Name: "beta", Grid: 1, Block: 32}, func(t *Thread) {
		St(t, buf, t.Lane, 1)
	})
	prof := d.Profile()
	if len(prof) != 2 {
		t.Fatalf("profile has %d kernels", len(prof))
	}
	byName := map[string]KernelProfile{}
	for _, p := range prof {
		byName[p.Name] = p
	}
	a := byName["alpha"]
	if a.Launches != 3 || a.GlobalLoads != 3*1024 || a.SimSeconds <= 0 {
		t.Errorf("alpha profile wrong: %+v", a)
	}
	if a.AvgCoalescing < 0.9 || a.AvgCoalescing > 1.5 {
		t.Errorf("alpha coalescing = %v, want ~1", a.AvgCoalescing)
	}
	bp := byName["beta"]
	if bp.Launches != 1 || bp.GlobalStores != 32 {
		t.Errorf("beta profile wrong: %+v", bp)
	}
	text := d.FormatProfile()
	if !strings.Contains(text, "alpha") || !strings.Contains(text, "beta") {
		t.Errorf("FormatProfile missing kernels:\n%s", text)
	}
}

func TestWarpInstructionAccounting(t *testing.T) {
	d := testDevice()
	// Balanced: every lane executes 10 instructions -> warp max = 10.
	ls := d.MustLaunch(LaunchConfig{Grid: 1, Block: 64}, func(t *Thread) { t.Exec(10) })
	if ls.Stats.WarpInstructions != 20 {
		t.Errorf("balanced warp instructions = %d, want 20 (2 warps x 10)", ls.Stats.WarpInstructions)
	}
	// Divergent: one lane per warp does all the work; the warp still pays
	// its longest lane.
	ls = d.MustLaunch(LaunchConfig{Grid: 1, Block: 64}, func(t *Thread) {
		if t.Lane%32 == 0 {
			t.Exec(100)
		}
	})
	if ls.Stats.WarpInstructions != 200 {
		t.Errorf("divergent warp instructions = %d, want 200", ls.Stats.WarpInstructions)
	}
	if ls.Stats.Instructions != 200 {
		t.Errorf("thread instructions = %d, want 200", ls.Stats.Instructions)
	}
	// Divergence costs compute time: the divergent launch has the same
	// thread-instruction count as a 2-lane balanced kernel but 32x the
	// issue slots of a hypothetical packed layout.
	if ls.ComputeSeconds <= 0 {
		t.Error("compute leg empty")
	}
}
