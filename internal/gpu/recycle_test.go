package gpu

import (
	"sync"
	"testing"
)

// TestDoubleFreeGuard pins the idempotent Free semantics: a second Free of
// the same buffer must not disturb the device accounting, must not alias
// the recycled storage into two later allocations, and is counted in
// Stats.DoubleFrees.
func TestDoubleFreeGuard(t *testing.T) {
	d := testDevice()
	b := Alloc[uint32](d, 1024)
	if got := d.AllocatedBytes(); got != 4096 {
		t.Fatalf("allocated %d B, want 4096", got)
	}
	b.Free()
	if got := d.AllocatedBytes(); got != 0 {
		t.Fatalf("after Free: allocated %d B, want 0", got)
	}
	b.Free()
	if got := d.AllocatedBytes(); got != 0 {
		t.Errorf("after double Free: allocated %d B, want 0", got)
	}
	if got := d.Stats().DoubleFrees; got != 1 {
		t.Errorf("DoubleFrees = %d, want 1", got)
	}

	// The dangerous consequence a free-list introduces: a double push
	// would hand the same backing array to two live buffers. Two fresh
	// allocations after the double Free must not alias.
	x := Alloc[uint32](d, 1024)
	y := Alloc[uint32](d, 1024)
	if &x.Host()[0] == &y.Host()[0] {
		t.Fatal("double Free pushed the storage twice: two live buffers alias one array")
	}
	x.Free()
	y.Free()

	cb, err := NewConst(d, []uint8{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cb.Free()
	cb.Free()
	if got := d.Stats().DoubleFrees; got != 2 {
		t.Errorf("DoubleFrees after ConstBuffer double Free = %d, want 2", got)
	}
}

// TestBufferRecycling pins the device free-list: a freed buffer's backing
// storage must be reused by the next same-type allocation that fits, and
// it must come back zeroed, indistinguishable from a fresh cudaMalloc.
func TestBufferRecycling(t *testing.T) {
	d := testDevice()
	a := Alloc[uint32](d, 1000)
	a.Host()[0] = 42
	a.Host()[999] = 7
	p := &a.Host()[0]
	a.Free()

	b := Alloc[uint32](d, 1000)
	if &b.Host()[0] != p {
		t.Error("equal-size Alloc after Free did not recycle the backing storage")
	}
	for i, v := range b.Host() {
		if v != 0 {
			t.Fatalf("recycled storage not zeroed at %d: %d", i, v)
		}
	}
	b.Free()

	// A smaller request fits in the recycled capacity too.
	c := Alloc[uint32](d, 500)
	if &c.Host()[0] != p {
		t.Error("smaller Alloc did not reuse the recycled storage")
	}
	if c.Len() != 500 {
		t.Errorf("recycled buffer has length %d, want 500", c.Len())
	}
	c.Free()

	// A different element type of the same byte size must not steal the
	// entry.
	f := Alloc[float32](d, 1000)
	g := Alloc[uint32](d, 1000)
	if &g.Host()[0] != p {
		t.Error("recycled uint32 storage lost to a float32 allocation of the same size class")
	}
	f.Free()
	g.Free()
}

// TestLaunchSteadyStateAllocs gates the per-launch recycling of the block
// scratch (thread contexts, shared memory, coalescing samples): warm
// launches of all three kernel forms must allocate almost nothing. The
// legacy Sync form still spawns one goroutine per thread, so only the
// async and phased forms are bounded tightly.
func TestLaunchSteadyStateAllocs(t *testing.T) {
	d := testDevice()
	buf := Alloc[uint32](d, 4096)
	defer buf.Free()

	async := func() {
		d.MustLaunch(LaunchConfig{Name: "warm_async", Grid: 16, Block: 256}, func(t *Thread) {
			i := t.GlobalID()
			St(t, buf, i, Ld(t, buf, i)+1)
		})
	}
	phased := func() {
		d.MustLaunchPhased(LaunchConfig{Name: "warm_phased", Grid: 16, Block: 256, SharedU32: 256}, 3, func(t *Thread, p int) bool {
			switch p {
			case 0:
				t.SetSharedU32(t.Lane, Ld(t, buf, t.GlobalID()))
				return true
			case 1:
				t.Exec(1)
				return true
			default:
				St(t, buf, t.GlobalID(), t.SharedU32(t.Lane))
				return false
			}
		})
	}
	async()
	phased()
	if got := testing.AllocsPerRun(10, async); got > 8 {
		t.Errorf("steady-state async launch allocates %.1f times (gate: 8)", got)
	}
	if got := testing.AllocsPerRun(10, phased); got > 8 {
		t.Errorf("steady-state phased launch allocates %.1f times (gate: 8)", got)
	}
}

// TestPhasedMatchesSyncAccounting pins the metering equivalence the phased
// execution model is built on: the same barrier-structured kernel written
// as a PhasedKernel and as a goroutine-per-thread Sync kernel must produce
// identical counters — including lanes that retire before the last
// barrier, which pay for the barriers they reached and nothing more.
func TestPhasedMatchesSyncAccounting(t *testing.T) {
	run := func(d *Device) (phased, legacy LaunchStats) {
		phased = d.MustLaunchPhased(LaunchConfig{Name: "p", Grid: 2, Block: 64, SharedU32: 64}, 3, func(t *Thread, p int) bool {
			switch p {
			case 0:
				t.SetSharedU32(t.Lane, uint32(t.Lane))
				return t.Lane < 32 // upper half retires before the first barrier
			case 1:
				t.Exec(1)
				return true
			default:
				t.Exec(2)
				return false
			}
		})
		legacy = d.MustLaunch(LaunchConfig{Name: "s", Grid: 2, Block: 64, SharedU32: 64, Sync: true}, func(t *Thread) {
			t.SetSharedU32(t.Lane, uint32(t.Lane))
			if t.Lane >= 32 {
				return
			}
			t.Sync()
			t.Exec(1)
			t.Sync()
			t.Exec(2)
		})
		return phased, legacy
	}
	p, s := run(testDevice())
	if p.Stats.Instructions != s.Stats.Instructions {
		t.Errorf("Instructions: phased %d, sync %d", p.Stats.Instructions, s.Stats.Instructions)
	}
	if p.Stats.WarpInstructions != s.Stats.WarpInstructions {
		t.Errorf("WarpInstructions: phased %d, sync %d", p.Stats.WarpInstructions, s.Stats.WarpInstructions)
	}
	if p.Stats.SharedStores != s.Stats.SharedStores {
		t.Errorf("SharedStores: phased %d, sync %d", p.Stats.SharedStores, s.Stats.SharedStores)
	}
	if p.Stats.SimSeconds != s.Stats.SimSeconds {
		t.Errorf("SimSeconds: phased %g, sync %g", p.Stats.SimSeconds, s.Stats.SimSeconds)
	}
	// Exact expected count: all 128 lanes pay 1 (shared store); the 64
	// surviving lanes add 2 barriers (16 each) + 1 + 2 = 35 more.
	want := int64(128*1 + 64*35)
	if p.Stats.Instructions != want {
		t.Errorf("Instructions = %d, want %d", p.Stats.Instructions, want)
	}
}

// TestLaunchPhasedValidation covers the phased-specific error paths.
func TestLaunchPhasedValidation(t *testing.T) {
	d := testDevice()
	if _, err := d.LaunchPhased(LaunchConfig{Name: "bad", Grid: 1, Block: 32}, 0, func(t *Thread, p int) bool { return false }); err == nil {
		t.Error("LaunchPhased with 0 phases did not error")
	}
	if _, err := d.LaunchPhased(LaunchConfig{Name: "bad", Grid: 0, Block: 32}, 1, func(t *Thread, p int) bool { return false }); err == nil {
		t.Error("LaunchPhased with bad geometry did not error")
	}
	// Sync inside a phased kernel is a contract violation (the barrier is
	// implicit between phases) and must panic like async launches do.
	defer func() {
		if recover() == nil {
			t.Error("Thread.Sync inside a phased kernel did not panic")
		}
	}()
	d.MustLaunchPhased(LaunchConfig{Name: "bad", Grid: 1, Block: 32}, 1, func(t *Thread, p int) bool {
		t.Sync()
		return false
	})
}

// TestResetStatsInFlightLaunch pins the accumulator handoff: a ResetStats
// issued while a launch is mid-flight must produce a clean zero origin —
// the in-flight launch still returns its own LaunchStats but may not
// commit them to the device totals afterwards. The kernel blocks on a
// channel so the interleaving is deterministic; run with -race this also
// exercises the locking of the handoff.
func TestResetStatsInFlightLaunch(t *testing.T) {
	d := testDevice()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var ls LaunchStats
	done := make(chan struct{})
	go func() {
		defer close(done)
		ls = d.MustLaunch(LaunchConfig{Name: "gated", Grid: 1, Block: 1}, func(t *Thread) {
			t.Exec(3)
			once.Do(func() { close(started) })
			<-release
		})
	}()
	<-started
	d.ResetStats()
	close(release)
	<-done

	if got := ls.Stats.Instructions; got != 3 {
		t.Errorf("in-flight launch returned Instructions=%d, want 3", got)
	}
	after := d.Stats()
	if after.Kernels != 0 || after.Instructions != 0 {
		t.Errorf("in-flight launch leaked into reset totals: kernels=%d inst=%d", after.Kernels, after.Instructions)
	}
	if n := len(d.Launches()); n != 0 {
		t.Errorf("in-flight launch appended %d launch records after ResetStats", n)
	}
	if got := d.SimTime(); got != 0 {
		t.Errorf("in-flight launch advanced the reset clock to %g", got)
	}

	// A fresh launch after the reset accumulates normally.
	d.MustLaunch(LaunchConfig{Name: "next", Grid: 1, Block: 1}, func(t *Thread) { t.Exec(1) })
	if got := d.Stats().Kernels; got != 1 {
		t.Errorf("post-reset launch count = %d, want 1", got)
	}
}
