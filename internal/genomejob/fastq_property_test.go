package genomejob

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"gsnp/internal/align"
	"gsnp/internal/dna"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

// writeFASTQUnit materializes one simulated chromosome as the FASTQ
// pipeline's on-disk inputs (<name>.fa + <name>.fq, no priors) and
// returns the Unit describing them.
func writeFASTQUnit(t *testing.T, dir string, ds *seqsim.Dataset) Unit {
	t.Helper()
	name := ds.Spec.Name
	fa := filepath.Join(dir, name+".fa")
	fq := filepath.Join(dir, name+".fq")

	f, err := os.Create(fa)
	if err != nil {
		t.Fatal(err)
	}
	if err := snpio.WriteFASTA(f, snpio.FASTARecord{Name: name, Seq: ds.Ref.Seq}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raws := make([]align.RawRead, len(ds.Reads))
	for i := range ds.Reads {
		raws[i] = align.RawFromAligned(&ds.Reads[i])
	}
	f, err = os.Create(fq)
	if err != nil {
		t.Fatal(err)
	}
	if err := snpio.WriteFASTQ(f, raws); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return Unit{Name: name + ".fa", Ref: fa, Aln: fq}
}

// genotypeByIUPAC inverts dna.Genotype.IUPAC (the code the result table
// prints in its genotype column).
func genotypeByIUPAC(t *testing.T, code byte) dna.Genotype {
	t.Helper()
	for rank := 0; rank < dna.NGenotypes; rank++ {
		g := dna.GenotypeByRank(rank)
		if g.IUPAC() == code {
			return g
		}
	}
	t.Fatalf("no genotype has IUPAC code %q", code)
	return 0
}

// TestFASTQToVCFProperties checks semantic invariants of the VCF codec
// against the reference and the 17-column table over a corpus of
// fuzz-seeded simulated chromosomes: every record's POS is in range and
// its REF matches the reference FASTA base at that position, the ALT set
// is non-reference and duplicate-free, and the GT indices select exactly
// the allele pair of the table's IUPAC consensus genotype at the same
// site. The VCF must carry one record per SNP row of the table — no
// variant invented, none dropped.
func TestFASTQToVCFProperties(t *testing.T) {
	totalVariants := 0
	for _, seed := range []int64{3, 17, 92, 441, 1009, 31337} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := seqsim.ChromosomeSpec{
				Name: "chrProp", Length: 9000, Depth: 9, MaskFraction: 0.1, Seed: seed,
			}
			ds := seqsim.BuildDataset(spec)
			u := writeFASTQUnit(t, t.TempDir(), ds)

			opts := Options{Engine: "gsnp-cpu", Format: "fastq"}
			var rowsOut, vcfOut bytes.Buffer
			if _, err := Call(context.Background(), opts, u, &rowsOut, io.Discard, nil); err != nil {
				t.Fatal(err)
			}
			opts.OutputFormat = "vcf"
			if _, err := Call(context.Background(), opts, u, &vcfOut, io.Discard, nil); err != nil {
				t.Fatal(err)
			}

			// Index the table by position and count its SNP rows.
			rows := make(map[int64]snpio.Row)
			snpRows := 0
			for _, line := range strings.Split(strings.TrimRight(rowsOut.String(), "\n"), "\n") {
				r, err := snpio.ParseRow(line)
				if err != nil {
					t.Fatal(err)
				}
				rows[r.Pos] = r
				if r.IsSNP() {
					snpRows++
				}
			}

			vcf := vcfOut.String()
			if !strings.HasPrefix(vcf, "##fileformat=VCFv4.2\n") {
				t.Fatalf("VCF output misses the version header:\n%.200s", vcf)
			}
			records := 0
			for _, line := range strings.Split(strings.TrimRight(vcf, "\n"), "\n") {
				if strings.HasPrefix(line, "#") {
					continue
				}
				records++
				f := strings.Split(line, "\t")
				if len(f) != 10 {
					t.Fatalf("VCF record has %d fields, want 10: %q", len(f), line)
				}
				if f[0] != "chrProp" {
					t.Errorf("CHROM = %q, want chrProp", f[0])
				}
				pos, err := strconv.ParseInt(f[1], 10, 64)
				if err != nil || pos < 1 || pos > int64(len(ds.Ref.Seq)) {
					t.Fatalf("POS %q out of [1, %d]", f[1], len(ds.Ref.Seq))
				}
				if len(f[3]) != 1 || f[3][0] != ds.Ref.Seq[pos-1].Byte() {
					t.Errorf("pos %d: REF = %q, reference FASTA has %c", pos, f[3], ds.Ref.Seq[pos-1].Byte())
				}
				qual, err := strconv.Atoi(f[5])
				if err != nil || qual < 0 || qual > 99 {
					t.Errorf("pos %d: QUAL %q outside the Phred range [0, 99]", pos, f[5])
				}
				if f[6] != "PASS" {
					t.Errorf("pos %d: FILTER = %q, want PASS", pos, f[6])
				}
				if f[8] != "GT:GQ" {
					t.Errorf("pos %d: FORMAT = %q, want GT:GQ", pos, f[8])
				}

				// ALT: non-reference, duplicate-free, parseable bases.
				alts := strings.Split(f[4], ",")
				if len(alts) < 1 || len(alts) > 2 {
					t.Fatalf("pos %d: %d ALT alleles: %q", pos, len(alts), f[4])
				}
				alleles := []string{f[3]}
				for _, a := range alts {
					if a == f[3] {
						t.Errorf("pos %d: ALT %q equals REF", pos, a)
					}
					if len(a) != 1 {
						t.Fatalf("pos %d: multi-base ALT %q", pos, a)
					}
					if _, ok := dna.ParseBase(a[0]); !ok {
						t.Fatalf("pos %d: ALT %q is not a base", pos, a)
					}
					for _, seen := range alleles[1:] {
						if seen == a {
							t.Errorf("pos %d: duplicate ALT %q", pos, a)
						}
					}
					alleles = append(alleles, a)
				}

				// Sample column: GT indices select the table's consensus
				// genotype; GQ mirrors QUAL.
				gt, gq, ok := strings.Cut(f[9], ":")
				if !ok || gq != f[5] {
					t.Errorf("pos %d: sample %q, want GT:%s", pos, f[9], f[5])
				}
				i1, i2, ok := strings.Cut(gt, "/")
				if !ok {
					t.Fatalf("pos %d: unphased GT %q expected", pos, gt)
				}
				a1, err1 := strconv.Atoi(i1)
				a2, err2 := strconv.Atoi(i2)
				if err1 != nil || err2 != nil || a1 < 0 || a2 < 0 ||
					a1 >= len(alleles) || a2 >= len(alleles) {
					t.Fatalf("pos %d: GT %q indexes outside REF+ALT (%d alleles)", pos, gt, len(alleles))
				}
				if a1 == 0 && a2 == 0 {
					t.Errorf("pos %d: GT 0/0 in a variants-only VCF", pos)
				}
				row, ok := rows[pos]
				if !ok {
					t.Fatalf("pos %d: VCF variant absent from the result table", pos)
				}
				if !row.IsSNP() {
					t.Errorf("pos %d: table row is homozygous-reference, VCF calls %q", pos, gt)
				}
				w1, w2 := genotypeByIUPAC(t, row.Genotype).Alleles()
				got := []byte{alleles[a1][0], alleles[a2][0]}
				want := []byte{w1.Byte(), w2.Byte()}
				if got[0] > got[1] {
					got[0], got[1] = got[1], got[0]
				}
				if want[0] > want[1] {
					want[0], want[1] = want[1], want[0]
				}
				if got[0] != want[0] || got[1] != want[1] {
					t.Errorf("pos %d: GT alleles %c/%c, consensus genotype %c is %c/%c",
						pos, got[0], got[1], row.Genotype, want[0], want[1])
				}
			}
			if records != snpRows {
				t.Errorf("VCF has %d records, result table has %d SNP rows", records, snpRows)
			}
			totalVariants += records
		})
	}
	if totalVariants == 0 {
		t.Error("corpus produced no variants at all; the property checks were vacuous")
	}
}
