// Package genomejob is the shared decomposition of a genome-calling job
// into per-chromosome work units, used by both the gsnp CLI's -genome-dir
// batch mode and the gsnpd service. A job is a set of <name>.fa/<name>.aln
// pairs (the paper's production layout: 24 separate chromosome data sets);
// each pair becomes one Unit, and Call runs one Unit through the selected
// engine. Keeping discovery and engine dispatch here guarantees the CLI
// and the service produce byte-identical output for the same inputs.
package genomejob

import (
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gsnp/internal/align"
	"gsnp/internal/checkpoint"
	"gsnp/internal/dna"
	"gsnp/internal/faults"
	"gsnp/internal/gpu"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
	"gsnp/internal/snpio"
	"gsnp/internal/soapsnp"
)

// Options selects the engine configuration shared by every unit of a job.
type Options struct {
	// Engine is soapsnp, gsnp-cpu or gsnp-gpu.
	Engine string
	// Format is the alignment format: soap, sam, or fastq (raw reads;
	// a unit's input is aligned in-process before calling).
	Format string
	// Window is sites per window (0 = engine default).
	Window int
	// ComputeWorkers shards likelihood/posterior within a window
	// (gsnp-cpu; 0 = GOMAXPROCS).
	ComputeWorkers int
	// Prefetch overlaps window read I/O with computation.
	Prefetch bool
	// Compress writes the GSNP compressed container (gsnp engines only).
	Compress bool
	// Quarantine contains malformed records and panicking windows instead
	// of aborting the unit.
	Quarantine bool
	// Stats writes per-component timing diagnostics to Call's diag writer.
	Stats bool
	// Injector injects deterministic failures (testing; see internal/faults).
	Injector *faults.Injector
	// OutputFormat selects the result codec: "" or "rows" for the paper's
	// 17-column table, "vcf" for VCFv4.2 variant records.
	OutputFormat string
	// AlignMaxMismatch is the aligner's per-read mismatch budget
	// (Format fastq only; 0 = align.DefaultMaxMismatch).
	AlignMaxMismatch int
	// AlignSeedLen is the aligner's k-mer seed length (Format fastq only;
	// 0 = align.DefaultK, max 31).
	AlignSeedLen int
	// AlignWorkers shards the alignment stage of a fastq unit (0 =
	// GOMAXPROCS). Output is byte-identical at every setting, so the knob
	// is fingerprint-exempt like the other concurrency options.
	AlignWorkers int
}

// VCF reports whether the options select the VCF output codec.
func (o *Options) VCF() bool { return o.OutputFormat == "vcf" }

// alignParams resolves the aligner's fingerprinted parameters to their
// effective values, so "default" and "explicitly the default" fingerprint
// (and cache) identically.
func (o *Options) alignParams() (mm, k int) {
	mm, k = o.AlignMaxMismatch, o.AlignSeedLen
	if mm == 0 {
		mm = align.DefaultMaxMismatch
	}
	if k == 0 {
		k = align.DefaultK
	}
	return mm, k
}

// Validate rejects unknown engine/format combinations with the same rules
// the CLI has always enforced.
func (o *Options) Validate() error {
	switch o.Engine {
	case "soapsnp":
		if o.Compress {
			return fmt.Errorf("compress requires a gsnp engine")
		}
	case "gsnp-cpu", "gsnp-gpu":
	default:
		return fmt.Errorf("unknown engine %q", o.Engine)
	}
	if o.Format != "soap" && o.Format != "sam" && o.Format != "fastq" {
		return fmt.Errorf("unknown alignment format %q", o.Format)
	}
	if o.Window < 0 {
		return fmt.Errorf("negative window %d", o.Window)
	}
	switch o.OutputFormat {
	case "", "rows":
	case "vcf":
		if o.Compress {
			return fmt.Errorf("vcf output and compress are mutually exclusive")
		}
	default:
		return fmt.Errorf("unknown output format %q", o.OutputFormat)
	}
	if o.Format != "fastq" {
		if o.AlignMaxMismatch != 0 || o.AlignSeedLen != 0 || o.AlignWorkers != 0 {
			return fmt.Errorf("aligner options require -format fastq")
		}
		return nil
	}
	if o.AlignMaxMismatch < 0 {
		return fmt.Errorf("negative aligner mismatch budget %d", o.AlignMaxMismatch)
	}
	if o.AlignSeedLen < 0 || o.AlignSeedLen > 31 {
		return fmt.Errorf("aligner seed length %d out of range [0, 31]", o.AlignSeedLen)
	}
	return nil
}

// Fingerprint returns the output-shaping configuration fingerprint — the
// canonical checkpoint.Fingerprint call both front-ends share. It feeds
// checkpoint resume validation and the gsnpd result-cache key, so every
// Options field that can change result bytes must flow into it; the
// pinning test in this package enumerates the fields against the exempt
// list (concurrency/diagnostic knobs with byte-identity guarantees).
//
// The VCF codec and the aligner parameters ride the fingerprint's extra
// slots, appended only when active: a pre-existing soap/sam job keeps the
// exact key it had before those options existed, so caches and
// checkpoints written by older builds stay valid (pinned by the
// compatibility test in this package).
func (o *Options) Fingerprint() string {
	var extra []string
	if o.VCF() {
		extra = append(extra, "output=vcf")
	}
	if o.Format == "fastq" {
		mm, k := o.alignParams()
		extra = append(extra, fmt.Sprintf("align-mm=%d align-k=%d", mm, k))
	}
	return checkpoint.Fingerprint(o.Engine, o.Format, o.Window, o.Compress, o.Quarantine, extra...)
}

// OutSuffix is the output-file suffix the options imply (.result,
// .result.gsnp for compressed containers, or .vcf).
func (o *Options) OutSuffix() string {
	if o.VCF() {
		return ".vcf"
	}
	if o.Compress {
		return ".result.gsnp"
	}
	return ".result"
}

// OutName maps a unit's task name (the .fa file's base name) to the
// output file name a batch run writes for it — the same derivation
// Discover applies to full paths, shared so the gsnpd journal's durable
// work directories use the CLI's exact layout and checkpoint keys.
func (o *Options) OutName(unitName string) string {
	return strings.TrimSuffix(unitName, ".fa") + o.OutSuffix()
}

// UnitDigests computes every unit's content digest in Discover order —
// the per-chromosome half of both the result-cache key and the job
// journal's recorded input identity.
func UnitDigests(units []Unit) ([]string, error) {
	digests := make([]string, len(units))
	for i, u := range units {
		d, err := u.ContentDigest()
		if err != nil {
			return nil, err
		}
		digests[i] = d
	}
	return digests, nil
}

// Unit is one chromosome's work: the input files and the output path a
// batch run would write. Name identifies the unit in reports (the .fa
// file's base name, matching the scheduler task names the CLI has always
// printed).
type Unit struct {
	Name string
	// Ref, Aln and SNP are input paths; SNP may be empty.
	Ref, Aln, SNP string
	// OutPath is where a batch run writes this unit's result (derived from
	// Ref and Options.OutSuffix; the service ignores it and streams bytes
	// instead).
	OutPath string
}

// ContentDigest returns a sha256 over the unit's name and the *bytes* of
// every input file (reference, alignment, and priors when present) — the
// content-addressed half of a job's cache key. Hashing contents rather
// than paths means a re-generated input invalidates naturally, and two
// paths holding identical data share one cache entry (an uploaded job and
// a genome-dir job over the same files hit the same key).
func (u Unit) ContentDigest() (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "unit %s\n", u.Name)
	for _, path := range []string{u.Ref, u.Aln, u.SNP} {
		if path == "" {
			fmt.Fprintln(h, "-")
			continue
		}
		d, err := checkpoint.FileDigest(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, d)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// AlnExt is the input-file extension a format implies: the format name
// itself for the alignment formats, "fq" for raw FASTQ reads. Discover's
// pairing and the service's upload spooling both use it, so an uploaded
// job and a genome-dir job over the same inputs lay out identically.
func AlnExt(format string) string {
	if format == "fastq" {
		return "fq"
	}
	return format
}

// Skipped records a reference file Discover could not pair with an
// alignment file.
type Skipped struct {
	Ref, Aln string
}

// Discover scans dir for <name>.fa references, pairing each with its
// <name>.<format> alignment file and optional <name>.snp priors. Units
// come back sorted by reference path — the deterministic input order the
// scheduler's guarantees are anchored to. References with no alignment
// file are returned in skipped rather than failing the whole job.
func Discover(dir string, o Options) (units []Unit, skipped []Skipped, err error) {
	fas, err := filepath.Glob(filepath.Join(dir, "*.fa"))
	if err != nil {
		return nil, nil, err
	}
	if len(fas) == 0 {
		return nil, nil, fmt.Errorf("no .fa files in %s", dir)
	}
	sort.Strings(fas)
	for _, fa := range fas {
		base := strings.TrimSuffix(fa, ".fa")
		aln := base + "." + AlnExt(o.Format)
		if _, err := os.Stat(aln); err != nil {
			skipped = append(skipped, Skipped{Ref: fa, Aln: aln})
			continue
		}
		snp := base + ".snp"
		if _, err := os.Stat(snp); err != nil {
			snp = ""
		}
		units = append(units, Unit{
			Name:    filepath.Base(fa),
			Ref:     fa,
			Aln:     aln,
			SNP:     snp,
			OutPath: base + o.OutSuffix(),
		})
	}
	return units, skipped, nil
}

// Result is what one unit's engine run reports back.
type Result struct {
	// Sites is the number of reference sites processed.
	Sites int
	// CalSkipped counts calibration records skipped under quarantine.
	CalSkipped int
	// Quarantined lists the windows quarantine mode contained.
	Quarantined []pipeline.Quarantine
}

// Partial reports whether the unit completed degraded: output exists but
// some windows or calibration records were lost to quarantine.
func (r Result) Partial() bool { return len(r.Quarantined) > 0 || r.CalSkipped > 0 }

// Call runs one unit through the selected engine, writing result rows to
// out and (with Options.Stats) diagnostics to diag. arena, when non-nil,
// supplies the recycled window working set (gsnp engines only).
func Call(ctx context.Context, o Options, u Unit, out, diag io.Writer, arena *gsnp.Arena) (Result, error) {
	var zero Result
	refFile, err := os.Open(u.Ref)
	if err != nil {
		return zero, err
	}
	recs, err := snpio.ReadFASTA(refFile)
	if cerr := refFile.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return zero, err
	}
	if len(recs) != 1 {
		return zero, fmt.Errorf("reference must hold exactly one sequence, found %d", len(recs))
	}
	ref := recs[0]

	var known snpio.KnownSNPs
	if u.SNP != "" {
		f, err := os.Open(u.SNP)
		if err != nil {
			return zero, err
		}
		all, err := snpio.ReadKnownSNPs(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return zero, err
		}
		known = all[ref.Name]
	}

	// The pipeline reads its input twice (cal_p_matrix, then the windowed
	// pass); the source reopens the alignment file per pass. Files ending
	// in .gz are decompressed transparently. Raw FASTQ input is aligned
	// in-process instead: the k-mer index is built once per reference, the
	// reads are sharded across AlignWorkers, and the position-sorted
	// result is served from memory — both passes stream straight from the
	// aligner's output, with no intermediate alignment file on disk.
	var src pipeline.Source
	if o.Format == "fastq" {
		aligned, err := alignUnit(&o, ref.Seq, u.Aln)
		if err != nil {
			return zero, err
		}
		src = pipeline.MemSource(aligned)
	} else {
		src = pipeline.FuncSource(func() (pipeline.ReadIter, error) {
			f, err := os.Open(u.Aln)
			if err != nil {
				return nil, err
			}
			it := &fileIter{f: f}
			var r io.Reader = f
			if strings.HasSuffix(u.Aln, ".gz") {
				zr, err := gzip.NewReader(f)
				if err != nil {
					f.Close()
					return nil, err
				}
				it.zr = zr
				r = zr
			}
			if o.Format == "sam" {
				it.it = snpio.NewSAMReader(r)
			} else {
				it.it = snpio.NewSOAPReader(r)
			}
			return it, nil
		})
	}

	// Fault injection (testing): each chromosome is an injector stream, so
	// schedules are deterministic per chromosome regardless of worker
	// interleaving; the stream also provides the engine's window hook.
	var hook func(ctx context.Context, window, start, end int) error
	if o.Injector != nil {
		st := o.Injector.Stream(ref.Name)
		src = st.WrapSource(src)
		hook = st.WindowHook
	}

	switch o.Engine {
	case "soapsnp":
		eng := soapsnp.New(soapsnp.Config{
			Chr: ref.Name, Ref: ref.Seq, Known: known,
			Window: o.Window, Prefetch: o.Prefetch,
			Quarantine: o.Quarantine, WindowHook: hook,
			VCFOutput: o.VCF(),
		})
		rep, err := eng.RunContext(ctx, src, out)
		if err != nil {
			return zero, err
		}
		if o.Stats {
			fmt.Fprintf(diag, "soapsnp: %d sites, %d SNPs, mean depth %.1fX\n%v\n",
				rep.Sites, rep.SNPs, rep.MeanDepth, rep.Times)
			if o.Prefetch {
				fmt.Fprintf(diag, "prefetch: %v\n", rep.Prefetch)
			}
		}
		return Result{Sites: rep.Sites, CalSkipped: rep.CalSkipped, Quarantined: rep.Quarantined}, nil
	default: // gsnp-cpu, gsnp-gpu
		cfg := gsnp.Config{
			Chr: ref.Name, Ref: ref.Seq, Known: known,
			Window: o.Window, CompressOutput: o.Compress,
			VCFOutput: o.VCF(),
			Prefetch:  o.Prefetch, ComputeWorkers: o.ComputeWorkers,
			Arena:      arena,
			Quarantine: o.Quarantine, WindowHook: hook,
		}
		if o.Engine == "gsnp-gpu" {
			cfg.Mode = gsnp.ModeGPU
			// One device per call: units scheduled concurrently must not
			// share simulated-device state.
			cfg.Device = gpu.NewDevice(gpu.M2050())
		} else {
			cfg.Mode = gsnp.ModeCPU
		}
		eng, err := gsnp.New(cfg)
		if err != nil {
			return zero, err
		}
		rep, err := eng.RunContext(ctx, src, out)
		if err != nil {
			return zero, err
		}
		if o.Stats {
			fmt.Fprintf(diag, "%s: %d sites, %d SNPs, mean depth %.1fX, %d output bytes\n%v\n",
				o.Engine, rep.Sites, rep.SNPs, rep.MeanDepth, rep.OutputBytes, rep.Times)
			if o.Prefetch {
				fmt.Fprintf(diag, "prefetch: %v\n", rep.Prefetch)
			}
			if cfg.Device != nil {
				fmt.Fprintf(diag, "\nsimulated device profile (%s):\n%s",
					cfg.Device.Config().Name, cfg.Device.FormatProfile())
			}
		}
		return Result{Sites: rep.Sites, CalSkipped: rep.CalSkipped, Quarantined: rep.Quarantined}, nil
	}
}

// alignUnit runs the alignment stage of a fastq unit: parse the raw
// reads, build the reference's k-mer seed index, and place every read,
// sharded across Options.AlignWorkers. The returned slice is
// position-sorted — exactly the order a SOAP input file would stream in —
// so the engines consume it unchanged. Alignment is a pure function of
// (reads, reference, parameters), so the output is byte-identical at
// every worker count.
func alignUnit(o *Options, ref dna.Sequence, fastqPath string) ([]reads.AlignedRead, error) {
	f, err := os.Open(fastqPath)
	if err != nil {
		return nil, err
	}
	var r io.Reader = f
	var zr *gzip.Reader
	if strings.HasSuffix(fastqPath, ".gz") {
		if zr, err = gzip.NewReader(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", fastqPath, err)
		}
		r = zr
	}
	raws, err := snpio.ReadFASTQ(r)
	if zr != nil {
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", fastqPath, err)
	}
	mm, k := o.alignParams()
	ix, err := align.BuildIndex(ref, k)
	if err != nil {
		return nil, err
	}
	return align.AlignReadsParallel(ix, raws, mm, o.AlignWorkers), nil
}

// fileIter adapts an alignment reader over an open file to
// pipeline.ReadIter, closing the decompressor (for .gz inputs) and the
// file when the stream ends — at EOF or on any stream-fatal read error, so
// an aborted pass doesn't leak the descriptor. Record-scoped parse errors
// leave the stream open: quarantine mode skips the record and keeps
// reading. A close failure surfaces instead of EOF so truncated gzip
// streams are reported rather than silently accepted.
type fileIter struct {
	f  *os.File
	zr *gzip.Reader
	it pipeline.ReadIter
}

func (it *fileIter) Next() (reads.AlignedRead, error) {
	r, err := it.it.Next()
	if err != nil && it.f != nil {
		var re pipeline.RecordError
		if errors.As(err, &re) {
			return r, err
		}
		if it.zr != nil {
			if cerr := it.zr.Close(); cerr != nil && err == io.EOF {
				err = cerr
			}
			it.zr = nil
		}
		if cerr := it.f.Close(); cerr != nil && err == io.EOF {
			err = cerr
		}
		it.f = nil
	}
	return r, err
}
