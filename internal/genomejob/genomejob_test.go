package genomejob

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gsnp/internal/align"
)

// TestFingerprintEnumeratesOptionsFields is the aliasing guard for the
// checkpoint/result-cache key: every Options field must be classified as
// either fingerprinted (it can change output bytes) or exempt (byte
// identity across it is guaranteed by tests, or it never shapes result
// bytes). A new field added to Options fails this test until it is
// classified — and if it shapes output, until Fingerprint carries it.
func TestFingerprintEnumeratesOptionsFields(t *testing.T) {
	// Fields that flow into Options.Fingerprint (via checkpoint.Fingerprint).
	fingerprinted := map[string]bool{
		"Engine":           true,
		"Format":           true,
		"Window":           true,
		"Compress":         true,
		"Quarantine":       true,
		"OutputFormat":     true,
		"AlignMaxMismatch": true,
		"AlignSeedLen":     true,
	}
	// Fields exempt from the fingerprint, each with the reason it is safe.
	exempt := map[string]string{
		"ComputeWorkers": "byte-identity pinned at every compute-worker count (PR 2/6 tests)",
		"Prefetch":       "byte-identity pinned with prefetch on and off (PR 1 tests)",
		"Stats":          "writes diagnostics to the diag writer, never to result bytes",
		"Injector":       "test-only fault injection; never set by production front-ends",
		"AlignWorkers":   "byte-identity pinned at every align-worker count (TestAlignReadsParallelMatchesSerial)",
	}
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		switch {
		case fingerprinted[name] && exempt[name] != "":
			t.Errorf("Options.%s is both fingerprinted and exempt", name)
		case !fingerprinted[name] && exempt[name] == "":
			t.Errorf("Options.%s is unclassified: add it to Fingerprint or document an exemption", name)
		}
	}
	for name := range fingerprinted {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("fingerprinted field %s no longer exists on Options", name)
		}
	}
	for name := range exempt {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("exempt field %s no longer exists on Options", name)
		}
	}
}

// TestFingerprintDistinguishesEveryInput: varying any fingerprinted field
// must change the fingerprint string, so no two byte-different
// configurations can alias one cache/checkpoint key.
func TestFingerprintDistinguishesEveryInput(t *testing.T) {
	base := Options{Engine: "gsnp-cpu", Format: "soap", Window: 1024}
	variants := map[string]Options{
		"Engine":       {Engine: "soapsnp", Format: "soap", Window: 1024},
		"Format":       {Engine: "gsnp-cpu", Format: "sam", Window: 1024},
		"Window":       {Engine: "gsnp-cpu", Format: "soap", Window: 2048},
		"Compress":     {Engine: "gsnp-cpu", Format: "soap", Window: 1024, Compress: true},
		"Quarantine":   {Engine: "gsnp-cpu", Format: "soap", Window: 1024, Quarantine: true},
		"OutputFormat": {Engine: "gsnp-cpu", Format: "soap", Window: 1024, OutputFormat: "vcf"},
	}
	fp := base.Fingerprint()
	for field, o := range variants {
		if o.Fingerprint() == fp {
			t.Errorf("changing %s does not change the fingerprint %q", field, fp)
		}
	}
	// The aligner parameters distinguish fastq configurations.
	fq := Options{Engine: "gsnp-cpu", Format: "fastq", Window: 1024}
	fqVariants := map[string]Options{
		"AlignMaxMismatch": {Engine: "gsnp-cpu", Format: "fastq", Window: 1024, AlignMaxMismatch: 3},
		"AlignSeedLen":     {Engine: "gsnp-cpu", Format: "fastq", Window: 1024, AlignSeedLen: 12},
	}
	for field, o := range fqVariants {
		if o.Fingerprint() == fq.Fingerprint() {
			t.Errorf("changing %s does not change the fingerprint %q", field, fq.Fingerprint())
		}
	}
	// Zero aligner params and their explicit defaults are the same
	// configuration, so they must share one cache/checkpoint key.
	fqDefault := fq
	fqDefault.AlignMaxMismatch = align.DefaultMaxMismatch
	fqDefault.AlignSeedLen = align.DefaultK
	if fqDefault.Fingerprint() != fq.Fingerprint() {
		t.Errorf("explicit default aligner params changed the fingerprint: %q vs %q",
			fqDefault.Fingerprint(), fq.Fingerprint())
	}
	// And the exempt concurrency knobs must NOT change it: a cached result
	// recorded at one worker count serves any other.
	same := base
	same.ComputeWorkers = 7
	same.Prefetch = true
	same.Stats = true
	if same.Fingerprint() != fp {
		t.Errorf("exempt fields changed the fingerprint: %q vs %q", same.Fingerprint(), fp)
	}
	fqSame := fq
	fqSame.AlignWorkers = 5
	if fqSame.Fingerprint() != fq.Fingerprint() {
		t.Errorf("AlignWorkers changed the fingerprint: %q vs %q", fqSame.Fingerprint(), fq.Fingerprint())
	}
}

// TestFingerprintBackwardCompatible pins the literal fingerprint of
// configurations that existed before the FASTQ/VCF options: their keys
// must never change, or every cached result and checkpoint written by an
// older build silently invalidates (and WAL recovery refuses to resume
// journaled jobs). The rows-vs-empty OutputFormat spelling is part of the
// contract: both mean the legacy codec and must alias the legacy key.
func TestFingerprintBackwardCompatible(t *testing.T) {
	legacy := Options{Engine: "gsnp-cpu", Format: "soap", Window: 1024}
	const want = "v1 engine=gsnp-cpu format=soap window=1024 compress=false quarantine=false"
	if got := legacy.Fingerprint(); got != want {
		t.Fatalf("legacy fingerprint changed:\n got %q\nwant %q", got, want)
	}
	rows := legacy
	rows.OutputFormat = "rows"
	if got := rows.Fingerprint(); got != want {
		t.Errorf("OutputFormat \"rows\" must alias the legacy key, got %q", got)
	}
	comp := Options{Engine: "gsnp-gpu", Format: "sam", Window: 4000, Compress: true, Quarantine: true}
	const wantComp = "v1 engine=gsnp-gpu format=sam window=4000 compress=true quarantine=true"
	if got := comp.Fingerprint(); got != wantComp {
		t.Fatalf("legacy compressed fingerprint changed:\n got %q\nwant %q", got, wantComp)
	}
	// New-option keys are extensions of the legacy grammar, stable in
	// their own right once shipped.
	vcf := Options{Engine: "gsnp-cpu", Format: "fastq", Window: 1024, OutputFormat: "vcf"}
	const wantVCF = "v1 engine=gsnp-cpu format=fastq window=1024 compress=false quarantine=false output=vcf align-mm=2 align-k=16"
	if got := vcf.Fingerprint(); got != wantVCF {
		t.Fatalf("fastq/vcf fingerprint changed:\n got %q\nwant %q", got, wantVCF)
	}
}

// TestContentDigest pins the content-addressing properties the result
// cache relies on: same bytes => same digest regardless of path; any
// input file's bytes changing => different digest; priors presence is
// part of the identity.
func TestContentDigest(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	u := Unit{
		Name: "chr1.fa",
		Ref:  write("chr1.fa", ">chr1\nACGT\n"),
		Aln:  write("chr1.soap", "r1\tACGT\t...\n"),
	}
	d1, err := u.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}

	// Same contents under different paths: identical digest.
	u2 := Unit{
		Name: "chr1.fa",
		Ref:  write("copy.fa", ">chr1\nACGT\n"),
		Aln:  write("copy.soap", "r1\tACGT\t...\n"),
	}
	d2, err := u2.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("identical contents at different paths digest differently")
	}

	// Changed alignment bytes: different digest.
	u3 := u
	u3.Aln = write("other.soap", "r1\tACGA\t...\n")
	d3, err := u3.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Errorf("changed alignment bytes kept the digest")
	}

	// Adding a priors file changes the identity.
	u4 := u
	u4.SNP = write("chr1.snp", "chr1\t2\tA\t0.5\n")
	d4, err := u4.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d1 {
		t.Errorf("adding a priors file kept the digest")
	}

	// A different unit name is a different identity (unit sets with the
	// same bytes under different chromosome names must not alias).
	u5 := u
	u5.Name = "chr2.fa"
	d5, err := u5.ContentDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d5 == d1 {
		t.Errorf("renamed unit kept the digest")
	}

	// Unreadable input: error, never a silent key.
	u6 := u
	u6.Ref = filepath.Join(dir, "missing.fa")
	if _, err := u6.ContentDigest(); err == nil {
		t.Errorf("digest of a missing input did not error")
	}
}
