package bayes

import (
	"math"
	"testing"
	"testing/quick"

	"gsnp/internal/dna"
)

func TestBaseOccIndexRoundTrip(t *testing.T) {
	f := func(b, q, c, s uint8) bool {
		base := dna.Base(b & 3)
		score := dna.Quality(q & (NQ - 1))
		coord := int(c) // 0..255
		strand := int(s & 1)
		idx := BaseOccIndex(base, score, coord, strand)
		if idx < 0 || idx >= BaseOccSize {
			return false
		}
		b2, q2, c2, s2 := BaseOccDecompose(idx)
		return b2 == base && q2 == score && c2 == coord && s2 == strand
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseOccIndexDense(t *testing.T) {
	// Every (base,score,coord,strand) tuple maps to a distinct index and
	// the full space is covered exactly.
	seen := make([]bool, BaseOccSize)
	n := 0
	for b := dna.Base(0); b < 4; b++ {
		for q := dna.Quality(0); q < NQ; q++ {
			for c := 0; c < MaxReadLen; c++ {
				for s := 0; s < NStrands; s++ {
					idx := BaseOccIndex(b, q, c, s)
					if seen[idx] {
						t.Fatalf("collision at %d", idx)
					}
					seen[idx] = true
					n++
				}
			}
		}
	}
	if n != BaseOccSize {
		t.Fatalf("covered %d of %d", n, BaseOccSize)
	}
}

func TestPMatrixIndexBounds(t *testing.T) {
	max := PMatrixIndex(NQ-1, MaxReadLen-1, 3, 3)
	if max != PMatrixSize-1 {
		t.Errorf("max p_matrix index = %d, want %d", max, PMatrixSize-1)
	}
	if PMatrixIndex(0, 0, 0, 0) != 0 {
		t.Error("zero index wrong")
	}
}

func TestNewPMatrixIndexBounds(t *testing.T) {
	max := NewPMatrixIndex(NQ-1, MaxReadLen-1, 3, dna.NGenotypes-1)
	if max != NewPMatrixSize-1 {
		t.Errorf("max new_p_matrix index = %d, want %d", max, NewPMatrixSize-1)
	}
}

func TestLogTable(t *testing.T) {
	lt := BuildLogTable()
	if lt[1] != 0 {
		t.Error("log10(1) != 0")
	}
	if lt[10] != 1 {
		t.Error("log10(10) != 1")
	}
	if math.Abs(lt[64]-math.Log10(64)) > 1e-15 {
		t.Error("log10(64) wrong")
	}
	if lt[0] != 0 {
		t.Error("guard entry not zero")
	}
}

func TestAdjustTable(t *testing.T) {
	at := BuildAdjustTable(BuildLogTable())
	if at[0] != 0 {
		t.Errorf("penalty for first observation = %d, want 0", at[0])
	}
	if at[1] != 3 { // round(10*log10(2)) = 3
		t.Errorf("penalty for one stacked observation = %d, want 3", at[1])
	}
	if at[9] != 10 { // round(10*log10(10)) = 10
		t.Errorf("penalty[9] = %d, want 10", at[9])
	}
	// Monotone non-decreasing.
	for d := 1; d < NQ; d++ {
		if at[d] < at[d-1] {
			t.Fatalf("penalty not monotone at %d", d)
		}
	}
}

func TestAdjust(t *testing.T) {
	at := BuildAdjustTable(BuildLogTable())
	if got := at.Adjust(40, 1); got != 40 {
		t.Errorf("first observation adjusted: %d", got)
	}
	if got := at.Adjust(40, 2); got != 37 {
		t.Errorf("second observation = %d, want 37", got)
	}
	if got := at.Adjust(3, 50); got != 0 {
		t.Errorf("underflow not clamped: %d", got)
	}
	if got := at.Adjust(40, 0); got != 40 {
		t.Errorf("zero depCount mishandled: %d", got)
	}
	if got := at.Adjust(63, 60000); got > 63 {
		t.Errorf("huge depCount overflowed: %d", got)
	}
}

func TestPhredPMatrix(t *testing.T) {
	p := NewPMatrixFromPhred()
	// Q30: error 1e-3.
	if got := p.At(30, 17, dna.A, dna.A); math.Abs(got-0.999) > 1e-9 {
		t.Errorf("P(A|A,Q30) = %v", got)
	}
	if got := p.At(30, 17, dna.A, dna.C); math.Abs(got-1e-3/3) > 1e-12 {
		t.Errorf("P(C|A,Q30) = %v", got)
	}
	// Rows sum to ~1.
	for _, q := range []dna.Quality{0, 13, 40, 63} {
		var sum float64
		for b := dna.Base(0); b < 4; b++ {
			sum += p.At(q, 5, dna.G, b)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row sum at q=%d is %v", q, sum)
		}
	}
}

func TestCalibrationPureCountsDominate(t *testing.T) {
	c := NewCalibration()
	// Feed a strongly skewed signal: at (q=20, coord=3, ref=A) the machine
	// actually miscalls to C 10% of the time.
	for i := 0; i < 90000; i++ {
		c.Observe(20, 3, dna.A, dna.A)
	}
	for i := 0; i < 10000; i++ {
		c.Observe(20, 3, dna.A, dna.C)
	}
	if c.Observations() != 100000 {
		t.Fatalf("Observations = %d", c.Observations())
	}
	p := c.Build()
	if got := p.At(20, 3, dna.A, dna.C); math.Abs(got-0.1) > 0.01 {
		t.Errorf("calibrated P(C|A) = %v, want ~0.1", got)
	}
	if got := p.At(20, 3, dna.A, dna.A); math.Abs(got-0.9) > 0.01 {
		t.Errorf("calibrated P(A|A) = %v, want ~0.9", got)
	}
	// An unexercised row falls back to the Phred model.
	if got := p.At(50, 100, dna.T, dna.T); math.Abs(got-(1-dna.Quality(50).ErrorProbability())) > 1e-9 {
		t.Errorf("empty row P(T|T,Q50) = %v", got)
	}
}

func TestCalibrationMerge(t *testing.T) {
	a, b := NewCalibration(), NewCalibration()
	a.Observe(10, 0, dna.A, dna.A)
	b.Observe(10, 0, dna.A, dna.A)
	b.Observe(12, 5, dna.C, dna.G)
	a.Merge(b)
	if a.Observations() != 3 {
		t.Errorf("merged observations = %d, want 3", a.Observations())
	}
}

func TestNewPMatrixMatchesLikelyUpdate(t *testing.T) {
	// The precomputed table must agree exactly with the runtime Algorithm 2
	// computation — this is the Section IV-G consistency property.
	p := NewPMatrixFromPhred()
	np := BuildNewPMatrix(p)
	for _, q := range []dna.Quality{0, 7, 31, 63} {
		for _, coord := range []int{0, 1, 99, 255} {
			for base := dna.Base(0); base < 4; base++ {
				for rank := 0; rank < dna.NGenotypes; rank++ {
					g := dna.GenotypeByRank(rank)
					a1, a2 := g.Alleles()
					want := LikelyUpdate(p, q, coord, base, a1, a2)
					got := np.At(q, coord, base, rank)
					if got != want {
						t.Fatalf("q=%d coord=%d base=%v rank=%d: table %v != runtime %v",
							q, coord, base, rank, got, want)
					}
				}
			}
		}
	}
}

func TestBuildTables(t *testing.T) {
	tb := BuildTables(NewPMatrixFromPhred())
	if tb.Log == nil || tb.Adjust == nil || tb.P == nil || tb.NewP == nil {
		t.Fatal("BuildTables left nil members")
	}
	if len(tb.NewP) != NewPMatrixSize {
		t.Errorf("NewP size = %d", len(tb.NewP))
	}
}

func TestPriorsNovel(t *testing.T) {
	pr := DefaultPriors()
	lp := pr.LogPriors(dna.A, nil)
	// Homozygous reference dominates.
	refRank := dna.HomozygousGenotype(dna.A).Rank()
	for r := 0; r < dna.NGenotypes; r++ {
		if r != refRank && lp[r] >= lp[refRank] {
			t.Errorf("genotype %v prior >= hom-ref prior", dna.GenotypeByRank(r))
		}
	}
	// Transition het (A/G) beats transversion het (A/C).
	ag := dna.MakeGenotype(dna.A, dna.G).Rank()
	ac := dna.MakeGenotype(dna.A, dna.C).Rank()
	if lp[ag] <= lp[ac] {
		t.Error("transition prior not favoured over transversion")
	}
	// Het involving ref beats double-non-ref het.
	ct := dna.MakeGenotype(dna.C, dna.T).Rank()
	if lp[ct] >= lp[ac] {
		t.Error("double-non-ref het prior not penalised")
	}
}

func TestPriorsSumToOne(t *testing.T) {
	pr := DefaultPriors()
	for ref := dna.Base(0); ref < 4; ref++ {
		lp := pr.LogPriors(ref, nil)
		var sum float64
		for _, v := range lp {
			sum += math.Pow(10, v)
		}
		// The novel model is normalised up to the tiny double-non-ref
		// terms.
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("ref %v: priors sum to %v", ref, sum)
		}
	}
}

func TestPriorsKnownSNP(t *testing.T) {
	pr := DefaultPriors()
	known := &KnownSNP{Freq: [4]float64{0.5, 0, 0.5, 0}, Validated: true}
	lp := pr.LogPriors(dna.A, known)
	lpNovel := pr.LogPriors(dna.A, nil)
	ag := dna.MakeGenotype(dna.A, dna.G).Rank()
	if lp[ag] <= lpNovel[ag] {
		t.Error("validated dbSNP site did not boost the known het genotype")
	}
	// Non-validated records fall back to the novel model.
	lp2 := pr.LogPriors(dna.A, &KnownSNP{Freq: known.Freq})
	for r := range lp2 {
		if lp2[r] != lpNovel[r] {
			t.Fatal("unvalidated record altered priors")
		}
	}
}

func TestPosteriorPicksMAP(t *testing.T) {
	var tl [TypeLikelySize]float64
	for i := range tl {
		tl[i] = -1000
	}
	gAA := dna.HomozygousGenotype(dna.A)
	gAG := dna.MakeGenotype(dna.A, dna.G)
	tl[gAA] = -10
	tl[gAG] = -12
	pr := DefaultPriors()
	lp := pr.LogPriors(dna.A, nil)
	call := Posterior(&tl, &lp)
	if call.Genotype != gAA {
		t.Errorf("MAP genotype = %v, want AA", call.Genotype)
	}
	if call.Second != gAG {
		t.Errorf("second = %v, want AG", call.Second)
	}
	if call.Quality <= 0 || call.Quality > 99 {
		t.Errorf("quality = %d", call.Quality)
	}
}

func TestPosteriorQualityClamp(t *testing.T) {
	var tl [TypeLikelySize]float64
	for i := range tl {
		tl[i] = -1e6
	}
	tl[dna.HomozygousGenotype(dna.C)] = 0
	pr := DefaultPriors()
	lp := pr.LogPriors(dna.C, nil)
	call := Posterior(&tl, &lp)
	if call.Quality != 99 {
		t.Errorf("quality = %d, want clamped 99", call.Quality)
	}
}

func TestPosteriorLikelihoodOverridesPrior(t *testing.T) {
	// Strong evidence for a het must beat the hom-ref prior.
	var tl [TypeLikelySize]float64
	for i := range tl {
		tl[i] = -500
	}
	tl[dna.MakeGenotype(dna.A, dna.G)] = -20
	tl[dna.HomozygousGenotype(dna.A)] = -60
	pr := DefaultPriors()
	lp := pr.LogPriors(dna.A, nil)
	call := Posterior(&tl, &lp)
	if call.Genotype != dna.MakeGenotype(dna.A, dna.G) {
		t.Errorf("call = %v, want AG", call.Genotype)
	}
}

func TestRankSumIdenticalGroups(t *testing.T) {
	xs := []float64{30, 31, 32, 33, 34}
	p := RankSum(xs, xs)
	if p < 0.99 {
		t.Errorf("identical groups p = %v, want ~1", p)
	}
}

func TestRankSumDisjointGroups(t *testing.T) {
	lo := []float64{2, 3, 4, 5, 6, 7, 8, 2, 3, 4}
	hi := []float64{30, 31, 32, 33, 34, 35, 36, 37, 38, 39}
	p := RankSum(lo, hi)
	if p > 0.01 {
		t.Errorf("disjoint groups p = %v, want < 0.01", p)
	}
}

func TestRankSumEdgeCases(t *testing.T) {
	if RankSum(nil, []float64{1, 2}) != 1 {
		t.Error("empty group p != 1")
	}
	if RankSum([]float64{5, 5, 5}, []float64{5, 5}) != 1 {
		t.Error("all-tied p != 1")
	}
	if p := RankSum([]float64{1}, []float64{2}); p <= 0 || p > 1 {
		t.Errorf("singleton p out of range: %v", p)
	}
}

func TestRankSumSymmetry(t *testing.T) {
	xs := []float64{10, 20, 30}
	ys := []float64{15, 25, 35, 45}
	if math.Abs(RankSum(xs, ys)-RankSum(ys, xs)) > 1e-12 {
		t.Error("rank sum not symmetric")
	}
}

func TestRankSumRange(t *testing.T) {
	f := func(a, b []uint8) bool {
		xs := make([]float64, 0, len(a))
		for _, v := range a {
			xs = append(xs, float64(v%64))
		}
		ys := make([]float64, 0, len(b))
		for _, v := range b {
			ys = append(ys, float64(v%64))
		}
		p := RankSum(xs, ys)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
