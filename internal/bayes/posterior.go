package bayes

import (
	"math"

	"gsnp/internal/dna"
)

// Call is the outcome of the posterior step for one site: the consensus
// genotype, its Phred-scaled confidence and the runner-up.
type Call struct {
	// Genotype is the maximum-a-posteriori genotype.
	Genotype dna.Genotype
	// Quality is the Phred-scaled confidence of the call,
	// 10*(log10 post(best) - log10 post(second)), clamped to [0, 99].
	Quality int
	// Second is the runner-up genotype.
	Second dna.Genotype
	// LogPosterior holds the unnormalised log10 posterior of every
	// genotype in canonical rank order.
	LogPosterior [dna.NGenotypes]float64
}

// Posterior combines the genotype log-likelihoods (the type_likely array
// produced by the likelihood component, indexed allele1<<2|allele2) with
// log priors and selects the best and second-best genotypes.
func Posterior(typeLikely *[TypeLikelySize]float64, logPriors *[dna.NGenotypes]float64) Call {
	var c Call
	best, second := -1, -1
	for rank := 0; rank < dna.NGenotypes; rank++ {
		g := dna.GenotypeByRank(rank)
		lp := typeLikely[g] + logPriors[rank]
		c.LogPosterior[rank] = lp
		if best < 0 || lp > c.LogPosterior[best] {
			second = best
			best = rank
		} else if second < 0 || lp > c.LogPosterior[second] {
			second = rank
		}
	}
	c.Genotype = dna.GenotypeByRank(best)
	c.Second = dna.GenotypeByRank(second)
	q := 10 * (c.LogPosterior[best] - c.LogPosterior[second])
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 99 {
		q = 99
	}
	c.Quality = int(q)
	return c
}

// RankSum computes a two-sided Wilcoxon rank-sum (Mann-Whitney) p-value via
// the normal approximation with tie correction. It tests whether the
// quality scores supporting the two alleles of a heterozygous call are
// drawn from the same distribution; a small p indicates one allele is
// supported only by low-quality evidence, a classic false-het signal.
// SOAPsnp reports this p-value as the 15th column of its result table.
//
// xs and ys are the quality scores supporting each allele. The function
// returns 1 when either group is empty (no evidence of bias).
func RankSum(xs, ys []float64) float64 {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		group int
	}
	// Typical per-allele depths are far below 64, so the merged list fits
	// a stack array and the hot path allocates nothing.
	var stack [64]obs
	var all []obs
	if n1+n2 <= len(stack) {
		all = stack[:0]
	} else {
		all = make([]obs, 0, n1+n2)
	}
	for _, v := range xs {
		all = append(all, obs{v, 0})
	}
	for _, v := range ys {
		all = append(all, obs{v, 1})
	}
	// Insertion sort: groups are tiny (sequencing depth per allele).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j-1].v > all[j].v; j-- {
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	// Midranks with tie bookkeeping.
	n := n1 + n2
	var r1 float64      // rank sum of group 0
	var tieTerm float64 // sum of t^3 - t over tie groups
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if all[k].group == 0 {
				r1 += mid
			}
		}
		tieTerm += t*t*t - t
		i = j
	}
	mu := float64(n1) * float64(n+1) / 2
	sigma2 := float64(n1) * float64(n2) / 12 * (float64(n+1) - tieTerm/float64(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // all observations tied
	}
	z := (r1 - mu) / math.Sqrt(sigma2)
	return 2 * normSF(math.Abs(z))
}

// normSF is the standard normal survival function P(Z > z).
func normSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
