package bayes

import "gsnp/internal/dna"

// Calibration accumulates observation counts for cal_p_matrix: how often an
// aligned base o was observed at quality q and read coordinate c over a
// reference site whose base is r. SOAPsnp's recalibration treats the
// reference base as the true allele (valid because the overwhelming
// majority of sites are homozygous reference) and smooths the counted
// frequencies toward the Phred error model.
type Calibration struct {
	// counts is indexed by PMatrixIndex(q, coord, ref, obs).
	counts []uint64
	// PseudoWeight is the number of virtual observations drawn from the
	// Phred model blended into every (q, coord, ref) row. Zero selects
	// DefaultPseudoWeight.
	PseudoWeight float64
}

// DefaultPseudoWeight is the smoothing mass used when Calibration.
// PseudoWeight is zero.
const DefaultPseudoWeight = 50

// NewCalibration returns an empty accumulator.
func NewCalibration() *Calibration {
	return &Calibration{counts: make([]uint64, PMatrixSize)}
}

// Observe records one aligned base: observed base obs with quality q at
// read coordinate coord over a reference base ref.
func (c *Calibration) Observe(q dna.Quality, coord int, ref, obs dna.Base) {
	c.counts[PMatrixIndex(q, coord, ref, obs)]++
}

// Observations returns the total number of recorded observations.
func (c *Calibration) Observations() uint64 {
	var n uint64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Merge folds the counts of o into c, allowing parallel accumulation.
func (c *Calibration) Merge(o *Calibration) {
	for i, v := range o.counts {
		c.counts[i] += v
	}
}

// Build converts the counts into the calibrated p_matrix:
//
//	P(obs | allele, q, coord) =
//	    (count(q,coord,allele,obs) + w*phred(q,allele,obs)) /
//	    (rowTotal(q,coord,allele)  + w)
//
// where phred is the analytic error model and w the pseudo-observation
// weight. Rows with no data reduce to the pure Phred model, so the matrix
// is well defined even for unexercised qualities or coordinates.
func (c *Calibration) Build() PMatrix {
	w := c.PseudoWeight
	if w <= 0 {
		w = DefaultPseudoWeight
	}
	p := make(PMatrix, PMatrixSize)
	for q := dna.Quality(0); q < NQ; q++ {
		e := q.ErrorProbability()
		for coord := 0; coord < MaxReadLen; coord++ {
			for allele := dna.Base(0); allele < dna.NBases; allele++ {
				row := PMatrixIndex(q, coord, allele, 0)
				var total uint64
				for b := 0; b < dna.NBases; b++ {
					total += c.counts[row+b]
				}
				for b := dna.Base(0); b < dna.NBases; b++ {
					phred := e / 3
					if b == allele {
						phred = 1 - e
					}
					v := (float64(c.counts[row+int(b)]) + w*phred) / (float64(total) + w)
					if v < minProb {
						v = minProb
					}
					p[row+int(b)] = v
				}
			}
		}
	}
	return p
}
