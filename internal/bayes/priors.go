package bayes

import (
	"math"

	"gsnp/internal/dna"
)

// KnownSNP carries the prior information the dbSNP-style input file
// provides for a site: the population allele frequencies and whether the
// site is a validated polymorphism.
type KnownSNP struct {
	// Freq holds the population frequency of each base; entries sum to 1.
	Freq [dna.NBases]float64
	// Validated marks experimentally confirmed SNPs, which receive the
	// full dbSNP prior weight.
	Validated bool
}

// Priors is the genotype prior model: the probability of each diploid
// genotype at a site given the reference base and, when present, dbSNP
// knowledge. Rates follow SOAPsnp's defaults.
type Priors struct {
	// NovelHet is the prior of a novel heterozygous SNP (default 1e-3).
	NovelHet float64
	// NovelHom is the prior of a novel homozygous SNP (default 5e-4).
	NovelHom float64
	// TiTv is the transition/transversion rate ratio used to tilt
	// substitution priors (default 2.0, typical 2-4 for human).
	TiTv float64
	// KnownHetBoost scales the heterozygote prior at validated dbSNP
	// sites (default 0.1 prior mass spread by allele frequency).
	KnownRate float64
}

// DefaultPriors returns SOAPsnp's default rate configuration.
func DefaultPriors() Priors {
	return Priors{NovelHet: 1e-3, NovelHom: 5e-4, TiTv: 2.0, KnownRate: 0.1}
}

// tiTvWeight apportions substitution mass between the one transition and
// the two transversions of a reference base.
func (p Priors) tiTvWeight(ref, alt dna.Base) float64 {
	// Normalise so the weights of the three substitutions sum to 1:
	// transition gets TiTv/(TiTv+2), each transversion 1/(TiTv+2).
	if ref.IsTransition(alt) {
		return p.TiTv / (p.TiTv + 2)
	}
	return 1 / (p.TiTv + 2)
}

// LogPriors returns log10 prior probabilities for the ten genotypes in
// canonical rank order, given the reference base and optional known-SNP
// record (nil for novel sites).
func (p Priors) LogPriors(ref dna.Base, known *KnownSNP) [dna.NGenotypes]float64 {
	var pri [dna.NGenotypes]float64
	if known != nil && known.Validated {
		// dbSNP site: Hardy-Weinberg genotype frequencies from the
		// population allele frequencies, mixed with the novel-SNP model
		// so unseen alleles keep non-zero mass.
		for rank := 0; rank < dna.NGenotypes; rank++ {
			g := dna.GenotypeByRank(rank)
			a1, a2 := g.Alleles()
			hw := known.Freq[a1] * known.Freq[a2]
			if a1 != a2 {
				hw *= 2
			}
			pri[rank] = p.KnownRate*hw + (1-p.KnownRate)*p.novelPrior(ref, g)
		}
	} else {
		for rank := 0; rank < dna.NGenotypes; rank++ {
			pri[rank] = p.novelPrior(ref, dna.GenotypeByRank(rank))
		}
	}
	var lg [dna.NGenotypes]float64
	for i, v := range pri {
		if v < minProb {
			v = minProb
		}
		lg[i] = math.Log10(v)
	}
	return lg
}

// novelPrior is the prior of genotype g at a site with reference base ref
// and no dbSNP knowledge.
func (p Priors) novelPrior(ref dna.Base, g dna.Genotype) float64 {
	a1, a2 := g.Alleles()
	switch {
	case a1 == ref && a2 == ref:
		return 1 - p.NovelHet - p.NovelHom
	case a1 == ref || a2 == ref:
		// Heterozygous ref/alt: het rate tilted by Ti/Tv of the alt.
		alt := a1
		if alt == ref {
			alt = a2
		}
		return p.NovelHet * p.tiTvWeight(ref, alt)
	case a1 == a2:
		// Homozygous non-reference.
		return p.NovelHom * p.tiTvWeight(ref, a1)
	default:
		// Heterozygous with both alleles non-reference: doubly unlikely.
		return p.NovelHet * p.NovelHom * p.tiTvWeight(ref, a1) * p.tiTvWeight(ref, a2)
	}
}
