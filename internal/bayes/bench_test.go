package bayes

import (
	"testing"

	"gsnp/internal/dna"
)

func BenchmarkLikelyUpdate(b *testing.B) {
	p := NewPMatrixFromPhred()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += LikelyUpdate(p, 37, 12, dna.G, dna.A, dna.G)
	}
	_ = sink
}

func BenchmarkNewPMatrixLookup(b *testing.B) {
	np := BuildNewPMatrix(NewPMatrixFromPhred())
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += np[NewPMatrixIndex(37, 12, dna.G, i%10)]
	}
	_ = sink
}

func BenchmarkBuildNewPMatrix(b *testing.B) {
	p := NewPMatrixFromPhred()
	for i := 0; i < b.N; i++ {
		BuildNewPMatrix(p)
	}
}

func BenchmarkCalibrationObserve(b *testing.B) {
	c := NewCalibration()
	for i := 0; i < b.N; i++ {
		c.Observe(dna.Quality(i&63), i&255, dna.Base(i&3), dna.Base(i>>2&3))
	}
}

func BenchmarkPosterior(b *testing.B) {
	var tl [TypeLikelySize]float64
	for i := range tl {
		tl[i] = -float64(i)
	}
	pr := DefaultPriors()
	lp := pr.LogPriors(dna.A, nil)
	for i := 0; i < b.N; i++ {
		Posterior(&tl, &lp)
	}
}

func BenchmarkRankSum(b *testing.B) {
	xs := []float64{30, 31, 35, 38, 32, 30, 29}
	ys := []float64{28, 33, 31, 36}
	for i := 0; i < b.N; i++ {
		RankSum(xs, ys)
	}
}

func BenchmarkAdjust(b *testing.B) {
	at := BuildAdjustTable(BuildLogTable())
	var sink dna.Quality
	for i := 0; i < b.N; i++ {
		sink += at.Adjust(dna.Quality(i&63), uint16(i&7))
	}
	_ = sink
}
