package bayes

import (
	"math"

	"gsnp/internal/dna"
)

// LogTable holds log10(i) for the integers 0..64, the table Section IV-G
// computes once on the CPU and places in GPU constant memory so both
// processors use identical values. Entry 0 is a guard and holds 0.
type LogTable [NQ + 1]float64

// BuildLogTable computes the table with the host libm.
func BuildLogTable() *LogTable {
	var t LogTable
	for i := 1; i <= NQ; i++ {
		t[i] = math.Log10(float64(i))
	}
	return &t
}

// AdjustTable maps a per-coordinate stacked-observation count to the Phred
// penalty subtracted from the quality score:
//
//	penalty[d] = round(10 * log10(1 + min(d, 63)))
//
// so the first observation at a read coordinate keeps its full quality and
// each further stacked observation is damped — SOAPsnp's modelling of the
// statistical dependency among reads that align the same cycle to the same
// site. The table is derived from LogTable, keeping the CPU and GPU paths
// bit-identical.
type AdjustTable [NQ]uint8

// BuildAdjustTable derives the penalty table from lt.
func BuildAdjustTable(lt *LogTable) *AdjustTable {
	var a AdjustTable
	for d := 0; d < NQ; d++ {
		a[d] = uint8(math.Round(10 * lt[d+1]))
	}
	return &a
}

// Adjust applies the stacked-observation penalty to score. depCount is the
// number of observations already accumulated at the (strand, coordinate)
// slot including the current one (Algorithm 1 line 10 / Algorithm 4 line
// 12 call adjust after the increment).
func (a *AdjustTable) Adjust(score dna.Quality, depCount uint16) dna.Quality {
	d := int(depCount) - 1
	if d < 0 {
		d = 0
	}
	if d >= NQ {
		d = NQ - 1
	}
	p := int(score) - int(a[d])
	if p < 0 {
		return 0
	}
	return dna.Quality(p)
}

// PMatrix is the calibrated score matrix: entry PMatrixIndex(q, coord,
// allele, base) holds P(observed base | true allele, adjusted quality q,
// read coordinate coord). It is the output of cal_p_matrix and an input of
// the likelihood calculation (Algorithm 2).
type PMatrix []float64

// NewPMatrixFromPhred builds an analytic p_matrix directly from the Phred
// error model, P(obs==allele) = 1-e(q) and e(q)/3 otherwise, independent of
// the read coordinate. It is the calibration prior and a useful fixture.
func NewPMatrixFromPhred() PMatrix {
	p := make(PMatrix, PMatrixSize)
	for q := dna.Quality(0); q < NQ; q++ {
		e := q.ErrorProbability()
		for coord := 0; coord < MaxReadLen; coord++ {
			for allele := dna.Base(0); allele < dna.NBases; allele++ {
				for base := dna.Base(0); base < dna.NBases; base++ {
					v := e / 3
					if base == allele {
						v = 1 - e
					}
					if v < minProb {
						v = minProb
					}
					p[PMatrixIndex(q, coord, allele, base)] = v
				}
			}
		}
	}
	return p
}

// minProb floors matrix probabilities so their logarithms stay finite.
const minProb = 1e-10

// At reads the matrix with named coordinates.
func (p PMatrix) At(q dna.Quality, coord int, allele, base dna.Base) float64 {
	return p[PMatrixIndex(q, coord, allele, base)]
}

// NewPMatrix is the precomputed score table of Section IV-D: for every
// (quality, coordinate, observed base) triple it stores the ten values
//
//	log10(0.5*P(base|allele1) + 0.5*P(base|allele2))
//
// for the ten unordered genotypes, in canonical genotype order. Likelihood
// updates become a single table read (Algorithm 3), with no runtime
// logarithms.
type NewPMatrix []float64

// BuildNewPMatrix expands p into the ten-genotype table. Like the paper, it
// is computed once on the CPU so GPU and CPU consume identical values.
func BuildNewPMatrix(p PMatrix) NewPMatrix {
	np := make(NewPMatrix, NewPMatrixSize)
	gs := dna.Genotypes()
	for q := dna.Quality(0); q < NQ; q++ {
		for coord := 0; coord < MaxReadLen; coord++ {
			for base := dna.Base(0); base < dna.NBases; base++ {
				for rank, g := range gs {
					a1, a2 := g.Alleles()
					v := 0.5*p.At(q, coord, a1, base) + 0.5*p.At(q, coord, a2, base)
					np[NewPMatrixIndex(q, coord, base, rank)] = math.Log10(v)
				}
			}
		}
	}
	return np
}

// At reads the table with named coordinates.
func (np NewPMatrix) At(q dna.Quality, coord int, base dna.Base, genotypeRank int) float64 {
	return np[NewPMatrixIndex(q, coord, base, genotypeRank)]
}

// LikelyUpdate is Algorithm 2: the dense pipeline's per-observation
// likelihood contribution for genotype {allele1, allele2}, computed from
// p_matrix with a runtime logarithm.
func LikelyUpdate(p PMatrix, q dna.Quality, coord int, base, allele1, allele2 dna.Base) float64 {
	p1 := p[PMatrixIndex(q, coord, allele1, base)]
	p2 := p[PMatrixIndex(q, coord, allele2, base)]
	return math.Log10(0.5*p1 + 0.5*p2)
}

// Tables bundles every precomputed table a pipeline needs. Building it
// corresponds to the paper's load_table component.
type Tables struct {
	Log    *LogTable
	Adjust *AdjustTable
	P      PMatrix
	NewP   NewPMatrix
}

// BuildTables assembles the table set from a calibrated p_matrix.
func BuildTables(p PMatrix) *Tables {
	lt := BuildLogTable()
	return &Tables{
		Log:    lt,
		Adjust: BuildAdjustTable(lt),
		P:      p,
		NewP:   BuildNewPMatrix(p),
	}
}
