// Package bayes implements the statistical core shared by the SOAPsnp
// baseline and GSNP pipelines: the calibrated score matrix (p_matrix), the
// precomputed log tables and new score table (new_p_matrix) of Section IV-D,
// the quality adjustment of repeated observations, genotype priors and the
// posterior genotype call with its rank-sum strand/quality bias test.
//
// The bit layouts of the matrices follow the paper's pseudocode exactly
// (Algorithms 1-3), so that the dense (SOAPsnp) and sparse (GSNP) pipelines
// can share one implementation of every table and produce bit-identical
// results.
package bayes

import "gsnp/internal/dna"

// Dimension constants of the aligned-base matrices. They mirror the
// 4 x 64 x 256 x 2 base_occ layout of the paper.
const (
	// MaxReadLen is the coordinate dimension: reads may be at most 256 bp.
	MaxReadLen = 256
	// NQ is the quality-score dimension (scores 0..63).
	NQ = dna.QMax
	// NStrands covers forward (0) and reverse (1).
	NStrands = 2
	// BaseOccSize is the number of elements of the dense per-site matrix:
	// 4*64*256*2 = 131,072 (Formula 1's |base_occ|).
	BaseOccSize = dna.NBases * NQ * MaxReadLen * NStrands
)

// BaseOccIndex computes the dense matrix index base<<15 | score<<9 |
// coord<<1 | strand from Algorithm 1.
func BaseOccIndex(base dna.Base, score dna.Quality, coord, strand int) int {
	return int(base)<<15 | int(score)<<9 | coord<<1 | strand
}

// BaseOccDecompose inverts BaseOccIndex.
func BaseOccDecompose(idx int) (base dna.Base, score dna.Quality, coord, strand int) {
	return dna.Base(idx >> 15 & 3), dna.Quality(idx >> 9 & (NQ - 1)), idx >> 1 & (MaxReadLen - 1), idx & 1
}

// PMatrixSize is the number of entries of p_matrix: quality (64) x
// coordinate (256) x allele (4) x observed base (4), laid out as
// q<<12 | coord<<4 | allele<<2 | base per Algorithm 2.
const PMatrixSize = NQ << 12

// PMatrixIndex computes the p_matrix index of Algorithm 2.
func PMatrixIndex(q dna.Quality, coord int, allele, base dna.Base) int {
	return int(q)<<12 | coord<<4 | int(allele)<<2 | int(base)
}

// NewPMatrixSize is the number of entries of new_p_matrix: one slot per
// (quality, coordinate, observed base) triple times the ten genotypes
// (Algorithm 3 drops the allele bits and appends the genotype rank).
const NewPMatrixSize = (NQ << 10) * dna.NGenotypes

// NewPMatrixIndex computes the new_p_matrix index of Algorithm 3:
// (q<<10 | coord<<2 | base)*10 + genotypeRank.
func NewPMatrixIndex(q dna.Quality, coord int, base dna.Base, genotypeRank int) int {
	return (int(q)<<10|coord<<2|int(base))*dna.NGenotypes + genotypeRank
}

// TypeLikelySize is the size of the genotype likelihood accumulator. The
// paper indexes it allele1<<2 | allele2 inside 16 slots of which ten are
// used (the unordered pairs).
const TypeLikelySize = 16
