package analysis

import "testing"

// TestLockHoldFixture proves the analyzer flags blocking operations
// inside held critical sections — directly and through a callee whose
// summary blocks — and accepts compute-only sections, post-release
// sends, sync.Cond.Wait, and Lock/Unlock pairs inside deferred closure
// bodies (which are bounded pairs, not defer-held locks).
func TestLockHoldFixture(t *testing.T) {
	runFixture(t, LockHold, "lockholdfix")
}
