package analysis

// analysistest-style fixture harness. Fixtures live under testdata/src,
// which is its own tiny Go module so `go list` can load and type-check
// them exactly like production packages (testdata directories are
// invisible to the parent module's ./... patterns). Expected findings
// are `// want "regex"` comments on the line the diagnostic lands on;
// several wants may share a line. The harness fails on any unmatched
// diagnostic and any unmatched want, so fixtures prove both that an
// analyzer fires on seeded violations and that it stays silent on the
// idiomatic code interleaved with them.

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

// fixtureWants extracts line -> expected-message regexps for a package.
func fixtureWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
					expr := strings.ReplaceAll(q[1:len(q)-1], `\"`, `"`)
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", k, expr, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<path> and checks a's diagnostics (plus
// any directive problems) against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	pkgs, err := Load("testdata/src", "./"+path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", path, len(pkgs))
	}
	pkg := pkgs[0]
	wants := fixtureWants(t, pkg)
	diags := Run(pkg, []*Analyzer{a})

	matched := map[string]map[int]bool{} // line key -> want index -> hit
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := shortKey(pos)
		ok := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				if matched[k] == nil {
					matched[k] = map[int]bool{}
				}
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic [%s] %s", k, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, re)
			}
		}
	}
}

func shortKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// runFixtureClean asserts a raises nothing on testdata/src/<path>.
func runFixtureClean(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	pkgs, err := Load("testdata/src", "./"+path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, []*Analyzer{a}) {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
