package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix is the one sanctioned suppression mechanism:
//
//	//gsnplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses the named analyzers (or "all") on its own
// source line and on the line directly below it, so it works both as a
// trailing comment and as a standalone comment above the flagged
// statement. The reason is mandatory: a suppression without a recorded
// justification is itself a finding.
const ignorePrefix = "//gsnplint:ignore"

// directiveSet indexes suppressions by file:line and carries diagnostics
// for malformed directives.
type directiveSet struct {
	// byLine maps file:line to the set of suppressed analyzer names.
	byLine   map[string]map[string]bool
	problems []Diagnostic
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// directives collects every //gsnplint:ignore directive in pkg.
func directives(pkg *Package) *directiveSet {
	known := map[string]bool{"all": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	ds := &directiveSet{byLine: map[string]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ds.problems = append(ds.problems, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "gsnplint",
						Message:  "malformed directive: want //gsnplint:ignore <analyzer> <reason>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := false
				for _, n := range names {
					if !known[n] {
						ds.problems = append(ds.problems, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "gsnplint",
							Message:  "directive names unknown analyzer \"" + n + "\"",
						})
						bad = true
					}
				}
				if bad {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := pos.Filename + ":" + itoa(line)
					if ds.byLine[k] == nil {
						ds.byLine[k] = map[string]bool{}
					}
					for _, n := range names {
						ds.byLine[k][n] = true
					}
				}
			}
		}
	}
	return ds
}

// filter drops diagnostics covered by a directive.
func (ds *directiveSet) filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		set := ds.byLine[pos.Filename+":"+itoa(pos.Line)]
		if set != nil && (set["all"] || set[d.Analyzer]) {
			continue
		}
		out = append(out, d)
	}
	return out
}
