package analysis

import (
	"go/ast"
)

// GoroutineJoin enforces the lifecycle half of the determinism contract:
// every goroutine the system spawns must be joinable or cancellable.
// The byte-identity guarantee ("same output at any worker count") is a
// statement about *completed* work — a goroutine nobody waits for can
// still be writing into a buffer, an arena, or a stream after the
// spawner has moved on, and a goroutine nobody can cancel outlives
// graceful drain and leaks across jobs in the long-lived gsnpd process.
//
// A `go` statement passes when the spawned body — transitively, through
// every statically resolvable call — reaches one of:
//
//   - a WaitGroup join: the goroutine calls Done() on a WaitGroup that
//     some function in the load Waits on (the classic fan-out/fan-in,
//     and the pool shape where Close holds the Wait);
//   - a completion channel: the goroutine sends on or closes a channel
//     that some function in the load receives from or ranges over (the
//     prefetcher/collector shape: `defer close(p.ch)` joined by the
//     consumer's `<-p.ch`);
//   - cancellation awareness: the goroutine receives from a Done()
//     channel (ctx-done select), so the spawner can always release it.
//
// Anything else is a leak the intraprocedural analyzers of PR 5 could
// not see: the join evidence usually lives two calls away.
var GoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc: "flag go statements whose goroutine reaches no WaitGroup.Wait, " +
		"completion-channel receive, or ctx-done select, transitively " +
		"through called functions",
	Run: runGoroutineJoin,
}

func runGoroutineJoin(pass *Pass) {
	ip := pass.IP
	if ip == nil {
		return
	}
	for _, info := range ip.infos {
		if info.Pkg.Types != pass.Pkg {
			continue
		}
		for _, g := range info.GoStmts {
			checkGoJoin(pass, info, g)
		}
	}
}

func checkGoJoin(pass *Pass, spawner *FuncInfo, g *ast.GoStmt) {
	ip := pass.IP
	body := ip.GoroutineInfo(pass.TypesInfo, g)
	if body == nil {
		// Dynamic spawn target (function value, interface method): the
		// summary layer cannot see the body. Flag it — a join that cannot
		// be verified is indistinguishable from one that does not exist,
		// and a suppression with the reason is the documented escape.
		pass.Reportf(g.Pos(),
			"goroutine body is not statically resolvable; cannot verify it is joined or cancellable")
		return
	}
	keys := ip.transitiveKeys(body)

	// WaitGroup join: the goroutine Done()s a group somebody Waits on.
	for k := range keys.done {
		if ip.WaitedSomewhere(k) {
			return
		}
	}
	// Completion channel: the goroutine sends on / closes a channel
	// somebody receives from.
	for k := range keys.send {
		if ip.ReceivedSomewhere(k) {
			return
		}
	}
	// Cancellation-aware: the goroutine parks on a ctx-done receive.
	if keys.ctxDone {
		return
	}
	// Spawner-side fallback: wg.Add(1); go fn(&wg) with the Wait in the
	// spawner after the statement — the goroutine side may hide its Done
	// behind a dynamic call, but the spawner's Wait still bounds it.
	for _, k := range spawner.WaitKeys {
		if containsKeyAfter(spawner, k, g) {
			return
		}
	}

	pass.Reportf(g.Pos(),
		"goroutine reaches no join or cancellation (no WaitGroup.Wait, no completion-channel receive, no ctx-done select): it can outlive the work that spawned it")
}

// containsKeyAfter reports whether the spawner Waits on WaitGroup key k
// at a position after the go statement.
func containsKeyAfter(spawner *FuncInfo, k string, g *ast.GoStmt) bool {
	for _, b := range spawner.Blocks {
		if b.Pos > g.Pos() && b.Desc == "sync.WaitGroup.Wait on "+k {
			return true
		}
	}
	return false
}
