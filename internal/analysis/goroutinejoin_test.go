package analysis

import (
	"testing"
)

// TestGoroutineJoinFixture proves the analyzer flags goroutines with no
// reachable join or cancellation (including the two-hop signal-to-nobody
// case only the transitive summary can see) and accepts the WaitGroup
// fan-in through a helper's Done, completion channels, ctx-done selects,
// and spawner-side Waits.
func TestGoroutineJoinFixture(t *testing.T) {
	runFixture(t, GoroutineJoin, "gojoin")
}

// TestRealTreePins is the regression pin the sweep earned: the whole
// production tree passes goroutinejoin and durability with only reasoned
// //gsnplint:ignore suppressions. A new unjoined goroutine or non-atomic
// durable write anywhere in the repo fails this test before it fails CI.
func TestRealTreePins(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading production tree: %v", err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.PkgPath] = true
	}
	for _, want := range []string{"gsnp/internal/journal", "gsnp/internal/service"} {
		if !seen[want] {
			t.Fatalf("pin lost its subject: %s not in the load", want)
		}
	}
	for _, d := range RunAll(pkgs, []*Analyzer{GoroutineJoin, Durability, LockHold}) {
		t.Errorf("%s: [%s] %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
