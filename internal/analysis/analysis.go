// Package analysis is a self-contained static-analysis framework plus the
// four GSNP project analyzers (determinism, arenalifetime, closecheck,
// saturation) that mechanically enforce the invariants DESIGN.md §9
// documents in prose.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the analyzers could be ported to a stock
// multichecker verbatim. We cannot depend on x/tools here: the build
// environment is offline-first and the module is not in the local module
// cache, and the repo's hard rule is that gates must work without
// fetching anything. Everything below is standard library only — package
// loading rides `go list -export` and the gc export-data importer, which
// is the same machinery `go vet` itself uses.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph rule statement shown by `gsnplint -help`.
	Doc string
	Run func(*Pass)
}

// Diagnostic is one finding, attributed to the analyzer that raised it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to pkg and returns the surviving diagnostics:
// findings suppressed by a well-formed //gsnplint:ignore directive are
// dropped, and malformed directives become diagnostics themselves.
// Results are sorted by file position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	dirs := directives(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		a.Run(pass)
		out = append(out, dirs.filter(pkg.Fset, pass.diags)...)
	}
	out = append(out, dirs.problems...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// All returns the gsnplint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, ArenaLifetime, CloseCheck, Saturation}
}

// ByName resolves a comma-separated analyzer selection.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var sel []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		sel = append(sel, a)
	}
	return sel, nil
}
