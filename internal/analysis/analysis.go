// Package analysis is a self-contained static-analysis framework plus the
// four GSNP project analyzers (determinism, arenalifetime, closecheck,
// saturation) that mechanically enforce the invariants DESIGN.md §9
// documents in prose.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the analyzers could be ported to a stock
// multichecker verbatim. We cannot depend on x/tools here: the build
// environment is offline-first and the module is not in the local module
// cache, and the repo's hard rule is that gates must work without
// fetching anything. Everything below is standard library only — package
// loading rides `go list -export` and the gc export-data importer, which
// is the same machinery `go vet` itself uses.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// IP is the load-wide interprocedural fact base (call graph +
	// function summaries), computed once per load and shared by every
	// analyzer of every package in it.
	IP *Interproc

	diags []Diagnostic
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph rule statement shown by `gsnplint -help`.
	Doc string
	Run func(*Pass)
}

// Diagnostic is one finding, attributed to the analyzer that raised it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAll applies each analyzer to every package of one load and returns
// the surviving diagnostics: findings suppressed by a well-formed
// //gsnplint:ignore directive are dropped, and malformed directives
// become diagnostics themselves. The interprocedural fact base is built
// once, over the whole load, before any analyzer runs — cross-package
// call edges (service -> journal -> checkpoint) resolve only when the
// callee's package is part of the same load. Results are sorted by file
// position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ip := buildInterproc(pkgs)
	var out []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		dirs := directives(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				IP:        ip,
			}
			a.Run(pass)
			out = append(out, dirs.filter(pkg.Fset, pass.diags)...)
		}
		out = append(out, dirs.problems...)
	}
	if fset != nil {
		sort.Slice(out, func(i, j int) bool {
			pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return out[i].Analyzer < out[j].Analyzer
		})
	}
	return out
}

// Run is RunAll for a single package: the interprocedural layer sees
// only pkg, so cross-package edges resolve as unknown externals. The
// fixture harness and single-package pins use it.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll([]*Package{pkg}, analyzers)
}

// All returns the gsnplint analyzer suite in stable order: the four
// intraprocedural invariants from PR 5, then the three interprocedural
// analyzers built on the shared call-graph/summary layer.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, ArenaLifetime, CloseCheck, Saturation,
		GoroutineJoin, LockHold, Durability,
	}
}

// ByName resolves a comma-separated analyzer selection.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var sel []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		sel = append(sel, a)
	}
	return sel, nil
}
