package analysis

// The interprocedural layer: a per-load call graph plus one summary per
// function declaration, computed once when a load's packages enter
// RunAll and handed to every analyzer through Pass.IP. The summaries
// record the facts the concurrency and durability analyzers need to see
// across function boundaries — spawns-goroutine, blocks-on-channel/
// select/Wait, performs file-or-network I/O, acquires/releases which
// mutex, writes under which path, fsyncs file handles — and the
// transitive queries (Blocks, DoneKeys, SendCloseKeys, ...) memoize a
// DFS over static call edges so asking "does this call eventually
// block?" is cheap for every analyzer.
//
// Resolution is static only: direct calls to package-level functions and
// methods with a concrete receiver, across every package in the same
// load. Calls through interface values or function-typed variables fall
// back to "unknown external", classified by a curated table of standard
// library functions that block or touch the disk/network. That keeps the
// layer sound enough for gating (no panic on dynamic dispatch) while
// catching the shapes this repo actually uses — worker pools, prefetch
// producers, WAL appends — where the call targets are static.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BlockOp is one potentially blocking operation inside a function body:
// a channel send/receive, a select without default, a WaitGroup.Wait, a
// known-blocking external call (file or network I/O, time.Sleep), or a
// static call to a load-local function that transitively blocks.
type BlockOp struct {
	Pos  token.Pos
	Desc string // human-readable, e.g. "send on channel" or "call to flush (does file I/O)"
}

// LockEvent is one mutex acquisition or release, identified by Key.
type LockEvent struct {
	Pos      token.Pos
	Key      string // mutex identity, see chanKey
	Unlock   bool
	Deferred bool // defer mu.Unlock(): held to the end of the function
}

// WriteCall is one direct file-creating/writing call (os.WriteFile,
// os.Create, writable os.OpenFile) with the path argument it targets.
type WriteCall struct {
	Pos     token.Pos
	Callee  string   // "os.WriteFile", ...
	PathArg ast.Expr // the path expression passed to the call
}

// CallSite is one static call edge to a function in the same load.
type CallSite struct {
	Pos    token.Pos
	Callee *types.Func
	Call   *ast.CallExpr
}

// FuncInfo is the summary of one function declaration (or one
// go-statement function literal, which gets its own synthetic summary).
type FuncInfo struct {
	Fn   *types.Func // nil for go-statement literals
	Decl ast.Node    // *ast.FuncDecl or *ast.FuncLit
	Pkg  *Package

	// GoStmts are the go statements spawned directly by this function
	// (not by goroutines it spawns).
	GoStmts []*ast.GoStmt

	// Blocks are the direct potentially-blocking operations, excluding
	// anything inside a spawned goroutine body or a defer statement.
	Blocks []BlockOp

	// Calls are the static load-local call edges (defers included).
	Calls []CallSite

	// Locks are the mutex acquire/release events in source order.
	Locks []LockEvent

	// DoneKeys / WaitKeys / AddKeys identify the sync.WaitGroups this
	// function calls Done/Wait/Add on directly.
	DoneKeys, WaitKeys, AddKeys []string

	// SendKeys / RecvKeys identify channels this function directly sends
	// on or closes / receives from or ranges over.
	SendKeys, RecvKeys []string

	// CtxDoneSelect is true when the body receives from a Done() channel
	// (a ctx-done select case or a bare <-ctx.Done()), i.e. the function
	// is cancellation-aware.
	CtxDoneSelect bool

	// IO is true when the function directly performs file or network I/O.
	IO bool

	// Writes are the direct file-write calls (for the durability check).
	Writes []WriteCall

	// SyncsFile is true when the function calls Sync() on an *os.File:
	// it implements its own durability (fsync-before-rename or fsync'd
	// append) and its writes are sanctioned.
	SyncsFile bool

	// WriteParams are the parameter indices whose value flows into the
	// path of an unsanctioned direct write in this function.
	WriteParams map[int]bool

	// paramObjs maps parameter index -> object, for flow queries.
	paramObjs []types.Object
}

// Interproc is the shared interprocedural fact base for one load.
type Interproc struct {
	// ByFunc maps every declared function/method in the load to its
	// summary, keyed by funcKey (Origin().FullName()): the same function
	// seen through another package's import (an export-data object) and
	// through its own Defs must land on one summary.
	ByFunc map[string]*FuncInfo
	// ByGo maps each go statement to the summary of its spawned body
	// (the function literal, or the called function's summary).
	ByGo map[*ast.GoStmt]*FuncInfo
	// infos lists every summary (declarations and go-literals).
	infos []*FuncInfo

	// allWaitKeys / allRecvKeys aggregate the load: which WaitGroups
	// have a Wait somewhere, which channels are received from somewhere.
	allWaitKeys map[string]bool
	allRecvKeys map[string]bool

	// memo tables for the transitive queries.
	blocksMemo map[*FuncInfo]*BlockOp
	ioMemo     map[*FuncInfo]int8 // 0 unknown, 1 yes, -1 no
	keysMemo   map[*FuncInfo]*transKeys
	writeMemo  map[*FuncInfo]map[int]bool
}

type transKeys struct {
	done, send map[string]bool
	ctxDone    bool
}

// buildInterproc computes summaries for every function in pkgs.
func buildInterproc(pkgs []*Package) *Interproc {
	ip := &Interproc{
		ByFunc:      map[string]*FuncInfo{},
		ByGo:        map[*ast.GoStmt]*FuncInfo{},
		allWaitKeys: map[string]bool{},
		allRecvKeys: map[string]bool{},
		blocksMemo:  map[*FuncInfo]*BlockOp{},
		ioMemo:      map[*FuncInfo]int8{},
		keysMemo:    map[*FuncInfo]*transKeys{},
		writeMemo:   map[*FuncInfo]map[int]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				info := ip.summarize(pkg, fd, fd.Body, fn)
				if fn != nil {
					ip.ByFunc[funcKey(fn)] = info
				}
			}
		}
	}
	for _, info := range ip.infos {
		for _, k := range info.WaitKeys {
			ip.allWaitKeys[k] = true
		}
		for _, k := range info.RecvKeys {
			ip.allRecvKeys[k] = true
		}
	}
	return ip
}

// summarize collects the direct facts of one function body. Bodies of
// go-spawned function literals are excluded (they execute in the
// goroutine, not the spawner) and summarized separately under ByGo.
func (ip *Interproc) summarize(pkg *Package, decl ast.Node, body *ast.BlockStmt, fn *types.Func) *FuncInfo {
	info := &FuncInfo{Fn: fn, Decl: decl, Pkg: pkg}
	ip.infos = append(ip.infos, info)
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil {
			for i := 0; i < sig.Params().Len(); i++ {
				info.paramObjs = append(info.paramObjs, sig.Params().At(i))
			}
		}
	}
	info.WriteParams = map[int]bool{}
	inf := pkg.TypesInfo

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				info.GoStmts = append(info.GoStmts, n)
				// The spawned body belongs to the goroutine, not the
				// spawner: a literal gets its own summary under ByGo, and
				// `go f(x)` resolves through ByFunc — neither becomes a
				// call edge, because spawning never blocks the spawner.
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					ip.ByGo[n] = ip.summarize(pkg, lit, lit.Body, nil)
				}
				// Argument expressions still evaluate in the spawner.
				for _, a := range n.Call.Args {
					walk(a, inDefer)
				}
				return false
			case *ast.DeferStmt:
				// Deferred work runs at return: its lock releases and call
				// edges count, but its blocking ops are excluded from the
				// spawner's in-body sequence (inDefer). Only the directly
				// deferred call is a Deferred unlock — `defer mu.Unlock()`
				// holds the mutex to the end of the function, while a
				// Lock/Unlock pair inside a deferred closure body is a
				// normal bounded pair that merely runs at return.
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					for _, a := range n.Call.Args {
						walk(a, inDefer)
					}
					walk(lit.Body, true)
				} else {
					ip.callFacts(info, inf, n.Call, true, true)
					for _, a := range n.Call.Args {
						walk(a, true)
					}
				}
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					// Immediately-invoked literal: runs right here.
					for _, a := range n.Args {
						walk(a, inDefer)
					}
					walk(lit.Body, inDefer)
					return false
				}
				ip.callFacts(info, inf, n, inDefer, false)
			case *ast.FuncLit:
				// A literal that is stored or passed runs wherever its
				// value is eventually called; attributing its body to this
				// function would invent blocking ops that never execute
				// here. Known approximation: facts inside such literals
				// are invisible to the transitive queries.
				return false
			case *ast.SendStmt:
				if !inDefer {
					info.Blocks = append(info.Blocks, BlockOp{Pos: n.Pos(), Desc: "send on " + renderKey(inf, n.Chan)})
				}
				info.SendKeys = appendKey(info.SendKeys, inf, n.Chan)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if !inDefer {
						info.Blocks = append(info.Blocks, BlockOp{Pos: n.Pos(), Desc: "receive from " + renderKey(inf, n.X)})
					}
					info.RecvKeys = appendKey(info.RecvKeys, inf, n.X)
					if isDoneCall(inf, n.X) {
						info.CtxDoneSelect = true
					}
				}
			case *ast.RangeStmt:
				if t := inf.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						if !inDefer {
							info.Blocks = append(info.Blocks, BlockOp{Pos: n.Pos(), Desc: "range over " + renderKey(inf, n.X)})
						}
						info.RecvKeys = appendKey(info.RecvKeys, inf, n.X)
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault && !inDefer {
					info.Blocks = append(info.Blocks, BlockOp{Pos: n.Pos(), Desc: "select without default"})
				}
				// Case channels are recorded by the nested Send/Unary walks.
			}
			return true
		})
	}
	walk(body, false)
	ip.findWriteParams(info)
	return info
}

// callFacts classifies one call expression: builtin close, mutex ops,
// WaitGroup ops, known external blocking/I-O functions, write calls,
// Sync, and load-local static edges. directDefer marks the call that is
// itself the deferred expression (`defer mu.Unlock()`), whose unlock
// extends the held interval to the end of the function.
func (ip *Interproc) callFacts(info *FuncInfo, inf *types.Info, call *ast.CallExpr, inDefer, directDefer bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if objOf(inf, id) == nil || objOf(inf, id).Pkg() == nil { // the builtin
			info.SendKeys = appendKey(info.SendKeys, inf, call.Args[0])
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if isMutexExpr(inf, sel.X) {
				info.Locks = append(info.Locks, LockEvent{Pos: call.Pos(), Key: renderKey(inf, sel.X)})
				return
			}
		case "Unlock", "RUnlock":
			if isMutexExpr(inf, sel.X) {
				info.Locks = append(info.Locks, LockEvent{Pos: call.Pos(), Key: renderKey(inf, sel.X), Unlock: true, Deferred: directDefer})
				return
			}
		case "Wait":
			if isNamed(inf.TypeOf(sel.X), "sync", "WaitGroup") {
				info.WaitKeys = appendKey(info.WaitKeys, inf, sel.X)
				if !inDefer {
					info.Blocks = append(info.Blocks, BlockOp{Pos: call.Pos(), Desc: "sync.WaitGroup.Wait on " + renderKey(inf, sel.X)})
				}
				return
			}
			// sync.Cond.Wait releases its mutex while parked, so it is
			// deliberately NOT a blocking op for lockhold.
			if isNamed(inf.TypeOf(sel.X), "sync", "Cond") {
				return
			}
		case "Done":
			if isNamed(inf.TypeOf(sel.X), "sync", "WaitGroup") {
				info.DoneKeys = appendKey(info.DoneKeys, inf, sel.X)
				return
			}
		case "Add":
			if isNamed(inf.TypeOf(sel.X), "sync", "WaitGroup") {
				info.AddKeys = appendKey(info.AddKeys, inf, sel.X)
				return
			}
		case "Sync":
			if isFileType(inf.TypeOf(sel.X)) {
				info.SyncsFile = true
				info.IO = true
				if !inDefer {
					info.Blocks = append(info.Blocks, BlockOp{Pos: call.Pos(), Desc: "file I/O (Sync)"})
				}
				return
			}
		}
	}

	full := calleeFullName(inf, call)
	switch full {
	case "os.WriteFile", "os.Create":
		if len(call.Args) > 0 {
			info.Writes = append(info.Writes, WriteCall{Pos: call.Pos(), Callee: full, PathArg: call.Args[0]})
		}
	case "os.OpenFile":
		// Only creating or truncating opens count as durable writes: an
		// O_WRONLY|O_APPEND reopen of an existing fsync'd file (the WAL
		// after compaction) replaces no bytes by itself, and the appends
		// that follow carry their own Sync.
		if len(call.Args) > 1 && flagsCreateOrTruncate(inf, call.Args[1]) {
			info.Writes = append(info.Writes, WriteCall{Pos: call.Pos(), Callee: full, PathArg: call.Args[0]})
		}
	}
	if desc, blocking := externalBlocking(full); desc != "" {
		info.IO = info.IO || strings.Contains(desc, "I/O")
		if blocking && !inDefer {
			info.Blocks = append(info.Blocks, BlockOp{Pos: call.Pos(), Desc: desc})
		}
		return
	}
	if callee := staticCallee(inf, call); callee != nil {
		info.Calls = append(info.Calls, CallSite{Pos: call.Pos(), Callee: callee, Call: call})
	}
}

// findWriteParams marks the parameters whose value reaches the path of a
// direct unsanctioned write in this function (os.WriteFile(filepath.
// Join(dir, ...), ...) with dir a parameter). Used to flag durable paths
// handed to oblivious helpers at the call site.
func (ip *Interproc) findWriteParams(info *FuncInfo) {
	if info.Fn == nil || len(info.Writes) == 0 || info.SyncsFile {
		return
	}
	inf := info.Pkg.TypesInfo
	for _, w := range info.Writes {
		for i, p := range info.paramObjs {
			if p != nil && usesVar(inf, w.PathArg, p) {
				info.WriteParams[i] = true
			}
		}
	}
}

// Info returns the summary of fn, or nil when fn is outside the load.
func (ip *Interproc) Info(fn *types.Func) *FuncInfo {
	if ip == nil || fn == nil {
		return nil
	}
	return ip.ByFunc[funcKey(fn)]
}

// funcKey is the load-stable identity of a function: the generic origin's
// fully qualified name, so an instantiated method, an imported view and
// the defining declaration all share one key.
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// GoroutineInfo returns the summary of the body spawned by g: the
// literal's own summary, or the called function's.
func (ip *Interproc) GoroutineInfo(inf *types.Info, g *ast.GoStmt) *FuncInfo {
	if info, ok := ip.ByGo[g]; ok && info != nil {
		return info
	}
	if callee := staticCallee(inf, g.Call); callee != nil {
		return ip.ByFunc[funcKey(callee)]
	}
	return nil
}

// FirstBlock returns the first potentially-blocking operation reachable
// from info, transitively through static calls, or nil. The description
// of an indirect block names the call chain's first hop.
func (ip *Interproc) FirstBlock(info *FuncInfo) *BlockOp {
	if info == nil {
		return nil
	}
	if op, ok := ip.blocksMemo[info]; ok {
		return op
	}
	ip.blocksMemo[info] = nil // cycle guard: recursion does not block by itself
	var found *BlockOp
	if len(info.Blocks) > 0 {
		found = &info.Blocks[0]
	} else {
		for _, c := range info.Calls {
			callee := ip.ByFunc[funcKey(c.Callee)]
			if callee == nil {
				continue
			}
			if op := ip.FirstBlock(callee); op != nil {
				found = &BlockOp{Pos: c.Pos, Desc: "call to " + c.Callee.Name() + ", which " + shortBlockDesc(op.Desc)}
				break
			}
		}
	}
	ip.blocksMemo[info] = found
	return found
}

func shortBlockDesc(d string) string {
	switch {
	case strings.HasPrefix(d, "call to "):
		return "blocks transitively"
	case strings.Contains(d, "I/O"):
		return "does " + d
	default:
		return "can block (" + d + ")"
	}
}

// transitiveKeys unions DoneKeys/SendKeys/CtxDoneSelect over everything
// statically reachable from info.
func (ip *Interproc) transitiveKeys(info *FuncInfo) *transKeys {
	if info == nil {
		return &transKeys{done: map[string]bool{}, send: map[string]bool{}}
	}
	if tk, ok := ip.keysMemo[info]; ok {
		return tk
	}
	tk := &transKeys{done: map[string]bool{}, send: map[string]bool{}}
	ip.keysMemo[info] = tk // cycle guard; fixpoint not needed for our queries
	for _, k := range info.DoneKeys {
		tk.done[k] = true
	}
	for _, k := range info.SendKeys {
		tk.send[k] = true
	}
	tk.ctxDone = info.CtxDoneSelect
	for _, c := range info.Calls {
		sub := ip.transitiveKeys(ip.ByFunc[funcKey(c.Callee)])
		for k := range sub.done {
			tk.done[k] = true
		}
		for k := range sub.send {
			tk.send[k] = true
		}
		tk.ctxDone = tk.ctxDone || sub.ctxDone
	}
	return tk
}

// WaitedSomewhere reports whether any function in the load calls Wait on
// the WaitGroup identified by key.
func (ip *Interproc) WaitedSomewhere(key string) bool { return ip.allWaitKeys[key] }

// ReceivedSomewhere reports whether any function in the load receives
// from (or ranges over) the channel identified by key.
func (ip *Interproc) ReceivedSomewhere(key string) bool { return ip.allRecvKeys[key] }

// DurableWriteParams returns the parameter indices of fn that flow into
// an unsanctioned disk write, transitively: fn either writes under the
// parameter itself or passes it along to a helper that does.
func (ip *Interproc) DurableWriteParams(info *FuncInfo) map[int]bool {
	if info == nil {
		return nil
	}
	if m, ok := ip.writeMemo[info]; ok {
		return m
	}
	m := map[int]bool{}
	ip.writeMemo[info] = m // cycle guard
	if info.SyncsFile {
		return m // the function implements its own durability
	}
	for i := range info.WriteParams {
		m[i] = true
	}
	inf := info.Pkg.TypesInfo
	for _, c := range info.Calls {
		sub := ip.DurableWriteParams(ip.ByFunc[funcKey(c.Callee)])
		for argIdx := range sub {
			if argIdx >= len(c.Call.Args) {
				continue
			}
			for pi, p := range info.paramObjs {
				if p != nil && usesVar(inf, c.Call.Args[argIdx], p) {
					m[pi] = true
				}
			}
		}
	}
	return m
}

// staticCallee resolves call to a declared function or concrete method,
// or nil for dynamic/interface/builtin calls.
func staticCallee(inf *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := objOf(inf, id).(*types.Func)
	return fn
}

// flagsCreateOrTruncate reports whether an os.OpenFile flag expression
// contains O_CREATE or O_TRUNC. A flag value the analyzer cannot read (a
// variable, a call) is conservatively treated as creating.
func flagsCreateOrTruncate(inf *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		return flagsCreateOrTruncate(inf, e.X) || flagsCreateOrTruncate(inf, e.Y)
	case *ast.SelectorExpr:
		if c, ok := objOf(inf, e.Sel).(*types.Const); ok {
			return c.Name() == "O_CREATE" || c.Name() == "O_TRUNC"
		}
	case *ast.Ident:
		if c, ok := objOf(inf, e).(*types.Const); ok {
			return c.Name() == "O_CREATE" || c.Name() == "O_TRUNC"
		}
	case *ast.BasicLit:
		return false
	}
	return true // unreadable flags: assume the worst
}

// isMutexExpr reports whether e is a sync.Mutex or sync.RWMutex (or a
// pointer to one), including promoted/embedded fields accessed directly.
func isMutexExpr(inf *types.Info, e ast.Expr) bool {
	t := inf.TypeOf(e)
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// isFileType matches *os.File.
func isFileType(t types.Type) bool { return isNamed(t, "os", "File") }

// isDoneCall reports whether e is a call to a Done() method — the
// context cancellation channel.
func isDoneCall(inf *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done" && len(call.Args) == 0
}

// renderKey produces a stable identity for a channel / WaitGroup / mutex
// expression so uses in different functions can be matched:
//
//   - a field chain rooted in a named type renders as "Type.field"
//     (p.wg on *Pool -> "Pool.wg"), so the worker's p.wg.Done matches
//     Close's p.wg.Wait even though p differs;
//   - a plain variable renders as its declaration position, so a local
//     channel captured by a closure matches receives in the same
//     function and nothing else.
func renderKey(inf *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := objOf(inf, e); o != nil {
			if o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
				return o.Pkg().Path() + "." + o.Name() // package-level var
			}
			return "local@" + itoa(int(o.Pos()))
		}
		return e.Name
	case *ast.SelectorExpr:
		if n := namedOf(inf.TypeOf(e.X)); n != nil && n.Obj() != nil {
			owner := n.Obj().Name()
			if n.Obj().Pkg() != nil {
				owner = n.Obj().Pkg().Path() + "." + owner
			}
			return owner + "." + e.Sel.Name
		}
		return renderKey(inf, e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return calleeName(e) + "()"
	case *ast.IndexExpr:
		return renderKey(inf, e.X) + "[i]"
	default:
		return "expr"
	}
}

func appendKey(keys []string, inf *types.Info, e ast.Expr) []string {
	return append(keys, renderKey(inf, e))
}

// externalBlocking classifies a fully qualified external function name.
// It returns a description ("" when unknown) and whether the call can
// block the caller. I/O verbs are both: they block and they touch the
// disk or network.
func externalBlocking(full string) (desc string, blocking bool) {
	if full == "" {
		return "", false
	}
	switch full {
	case "time.Sleep":
		return "time.Sleep", true
	case "(*sync.WaitGroup).Wait":
		return "sync.WaitGroup.Wait", true
	}
	// File and network I/O by package + name. The receiver spelling in
	// FullName is "(*os.File).Write" / "(net.Conn).Read".
	ioTables := []struct{ prefix, names string }{
		{"os.", "Create CreateTemp Open OpenFile ReadFile WriteFile Rename Remove RemoveAll Mkdir MkdirAll MkdirTemp ReadDir Stat Lstat Truncate Chtimes Link Symlink"},
		{"(*os.File).", "Read ReadAt ReadFrom Write WriteAt WriteString WriteTo Sync Close Truncate Seek"},
		{"io.", "Copy CopyN CopyBuffer ReadAll ReadFull WriteString"},
		{"(*bufio.Writer).", "Flush ReadFrom Write WriteString WriteByte WriteRune"},
		{"(*bufio.Reader).", "Read ReadByte ReadBytes ReadLine ReadRune ReadSlice ReadString Peek WriteTo"},
		{"(*bufio.Scanner).", "Scan"},
		{"net.", "Dial DialTimeout Listen ListenPacket"},
		{"net/http.", "Get Head Post PostForm Serve ListenAndServe ListenAndServeTLS"},
		{"(*net/http.Client).", "Do Get Head Post PostForm"},
		{"(net.Conn).", "Read Write Close"},
		{"(net.Listener).", "Accept Close"},
		{"(*os/exec.Cmd).", "Run Output CombinedOutput Start Wait"},
		{"(*compress/gzip.Writer).", "Write Close Flush"},
		{"(*compress/flate.Writer).", "Write Close Flush"},
		{"(*compress/zlib.Writer).", "Write Close Flush"},
		{"(*encoding/json.Encoder).", "Encode"},
		{"(*encoding/json.Decoder).", "Decode"},
	}
	for _, tbl := range ioTables {
		rest, ok := strings.CutPrefix(full, tbl.prefix)
		if !ok {
			continue
		}
		for _, n := range strings.Fields(tbl.names) {
			if rest == n {
				kind := "file I/O"
				if strings.HasPrefix(tbl.prefix, "net") || strings.Contains(tbl.prefix, "http") {
					kind = "network I/O"
				}
				return kind + " (" + full + ")", true
			}
		}
	}
	return "", false
}
