package analysis

import "testing"

// TestCloseCheckFixture proves the analyzer flags deferred Closes on
// os.Create/writable-OpenFile handles and gzip writers, and accepts
// read-only files and the deferred error-joining closure.
func TestCloseCheckFixture(t *testing.T) {
	runFixture(t, CloseCheck, "closefix")
}
