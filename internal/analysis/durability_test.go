package analysis

import "testing"

// TestDurabilityFixture proves the analyzer flags non-atomic writes
// under durable paths — direct WriteFile/Create/creating-OpenFile, the
// local-propagation case, and the durable path handed to an oblivious
// helper — and accepts the fsync-before-rename shape, append-only WAL
// reopens, and scratch-path writes.
func TestDurabilityFixture(t *testing.T) {
	runFixture(t, Durability, "durablefix")
}
