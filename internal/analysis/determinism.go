package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// outputPkgSuffixes names the packages on the byte-identity path: every
// byte they emit must be independent of map iteration order, scheduling,
// wall-clock time and random state. Matching is by path suffix so test
// fixtures under a different module root are gated identically.
var outputPkgSuffixes = []string{
	"internal/pipeline",
	"internal/gsnp",
	"internal/soapsnp",
	"internal/compress",
	// The aligner feeds the callers directly in fastq mode: its read
	// placements and sort order are the byte-identity contract's input.
	"internal/align",
	"internal/genomejob",
	"internal/service",
	// The job journal's records replay into job execution after a crash:
	// map-ordered or clock-dependent WAL content would make recovery
	// diverge from the interrupted run.
	"internal/journal",
}

// Determinism enforces the paper's bit-identity contract (the
// new_p_matrix precomputation exists precisely so GPU output matches the
// CPU byte-for-byte): in output-producing packages it flags map
// iteration whose body produces ordered output (appends to an outer
// slice, sends on a channel, writes/encodes, or accumulates floats), and
// any data-bearing use of math/rand or time.Now.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag unordered map ranges that feed outputs, and math/rand or " +
		"time.Now values that flow into data, in output-producing packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !isOutputPackage(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		checkRandImports(pass, f)
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			case *ast.CallExpr:
				checkTimeNow(pass, n, stack)
			}
			return true
		})
	}
}

func isOutputPackage(path string) bool {
	for _, s := range outputPkgSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func checkRandImports(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(),
				"%s imported in an output-producing package: random state breaks byte-identical reruns", path)
		}
	}
}

// checkMapRange flags effects inside a `range` over a map whose result
// depends on iteration order.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	encl := enclosingFunc(stack)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send on a channel inside range over map: receiver observes map iteration order")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, encl, n)
		case *ast.CallExpr:
			if name := calleeName(n); isWriteVerb(name) {
				pass.Reportf(n.Pos(), "%s inside range over map emits output in map iteration order", name)
				return false
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, encl ast.Node, as *ast.AssignStmt) {
	info := pass.TypesInfo
	// v = append(v, ...) growing a slice that outlives the loop: the
	// slice records iteration order. Exempt the canonical collect-and-sort
	// pattern, where the slice is sorted after the loop.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || calleeName(call) != "append" || len(as.Lhs) <= i {
			continue
		}
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.Ident:
			v := objOf(info, lhs)
			if v == nil || declaredWithin(v, rs) || sortedAfter(info, encl, rs.End(), v) {
				continue
			}
			pass.Reportf(as.Pos(),
				"append to %q inside range over map records iteration order; collect and sort, or iterate sorted keys", lhs.Name)
		case *ast.SelectorExpr:
			pass.Reportf(as.Pos(),
				"append to field %q inside range over map records iteration order", lhs.Sel.Name)
		}
	}
	// Float accumulation is order-sensitive: FP addition does not
	// associate, so a map-ordered sum differs between runs.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN || as.Tok == token.MUL_ASSIGN {
		for _, lhs := range as.Lhs {
			t := info.TypeOf(lhs)
			if t == nil {
				continue
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v := objOf(info, id); v != nil && declaredWithin(v, rs) {
						continue
					}
				}
				pass.Reportf(as.Pos(),
					"floating-point accumulation inside range over map is order-sensitive (FP addition does not associate)")
			}
		}
	}
}

func isWriteVerb(name string) bool {
	for _, p := range []string{"Write", "Fprint", "Print", "Encode"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func declaredWithin(v types.Object, n ast.Node) bool {
	return v.Pos() >= n.Pos() && v.Pos() <= n.End()
}

// sortedAfter reports whether v is passed to a sorting call after pos in
// the enclosing function — the collect-then-sort idiom that restores a
// deterministic order.
func sortedAfter(info *types.Info, encl ast.Node, pos token.Pos, v types.Object) bool {
	body := funcBody(encl)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		// Matches sort.Slice/sort.Strings/slices.Sort/slices.SortFunc and
		// project-local sorters with Sort in the name.
		full := calleeFullName(info, call)
		if (strings.HasPrefix(full, "sort.") || strings.HasPrefix(full, "slices.") ||
			strings.Contains(calleeName(call), "Sort")) && usesVar(info, call, v) {
			found = true
		}
		return !found
	})
	return found
}

// checkTimeNow flags time.Now results that flow into data rather than
// timing. Durations (Since/Sub), comparisons and deadline plumbing are
// timing; anything that stores, returns, formats or encodes the
// timestamp puts wall-clock bytes into output.
func checkTimeNow(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if calleeFullName(pass.TypesInfo, call) != "time.Now" {
		return
	}
	if len(stack) == 0 {
		return
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		if name := calleeFullName(pass.TypesInfo, parent); timingCallee(name, calleeName(parent)) {
			return
		}
		pass.Reportf(call.Pos(), "time.Now result passed to %s: wall-clock data in an output-producing package", calleeName(parent))
	case *ast.SelectorExpr:
		if timingMethod(parent.Sel.Name) {
			return
		}
		pass.Reportf(call.Pos(), "time.Now().%s feeds data, not timing", parent.Sel.Name)
	case *ast.AssignStmt:
		// t := time.Now() — every use of t must stay in the timing domain.
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != call || len(parent.Lhs) <= i {
				continue
			}
			id, ok := ast.Unparen(parent.Lhs[i]).(*ast.Ident)
			if !ok {
				pass.Reportf(call.Pos(), "time.Now stored outside a local variable")
				continue
			}
			v := objOf(pass.TypesInfo, id)
			if v == nil {
				continue
			}
			checkTimeVarUses(pass, enclosingFunc(stack), v)
		}
	case *ast.BinaryExpr, *ast.ExprStmt:
		// comparisons and bare calls are timing-only
	default:
		pass.Reportf(call.Pos(), "time.Now used in a data position (composite literal, return, or field)")
	}
}

func timingCallee(fullName, bare string) bool {
	switch fullName {
	case "time.Since", "time.Until", "context.WithDeadline", "context.WithTimeout":
		return true
	}
	// Method calls taking the timestamp as an argument (end.Sub(start))
	// stay in the timing domain, as does any deadline setter.
	return timingMethod(bare) || strings.Contains(bare, "Deadline")
}

func timingMethod(name string) bool {
	switch name {
	case "Sub", "Before", "After", "Equal", "Compare", "Add", "Round", "Truncate":
		return true
	}
	return false
}

// checkTimeVarUses validates every use of a variable bound to time.Now.
func checkTimeVarUses(pass *Pass, encl ast.Node, v types.Object) {
	body := funcBody(encl)
	if body == nil {
		return
	}
	info := pass.TypesInfo
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || objOf(info, id) != v || len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.AssignStmt, *ast.ValueSpec, *ast.BinaryExpr:
			// the defining assignment, re-binding, or a comparison
		case *ast.SelectorExpr:
			if parent.Sel != id && !timingMethod(parent.Sel.Name) {
				pass.Reportf(id.Pos(), "wall-clock value %q used via .%s outside the timing domain", v.Name(), parent.Sel.Name)
			}
		case *ast.CallExpr:
			if !timingCallee(calleeFullName(info, parent), calleeName(parent)) {
				pass.Reportf(id.Pos(), "wall-clock value %q passed to %s: timestamps in data break byte-identical reruns", v.Name(), calleeName(parent))
			}
		default:
			pass.Reportf(id.Pos(), "wall-clock value %q used in a data position", v.Name())
		}
		return true
	})
}
