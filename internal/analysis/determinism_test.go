package analysis

import "testing"

// TestDeterminismFixture proves the analyzer fires on every seeded
// order-dependence (map-ordered sends, appends, writes, float sums,
// math/rand, data-bearing time.Now) and stays silent on the sanctioned
// idioms interleaved with them (collect-then-sort, loop-local scratch,
// integer sums, duration timing).
func TestDeterminismFixture(t *testing.T) {
	runFixture(t, Determinism, "internal/pipeline")
}

// TestDeterminismIgnoresNonOutputPackages pins the package gate: the
// same violations in a package off the output path raise nothing.
func TestDeterminismIgnoresNonOutputPackages(t *testing.T) {
	runFixtureClean(t, Determinism, "other")
}

// TestOutputPackageGate pins the suffix matching used by the gate.
func TestOutputPackageGate(t *testing.T) {
	for path, want := range map[string]bool{
		"gsnp/internal/pipeline":    true,
		"gsnp/internal/gsnp":        true,
		"gsnp/internal/service":     true,
		"fixture/internal/pipeline": true,
		"gsnp/internal/sched":       false,
		"gsnp/internal/snpio":       false,
		"fixture/other":             false,
	} {
		if got := isOutputPackage(path); got != want {
			t.Errorf("isOutputPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
