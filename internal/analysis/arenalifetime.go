package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaLifetime enforces the PR 2 recycling contract: every slice owned
// by a gsnp.Arena (including the per-window buffers behind it) is valid
// only until the window that borrowed it is recycled. A reference that
// outlives the window — stored into a long-lived struct, returned from
// an exported function, sent on a channel, or captured by an unscoped
// goroutine — would be silently overwritten by the next window.
//
// Scoped fan-out is allowed: a goroutine may borrow arena memory when
// the spawning function provably joins it (a .Wait() call after the go
// statement), which is exactly the compute-pool / runSharded shape.
// Methods on the Arena itself are exempt — handing out grow-only
// buffers is its API.
var ArenaLifetime = &Analyzer{
	Name: "arenalifetime",
	Doc: "flag arena-owned slices escaping the window lifetime: field " +
		"stores, exported returns, channel sends, unscoped goroutine capture",
	Run: runArenaLifetime,
}

// isArenaType matches the arena storage types. Arena is matched by name
// in any package (there is exactly one in the tree); the unexported
// per-window struct is matched only inside package gsnp, where it lives.
// The simulated GPU keeps its own recycled arenas — the per-block launch
// scratch (thread contexts, shared-memory arrays, coalescing samples) —
// whose storage is likewise valid only until the device recycles it, so
// the same escape rules apply inside package gpu.
func isArenaType(t types.Type) bool {
	return isNamed(t, "", "Arena") || isNamed(t, "gsnp", "window") ||
		isNamed(t, "gpu", "blockScratch") || isNamed(t, "gpu", "blockRT") ||
		isNamed(t, "gpu", "Thread")
}

// arenaRooted reports whether e reads through an Arena/window value or a
// variable in derived.
func arenaRooted(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		// A variable holding the arena itself also roots the chain, so
		// writes back into the arena (w.buf = w.buf[:0]) are recognized
		// as staying inside it.
		return derived[objOf(info, e)] || isArenaType(info.TypeOf(e))
	case *ast.SelectorExpr:
		return isArenaType(info.TypeOf(e.X)) || arenaRooted(info, e.X, derived)
	case *ast.SliceExpr:
		return arenaRooted(info, e.X, derived)
	case *ast.IndexExpr:
		return arenaRooted(info, e.X, derived)
	case *ast.StarExpr:
		return arenaRooted(info, e.X, derived)
	case *ast.CallExpr:
		if calleeName(e) == "append" && len(e.Args) > 0 {
			return arenaRooted(info, e.Args[0], derived)
		}
	}
	return false
}

// arenaDerivedSlice reports whether e is a slice borrowed from the arena.
func arenaDerivedSlice(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	return isSlice(info.TypeOf(e)) && arenaRooted(info, e, derived)
}

func runArenaLifetime(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkArenaFunc(pass, fd)
		}
	}
}

// receiverIsArena reports whether fd is a method on Arena/window.
func receiverIsArena(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isArenaType(info.TypeOf(fd.Recv.List[0].Type))
}

func checkArenaFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Two passes over the assignments give simple transitive tracking:
	// s := w.rows; t := s[:n] marks both s and t as arena-derived.
	derived := map[types.Object]bool{}
	for range 2 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if len(as.Lhs) <= i || !arenaDerivedSlice(info, rhs, derived) {
					continue
				}
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
					if v := objOf(info, id); v != nil {
						derived[v] = true
					}
				}
			}
			return true
		})
	}

	exported := fd.Name.IsExported() && !receiverIsArena(info, fd)
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !exported {
				return true
			}
			for _, res := range n.Results {
				if arenaDerivedSlice(info, res, derived) {
					pass.Reportf(res.Pos(),
						"arena-owned slice returned from exported %s: the caller's view is overwritten when the next window recycles the arena", fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) <= i || !arenaDerivedSlice(info, rhs, derived) {
					continue
				}
				if sel, ok := ast.Unparen(n.Lhs[i]).(*ast.SelectorExpr); ok && !arenaRooted(info, sel.X, derived) {
					pass.Reportf(n.Pos(),
						"arena-owned slice stored in field %s: the struct outlives the window that owns the memory", sel.Sel.Name)
				}
			}
		case *ast.SendStmt:
			if arenaDerivedSlice(info, n.Value, derived) {
				pass.Reportf(n.Pos(),
					"arena-owned slice sent on a channel escapes the window lifetime")
			}
		case *ast.GoStmt:
			checkArenaGo(pass, fd, n, derived)
		}
		return true
	})
}

// checkArenaGo flags goroutines that borrow arena memory without a join.
func checkArenaGo(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt, derived map[types.Object]bool) {
	info := pass.TypesInfo
	borrows := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := objOf(info, id)
		if v == nil {
			return true
		}
		if derived[v] || (v.Pos() < g.Pos() && isArenaType(v.Type())) {
			borrows = true
		}
		return !borrows
	})
	if !borrows {
		return
	}
	// Scoped fan-out: a .Wait() after the go statement joins the workers
	// before the window can be recycled.
	joined := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && call.Pos() > g.Pos() && calleeName(call) == "Wait" {
			joined = true
		}
		return !joined
	})
	if !joined {
		pass.Reportf(g.Pos(),
			"goroutine borrows arena memory with no .Wait() join in %s: the next window recycles the buffers while the goroutine runs", fd.Name.Name)
	}
}
