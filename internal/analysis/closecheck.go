package analysis

import (
	"go/ast"
	"go/types"
)

// CloseCheck flags `defer f.Close()` on writable files and compressing
// writers (gzip, flate, zlib), and `defer bw.Flush()` on bufio.Writer:
// Close and Flush are where buffered bytes hit the disk, so a discarded
// error (ENOSPC, quota, NFS flush) silently truncates the output the run
// just spent hours producing. Writable handles must be closed or flushed
// explicitly with the error propagated, or in a deferred closure that
// joins the error into the function's named return.
//
// Read-only files are exempt: their Close error cannot lose data.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc: "flag defer f.Close() discarding the error on writable files " +
		"and gzip/flate/zlib writers, and defer bw.Flush() on bufio writers",
	Run: runCloseCheck,
}

func runCloseCheck(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			df, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(df.Call.Fun).(*ast.SelectorExpr)
			if !ok || len(df.Call.Args) != 0 {
				return true
			}
			switch sel.Sel.Name {
			case "Close":
				if why := writableCloser(pass, sel.X, enclosingFunc(stack)); why != "" {
					pass.Reportf(df.Pos(),
						"defer %s discards the Close error of a %s; a full disk loses buffered output silently — close explicitly and propagate the error",
						exprString(sel), why)
				}
			case "Flush":
				if isNamed(pass.TypesInfo.TypeOf(sel.X), "bufio", "Writer") {
					pass.Reportf(df.Pos(),
						"defer %s discards the Flush error of a bufio writer; the final buffered chunk is exactly what a full disk drops — flush explicitly and propagate the error",
						exprString(sel))
				}
			}
			return true
		})
	}
}

// compressingWriters are the stdlib writers whose Close flushes the
// stream footer: losing its error loses the tail of the output.
var compressingWriters = []struct{ pkg, desc string }{
	{"compress/gzip", "gzip writer"},
	{"compress/flate", "flate writer"},
	{"compress/zlib", "zlib writer"},
}

// writableCloser classifies x as a writer whose Close reports data loss,
// returning a short description or "".
func writableCloser(pass *Pass, x ast.Expr, encl ast.Node) string {
	info := pass.TypesInfo
	for _, w := range compressingWriters {
		if isNamed(info.TypeOf(x), w.pkg, "Writer") {
			return w.desc
		}
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return ""
	}
	v := objOf(info, id)
	body := funcBody(encl)
	if v == nil || body == nil {
		return ""
	}
	// Find how the variable was opened in this function.
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || why != "" {
			return why == ""
		}
		for i, lhs := range as.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || objOf(info, lid) != v || len(as.Rhs) == 0 {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) > i {
				rhs = as.Rhs[i]
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			switch calleeFullName(info, call) {
			case "os.Create":
				why = "file opened for writing"
			case "os.OpenFile":
				if len(call.Args) > 1 && !readOnlyFlags(info, call.Args[1]) {
					why = "file opened for writing"
				}
			}
		}
		return why == ""
	})
	return why
}

// readOnlyFlags reports whether the os.OpenFile flag expression is
// provably read-only (the literal os.O_RDONLY).
func readOnlyFlags(info *types.Info, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if c, ok := objOf(info, sel.Sel).(*types.Const); ok {
			return c.Name() == "O_RDONLY"
		}
	}
	return false
}

// exprString renders a selector chain for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expr"
	}
}
