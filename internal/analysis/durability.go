package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Durability enforces the crash-consistency contract of DESIGN.md §11:
// every byte that lands under a journal, spool, checkpoint or other
// durable directory must be written atomically — through
// checkpoint.AtomicWrite (temp file + fsync + rename) or an explicitly
// fsync'd handle (the WAL's fsync'd append). A plain os.WriteFile or
// os.Create on a durable path can be torn or lost entirely by a crash:
// the journal would then replay a job whose inputs are gone, or trust a
// checkpoint manifest whose bytes never hit the platter — exactly the
// corruption the WAL's torn-tail repair exists to rule out.
//
// A write is sanctioned when the function performing it calls Sync() on
// an *os.File — it implements its own durability (fsync-before-rename,
// or fsync'd append) — so checkpoint.AtomicWrite and journal.append
// pass by construction, not by name. The interprocedural case is the
// dangerous one: a helper that takes a directory and os.WriteFiles into
// it looks innocent in isolation; the finding lands on the call site
// that hands it a durable path.
var Durability = &Analyzer{
	Name: "durability",
	Doc: "flag non-atomic writes (os.WriteFile/os.Create/writable " +
		"OpenFile without fsync) landing under journal/spool/checkpoint " +
		"paths, including writes reached through helper functions",
	Run: runDurability,
}

// durableNameRE matches identifiers, fields, types and methods that name
// durable storage. Deliberately substring-based ("SpoolDir", "walPath",
// "journalDir" all match); "wal" alone is matched only as an exact or
// affix token to keep "walk" out.
var durableNameRE = regexp.MustCompile(`(?i)journal|spool|checkpoint|workdir|durable`)

func durableName(name string) bool {
	if durableNameRE.MatchString(name) {
		return true
	}
	l := strings.ToLower(name)
	return l == "wal" || strings.HasPrefix(l, "wal_") || strings.HasSuffix(l, "wal") ||
		strings.HasPrefix(l, "waldir") || strings.HasPrefix(l, "walpath") || strings.HasPrefix(l, "walfile")
}

func runDurability(pass *Pass) {
	ip := pass.IP
	if ip == nil {
		return
	}
	for _, info := range ip.infos {
		if info.Pkg.Types != pass.Pkg {
			continue
		}
		checkDurability(pass, info)
	}
}

func checkDurability(pass *Pass, info *FuncInfo) {
	inf := info.Pkg.TypesInfo
	durableLocals := durableLocalVars(info)

	// Direct writes: a write call in a function that never fsyncs, with
	// a durable-rooted path.
	if !info.SyncsFile {
		for _, w := range info.Writes {
			if isDurablePath(inf, w.PathArg, durableLocals) {
				pass.Reportf(w.Pos,
					"%s writes under a durable path without fsync: a crash can tear or drop the bytes the journal will later trust — use checkpoint.AtomicWrite or sync the handle before rename", w.Callee)
			}
		}
	}

	// Indirect writes: a durable path handed to a helper whose summary
	// says it writes under that parameter without syncing.
	for _, c := range info.Calls {
		callee := pass.IP.ByFunc[funcKey(c.Callee)]
		if callee == nil || callee == info {
			continue
		}
		params := pass.IP.DurableWriteParams(callee)
		for pi := range params {
			if pi >= len(c.Call.Args) {
				continue
			}
			if isDurablePath(inf, c.Call.Args[pi], durableLocals) {
				pass.Reportf(c.Pos,
					"durable path passed to %s, which writes under it without fsync (non-atomic write reached through a helper): route it through checkpoint.AtomicWrite or an fsync'd handle", c.Callee.Name())
				break
			}
		}
	}
}

// durableLocalVars propagates durable roots through local assignments
// (dir := j.SpoolDir(id); sub := filepath.Join(dir, "x") marks both),
// two passes for simple transitive chains.
func durableLocalVars(info *FuncInfo) map[string]bool {
	body := funcBody(info.Decl)
	if body == nil {
		return nil
	}
	inf := info.Pkg.TypesInfo
	durable := map[string]bool{}
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if len(as.Lhs) <= i || !isDurablePath(inf, rhs, durable) {
					continue
				}
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
					if o := objOf(inf, id); o != nil {
						durable[renderKey(inf, id)] = true
					}
				}
			}
			return true
		})
	}
	return durable
}

// isDurablePath reports whether the path expression e is rooted in
// durable storage: a name matching durableName anywhere along its
// derivation — identifier, struct field, owning type (Journal), called
// method (SpoolDir, WorkDir) — or a filepath.Join over a durable part.
func isDurablePath(inf *types.Info, e ast.Expr, durableLocals map[string]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return durableName(e.Name) || durableLocals[renderKey(inf, e)]
	case *ast.SelectorExpr:
		if durableName(e.Sel.Name) {
			return true
		}
		// A field on a durable-named type roots the chain: j.path on
		// *journal.Journal is the WAL file even though "path" says
		// nothing.
		if n := namedOf(inf.TypeOf(e.X)); n != nil && n.Obj() != nil && durableName(n.Obj().Name()) {
			return true
		}
		return isDurablePath(inf, e.X, durableLocals)
	case *ast.CallExpr:
		name := calleeName(e)
		if durableName(name) {
			return true
		}
		full := calleeFullName(inf, e)
		if full == "path/filepath.Join" || full == "path.Join" {
			for _, a := range e.Args {
				if isDurablePath(inf, a, durableLocals) {
					return true
				}
			}
		}
		// A method on a durable receiver yields durable paths: j.path
		// derivations, journal.SpoolDir covered above by name already.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if n := namedOf(inf.TypeOf(sel.X)); n != nil && n.Obj() != nil && durableName(n.Obj().Name()) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return isDurablePath(inf, e.X, durableLocals) || isDurablePath(inf, e.Y, durableLocals)
	case *ast.IndexExpr:
		return isDurablePath(inf, e.X, durableLocals)
	}
	return false
}
