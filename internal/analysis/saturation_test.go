package analysis

import "testing"

// TestSaturationFixture proves raw ++/+= on SiteCounts counters is
// flagged everywhere except inside the saturating helper methods, and
// that unrelated arithmetic is untouched.
func TestSaturationFixture(t *testing.T) {
	runFixture(t, Saturation, "sat")
}
