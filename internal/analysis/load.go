package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Export     string
	Error      *struct{ Err string }
}

// Load resolves patterns (go-list syntax, e.g. "./...") relative to dir
// and returns the matched packages parsed and type-checked. Test files
// are not loaded by default: gsnplint's invariants guard production
// output paths first, and LoadTests exists for the test-tree sweep.
//
// Dependency types come from compiler export data: one
// `go list -export -deps` invocation builds (or reuses from the build
// cache) every dependency, including the standard library, so loading
// works with no network and no copy of x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTests(dir, false, patterns...)
}

// LoadTests is Load with optional test-file inclusion. With
// includeTests, `go list -test` supplies the test variants: the
// in-package variant ("pkg [pkg.test]", whose GoFiles already merge the
// production and _test.go files) replaces the plain package, external
// test packages ("pkg_test [pkg.test]") load as their own package, and
// the synthetic ".test" mains are skipped. Still one list invocation,
// one FileSet, one export-data importer.
func LoadTests(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Standard,DepOnly,ForTest,Export,Error",
	}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}  // import path -> export data file
	hasVariant := map[string]bool{} // plain import paths superseded by a test variant
	var targets []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthetic test main, generated sources in the build cache
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.ForTest != "" && p.Name != "main" && !strings.HasSuffix(p.Name, "_test") {
			// In-package test variant: its GoFiles merge production and
			// _test.go files, so it replaces the plain package below.
			hasVariant[p.ForTest] = true
		}
		targets = append(targets, p)
	}
	if includeTests {
		kept := targets[:0]
		for _, t := range targets {
			if t.ForTest == "" && hasVariant[t.ImportPath] {
				continue // superseded by its test variant
			}
			kept = append(kept, t)
		}
		targets = kept
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		// Test variants carry " [pkg.test]" in their ImportPath; the
		// clean path keeps suffix-matched package gates and diagnostics
		// stable whether or not tests are loaded.
		pkgPath := t.ImportPath
		if i := strings.Index(pkgPath, " ["); i >= 0 {
			pkgPath = pkgPath[:i]
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(pkgPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, typeErrs[0])
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   pkgPath,
			Name:      tpkg.Name(),
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
