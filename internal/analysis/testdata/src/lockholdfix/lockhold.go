// Package lockholdfix exercises the lockhold analyzer: a mutex must not
// be held across a blocking operation — a channel op, a Wait, file or
// network I/O — directly in the critical section or inside any function
// the critical section calls.
package lockholdfix

import (
	"os"
	"sync"
)

type server struct {
	mu    sync.Mutex
	state map[string]int
	out   chan int
}

// --- positive: direct channel send under the lock.

func (s *server) publish(v int) {
	s.mu.Lock()
	s.state["last"] = v
	s.out <- v // want "send on .* while holding mutex"
	s.mu.Unlock()
}

// --- positive, interprocedural: the blocking write hides one call
// down. dump alone is fine; holding s.mu across it is the defect, and
// only the callee's summary reveals it.

func (s *server) snapshot(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dump(path) // want "call to dump, which does file I/O .* while holding mutex"
}

func (s *server) dump(path string) error {
	return os.WriteFile(path, []byte("state"), 0o600)
}

// --- negative: compute-only critical section.

func (s *server) bump(k string) {
	s.mu.Lock()
	s.state[k]++
	s.mu.Unlock()
}

// --- negative: the send happens after the release.

func (s *server) release(v int) {
	s.mu.Lock()
	s.state["last"] = v
	s.mu.Unlock()
	s.out <- v
}

// --- negative: sync.Cond.Wait releases the mutex while parked.

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (q *queue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	return q.n
}

// --- negative: a Lock/Unlock pair inside a deferred closure is a
// bounded pair that runs at return — it must not be read as a lock held
// over the body below the defer statement.

func (s *server) recoverThenWait(f func()) int {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.state["panics"]++
			s.mu.Unlock()
		}
	}()
	f()
	return <-s.out
}

// --- suppression: a reasoned ignore is the documented escape hatch.

func (s *server) deliver(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//gsnplint:ignore lockhold s.out is buffered to the job's task count; the send cannot block
	s.out <- v
}
