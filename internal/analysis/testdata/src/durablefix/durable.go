// Package durablefix exercises the durability analyzer: bytes landing
// under journal/spool/checkpoint paths must flow through an fsync'ing
// writer (the AtomicWrite shape), never a plain os.WriteFile, os.Create
// or creating os.OpenFile.
package durablefix

import (
	"os"
	"path/filepath"
)

type journal struct {
	dir string
}

// --- positive: plain WriteFile straight into the journal dir — a crash
// can tear the file the journal will later trust.

func (j *journal) record(name string, data []byte) error {
	return os.WriteFile(filepath.Join(j.dir, name), data, 0o644) // want "writes under a durable path without fsync"
}

// --- positive, interprocedural: writeInto is oblivious — nothing about
// it names durable storage, and in isolation it raises nothing. The
// finding lands on the call site that hands it a durable path, which
// the intraprocedural analyzers of PR 5 could never connect.

func (j *journal) spill(names []string) error {
	for _, n := range names {
		if err := writeInto(j.dir, n); err != nil { // want "durable path passed to writeInto"
			return err
		}
	}
	return nil
}

func writeInto(dir, name string) error {
	return os.WriteFile(filepath.Join(dir, name), nil, 0o644)
}

// --- negative: the sanctioned shape — temp file, fsync, rename. The
// Sync call marks every write in this function as carrying its own
// durability.

func (j *journal) atomicSave(name string, data []byte) error {
	f, err := os.CreateTemp(j.dir, name+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), filepath.Join(j.dir, name))
}

// --- negative: an append-only reopen of the WAL replaces no bytes; the
// appends that follow carry their own Sync.

func (j *journal) reopen(walPath string) (*os.File, error) {
	return os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
}

// --- positive: creating or truncating the WAL without fsync machinery.

func initWAL(walPath string) error {
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644) // want "os.OpenFile writes under a durable path"
	if err != nil {
		return err
	}
	return f.Close()
}

// --- negative: scratch paths are not durable.

func scratch(tmpDir string, data []byte) error {
	return os.WriteFile(filepath.Join(tmpDir, "scratch.bin"), data, 0o644)
}

// --- positive: the durable root propagates through locals.

func stage(j *journal, data []byte) error {
	dir := j.dir
	target := filepath.Join(dir, "staged")
	f, err := os.Create(target) // want "os.Create writes under a durable path"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// --- suppression: a reasoned ignore is the documented escape hatch.

func (j *journal) debugDump(data []byte) error {
	//gsnplint:ignore durability scratch debug dump, never read back after a crash
	return os.WriteFile(filepath.Join(j.dir, "debug.txt"), data, 0o644)
}
