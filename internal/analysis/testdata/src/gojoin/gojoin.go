// Package gojoin exercises the goroutinejoin analyzer: every spawned
// goroutine must reach a WaitGroup join, a completion-channel receive,
// or a ctx-done select — transitively, through every statically
// resolvable call.
package gojoin

import (
	"context"
	"sync"
)

// --- negative: fan-out/fan-in where the Done hides one call away. The
// intraprocedural analyzers of PR 5 could not connect worker -> finish
// -> wg.Done to Close's Wait; the shared summary layer can.

type pool struct {
	wg    sync.WaitGroup
	tasks chan int
}

func (p *pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker() // ok: joins through finish's Done, Waited in Close
	}
}

func (p *pool) worker() {
	defer p.finish()
	for range p.tasks {
	}
}

func (p *pool) finish() { p.wg.Done() }

func (p *pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// --- negative: completion channel — the goroutine closes what the
// spawner drains, so the range is the join.

func produceAll(items []int) []int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, v := range items {
			out <- v
		}
	}()
	var got []int
	for v := range out {
		got = append(got, v)
	}
	return got
}

// --- negative: cancellation-aware — the goroutine parks on ctx.Done,
// so the spawner can always release it.

func watch(ctx context.Context, events chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case e := <-events:
				_ = e
			}
		}
	}()
}

// --- negative: spawner-side Wait — the goroutine's Done is on a
// parameter the summary cannot match, but the spawner Waits after the
// go statement, which bounds it.

func fanOut(work []int) []int {
	var wg sync.WaitGroup
	results := make([]int, len(work))
	for i, w := range work {
		wg.Add(1)
		go compute(&wg, results, i, w) // ok: wg.Wait below the spawn
	}
	wg.Wait()
	return results
}

func compute(wg *sync.WaitGroup, out []int, i, w int) {
	defer wg.Done()
	out[i] = w * 2
}

// --- positive: nothing joins scan, nothing can cancel it.

type scanner struct{ hits []int }

func (s *scanner) leak() {
	go s.scan() // want "goroutine reaches no join or cancellation"
}

func (s *scanner) scan() {
	for i := 0; ; i++ {
		record(i)
	}
}

func record(int) {}

// --- positive, interprocedural: two hops down, drain signals a channel
// no function in the load ever receives from — the "completion" channel
// completes nothing, and only the transitive summary sees it.

type sink struct{ done chan struct{} }

func (s *sink) spawn() {
	go s.drain() // want "goroutine reaches no join or cancellation"
}

func (s *sink) drain() { s.signal() }

func (s *sink) signal() { s.done <- struct{}{} }

// --- positive: a dynamic spawn target cannot be verified at all.

func spawnDynamic(fn func()) {
	go fn() // want "not statically resolvable"
}

// --- suppression: a reasoned ignore is the documented escape hatch.

func metrics() {
	//gsnplint:ignore goroutinejoin process-lifetime pump, dies with the process
	go pump()
}

func pump() {
	for {
		record(0)
	}
}
