// Package other is NOT on the output path (its import path matches no
// output-package suffix), so the determinism analyzer must stay silent
// even on patterns it would flag in internal/pipeline.
package other

import "time"

// Relay would be a finding in an output package.
func Relay(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}

// Stamp would be a finding in an output package.
func Stamp() string { return time.Now().String() }
