// Package sat is the saturation fixture: raw increments on pileup
// counters outside the saturating helpers, next to the allowed forms.
package sat

// SiteCounts mirrors pipeline.SiteCounts: fixed-width counters that
// must saturate, never wrap.
type SiteCounts struct {
	Depth   uint16
	Count   [4]uint16
	QualSum [4]uint32
}

const satU16 = 1<<16 - 1

// Add is a saturating helper: methods on SiteCounts are the one place a
// guarded raw increment is the point.
func (c *SiteCounts) Add(b int, q uint32) {
	if c.Depth < satU16 {
		c.Depth++
	}
	if c.Count[b] < satU16 {
		c.Count[b]++
	}
	if s := c.QualSum[b] + q; s >= c.QualSum[b] {
		c.QualSum[b] = s
	}
}

// Raw reintroduces the PR 1 overflow class.
func Raw(c *SiteCounts, b int, q uint32) {
	c.Depth++         // want "raw \+\+ on a SiteCounts counter"
	c.Count[b] += 2   // want "raw \+= on a SiteCounts counter"
	c.QualSum[b] += q // want "raw \+= on a SiteCounts counter"
}

// RawIndexed wraps counters reached through a slice of sites.
func RawIndexed(cs []SiteCounts, i int) {
	cs[i].Depth++ // want "raw \+\+ on a SiteCounts counter"
}

// Unrelated counters are not pileup counters.
func Unrelated(n int) int {
	n++
	total := 0
	total += n
	return total
}
