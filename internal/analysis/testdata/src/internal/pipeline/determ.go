// Package pipeline is a determinism-analyzer fixture. Its import path
// ends in internal/pipeline, so it is gated as an output-producing
// package exactly like the real one.
package pipeline

import (
	"fmt"
	"io"
	"math/rand" // want "math/rand imported in an output-producing package"
	"sort"
	"time"
)

// SendInOrder leaks map order through a channel.
func SendInOrder(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "send on a channel inside range over map"
	}
}

// CollectUnsorted records map order in a result slice.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside range over map"
	}
	return keys
}

// CollectSorted is the sanctioned collect-then-sort idiom.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LocalScratch appends only to a slice scoped inside the loop body.
func LocalScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// EmitDirect writes output in map iteration order.
func EmitDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "Fprintf inside range over map emits output"
	}
}

// SumFloats accumulates floats in map order; FP addition does not
// associate, so the sum differs run to run.
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation inside range over map"
	}
	return sum
}

// SumInts is exact arithmetic: any order gives the same total.
func SumInts(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Roll feeds random state into data.
func Roll() int { return rand.Int() }

// Timed keeps time.Now strictly in the timing domain.
func Timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// TimedSub is the end.Sub(start) spelling of the same pattern.
func TimedSub(f func()) time.Duration {
	start := time.Now()
	f()
	end := time.Now()
	return end.Sub(start)
}

// Stamp puts wall-clock bytes into output.
func Stamp(w io.Writer) {
	t := time.Now()
	fmt.Fprintln(w, t) // want "wall-clock value \"t\" passed to Fprintln"
}

// Record stores a timestamp into a long-lived struct.
type Record struct{ TS time.Time }

// StampField stores wall-clock data in a field.
func StampField(r *Record) {
	r.TS = time.Now() // want "time.Now stored outside a local variable"
}

// Format renders the clock into a string.
func Format() string {
	return time.Now().Format(time.RFC3339) // want "time.Now\(\).Format feeds data"
}
