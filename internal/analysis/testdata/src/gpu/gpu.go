// Package gpu is an arenalifetime fixture: it mirrors the shape of the
// real internal/gpu launch scratch (a device free-list of blockScratch
// values owning thread contexts, shared-memory arrays and coalescing
// samples) so the analyzer's type matching works unchanged. Scratch
// memory is recycled launch-to-launch; a reference that outlives the
// block would be overwritten by the next launch.
package gpu

import "sync"

// Thread is the per-lane kernel context, recycled per block.
type Thread struct {
	sample []int64
}

// blockRT is the per-block runtime state.
type blockRT struct {
	sharedU32 []uint32
}

// blockScratch is the recycled per-block execution state.
type blockScratch struct {
	rt      blockRT
	threads []Thread
	samples [][]int64
}

// device owns the scratch free-list; it is long-lived but not itself an
// arena type, so pushing scratch back onto it is the recycle idiom, not
// an escape.
type device struct {
	scratch []*blockScratch
}

// putScratch returns a scratch to the free-list: the recycle push.
func (d *device) putScratch(sc *blockScratch) {
	d.scratch = append(d.scratch, sc)
}

// runBlock shows the production idioms that must stay silent: borrowing
// thread contexts through a derived variable, wiring the sample stream
// into a thread context (both roots are scratch), storing it back after
// the block, and joined goroutine fan-out over the contexts.
func (d *device) runBlock(sc *blockScratch, wg *sync.WaitGroup) {
	threads := sc.threads
	for l := range threads {
		threads[l].sample = sc.samples[l][:0]
	}
	for l := range threads {
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			t.sample = append(t.sample, 1)
		}(&threads[l])
	}
	wg.Wait()
	for l := range threads {
		sc.samples[l] = threads[l].sample
	}
}

// LeakShared returns scratch-owned shared memory across the package API.
func LeakShared(sc *blockScratch) []uint32 {
	return sc.rt.sharedU32 // want "arena-owned slice returned from exported LeakShared"
}

// LeakSample leaks a thread's sample stream.
func LeakSample(t *Thread) []int64 {
	return t.sample // want "arena-owned slice returned from exported LeakSample"
}

type profile struct{ addrs []int64 }

// Record parks a sample stream in a struct that outlives the launch.
func Record(sc *blockScratch, p *profile) {
	p.addrs = sc.samples[0] // want "arena-owned slice stored in field addrs"
}

// RecordDerived tracks the escape through the thread-context variable.
func RecordDerived(sc *blockScratch, p *profile) {
	threads := sc.threads
	p.addrs = threads[0].sample // want "arena-owned slice stored in field addrs"
}

// Publish leaks shared memory to whoever drains the channel.
func Publish(sc *blockScratch, ch chan []uint32) {
	ch <- sc.rt.sharedU32 // want "arena-owned slice sent on a channel"
}

// SpawnUnjoined lets a goroutine outlive the block it borrows from.
func SpawnUnjoined(sc *blockScratch) {
	go use(sc.rt.sharedU32) // want "goroutine borrows arena memory with no .Wait"
}

func use([]uint32) {}
