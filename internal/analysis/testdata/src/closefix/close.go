// Package closefix is the closecheck fixture: deferred Closes that
// discard a writable handle's error, next to the idiomatic fixes.
package closefix

import (
	"bufio"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"fmt"
	"io"
	"os"
)

// Bad loses the flush error of a file opened for writing.
func Bad(p string, data []byte) error {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	defer f.Close() // want "defer f.Close discards the Close error of a file opened for writing"
	_, err = f.Write(data)
	return err
}

// BadGzip loses the footer flush of a gzip stream.
func BadGzip(w io.Writer, data []byte) error {
	zw := gzip.NewWriter(w)
	defer zw.Close() // want "defer zw.Close discards the Close error of a gzip writer"
	_, err := zw.Write(data)
	return err
}

// BadFlate loses the final block flush of a flate stream.
func BadFlate(w io.Writer, data []byte) error {
	fw, _ := flate.NewWriter(w, flate.DefaultCompression)
	defer fw.Close() // want "defer fw.Close discards the Close error of a flate writer"
	_, err := fw.Write(data)
	return err
}

// BadZlib loses the checksum trailer of a zlib stream.
func BadZlib(w io.Writer, data []byte) error {
	zw := zlib.NewWriter(w)
	defer zw.Close() // want "defer zw.Close discards the Close error of a zlib writer"
	_, err := zw.Write(data)
	return err
}

// BadFlush loses the last buffered chunk of a bufio writer.
func BadFlush(w io.Writer, data []byte) error {
	bw := bufio.NewWriter(w)
	defer bw.Flush() // want "defer bw.Flush discards the Flush error of a bufio writer"
	_, err := bw.Write(data)
	return err
}

// OkFlush flushes explicitly and propagates the error.
func OkFlush(w io.Writer, data []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return bw.Flush()
}

// BadOpenFile opens for writing via flags.
func BadOpenFile(p string) error {
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "defer f.Close discards the Close error of a file opened for writing"
	return nil
}

// OkRead closes a read-only file: its Close error cannot lose data.
func OkRead(p string) ([]byte, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// OkReadOnlyFlags is read-only through OpenFile.
func OkReadOnlyFlags(p string) error {
	f, err := os.OpenFile(p, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// OkJoin is the sanctioned shape: the deferred closure folds the Close
// error into the function's named return.
func OkJoin(p string, data []byte) (err error) {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", p, cerr)
		}
	}()
	_, err = f.Write(data)
	return err
}
