// Package ignorefix exercises the one sanctioned suppression mechanism:
// //gsnplint:ignore <analyzer> <reason>, same line or the line above,
// with the written reason mandatory. Expectations live in ignore_test.go
// (the malformed cases stack two findings on the directive's own line,
// which the // want comment syntax cannot express).
package ignorefix

type SiteCounts struct{ Depth uint16 }

// TrailingDirective suppresses on the flagged line itself.
func TrailingDirective(c *SiteCounts) {
	c.Depth++ //gsnplint:ignore saturation fixture for the trailing-comment form
}

// PrecedingDirective suppresses from the line above.
func PrecedingDirective(c *SiteCounts) {
	//gsnplint:ignore saturation fixture for the standalone-comment form
	c.Depth++
}

// MissingReason shows that a justification is not optional: the
// directive itself becomes a finding and suppresses nothing.
func MissingReason(c *SiteCounts) {
	c.Depth++ //gsnplint:ignore saturation
}

// UnknownAnalyzer directives are findings too, and suppress nothing.
func UnknownAnalyzer(c *SiteCounts) {
	//gsnplint:ignore nosuchanalyzer the analyzer name is checked
	c.Depth++
}

// WrongAnalyzer names a real analyzer that did not raise the finding,
// so the finding survives.
func WrongAnalyzer(c *SiteCounts) {
	//gsnplint:ignore determinism reason aimed at the wrong analyzer
	c.Depth++
}

// AllDirective suppresses every analyzer on the line.
func AllDirective(c *SiteCounts) {
	c.Depth++ //gsnplint:ignore all fixture for the catch-all form
}

// NotSuppressed is the control: no directive, a plain finding.
func NotSuppressed(c *SiteCounts) {
	c.Depth++
}
