// Package gsnp is an arenalifetime fixture: it mirrors the shape of the
// real internal/gsnp arena (an Arena owning a per-window struct of
// grow-only slices) so the analyzer's type matching works unchanged.
package gsnp

import "sync"

type window struct {
	rows []int
}

// Arena owns every per-window buffer.
type Arena struct {
	w   window
	buf []byte
}

// Buf hands out the buffer for use within the current window: handing
// out grow-only storage is the Arena's API, so its methods are exempt.
func (a *Arena) Buf() []byte { return a.buf }

// Reset shrinks in place; writes back into the arena are not escapes.
func (a *Arena) Reset() { a.buf = a.buf[:0] }

// Leak returns arena memory across the package API.
func Leak(a *Arena) []byte {
	return a.buf // want "arena-owned slice returned from exported Leak"
}

// Rows leaks through the nested window struct.
func Rows(a *Arena) []int {
	return a.w.rows // want "arena-owned slice returned from exported Rows"
}

// scratch is fine: unexported callers stay inside the window lifetime.
func scratch(a *Arena) []byte { return a.buf }

type sink struct{ b []byte }

// Store parks arena memory in a struct that outlives the window.
func Store(a *Arena, s *sink) {
	s.b = a.buf // want "arena-owned slice stored in field b"
}

// StoreDerived tracks the escape through an intermediate variable.
func StoreDerived(a *Arena, s *sink) {
	head := a.buf[:2]
	s.b = head // want "arena-owned slice stored in field b"
}

// Send leaks arena memory to whoever drains the channel.
func Send(a *Arena, ch chan []byte) {
	ch <- a.buf // want "arena-owned slice sent on a channel"
}

// Spawn lets a goroutine outlive the window it borrows from.
func Spawn(a *Arena) {
	go use(a.buf) // want "goroutine borrows arena memory with no .Wait"
}

// SpawnJoined is the compute-pool shape: the Wait joins the borrowers
// before the window can be recycled.
func SpawnJoined(a *Arena, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		use(a.buf)
	}()
	wg.Wait()
}

// Local slicing and reslicing inside the window is the normal idiom.
func Local(a *Arena) int {
	head := a.buf[:1]
	tail := a.buf[1:]
	return len(head) + len(tail)
}

func use([]byte) {}
