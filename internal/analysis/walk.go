package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// inspectStack walks n, calling f with every node and the stack of its
// ancestors (outermost first, not including the node itself). Returning
// false from f prunes the subtree.
func inspectStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := f(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still push so the matching nil pop stays balanced; prune by
			// telling Inspect to skip children.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFunc returns the innermost function body on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgSuffix.name. An empty pkgSuffix matches any package; otherwise the
// defining package's path must end in pkgSuffix (so both the real module
// path and test-fixture module paths match) or its package name must
// equal pkgSuffix.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Name() != name {
		return false
	}
	if pkgSuffix == "" {
		return true
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return strings.HasSuffix(pkg.Path(), pkgSuffix) || pkg.Name() == pkgSuffix
}

// isSlice reports whether t's underlying type is a slice.
func isSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// objOf resolves an identifier to its object (use or def).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// calleeFullName returns the fully qualified name of a called function
// ("time.Now", "os.Create") or "" when the callee is not a static
// package-level function or method.
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := objOf(info, id).(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// usesVar reports whether any identifier inside n resolves to v.
func usesVar(info *types.Info, n ast.Node, v types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == v {
			found = true
		}
		return !found
	})
	return found
}
