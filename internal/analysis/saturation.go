package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Saturation closes the PR 1 overflow class for good: pileup counters
// (pipeline.SiteCounts fields) wrap at their type maximum if incremented
// raw, scrambling the best/second-base ranking at deep repeat regions.
// All accumulation must go through the saturating helpers (SiteCounts
// methods such as Add, and SatDepth for wide-to-narrow clamps); raw ++
// or += on a SiteCounts field anywhere else is flagged.
var Saturation = &Analyzer{
	Name: "saturation",
	Doc: "flag raw ++/+= on SiteCounts pileup-counter fields outside " +
		"the saturating helper methods",
	Run: runSaturation,
}

func runSaturation(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The saturating helpers are the methods of SiteCounts itself:
			// they are the one place a guarded raw increment is the point.
			if fd.Recv != nil && len(fd.Recv.List) > 0 &&
				isNamed(info.TypeOf(fd.Recv.List[0].Type), "", "SiteCounts") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IncDecStmt:
					if n.Tok == token.INC && isSiteCountsField(info, n.X) {
						pass.Reportf(n.Pos(),
							"raw ++ on a SiteCounts counter wraps at the type maximum; use the saturating helpers (SiteCounts.Add / SatDepth)")
					}
				case *ast.AssignStmt:
					if n.Tok != token.ADD_ASSIGN {
						return true
					}
					for _, lhs := range n.Lhs {
						if isSiteCountsField(info, lhs) {
							pass.Reportf(n.Pos(),
								"raw += on a SiteCounts counter wraps at the type maximum; use the saturating helpers (SiteCounts.Add / SatDepth)")
						}
					}
				}
				return true
			})
		}
	}
}

// isSiteCountsField matches c.Depth, c.Count[b], c.QualSum[b], ... — a
// selector on a SiteCounts value, possibly through an index.
func isSiteCountsField(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// counts[i].Depth selects on the IndexExpr whose type is already the
	// SiteCounts element type; pointers are unwrapped by isNamed.
	return isNamed(info.TypeOf(sel.X), "", "SiteCounts")
}
