package analysis

import (
	"go/token"
	"strings"
)

// LockHold flags a sync.Mutex or RWMutex held across a potentially
// blocking operation: a channel send or receive, a select without
// default, a WaitGroup.Wait, file or network I/O — directly in the
// critical section, or inside any function the critical section calls
// (the interprocedural case PR 5's analyzers could not see: the lock is
// taken in one function and the blocking call hides two frames down).
//
// Why this matters here: gsnpd's scheduler lock serialises every
// worker's dequeue and every Submit; its job locks serialise stream
// publication against NDJSON followers. A blocking call under either
// turns one slow disk write or one full channel into a stall of every
// worker and every HTTP handler — the graceful-drain and fairness
// contracts both assume critical sections terminate without waiting on
// anything external.
//
// The critical section is approximated linearly: a mutex is held from a
// Lock/RLock call to the next Unlock/RUnlock of the same mutex in source
// order, or to the end of the function for `defer mu.Unlock()`. Blocking
// ops inside defer bodies are excluded (they run at return), and
// sync.Cond.Wait is exempt — it releases the mutex while parked.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "flag mutexes held across blocking operations (channel ops, " +
		"Wait, file/network I/O), including calls that block indirectly",
	Run: runLockHold,
}

func runLockHold(pass *Pass) {
	ip := pass.IP
	if ip == nil {
		return
	}
	for _, info := range ip.infos {
		if info.Pkg.Types != pass.Pkg {
			continue
		}
		checkLockHold(pass, info)
	}
}

// heldInterval is one [Lock, Unlock) span of one mutex.
type heldInterval struct {
	key        string
	start, end token.Pos
}

func checkLockHold(pass *Pass, info *FuncInfo) {
	if len(info.Locks) == 0 {
		return
	}
	intervals := lockIntervals(info)
	if len(intervals) == 0 {
		return
	}

	// Collect every potentially blocking point: the function's direct
	// blocking ops plus call sites whose callee transitively blocks.
	type blockPoint struct {
		pos  token.Pos
		desc string
	}
	var points []blockPoint
	for _, b := range info.Blocks {
		points = append(points, blockPoint{b.Pos, b.Desc})
	}
	for _, c := range info.Calls {
		callee := pass.IP.ByFunc[funcKey(c.Callee)]
		if callee == nil {
			continue
		}
		if op := pass.IP.FirstBlock(callee); op != nil {
			points = append(points, blockPoint{c.Pos, "call to " + c.Callee.Name() + ", which " + shortBlockDesc(op.Desc)})
		}
	}

	// Report the first blocking point inside each held interval; one
	// report per interval keeps a lock held over a whole blocking region
	// from producing a finding per statement.
	for _, iv := range intervals {
		var first *blockPoint
		for i := range points {
			p := &points[i]
			if p.pos <= iv.start || p.pos >= iv.end {
				continue
			}
			// Unlocking or locking other mutexes is not in scope; channel
			// ops on the same line as the Unlock are (rare, fine).
			if first == nil || p.pos < first.pos {
				first = p
			}
		}
		if first != nil {
			pass.Reportf(first.pos,
				"%s while holding %s: a blocked critical section stalls every contender of the lock",
				first.desc, displayKey(iv.key))
		}
	}
}

// lockIntervals derives the held spans from the function's lock events
// in source order. A deferred Unlock extends the span to the end of the
// function body.
func lockIntervals(info *FuncInfo) []heldInterval {
	end := info.Decl.End()
	var out []heldInterval
	open := map[string]token.Pos{} // key -> Lock pos
	for _, e := range info.Locks {
		if !e.Unlock {
			if _, ok := open[e.Key]; !ok {
				open[e.Key] = e.Pos
			}
			continue
		}
		start, ok := open[e.Key]
		if !ok {
			continue // unlock of a lock taken elsewhere (helper-release shape)
		}
		delete(open, e.Key)
		if e.Deferred {
			out = append(out, heldInterval{key: e.Key, start: start, end: end})
		} else {
			out = append(out, heldInterval{key: e.Key, start: start, end: e.Pos})
		}
	}
	// Locks never released in this function: held to the end (the caller
	// may release them, but everything here runs under the lock).
	for k, start := range open {
		out = append(out, heldInterval{key: k, start: start, end: end})
	}
	return out
}

// displayKey renders a mutex identity for diagnostics: local objects
// print as "a local mutex", field chains keep their readable tail.
func displayKey(k string) string {
	if strings.HasPrefix(k, "local@") {
		return "a locally-declared mutex"
	}
	if i := strings.LastIndex(k, "/"); i >= 0 {
		k = k[i+1:]
	}
	return "mutex " + k
}
