package analysis

import "testing"

// TestArenaLifetimeFixture proves every escape class fires (exported
// return, field store — direct and through a derived variable — channel
// send, unjoined goroutine capture) while the arena's own API, writes
// back into the arena, unexported helpers, joined fan-out, and window-
// local slicing stay silent.
func TestArenaLifetimeFixture(t *testing.T) {
	runFixture(t, ArenaLifetime, "arena")
}

// TestArenaLifetimeRealTree pins that the production gsnp package obeys
// its own contract with no suppressions: the recycle invariant holds by
// construction, not by ignore directives.
func TestArenaLifetimeRealTree(t *testing.T) {
	pkgs, err := Load("../..", "./internal/gsnp")
	if err != nil {
		t.Fatalf("loading internal/gsnp: %v", err)
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, []*Analyzer{ArenaLifetime}) {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
