package analysis

import "testing"

// TestArenaLifetimeFixture proves every escape class fires (exported
// return, field store — direct and through a derived variable — channel
// send, unjoined goroutine capture) while the arena's own API, writes
// back into the arena, unexported helpers, joined fan-out, and window-
// local slicing stay silent.
func TestArenaLifetimeFixture(t *testing.T) {
	runFixture(t, ArenaLifetime, "arena")
}

// TestArenaLifetimeGPUFixture covers the GPU launch-scratch types
// (blockScratch, blockRT, Thread): the same escape classes fire on
// scratch-owned memory while the recycle idioms of the simulator —
// free-list pushes, derived thread contexts, sample writeback, joined
// per-thread goroutines — stay silent.
func TestArenaLifetimeGPUFixture(t *testing.T) {
	runFixture(t, ArenaLifetime, "gpu")
}

// TestArenaLifetimeRealTree pins that the production gsnp and gpu
// packages obey their own contract with no suppressions: the recycle
// invariant holds by construction, not by ignore directives.
func TestArenaLifetimeRealTree(t *testing.T) {
	pkgs, err := Load("../..", "./internal/gsnp", "./internal/gpu")
	if err != nil {
		t.Fatalf("loading internal/gsnp, internal/gpu: %v", err)
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, []*Analyzer{ArenaLifetime}) {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
