package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// TestIgnoreDirectives pins the whole suppression contract on the
// ignorefix fixture: well-formed directives (trailing, preceding, and
// "all") silence the named analyzer; directives with no reason or an
// unknown analyzer become findings themselves and suppress nothing;
// a directive naming the wrong analyzer leaves the finding standing.
func TestIgnoreDirectives(t *testing.T) {
	pkgs, err := Load("testdata/src", "./ignorefix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	// Collect diagnostics keyed by the name of the enclosing function,
	// which the fixture uses as the case label.
	got := map[string][]Diagnostic{}
	for _, d := range Run(pkg, []*Analyzer{Saturation}) {
		got[enclosingFixtureFunc(t, pkg, d)] = append(got[enclosingFixtureFunc(t, pkg, d)], d)
	}

	type want struct{ analyzer, substr string }
	cases := map[string][]want{
		"TrailingDirective":  nil,
		"PrecedingDirective": nil,
		"AllDirective":       nil,
		"MissingReason": {
			{"saturation", "raw ++"},
			{"gsnplint", "malformed directive"},
		},
		"UnknownAnalyzer": {
			{"saturation", "raw ++"},
			{"gsnplint", "unknown analyzer"},
		},
		"WrongAnalyzer": {
			{"saturation", "raw ++"},
		},
		"NotSuppressed": {
			{"saturation", "raw ++"},
		},
	}
	for fn, wants := range cases {
		ds := got[fn]
		if len(ds) != len(wants) {
			t.Errorf("%s: got %d diagnostics %v, want %d", fn, len(ds), ds, len(wants))
			continue
		}
		for _, w := range wants {
			found := false
			for _, d := range ds {
				if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: no [%s] diagnostic containing %q in %v", fn, w.analyzer, w.substr, ds)
			}
		}
		delete(got, fn)
	}
	for fn, ds := range got {
		t.Errorf("unexpected diagnostics in %s: %v", fn, ds)
	}
}

// enclosingFixtureFunc maps a diagnostic back to the fixture function
// containing it.
func enclosingFixtureFunc(t *testing.T, pkg *Package, d Diagnostic) string {
	t.Helper()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && d.Pos >= fd.Pos() && d.Pos <= fd.End() {
				return fd.Name.Name
			}
		}
	}
	t.Fatalf("no fixture function encloses %s", pkg.Fset.Position(d.Pos))
	return ""
}
