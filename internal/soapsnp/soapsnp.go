// Package soapsnp is a from-scratch implementation of the CPU-based
// SOAPsnp baseline the paper compares against: the seven-component pipeline
// of Figure 1 (cal_p_matrix, read_site, counting, likelihood, posterior,
// output, recycle) with the dense per-site aligned-base matrix base_occ and
// the likelihood computation of Algorithms 1-2, processed window by window
// with a default window of 4,000 sites.
//
// The engine instruments each component with wall-clock timers, producing
// the Table I breakdown, and reports the base_occ sparsity histogram of
// Figure 4(b).
package soapsnp

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/pipeline"
	"gsnp/internal/reads"
	"gsnp/internal/snpio"
)

// Config parameterises a run.
type Config struct {
	// Chr names the chromosome in output rows.
	Chr string
	// Ref is the reference sequence.
	Ref dna.Sequence
	// Known holds the prior file records (nil for none).
	Known snpio.KnownSNPs
	// Window is the number of sites per window; SOAPsnp's default is
	// 4,000 (Section VI-A).
	Window int
	// ReadLen is the maximum read length (<= bayes.MaxReadLen).
	ReadLen int
	// Priors configures the genotype prior model.
	Priors bayes.Priors
	// Threads parallelises the likelihood calculation across the sites
	// of a window. The shipped SOAPsnp is single-threaded (the paper's
	// baseline); the paper's authors report that their 16-thread port
	// gained only 3-4x because the dense scan is bound by memory
	// bandwidth (Section VI-A). Zero or one selects the single-threaded
	// baseline.
	Threads int
	// Prefetch overlaps read_site I/O for window i+1 with the
	// computation of window i (double buffering). Output is
	// byte-identical either way; the serial path remains the default so
	// the Table I component timings are unaffected.
	Prefetch bool
	// Quarantine contains window-level failures instead of aborting the
	// run, with the same semantics as gsnp.Config.Quarantine: malformed
	// records and panicking windows are recorded in Report.Quarantined
	// and the run continues; calibration-pass parse errors are skipped
	// and counted. Output on the success path is unchanged.
	Quarantine bool
	// WindowHook, when non-nil, runs before each window's computation —
	// the fault-injection seam (see internal/faults).
	WindowHook func(ctx context.Context, window, start, end int) error
	// VCFOutput writes VCFv4.2 variant records instead of the 17-column
	// result table, matching gsnp.Config.VCFOutput so either engine can
	// serve the FASTQ-to-VCF workload.
	VCFOutput bool
}

// DefaultWindow is SOAPsnp's window size from the paper's setup.
const DefaultWindow = 4000

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.ReadLen == 0 {
		c.ReadLen = 100
	}
	if c.Priors == (bayes.Priors{}) {
		c.Priors = bayes.DefaultPriors()
	}
	return c
}

// Times is the per-component wall-clock breakdown of Table I.
type Times struct {
	CalP    time.Duration
	Read    time.Duration
	Count   time.Duration
	Likeli  time.Duration
	Post    time.Duration
	Output  time.Duration
	Recycle time.Duration
}

// Total sums the components.
func (t Times) Total() time.Duration {
	return t.CalP + t.Read + t.Count + t.Likeli + t.Post + t.Output + t.Recycle
}

func (t Times) String() string {
	return fmt.Sprintf("cal_p=%v read=%v count=%v likeli=%v post=%v output=%v recycle=%v total=%v",
		t.CalP.Round(time.Millisecond), t.Read.Round(time.Millisecond),
		t.Count.Round(time.Millisecond), t.Likeli.Round(time.Millisecond),
		t.Post.Round(time.Millisecond), t.Output.Round(time.Millisecond),
		t.Recycle.Round(time.Millisecond), t.Total().Round(time.Millisecond))
}

// Report summarises a run.
type Report struct {
	// Times is the component breakdown.
	Times Times
	// Sites is the number of sites processed (= len(Ref)).
	Sites int
	// SNPs is the number of non-reference calls emitted.
	SNPs int64
	// MeanDepth is the pass-one average depth.
	MeanDepth float64
	// NonZeroHist[k] counts sites whose base_occ held k non-zero
	// elements (k capped at len-1) — the sparsity data of Figure 4(b).
	NonZeroHist []int64
	// Observations is the total number of aligned bases processed.
	Observations int64
	// Prefetch reports the window-prefetch counters when Config.Prefetch
	// is set (zero otherwise): Fetch is read_site work that overlapped
	// computation, Wait the residual blocking left in Times.Read.
	Prefetch pipeline.PrefetchStats
	// Quarantined lists the windows abandoned under Config.Quarantine.
	Quarantined []pipeline.Quarantine
	// CalSkipped counts malformed records skipped during the calibration
	// pass under Config.Quarantine.
	CalSkipped int
}

// Partial reports whether the run degraded: any quarantined window or
// skipped calibration record means the output is incomplete.
func (r *Report) Partial() bool {
	return len(r.Quarantined) > 0 || r.CalSkipped > 0
}

// sparsityHistSize caps the non-zero histogram domain.
const sparsityHistSize = 257

// Engine runs the dense pipeline. One Engine may be reused for several
// runs; it owns the large window buffers.
type Engine struct {
	cfg    Config
	tables *bayes.Tables

	// Window state, allocated once in Run.
	baseOcc  []uint8
	counts   []pipeline.SiteCounts
	quals    [][dna.NBases][]float64
	likely   [][bayes.TypeLikelySize]float64
	depCount []uint16
}

// New creates an engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Tables exposes the calibrated tables after a run (for tests and the
// consistency checks).
func (e *Engine) Tables() *bayes.Tables { return e.tables }

// Run executes the seven-component pipeline over src, writing the result
// table as text to w.
func (e *Engine) Run(src pipeline.Source, w io.Writer) (*Report, error) {
	return e.RunContext(context.Background(), src, w)
}

// RunContext is Run with cooperative cancellation: the engine checks ctx
// at every window boundary and every ~1K input records, mirroring the GSNP
// engine so per-task deadlines work against either engine.
func (e *Engine) RunContext(ctx context.Context, src pipeline.Source, w io.Writer) (*Report, error) {
	cfg := e.cfg
	rep := &Report{Sites: len(cfg.Ref), NonZeroHist: make([]int64, sparsityHistSize)}

	// Component 1: cal_p_matrix — read everything once, calibrate the
	// score matrix, derive the log/adjust tables. Quarantine mode skips
	// and counts malformed records here (the scan must see the whole
	// input); window-level containment happens in pass two, where a
	// failure has a site range to attach to.
	t0 := time.Now()
	calSrc := pipeline.SourceWithContext(ctx, src)
	if cfg.Quarantine {
		inner := calSrc
		calSrc = pipeline.FuncSource(func() (pipeline.ReadIter, error) {
			it, err := inner.Open()
			if err != nil {
				return nil, err
			}
			return pipeline.NewTolerantIter(it, func(pipeline.RecordError) { rep.CalSkipped++ }), nil
		})
	}
	cal, meanDepth, err := pipeline.CalibrationPass(calSrc, cfg.Ref, nil)
	if err != nil {
		return nil, fmt.Errorf("soapsnp: cal_p_matrix: %w", err)
	}
	rep.MeanDepth = meanDepth
	rep.Observations = int64(cal.Observations())
	lt := bayes.BuildLogTable()
	e.tables = &bayes.Tables{
		Log:    lt,
		Adjust: bayes.BuildAdjustTable(lt),
		P:      cal.Build(),
	}
	rep.Times.CalP = time.Since(t0)

	// Pass two: windowed per-site computation.
	it, err := pipeline.SourceWithContext(ctx, src).Open()
	if err != nil {
		return nil, fmt.Errorf("soapsnp: read_site: %w", err)
	}
	win := pipeline.NewWindower(it)
	e.allocWindow()
	var out snpio.RowWriter
	if cfg.VCFOutput {
		out = snpio.NewVCFWriter(w)
	} else {
		out = snpio.NewResultWriter(w)
	}

	if cfg.Prefetch {
		// read_site for window i+1 overlaps components 3-7 of window i;
		// windows still arrive strictly in order, so output bytes are
		// identical to the serial path. Times.Read records only the
		// residual blocking wait. Quarantine mode uses the resilient
		// variant, whose producer keeps fetching past record failures.
		var pf *pipeline.WindowPrefetcher
		if cfg.Quarantine {
			pf = pipeline.NewResilientWindowPrefetcher(win, len(cfg.Ref), cfg.Window, 1)
		} else {
			pf = pipeline.NewWindowPrefetcher(win, len(cfg.Ref), cfg.Window, 1)
		}
		defer pf.Stop()
		for {
			pw, ok := pf.Next()
			if !ok {
				break
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			werr := pw.Err
			if werr == nil {
				werr = e.windowAttempt(ctx, pw.Reads, pw.Start, pw.End, out, rep)
			}
			if werr != nil {
				if ferr := e.quarantineOrFail(rep, pw.Start, pw.End, werr); ferr != nil {
					return nil, ferr
				}
			}
		}
		rep.Prefetch = pf.Stats()
		rep.Times.Read += rep.Prefetch.Wait
	} else {
		for start := 0; start < len(cfg.Ref); start += cfg.Window {
			end := start + cfg.Window
			if end > len(cfg.Ref) {
				end = len(cfg.Ref)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Component 2: read_site.
			t0 = time.Now()
			rs, werr := win.Reads(start, end)
			rep.Times.Read += time.Since(t0)
			if werr == nil {
				werr = e.windowAttempt(ctx, rs, start, end, out, rep)
			}
			if werr != nil {
				if ferr := e.quarantineOrFail(rep, start, end, werr); ferr != nil {
					return nil, ferr
				}
			}
		}
	}

	t0 = time.Now()
	if err := out.Flush(); err != nil {
		return nil, fmt.Errorf("soapsnp: output: %w", err)
	}
	rep.Times.Output += time.Since(t0)
	return rep, nil
}

// allocWindow sizes the per-window buffers.
func (e *Engine) allocWindow() {
	n := e.cfg.Window
	if len(e.baseOcc) != n*bayes.BaseOccSize {
		e.baseOcc = make([]uint8, n*bayes.BaseOccSize)
		e.counts = make([]pipeline.SiteCounts, n)
		e.quals = make([][dna.NBases][]float64, n)
		e.likely = make([][bayes.TypeLikelySize]float64, n)
	}
	if len(e.depCount) != 2*e.cfg.ReadLen {
		e.depCount = make([]uint16, 2*e.cfg.ReadLen)
	}
}

// runWindow executes components 3-7 for one window [start, end) whose
// reads were already fetched (component 2 runs in the caller, serially or
// via the prefetcher).
func (e *Engine) runWindow(rs []reads.AlignedRead, start, end int, out snpio.RowWriter, rep *Report) error {
	cfg := e.cfg
	n := end - start

	// Component 3: counting — scatter every aligned base into the dense
	// base_occ matrix and the per-site summaries.
	t0 := time.Now()
	for i := range rs {
		r := &rs[i]
		lo, hi := r.Pos, r.Pos+len(r.Bases)
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		for pos := lo; pos < hi; pos++ {
			o, ok := pipeline.ObsOf(r, pos)
			if !ok {
				continue
			}
			site := pos - start
			idx := site*bayes.BaseOccSize + bayes.BaseOccIndex(o.Base, o.Qual, int(o.Coord), int(o.Strand))
			if e.baseOcc[idx] < 255 {
				e.baseOcc[idx]++
			}
			e.counts[site].Add(o)
			e.quals[site][o.Base] = append(e.quals[site][o.Base], float64(o.Qual))
		}
	}
	rep.Times.Count += time.Since(t0)

	// Component 4: likelihood — Algorithm 1 over the dense matrix,
	// optionally parallelised across sites (the paper's multi-threaded
	// SOAPsnp port, which saturates on memory bandwidth).
	t0 = time.Now()
	if cfg.Threads > 1 {
		e.likelihoodParallel(n, rep)
	} else {
		for site := 0; site < n; site++ {
			nz := DenseLikelihood(e.baseOcc[site*bayes.BaseOccSize:(site+1)*bayes.BaseOccSize],
				e.tables, cfg.ReadLen, e.depCount, &e.likely[site])
			h := nz
			if h >= sparsityHistSize {
				h = sparsityHistSize - 1
			}
			rep.NonZeroHist[h]++
		}
	}
	rep.Times.Likeli += time.Since(t0)

	// Component 5: posterior.
	t0 = time.Now()
	calls := make([]bayes.Call, n)
	for site := 0; site < n; site++ {
		ref := cfg.Ref[start+site]
		known := cfg.Known[start+site]
		lp := cfg.Priors.LogPriors(ref, known)
		calls[site] = bayes.Posterior(&e.likely[site], &lp)
	}
	rep.Times.Post += time.Since(t0)

	// Component 6: output.
	t0 = time.Now()
	for site := 0; site < n; site++ {
		row := pipeline.BuildRow(&pipeline.RowInputs{
			Chr:         cfg.Chr,
			Pos:         start + site,
			Ref:         cfg.Ref[start+site],
			Call:        calls[site],
			Counts:      &e.counts[site],
			AlleleQuals: &e.quals[site],
			MeanDepth:   rep.MeanDepth,
			Known:       cfg.Known[start+site],
		})
		if row.IsSNP() {
			rep.SNPs++
		}
		if err := out.Write(&row); err != nil {
			return fmt.Errorf("soapsnp: output: %w", err)
		}
	}
	rep.Times.Output += time.Since(t0)

	// Component 7: recycle — reinitialise the dense matrices for the next
	// window; with the dense representation this touches every byte, the
	// second-most expensive component of Table I.
	t0 = time.Now()
	e.resetWindow(n)
	rep.Times.Recycle += time.Since(t0)
	return nil
}

// resetWindow clears the dense per-site state for the first n sites — the
// recycle component, also invoked after a quarantined window so that a
// window abandoned mid-counting cannot leak observations into its
// successor.
func (e *Engine) resetWindow(n int) {
	clear(e.baseOcc[:n*bayes.BaseOccSize])
	for site := 0; site < n; site++ {
		e.counts[site].Reset()
		for b := range e.quals[site] {
			e.quals[site][b] = e.quals[site][b][:0]
		}
	}
}

// windowAttempt runs the window hook and components 3-7 for one window,
// converting a panic into a *pipeline.PanicError when quarantine is
// enabled (without quarantine, panics propagate and crash as before).
func (e *Engine) windowAttempt(ctx context.Context, rs []reads.AlignedRead, start, end int, out snpio.RowWriter, rep *Report) (err error) {
	if e.cfg.Quarantine {
		defer func() {
			if pe := pipeline.Recovered(recover()); pe != nil {
				err = pe
			}
		}()
	}
	if e.cfg.WindowHook != nil {
		if herr := e.cfg.WindowHook(ctx, start/e.cfg.Window, start, end); herr != nil {
			return herr
		}
	}
	return e.runWindow(rs, start, end, out, rep)
}

// quarantineOrFail records a containable window failure, resets the dense
// window state the abandoned window may have half-filled, and lets the run
// continue (nil return); non-containable failures, or any failure without
// Config.Quarantine, come back wrapped for the caller to abort with.
func (e *Engine) quarantineOrFail(rep *Report, start, end int, err error) error {
	if e.cfg.Quarantine && pipeline.Containable(err) {
		rep.Quarantined = append(rep.Quarantined,
			pipeline.NewQuarantine(e.cfg.Chr, start/e.cfg.Window, start, end, err))
		e.resetWindow(end - start)
		return nil
	}
	return fmt.Errorf("soapsnp: window [%d,%d): %w", start, end, err)
}

// DenseLikelihood is Algorithm 1: the likelihood calculation for one site
// over the dense base_occ matrix, accessing all 131,072 elements in the
// canonical base / score (descending) / coordinate / strand order. The
// scan reads eight counters per load so that, like the original SOAPsnp,
// its cost is the sequential memory bandwidth of sweeping the matrix
// (Formula 1 / Figure 4a) rather than per-byte branch overhead. It returns
// the number of non-zero elements encountered (the sparsity datum of
// Figure 4(b)). depCount must hold 2*readLen entries and is reset
// internally.
func DenseLikelihood(baseOcc []uint8, t *bayes.Tables, readLen int, depCount []uint16, tl *[bayes.TypeLikelySize]float64) (nonZero int) {
	for i := range tl {
		tl[i] = 0
	}
	// Each (base, score) row spans 512 consecutive bytes (coord x strand,
	// strand in the lowest bit). The matrix sweep itself runs forward in
	// memory — eight counters per load, prefetch-friendly, so its cost is
	// the sequential read bandwidth of Formula 1 — while the sparse
	// non-zero groups it finds are then processed in the canonical
	// base / score-descending / coord / strand order of Algorithm 1.
	const rowBytes = 2 * bayes.MaxReadLen
	const baseBytes = bayes.NQ * rowBytes
	var nz []int32 // offsets (within a base's block) of non-zero words
	for base := dna.Base(0); base < dna.NBases; base++ {
		clear(depCount)
		blk := int(base) * baseBytes
		nz = nz[:0]
		for off := 0; off < baseBytes; off += 8 {
			if binary.LittleEndian.Uint64(baseOcc[blk+off:]) != 0 {
				nz = append(nz, int32(off))
			}
		}
		// nz is ascending in memory = ascending score; walk score rows in
		// descending order, ascending within each row.
		hi := len(nz)
		for hi > 0 {
			rowStart := int(nz[hi-1]) &^ (rowBytes - 1)
			lo := hi - 1
			for lo > 0 && int(nz[lo-1]) >= rowStart {
				lo--
			}
			score := rowStart / rowBytes
			for _, off32 := range nz[lo:hi] {
				off := int(off32)
				end := off + 8
				if max := rowStart + 2*readLen; end > max {
					end = max
				}
				for i := off; i < end; i++ {
					occ := baseOcc[blk+i]
					if occ == 0 {
						continue
					}
					nonZero++
					coord := (i - rowStart) >> 1
					strand := i & 1
					for k := uint8(0); k < occ; k++ {
						dc := depCount[strand*readLen+coord] + 1
						depCount[strand*readLen+coord] = dc
						qadj := t.Adjust.Adjust(dna.Quality(score), dc)
						for a1 := dna.Base(0); a1 < dna.NBases; a1++ {
							for a2 := a1; a2 < dna.NBases; a2++ {
								tl[a1<<2|a2] += bayes.LikelyUpdate(t.P, qadj, coord, base, a1, a2)
							}
						}
					}
				}
			}
			hi = lo
		}
	}
	return nonZero
}

// likelihoodParallel fans the window's dense likelihood scans across
// Config.Threads workers. Each worker owns a dep_count array; histogram
// updates merge at the end. Since every worker streams a disjoint slice of
// the same base_occ buffer, the aggregate rate is capped by the machine's
// memory bandwidth — the reason the paper's 16-thread port only reached
// 3-4x.
func (e *Engine) likelihoodParallel(n int, rep *Report) {
	workers := e.cfg.Threads
	if workers > n {
		workers = n
	}
	hists := make([][]int64, workers)
	var wg sync.WaitGroup
	// A panic on a worker goroutine would crash the process — nothing on a
	// fresh goroutine's stack recovers — defeating window quarantine.
	// Workers trap the first panic and the dispatcher re-raises it after
	// every worker has drained, so no shard is still writing the window
	// buffers when the engine's containment unwinds past them.
	var panicMu sync.Mutex
	var panicked *pipeline.PanicError
	chunk := (n + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer func() {
				if pe := pipeline.Recovered(recover()); pe != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = pe
					}
					panicMu.Unlock()
				}
				wg.Done()
			}()
			dep := make([]uint16, 2*e.cfg.ReadLen)
			hist := make([]int64, sparsityHistSize)
			for site := lo; site < hi; site++ {
				nz := DenseLikelihood(e.baseOcc[site*bayes.BaseOccSize:(site+1)*bayes.BaseOccSize],
					e.tables, e.cfg.ReadLen, dep, &e.likely[site])
				if nz >= sparsityHistSize {
					nz = sparsityHistSize - 1
				}
				hist[nz]++
			}
			hists[wkr] = hist
		}(wkr, lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	for _, hist := range hists {
		for k, c := range hist {
			rep.NonZeroHist[k] += c
		}
	}
}
