package soapsnp

import (
	"bytes"
	"testing"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
	"gsnp/internal/pipeline"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

// testDataset builds a small deterministic workload.
func testDataset(t *testing.T, sites int, depth float64, seed int64) *seqsim.Dataset {
	t.Helper()
	return seqsim.BuildDataset(seqsim.ChromosomeSpec{
		Name: "chrT", Length: sites, Depth: depth, MaskFraction: 0.1, Seed: seed,
	})
}

// knownFromDataset builds the prior-file records for a dataset's known
// variants.
func knownFromDataset(ds *seqsim.Dataset) snpio.KnownSNPs {
	known := snpio.KnownSNPs{}
	for _, v := range ds.Diploid.Variants {
		if !v.Known {
			continue
		}
		a1, a2 := v.Genotype.Alleles()
		rec := &bayes.KnownSNP{Validated: true}
		rec.Freq[a1] += 0.5
		rec.Freq[a2] += 0.5
		known[v.Pos] = rec
	}
	return known
}

func runEngine(t *testing.T, ds *seqsim.Dataset, window int) (*Report, []snpio.Row, *Engine) {
	t.Helper()
	eng := New(Config{
		Chr:    ds.Spec.Name,
		Ref:    ds.Ref.Seq,
		Known:  knownFromDataset(ds),
		Window: window,
	})
	var buf bytes.Buffer
	rep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rows, err := snpio.ReadResults(&buf)
	if err != nil {
		t.Fatalf("ReadResults: %v", err)
	}
	return rep, rows, eng
}

func TestRunProducesRowPerSite(t *testing.T) {
	ds := testDataset(t, 3000, 8, 11)
	rep, rows, _ := runEngine(t, ds, 512)
	if len(rows) != 3000 {
		t.Fatalf("rows = %d, want 3000", len(rows))
	}
	if rep.Sites != 3000 {
		t.Errorf("Sites = %d", rep.Sites)
	}
	for i, r := range rows {
		if r.Pos != int64(i)+1 {
			t.Fatalf("row %d has position %d", i, r.Pos)
		}
		if r.Chr != "chrT" {
			t.Fatalf("row %d chromosome %q", i, r.Chr)
		}
		if want := ds.Ref.Seq[i].Byte(); r.Ref != want {
			t.Fatalf("row %d reference %c, want %c", i, r.Ref, want)
		}
	}
}

func TestCallAccuracy(t *testing.T) {
	ds := testDataset(t, 20000, 12, 21)
	_, rows, _ := runEngine(t, ds, 4000)

	truth := map[int]dna.Genotype{}
	for _, v := range ds.Diploid.Variants {
		truth[v.Pos] = v.Genotype
	}
	covered := func(pos int) bool {
		// Only judge sites with usable coverage.
		return rows[pos].Depth >= 4
	}

	var tp, fn, fp int
	for pos, g := range truth {
		if !covered(pos) {
			continue
		}
		if rows[pos].Genotype == g.IUPAC() {
			tp++
		} else {
			fn++
		}
	}
	for i := range rows {
		if !rows[i].IsSNP() {
			continue
		}
		if _, ok := truth[i]; !ok && covered(i) {
			fp++
		}
	}
	if tp == 0 {
		t.Fatal("no true variants recovered")
	}
	sens := float64(tp) / float64(tp+fn)
	if sens < 0.75 {
		t.Errorf("sensitivity = %.2f (tp=%d fn=%d), want >= 0.75", sens, tp, fn)
	}
	// False positives should be rare relative to genome size.
	if fp > len(rows)/500 {
		t.Errorf("false positives = %d over %d sites", fp, len(rows))
	}
	t.Logf("tp=%d fn=%d fp=%d sensitivity=%.2f", tp, fn, fp, sens)
}

func TestWindowSizeInvariance(t *testing.T) {
	// The output must not depend on the window size.
	ds := testDataset(t, 2500, 7, 31)
	_, rows1, _ := runEngine(t, ds, 250)
	_, rows2, _ := runEngine(t, ds, 2500)
	_, rows3, _ := runEngine(t, ds, 333)
	if len(rows1) != len(rows2) || len(rows1) != len(rows3) {
		t.Fatal("row counts differ across window sizes")
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] || rows1[i] != rows3[i] {
			t.Fatalf("row %d differs across window sizes:\n%+v\n%+v\n%+v", i, rows1[i], rows2[i], rows3[i])
		}
	}
}

func TestTimesPopulated(t *testing.T) {
	ds := testDataset(t, 2000, 8, 41)
	rep, _, _ := runEngine(t, ds, 500)
	tm := rep.Times
	if tm.Likeli <= 0 || tm.Recycle <= 0 || tm.CalP <= 0 || tm.Output <= 0 {
		t.Errorf("component times missing: %v", tm)
	}
	if tm.Total() <= 0 {
		t.Error("total time non-positive")
	}
	if tm.String() == "" {
		t.Error("Times.String empty")
	}
	// The dense design makes likelihood the dominant component (Table I).
	if tm.Likeli < tm.Post {
		t.Errorf("likelihood (%v) not dominating posterior (%v)", tm.Likeli, tm.Post)
	}
}

func TestSparsityHistogram(t *testing.T) {
	ds := testDataset(t, 4000, 9.6, 51)
	rep, _, _ := runEngine(t, ds, 1000)
	var sites, weighted int64
	for k, c := range rep.NonZeroHist {
		sites += c
		weighted += int64(k) * c
	}
	if sites != 4000 {
		t.Fatalf("histogram covers %d sites, want 4000", sites)
	}
	mean := float64(weighted) / float64(sites)
	// Depth 9.6 with ~90% coverage: mean non-zero count near the depth and
	// far below |base_occ| (the ~0.08% sparsity of Section IV-B).
	if mean < 3 || mean > 15 {
		t.Errorf("mean non-zero count = %.1f, want ~9", mean)
	}
	frac := mean / float64(bayes.BaseOccSize)
	if frac > 0.001 {
		t.Errorf("non-zero fraction %.5f%% too high", 100*frac)
	}
}

func TestDenseLikelihoodMatchesDirectComputation(t *testing.T) {
	// Single-observation site: the likelihood must equal one direct
	// Algorithm 2 evaluation per genotype.
	tables := bayes.BuildTables(bayes.NewPMatrixFromPhred())
	baseOcc := make([]uint8, bayes.BaseOccSize)
	obsBase, obsScore, obsCoord, obsStrand := dna.G, dna.Quality(37), 12, 1
	baseOcc[bayes.BaseOccIndex(obsBase, obsScore, obsCoord, obsStrand)] = 1

	depCount := make([]uint16, 200)
	var tl [bayes.TypeLikelySize]float64
	nz := DenseLikelihood(baseOcc, tables, 100, depCount, &tl)
	if nz != 1 {
		t.Fatalf("non-zero count = %d, want 1", nz)
	}
	qadj := tables.Adjust.Adjust(obsScore, 1)
	for a1 := dna.Base(0); a1 < 4; a1++ {
		for a2 := a1; a2 < 4; a2++ {
			want := bayes.LikelyUpdate(tables.P, qadj, obsCoord, obsBase, a1, a2)
			if got := tl[a1<<2|a2]; got != want {
				t.Errorf("tl[%v%v] = %v, want %v", a1, a2, got, want)
			}
		}
	}
}

func TestDenseLikelihoodDepthAdjustment(t *testing.T) {
	// Two observations at the same coordinate: the second must be damped
	// by the adjust table (dep count 2).
	tables := bayes.BuildTables(bayes.NewPMatrixFromPhred())
	baseOcc := make([]uint8, bayes.BaseOccSize)
	baseOcc[bayes.BaseOccIndex(dna.A, 40, 5, 0)] = 2

	depCount := make([]uint16, 200)
	var tl [bayes.TypeLikelySize]float64
	DenseLikelihood(baseOcc, tables, 100, depCount, &tl)

	q1 := tables.Adjust.Adjust(40, 1)
	q2 := tables.Adjust.Adjust(40, 2)
	if q1 == q2 {
		t.Fatal("adjust table did not damp the stacked observation")
	}
	want := bayes.LikelyUpdate(tables.P, q1, 5, dna.A, dna.A, dna.A) +
		bayes.LikelyUpdate(tables.P, q2, 5, dna.A, dna.A, dna.A)
	if got := tl[dna.HomozygousGenotype(dna.A)]; got != want {
		t.Errorf("stacked likelihood = %v, want %v", got, want)
	}
}

func TestDenseLikelihoodCanonicalOrder(t *testing.T) {
	// Higher scores are consumed before lower ones (descending score
	// loop): with two observations of the same base at the same
	// coordinate but different scores, the higher score must see dep
	// count 1.
	tables := bayes.BuildTables(bayes.NewPMatrixFromPhred())
	baseOcc := make([]uint8, bayes.BaseOccSize)
	baseOcc[bayes.BaseOccIndex(dna.C, 50, 8, 0)] = 1
	baseOcc[bayes.BaseOccIndex(dna.C, 20, 8, 0)] = 1

	depCount := make([]uint16, 200)
	var tl [bayes.TypeLikelySize]float64
	DenseLikelihood(baseOcc, tables, 100, depCount, &tl)

	want := bayes.LikelyUpdate(tables.P, tables.Adjust.Adjust(50, 1), 8, dna.C, dna.C, dna.C) +
		bayes.LikelyUpdate(tables.P, tables.Adjust.Adjust(20, 2), 8, dna.C, dna.C, dna.C)
	if got := tl[dna.HomozygousGenotype(dna.C)]; got != want {
		t.Errorf("order-dependent likelihood = %v, want %v", got, want)
	}
}

func TestNoCoverageRowsAreHomRef(t *testing.T) {
	ds := testDataset(t, 2000, 5, 61)
	_, rows, _ := runEngine(t, ds, 400)
	zero := 0
	for i, r := range rows {
		if r.Depth == 0 {
			zero++
			if r.IsSNP() {
				t.Fatalf("zero-coverage site %d called as SNP", i)
			}
		}
	}
	if zero == 0 {
		t.Skip("mask produced no zero-coverage sites")
	}
}

func TestDbSNPColumn(t *testing.T) {
	ds := testDataset(t, 5000, 8, 71)
	known := knownFromDataset(ds)
	if len(known) == 0 {
		t.Skip("no known variants in dataset")
	}
	_, rows, _ := runEngine(t, ds, 1000)
	for pos := range known {
		if rows[pos].IsDbSNP != 1 {
			t.Fatalf("known site %d missing dbSNP flag", pos)
		}
	}
}

func TestMultithreadedLikelihoodIdenticalOutput(t *testing.T) {
	// The paper's multi-threaded SOAPsnp port must call exactly the same
	// genotypes as the single-threaded baseline.
	ds := testDataset(t, 4000, 9, 81)
	_, want, _ := runEngine(t, ds, 900)
	eng := New(Config{
		Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: knownFromDataset(ds),
		Window: 900, Threads: 8,
	})
	var buf bytes.Buffer
	rep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snpio.ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs under Threads=8", i)
		}
	}
	var sites int64
	for _, c := range rep.NonZeroHist {
		sites += c
	}
	if sites != 4000 {
		t.Errorf("parallel histogram covers %d sites", sites)
	}
}
