package soapsnp

import (
	"testing"

	"gsnp/internal/bayes"
	"gsnp/internal/dna"
)

// BenchmarkDenseLikelihoodSparseSite measures Algorithm 1 on a site with a
// realistic ~11 observations: the dense-scan cost dominating Table I.
func BenchmarkDenseLikelihoodSparseSite(b *testing.B) {
	tables := bayes.BuildTables(bayes.NewPMatrixFromPhred())
	baseOcc := make([]uint8, bayes.BaseOccSize)
	for k := 0; k < 11; k++ {
		baseOcc[bayes.BaseOccIndex(dna.Base(k&3), dna.Quality(20+k*3), 5+k*7, k&1)] = 1
	}
	dep := make([]uint16, 200)
	var tl [bayes.TypeLikelySize]float64
	b.SetBytes(bayes.BaseOccSize)
	for i := 0; i < b.N; i++ {
		DenseLikelihood(baseOcc, tables, 100, dep, &tl)
	}
}

// BenchmarkDenseLikelihoodEmptySite is the pure matrix-sweep floor (the
// Formula-1 regime).
func BenchmarkDenseLikelihoodEmptySite(b *testing.B) {
	tables := bayes.BuildTables(bayes.NewPMatrixFromPhred())
	baseOcc := make([]uint8, bayes.BaseOccSize)
	dep := make([]uint16, 200)
	var tl [bayes.TypeLikelySize]float64
	b.SetBytes(bayes.BaseOccSize)
	for i := 0; i < b.N; i++ {
		DenseLikelihood(baseOcc, tables, 100, dep, &tl)
	}
}

// BenchmarkRecycle measures the dense representation's window re-zeroing,
// Table I's second-most expensive component.
func BenchmarkRecycle(b *testing.B) {
	buf := make([]uint8, 512*bayes.BaseOccSize) // a 512-site slab
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		clear(buf)
	}
}
