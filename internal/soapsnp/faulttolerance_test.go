package soapsnp

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"gsnp/internal/pipeline"
)

// withoutWindow drops the result rows of sites [start, end).
func withoutWindow(t *testing.T, out []byte, start, end int) []byte {
	t.Helper()
	var keep bytes.Buffer
	for _, line := range strings.SplitAfter(string(out), "\n") {
		if line == "" {
			continue
		}
		f := strings.SplitN(line, "\t", 3)
		if len(f) < 2 {
			t.Fatalf("unparseable result line %q", line)
		}
		pos, err := strconv.Atoi(f[1])
		if err != nil {
			t.Fatalf("bad pos in %q: %v", line, err)
		}
		if p := pos - 1; p >= start && p < end {
			continue
		}
		keep.WriteString(line)
	}
	return keep.Bytes()
}

// TestQuarantineWindowPanic checks the dense engine's panic containment: a
// panicking window is quarantined, its half-filled dense state is recycled
// (so later windows see clean buffers), and every surviving window is
// byte-identical to the clean run. Threads > 1 exercises the
// likelihoodParallel panic trap alongside.
func TestQuarantineWindowPanic(t *testing.T) {
	ds := testDataset(t, 3000, 8, 17)
	const window = 1000
	clean := New(Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: knownFromDataset(ds), Window: window})
	var cleanBuf bytes.Buffer
	if _, err := clean.Run(pipeline.MemSource(ds.Reads), &cleanBuf); err != nil {
		t.Fatal(err)
	}

	for _, threads := range []int{1, 4} {
		eng := New(Config{
			Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Known: knownFromDataset(ds),
			Window: window, Threads: threads, Quarantine: true,
			WindowHook: func(ctx context.Context, win, start, end int) error {
				if win == 1 {
					panic("injected window panic")
				}
				return nil
			},
		})
		var buf bytes.Buffer
		rep, err := eng.Run(pipeline.MemSource(ds.Reads), &buf)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if len(rep.Quarantined) != 1 || !rep.Partial() {
			t.Fatalf("threads=%d: quarantined = %v, want exactly window 1", threads, rep.Quarantined)
		}
		if q := rep.Quarantined[0]; q.Window != 1 || !q.Panicked {
			t.Errorf("threads=%d: quarantine = %+v, want window 1 panicked", threads, q)
		}
		if want := withoutWindow(t, cleanBuf.Bytes(), window, 2*window); !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("threads=%d: surviving windows are not byte-identical to the clean run", threads)
		}
	}
}

// TestLikelihoodParallelTrapsPanic checks that a panic inside a likelihood
// worker goroutine is re-raised on the dispatching goroutine (instead of
// crashing the process) after every worker has drained. A nil tables
// pointer makes the first non-zero site panic inside DenseLikelihood.
func TestLikelihoodParallelTrapsPanic(t *testing.T) {
	eng := New(Config{Window: 8, ReadLen: 4, Threads: 4})
	eng.allocWindow()
	eng.baseOcc[0] = 1 // site 0 has coverage; eng.tables == nil => panic
	rep := &Report{NonZeroHist: make([]int64, sparsityHistSize)}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic was not re-raised")
		}
		pe, ok := v.(*pipeline.PanicError)
		if !ok {
			t.Fatalf("re-raised value is %T, want *pipeline.PanicError", v)
		}
		if len(pe.Stack) == 0 {
			t.Error("re-raised panic carries no stack")
		}
	}()
	eng.likelihoodParallel(8, rep)
}

// TestRunContextCancelled checks cooperative cancellation on the baseline
// engine.
func TestRunContextCancelled(t *testing.T) {
	ds := testDataset(t, 2000, 6, 5)
	eng := New(Config{Chr: ds.Spec.Name, Ref: ds.Ref.Seq, Window: 500})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(ctx, pipeline.MemSource(ds.Reads), &bytes.Buffer{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
