package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// dropEmptySNPs removes zero-length .snp files from a genome dir.
func dropEmptySNPs(t testing.TB, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.snp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			if err := os.Remove(m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// statz fetches GET /statz.
func statz(t testing.TB, ts *httptest.Server) Statz {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statz: %d", resp.StatusCode)
	}
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitForPuts polls /statz until the cache holds at least n stored
// results: the Put happens after the final stream record is published, so
// a test that read the stream to its end must still wait a beat before a
// resubmission is guaranteed to hit the cache rather than join the
// closing flight.
func waitForPuts(t testing.TB, ts *httptest.Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := statz(t, ts); st.Cache.Puts >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cache never reached %d puts: %+v", n, statz(t, ts))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dequeueCounter wires an atomic dispatch counter into a test server.
func dequeueCounter(cfg Config) (Config, *atomic.Int64) {
	var n atomic.Int64
	cfg.OnDequeue = func(string, int) { n.Add(1) }
	return cfg, &n
}

// TestServiceCacheHitReplay: resubmitting an identical genome job is
// served from the result cache — byte-identical per-chromosome records,
// a "cached" final state, and zero pool dequeues. A third submission
// carrying the same data inline (uploaded) hits the same content key.
func TestServiceCacheHitReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(3, 1400, 61))
	// A chromosome with no known variants gets a zero-length .snp file,
	// which the uploaded path (snp omitted) legitimately keys differently:
	// drop the empty files so both submission paths carry the same inputs.
	dropEmptySNPs(t, dir)
	cfg, dequeues := dequeueCounter(Config{Workers: 2})
	_, ts := newTestServer(t, cfg)
	spec := map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}

	id1 := postJob(t, ts, spec)
	recs1, state1 := readStream(t, ts, id1)
	if state1 != StateDone {
		t.Fatalf("first run state %q, want done", state1)
	}
	waitForPuts(t, ts, 1)
	cold := dequeues.Load()
	if cold == 0 {
		t.Fatal("cold run performed no pool work")
	}

	id2 := postJob(t, ts, spec)
	recs2, state2 := readStream(t, ts, id2)
	if state2 != StateCached {
		t.Fatalf("resubmission final state %q, want %q", state2, StateCached)
	}
	if got := dequeues.Load(); got != cold {
		t.Fatalf("cache hit dispatched pool work: %d dequeues, want %d", got, cold)
	}
	if len(recs2) != len(recs1) {
		t.Fatalf("replay streamed %d records, want %d", len(recs2), len(recs1))
	}
	for name, r1 := range recs1 {
		r2, ok := recs2[name]
		if !ok {
			t.Fatalf("replay missing chromosome %s", name)
		}
		if !bytes.Equal(r2.OutputB64, r1.OutputB64) {
			t.Errorf("%s: replayed bytes differ from the original run", name)
		}
		if r2.State != r1.State || r2.Sites != r1.Sites || r2.Index != r1.Index {
			t.Errorf("%s: replayed record fields differ: %+v vs %+v", name, r2, r1)
		}
	}

	// The status document reports the first-class cached state.
	if st := getStatus(t, ts, id2); st.State != StateCached || st.Completed != st.Total {
		t.Errorf("cached job status %q %d/%d, want cached and complete", st.State, st.Completed, st.Total)
	}

	// Content addressing: the same bytes uploaded inline share the key.
	var inputs []map[string]any
	for _, name := range []string{"chr01", "chr02", "chr03"} {
		ref, err := os.ReadFile(filepath.Join(dir, name+".fa"))
		if err != nil {
			t.Fatal(err)
		}
		aln, err := os.ReadFile(filepath.Join(dir, name+".soap"))
		if err != nil {
			t.Fatal(err)
		}
		in := map[string]any{"name": name, "ref": string(ref), "aln": string(aln)}
		if snp, err := os.ReadFile(filepath.Join(dir, name+".snp")); err == nil && len(snp) > 0 {
			in["snp"] = string(snp)
		}
		inputs = append(inputs, in)
	}
	id3 := postJob(t, ts, map[string]any{"inputs": inputs, "engine": "gsnp-cpu", "window": 256})
	recs3, state3 := readStream(t, ts, id3)
	if state3 != StateCached {
		t.Fatalf("uploaded twin final state %q, want %q (content-addressed key)", state3, StateCached)
	}
	for name, r1 := range recs1 {
		if !bytes.Equal(recs3[name].OutputB64, r1.OutputB64) {
			t.Errorf("%s: uploaded twin bytes differ", name)
		}
	}
	if got := dequeues.Load(); got != cold {
		t.Fatalf("uploaded twin dispatched pool work: %d dequeues, want %d", got, cold)
	}

	st := statz(t, ts)
	if !st.CacheEnabled || st.Cache.Hits != 2 || st.Cache.Puts != 1 || st.Cache.Entries != 1 {
		t.Errorf("statz after two hits: %+v", st)
	}
	if st.Cache.Bytes <= 0 || st.Cache.Bytes > st.Cache.MaxBytes {
		t.Errorf("implausible cache occupancy: %+v", st.Cache)
	}
	// healthz carries the occupancy too.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["cache_enabled"] != true {
		t.Errorf("healthz missing cache_enabled: %v", health)
	}
}

// TestServiceSingleFlightDedup: N identical jobs submitted concurrently
// execute exactly once — the followers join the leader's stream — and
// every stream delivers byte-identical chromosome bytes.
func TestServiceSingleFlightDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(4, 2500, 83))
	cfg, dequeues := dequeueCounter(Config{Workers: 1})
	_, ts := newTestServer(t, cfg)
	spec := map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}

	const jobs = 3
	var wg sync.WaitGroup
	ids := make([]string, jobs)
	streams := make([]map[string]StreamRecord, jobs)
	states := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = postJob(t, ts, spec)
			streams[i], states[i] = readStream(t, ts, ids[i])
		}(i)
	}
	wg.Wait()

	// Exactly one execution: 4 chromosomes, 4 dequeues, however the three
	// submissions interleaved.
	if got := dequeues.Load(); got != 4 {
		t.Fatalf("%d pool dequeues for %d identical jobs, want one execution (4)", got, jobs)
	}
	var done, cached int
	for i, state := range states {
		switch state {
		case StateDone:
			done++
		case StateCached:
			cached++
		default:
			t.Fatalf("job %s final state %q", ids[i], state)
		}
	}
	// The leader reports done; every deduped submission reports cached
	// (via a live join or, if it raced the leader's completion, a replay).
	if done != 1 || cached != jobs-1 {
		t.Fatalf("states %v: want exactly one done and %d cached", states, jobs-1)
	}
	for i := 1; i < jobs; i++ {
		if len(streams[i]) != len(streams[0]) {
			t.Fatalf("job %d streamed %d chromosomes, job 0 streamed %d", i, len(streams[i]), len(streams[0]))
		}
		for name, r0 := range streams[0] {
			if !bytes.Equal(streams[i][name].OutputB64, r0.OutputB64) {
				t.Errorf("job %d %s: bytes differ across deduped submissions", i, name)
			}
		}
	}
	st := statz(t, ts)
	if st.SingleFlightJoins+st.Cache.Hits != jobs-1 {
		t.Errorf("joins %d + hits %d, want %d deduped submissions: %+v",
			st.SingleFlightJoins, st.Cache.Hits, jobs-1, st)
	}
}

// readStreamRaw returns the entire NDJSON body of a stream, byte for
// byte, for cross-subscriber identity checks.
func readStreamRaw(t testing.TB, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServiceConcurrentStreamSubscribers: N clients attach to one job's
// stream at staggered times — against a live run, a cached replay, and a
// single-flight follower — and every client receives the identical
// replay+follow byte sequence. Run under -race by the service-e2e gate.
func TestServiceConcurrentStreamSubscribers(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(4, 2000, 19))
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}

	subscribeAll := func(id string) [][]byte {
		const subs = 4
		bodies := make([][]byte, subs)
		var wg sync.WaitGroup
		for i := 0; i < subs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Staggered attach: later subscribers join mid-stream and
				// must replay what they missed.
				time.Sleep(time.Duration(i) * 15 * time.Millisecond)
				bodies[i] = readStreamRaw(t, ts, id)
			}(i)
		}
		wg.Wait()
		return bodies
	}
	check := func(kind string, bodies [][]byte) {
		t.Helper()
		if len(bodies[0]) == 0 {
			t.Fatalf("%s: empty stream body", kind)
		}
		for i := 1; i < len(bodies); i++ {
			if !bytes.Equal(bodies[i], bodies[0]) {
				t.Errorf("%s: subscriber %d received different bytes (%d vs %d)",
					kind, i, len(bodies[i]), len(bodies[0]))
			}
		}
	}

	idLive := postJob(t, ts, spec)
	check("live", subscribeAll(idLive))
	waitForPuts(t, ts, 1)

	idCached := postJob(t, ts, spec)
	check("cached", subscribeAll(idCached))
	if _, state := readStream(t, ts, idCached); state != StateCached {
		t.Fatalf("resubmission state %q, want cached", state)
	}

	// Single-flight follower: new data, leader submitted first, follower
	// joins while the leader runs; subscribers watch the *follower*.
	dir2 := t.TempDir()
	writeGenomeDir(t, dir2, testSpecs(4, 2000, 131))
	spec2 := map[string]any{"genome_dir": dir2, "engine": "gsnp-cpu", "window": 256}
	idLeader := postJob(t, ts, spec2)
	idFollower := postJob(t, ts, spec2)
	check("joined", subscribeAll(idFollower))
	readStream(t, ts, idLeader)
}

// TestServiceCacheNeverStoresDegradedJobs: failed, partial (quarantined)
// and cancelled runs must never be cached — each resubmission executes
// again — and changing any input's bytes changes the key.
func TestServiceCacheNeverStoresDegradedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	// A reference with an unparseable alignment file.
	badDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(badDir, "chr1.fa"), []byte(">chr1\nACGTACGTACGTACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(badDir, "chr1.soap"), []byte("not a soap record\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg, dequeues := dequeueCounter(Config{Workers: 1})
	_, ts := newTestServer(t, cfg)

	// Failed jobs: never cached.
	failSpec := map[string]any{"genome_dir": badDir, "engine": "gsnp-cpu", "window": 256}
	for i := 0; i < 2; i++ {
		id := postJob(t, ts, failSpec)
		if _, state := readStream(t, ts, id); state != StateFailed {
			t.Fatalf("bad-input run %d state %q, want failed", i, state)
		}
	}
	if st := statz(t, ts); st.Cache.Hits != 0 || st.Cache.Puts != 0 {
		t.Errorf("failed jobs touched the cache: %+v", st)
	}
	if dequeues.Load() != 2 {
		t.Errorf("failed resubmission did not re-execute: %d dequeues, want 2", dequeues.Load())
	}

	// Partial (quarantine) jobs: executed output exists, but it is
	// degraded — never cached either.
	quarSpec := map[string]any{"genome_dir": badDir, "engine": "gsnp-cpu", "window": 256, "quarantine": true}
	for i := 0; i < 2; i++ {
		id := postJob(t, ts, quarSpec)
		if _, state := readStream(t, ts, id); state != StatePartial {
			t.Fatalf("quarantined run %d state %q, want partial", i, state)
		}
	}
	if st := statz(t, ts); st.Cache.Hits != 0 || st.Cache.Puts != 0 {
		t.Errorf("partial jobs touched the cache: %+v", st)
	}

	// Cancelled jobs: never cached; the resubmission runs for real.
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(6, 4000, 47))
	runSpec := map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}
	idCancel := postJob(t, ts, runSpec)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+idCancel, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if _, state := readStream(t, ts, idCancel); state != StateCancelled {
		t.Fatalf("cancelled job state %q", state)
	}
	before := dequeues.Load()
	idRerun := postJob(t, ts, runSpec)
	if _, state := readStream(t, ts, idRerun); state != StateDone {
		t.Fatalf("rerun after cancel state %q, want done (fresh execution)", state)
	}
	if dequeues.Load() == before {
		t.Error("rerun after cancel dispatched no pool work")
	}
	waitForPuts(t, ts, 1)

	// Changed input bytes: the content-addressed key moves, the stale
	// result cannot be served.
	prev := dequeues.Load()
	writeGenomeDir(t, dir, testSpecs(6, 4000, 48)) // same paths, new bytes
	idChanged := postJob(t, ts, runSpec)
	if _, state := readStream(t, ts, idChanged); state != StateDone {
		t.Fatalf("changed-input run state %q, want done", state)
	}
	if dequeues.Load() == prev {
		t.Error("changed inputs served a stale cached result")
	}
}

// TestServiceCacheEviction: the byte budget is strict — filling the cache
// past it evicts the least-recently-hit entry, which then re-executes on
// resubmission.
func TestServiceCacheEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	writeGenomeDir(t, dirA, testSpecs(2, 1500, 21))
	writeGenomeDir(t, dirB, testSpecs(1, 900, 22))
	specA := map[string]any{"genome_dir": dirA, "engine": "gsnp-cpu", "window": 256}
	specB := map[string]any{"genome_dir": dirB, "engine": "gsnp-cpu", "window": 256}

	// Measure job A's cached size with an unconstrained server.
	_, ts := newTestServer(t, Config{Workers: 2})
	readStream(t, ts, postJob(t, ts, specA))
	waitForPuts(t, ts, 1)
	sizeA := statz(t, ts).Cache.Bytes
	if sizeA <= 0 {
		t.Fatalf("no occupancy after caching job A: %+v", statz(t, ts))
	}

	// A budget that holds A alone: storing B must evict A.
	cfg, dequeues := dequeueCounter(Config{Workers: 2, CacheBytes: sizeA})
	_, ts2 := newTestServer(t, cfg)
	readStream(t, ts2, postJob(t, ts2, specA))
	waitForPuts(t, ts2, 1)
	readStream(t, ts2, postJob(t, ts2, specB))
	waitForPuts(t, ts2, 2)
	st := statz(t, ts2)
	if st.Cache.Evictions == 0 {
		t.Fatalf("storing past the budget evicted nothing: %+v", st)
	}
	if st.Cache.Bytes > st.Cache.MaxBytes {
		t.Fatalf("occupancy exceeds the budget: %+v", st)
	}
	before := dequeues.Load()
	idA2 := postJob(t, ts2, specA)
	if _, state := readStream(t, ts2, idA2); state != StateDone {
		t.Fatalf("evicted job resubmission state %q, want done (re-executed)", state)
	}
	if dequeues.Load() == before {
		t.Error("evicted entry was served from cache")
	}
}

// TestServiceCacheOff: -cache-off semantics — every submission executes,
// nothing is recorded, /statz reports the cache disabled.
func TestServiceCacheOff(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(2, 1200, 33))
	cfg, dequeues := dequeueCounter(Config{Workers: 2, CacheOff: true})
	_, ts := newTestServer(t, cfg)
	spec := map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}

	id1 := postJob(t, ts, spec)
	recs1, state1 := readStream(t, ts, id1)
	cold := dequeues.Load()
	id2 := postJob(t, ts, spec)
	recs2, state2 := readStream(t, ts, id2)
	if state1 != StateDone || state2 != StateDone {
		t.Fatalf("states %q/%q, want done/done (no caching)", state1, state2)
	}
	if dequeues.Load() != 2*cold {
		t.Errorf("second run dispatched %d dequeues, want %d (full re-execution)", dequeues.Load()-cold, cold)
	}
	for name, r1 := range recs1 {
		if !bytes.Equal(recs2[name].OutputB64, r1.OutputB64) {
			t.Errorf("%s: determinism violated across uncached reruns", name)
		}
	}
	st := statz(t, ts)
	if st.CacheEnabled || st.Cache.Puts != 0 || st.SingleFlightJoins != 0 {
		t.Errorf("cache-off statz: %+v", st)
	}
}

// TestServiceCachedServeZeroPoolWork is the pinned gate the benchmark
// relies on: a cache hit performs zero engine work — not a single pool
// dequeue — across repeated serves. The OnDequeue hook observes every
// dispatch, so a zero delta proves the scheduler was never touched.
func TestServiceCachedServeZeroPoolWork(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(2, 1300, 71))
	cfg, dequeues := dequeueCounter(Config{Workers: 2})
	_, ts := newTestServer(t, cfg)
	spec := map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}

	readStream(t, ts, postJob(t, ts, spec))
	waitForPuts(t, ts, 1)
	primed := dequeues.Load()

	for i := 0; i < 5; i++ {
		id := postJob(t, ts, spec)
		if _, state := readStream(t, ts, id); state != StateCached {
			t.Fatalf("serve %d state %q, want cached", i, state)
		}
	}
	if got := dequeues.Load(); got != primed {
		t.Fatalf("%d pool dequeues during cached serves, want 0", got-primed)
	}
	if st := statz(t, ts); st.Cache.Hits < 5 {
		t.Errorf("expected >= 5 cache hits, statz: %+v", st)
	}
}

// TestServiceCancelFollowerIsolation: cancelling a single-flight follower
// detaches it without perturbing the leader, which still completes and
// is cached.
func TestServiceCancelFollowerIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	// Sized like TestServiceCancelIsolation's long job so the leader is
	// reliably still in flight when the follower's cancel lands.
	writeGenomeDir(t, dir, testSpecs(16, 5000, 91))
	cfg, _ := dequeueCounter(Config{Workers: 1})
	_, ts := newTestServer(t, cfg)
	spec := map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}

	idLeader := postJob(t, ts, spec)
	idFollower := postJob(t, ts, spec)
	// Confirm the second submission really joined (not a post-completion
	// cache hit), else the cancel exercise is vacuous.
	if statz(t, ts).SingleFlightJoins != 1 {
		t.Skipf("leader finished before the follower joined; nothing to cancel")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+idFollower, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()

	if _, state := readStream(t, ts, idFollower); state != StateCancelled {
		t.Fatalf("cancelled follower state %q, want cancelled", state)
	}
	if _, state := readStream(t, ts, idLeader); state != StateDone {
		t.Fatalf("leader state %q after follower cancel, want done", state)
	}
	waitForPuts(t, ts, 1)
	if st := statz(t, ts); st.Cache.Puts != 1 {
		t.Errorf("leader result not cached after follower cancel: %+v", st)
	}
}
