package service

import (
	"sync/atomic"
	"testing"
)

// benchSpec is the job both serving benchmarks submit: a small synthetic
// genome, large enough that engine work dominates a cold serve.
func benchGenome(b *testing.B) (string, map[string]any) {
	dir := b.TempDir()
	writeGenomeDir(b, dir, testSpecs(2, 1500, 7))
	return dir, map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256}
}

// BenchmarkServeColdJob measures end-to-end job serving with the result
// cache disabled: every iteration executes the engine. This is the
// baseline the cached path is compared against in BENCH_pipeline.json.
func BenchmarkServeColdJob(b *testing.B) {
	_, spec := benchGenome(b)
	_, ts := newTestServer(b, Config{Workers: 2, CacheOff: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := postJob(b, ts, spec)
		if _, state := readStream(b, ts, id); state != StateDone {
			b.Fatalf("state %q", state)
		}
	}
}

// BenchmarkServeCachedJob measures the same job served from the result
// cache after one priming run. Alongside the latency, it gates the
// optimisation's contract: a cached serve performs zero pool dequeues
// (the OnDequeue hook observes every dispatch, so any engine work at all
// fails the benchmark).
func BenchmarkServeCachedJob(b *testing.B) {
	_, spec := benchGenome(b)
	var dequeues atomic.Int64
	cfg := Config{Workers: 2, OnDequeue: func(string, int) { dequeues.Add(1) }}
	_, ts := newTestServer(b, cfg)

	id := postJob(b, ts, spec)
	if _, state := readStream(b, ts, id); state != StateDone {
		b.Fatalf("priming state %q", state)
	}
	waitForPuts(b, ts, 1)
	primed := dequeues.Load()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := postJob(b, ts, spec)
		if _, state := readStream(b, ts, id); state != StateCached {
			b.Fatalf("state %q, want cached", state)
		}
	}
	b.StopTimer()
	if got := dequeues.Load(); got != primed {
		b.Fatalf("cached serves performed %d pool dequeues, want 0", got-primed)
	}
}
